package pkgrec

// One benchmark per evaluation artefact of the paper: every row group of
// Table 8.1 (combined complexity) and Table 8.2 (data complexity), the
// Figure 4.1 gadget machinery, and the special-case/ablation rows of
// Corollaries 6.1–6.3, Theorem 6.4, 7.3 and 8.2. The benchmarks reuse the
// instance families of internal/experiments, at a fixed mid-range
// parameter; run `go run ./cmd/recbench` for the full scaling series the
// tables report.

import (
	"testing"

	"repro/internal/boolenc"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/query"
)

// benchFamily runs one experiment family at the given parameter.
func benchFamily(b *testing.B, fams []experiments.Family, id string, param int) {
	b.Helper()
	for _, f := range fams {
		if f.ID != id {
			continue
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Run(param); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	b.Fatalf("unknown experiment family %q", id)
}

func t81(b *testing.B, id string, param int) {
	benchFamily(b, experiments.Table81(false), id, param)
}

func t82(b *testing.B, id string, param int) {
	benchFamily(b, experiments.Table82(false), id, param)
}

func abl(b *testing.B, id string, param int) {
	benchFamily(b, experiments.Ablations(false), id, param)
}

// --- Table 8.1: combined complexity ---

func BenchmarkTable81RPPCQWithQc(b *testing.B)  { t81(b, "T81-RPP-CQ-Qc", 2) }
func BenchmarkTable81RPPCQNoQc(b *testing.B)    { t81(b, "T81-RPP-CQ-noQc", 3) }
func BenchmarkTable81RPPDatalogNR(b *testing.B) { t81(b, "T81-RPP-DATALOGnr", 8) }
func BenchmarkTable81RPPFO(b *testing.B)        { t81(b, "T81-RPP-FO", 3) }
func BenchmarkTable81RPPDatalog(b *testing.B)   { t81(b, "T81-RPP-DATALOG", 8) }

func BenchmarkTable81FRPCQWithQc(b *testing.B)  { t81(b, "T81-FRP-CQ-Qc", 2) }
func BenchmarkTable81FRPCQNoQc(b *testing.B)    { t81(b, "T81-FRP-CQ-noQc", 3) }
func BenchmarkTable81FRPDatalogNR(b *testing.B) { t81(b, "T81-FRP-DATALOGnr", 8) }
func BenchmarkTable81FRPFO(b *testing.B)        { t81(b, "T81-FRP-FO", 3) }
func BenchmarkTable81FRPDatalog(b *testing.B)   { t81(b, "T81-FRP-DATALOG", 8) }

func BenchmarkTable81MBPCQWithQc(b *testing.B)  { t81(b, "T81-MBP-CQ-Qc", 2) }
func BenchmarkTable81MBPCQNoQc(b *testing.B)    { t81(b, "T81-MBP-CQ-noQc", 3) }
func BenchmarkTable81MBPDatalogNR(b *testing.B) { t81(b, "T81-MBP-DATALOGnr", 8) }
func BenchmarkTable81MBPFO(b *testing.B)        { t81(b, "T81-MBP-FO", 3) }
func BenchmarkTable81MBPDatalog(b *testing.B)   { t81(b, "T81-MBP-DATALOG", 8) }

func BenchmarkTable81CPPCQWithQc(b *testing.B)     { t81(b, "T81-CPP-CQ-Qc", 2) }
func BenchmarkTable81CPPCQNoQc(b *testing.B)       { t81(b, "T81-CPP-CQ-noQc", 2) }
func BenchmarkTable81CPPDatalogNR(b *testing.B)    { t81(b, "T81-CPP-DATALOGnr", 8) }
func BenchmarkTable81CPPDatalogNRQBF(b *testing.B) { t81(b, "T81-CPP-DATALOGnr-QBF", 8) }
func BenchmarkTable81CPPFO(b *testing.B)           { t81(b, "T81-CPP-FO", 3) }
func BenchmarkTable81CPPDatalog(b *testing.B)      { t81(b, "T81-CPP-DATALOG", 8) }

func BenchmarkTable81QRPPCQWithQc(b *testing.B)  { t81(b, "T81-QRPP-CQ", 2) }
func BenchmarkTable81QRPPCQNoQc(b *testing.B)    { t81(b, "T81-QRPP-CQ-noQc", 2) }
func BenchmarkTable81QRPPDatalogNR(b *testing.B) { t81(b, "T81-QRPP-DATALOGnr", 8) }
func BenchmarkTable81QRPPDatalog(b *testing.B)   { t81(b, "T81-QRPP-DATALOG", 8) }

func BenchmarkTable81ARPPCQWithQc(b *testing.B)  { t81(b, "T81-ARPP-CQ-Qc", 2) }
func BenchmarkTable81ARPPDatalogNR(b *testing.B) { t81(b, "T81-ARPP-DATALOGnr", 8) }
func BenchmarkTable81ARPPDatalog(b *testing.B)   { t81(b, "T81-ARPP-DATALOG", 8) }

// --- Table 8.2: data complexity ---

func BenchmarkTable82RPPPolyBound(b *testing.B)  { t82(b, "T82-RPP-poly", 4) }
func BenchmarkTable82FRPPolyBound(b *testing.B)  { t82(b, "T82-FRP-poly", 4) }
func BenchmarkTable82MBPPolyBound(b *testing.B)  { t82(b, "T82-MBP-poly", 4) }
func BenchmarkTable82CPPPolyBound(b *testing.B)  { t82(b, "T82-CPP-poly", 4) }
func BenchmarkTable82QRPPPolyBound(b *testing.B) { t82(b, "T82-QRPP-poly", 4) }
func BenchmarkTable82ARPPItems(b *testing.B)     { t82(b, "T82-ARPP-poly", 2) }

func BenchmarkTable82RPPConstBound(b *testing.B) { t82(b, "T82-RPP-const", 160) }
func BenchmarkTable82FRPConstBound(b *testing.B) { t82(b, "T82-FRP-const", 160) }
func BenchmarkTable82MBPConstBound(b *testing.B) { t82(b, "T82-MBP-const", 160) }
func BenchmarkTable82CPPConstBound(b *testing.B) { t82(b, "T82-CPP-const", 160) }

// --- Corollaries and ablations ---

func BenchmarkCorollary61FixedVsPoly(b *testing.B) { abl(b, "ABL-SP-fixed", 4) }
func BenchmarkCorollary62SPVariable(b *testing.B)  { abl(b, "ABL-SP-variable", 4) }
func BenchmarkCorollary63PtimeQc(b *testing.B)     { abl(b, "ABL-Qc-ptime", 160) }
func BenchmarkTheorem64Items(b *testing.B)         { abl(b, "ABL-items", 160) }
func BenchmarkAblationOracleFRP(b *testing.B)      { abl(b, "ABL-FRP-oracle", 3) }
func BenchmarkCorollary73ItemRelax(b *testing.B)   { t81(b, "T81-QRPP-CQ-noQc", 2) }
func BenchmarkCorollary82ItemAdjust(b *testing.B)  { t82(b, "T82-ARPP-poly", 2) }

// BenchmarkAblationParallelCPP compares the worker-pool CPP counter against
// the sequential one (BenchmarkTable82CPPPolyBound) on the same family.
func BenchmarkAblationParallelCPP(b *testing.B) {
	c := experiments.HardCPPProblem(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CountValidParallel(0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine comparison: serial vs parallel vs incremental ---
//
// Three-way ablation on two table families (the Table 8.1 #Σ1SAT CPP row
// and the Table 8.2 travel FRP row): the serial engine with incremental
// aggregator steppers (the default), the same engine forced into full
// per-node recomputation by opaque Func aggregators (the seed's behaviour),
// and the parallel engine at GOMAXPROCS. BENCHMARKS.md records a reference
// run.

// recomputeOnly strips the cost/val steppers so every DFS node pays the
// seed's O(|N|) aggregator evaluation.
func recomputeOnly(p *core.Problem) *core.Problem {
	q := *p
	cost := core.Func(p.Cost.Name(), p.Cost.Eval)
	if p.Cost.Monotone() {
		cost = cost.WithMonotone()
	}
	q.Cost = cost
	q.Val = core.Func(p.Val.Name(), p.Val.Eval)
	return &q
}

func benchCPPT81(b *testing.B, parallel, recompute bool) {
	b.Helper()
	p, bound := experiments.Sigma1CPPProblem(6)
	if recompute {
		p = recomputeOnly(p)
	}
	if _, err := p.Candidates(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if parallel {
			_, err = p.CountValidParallel(bound, 0)
		} else {
			_, err = p.CountValid(bound)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineCPPT81Serial(b *testing.B)    { benchCPPT81(b, false, false) }
func BenchmarkEngineCPPT81Recompute(b *testing.B) { benchCPPT81(b, false, true) }
func BenchmarkEngineCPPT81Parallel(b *testing.B)  { benchCPPT81(b, true, false) }

func benchFRPTravel(b *testing.B, parallel bool, recompute bool) {
	b.Helper()
	p := experiments.TravelProblem(320).WithMaxSize(2)
	if recompute {
		p = recomputeOnly(p)
	}
	if _, err := p.Candidates(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if parallel {
			_, _, err = p.FindTopKParallel(0)
		} else {
			_, _, err = p.FindTopK()
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineFRPTravelSerial(b *testing.B)    { benchFRPTravel(b, false, false) }
func BenchmarkEngineFRPTravelRecompute(b *testing.B) { benchFRPTravel(b, false, true) }
func BenchmarkEngineFRPTravelParallel(b *testing.B)  { benchFRPTravel(b, true, false) }

// --- Branch-and-bound vs exhaustive ---
//
// The same instance solved with the bound layer on (the default) and off
// (Problem.Exhaustive), isolating what the aggregator bounds + search floor
// buy on top of the incremental steppers. `recbench -table bb` prints the
// scaling series with nodes-visited/pruned columns; BENCHMARKS.md records
// the reference run.

func benchFRPTravelBB(b *testing.B, exhaustive bool) {
	b.Helper()
	p := experiments.TravelProblem(640).WithMaxSize(2)
	p.Exhaustive = exhaustive
	if _, err := p.Candidates(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.FindTopK(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineFRPTravelBB(b *testing.B)         { benchFRPTravelBB(b, false) }
func BenchmarkEngineFRPTravelExhaustive(b *testing.B) { benchFRPTravelBB(b, true) }

// benchCPPTravelBB counts the travel packages of up to three POIs with
// ticket total at most 10 (rating bound B = −10): the counting threshold is
// a static floor, so the bound layer cuts every subtree that cannot stay
// that cheap — the family where branch-and-bound pays off most.
func benchCPPTravelBB(b *testing.B, exhaustive bool) {
	b.Helper()
	p := experiments.TravelProblem(640)
	p.MaxPkgSize = 3
	p.Exhaustive = exhaustive
	if _, err := p.Candidates(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.CountValid(-10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineCPPTravelBB(b *testing.B)         { benchCPPTravelBB(b, false) }
func BenchmarkEngineCPPTravelExhaustive(b *testing.B) { benchCPPTravelBB(b, true) }

// --- Figure 4.1: the Boolean gadget relations ---

// BenchmarkFigure41Gadgets compiles and evaluates a gadget-encoded formula
// over the Figure 4.1 relations: the primitive every hardness reduction in
// the repository is built from.
func BenchmarkFigure41Gadgets(b *testing.B) {
	db := boolenc.NewDB()
	vars := boolenc.VarNames("x", 4)
	formula := boolenc.Or{Subs: []boolenc.Formula{
		boolenc.And{Subs: []boolenc.Formula{boolenc.Var("x0"), boolenc.Not{Sub: boolenc.Var("x1")}}},
		boolenc.And{Subs: []boolenc.Formula{boolenc.Var("x2"), boolenc.Var("x3")}},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp := &boolenc.Compiler{}
		out := comp.Compile(formula)
		comp.AssertEq(out, true)
		atoms := append(boolenc.AssignmentAtoms(vars), comp.Atoms()...)
		q := query.NewCQ("Q", nil, atoms...)
		if _, err := q.Eval(db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExampleWorkloadTopK measures the quickstart-style travel
// workload through the public API (the realistic, non-reduction path).
func BenchmarkExampleWorkloadTopK(b *testing.B) {
	fams := experiments.Table82(false)
	benchFamily(b, fams, "T82-FRP-const", 320)
}

// Silence unused-import lint for core when bench selection changes.
var _ = core.Count
