// Package pkgrec is the public API of this reproduction of "On the
// Complexity of Package Recommendation Problems" (Deng, Fan, Geerts; PODS
// 2012). It re-exports the model types and offers one-call helpers for the
// six problems the paper studies:
//
//   - RPP  — DecideTopK: is a set of packages a top-k package selection?
//   - FRP  — FindTopK / (*Problem).FindTopKViaOracle: compute a top-k
//     package selection;
//   - MBP  — MaxBound / IsMaxBound: the maximum rating bound;
//   - CPP  — CountValid: how many valid packages rate at least B;
//   - QRPP — RelaxQuery: recommend a minimal query relaxation;
//   - ARPP — AdjustItems: recommend a bounded adjustment of the item
//     collection;
//
// plus top-k item recommendation (TopKItems) as the degenerate case of
// Section 2. Queries are built programmatically (repro/internal/query
// constructors re-exported here) or parsed from text with ParseQuery; see
// the examples directory for complete programs.
//
// # The branch-and-bound parallel engine
//
// The solvers share one subset-DFS enumeration engine with incremental
// aggregator evaluation: every stock Aggregator constructor carries a
// Stepper that folds cost/val along the DFS path in O(1) per node instead
// of O(|N|) recomputes, bitwise-identically to a full evaluation. On top of
// that the engine runs branch-and-bound: stock aggregators also carry a
// Bounder — precomputed suffix bounds over the candidate list — and every
// solver with a rating threshold (the k-th best value for FindTopK/
// MaxBound, an RPP selection's minimum, CPP/ExistsKValid's bound B) prunes
// subtrees whose optimistic value bound cannot reach it, or whose
// pessimistic cost bound already exceeds the budget. Pruning is
// answer-preserving — results are identical to the exhaustive enumeration,
// which Problem.Exhaustive restores for comparison — and its effect is
// visible in EngineCounters (attach one via Problem.Counters).
// The engine also has a root-splitting parallel scheduler behind
// FindTopKParallel, CountValidParallel, DecideTopKParallel and
// ExistsKValidParallel (workers ≤ 0 means GOMAXPROCS): the enumeration
// forest is split at its first level and subtrees are walked concurrently,
// with early cancellation — a found witness or the k-th qualifying package
// stops all workers, and the Ctx variants on *Problem accept a
// context.Context. Parallel results are identical to the serial ones
// (FindTopK merges per-worker top-k buffers under its deterministic order;
// counting is order-independent); only the choice of DecideTopK witness can
// vary, and any returned witness is a genuine counterexample.
//
// # The serving layer
//
// NewServeServer / NewServeClient expose the daemon-grade serving layer
// (internal/serve, cmd/pkgrecd): named versioned collections held as
// copy-on-write snapshots, an LRU result cache keyed by content-addressed
// canonical fingerprints, request coalescing, a bounded parallel solve
// pool with per-request deadlines, batched evaluation (ServeBatchRequest:
// N sub-requests over one collection snapshot, deduplicated and solved
// with shared per-spec state), and incremental collection mutation
// (CollectionDelta: tuple upserts/deletes that keep cached results and
// warmed solve state over unaffected relations valid). See
// docs/serving.md, docs/operations.md and ExampleNewServeClient.
package pkgrec

import (
	"repro/internal/adjust"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/relax"
	"repro/internal/serve"
	"repro/internal/spec"
)

// Core model types, re-exported.
type (
	// Database is the item collection D.
	Database = relation.Database
	// Relation is a named set of tuples.
	Relation = relation.Relation
	// Schema names a relation and its attributes.
	Schema = relation.Schema
	// Tuple is an ordered list of values.
	Tuple = relation.Tuple
	// Value is an attribute value (int, float, or string).
	Value = relation.Value
	// Query is a selection query Q or compatibility constraint Qc.
	Query = query.Query
	// Package is a set of items from Q(D).
	Package = core.Package
	// Problem bundles (Q, D, Qc, cost, val, C, k).
	Problem = core.Problem
	// Aggregator is a PTIME package function (cost, val).
	Aggregator = core.Aggregator
	// Stepper evaluates an aggregator incrementally along a DFS path
	// (LIFO push/pop of tuples); see Aggregator.NewStepper/WithStepper.
	Stepper = core.Stepper
	// Bounder yields admissible extension bounds for the branch-and-bound
	// engine; see Aggregator.NewBounder/WithBounder.
	Bounder = core.Bounder
	// EngineCounters accumulates engine cost accounting (DFS nodes visited,
	// packages yielded, subtrees pruned, bound evaluations); attach one via
	// Problem.Counters. See ExampleEngineCounters.
	EngineCounters = core.EngineCounters
	// Utility rates single items (the f() of item recommendations).
	Utility = core.Utility
	// Metric is a distance function from the relaxation set Γ.
	Metric = relax.Metric
	// RelaxPoint is a relaxable query parameter (the sets E and X).
	RelaxPoint = relax.Point
	// RelaxChoice pairs a point with a relaxation level.
	RelaxChoice = relax.Choice
	// Relaxation is a relaxed query QΓ with gap(QΓ).
	Relaxation = relax.Relaxation
	// RelaxInstance is a QRPP instance.
	RelaxInstance = relax.Instance
	// Delta is an adjustment set Δ(D, D′).
	Delta = adjust.Delta
	// AdjustInstance is an ARPP instance.
	AdjustInstance = adjust.Instance
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = relation.Int
	// Float builds a floating-point value.
	Float = relation.Float
	// Str builds a string value.
	Str = relation.Str
	// NewTuple builds a tuple.
	NewTuple = relation.NewTuple
	// NewSchema builds a schema.
	NewSchema = relation.NewSchema
	// NewRelation builds an empty relation.
	NewRelation = relation.NewRelation
	// FromTuples builds a populated relation.
	FromTuples = relation.FromTuples
	// NewDatabase builds an empty database.
	NewDatabase = relation.NewDatabase
	// NewPackage builds a package from tuples.
	NewPackage = core.NewPackage
)

// Aggregator constructors.
var (
	// Count is cost(N) = |N|.
	Count = core.Count
	// CountOrInf is |N| with cost(∅) = ∞.
	CountOrInf = core.CountOrInf
	// SumAttr sums an attribute.
	SumAttr = core.SumAttr
	// NegSumAttr negates the attribute sum (lower totals rate higher).
	NegSumAttr = core.NegSumAttr
	// MinAttr takes the attribute minimum.
	MinAttr = core.MinAttr
	// MaxAttr takes the attribute maximum.
	MaxAttr = core.MaxAttr
	// AvgAttr takes the attribute mean.
	AvgAttr = core.AvgAttr
	// WeightedSum mixes attributes with weights.
	WeightedSum = core.WeightedSum
	// ConstAgg is a constant function.
	ConstAgg = core.ConstAgg
	// AggFunc wraps an arbitrary Go function as an aggregator.
	AggFunc = core.Func
)

// ParseQuery parses the textual rule/formula syntax (see internal/parser)
// and classifies the query into the paper's language lattice.
func ParseQuery(src string) (Query, error) { return parser.Parse(src) }

// FindTopK solves FRP: a top-k package selection, or ok = false when fewer
// than k distinct valid packages exist.
func FindTopK(p *Problem) ([]Package, bool, error) { return p.FindTopK() }

// DecideTopK solves RPP: whether sel is a top-k package selection; when it
// is not because an outside package out-rates a member, that witness is
// returned.
func DecideTopK(p *Problem, sel []Package) (bool, *Package, error) { return p.DecideTopK(sel) }

// MaxBound solves the optimisation core of MBP: the maximum B admitting a
// top-k selection rated at least B throughout.
func MaxBound(p *Problem) (float64, bool, error) { return p.MaxBound() }

// IsMaxBound decides MBP for a candidate bound.
func IsMaxBound(p *Problem, b float64) (bool, error) { return p.IsMaxBound(b) }

// CountValid solves CPP: the number of valid packages rated at least B.
func CountValid(p *Problem, b float64) (int64, error) { return p.CountValid(b) }

// CountValidParallel solves CPP with the parallel engine (0 workers =
// GOMAXPROCS); the result equals CountValid.
func CountValidParallel(p *Problem, b float64, workers int) (int64, error) {
	return p.CountValidParallel(b, workers)
}

// FindTopKParallel solves FRP with the parallel engine; the selection is
// identical to FindTopK's. See also (*Problem).FindTopKParallelCtx for
// cancellation.
func FindTopKParallel(p *Problem, workers int) ([]Package, bool, error) {
	return p.FindTopKParallel(workers)
}

// DecideTopKParallel solves RPP with the parallel engine: the witness
// search fans out over the enumeration forest and the first counterexample
// found stops all workers. The decision matches DecideTopK; the particular
// witness may differ.
func DecideTopKParallel(p *Problem, sel []Package, workers int) (bool, *Package, error) {
	return p.DecideTopKParallel(sel, workers)
}

// ExistsKValid reports whether k distinct valid packages rated at least B
// exist — the feasibility core of QRPP and ARPP.
func ExistsKValid(p *Problem, k int, b float64) (bool, error) { return p.ExistsKValid(k, b) }

// ExistsKValidParallel is ExistsKValid on the parallel engine, cancelling
// all workers as soon as the k-th qualifying package is found.
func ExistsKValidParallel(p *Problem, k int, b float64, workers int) (bool, error) {
	return p.ExistsKValidParallel(k, b, workers)
}

// TopKItems solves the item recommendation problem for (Q, D, f).
func TopKItems(db *Database, q Query, f Utility, k int) ([]Tuple, bool, error) {
	return core.TopKItems(db, q, f, k)
}

// ItemProblem embeds item recommendation into the package model (Section 2).
func ItemProblem(db *Database, q Query, f Utility, k int) *Problem {
	return core.ItemProblem(db, q, f, k)
}

// RelaxPoints discovers the relaxable parameters of a query (Section 7).
func RelaxPoints(q Query) ([]RelaxPoint, error) { return relax.Points(q) }

// ApplyRelaxation builds the relaxed query QΓ for chosen levels.
func ApplyRelaxation(q Query, choices []RelaxChoice) (*Relaxation, error) {
	return relax.Apply(q, choices)
}

// RelaxQuery solves QRPP: the minimum-gap relaxation (within the instance's
// gap budget) under which k distinct valid packages rated at least B exist.
func RelaxQuery(inst RelaxInstance) (*Relaxation, bool, error) { return relax.Decide(inst) }

// AdjustItems solves ARPP: a minimum-size adjustment Δ(D, D′) with
// |Δ| ≤ k′ under which k distinct valid packages rated at least B exist.
func AdjustItems(inst AdjustInstance) (*Delta, bool, error) { return adjust.Decide(inst) }

// Serving layer (internal/serve): a long-lived daemon-grade service owning
// named, versioned item collections and answering the six problems over
// HTTP with result caching, request coalescing and bounded parallel solves.
// cmd/pkgrecd wraps it as a standalone daemon; see docs/serving.md.
type (
	// ServeServer is the recommendation service: collections + cache +
	// solve scheduler.
	ServeServer = serve.Server
	// ServeOptions configures a ServeServer.
	ServeOptions = serve.Options
	// ServeClient is the JSON-over-HTTP client for a pkgrecd daemon.
	ServeClient = serve.Client
	// ServeRequest is one solve request (problem spec + operation).
	ServeRequest = serve.Request
	// ServeResponse is a solve response.
	ServeResponse = serve.Response
	// ServeBatchRequest is N solve requests against one collection,
	// answered over a single snapshot with sub-request deduplication.
	ServeBatchRequest = serve.BatchRequest
	// ServeBatchItem is one sub-request of a batch.
	ServeBatchItem = serve.BatchItem
	// ServeBatchResponse is a batch response: per-item outcomes plus the
	// batch's dedup/cache/solve tally.
	ServeBatchResponse = serve.BatchResponse
	// ServeStats is the service's runtime counters (hit rate, in-flight,
	// latency percentiles).
	ServeStats = serve.Stats
	// CollectionDelta is an incremental collection mutation (tuple
	// upserts + deletes), applied in place of a full reload with
	// ServeServer.MutateCollection or ServeClient.ApplyDelta. (Distinct
	// from Delta, ARPP's adjustment set.)
	CollectionDelta = relation.Delta
	// CollectionRelationDelta addresses one relation's tuples within a
	// CollectionDelta.
	CollectionRelationDelta = relation.RelationDelta
	// ServeDeltaInfo reports what a collection delta changed.
	ServeDeltaInfo = serve.DeltaInfo
)

// NewServeServer builds a recommendation service; zero Options mean
// defaults (GOMAXPROCS concurrent solves, 1024 cache entries).
func NewServeServer(opts ServeOptions) *ServeServer { return serve.NewServer(opts) }

// NewServeClient builds a client for a pkgrecd daemon at baseURL.
func NewServeClient(baseURL string) *ServeClient { return serve.NewClient(baseURL) }

// Metrics for query relaxation.
var (
	// AbsDiffMetric is |a − b| on numerics.
	AbsDiffMetric = relax.AbsDiff
	// DiscreteMetric allows no relaxation beyond equality.
	DiscreteMetric = relax.Discrete
	// TableMetric is a symmetric table-driven metric.
	TableMetric = relax.Table
)

// Wire formats (JSON specs for problems, aggregators, relaxations and
// adjustments) live in internal/spec and are re-exported here; cmd/pkgrec,
// cmd/pkgrecd and the serving layer all speak them. Each spec carries a
// Canonical method producing the deterministic fingerprint text the serving
// layer's result cache is keyed on.
type (
	// AggSpec is the JSON wire form of an aggregator.
	AggSpec = spec.AggSpec
	// ProblemSpec is the JSON wire form of a recommendation problem:
	// queries in the textual syntax, aggregators as AggSpecs.
	ProblemSpec = spec.ProblemSpec
)
