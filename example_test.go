package pkgrec_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	pkgrec "repro"
)

// shopDB is the tiny deterministic item collection the examples share: a
// cheese-board shop with four items.
func shopDB() *pkgrec.Database {
	items := pkgrec.FromTuples(pkgrec.NewSchema("item", "name", "price", "rating"),
		pkgrec.NewTuple(pkgrec.Str("brie"), pkgrec.Int(4), pkgrec.Int(3)),
		pkgrec.NewTuple(pkgrec.Str("cheddar"), pkgrec.Int(3), pkgrec.Int(2)),
		pkgrec.NewTuple(pkgrec.Str("fig"), pkgrec.Int(2), pkgrec.Int(3)),
		pkgrec.NewTuple(pkgrec.Str("olive"), pkgrec.Int(1), pkgrec.Int(1)))
	return pkgrec.NewDatabase().Add(items)
}

// shopProblem bundles the shared instance: boards of up to two items, cost
// = total price within a budget of 6, rated by total rating.
func shopProblem(k int) *pkgrec.Problem {
	q, err := pkgrec.ParseQuery(`RQ(n, p, r) :- item(n, p, r).`)
	if err != nil {
		log.Fatal(err)
	}
	return &pkgrec.Problem{
		DB:         shopDB(),
		Q:          q,
		Cost:       pkgrec.SumAttr(1).WithMonotone(),
		Val:        pkgrec.SumAttr(2),
		Budget:     6,
		K:          k,
		MaxPkgSize: 2,
	}
}

// FindTopK solves FRP: the two best cheese boards within budget.
func ExampleFindTopK() {
	sel, ok, err := pkgrec.FindTopK(shopProblem(2))
	if err != nil || !ok {
		log.Fatal(err, ok)
	}
	prob := shopProblem(2)
	for i, n := range sel {
		names := make([]string, n.Len())
		for j, t := range n.Tuples() {
			names[j] = t[0].Text()
		}
		fmt.Printf("#%d val=%g cost=%g %v\n", i+1, prob.Val.Eval(n), prob.Cost.Eval(n), names)
	}
	// Output:
	// #1 val=6 cost=6 [brie fig]
	// #2 val=5 cost=5 [cheddar fig]
}

// CountValid solves CPP: how many valid boards rate at least 5?
func ExampleCountValid() {
	n, err := pkgrec.CountValid(shopProblem(2), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(n)
	// Output:
	// 2
}

// RelaxQuery solves QRPP: the query "items priced exactly 1" matches only
// the olives, so no two boards exist; the minimal relaxation widens the
// price by 1, reaching the figs too.
func ExampleRelaxQuery() {
	q, err := pkgrec.ParseQuery(`RQ(n, p, r) :- item(n, p, r), p = 1.`)
	if err != nil {
		log.Fatal(err)
	}
	prob := &pkgrec.Problem{
		DB: shopDB(), Q: q,
		Cost: pkgrec.CountOrInf(), Val: pkgrec.Count(), Budget: 1, K: 2,
	}
	points, err := pkgrec.RelaxPoints(q)
	if err != nil {
		log.Fatal(err)
	}
	for i := range points {
		points[i] = points[i].WithMetric(pkgrec.AbsDiffMetric())
	}
	rel, ok, err := pkgrec.RelaxQuery(pkgrec.RelaxInstance{
		Problem: prob, Points: points, Bound: 1, GapBudget: 2,
	})
	if err != nil || !ok {
		log.Fatal(err, ok)
	}
	fmt.Printf("gap %g: %s\n", rel.Gap, rel.Query)
	// Output:
	// gap 1: RQ(n, p, r) :- item(n, p, r), absdiff(p, 1) <= 1.
}

// EngineCounters watches the branch-and-bound engine work: solving the
// same FRP instance with pruning (the default) and exhaustively, the
// counters show the bound layer cutting subtrees that cannot beat the best
// board found so far — without changing the answer.
func ExampleEngineCounters() {
	for _, exhaustive := range []bool{false, true} {
		prob := shopProblem(1)
		var c pkgrec.EngineCounters
		prob.Counters = &c
		prob.Exhaustive = exhaustive
		sel, ok, err := pkgrec.FindTopK(prob)
		if err != nil || !ok {
			log.Fatal(err, ok)
		}
		fmt.Printf("exhaustive=%v best val=%g: visited=%d yielded=%d pruned=%d boundEvals=%d\n",
			exhaustive, prob.Val.Eval(sel[0]),
			c.Nodes.Load(), c.Yielded.Load(), c.Pruned.Load(), c.BoundEvals.Load())
	}
	// Output:
	// exhaustive=false best val=6: visited=7 yielded=6 pruned=2 boundEvals=6
	// exhaustive=true best val=6: visited=10 yielded=9 pruned=0 boundEvals=0
}

// NewServeClient talks to a pkgrecd daemon: upload a collection, solve the
// same CPP problem twice, and watch the second answer come from the result
// cache.
func ExampleNewServeClient() {
	srv := pkgrec.NewServeServer(pkgrec.ServeOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx := context.Background()
	client := pkgrec.NewServeClient(ts.URL)
	if _, err := client.PutCollection(ctx, "shop", shopDB()); err != nil {
		log.Fatal(err)
	}
	req := pkgrec.ServeRequest{
		Collection: "shop",
		Op:         "count",
		Spec: pkgrec.ProblemSpec{
			Query:      `RQ(n, p, r) :- item(n, p, r).`,
			Cost:       pkgrec.AggSpec{Kind: "sum", Attr: 1, Monotone: true},
			Val:        pkgrec.AggSpec{Kind: "sum", Attr: 2},
			Budget:     6,
			K:          2,
			MaxPkgSize: 2,
			Bound:      5,
		},
	}
	first, err := client.Solve(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	second, err := client.Solve(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count=%d cached=%v,%v\n", *first.Count, first.Cached, second.Cached)
	stats, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hit rate %.0f%%\n", 100*stats.HitRate)
	// Output:
	// count=2 cached=false,true
	// hit rate 50%
}
