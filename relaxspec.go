package pkgrec

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/relax"
)

// GroupSemantics selects how a group combines individual ratings
// (Section 9's group recommendation extension).
type GroupSemantics = core.GroupSemantics

// Group consensus semantics.
const (
	// LeastMisery rates a package by its least-happy user.
	LeastMisery = core.LeastMisery
	// AverageSatisfaction rates a package by the mean user rating.
	AverageSatisfaction = core.AverageSatisfaction
	// AverageMinusDisagreement penalises rating spread between users.
	AverageMinusDisagreement = core.AverageMinusDisagreement
)

// GroupVal compiles per-user rating functions into one group val().
func GroupVal(users []Aggregator, sem GroupSemantics, disagreementWeight float64) (Aggregator, error) {
	return core.GroupVal(users, sem, disagreementWeight)
}

// GroupProblem derives a group recommendation problem from a base problem
// and per-user rating functions.
func GroupProblem(base *Problem, users []Aggregator, sem GroupSemantics, disagreementWeight float64) (*Problem, error) {
	return core.GroupProblem(base, users, sem, disagreementWeight)
}

// MetricSpec is the JSON wire form of a distance function.
type MetricSpec struct {
	Kind    string             `json:"kind"` // absdiff | discrete | boolflip | table
	Name    string             `json:"name,omitempty"`
	Entries map[string]float64 `json:"entries,omitempty"` // "a|b" -> distance
}

// Build constructs the metric a MetricSpec describes.
func (s MetricSpec) Build() (Metric, error) {
	switch s.Kind {
	case "absdiff":
		return relax.AbsDiff(), nil
	case "discrete":
		return relax.Discrete(), nil
	case "boolflip":
		return relax.BoolFlip(), nil
	case "table":
		entries := map[[2]string]float64{}
		for k, d := range s.Entries {
			// Keys are "a|b".
			var a, b string
			for i := 0; i < len(k); i++ {
				if k[i] == '|' {
					a, b = k[:i], k[i+1:]
					break
				}
			}
			if a == "" || b == "" {
				return Metric{}, fmt.Errorf("pkgrec: table key %q is not of the form \"a|b\"", k)
			}
			entries[[2]string{a, b}] = d
		}
		name := s.Name
		if name == "" {
			name = "table"
		}
		return relax.Table(name, entries), nil
	default:
		return Metric{}, fmt.Errorf("pkgrec: unknown metric kind %q", s.Kind)
	}
}

// RelaxSpec is the JSON wire form of a QRPP instance: which discovered
// relaxation points to enable (by index into RelaxPoints' output) and with
// which metric.
type RelaxSpec struct {
	Points    []RelaxPointSpec `json:"points"`
	Bound     float64          `json:"bound"`
	GapBudget float64          `json:"gapBudget"`
}

// RelaxPointSpec selects one relaxation point.
type RelaxPointSpec struct {
	Index  int        `json:"index"`
	Metric MetricSpec `json:"metric"`
}

// Build resolves the spec against a problem's selection query.
func (s RelaxSpec) Build(prob *Problem) (RelaxInstance, error) {
	points, err := relax.Points(prob.Q)
	if err != nil {
		return RelaxInstance{}, err
	}
	var chosen []RelaxPoint
	for _, ps := range s.Points {
		if ps.Index < 0 || ps.Index >= len(points) {
			return RelaxInstance{}, fmt.Errorf("pkgrec: relaxation point index %d out of range (query has %d points)",
				ps.Index, len(points))
		}
		m, err := ps.Metric.Build()
		if err != nil {
			return RelaxInstance{}, err
		}
		chosen = append(chosen, points[ps.Index].WithMetric(m))
	}
	return RelaxInstance{
		Problem:   prob,
		Points:    chosen,
		Bound:     s.Bound,
		GapBudget: s.GapBudget,
	}, nil
}

// AdjustSpec is the JSON wire form of an ARPP instance; the extra
// collection D′ is loaded separately by the CLI.
type AdjustSpec struct {
	Bound  float64 `json:"bound"`
	KPrime int     `json:"kPrime"`
}

// Build pairs the spec with a problem and extra collection.
func (s AdjustSpec) Build(prob *Problem, extra *Database) AdjustInstance {
	return AdjustInstance{
		Problem: prob,
		Extra:   extra,
		Bound:   s.Bound,
		KPrime:  s.KPrime,
	}
}
