package pkgrec

import (
	"repro/internal/core"
	"repro/internal/spec"
)

// GroupSemantics selects how a group combines individual ratings
// (Section 9's group recommendation extension).
type GroupSemantics = core.GroupSemantics

// Group consensus semantics.
const (
	// LeastMisery rates a package by its least-happy user.
	LeastMisery = core.LeastMisery
	// AverageSatisfaction rates a package by the mean user rating.
	AverageSatisfaction = core.AverageSatisfaction
	// AverageMinusDisagreement penalises rating spread between users.
	AverageMinusDisagreement = core.AverageMinusDisagreement
)

// GroupVal compiles per-user rating functions into one group val().
func GroupVal(users []Aggregator, sem GroupSemantics, disagreementWeight float64) (Aggregator, error) {
	return core.GroupVal(users, sem, disagreementWeight)
}

// GroupProblem derives a group recommendation problem from a base problem
// and per-user rating functions.
func GroupProblem(base *Problem, users []Aggregator, sem GroupSemantics, disagreementWeight float64) (*Problem, error) {
	return core.GroupProblem(base, users, sem, disagreementWeight)
}

// Relaxation and adjustment wire formats, re-exported from internal/spec.
type (
	// MetricSpec is the JSON wire form of a distance function.
	MetricSpec = spec.MetricSpec
	// RelaxSpec is the JSON wire form of a QRPP instance: which discovered
	// relaxation points to enable (by index into RelaxPoints' output) and
	// with which metric.
	RelaxSpec = spec.RelaxSpec
	// RelaxPointSpec selects one relaxation point.
	RelaxPointSpec = spec.RelaxPointSpec
	// AdjustSpec is the JSON wire form of an ARPP instance; the extra
	// collection D′ is loaded separately by the CLI.
	AdjustSpec = spec.AdjustSpec
)
