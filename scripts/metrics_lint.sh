#!/usr/bin/env bash
# metrics_lint.sh — promtool-style validation of a Prometheus text-format
# (0.0.4) exposition, with nothing but POSIX awk. CI scrapes the daemon's
# /metrics into a file and pipes it through here, so the hand-rolled
# exposition in internal/serve/metrics.go stays scrapeable without adding
# a prometheus dependency to the repo.
#
#   usage: scripts/metrics_lint.sh metrics.txt
#
# Checks:
#   - every non-comment line parses as  name[{labels}] value
#   - every sampled family is announced by # HELP and # TYPE first
#   - TYPE is one of counter | gauge | histogram
#   - every family carries the pkgrec_ namespace prefix
#   - sample values are finite numbers; counters are >= 0
#   - histograms: le bounds ascending, bucket counts cumulative,
#     le="+Inf" present and equal to the _count series, _sum present
set -euo pipefail

if [ $# -ne 1 ] || [ ! -f "$1" ]; then
  echo "usage: $0 <metrics-file>" >&2
  exit 2
fi

awk '
function fail(msg) { printf "metrics_lint: line %d: %s: %s\n", NR, msg, $0; bad = 1 }
function famof(name,   base) {
  # histogram samples attach to the family their suffix strips to
  if (name ~ /_bucket$/) { base = substr(name, 1, length(name) - 7); if (type[base] == "histogram") return base }
  if (name ~ /_sum$/)    { base = substr(name, 1, length(name) - 4); if (type[base] == "histogram") return base }
  if (name ~ /_count$/)  { base = substr(name, 1, length(name) - 6); if (type[base] == "histogram") return base }
  return name
}
function series(fam, labels,   s) {
  # group one labeled histogram: everything but the le pair
  s = labels
  sub(/le="[^"]*",?/, "", s)
  return fam "|" s
}
/^# HELP / {
  if (NF < 4 || $3 == "") fail("HELP without text")
  help[$3] = 1; next
}
/^# TYPE / {
  if ($4 != "counter" && $4 != "gauge" && $4 != "histogram") fail("unknown TYPE")
  if (!($3 in help)) fail("TYPE before HELP")
  if ($3 !~ /^pkgrec_/) fail("family outside the pkgrec_ namespace")
  type[$3] = $4; next
}
/^#/ { fail("unrecognized comment"); next }
/^$/ { next }
{
  # sample line: name[{labels}] value
  if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?([0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|NaN|Inf)$/) {
    fail("unparseable sample"); next
  }
  name = $1; val = $2
  labels = ""
  if (match(name, /\{.*\}$/)) {
    labels = substr(name, RSTART + 1, RLENGTH - 2)
    name = substr(name, 1, RSTART - 1)
  }
  fam = famof(name)
  if (!(fam in type)) { fail("sample with no TYPE declaration"); next }
  sampled[fam] = 1
  if (val ~ /NaN|Inf/) fail("non-finite sample value")
  if (type[fam] == "counter" && val + 0 < 0) fail("negative counter")
  if (type[fam] == "histogram" && name ~ /_bucket$/) {
    if (!match(labels, /le="[^"]*"/)) { fail("bucket without le label"); next }
    le = substr(labels, RSTART + 4, RLENGTH - 5)
    s = series(fam, labels)
    if (le == "+Inf") {
      inf[s] = val + 0; has_inf[s] = 1
    } else {
      if ((s in prev_le) && le + 0 <= prev_le[s]) fail("bucket bounds not ascending")
      if ((s in prev_ct) && val + 0 < prev_ct[s]) fail("bucket counts not cumulative")
      prev_le[s] = le + 0; prev_ct[s] = val + 0
    }
  }
  if (type[fam] == "histogram" && name ~ /_count$/) {
    s = series(fam, labels)
    cnt[s] = val + 0; has_cnt[s] = 1
  }
  if (type[fam] == "histogram" && name ~ /_sum$/) {
    s = series(fam, labels)
    has_sum[s] = 1
  }
}
END {
  nfam = 0
  for (f in type) {
    nfam++
    if (!(f in sampled)) { printf "metrics_lint: family %s declared but never sampled\n", f; bad = 1 }
  }
  for (s in has_cnt) {
    if (!(s in has_inf)) { printf "metrics_lint: histogram %s lacks an le=\"+Inf\" bucket\n", s; bad = 1 }
    else if (inf[s] != cnt[s]) { printf "metrics_lint: histogram %s: +Inf bucket %d != _count %d\n", s, inf[s], cnt[s]; bad = 1 }
    if (!(s in has_sum)) { printf "metrics_lint: histogram %s lacks a _sum series\n", s; bad = 1 }
    if ((s in prev_ct) && prev_ct[s] > inf[s]) { printf "metrics_lint: histogram %s: finite bucket exceeds +Inf\n", s; bad = 1 }
  }
  for (s in has_inf) if (!(s in has_cnt)) { printf "metrics_lint: histogram %s has buckets but no _count\n", s; bad = 1 }
  if (nfam == 0) { print "metrics_lint: no metric families found"; bad = 1 }
  if (bad) exit 1
  printf "metrics_lint: OK (%d families)\n", nfam
}
' "$1"
