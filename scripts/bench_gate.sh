#!/usr/bin/env bash
# bench_gate.sh — the CI benchmark-regression gate.
#
# Compares the engine's visited-node counts in a fresh `recbench -quick
# -json` run against the committed baseline, per (family, param) sample,
# and fails when any family's node count regresses by more than 5%. Node
# and pruned counts are deterministic for the serial families — they count
# algorithmic work, not wall time — so the gate is machine-independent;
# `PAR-*-parallel` rows are excluded because the parallel engine's
# cooperative floor-tightening makes their counts timing-dependent.
#
#   go run ./cmd/recbench -quick -json > BENCH_quick.json
#   scripts/bench_gate.sh BENCH_baseline.json BENCH_quick.json
#
# To refresh the baseline after an intentional engine change (and only
# then), regenerate it and commit the result:
#
#   go run ./cmd/recbench -quick -json > BENCH_baseline.json
#
# See BENCHMARKS.md ("Benchmark-regression gate") for the policy.
set -euo pipefail

baseline=${1:-BENCH_baseline.json}
current=${2:-BENCH_quick.json}

jq -n --slurpfile base "$baseline" --slurpfile cur "$current" '
  def rows(doc):
    doc[0][] | .rows[]
    | select((.id | endswith("-parallel")) | not)
    | . as $r
    | (.samples // [])[]
    | select((.nodes // 0) > 0)
    | {key: ($r.id + "@n=" + (.param | tostring)), nodes: .nodes, pruned: (.pruned // 0)};

  [rows($base)] as $b
  | [rows($cur)] as $c
  | ($c | map({(.key): .}) | add // {}) as $cmap
  | [ $b[]
      | . as $row
      | $cmap[$row.key] as $now
      | if $now == null then
          {key: $row.key, fail: "sample missing from current run"}
        elif $now.nodes > ($row.nodes * 1.05) then
          {key: $row.key,
           fail: ("visited nodes regressed >5%: " + ($row.nodes | tostring)
                  + " -> " + ($now.nodes | tostring)
                  + " (pruned " + ($row.pruned | tostring)
                  + " -> " + ($now.pruned | tostring) + ")")}
        else
          empty
        end ]
  | if ($b | length) == 0 then
      "bench gate: no instrumented samples in baseline" | halt_error(1)
    elif length > 0 then
      ("bench gate: FAIL\n" + (map("  " + .key + ": " + .fail) | join("\n")) + "\n")
        | halt_error(1)
    else
      "bench gate: OK (" + ($b | length | tostring) + " deterministic samples within 5% of baseline)"
    end
'
