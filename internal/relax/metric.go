// Package relax implements the query relaxation recommendations of
// Section 7: distance functions Γ, relaxation points (the sets E of
// constants and X of repeated variables that may be modified), construction
// of relaxed queries QΓ with their level of relaxation gap(QΓ), and the
// decision problem QRPP — does a relaxation with gap at most g admit k
// distinct valid packages rated at least B?
//
// The relaxation rules follow Section 7.1:
//
//   - a constant c occurring in a relation atom is replaced by a fresh
//     variable w constrained by dist(w, c) ≤ d (or kept, at gap 0);
//   - an equality x = c is replaced by dist(x, c) ≤ d;
//   - a repeated variable x has one occurrence replaced by a fresh variable
//     u constrained by dist(u, x) ≤ d, turning an equijoin into a bounded
//     near-join (d = 0 keeps the equijoin).
//
// Thresholds are searched up to D-equivalence (Theorem 7.2's upper-bound
// argument): only distances realised between the constant and active-domain
// values matter.
//
// QRPP is Σp2-complete in combined complexity with compatibility
// constraints and NP-complete without (and in data complexity); Decide
// realises the upper bounds deterministically — level assignments in
// ascending total gap, each tested through the core ∃k-valid feasibility
// search — so the returned Relaxation is always a minimal-gap witness.
// DecideCtx is the serving-layer variant (parallel feasibility core plus
// deadline) with identical answers. The public facade exposes the package
// as pkgrec.RelaxQuery / pkgrec.RelaxPoints / pkgrec.ApplyRelaxation;
// docs/complexity.md maps the paper's QRPP results onto it, and
// internal/reductions (QRPPFromEFDNF, QRPPFrom3SAT) holds the matching
// hardness witnesses.
package relax

import (
	"math"

	"repro/internal/query"
	"repro/internal/relation"
)

// Metric is a distance function over an attribute domain, an element of Γ.
// Metrics must be positive definite (dist(a, a) = 0, dist(a, b) > 0 for
// a ≠ b) for gap-0 relaxations to coincide with the original query.
type Metric struct {
	Name string
	Fn   query.DistanceFunc
}

// AbsDiff is the numeric metric |a − b|; non-numeric operands are infinitely
// far apart.
func AbsDiff() Metric {
	return Metric{Name: "absdiff", Fn: func(a, b relation.Value) float64 {
		if !a.IsNumeric() || !b.IsNumeric() {
			if a.Equal(b) {
				return 0
			}
			return math.Inf(1)
		}
		return math.Abs(a.Float64() - b.Float64())
	}}
}

// Discrete is the 0/∞ metric: no relaxation beyond exact equality.
func Discrete() Metric {
	return Metric{Name: "discrete", Fn: func(a, b relation.Value) float64 {
		if a.Equal(b) {
			return 0
		}
		return math.Inf(1)
	}}
}

// Table builds a symmetric table-driven metric (for instance the city
// distances of Example 7.1: dist(nyc, ewr) ≤ 15). Missing pairs are
// infinitely far apart; dist(a, a) is always 0.
func Table(name string, entries map[[2]string]float64) Metric {
	return Metric{Name: name, Fn: func(a, b relation.Value) float64 {
		if a.Equal(b) {
			return 0
		}
		if a.Kind() != relation.KindString || b.Kind() != relation.KindString {
			return math.Inf(1)
		}
		if d, ok := entries[[2]string{a.Text(), b.Text()}]; ok {
			return d
		}
		if d, ok := entries[[2]string{b.Text(), a.Text()}]; ok {
			return d
		}
		return math.Inf(1)
	}}
}

// BoolFlip is the metric on the Boolean domain used by the hardness
// reductions of Theorems 7.2 and 8.1: dist(0, 1) = dist(1, 0) = 1.
func BoolFlip() Metric {
	return Metric{Name: "boolflip", Fn: func(a, b relation.Value) float64 {
		if a.Equal(b) {
			return 0
		}
		return 1
	}}
}
