package relax

import (
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

func TestApplyOnUCQ(t *testing.T) {
	db := travelDB()
	// Union: direct edi → nyc flights, or gla → nyc flights.
	u := query.NewUCQ("Q",
		query.NewCQ("Q1", []query.Term{query.V("p")},
			query.Rel("flight", query.CS("edi"), query.CS("nyc"), query.V("p"))),
		query.NewCQ("Q2", []query.Term{query.V("p")},
			query.Rel("flight", query.CS("gla"), query.CS("nyc"), query.V("p"))))
	orig, err := u.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Len() != 1 { // only gla → nyc exists
		t.Fatalf("original UCQ answer = %v", orig)
	}
	pts, err := Points(u)
	if err != nil {
		t.Fatal(err)
	}
	// Four constant points: edi, nyc, gla, nyc.
	if len(pts) != 4 {
		t.Fatalf("points = %v, want 4", pts)
	}
	// Relax the first disjunct's destination: edi → ewr now matches too.
	rel, err := Apply(u, []Choice{{Point: pts[1].WithMetric(cityMetric()), D: 12}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.Query.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("relaxed UCQ answer = %v, want gla flight + ewr flight", got)
	}
}

func TestApplyInsideFONegationAndQuantifiers(t *testing.T) {
	// Relaxation points inside FNot/FForall subformulas are still
	// discovered and rewritten mechanically (the walker recurses
	// everywhere); semantics under negation are the caller's concern.
	db := travelDB()
	q := query.NewFO("Q", []query.Term{query.V("p")},
		query.And(
			query.Exists([]string{"f", "t"},
				query.And(
					query.Atomf(query.Rel("flight", query.V("f"), query.V("t"), query.V("p"))),
					query.Atomf(query.Eq(query.V("t"), query.CS("ewr"))))),
			query.Not(query.Atomf(query.Eq(query.V("p"), query.CI(90))))))
	pts, err := Points(q)
	if err != nil {
		t.Fatal(err)
	}
	// Points: the constant "ewr" in the equality and 90 under the negation.
	if len(pts) != 2 {
		t.Fatalf("points = %v, want 2", pts)
	}
	orig, err := q.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Len() != 1 || !orig.Contains(relation.Ints(420)) {
		t.Fatalf("original FO answer = %v", orig)
	}
	// Relax the equality under the negation by ±340: now 420 is "close to
	// 90", so the negation excludes it and the answer becomes empty.
	rel, err := Apply(q, []Choice{{Point: pts[1].WithMetric(AbsDiff()), D: 340}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.Query.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("negation-relaxed answer = %v, want empty", got)
	}
}

func TestCandidateLevelsSplitVariable(t *testing.T) {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("R", "a"),
		relation.Ints(1), relation.Ints(4), relation.Ints(9)))
	p := Point{Kind: SplitVariable, Var: "y", Metric: AbsDiff()}
	levels := CandidateLevels(db, p, 100)
	// Pairwise distances: 3, 5, 8, plus 0.
	want := []float64{0, 3, 5, 8}
	if len(levels) != len(want) {
		t.Fatalf("levels = %v, want %v", levels, want)
	}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
}

func TestSplitVariableKeepsOneOccurrence(t *testing.T) {
	// Splitting every occurrence of a repeated variable would unground the
	// distance atoms; the walker must keep at least one original.
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("R", "a", "b"),
		relation.Ints(1, 10)))
	db.Add(relation.FromTuples(relation.NewSchema("S", "b"),
		relation.Ints(11)))
	q := query.NewCQ("Q", []query.Term{query.V("a")},
		query.Rel("R", query.V("a"), query.V("y")), query.Rel("S", query.V("y")))
	pts, _ := Points(q)
	var splits []Choice
	for _, p := range pts {
		if p.Kind == SplitVariable {
			splits = append(splits, Choice{Point: p.WithMetric(AbsDiff()), D: 1})
		}
	}
	if len(splits) != 2 {
		t.Fatalf("want both split points, got %v", splits)
	}
	rel, err := Apply(q, splits)
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Query.Validate(); err != nil {
		t.Fatalf("relaxed query invalid: %v", err)
	}
	got, err := rel.Query.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("near-join with capped splitting = %v", got)
	}
}

func TestDecideReportsMinimalAcrossMultiplePoints(t *testing.T) {
	// Two relaxable points with different candidate levels: Decide must
	// return the cheapest feasible combination, not just any.
	db := travelDB()
	q := directQuery()
	prob := &core.Problem{DB: db, Q: q, Cost: core.CountOrInf(), Val: core.Count(), Budget: 1, K: 1}
	pts, _ := Points(q)
	inst := Instance{
		Problem: prob,
		Points: []Point{
			pts[0].WithMetric(cityMetric()), // edi: candidate 42 (gla)
			pts[1].WithMetric(cityMetric()), // nyc: candidate 12 (ewr)
		},
		Bound:     1,
		GapBudget: 100,
	}
	rel, ok, err := Decide(inst)
	if err != nil || !ok {
		t.Fatalf("Decide: ok=%v err=%v", ok, err)
	}
	// gap 12 (destination only) beats 42 (origin only, reaching gla → nyc).
	if rel.Gap != 12 {
		t.Fatalf("minimal gap = %g, want 12", rel.Gap)
	}
}

func TestApplyUnsupportedQueryType(t *testing.T) {
	if _, err := Points(nil); err == nil {
		t.Fatal("nil query should error")
	}
}
