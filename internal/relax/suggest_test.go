package relax

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
)

// symmetricMetric prices both relaxations of the travel query at 12 miles,
// so two distinct gap-12 assignments tie on total gap.
func symmetricMetric() Metric {
	return Table("symdist", map[[2]string]float64{
		{"nyc", "ewr"}: 12,
		{"edi", "gla"}: 12,
	})
}

func travelInstance(t *testing.T, m Metric, gapBudget float64) Instance {
	t.Helper()
	db := travelDB()
	q := directQuery()
	prob := &core.Problem{
		DB: db, Q: q,
		Cost: core.CountOrInf(), Val: core.Count(), Budget: 1, K: 1,
	}
	pts, err := Points(q)
	if err != nil {
		t.Fatal(err)
	}
	return Instance{
		Problem:   prob,
		Points:    []Point{pts[0].WithMetric(m), pts[1].WithMetric(m)},
		Bound:     1,
		GapBudget: gapBudget,
	}
}

// An instance with no relaxation points has a one-assignment lattice — the
// unrelaxed query at gap 0 — so the answer is exactly base feasibility.
func TestSuggestEmptyRelaxationSpace(t *testing.T) {
	db := travelDB()
	feasibleQ := query.NewCQ("Q", []query.Term{query.V("p")},
		query.Rel("flight", query.CS("edi"), query.CS("lhr"), query.V("p")))
	prob := &core.Problem{DB: db, Q: feasibleQ,
		Cost: core.CountOrInf(), Val: core.Count(), Budget: 1, K: 1}
	sugs, err := Suggest(Instance{Problem: prob, Bound: 1, GapBudget: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) != 1 || sugs[0].Gap != 0 || sugs[0].Witness == nil {
		t.Fatalf("feasible pointless instance: got %+v, want one gap-0 suggestion with witness", sugs)
	}
	if len(sugs[0].Relaxation.Choices) != 0 {
		t.Fatalf("pointless suggestion carries choices: %v", sugs[0].Relaxation.Choices)
	}

	infeasibleProb := &core.Problem{DB: db, Q: directQuery(),
		Cost: core.CountOrInf(), Val: core.Count(), Budget: 1, K: 1}
	sugs, err = Suggest(Instance{Problem: infeasibleProb, Bound: 1, GapBudget: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) != 0 {
		t.Fatalf("infeasible pointless instance: got %d suggestions, want none", len(sugs))
	}
	if _, ok, err := Decide(Instance{Problem: infeasibleProb, Bound: 1, GapBudget: 10}); err != nil || ok {
		t.Fatalf("Decide on infeasible pointless instance: ok=%v err=%v", ok, err)
	}
}

// Gap ties rank deterministically: equal total gaps order by the lexical
// level vector, and repeated runs return the identical ranking.
func TestSuggestRanksTiesDeterministically(t *testing.T) {
	inst := travelInstance(t, symmetricMetric(), 20)
	want := [][]float64{{0, 12}, {12, 0}}
	var prev []Suggestion
	for run := 0; run < 3; run++ {
		sugs, err := Suggest(inst, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(sugs) != 2 {
			t.Fatalf("run %d: %d suggestions, want 2 (both gap-12 relaxations)", run, len(sugs))
		}
		for i, sg := range sugs {
			if sg.Gap != 12 {
				t.Fatalf("run %d: suggestion %d gap = %g, want 12", run, i, sg.Gap)
			}
			levels := []float64{sg.Relaxation.Choices[0].D, sg.Relaxation.Choices[1].D}
			if !reflect.DeepEqual(levels, want[i]) {
				t.Fatalf("run %d: suggestion %d levels = %v, want %v (lex tie-break)", run, i, levels, want[i])
			}
			if sg.Witness == nil {
				t.Fatalf("run %d: suggestion %d has no witness", run, i)
			}
		}
		if prev != nil {
			for i := range sugs {
				if sugs[i].Relaxation.Query.String() != prev[i].Relaxation.Query.String() {
					t.Fatalf("run %d: ranking not stable across runs", run)
				}
			}
		}
		prev = sugs
	}
}

// Neither gap-12 relaxation dominates the other, but the gap-24 assignment
// relaxing both points dominates each and must not be suggested.
func TestSuggestPrunesDominatedAssignments(t *testing.T) {
	inst := travelInstance(t, symmetricMetric(), 30)
	sugs, err := Suggest(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) != 2 {
		t.Fatalf("%d suggestions, want 2 — the (12,12) assignment is dominated", len(sugs))
	}
	for _, sg := range sugs {
		if sg.Gap != 12 {
			t.Fatalf("dominated assignment surfaced: gap %g", sg.Gap)
		}
	}
}

// Cancellation is honoured between lattice assignments.
func TestSuggestCtxCancelled(t *testing.T) {
	inst := travelInstance(t, cityMetric(), 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SuggestCtx(ctx, inst, 0, 2); err != context.Canceled {
		t.Fatalf("SuggestCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, _, err := DecideCtx(ctx, inst, 2); err != context.Canceled {
		t.Fatalf("DecideCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, _, err := DecideLoopCtx(ctx, inst, 2); err != context.Canceled {
		t.Fatalf("DecideLoopCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}
