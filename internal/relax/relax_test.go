package relax

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// travelDB models Example 7.1: there is no direct edi → nyc flight, but
// there is one to ewr, 12 miles from nyc.
func travelDB() *relation.Database {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("flight", "from", "to", "price"),
		relation.NewTuple(relation.Str("edi"), relation.Str("ewr"), relation.Int(420)),
		relation.NewTuple(relation.Str("edi"), relation.Str("lhr"), relation.Int(90)),
		relation.NewTuple(relation.Str("gla"), relation.Str("nyc"), relation.Int(500))))
	return db
}

// cityMetric measures distances between airports/cities.
func cityMetric() Metric {
	return Table("citydist", map[[2]string]float64{
		{"nyc", "ewr"}: 12,
		{"nyc", "jfk"}: 10,
		{"edi", "gla"}: 42,
	})
}

// directQuery selects direct edi → nyc flights.
func directQuery() *query.CQ {
	return query.NewCQ("Q", []query.Term{query.V("p")},
		query.Rel("flight", query.CS("edi"), query.CS("nyc"), query.V("p")))
}

func TestMetrics(t *testing.T) {
	ab := AbsDiff()
	if ab.Fn(relation.Int(3), relation.Int(10)) != 7 {
		t.Fatal("absdiff wrong")
	}
	if !math.IsInf(ab.Fn(relation.Str("a"), relation.Int(1)), 1) {
		t.Fatal("absdiff across kinds should be infinite")
	}
	if ab.Fn(relation.Str("a"), relation.Str("a")) != 0 {
		t.Fatal("absdiff of equal strings should be 0")
	}
	d := Discrete()
	if d.Fn(relation.Int(1), relation.Int(1)) != 0 || !math.IsInf(d.Fn(relation.Int(1), relation.Int(2)), 1) {
		t.Fatal("discrete metric wrong")
	}
	c := cityMetric()
	if c.Fn(relation.Str("nyc"), relation.Str("ewr")) != 12 || c.Fn(relation.Str("ewr"), relation.Str("nyc")) != 12 {
		t.Fatal("table metric should be symmetric")
	}
	if c.Fn(relation.Str("nyc"), relation.Str("nyc")) != 0 {
		t.Fatal("table metric should be reflexive-zero")
	}
	if !math.IsInf(c.Fn(relation.Str("nyc"), relation.Str("tokyo")), 1) {
		t.Fatal("missing table entries should be infinite")
	}
	b := BoolFlip()
	if b.Fn(relation.Int(0), relation.Int(1)) != 1 || b.Fn(relation.Int(1), relation.Int(1)) != 0 {
		t.Fatal("boolflip wrong")
	}
}

func TestPointsDiscoveryCQ(t *testing.T) {
	pts, err := Points(directQuery())
	if err != nil {
		t.Fatal(err)
	}
	// Two constants: "edi" and "nyc".
	if len(pts) != 2 {
		t.Fatalf("points = %v, want 2", pts)
	}
	if !pts[0].Const.Equal(relation.Str("edi")) || !pts[1].Const.Equal(relation.Str("nyc")) {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].Kind != ConstInAtom || pts[0].Pred != "flight" {
		t.Fatalf("point 0 = %+v", pts[0])
	}
}

func TestPointsDiscoveryRepeatedVariable(t *testing.T) {
	// Equijoin: R(x, y), S(y) — y is repeated (2 sites), x is not.
	q := query.NewCQ("Q", []query.Term{query.V("x")},
		query.Rel("R", query.V("x"), query.V("y")), query.Rel("S", query.V("y")))
	pts, err := Points(q)
	if err != nil {
		t.Fatal(err)
	}
	splits := 0
	for _, p := range pts {
		if p.Kind == SplitVariable {
			splits++
			if p.Var != "y" {
				t.Fatalf("split point for wrong variable: %+v", p)
			}
		}
	}
	if splits != 2 {
		t.Fatalf("split points = %d, want 2 (both occurrences of y)", splits)
	}
}

func TestPointsDiscoveryEquality(t *testing.T) {
	q := query.NewCQ("Q", []query.Term{query.V("x")},
		query.Rel("R", query.V("x"), query.V("c")), query.Eq(query.V("c"), query.CI(0)))
	pts, err := Points(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pts {
		if p.Kind == ConstInEquality && p.Const.Equal(relation.Int(0)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("equality point not discovered: %v", pts)
	}
}

func TestApplyGapZeroKeepsQuery(t *testing.T) {
	q := directQuery()
	pts, _ := Points(q)
	choices := []Choice{{Point: pts[0].WithMetric(cityMetric()), D: 0},
		{Point: pts[1].WithMetric(cityMetric()), D: 0}}
	rel, err := Apply(q, choices)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Gap != 0 {
		t.Fatalf("gap = %g, want 0", rel.Gap)
	}
	db := travelDB()
	orig, _ := q.Eval(db)
	got, err := rel.Query.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig) {
		t.Fatalf("gap-0 relaxation changed the answer: %v vs %v", got, orig)
	}
}

func TestApplyRelaxesDestination(t *testing.T) {
	// Example 7.1: relaxing To = nyc by 15 miles finds the edi → ewr flight.
	q := directQuery()
	pts, _ := Points(q)
	choices := []Choice{{Point: pts[1].WithMetric(cityMetric()), D: 15}}
	rel, err := Apply(q, choices)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Gap != 15 {
		t.Fatalf("gap = %g, want 15", rel.Gap)
	}
	got, err := rel.Query.Eval(travelDB())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(relation.Ints(420)) {
		t.Fatalf("relaxed answer = %v, want the 420 ewr flight", got)
	}
}

func TestRelaxationIsMonotone(t *testing.T) {
	// Property: for positive queries, QΓ(D) ⊇ Q(D) for any levels.
	q := directQuery()
	pts, _ := Points(q)
	db := travelDB()
	orig, _ := q.Eval(db)
	for _, d0 := range []float64{0, 20, 50} {
		for _, d1 := range []float64{0, 12, 15} {
			rel, err := Apply(q, []Choice{
				{Point: pts[0].WithMetric(cityMetric()), D: d0},
				{Point: pts[1].WithMetric(cityMetric()), D: d1}})
			if err != nil {
				t.Fatal(err)
			}
			got, err := rel.Query.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			for _, tup := range orig.Tuples() {
				if !got.Contains(tup) {
					t.Fatalf("relaxation (%g, %g) lost tuple %v", d0, d1, tup)
				}
			}
		}
	}
}

func TestApplySplitVariableTurnsJoinIntoNearJoin(t *testing.T) {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("R", "a", "b"),
		relation.Ints(1, 10), relation.Ints(2, 20)))
	db.Add(relation.FromTuples(relation.NewSchema("S", "b"),
		relation.Ints(11), relation.Ints(25)))
	q := query.NewCQ("Q", []query.Term{query.V("a")},
		query.Rel("R", query.V("a"), query.V("y")), query.Rel("S", query.V("y")))
	// Exact join is empty.
	orig, _ := q.Eval(db)
	if orig.Len() != 0 {
		t.Fatalf("exact join should be empty: %v", orig)
	}
	pts, _ := Points(q)
	var split *Point
	for i := range pts {
		if pts[i].Kind == SplitVariable {
			split = &pts[i]
			break
		}
	}
	if split == nil {
		t.Fatal("no split point found")
	}
	rel, err := Apply(q, []Choice{{Point: split.WithMetric(AbsDiff()), D: 1}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.Query.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	// |10 − 11| = 1: the near-join finds a = 1.
	if got.Len() != 1 || !got.Contains(relation.Ints(1)) {
		t.Fatalf("near-join answer = %v, want {(1)}", got)
	}
}

func TestApplyEqualityRelaxation(t *testing.T) {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("R", "v"),
		relation.Ints(0), relation.Ints(1), relation.Ints(5)))
	q := query.NewCQ("Q", []query.Term{query.V("v")},
		query.Rel("R", query.V("v")), query.Eq(query.V("v"), query.CI(0)))
	pts, _ := Points(q)
	var eqPt *Point
	for i := range pts {
		if pts[i].Kind == ConstInEquality {
			eqPt = &pts[i]
		}
	}
	if eqPt == nil {
		t.Fatal("equality point not found")
	}
	rel, err := Apply(q, []Choice{{Point: eqPt.WithMetric(AbsDiff()), D: 1}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.Query.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || !got.Contains(relation.Ints(1)) {
		t.Fatalf("relaxed equality answer = %v, want {0, 1}", got)
	}
}

func TestApplyOnFOQuery(t *testing.T) {
	db := travelDB()
	q := query.NewFO("Q", []query.Term{query.V("p")},
		query.Exists([]string{"f", "t"}, query.And(
			query.Atomf(query.Rel("flight", query.V("f"), query.V("t"), query.V("p"))),
			query.Atomf(query.Eq(query.V("f"), query.CS("edi"))),
			query.Atomf(query.Eq(query.V("t"), query.CS("nyc"))))))
	orig, err := q.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Len() != 0 {
		t.Fatalf("original FO query should be empty, got %v", orig)
	}
	pts, err := Points(q)
	if err != nil {
		t.Fatal(err)
	}
	var nycPt *Point
	for i := range pts {
		if pts[i].Const.Equal(relation.Str("nyc")) {
			nycPt = &pts[i]
		}
	}
	if nycPt == nil {
		t.Fatalf("nyc point not found among %v", pts)
	}
	rel, err := Apply(q, []Choice{{Point: nycPt.WithMetric(cityMetric()), D: 15}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.Query.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(relation.Ints(420)) {
		t.Fatalf("relaxed FO answer = %v", got)
	}
}

func TestApplyOnDatalog(t *testing.T) {
	db := travelDB()
	prog := query.NewDatalog("Q",
		query.NewRule(query.Rel("Q", query.V("p")),
			query.Rel("flight", query.CS("edi"), query.CS("nyc"), query.V("p"))))
	pts, err := Points(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	rel, err := Apply(prog, []Choice{{Point: pts[1].WithMetric(cityMetric()), D: 12}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.Query.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("relaxed datalog answer = %v", got)
	}
}

func TestCandidateLevels(t *testing.T) {
	db := travelDB()
	pts, _ := Points(directQuery())
	nyc := pts[1].WithMetric(cityMetric())
	levels := CandidateLevels(db, nyc, 100)
	// Finite distances from nyc into the active domain: ewr (12); edi/gla/
	// lhr/prices are infinite or >100. Plus 0 and dist(nyc,nyc)=0.
	if len(levels) != 2 || levels[0] != 0 || levels[1] != 12 {
		t.Fatalf("levels = %v, want [0 12]", levels)
	}
	capped := CandidateLevels(db, nyc, 5)
	if len(capped) != 1 || capped[0] != 0 {
		t.Fatalf("capped levels = %v, want [0]", capped)
	}
}

func TestQRPPDecideTravel(t *testing.T) {
	// Package problem over the travel data: packages of direct edi → nyc
	// flights, val = count, B = 1 (at least one flight), k = 1.
	db := travelDB()
	q := directQuery()
	prob := &core.Problem{
		DB: db, Q: q,
		Cost: core.CountOrInf(), Val: core.Count(), Budget: 1, K: 1,
	}
	pts, _ := Points(q)
	inst := Instance{
		Problem: prob,
		Points: []Point{
			pts[0].WithMetric(cityMetric()),
			pts[1].WithMetric(cityMetric()),
		},
		Bound:     1,
		GapBudget: 15,
	}
	rel, ok, err := Decide(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("QRPP should find a relaxation (nyc → within 15 miles)")
	}
	// Minimal gap is 12 (relax destination to ewr only).
	if rel.Gap != 12 {
		t.Fatalf("gap = %g, want 12", rel.Gap)
	}

	// Budget below 12: infeasible.
	inst.GapBudget = 10
	_, ok, err = Decide(inst)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("QRPP should fail with gap budget 10")
	}
}

func TestQRPPDecideAlreadyFeasible(t *testing.T) {
	// If Q already yields packages, the minimal relaxation is gap 0.
	db := travelDB()
	q := query.NewCQ("Q", []query.Term{query.V("p")},
		query.Rel("flight", query.CS("edi"), query.CS("lhr"), query.V("p")))
	prob := &core.Problem{DB: db, Q: q, Cost: core.CountOrInf(), Val: core.Count(), Budget: 1, K: 1}
	pts, _ := Points(q)
	inst := Instance{Problem: prob, Points: []Point{pts[1].WithMetric(cityMetric())},
		Bound: 1, GapBudget: 50}
	rel, ok, err := Decide(inst)
	if err != nil || !ok {
		t.Fatalf("Decide: ok=%v err=%v", ok, err)
	}
	if rel.Gap != 0 {
		t.Fatalf("already-feasible instance should relax with gap 0, got %g", rel.Gap)
	}
}

func TestQRPPDecideItems(t *testing.T) {
	db := travelDB()
	q := directQuery()
	pts, _ := Points(q)
	f := core.UtilityNegAttr(0) // cheaper flights rate higher
	rel, ok, err := DecideItems(db, q, []Point{pts[1].WithMetric(cityMetric())},
		f, -500, 1, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("item QRPP should succeed via ewr")
	}
	if rel.Gap != 12 {
		t.Fatalf("item relaxation gap = %g, want 12", rel.Gap)
	}
	// A rating bound no flight meets keeps it infeasible.
	_, ok, err = DecideItems(db, q, []Point{pts[1].WithMetric(cityMetric())},
		f, -100, 1, 15)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("no reachable flight is cheaper than 100")
	}
}

func TestApplyRejectsBadChoices(t *testing.T) {
	q := directQuery()
	pts, _ := Points(q)
	if _, err := Apply(q, []Choice{{Point: pts[0], D: -1}}); err == nil {
		t.Fatal("negative level should error")
	}
	if _, err := Apply(q, []Choice{{Point: pts[0], D: 5}}); err == nil {
		t.Fatal("missing metric should error")
	}
}
