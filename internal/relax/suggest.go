package relax

import (
	"context"

	"repro/internal/core"
)

// This file is the incremental half of the QRPP solver: instead of
// answering one yes/no question per gap assignment with a fresh solve, the
// lattice of level assignments is searched once through a core.SolveSession
// and the minimal feasible assignments come back as ranked suggestions.
// Two mechanisms make the search cheaper than the reference loop
// (DecideLoop) without changing any answer:
//
//   - session reuse: neighbouring assignments frequently relax a point past
//     values the query's other conjuncts reject, so their relaxed queries
//     select identical candidate lists; the session memoises each probe by
//     candidate-list fingerprint and resumes from the recorded verdict
//     (EngineCounters.SessionResumes / SessionNodesSaved account for it);
//   - dominance pruning: once an assignment is known feasible, every
//     assignment pointwise ≥ it is feasible too but strictly more relaxed,
//     so it can never be a minimal suggestion and is skipped outright.
//     Nothing is pruned before the first feasible assignment, which is why
//     Decide — "stop at the first hit" — probes exactly the sequence the
//     reference loop does.

// Suggestion is one ranked relaxation recommendation: a minimal feasible
// relaxed query, its gap, and a package witnessing its feasibility. The
// suggestions Suggest returns are the minimal feasible antichain of the
// gap lattice in ascending (total gap, level vector) order — no suggestion
// dominates another, and the first is the minimum-gap relaxation Decide
// reports.
type Suggestion struct {
	Relaxation *Relaxation
	Gap        float64
	// Witness is a valid package rated at least B under the relaxed query:
	// the first qualifying package in canonical order for serial searches,
	// any qualifying package for parallel ones (the RPP witness precedent).
	Witness *core.Package
}

// Suggest searches the gap lattice with the serial engine and returns up
// to max ranked suggestions (max ≤ 0 means all minimal feasible
// assignments within the gap budget).
func Suggest(inst Instance, max int) ([]Suggestion, error) {
	return suggest(context.Background(), inst, max, 0, false)
}

// SuggestCtx is Suggest with a deadline and the parallel feasibility core
// (workers ≤ 0 means GOMAXPROCS); cancellation is checked between lattice
// assignments and inside each probe. Ranking and gaps are identical to
// Suggest's — only witnesses may differ, as in the other parallel solvers.
func SuggestCtx(ctx context.Context, inst Instance, max, workers int) ([]Suggestion, error) {
	return suggest(ctx, inst, max, workers, true)
}

// suggest is the shared lattice search: assignments ascend in (total gap,
// level vector) order, dominated assignments are skipped, the rest are
// probed through one SolveSession over variants of the instance's problem.
func suggest(ctx context.Context, inst Instance, max, workers int, parallel bool) ([]Suggestion, error) {
	assignments, err := enumerateAssignments(inst)
	if err != nil {
		return nil, err
	}
	sess := core.NewSolveSession(inst.Problem.K, inst.Bound)
	var out []Suggestion
	var minimal [][]Choice // the feasible antichain found so far
	for _, choices := range assignments {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if dominatesAny(choices, minimal) {
			continue
		}
		rel, err := Apply(inst.Problem.Q, choices)
		if err != nil {
			return nil, err
		}
		// The variant shares everything with the base problem except the
		// relaxed selection query; the database is common to all probes, so
		// equal candidate lists imply equal verdicts and the session needs
		// no extra salt.
		variant := *inst.Problem
		variant.Q = rel.Query
		variant.InvalidateCache()
		var ok bool
		var wit *core.Package
		if parallel {
			ok, wit, err = sess.ProbeParallel(ctx, &variant, "", workers)
		} else {
			ok, wit, err = sess.Probe(&variant, "")
		}
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		out = append(out, Suggestion{Relaxation: rel, Gap: rel.Gap, Witness: wit})
		minimal = append(minimal, choices)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out, nil
}

// dominatesAny reports whether the assignment relaxes every point at least
// as far as some already-feasible assignment — in which case it is feasible
// but not minimal, and skipping it is ranking-preserving.
func dominatesAny(choices []Choice, minimal [][]Choice) bool {
	for _, m := range minimal {
		dom := true
		for i := range m {
			if choices[i].D < m[i].D {
				dom = false
				break
			}
		}
		if dom {
			return true
		}
	}
	return false
}
