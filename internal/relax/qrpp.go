package relax

import (
	"context"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// Instance is a QRPP instance: a recommendation problem whose selection
// query found nothing useful, the relaxable points (E and X with their
// metrics), the rating bound B, and the gap budget g.
type Instance struct {
	Problem   *core.Problem
	Points    []Point
	Bound     float64 // B: every recommended package must rate at least B
	GapBudget float64 // g: gap(QΓ) ≤ g
}

// CandidateLevels returns the relaxation levels worth trying for a point,
// up to D-equivalence (Theorem 7.2): 0 plus every finite distance from the
// point's constant to a value the relaxed position can actually take,
// capped by gmax. For SplitVariable points the candidate levels are the
// finite pairwise distances between those values.
//
// The position's value set is read from the point's recorded columns
// (Point.Cols) when they all resolve against db — the relaxed argument, or
// the compared/split variable, only ever binds to values stored in those
// columns, so distances to values outside them separate no two relaxed
// queries. A point without column information (hand-built, or a formula
// position whose variable ranges under active-domain semantics) falls back
// to the whole active domain. Either way the level set indexes exactly the
// distinct relaxed queries: the two discretizations agree on every level at
// which the relaxed answer changes, which is why the dependency-precise set
// preserves minimal witnesses bit for bit while letting the serving layer
// key relax results on just the relations the query reads.
func CandidateLevels(db *relation.Database, p Point, gmax float64) []float64 {
	vals, _ := levelValues(db, p)
	seen := map[float64]struct{}{0: {}}
	levels := []float64{0}
	add := func(d float64) {
		if math.IsInf(d, 0) || math.IsNaN(d) || d <= 0 || d > gmax {
			return
		}
		if _, ok := seen[d]; ok {
			return
		}
		seen[d] = struct{}{}
		levels = append(levels, d)
	}
	switch p.Kind {
	case SplitVariable:
		for i := range vals {
			for j := range vals {
				if i != j {
					add(p.Metric.Fn(vals[i], vals[j]))
				}
			}
		}
	default:
		for _, v := range vals {
			add(p.Metric.Fn(v, p.Const))
		}
	}
	sort.Float64s(levels)
	return levels
}

// levelValues resolves the stored values the point's relaxed position can
// take: the sorted union of its recorded columns when every column resolves
// against db, the whole active domain otherwise. The boolean reports which
// case applied (precise column reads vs. whole-database fallback).
func levelValues(db *relation.Database, p Point) ([]relation.Value, bool) {
	if !preciseCols(db, p) {
		return db.ActiveDomain(), false
	}
	seen := make(map[relation.Value]struct{})
	var vals []relation.Value
	for _, c := range p.Cols {
		r := db.Relation(c.Rel)
		for _, t := range r.Tuples() {
			if _, ok := seen[t[c.Attr]]; !ok {
				seen[t[c.Attr]] = struct{}{}
				vals = append(vals, t[c.Attr])
			}
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Less(vals[j]) })
	return vals, true
}

// preciseCols reports whether every recorded column of the point resolves
// against db (non-empty column list, relation present, argument within its
// arity) — the condition under which CandidateLevels stays within the
// columns instead of falling back to the whole active domain.
func preciseCols(db *relation.Database, p Point) bool {
	if len(p.Cols) == 0 {
		return false
	}
	for _, c := range p.Cols {
		r := db.Relation(c.Rel)
		if r == nil || c.Attr < 0 || c.Attr >= r.Schema().Arity() {
			return false
		}
	}
	return true
}

// LevelDeps reports the data dependencies of CandidateLevels for the point
// over db: the sorted relation names its levels are computed from, and
// whether that list is precise. precise = true means the levels read only
// those relations — mutations elsewhere cannot change them — which is what
// lets a cache key a relax answer on the relations the query reads.
// precise = false means the levels discretize over the whole active domain
// and depend on every relation of the database.
func LevelDeps(db *relation.Database, p Point) (rels []string, precise bool) {
	if !preciseCols(db, p) {
		return append([]string(nil), db.Names()...), false
	}
	seen := make(map[string]struct{})
	for _, c := range p.Cols {
		if _, ok := seen[c.Rel]; !ok {
			seen[c.Rel] = struct{}{}
			rels = append(rels, c.Rel)
		}
	}
	sort.Strings(rels)
	return rels, true
}

// Decide solves QRPP: is there a relaxation QΓ of Q with gap(QΓ) ≤ g such
// that k distinct valid packages rated at least B exist for
// (QΓ, D, Qc, cost, val, C)? It returns the minimum-gap witness relaxation,
// so Decide doubles as the "minimal relaxation recommendation" the paper
// motivates. Levels are searched in order of increasing total gap, through
// the incremental session engine (see Suggest) — the probe sequence, and
// with it the witness, is identical to the reference DecideLoop.
func Decide(inst Instance) (*Relaxation, bool, error) {
	sugs, err := Suggest(inst, 1)
	if err != nil || len(sugs) == 0 {
		return nil, false, err
	}
	return sugs[0].Relaxation, true, nil
}

// DecideCtx is Decide with a deadline and a parallel feasibility core:
// cancellation is checked between level assignments and inside each
// feasibility search (which runs on the root-splitting parallel engine with
// the given worker count; ≤ 0 means GOMAXPROCS). The witness relaxation is
// identical to Decide's — assignments are still tried in ascending total
// gap — so serving-layer QRPP answers match the library's.
func DecideCtx(ctx context.Context, inst Instance, workers int) (*Relaxation, bool, error) {
	sugs, err := SuggestCtx(ctx, inst, 1, workers)
	if err != nil || len(sugs) == 0 {
		return nil, false, err
	}
	return sugs[0].Relaxation, true, nil
}

// DecideLoop is the pre-session reference implementation of Decide: one
// fresh feasibility solve per level assignment, no state shared between
// probes. It is retained as the independent oracle the equivalence tests
// and the relax benchmark family compare the incremental engine against —
// Decide must return bit-identical results while visiting fewer nodes.
func DecideLoop(inst Instance) (*Relaxation, bool, error) {
	return decideLoop(context.Background(), inst, func(relaxed query.Query) (bool, error) {
		return feasiblePackages(inst, relaxed)
	})
}

// DecideLoopCtx is DecideLoop's parallel-core form, the pre-session
// reference for DecideCtx.
func DecideLoopCtx(ctx context.Context, inst Instance, workers int) (*Relaxation, bool, error) {
	return decideLoop(ctx, inst, func(relaxed query.Query) (bool, error) {
		prob := *inst.Problem
		prob.Q = relaxed
		prob.InvalidateCache()
		return prob.ExistsKValidParallelCtx(ctx, inst.Problem.K, inst.Bound, workers)
	})
}

// decideLoop is the shared reference search: level assignments in ascending
// total gap, each relaxed query tested with the supplied feasibility
// predicate, ctx checked between assignments.
func decideLoop(ctx context.Context, inst Instance, feasible func(query.Query) (bool, error)) (*Relaxation, bool, error) {
	assignments, err := enumerateAssignments(inst)
	if err != nil {
		return nil, false, err
	}
	for _, choices := range assignments {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		rel, err := Apply(inst.Problem.Q, choices)
		if err != nil {
			return nil, false, err
		}
		ok, err := feasible(rel.Query)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return rel, true, nil
		}
	}
	return nil, false, nil
}

// DecideItems solves QRPP for item selections (Corollary 7.3): is there a
// relaxation with gap ≤ g under which k distinct items rated at least B by
// the utility function exist?
func DecideItems(db *relation.Database, q query.Query, points []Point,
	f core.Utility, bound float64, k int, gapBudget float64) (*Relaxation, bool, error) {
	inst := Instance{
		Problem:   core.ItemProblem(db, q, f, k),
		Points:    points,
		Bound:     bound,
		GapBudget: gapBudget,
	}
	assignments, err := enumerateAssignments(inst)
	if err != nil {
		return nil, false, err
	}
	for _, choices := range assignments {
		rel, err := Apply(q, choices)
		if err != nil {
			return nil, false, err
		}
		ans, err := rel.Query.Eval(db)
		if err != nil {
			return nil, false, err
		}
		n := 0
		for _, t := range ans.Tuples() {
			if f(t) >= bound {
				n++
			}
		}
		if n >= k {
			return rel, true, nil
		}
	}
	return nil, false, nil
}

// feasiblePackages checks whether the relaxed query admits k distinct valid
// packages rated at least B, reusing the problem's other parameters.
func feasiblePackages(inst Instance, relaxed query.Query) (bool, error) {
	prob := *inst.Problem
	prob.Q = relaxed
	prob.InvalidateCache()
	return prob.ExistsKValid(inst.Problem.K, inst.Bound)
}

// enumerateAssignments produces all level assignments with total gap within
// budget, sorted by ascending total gap (then lexicographically by level
// vector for determinism).
func enumerateAssignments(inst Instance) ([][]Choice, error) {
	levelSets := make([][]float64, len(inst.Points))
	for i, p := range inst.Points {
		if p.Metric.Fn == nil {
			levelSets[i] = []float64{0}
			continue
		}
		levelSets[i] = CandidateLevels(inst.Problem.DB, p, inst.GapBudget)
	}
	var out [][]Choice
	cur := make([]Choice, len(inst.Points))
	var rec func(i int, used float64)
	rec = func(i int, used float64) {
		if i == len(inst.Points) {
			out = append(out, append([]Choice(nil), cur...))
			return
		}
		for _, d := range levelSets[i] {
			if used+d > inst.GapBudget {
				break // levels ascend; the rest are over budget too
			}
			cur[i] = Choice{Point: inst.Points[i], D: d}
			rec(i+1, used+d)
		}
	}
	rec(0, 0)
	sort.SliceStable(out, func(a, b int) bool {
		ga, gb := totalGap(out[a]), totalGap(out[b])
		if ga != gb {
			return ga < gb
		}
		for i := range out[a] {
			if out[a][i].D != out[b][i].D {
				return out[a][i].D < out[b][i].D
			}
		}
		return false
	})
	return out, nil
}

func totalGap(cs []Choice) float64 {
	var g float64
	for _, c := range cs {
		g += c.D
	}
	return g
}
