package relax

import (
	"context"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// Instance is a QRPP instance: a recommendation problem whose selection
// query found nothing useful, the relaxable points (E and X with their
// metrics), the rating bound B, and the gap budget g.
type Instance struct {
	Problem   *core.Problem
	Points    []Point
	Bound     float64 // B: every recommended package must rate at least B
	GapBudget float64 // g: gap(QΓ) ≤ g
}

// CandidateLevels returns the relaxation levels worth trying for a point,
// up to D-equivalence (Theorem 7.2): 0 plus every finite distance from the
// point's constant to an active-domain value, capped by gmax. For
// SplitVariable points the candidate levels are the finite pairwise
// distances between active-domain values.
func CandidateLevels(db *relation.Database, p Point, gmax float64) []float64 {
	adom := db.ActiveDomain()
	seen := map[float64]struct{}{0: {}}
	levels := []float64{0}
	add := func(d float64) {
		if math.IsInf(d, 0) || math.IsNaN(d) || d <= 0 || d > gmax {
			return
		}
		if _, ok := seen[d]; ok {
			return
		}
		seen[d] = struct{}{}
		levels = append(levels, d)
	}
	switch p.Kind {
	case SplitVariable:
		for i := range adom {
			for j := range adom {
				if i != j {
					add(p.Metric.Fn(adom[i], adom[j]))
				}
			}
		}
	default:
		for _, v := range adom {
			add(p.Metric.Fn(v, p.Const))
		}
	}
	sort.Float64s(levels)
	return levels
}

// Decide solves QRPP: is there a relaxation QΓ of Q with gap(QΓ) ≤ g such
// that k distinct valid packages rated at least B exist for
// (QΓ, D, Qc, cost, val, C)? It returns the minimum-gap witness relaxation,
// so Decide doubles as the "minimal relaxation recommendation" the paper
// motivates. Levels are searched in order of increasing total gap.
func Decide(inst Instance) (*Relaxation, bool, error) {
	return decide(context.Background(), inst, func(relaxed query.Query) (bool, error) {
		return feasiblePackages(inst, relaxed)
	})
}

// DecideCtx is Decide with a deadline and a parallel feasibility core:
// cancellation is checked between level assignments and inside each
// feasibility search (which runs on the root-splitting parallel engine with
// the given worker count; ≤ 0 means GOMAXPROCS). The witness relaxation is
// identical to Decide's — assignments are still tried in ascending total
// gap — so serving-layer QRPP answers match the library's.
func DecideCtx(ctx context.Context, inst Instance, workers int) (*Relaxation, bool, error) {
	return decide(ctx, inst, func(relaxed query.Query) (bool, error) {
		prob := *inst.Problem
		prob.Q = relaxed
		prob.InvalidateCache()
		return prob.ExistsKValidParallelCtx(ctx, inst.Problem.K, inst.Bound, workers)
	})
}

// decide is the shared QRPP search: level assignments in ascending total
// gap, each relaxed query tested with the supplied feasibility predicate,
// ctx checked between assignments. Keeping one loop is what guarantees
// Decide and DecideCtx return the same witness.
func decide(ctx context.Context, inst Instance, feasible func(query.Query) (bool, error)) (*Relaxation, bool, error) {
	assignments, err := enumerateAssignments(inst)
	if err != nil {
		return nil, false, err
	}
	for _, choices := range assignments {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		rel, err := Apply(inst.Problem.Q, choices)
		if err != nil {
			return nil, false, err
		}
		ok, err := feasible(rel.Query)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return rel, true, nil
		}
	}
	return nil, false, nil
}

// DecideItems solves QRPP for item selections (Corollary 7.3): is there a
// relaxation with gap ≤ g under which k distinct items rated at least B by
// the utility function exist?
func DecideItems(db *relation.Database, q query.Query, points []Point,
	f core.Utility, bound float64, k int, gapBudget float64) (*Relaxation, bool, error) {
	inst := Instance{
		Problem:   core.ItemProblem(db, q, f, k),
		Points:    points,
		Bound:     bound,
		GapBudget: gapBudget,
	}
	assignments, err := enumerateAssignments(inst)
	if err != nil {
		return nil, false, err
	}
	for _, choices := range assignments {
		rel, err := Apply(q, choices)
		if err != nil {
			return nil, false, err
		}
		ans, err := rel.Query.Eval(db)
		if err != nil {
			return nil, false, err
		}
		n := 0
		for _, t := range ans.Tuples() {
			if f(t) >= bound {
				n++
			}
		}
		if n >= k {
			return rel, true, nil
		}
	}
	return nil, false, nil
}

// feasiblePackages checks whether the relaxed query admits k distinct valid
// packages rated at least B, reusing the problem's other parameters.
func feasiblePackages(inst Instance, relaxed query.Query) (bool, error) {
	prob := *inst.Problem
	prob.Q = relaxed
	prob.InvalidateCache()
	return prob.ExistsKValid(inst.Problem.K, inst.Bound)
}

// enumerateAssignments produces all level assignments with total gap within
// budget, sorted by ascending total gap (then lexicographically by level
// vector for determinism).
func enumerateAssignments(inst Instance) ([][]Choice, error) {
	levelSets := make([][]float64, len(inst.Points))
	for i, p := range inst.Points {
		if p.Metric.Fn == nil {
			levelSets[i] = []float64{0}
			continue
		}
		levelSets[i] = CandidateLevels(inst.Problem.DB, p, inst.GapBudget)
	}
	var out [][]Choice
	cur := make([]Choice, len(inst.Points))
	var rec func(i int, used float64)
	rec = func(i int, used float64) {
		if i == len(inst.Points) {
			out = append(out, append([]Choice(nil), cur...))
			return
		}
		for _, d := range levelSets[i] {
			if used+d > inst.GapBudget {
				break // levels ascend; the rest are over budget too
			}
			cur[i] = Choice{Point: inst.Points[i], D: d}
			rec(i+1, used+d)
		}
	}
	rec(0, 0)
	sort.SliceStable(out, func(a, b int) bool {
		ga, gb := totalGap(out[a]), totalGap(out[b])
		if ga != gb {
			return ga < gb
		}
		for i := range out[a] {
			if out[a][i].D != out[b][i].D {
				return out[a][i].D < out[b][i].D
			}
		}
		return false
	})
	return out, nil
}

func totalGap(cs []Choice) float64 {
	var g float64
	for _, c := range cs {
		g += c.D
	}
	return g
}
