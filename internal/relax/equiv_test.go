package relax_test

// The incremental suggestion engine (Suggest / Decide) must answer QRPP
// bit-identically to the reference per-assignment loop it replaced
// (DecideLoop): same feasibility verdict, same minimal gap, same relaxed
// query, same per-point levels, on every structurally distinct instance
// family — the experiment reductions (3SAT data complexity, ∃∀-DNF
// combined complexity with Qc) and the travel workload. The parallel pair
// (DecideCtx vs DecideLoopCtx) must agree on verdict and minimal
// relaxation for every worker count; CI runs this file under -race, which
// also exercises the session's counter plumbing across engine workers.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/query"
	"repro/internal/reductions"
	"repro/internal/relax"
	"repro/internal/sat"
)

// equivInstances draws one instance per family, seeded for repeatability.
func equivInstances(t *testing.T) map[string]relax.Instance {
	t.Helper()
	insts := map[string]relax.Instance{}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 3; i++ {
		inst, err := reductions.QRPPFrom3SAT(sat.Rand3CNF(rng, 3, 4+i))
		if err != nil {
			t.Fatal(err)
		}
		insts[tname("3sat", i)] = inst
	}
	for i := 0; i < 2; i++ {
		inst, err := reductions.QRPPFromEFDNF(sat.RandEFDNF(rng, 2, 2, 3+i))
		if err != nil {
			t.Fatal(err)
		}
		insts[tname("efdnf", i)] = inst
	}
	for i, budget := range []float64{0, 5, 15} {
		insts[tname("travel", i)] = travelEquivInstance(t, budget)
	}
	return insts
}

// travelEquivInstance relaxes nyc-museum packages over the generated
// travel data: a table metric over the city column and an absolute
// difference on ticket price give a multi-level lattice.
func travelEquivInstance(t *testing.T, gapBudget float64) relax.Instance {
	t.Helper()
	db := gen.Travel(9, 12, 18)
	v := query.V
	q := query.NewCQ("RQ",
		[]query.Term{v("name"), v("type"), v("ticket"), v("time")},
		query.Rel("poi", v("name"), v("city"), v("type"), v("ticket"), v("time")),
		query.Eq(v("city"), query.CS("nyc")),
		query.Eq(v("type"), query.CS("opera")))
	prob := &core.Problem{
		DB: db, Q: q,
		Cost:   core.SumAttr(3).WithMonotone(),
		Val:    core.NegSumAttr(2),
		Budget: 400,
		K:      1,
	}
	pts, err := relax.Points(q)
	if err != nil {
		t.Fatal(err)
	}
	cities := relax.Table("citydist", map[[2]string]float64{
		{"nyc", "sfo"}: 5,
		{"nyc", "par"}: 8,
	})
	types := relax.Table("typedist", map[[2]string]float64{
		{"opera", "museum"}: 3,
		{"opera", "park"}:   9,
	})
	return relax.Instance{
		Problem:   prob,
		Points:    []relax.Point{pts[0].WithMetric(cities), pts[1].WithMetric(types)},
		Bound:     -100,
		GapBudget: gapBudget,
	}
}

func tname(family string, i int) string {
	return family + string(rune('A'+i))
}

func sameRelaxation(t *testing.T, name string, got, want *relax.Relaxation) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: relaxation presence differs: got %v, want %v", name, got, want)
	}
	if got == nil {
		return
	}
	if got.Gap != want.Gap {
		t.Fatalf("%s: gap = %g, want %g", name, got.Gap, want.Gap)
	}
	if got.Query.String() != want.Query.String() {
		t.Fatalf("%s: relaxed query = %s, want %s", name, got.Query.String(), want.Query.String())
	}
	if len(got.Choices) != len(want.Choices) {
		t.Fatalf("%s: %d choices, want %d", name, len(got.Choices), len(want.Choices))
	}
	for i := range got.Choices {
		if got.Choices[i].D != want.Choices[i].D {
			t.Fatalf("%s: choice %d level = %g, want %g", name, i, got.Choices[i].D, want.Choices[i].D)
		}
	}
}

func TestDecideMatchesReferenceLoop(t *testing.T) {
	for name, inst := range equivInstances(t) {
		t.Run(name, func(t *testing.T) {
			relLoop, okLoop, err := relax.DecideLoop(inst)
			if err != nil {
				t.Fatal(err)
			}
			relNew, okNew, err := relax.Decide(inst)
			if err != nil {
				t.Fatal(err)
			}
			if okNew != okLoop {
				t.Fatalf("verdict: incremental %v, reference loop %v", okNew, okLoop)
			}
			sameRelaxation(t, "serial", relNew, relLoop)

			ctx := context.Background()
			for _, workers := range []int{1, 2, 4} {
				relP, okP, err := relax.DecideCtx(ctx, inst, workers)
				if err != nil {
					t.Fatal(err)
				}
				if okP != okLoop {
					t.Fatalf("workers=%d: verdict %v, want %v", workers, okP, okLoop)
				}
				sameRelaxation(t, "parallel", relP, relLoop)
				relLP, okLP, err := relax.DecideLoopCtx(ctx, inst, workers)
				if err != nil {
					t.Fatal(err)
				}
				if okLP != okLoop {
					t.Fatalf("workers=%d: loop-parallel verdict %v, want %v", workers, okLP, okLoop)
				}
				sameRelaxation(t, "loop-parallel", relLP, relLoop)
			}
		})
	}
}

// Suggest's first suggestion IS the Decide answer, and ranked suggestions
// ascend in (gap, level vector) order with no dominated entries.
func TestSuggestFirstIsDecide(t *testing.T) {
	for name, inst := range equivInstances(t) {
		t.Run(name, func(t *testing.T) {
			rel, ok, err := relax.Decide(inst)
			if err != nil {
				t.Fatal(err)
			}
			sugs, err := relax.Suggest(inst, 0)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (len(sugs) > 0) {
				t.Fatalf("Decide ok=%v but %d suggestions", ok, len(sugs))
			}
			if !ok {
				return
			}
			sameRelaxation(t, "first suggestion", sugs[0].Relaxation, rel)
			for i := 1; i < len(sugs); i++ {
				if sugs[i].Gap < sugs[i-1].Gap {
					t.Fatalf("suggestions out of gap order at %d: %g after %g", i, sugs[i].Gap, sugs[i-1].Gap)
				}
			}
			for i, sg := range sugs {
				if sg.Witness == nil {
					t.Fatalf("suggestion %d lacks a witness", i)
				}
				for j := 0; j < i; j++ {
					if dominates(sg.Relaxation.Choices, sugs[j].Relaxation.Choices) {
						t.Fatalf("suggestion %d dominates-and-follows %d: not an antichain", i, j)
					}
				}
			}
		})
	}
}

func dominates(a, b []relax.Choice) bool {
	for i := range b {
		if a[i].D < b[i].D {
			return false
		}
	}
	return true
}
