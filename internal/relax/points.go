package relax

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/relation"
)

// PointKind distinguishes the relaxation rules of Section 7.1.
type PointKind int

// The three rewrite rules.
const (
	// ConstInAtom relaxes a constant argument of a relation atom: c becomes
	// a fresh variable w with dist(w, c) ≤ d.
	ConstInAtom PointKind = iota
	// ConstInEquality relaxes an equality t = c into dist(t, c) ≤ d.
	ConstInEquality
	// SplitVariable splits one occurrence of a repeated variable x into a
	// fresh variable u with dist(u, x) ≤ d (d = 0 keeps the equijoin).
	SplitVariable
)

// String names the kind.
func (k PointKind) String() string {
	switch k {
	case ConstInAtom:
		return "const-in-atom"
	case ConstInEquality:
		return "const-in-equality"
	case SplitVariable:
		return "split-variable"
	default:
		return fmt.Sprintf("PointKind(%d)", int(k))
	}
}

// ColumnRef names one relation column — the unit of data dependency a
// relaxation point carries.
type ColumnRef struct {
	Rel  string
	Attr int
}

// Point identifies one relaxable parameter of a query — an element of the
// sets E (constants) or X (repeated variables) — together with the distance
// function used to bound its relaxation. Points are discovered by Points
// and selected by the caller, who attaches a metric with WithMetric.
type Point struct {
	Path   string // stable locator within the query
	Kind   PointKind
	Const  relation.Value // the constant c (const kinds)
	Var    string         // the repeated variable x (SplitVariable)
	Pred   string         // enclosing relation atom's predicate, "" for equalities
	Arg    int            // argument position within the atom
	Metric Metric
	// Cols are the relation columns whose stored values can feed this
	// point's relaxed position: the relaxed atom's own column for
	// ConstInAtom, the columns binding the compared variable for
	// ConstInEquality, every occurrence column of the split variable for
	// SplitVariable. CandidateLevels discretizes over exactly these columns
	// when they all resolve against the database, which is what lets the
	// serving layer key relax results on the relations the query reads
	// instead of the whole database. Empty means unknown (a hand-built
	// point, or a formula position whose variable active-domain semantics
	// lets range anywhere): levels then fall back to the full active domain.
	Cols []ColumnRef
}

// WithMetric attaches a distance function to the point.
func (p Point) WithMetric(m Metric) Point {
	p.Metric = m
	return p
}

// String renders the point.
func (p Point) String() string {
	switch p.Kind {
	case SplitVariable:
		return fmt.Sprintf("%s[%s: split %s in %s.%d]", p.Path, p.Kind, p.Var, p.Pred, p.Arg)
	default:
		return fmt.Sprintf("%s[%s: %v]", p.Path, p.Kind, p.Const)
	}
}

// Choice pairs a point with a chosen relaxation level d; d = 0 keeps the
// parameter unmodified and contributes gap 0.
type Choice struct {
	Point Point
	D     float64
}

// Relaxation is a relaxed query QΓ with its per-point levels and total
// level of relaxation gap(QΓ).
type Relaxation struct {
	Query   query.Query
	Choices []Choice
	Gap     float64
}

// addCol appends a column reference if not already present, keeping the
// slice in first-occurrence order (deterministic discovery output).
func addCol(cols []ColumnRef, c ColumnRef) []ColumnRef {
	for _, have := range cols {
		if have == c {
			return cols
		}
	}
	return append(cols, c)
}

// walker traverses a query deterministically, either collecting points
// (discovery) or rewriting the chosen ones (application). Both modes visit
// sites in the same order, so the sequential site identifiers line up.
type walker struct {
	nextSite int
	choices  map[string]Choice // nil in discovery mode
	points   []Point
	fresh    int
}

func (w *walker) site() string {
	id := fmt.Sprintf("p%d", w.nextSite)
	w.nextSite++
	return id
}

func (w *walker) freshVar() string {
	w.fresh++
	return fmt.Sprintf("_w%d", w.fresh)
}

// chosen returns the active choice for a site, if any (application mode,
// d > 0).
func (w *walker) chosen(id string) (Choice, bool) {
	if w.choices == nil {
		return Choice{}, false
	}
	c, ok := w.choices[id]
	if !ok || c.D <= 0 {
		return Choice{}, false
	}
	return c, true
}

// walkBody visits a rule body. In application mode it returns the rewritten
// body; in discovery mode it returns the input unchanged.
func (w *walker) walkBody(body []query.Atom) []query.Atom {
	// Count variable occurrences among relation-atom arguments to find
	// repeated variables (the set X of Section 7), and record which columns
	// bind each variable — the data dependencies discovered points carry.
	occ := map[string]int{}
	varCols := map[string][]ColumnRef{}
	for _, a := range body {
		if ra, ok := a.(*query.RelAtom); ok {
			for j, t := range ra.Args {
				if t.IsVar {
					occ[t.Var]++
					varCols[t.Var] = addCol(varCols[t.Var], ColumnRef{Rel: ra.Pred, Attr: j})
				}
			}
		}
	}
	split := map[string]int{} // how many occurrences of a var were split
	var out []query.Atom
	var extra []query.Atom
	for _, a := range body {
		switch at := a.(type) {
		case *query.RelAtom:
			newArgs := append([]query.Term(nil), at.Args...)
			for j, t := range at.Args {
				if !t.IsVar {
					id := w.site()
					if w.choices == nil {
						w.points = append(w.points, Point{
							Path: id, Kind: ConstInAtom, Const: t.Const, Pred: at.Pred, Arg: j,
							Cols: []ColumnRef{{Rel: at.Pred, Attr: j}}})
					} else if c, ok := w.chosen(id); ok {
						fv := w.freshVar()
						newArgs[j] = query.V(fv)
						extra = append(extra, query.Dist(c.Point.Metric.Name, c.Point.Metric.Fn,
							query.V(fv), query.C(t.Const), c.D))
					}
					continue
				}
				if occ[t.Var] >= 2 {
					id := w.site()
					if w.choices == nil {
						w.points = append(w.points, Point{
							Path: id, Kind: SplitVariable, Var: t.Var, Pred: at.Pred, Arg: j,
							Cols: varCols[t.Var]})
					} else if c, ok := w.chosen(id); ok {
						// Keep at least one original occurrence so the
						// distance constraint stays ground.
						if split[t.Var]+1 >= occ[t.Var] {
							continue
						}
						split[t.Var]++
						fv := w.freshVar()
						newArgs[j] = query.V(fv)
						extra = append(extra, query.Dist(c.Point.Metric.Name, c.Point.Metric.Fn,
							query.V(fv), query.V(t.Var), c.D))
					}
				}
			}
			out = append(out, &query.RelAtom{Pred: at.Pred, Args: newArgs})
		case *query.CmpAtom:
			if at.Op == query.OpEq && at.Left.IsVar != at.Right.IsVar {
				id := w.site()
				varSide, constSide := at.Left, at.Right
				if !varSide.IsVar {
					varSide, constSide = constSide, varSide
				}
				if w.choices == nil {
					w.points = append(w.points, Point{
						Path: id, Kind: ConstInEquality, Const: constSide.Const,
						Cols: varCols[varSide.Var]})
				} else if c, ok := w.chosen(id); ok {
					out = append(out, query.Dist(c.Point.Metric.Name, c.Point.Metric.Fn,
						varSide, constSide, c.D))
					continue
				}
			}
			out = append(out, at)
		default:
			out = append(out, a)
		}
	}
	return append(out, extra...)
}

// walkFormula visits an FO/∃FO+ formula. Only constant relaxations are
// supported inside formulas; variable splitting is a rule-body notion.
func (w *walker) walkFormula(f query.Formula) query.Formula {
	switch g := f.(type) {
	case *query.FAtom:
		switch at := g.A.(type) {
		case *query.RelAtom:
			newArgs := append([]query.Term(nil), at.Args...)
			var freshVars []string
			var dists []query.Formula
			for j, t := range at.Args {
				if t.IsVar {
					continue
				}
				id := w.site()
				if w.choices == nil {
					// The fresh variable stays conjoined with the positive
					// atom inside the rewrite's Exists, so even under FO
					// active-domain semantics its satisfying values come
					// from this column.
					w.points = append(w.points, Point{
						Path: id, Kind: ConstInAtom, Const: t.Const, Pred: at.Pred, Arg: j,
						Cols: []ColumnRef{{Rel: at.Pred, Attr: j}}})
				} else if c, ok := w.chosen(id); ok {
					fv := w.freshVar()
					newArgs[j] = query.V(fv)
					freshVars = append(freshVars, fv)
					dists = append(dists, query.Atomf(query.Dist(c.Point.Metric.Name,
						c.Point.Metric.Fn, query.V(fv), query.C(t.Const), c.D)))
				}
			}
			if len(freshVars) == 0 {
				return query.Atomf(&query.RelAtom{Pred: at.Pred, Args: newArgs})
			}
			subs := append([]query.Formula{query.Atomf(&query.RelAtom{Pred: at.Pred, Args: newArgs})}, dists...)
			return query.Exists(freshVars, query.And(subs...))
		case *query.CmpAtom:
			if at.Op == query.OpEq && at.Left.IsVar != at.Right.IsVar {
				id := w.site()
				varSide, constSide := at.Left, at.Right
				if !varSide.IsVar {
					varSide, constSide = constSide, varSide
				}
				if w.choices == nil {
					w.points = append(w.points, Point{
						Path: id, Kind: ConstInEquality, Const: constSide.Const})
				} else if c, ok := w.chosen(id); ok {
					return query.Atomf(query.Dist(c.Point.Metric.Name, c.Point.Metric.Fn,
						varSide, constSide, c.D))
				}
			}
			return f
		default:
			return f
		}
	case *query.FAnd:
		subs := make([]query.Formula, len(g.Subs))
		for i, s := range g.Subs {
			subs[i] = w.walkFormula(s)
		}
		return query.And(subs...)
	case *query.FOr:
		subs := make([]query.Formula, len(g.Subs))
		for i, s := range g.Subs {
			subs[i] = w.walkFormula(s)
		}
		return query.Or(subs...)
	case *query.FNot:
		return query.Not(w.walkFormula(g.Sub))
	case *query.FExists:
		return query.Exists(g.Vars, w.walkFormula(g.Sub))
	case *query.FForall:
		return query.Forall(g.Vars, w.walkFormula(g.Sub))
	default:
		return f
	}
}

// walkQuery dispatches on the concrete query type, returning the (possibly
// rewritten) query.
func (w *walker) walkQuery(q query.Query) (query.Query, error) {
	switch qt := q.(type) {
	case *query.CQ:
		c := qt.Clone().(*query.CQ)
		c.Body = w.walkBody(c.Body)
		return c, nil
	case *query.UCQ:
		u := qt.Clone().(*query.UCQ)
		for _, d := range u.Disjuncts {
			d.Body = w.walkBody(d.Body)
		}
		return u, nil
	case *query.Datalog:
		p := qt.Clone().(*query.Datalog)
		for i := range p.Rules {
			p.Rules[i].Body = w.walkBody(p.Rules[i].Body)
		}
		return p, nil
	case *query.FOQuery:
		f := qt.Clone().(*query.FOQuery)
		f.Formula = w.walkFormula(f.Formula)
		return f, nil
	default:
		return nil, fmt.Errorf("relax: unsupported query type %T", q)
	}
}

// Points discovers every relaxable parameter of a query, in a deterministic
// order. The caller selects the sets E and X by picking points (attaching
// metrics with WithMetric) and leaving the rest alone.
func Points(q query.Query) ([]Point, error) {
	w := &walker{}
	if _, err := w.walkQuery(q); err != nil {
		return nil, err
	}
	if _, ok := q.(*query.Datalog); ok {
		// Rule bodies may mention derived (IDB) predicates, whose values are
		// computed rather than stored: a column over one carries no stored
		// dependency, so drop the column info and let CandidateLevels fall
		// back to the whole active domain for such points.
		read, _ := query.Relations(q)
		stored := make(map[string]struct{}, len(read))
		for _, r := range read {
			stored[r] = struct{}{}
		}
		for i := range w.points {
			for _, c := range w.points[i].Cols {
				if _, ok := stored[c.Rel]; !ok {
					w.points[i].Cols = nil
					break
				}
			}
		}
	}
	return w.points, nil
}

// Apply constructs the relaxed query QΓ for the chosen levels and computes
// gap(QΓ) = Σ d. Choices with d = 0 leave the parameter unchanged.
func Apply(q query.Query, choices []Choice) (*Relaxation, error) {
	m := make(map[string]Choice, len(choices))
	var gap float64
	for _, c := range choices {
		if c.D < 0 {
			return nil, fmt.Errorf("relax: negative relaxation level %g at %s", c.D, c.Point.Path)
		}
		if c.D > 0 && c.Point.Metric.Fn == nil {
			return nil, fmt.Errorf("relax: point %s has no metric", c.Point.Path)
		}
		m[c.Point.Path] = c
		gap += c.D
	}
	w := &walker{choices: m}
	nq, err := w.walkQuery(q)
	if err != nil {
		return nil, err
	}
	return &Relaxation{Query: nq, Choices: choices, Gap: gap}, nil
}
