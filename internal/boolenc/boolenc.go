// Package boolenc implements the Boolean gadget relations of Figure 4.1 —
// I01 (the Boolean domain), I∨, I∧ and I¬ (disjunction, conjunction,
// negation) plus the inspection relation Ic of Theorem 5.2 — and a compiler
// from propositional formulas to chains of gadget atoms. The hardness
// reductions of the paper express SAT/QBF matrices as conjunctive queries
// over these relations; internal/reductions uses this package to reproduce
// them executably.
package boolenc

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/relation"
)

// Relation names used by the gadget encodings.
const (
	R01Name  = "R01"  // R01(X): the Boolean domain {0, 1}
	ROrName  = "Ror"  // R∨(B, A1, A2): B = A1 ∨ A2
	RAndName = "Rand" // R∧(B, A1, A2): B = A1 ∧ A2
	RNotName = "Rneg" // R¬(A, NA): NA = ¬A
	RcName   = "Rc"   // Rc(C1, C2, C) from Theorem 5.2: C = 0 iff C1=1 ∧ C2=0
)

// I01 returns the Boolean-domain relation of Figure 4.1.
func I01() *relation.Relation {
	return relation.FromTuples(relation.NewSchema(R01Name, "X"),
		relation.Ints(1), relation.Ints(0))
}

// IOr returns the disjunction relation of Figure 4.1.
func IOr() *relation.Relation {
	return relation.FromTuples(relation.NewSchema(ROrName, "B", "A1", "A2"),
		relation.Ints(0, 0, 0), relation.Ints(1, 0, 1),
		relation.Ints(1, 1, 0), relation.Ints(1, 1, 1))
}

// IAnd returns the conjunction relation of Figure 4.1.
func IAnd() *relation.Relation {
	return relation.FromTuples(relation.NewSchema(RAndName, "B", "A1", "A2"),
		relation.Ints(0, 0, 0), relation.Ints(0, 0, 1),
		relation.Ints(0, 1, 0), relation.Ints(1, 1, 1))
}

// INot returns the negation relation of Figure 4.1.
func INot() *relation.Relation {
	return relation.FromTuples(relation.NewSchema(RNotName, "A", "NA"),
		relation.Ints(0, 1), relation.Ints(1, 0))
}

// Ic returns the inspection relation of Theorem 5.2:
// {(1,0,0), (1,1,1), (0,0,1), (0,1,1)}; C = 0 iff C1 = 1 and C2 = 0.
func Ic() *relation.Relation {
	return relation.FromTuples(relation.NewSchema(RcName, "C1", "C2", "C"),
		relation.Ints(1, 0, 0), relation.Ints(1, 1, 1),
		relation.Ints(0, 0, 1), relation.Ints(0, 1, 1))
}

// AddTo installs the four Figure 4.1 relations into db and returns db.
func AddTo(db *relation.Database) *relation.Database {
	db.Add(I01())
	db.Add(IOr())
	db.Add(IAnd())
	db.Add(INot())
	return db
}

// NewDB returns a fresh database holding exactly the Figure 4.1 relations.
func NewDB() *relation.Database { return AddTo(relation.NewDatabase()) }

// Formula is a propositional formula over named variables.
type Formula interface {
	// Eval evaluates the formula under an assignment.
	Eval(assign map[string]bool) bool
	String() string
}

// Var is a propositional variable.
type Var string

// Not negates a formula.
type Not struct{ Sub Formula }

// And conjoins formulas; the empty conjunction is true.
type And struct{ Subs []Formula }

// Or disjoins formulas; the empty disjunction is false.
type Or struct{ Subs []Formula }

// Eval evaluates a variable.
func (v Var) Eval(assign map[string]bool) bool { return assign[string(v)] }

// Eval evaluates a negation.
func (n Not) Eval(assign map[string]bool) bool { return !n.Sub.Eval(assign) }

// Eval evaluates a conjunction.
func (a And) Eval(assign map[string]bool) bool {
	for _, s := range a.Subs {
		if !s.Eval(assign) {
			return false
		}
	}
	return true
}

// Eval evaluates a disjunction.
func (o Or) Eval(assign map[string]bool) bool {
	for _, s := range o.Subs {
		if s.Eval(assign) {
			return true
		}
	}
	return false
}

func (v Var) String() string { return string(v) }
func (n Not) String() string { return "!" + n.Sub.String() }
func (a And) String() string { return joinSubs(a.Subs, " & ") }
func (o Or) String() string  { return joinSubs(o.Subs, " | ") }

func joinSubs(subs []Formula, sep string) string {
	s := "("
	for i, f := range subs {
		if i > 0 {
			s += sep
		}
		s += f.String()
	}
	return s + ")"
}

// CNFFormula builds the formula ∧ clauses where each clause is ∨ of DIMACS
// literals: literal v > 0 denotes variable name(v-1), v < 0 its negation.
func CNFFormula(clauses [][]int, name func(v int) string) Formula {
	conj := And{}
	for _, cl := range clauses {
		disj := Or{}
		for _, lit := range cl {
			disj.Subs = append(disj.Subs, litFormula(lit, name))
		}
		conj.Subs = append(conj.Subs, disj)
	}
	return conj
}

// DNFFormula builds the formula ∨ terms where each term is ∧ of DIMACS
// literals.
func DNFFormula(terms [][]int, name func(v int) string) Formula {
	disj := Or{}
	for _, tm := range terms {
		conj := And{}
		for _, lit := range tm {
			conj.Subs = append(conj.Subs, litFormula(lit, name))
		}
		disj.Subs = append(disj.Subs, conj)
	}
	return disj
}

func litFormula(lit int, name func(v int) string) Formula {
	if lit < 0 {
		return Not{Sub: Var(name(-lit - 1))}
	}
	return Var(name(lit - 1))
}

// Compiler turns propositional formulas into chains of gadget atoms. Each
// propositional variable name is used directly as a conjunctive-query
// variable, which the caller must bind to a Boolean value (for instance with
// the atoms produced by AssignmentAtoms, or by matching a package relation).
// Intermediate results are held in fresh variables prefixed by Prefix.
type Compiler struct {
	// Prefix distinguishes fresh intermediate variables; defaults to "_b".
	Prefix string
	atoms  []query.Atom
	n      int
}

// fresh mints an unused intermediate variable name.
func (c *Compiler) fresh() string {
	p := c.Prefix
	if p == "" {
		p = "_b"
	}
	c.n++
	return fmt.Sprintf("%s%d", p, c.n)
}

// Atoms returns the gadget atoms emitted so far.
func (c *Compiler) Atoms() []query.Atom { return c.atoms }

// Vars returns the fresh variables minted so far (for explicit ∃ lists).
func (c *Compiler) Vars() []string {
	p := c.Prefix
	if p == "" {
		p = "_b"
	}
	out := make([]string, c.n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", p, i+1)
	}
	return out
}

// Compile emits atoms computing the truth value of f and returns the query
// variable holding the result (bound to 0 or 1 by the gadget relations).
func (c *Compiler) Compile(f Formula) string {
	switch g := f.(type) {
	case Var:
		return string(g)
	case Not:
		in := c.Compile(g.Sub)
		out := c.fresh()
		c.atoms = append(c.atoms, query.Rel(RNotName, query.V(in), query.V(out)))
		return out
	case And:
		return c.fold(RAndName, g.Subs, true)
	case Or:
		return c.fold(ROrName, g.Subs, false)
	default:
		panic(fmt.Sprintf("boolenc: unknown formula node %T", f))
	}
}

// fold chains a binary gadget over the sub-results; identity is the value of
// the empty fold (true for ∧, false for ∨), realised as a fresh variable
// constrained to that constant through R01.
func (c *Compiler) fold(gadget string, subs []Formula, identity bool) string {
	if len(subs) == 0 {
		return c.Constant(identity)
	}
	cur := c.Compile(subs[0])
	for _, s := range subs[1:] {
		next := c.Compile(s)
		out := c.fresh()
		c.atoms = append(c.atoms, query.Rel(gadget, query.V(out), query.V(cur), query.V(next)))
		cur = out
	}
	return cur
}

// Constant emits atoms binding a fresh variable to the Boolean constant b.
func (c *Compiler) Constant(b bool) string {
	out := c.fresh()
	c.atoms = append(c.atoms,
		query.Rel(R01Name, query.V(out)),
		query.Eq(query.V(out), query.C(relation.Bool(b))))
	return out
}

// AssertEq emits a constraint forcing the compiled variable to the constant.
func (c *Compiler) AssertEq(v string, b bool) {
	c.atoms = append(c.atoms, query.Eq(query.V(v), query.C(relation.Bool(b))))
}

// AssignmentAtoms returns the atoms R01(v1), ..., R01(vn) generating all
// truth assignments of the given variables, as in the queries QX, QY of the
// reductions.
func AssignmentAtoms(vars []string) []query.Atom {
	atoms := make([]query.Atom, len(vars))
	for i, v := range vars {
		atoms[i] = query.Rel(R01Name, query.V(v))
	}
	return atoms
}

// VarNames returns the standard variable names prefix0..prefix{n-1}.
func VarNames(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}
