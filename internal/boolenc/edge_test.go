package boolenc

import (
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func TestCompilerConstant(t *testing.T) {
	for _, b := range []bool{true, false} {
		comp := &Compiler{}
		v := comp.Constant(b)
		// Evaluate: the constant atom chain binds v to exactly one value.
		q := query.NewCQ("Q", []query.Term{query.V(v)}, comp.Atoms()...)
		ans, err := q.Eval(NewDB())
		if err != nil {
			t.Fatal(err)
		}
		if ans.Len() != 1 || !ans.Tuples()[0][0].Equal(relation.Bool(b)) {
			t.Fatalf("Constant(%v) evaluated to %v", b, ans)
		}
	}
}

func TestCompilerDefaultPrefix(t *testing.T) {
	comp := &Compiler{}
	comp.Compile(And{[]Formula{Var("a"), Var("b")}})
	vars := comp.Vars()
	if len(vars) != 1 || vars[0] != "_b1" {
		t.Fatalf("default-prefix fresh vars = %v", vars)
	}
}

func TestCompilerPanicsOnUnknownNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown formula node")
		}
	}()
	comp := &Compiler{}
	comp.Compile(nil)
}

func TestFormulaStrings(t *testing.T) {
	f := Or{[]Formula{And{[]Formula{Var("x"), Not{Var("y")}}}, Var("z")}}
	if f.String() != "((x & !y) | z)" {
		t.Fatalf("rendering = %q", f.String())
	}
}

func TestAddToInstallsAllFour(t *testing.T) {
	db := AddTo(relation.NewDatabase())
	for _, name := range []string{R01Name, ROrName, RAndName, RNotName} {
		if db.Relation(name) == nil {
			t.Fatalf("relation %s missing", name)
		}
	}
}
