package boolenc

import (
	"fmt"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func TestGadgetTruthTables(t *testing.T) {
	iOr, iAnd, iNot := IOr(), IAnd(), INot()
	for a := int64(0); a <= 1; a++ {
		for b := int64(0); b <= 1; b++ {
			or := int64(0)
			if a == 1 || b == 1 {
				or = 1
			}
			and := int64(0)
			if a == 1 && b == 1 {
				and = 1
			}
			if !iOr.Contains(relation.Ints(or, a, b)) {
				t.Errorf("I∨ missing (%d, %d, %d)", or, a, b)
			}
			if iOr.Contains(relation.Ints(1-or, a, b)) {
				t.Errorf("I∨ contains wrong row for (%d, %d)", a, b)
			}
			if !iAnd.Contains(relation.Ints(and, a, b)) {
				t.Errorf("I∧ missing (%d, %d, %d)", and, a, b)
			}
			if iAnd.Contains(relation.Ints(1-and, a, b)) {
				t.Errorf("I∧ contains wrong row for (%d, %d)", a, b)
			}
		}
		if !iNot.Contains(relation.Ints(a, 1-a)) || iNot.Contains(relation.Ints(a, a)) {
			t.Errorf("I¬ wrong for %d", a)
		}
	}
	if I01().Len() != 2 || IOr().Len() != 4 || IAnd().Len() != 4 || INot().Len() != 2 {
		t.Fatal("gadget cardinalities differ from Figure 4.1")
	}
}

func TestIcInspection(t *testing.T) {
	ic := Ic()
	if ic.Len() != 4 {
		t.Fatalf("Ic has %d rows, want 4", ic.Len())
	}
	// C = 0 iff C1 = 1 and C2 = 0 on the rows present.
	for _, tup := range ic.Tuples() {
		c1, c2, c := tup[0].Int64(), tup[1].Int64(), tup[2].Int64()
		want := int64(1)
		if c1 == 1 && c2 == 0 {
			want = 0
		}
		if c != want {
			t.Errorf("Ic row (%d, %d, %d): C should be %d", c1, c2, c, want)
		}
	}
}

// compileQuery builds the Boolean query "is f true under the assignment
// enumerated by R01 products" and evaluates it for a specific assignment by
// constraining the variables.
func evalViaGadgets(t *testing.T, f Formula, vars []string, assign map[string]bool) bool {
	t.Helper()
	comp := &Compiler{}
	atoms := AssignmentAtoms(vars)
	for _, v := range vars {
		atoms = append(atoms, query.Eq(query.V(v), query.C(relation.Bool(assign[v]))))
	}
	out := comp.Compile(f)
	comp.AssertEq(out, true)
	atoms = append(atoms, comp.Atoms()...)
	q := query.NewCQ("Q", nil, atoms...)
	res, err := q.Eval(NewDB())
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return res.Len() > 0
}

func TestCompilerMatchesDirectEvaluation(t *testing.T) {
	vars := []string{"x0", "x1", "x2"}
	formulas := []Formula{
		Var("x0"),
		Not{Var("x1")},
		And{[]Formula{Var("x0"), Var("x1")}},
		Or{[]Formula{Var("x0"), Not{Var("x2")}}},
		Or{[]Formula{
			And{[]Formula{Var("x0"), Not{Var("x1")}, Var("x2")}},
			And{[]Formula{Not{Var("x0")}, Var("x1")}},
		}},
		And{[]Formula{
			Or{[]Formula{Var("x0"), Var("x1"), Var("x2")}},
			Or{[]Formula{Not{Var("x0")}, Not{Var("x1")}}},
		}},
		And{nil}, // empty conjunction = true
		Or{nil},  // empty disjunction = false
	}
	for fi, f := range formulas {
		for bits := 0; bits < 8; bits++ {
			assign := map[string]bool{}
			for i, v := range vars {
				assign[v] = bits&(1<<i) != 0
			}
			want := f.Eval(assign)
			got := evalViaGadgets(t, f, vars, assign)
			if got != want {
				t.Fatalf("formula %d (%v) under %v: gadget=%v direct=%v", fi, f, assign, got, want)
			}
		}
	}
}

func TestCNFDNFFormulaBuilders(t *testing.T) {
	name := func(v int) string { return fmt.Sprintf("x%d", v) }
	// (x0 ∨ ¬x1) ∧ (x1 ∨ x2)
	cnf := CNFFormula([][]int{{1, -2}, {2, 3}}, name)
	assign := map[string]bool{"x0": false, "x1": false, "x2": true}
	if !cnf.Eval(assign) {
		t.Fatal("CNF should hold: clause1 via ¬x1, clause2 via x2")
	}
	assign["x1"] = true
	if cnf.Eval(assign) {
		t.Fatal("CNF should fail: clause1 has x0=0, x1=1")
	}
	// (x0 ∧ ¬x1) ∨ (x2)
	dnf := DNFFormula([][]int{{1, -2}, {3}}, name)
	if !dnf.Eval(map[string]bool{"x0": true, "x1": false, "x2": false}) {
		t.Fatal("DNF term 1 should hold")
	}
	if dnf.Eval(map[string]bool{"x0": true, "x1": true, "x2": false}) {
		t.Fatal("DNF should fail")
	}
}

func TestCompilerCountsSatisfyingAssignments(t *testing.T) {
	// Count assignments of (x0 ∨ x1) via the gadget encoding: build
	// Q(x0, x1) with the compiled value asserted true; answer size must be 3.
	f := Or{[]Formula{Var("x0"), Var("x1")}}
	comp := &Compiler{}
	atoms := AssignmentAtoms([]string{"x0", "x1"})
	out := comp.Compile(f)
	comp.AssertEq(out, true)
	atoms = append(atoms, comp.Atoms()...)
	q := query.NewCQ("Q", []query.Term{query.V("x0"), query.V("x1")}, atoms...)
	res, err := q.Eval(NewDB())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("satisfying assignments = %d, want 3 (%v)", res.Len(), res)
	}
}

func TestCompilerFreshVarsAreListed(t *testing.T) {
	comp := &Compiler{Prefix: "_t"}
	comp.Compile(And{[]Formula{Var("a"), Var("b"), Var("c")}})
	vars := comp.Vars()
	if len(vars) != 2 { // two fold steps
		t.Fatalf("fresh vars = %v, want 2 entries", vars)
	}
	for _, v := range vars {
		if v[:2] != "_t" {
			t.Fatalf("fresh var %q lacks prefix", v)
		}
	}
}

func TestVarNames(t *testing.T) {
	got := VarNames("y", 3)
	want := []string{"y0", "y1", "y2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VarNames = %v", got)
		}
	}
}
