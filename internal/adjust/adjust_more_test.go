package adjust

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

func TestDecideWithNilExtra(t *testing.T) {
	// Only deletions available: removing a museum fixes a "no more than two
	// items" requirement expressed through val.
	db := poiDB()
	prob := &core.Problem{
		DB: db,
		Q:  query.Identity("RQ", db.Relation("poi")),
		Val: core.Func("exactlyTwo", func(p core.Package) float64 {
			if p.Len() == 2 {
				return 1
			}
			return 0
		}),
		Cost:   core.CountOrInf(),
		Budget: 10,
		K:      3, // three distinct 2-item packages require ≥ 3 items: C(3,2) = 3
	}
	inst := Instance{Problem: prob, Extra: nil, Bound: 1, KPrime: 1}
	delta, ok, err := Decide(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || delta.Size() != 0 {
		t.Fatalf("three museums already give three pairs: ok=%v delta=%v", ok, delta)
	}
	// Demanding six pairs needs a fourth item, which nil Extra cannot give.
	prob.K = 6
	_, ok, err = Decide(Instance{Problem: prob, Extra: nil, Bound: 1, KPrime: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("no insertions available: six pairs are impossible")
	}
}

func TestDecidePropagatesEvaluationErrors(t *testing.T) {
	db := poiDB()
	prob := &core.Problem{
		DB:     db,
		Q:      query.NewCQ("RQ", []query.Term{query.V("x")}, query.Rel("missing", query.V("x"))),
		Val:    core.Count(),
		Cost:   core.Count(),
		Budget: 10,
		K:      1,
	}
	_, _, err := Decide(Instance{Problem: prob, Bound: 1, KPrime: 0})
	if err == nil {
		t.Fatal("unknown relation in Q must surface")
	}
}

func TestDecideItemsPropagatesErrors(t *testing.T) {
	db := poiDB()
	q := query.NewCQ("RQ", []query.Term{query.V("x")}, query.Rel("missing", query.V("x")))
	_, _, err := DecideItems(db, nil, q, func(relation.Tuple) float64 { return 0 }, 0, 1, 0)
	if err == nil {
		t.Fatal("unknown relation in Q must surface")
	}
}

func TestApplyInsertErrorOnArityMismatch(t *testing.T) {
	db := poiDB()
	delta := Delta{Edits: []Edit{{Rel: "poi", Tuple: relation.Ints(1), Insert: true}}}
	if _, err := Apply(db, nil, delta); err == nil {
		t.Fatal("arity-mismatched insertion must fail")
	}
}

func TestCompatFnErrorSurfacesThroughDecide(t *testing.T) {
	db := poiDB()
	sentinel := errors.New("compat failure")
	prob := &core.Problem{
		DB:       db,
		Q:        query.Identity("RQ", db.Relation("poi")),
		CompatFn: func(core.Package, *relation.Database) (bool, error) { return false, sentinel },
		Val:      core.Count(),
		Cost:     core.Count(),
		Budget:   10,
		K:        1,
	}
	_, _, err := Decide(Instance{Problem: prob, Bound: 1, KPrime: 0})
	if !errors.Is(err, sentinel) {
		t.Fatalf("expected sentinel, got %v", err)
	}
}

func TestEditString(t *testing.T) {
	del := Edit{Rel: "poi", Tuple: relation.Ints(1)}
	ins := Edit{Rel: "poi", Tuple: relation.Ints(2), Insert: true}
	if del.String() != "-poi(1)" || ins.String() != "+poi(2)" {
		t.Fatalf("edit renderings: %q %q", del.String(), ins.String())
	}
	d := Delta{Edits: []Edit{del, ins}}
	if d.String() != "{-poi(1), +poi(2)}" {
		t.Fatalf("delta rendering: %q", d.String())
	}
}
