package adjust

import (
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// poiDB models Example 1.1(5): the POI collection has only museums, and the
// compatibility constraint caps museums at 2 per package.
func poiDB() *relation.Database {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("poi", "name", "type"),
		relation.NewTuple(relation.Str("met"), relation.Str("museum")),
		relation.NewTuple(relation.Str("moma"), relation.Str("museum")),
		relation.NewTuple(relation.Str("guggenheim"), relation.Str("museum"))))
	return db
}

// extraPOI is the vendor's candidate item collection D′.
func extraPOI() *relation.Database {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("poi", "name", "type"),
		relation.NewTuple(relation.Str("broadway"), relation.Str("theater")),
		relation.NewTuple(relation.Str("lincoln"), relation.Str("theater"))))
	return db
}

// atMostTwoMuseums is the Qc of Example 1.1: nonempty iff the package holds
// three distinct museums.
func atMostTwoMuseums() query.Query {
	v := query.V
	return query.NewCQ("Qc", nil,
		query.Rel("RQ", v("n1"), v("t1")),
		query.Rel("RQ", v("n2"), v("t2")),
		query.Rel("RQ", v("n3"), v("t3")),
		query.Eq(v("t1"), query.CS("museum")),
		query.Eq(v("t2"), query.CS("museum")),
		query.Eq(v("t3"), query.CS("museum")),
		query.Cmp(v("n1"), query.OpNe, v("n2")),
		query.Cmp(v("n1"), query.OpNe, v("n3")),
		query.Cmp(v("n2"), query.OpNe, v("n3")))
}

// poiProblem wants a package of at least 4 POIs (val = count, B = 4).
func poiProblem() *core.Problem {
	db := poiDB()
	return &core.Problem{
		DB:     db,
		Q:      query.Identity("RQ", db.Relation("poi")),
		Qc:     atMostTwoMuseums(),
		Cost:   core.Count(),
		Val:    core.Count(),
		Budget: 10,
		K:      1,
	}
}

func TestApplyDelta(t *testing.T) {
	db := poiDB()
	delta := Delta{Edits: []Edit{
		{Rel: "poi", Tuple: relation.NewTuple(relation.Str("met"), relation.Str("museum"))},
		{Rel: "poi", Tuple: relation.NewTuple(relation.Str("broadway"), relation.Str("theater")), Insert: true},
	}}
	out, err := Apply(db, nil, delta)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("poi").Contains(relation.NewTuple(relation.Str("met"), relation.Str("museum"))) {
		t.Fatal("deletion not applied")
	}
	if !out.Relation("poi").Contains(relation.NewTuple(relation.Str("broadway"), relation.Str("theater"))) {
		t.Fatal("insertion not applied")
	}
	// Original untouched.
	if db.Relation("poi").Len() != 3 {
		t.Fatal("Apply mutated the base database")
	}
}

func TestApplyDeltaCreatesRelation(t *testing.T) {
	db := relation.NewDatabase()
	delta := Delta{Edits: []Edit{{Rel: "fresh", Tuple: relation.Ints(1), Insert: true}}}
	out, err := Apply(db, map[string]*relation.Schema{"fresh": relation.NewSchema("fresh", "v")}, delta)
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("fresh") == nil || out.Relation("fresh").Len() != 1 {
		t.Fatal("insertion should create the relation")
	}
	// Deleting from a missing relation errors.
	bad := Delta{Edits: []Edit{{Rel: "nope", Tuple: relation.Ints(1)}}}
	if _, err := Apply(db, nil, bad); err == nil {
		t.Fatal("deletion from unknown relation should error")
	}
}

func TestARPPDecideInsertsTheaters(t *testing.T) {
	// A 4-POI package needs ≥ 4 items with ≤ 2 museums: the vendor must add
	// both theaters from D′ (minimum adjustment size 2), and delete one
	// museum... no — 2 museums + 2 theaters = 4 items works. |Δ| = 2.
	inst := Instance{
		Problem: poiProblem(),
		Extra:   extraPOI(),
		Bound:   4,
		KPrime:  2,
	}
	delta, ok, err := Decide(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ARPP should succeed by inserting the two theaters")
	}
	if delta.Size() != 2 {
		t.Fatalf("minimum adjustment size = %d, want 2 (%v)", delta.Size(), delta)
	}
	for _, e := range delta.Edits {
		if !e.Insert {
			t.Fatalf("expected insertions only, got %v", delta)
		}
	}
}

func TestARPPDecideBudgetTooSmall(t *testing.T) {
	inst := Instance{
		Problem: poiProblem(),
		Extra:   extraPOI(),
		Bound:   4,
		KPrime:  1, // one theater is not enough for a 4-item, ≤2-museum package
	}
	_, ok, err := Decide(inst)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ARPP should fail with k′ = 1")
	}
}

func TestARPPDecideZeroWhenAlreadyFeasible(t *testing.T) {
	inst := Instance{
		Problem: poiProblem(),
		Extra:   extraPOI(),
		Bound:   2, // two museums suffice
		KPrime:  2,
	}
	delta, ok, err := Decide(inst)
	if err != nil || !ok {
		t.Fatalf("Decide: ok=%v err=%v", ok, err)
	}
	if delta.Size() != 0 {
		t.Fatalf("already-feasible instance should need |Δ| = 0, got %v", delta)
	}
}

func TestARPPDeletionsHelp(t *testing.T) {
	// Val rewards packages with NO museums: val = 1 if the package has no
	// museum else 0. With only museums in D, B = 1 and val counting
	// non-museum purity, the fix is to insert a theater (1 edit).
	db := poiDB()
	prob := &core.Problem{
		DB: db,
		Q:  query.Identity("RQ", db.Relation("poi")),
		Val: core.Func("noMuseum", func(p core.Package) float64 {
			for _, t := range p.Tuples() {
				if t[1].Equal(relation.Str("museum")) {
					return 0
				}
			}
			return 1
		}),
		Cost:   core.CountOrInf(),
		Budget: 1,
		K:      1,
	}
	inst := Instance{Problem: prob, Extra: extraPOI(), Bound: 1, KPrime: 1}
	delta, ok, err := Decide(inst)
	if err != nil || !ok {
		t.Fatalf("Decide: ok=%v err=%v", ok, err)
	}
	if delta.Size() != 1 || !delta.Edits[0].Insert {
		t.Fatalf("delta = %v, want one insertion", delta)
	}
}

func TestARPPDecideItems(t *testing.T) {
	// Items: top-k POIs rated by being a theater. D has none; D′ has two.
	db := poiDB()
	q := query.Identity("RQ", db.Relation("poi"))
	f := func(t relation.Tuple) float64 {
		if t[1].Equal(relation.Str("theater")) {
			return 1
		}
		return 0
	}
	delta, ok, err := DecideItems(db, extraPOI(), q, f, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("item ARPP should succeed by inserting both theaters")
	}
	if delta.Size() != 2 {
		t.Fatalf("delta = %v, want 2 insertions", delta)
	}
	// k′ = 1 cannot provide two theaters.
	_, ok, err = DecideItems(db, extraPOI(), q, f, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("item ARPP should fail with k′ = 1")
	}
}

func TestUniverseDeterministicAndDeduplicated(t *testing.T) {
	// D′ tuples already in D must not appear as insertions.
	db := poiDB()
	extra := poiDB() // identical: no insertions possible
	inst := Instance{Problem: &core.Problem{DB: db, Q: query.Identity("RQ", db.Relation("poi")),
		Cost: core.Count(), Val: core.Count(), Budget: 10, K: 1}, Extra: extra}
	u := inst.universe()
	for _, e := range u {
		if e.Insert {
			t.Fatalf("duplicate insertion offered: %v", e)
		}
	}
	if len(u) != 3 {
		t.Fatalf("universe = %v, want the 3 deletions", u)
	}
}
