// Package adjust implements the adjustment recommendations of Section 8:
// when the item collection D cannot satisfy users' requests, find a bounded
// set Δ(D, D′) of modifications — deletions of tuples from D and insertions
// of tuples drawn from an additional collection D′ — such that D ⊕ Δ(D, D′)
// admits k distinct valid packages rated at least B. ARPP asks whether such
// a Δ with |Δ| ≤ k′ exists; Decide answers it and returns a minimum-size
// witness.
//
// ARPP is Σp2-complete in combined complexity for CQ and NP-complete for
// item selections with a fixed query (Corollary 8.2, DecideItems); Decide
// realises the upper bounds deterministically by enumerating adjustment
// sets in ascending size over the edit universe and testing each through
// the core ∃k-valid feasibility search. Successive tests share one
// core.SolveSession: edits that leave the selected candidate set unchanged
// — most of them, since the selection query admits few tuples — resume
// from a memoised verdict instead of a fresh engine walk (see probeSalt
// for when a memo entry may be shared). DecideCtx is the serving-layer
// variant (parallel feasibility core plus deadline) with identical
// answers. The public facade exposes the package as pkgrec.AdjustItems;
// docs/complexity.md maps the paper's ARPP results onto it, and
// internal/reductions (ARPPFromEFDNF, ItemARPPFrom3SAT) holds the
// matching hardness witnesses.
package adjust

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// Edit is a single adjustment: a tuple to delete from or insert into a named
// relation of D.
type Edit struct {
	Rel    string
	Tuple  relation.Tuple
	Insert bool // true = insertion from D′, false = deletion from D
}

// String renders the edit.
func (e Edit) String() string {
	op := "-"
	if e.Insert {
		op = "+"
	}
	return fmt.Sprintf("%s%s%s", op, e.Rel, e.Tuple)
}

// Delta is a set of adjustments Δ(D, D′).
type Delta struct {
	Edits []Edit
}

// Size returns |Δ|.
func (d Delta) Size() int { return len(d.Edits) }

// String renders the adjustment set.
func (d Delta) String() string {
	parts := make([]string, len(d.Edits))
	for i, e := range d.Edits {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Apply returns D ⊕ Δ(D, D′) as a new database; D is not modified.
// Inserting into a relation absent from D creates it with the schema found
// in D′ (via the edit's tuple arity).
func Apply(db *relation.Database, schemas map[string]*relation.Schema, d Delta) (*relation.Database, error) {
	out := db.Clone()
	for _, e := range d.Edits {
		r := out.Relation(e.Rel)
		if r == nil {
			if !e.Insert {
				return nil, fmt.Errorf("adjust: deletion from unknown relation %q", e.Rel)
			}
			schema := schemas[e.Rel]
			if schema == nil {
				schema = relation.AutoSchema(e.Rel, len(e.Tuple))
			}
			r = relation.NewRelation(schema)
			out.Add(r)
		}
		if e.Insert {
			if err := r.Insert(e.Tuple); err != nil {
				return nil, err
			}
		} else {
			r.Delete(e.Tuple)
		}
	}
	return out, nil
}

// Instance is an ARPP instance: the recommendation problem over D, the
// additional collection D′, the rating bound B and the adjustment budget k′.
type Instance struct {
	Problem *core.Problem
	Extra   *relation.Database // D′: candidate insertions
	Bound   float64            // B
	KPrime  int                // k′: |Δ| ≤ k′
}

// universe lists every possible edit in a deterministic order: deletions of
// the tuples of D (relations in insertion order, tuples in canonical order),
// then insertions of the tuples of D′ not already present in D.
func (inst Instance) universe() []Edit {
	var edits []Edit
	db := inst.Problem.DB
	for _, name := range db.Names() {
		for _, t := range db.Relation(name).Sorted().Tuples() {
			edits = append(edits, Edit{Rel: name, Tuple: t})
		}
	}
	if inst.Extra != nil {
		for _, name := range inst.Extra.Names() {
			existing := db.Relation(name)
			for _, t := range inst.Extra.Relation(name).Sorted().Tuples() {
				if existing != nil && existing.Contains(t) {
					continue
				}
				edits = append(edits, Edit{Rel: name, Tuple: t, Insert: true})
			}
		}
	}
	return edits
}

// extraSchemas maps D′ relation names to schemas, for insertions that
// create new relations in D.
func (inst Instance) extraSchemas() map[string]*relation.Schema {
	m := map[string]*relation.Schema{}
	if inst.Extra != nil {
		for _, name := range inst.Extra.Names() {
			m[name] = inst.Extra.Relation(name).Schema()
		}
	}
	return m
}

// Decide solves ARPP: does a package adjustment Δ(D, D′) with |Δ| ≤ k′
// exist such that k distinct valid packages rated at least B exist over
// D ⊕ Δ? Adjustments are searched in order of increasing size, so the
// returned witness is minimum; size 0 succeeds when D already satisfies the
// users' requests.
func Decide(inst Instance) (*Delta, bool, error) {
	sess := core.NewSolveSession(inst.Problem.K, inst.Bound)
	return decide(context.Background(), inst, func(db *relation.Database, d Delta) (bool, error) {
		prob := *inst.Problem
		prob.DB = db
		prob.InvalidateCache()
		ok, _, err := sess.Probe(&prob, inst.probeSalt(d))
		return ok, err
	})
}

// DecideCtx is Decide with a deadline and a parallel feasibility core:
// cancellation is checked before each candidate adjustment's feasibility
// test, which itself runs on the root-splitting parallel engine with the
// given worker count (≤ 0 means GOMAXPROCS). Adjustments are still searched
// in ascending size, so the witness is the same minimum-size Δ that Decide
// returns — the serving layer relies on this to answer ARPP identically to
// the library.
func DecideCtx(ctx context.Context, inst Instance, workers int) (*Delta, bool, error) {
	sess := core.NewSolveSession(inst.Problem.K, inst.Bound)
	return decide(ctx, inst, func(db *relation.Database, d Delta) (bool, error) {
		prob := *inst.Problem
		prob.DB = db
		prob.InvalidateCache()
		ok, _, err := sess.ProbeParallel(ctx, &prob, inst.probeSalt(d), workers)
		return ok, err
	})
}

// probeSalt scopes a session memo entry to one adjusted database when the
// feasibility verdict can read the database beyond the candidate list: Qc
// and CompatFn both take the adjusted D ⊕ Δ, so two deltas producing equal
// candidate lists may still disagree. Without them, feasibility is a
// function of the candidate list alone and every delta that selects the
// same candidates may share one verdict — the common case, since most
// edits touch tuples the selection query never admits.
func (inst Instance) probeSalt(d Delta) string {
	if inst.Problem.Qc == nil && inst.Problem.CompatFn == nil {
		return ""
	}
	return d.String()
}

// DecideItems solves ARPP for item selections (Corollary 8.2): does an
// adjustment with |Δ| ≤ k′ yield k distinct items rated at least B by the
// utility function?
func DecideItems(db *relation.Database, extra *relation.Database, q query.Query,
	f core.Utility, bound float64, k, kPrime int) (*Delta, bool, error) {
	inst := Instance{
		Problem: core.ItemProblem(db, q, f, k),
		Extra:   extra,
		Bound:   bound,
		KPrime:  kPrime,
	}
	return decide(context.Background(), inst, func(adjusted *relation.Database, _ Delta) (bool, error) {
		ans, err := q.Eval(adjusted)
		if err != nil {
			return false, err
		}
		n := 0
		for _, t := range ans.Tuples() {
			if f(t) >= bound {
				n++
			}
		}
		return n >= k, nil
	})
}

// decide enumerates adjustment sets of increasing size and tests each with
// the supplied feasibility predicate, checking ctx before every test. The
// predicate receives the Delta alongside the adjusted database so
// session-backed predicates can scope their memo entries (see probeSalt).
func decide(ctx context.Context, inst Instance, feasible func(*relation.Database, Delta) (bool, error)) (*Delta, bool, error) {
	universe := inst.universe()
	schemas := inst.extraSchemas()
	idx := make([]int, 0, inst.KPrime)
	var found *Delta
	var rec func(start, need int) (bool, error)
	rec = func(start, need int) (bool, error) {
		if need == 0 {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			edits := make([]Edit, len(idx))
			for i, j := range idx {
				edits[i] = universe[j]
			}
			d := Delta{Edits: edits}
			db, err := Apply(inst.Problem.DB, schemas, d)
			if err != nil {
				return false, err
			}
			ok, err := feasible(db, d)
			if err != nil {
				return false, err
			}
			if ok {
				found = &d
			}
			return ok, nil
		}
		for j := start; j+need <= len(universe)+1 && j < len(universe); j++ {
			idx = append(idx, j)
			done, err := rec(j+1, need-1)
			idx = idx[:len(idx)-1]
			if err != nil || done {
				return done, err
			}
		}
		return false, nil
	}
	for size := 0; size <= inst.KPrime; size++ {
		done, err := rec(0, size)
		if err != nil {
			return nil, false, err
		}
		if done {
			return found, true, nil
		}
	}
	return nil, false, nil
}
