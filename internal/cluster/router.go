// Package cluster is the solver-fleet coordination layer: a Router that
// implements serve.Service over a set of pkgrecd nodes, so a fleet
// presents the exact wire surface of a single daemon (cmd/pkgrecr wraps
// a Router in serve.NewHandler, the same front end cmd/pkgrecd wraps its
// local server in).
//
// The router does three jobs:
//
//   - placement: collections are partitioned across nodes by rendezvous
//     hashing on the collection name (rendezvous.go), with a replication
//     factor; writes land on the acting primary and fan out to replicas
//     synchronously over the WAL stream (replicate.go);
//   - sharded solves: collections named in Options.ShardSolves answer
//     topk/maxbound/count/exists by fanning candidate-space shards
//     (core.ShardSpec on the wire) across the replica set and merging
//     the partials with serve.MergeShardResults — byte-identical to a
//     single-node solve by the merge contract;
//   - failover: every read retries down the replica set on retryable
//     errors (the serve error taxonomy classifies them across the HTTP
//     hop), with per-node consecutive-failure health accounting
//     surfaced in RouterStats and /metrics.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/serve"
)

// Node is one fleet member: a name (its placement identity — stable
// across restarts, or collections move) and its service handle, either
// a *serve.Client for a remote daemon or (*serve.Server).Service() for
// an in-process one.
type Node struct {
	Name string
	Svc  serve.Service
}

// Options configures a Router.
type Options struct {
	// Nodes is the fleet, in any order; placement depends only on the
	// names. At least one node is required.
	Nodes []Node
	// Replicas is each collection's replica-set size (clamped to
	// [1, len(Nodes)]). 1 means partition-only: every collection lives
	// on exactly its home node.
	Replicas int
	// ShardSolves maps collection names to a shard fan-out width w ≥ 2:
	// shardable solves against those collections are split into w
	// candidate-space shards spread over the replica set and merged at
	// the router. Widths below 2 are ignored. Sharding a collection
	// only helps when Replicas gives it more than one owner to spread
	// over, but any width is correct on any replica count — all shards
	// of a full partition merge to the single-node answer wherever they
	// ran.
	ShardSolves map[string]int
	// FailThreshold is how many consecutive failures mark a node down
	// (default 3). Down nodes are deprioritized, not abandoned: any
	// success resets them.
	FailThreshold int
}

// Router coordinates a pkgrecd fleet behind the serve.Service
// interface. All methods are safe for concurrent use.
type Router struct {
	nodes    []*node
	replicas int
	shards   map[string]int

	mu      sync.Mutex
	writers map[string]*sync.Mutex // per-collection write serialization
	lastSeq map[string]uint64      // replica sync cursors, see replicate.go
	lastLag map[string]uint64      // records applied at the last catch-up

	stats routerCounters
}

// node is one member plus its health accounting.
type node struct {
	name string
	svc  serve.Service

	threshold int

	mu          sync.Mutex
	consecFails int
	failures    uint64
	lastErr     string
}

func (n *node) isDown() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.consecFails >= n.threshold
}

func (n *node) markOK() {
	n.mu.Lock()
	n.consecFails = 0
	n.lastErr = ""
	n.mu.Unlock()
}

func (n *node) markFailed(err error) {
	n.mu.Lock()
	n.consecFails++
	n.failures++
	n.lastErr = err.Error()
	n.mu.Unlock()
}

// New builds a Router over the fleet. The node list is fixed for the
// router's lifetime; placement is a pure function of the node names.
func New(opts Options) (*Router, error) {
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	threshold := opts.FailThreshold
	if threshold <= 0 {
		threshold = 3
	}
	r := &Router{
		replicas: opts.Replicas,
		shards:   make(map[string]int),
		writers:  make(map[string]*sync.Mutex),
		lastSeq:  make(map[string]uint64),
		lastLag:  make(map[string]uint64),
	}
	seen := make(map[string]bool)
	for _, n := range opts.Nodes {
		if n.Name == "" || n.Svc == nil {
			return nil, fmt.Errorf("cluster: node needs a name and a service")
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		r.nodes = append(r.nodes, &node{name: n.Name, svc: n.Svc, threshold: threshold})
	}
	if r.replicas < 1 {
		r.replicas = 1
	}
	if r.replicas > len(r.nodes) {
		r.replicas = len(r.nodes)
	}
	for name, w := range opts.ShardSolves {
		if w >= 2 {
			r.shards[name] = w
		}
	}
	return r, nil
}

var _ serve.Service = (*Router)(nil)
var _ serve.MetricsRenderer = (*Router)(nil)

// writer returns collection's write lock: writes (put, delta, remove)
// serialize per collection so the primary mutation and its replica
// fan-out form one atomic step from the router's point of view, which
// is what keeps the replica cursors (lastSeq) coherent.
func (r *Router) writer(collection string) *sync.Mutex {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.writers[collection]
	if m == nil {
		m = &sync.Mutex{}
		r.writers[collection] = m
	}
	return m
}

// failover runs op against the owner set in health-then-rank order,
// advancing past nodes that fail retryably (per the serve error
// taxonomy: overloaded, unavailable, internal — which transport faults
// classify as). Non-retryable errors (bad request, not found, context
// expiry) return immediately: another replica would answer the same.
func (r *Router) failover(ctx context.Context, owners []*node, op func(n *node) error) error {
	var lastErr error
	for i, n := range ordered(owners) {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op(n)
		if err == nil {
			n.markOK()
			return nil
		}
		if !serve.RetryableError(err) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		n.markFailed(err)
		lastErr = err
		if i < len(owners)-1 {
			r.stats.add(&r.stats.failovers, 1)
		}
	}
	return lastErr
}

// Solve answers one request: sharded fan-out when the collection is
// configured for it and the request is shardable, a primary-with-
// failover route otherwise.
func (r *Router) Solve(ctx context.Context, req serve.Request) (*serve.Response, error) {
	owners := r.owners(req.Collection)
	if w := r.shards[req.Collection]; w >= 2 && shardable(req) {
		return r.solveSharded(ctx, req, owners, w)
	}
	var resp *serve.Response
	err := r.failover(ctx, owners, func(n *node) error {
		var err error
		resp, err = n.svc.Solve(ctx, req)
		return err
	})
	return resp, err
}

// shardable reports whether a request may be split into candidate-space
// shards: the partitionable ops on the branch-and-bound backend, and
// not already a shard sub-request (a caller doing its own coordination
// routes like any other solve).
func shardable(req serve.Request) bool {
	if req.Shard != nil {
		return false
	}
	switch req.Backend {
	case "", serve.BackendBB:
	default:
		return false
	}
	switch req.Op {
	case serve.OpTopK, serve.OpMaxBound, serve.OpCount, serve.OpExists:
		return true
	}
	return false
}

// errVersionSkew marks a fan-out whose partials straddled a collection
// mutation: the shards answered against different content fingerprints,
// so the merge would mix two collections. The solve retries against the
// settled content.
var errVersionSkew = errors.New("cluster: shard partials straddled a collection mutation")

// solveSharded fans one solve out as w candidate-space shards across
// the replica set and merges the partials. Shard 0 runs first as the
// pilot: when it fills a whole k-buffer its ShardFloor is a proven
// global floor (k packages at least that good exist on shard 0 alone),
// so the sibling shards launch with it as their FloorHint and prune
// from the first node of their walks. Partials must agree on the
// collection version; a skewed set — a delta landed mid-fan-out — is
// retried, bounded, against the moved version.
func (r *Router) solveSharded(ctx context.Context, req serve.Request, owners []*node, w int) (*serve.Response, error) {
	start := time.Now()
	for attempt := 0; ; attempt++ {
		resp, err := r.fanout(ctx, req, owners, w)
		if errors.Is(err, errVersionSkew) && attempt < 3 {
			r.stats.add(&r.stats.versionRetries, 1)
			continue
		}
		if err != nil {
			return nil, err
		}
		r.stats.add(&r.stats.fanoutSolves, 1)
		r.stats.add(&r.stats.mergedPartials, uint64(w))
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
		return resp, nil
	}
}

func (r *Router) fanout(ctx context.Context, req serve.Request, owners []*node, w int) (*serve.Response, error) {
	targets := ordered(owners)

	solveShard := func(i int, hint *float64) (*serve.Response, error) {
		sub := req
		sub.Shard = &core.ShardSpec{Index: i, Count: w}
		sub.FloorHint = hint
		var resp *serve.Response
		// Rotate the failover order per shard so the fan-out spreads
		// over the replica set instead of piling onto the primary.
		rotated := make([]*node, 0, len(targets))
		for j := 0; j < len(targets); j++ {
			rotated = append(rotated, targets[(i+j)%len(targets)])
		}
		err := r.failover(ctx, rotated, func(n *node) error {
			var err error
			resp, err = n.svc.Solve(ctx, sub)
			return err
		})
		return resp, err
	}

	pilot, err := solveShard(0, nil)
	if err != nil {
		return nil, err
	}
	var hint *float64
	if req.Op == serve.OpTopK || req.Op == serve.OpMaxBound {
		// The pilot's floor is only a sound global hint when its own
		// partial proves k packages at or above it exist.
		if pilot.OK && len(pilot.Packages) == req.Spec.K && pilot.ShardFloor != nil {
			hint = pilot.ShardFloor
		}
	}

	parts := make([]*serve.Response, w)
	parts[0] = pilot
	var wg sync.WaitGroup
	errs := make([]error, w)
	for i := 1; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], errs[i] = solveShard(i, hint)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	results := make([]*serve.Result, w)
	for i, p := range parts {
		// Content identity, not version: per-node version counters
		// drift under replication (a snapshot-seeded replica restarts
		// its counter), but the fingerprint names the collection
		// content wherever it lives.
		if p.Fingerprint != pilot.Fingerprint {
			return nil, errVersionSkew
		}
		pr := p.Result
		results[i] = &pr
	}
	merged, err := serve.MergeShardResults(req.Op, req.Spec.K, results)
	if err != nil {
		return nil, err
	}
	return &serve.Response{
		Result:      *merged,
		Collection:  pilot.Collection,
		Version:     pilot.Version,
		Fingerprint: pilot.Fingerprint,
	}, nil
}

// SolveBatch routes a whole batch to the collection's replica set with
// failover; batches are not shard-split (their items already share
// prepared problems and dedup on one node, which sharding would break
// apart).
func (r *Router) SolveBatch(ctx context.Context, breq serve.BatchRequest) (*serve.BatchResponse, error) {
	var resp *serve.BatchResponse
	err := r.failover(ctx, r.owners(breq.Collection), func(n *node) error {
		var err error
		resp, err = n.svc.SolveBatch(ctx, breq)
		return err
	})
	return resp, err
}

// PutCollection installs a collection on its replica set: the acting
// primary first, then each remaining owner is synchronized from it over
// the WAL stream. The put fails only when no owner accepts it; a
// replica that cannot be synchronized is marked failed and left for the
// next write or read-failover to repair.
func (r *Router) PutCollection(ctx context.Context, name string, db *relation.Database) (serve.CollectionInfo, error) {
	w := r.writer(name)
	w.Lock()
	defer w.Unlock()
	owners := r.owners(name)
	var info serve.CollectionInfo
	var primary *node
	err := r.failover(ctx, owners, func(n *node) error {
		var err error
		info, err = n.svc.PutCollection(ctx, name, db)
		if err == nil {
			primary = n
		}
		return err
	})
	if err != nil {
		return serve.CollectionInfo{}, err
	}
	r.syncReplicas(ctx, primary, owners, name)
	return info, nil
}

// ApplyDelta applies a delta on the acting primary and synchronizes the
// replica set from its WAL stream before returning, so a read routed to
// any owner after the call sees the mutation.
func (r *Router) ApplyDelta(ctx context.Context, name string, delta relation.Delta) (serve.DeltaInfo, error) {
	w := r.writer(name)
	w.Lock()
	defer w.Unlock()
	owners := r.owners(name)
	var info serve.DeltaInfo
	var primary *node
	err := r.failover(ctx, owners, func(n *node) error {
		var err error
		info, err = n.svc.ApplyDelta(ctx, name, delta)
		if err == nil {
			primary = n
		}
		return err
	})
	if err != nil {
		return serve.DeltaInfo{}, err
	}
	r.syncReplicas(ctx, primary, owners, name)
	return info, nil
}

// GetCollection describes a collection, failing over down the replica
// set.
func (r *Router) GetCollection(ctx context.Context, name string) (serve.CollectionInfo, error) {
	var info serve.CollectionInfo
	err := r.failover(ctx, r.owners(name), func(n *node) error {
		var err error
		info, err = n.svc.GetCollection(ctx, name)
		return err
	})
	return info, err
}

// RemoveCollection drops a collection from every owner. Owners that
// never held it (a replica that missed the install) are fine; the call
// is NotFound only when no owner held it.
func (r *Router) RemoveCollection(ctx context.Context, name string) error {
	w := r.writer(name)
	w.Lock()
	defer w.Unlock()
	removed := false
	var lastErr error
	for _, n := range r.owners(name) {
		err := n.svc.RemoveCollection(ctx, name)
		switch {
		case err == nil:
			n.markOK()
			removed = true
		case serve.ErrorCode(err) == serve.CodeNotFound:
			n.markOK()
		default:
			n.markFailed(err)
			lastErr = err
		}
		r.dropCursors(n.name, name)
	}
	if removed {
		return nil
	}
	if lastErr != nil {
		return lastErr
	}
	return &serve.NotFoundError{What: "collection", Name: name}
}

// Collections lists the fleet's collections: the union across nodes,
// deduplicated by name, preferring each collection's highest-ranked
// reachable owner (whose copy is authoritative).
func (r *Router) Collections(ctx context.Context) ([]serve.CollectionInfo, error) {
	byNode := make(map[string][]serve.CollectionInfo)
	reachable := 0
	for _, n := range r.nodes {
		infos, err := n.svc.Collections(ctx)
		if err != nil {
			n.markFailed(err)
			continue
		}
		n.markOK()
		reachable++
		byNode[n.name] = infos
	}
	if reachable == 0 {
		return nil, &serve.UnavailableError{Err: errors.New("cluster: no node reachable")}
	}
	seen := make(map[string]bool)
	var out []serve.CollectionInfo
	for _, n := range r.nodes {
		for _, info := range byNode[n.name] {
			if seen[info.Name] {
				continue
			}
			seen[info.Name] = true
			best := info
			for _, owner := range r.owners(info.Name) {
				if infos, ok := byNode[owner.name]; ok {
					found := false
					for _, oi := range infos {
						if oi.Name == info.Name {
							best = oi
							found = true
							break
						}
					}
					if found {
						break
					}
				}
			}
			out = append(out, best)
		}
	}
	sortCollections(out)
	return out, nil
}

// FlushCache drops the result cache on every reachable node.
func (r *Router) FlushCache(ctx context.Context) error {
	var lastErr error
	for _, n := range r.nodes {
		if err := n.svc.FlushCache(ctx); err != nil {
			n.markFailed(err)
			lastErr = err
		} else {
			n.markOK()
		}
	}
	return lastErr
}

// Health is live while any node is: a degraded fleet still answers
// (possibly every collection, with replication), so the router reports
// unavailable only when nothing behind it does.
func (r *Router) Health(ctx context.Context) error {
	var lastErr error
	for _, n := range r.nodes {
		if err := n.svc.Health(ctx); err != nil {
			n.markFailed(err)
			lastErr = err
		} else {
			n.markOK()
			return nil
		}
	}
	return &serve.UnavailableError{Err: fmt.Errorf("cluster: no healthy node: %w", lastErr)}
}
