package cluster

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/serve"
)

// routerCounters are the router's own tallies, separate from the nodes'
// serve.Stats (which aggregate through Stats).
type routerCounters struct {
	fanoutSolves                 uint64 // sharded solves answered by a merge
	mergedPartials               uint64 // shard partials merged across them
	versionRetries               uint64 // fan-outs retried for version skew
	failovers                    uint64 // requests moved past a failing node
	replicaSyncs                 uint64 // replica catch-ups completed
	replicaRecords               uint64 // WAL records applied to replicas
	replicaSnapshots             uint64 // full snapshot transfers to replicas
	replicaFingerprintMismatches uint64 // divergent replicas detected (then rebuilt)
}

func (c *routerCounters) add(field *uint64, n uint64) {
	atomic.AddUint64(field, n)
}

func (c *routerCounters) snapshot() routerCounters {
	return routerCounters{
		fanoutSolves:                 atomic.LoadUint64(&c.fanoutSolves),
		mergedPartials:               atomic.LoadUint64(&c.mergedPartials),
		versionRetries:               atomic.LoadUint64(&c.versionRetries),
		failovers:                    atomic.LoadUint64(&c.failovers),
		replicaSyncs:                 atomic.LoadUint64(&c.replicaSyncs),
		replicaRecords:               atomic.LoadUint64(&c.replicaRecords),
		replicaSnapshots:             atomic.LoadUint64(&c.replicaSnapshots),
		replicaFingerprintMismatches: atomic.LoadUint64(&c.replicaFingerprintMismatches),
	}
}

// NodeStatus is one node's health as the router sees it.
type NodeStatus struct {
	Name string `json:"name"`
	Down bool   `json:"down"`
	// ConsecutiveFailures is the current failure streak (FailThreshold
	// of them marks the node down); Failures is the lifetime total.
	ConsecutiveFailures int    `json:"consecutiveFailures"`
	Failures            uint64 `json:"failures"`
	LastError           string `json:"lastError,omitempty"`
}

// ReplicaCursor is one replica's replication position: the last source
// log sequence it has applied, and how many records the last catch-up
// transferred (0 = it was current; large = it had fallen behind — the
// replication-lag signal /metrics exposes per cursor).
type ReplicaCursor struct {
	Node       string `json:"node"`
	Collection string `json:"collection"`
	Source     string `json:"source"`
	Seq        uint64 `json:"seq"`
	LastLag    uint64 `json:"lastLag"`
}

// RouterStats snapshots the router's coordination counters and fleet
// health — the cluster-layer complement to the per-node serve.Stats.
type RouterStats struct {
	Nodes          []NodeStatus    `json:"nodes"`
	Cursors        []ReplicaCursor `json:"cursors,omitempty"`
	FanoutSolves   uint64          `json:"fanoutSolves"`
	MergedPartials uint64          `json:"mergedPartials"`
	VersionRetries uint64          `json:"versionRetries"`
	Failovers      uint64          `json:"failovers"`
	ReplicaSyncs   uint64          `json:"replicaSyncs"`
	ReplicaRecords uint64          `json:"replicaRecordsApplied"`
	// ReplicaSnapshots counts full-state transfers (first seeding, log
	// truncation, divergence rebuilds); ReplicaFingerprintMismatches
	// counts divergences detected — every one was rebuilt from a
	// snapshot or reported as a sync failure, so a nonzero value is an
	// investigation signal, not a live inconsistency.
	ReplicaSnapshots             uint64 `json:"replicaSnapshots"`
	ReplicaFingerprintMismatches uint64 `json:"replicaFingerprintMismatches"`
}

// RouterStats snapshots the router's own counters; it performs no node
// calls.
func (r *Router) RouterStats() RouterStats {
	c := r.stats.snapshot()
	out := RouterStats{
		FanoutSolves:                 c.fanoutSolves,
		MergedPartials:               c.mergedPartials,
		VersionRetries:               c.versionRetries,
		Failovers:                    c.failovers,
		ReplicaSyncs:                 c.replicaSyncs,
		ReplicaRecords:               c.replicaRecords,
		ReplicaSnapshots:             c.replicaSnapshots,
		ReplicaFingerprintMismatches: c.replicaFingerprintMismatches,
	}
	for _, n := range r.nodes {
		n.mu.Lock()
		out.Nodes = append(out.Nodes, NodeStatus{
			Name:                n.name,
			Down:                n.consecFails >= n.threshold,
			ConsecutiveFailures: n.consecFails,
			Failures:            n.failures,
			LastError:           n.lastErr,
		})
		n.mu.Unlock()
	}
	r.mu.Lock()
	for key, seq := range r.lastSeq {
		rep, coll, src, ok := splitCursorKey(key)
		if !ok {
			continue
		}
		out.Cursors = append(out.Cursors, ReplicaCursor{
			Node: rep, Collection: coll, Source: src,
			Seq: seq, LastLag: r.lastLag[key],
		})
	}
	r.mu.Unlock()
	sort.Slice(out.Cursors, func(i, j int) bool {
		a, b := out.Cursors[i], out.Cursors[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Collection != b.Collection {
			return a.Collection < b.Collection
		}
		return a.Source < b.Source
	})
	return out
}

// Stats aggregates the fleet's serve.Stats: every numeric counter is
// summed across reachable nodes (so fleet throughput, cache traffic and
// engine work read like one big daemon's; replicated collections count
// once per holding node), and the hit rate is recomputed from the
// summed hits and misses. At least one node must answer.
func (r *Router) Stats(ctx context.Context) (*serve.Stats, error) {
	var total serve.Stats
	reachable := 0
	for _, n := range r.nodes {
		st, err := n.svc.Stats(ctx)
		if err != nil {
			n.markFailed(err)
			continue
		}
		n.markOK()
		reachable++
		addStats(&total, st)
	}
	if reachable == 0 {
		return nil, &serve.UnavailableError{Err: fmt.Errorf("cluster: no node answered stats")}
	}
	if lookups := total.CacheHits + total.CacheMisses; lookups > 0 {
		total.HitRate = float64(total.CacheHits) / float64(lookups)
	} else {
		total.HitRate = 0
	}
	return &total, nil
}

// addStats sums every numeric field of one node's stats into the
// total. serve.Stats is a flat struct of counters and gauges, so
// field-wise addition is the aggregate; reflection keeps this correct
// as the serve layer grows new counters.
func addStats(total, st *serve.Stats) {
	tv := reflect.ValueOf(total).Elem()
	sv := reflect.ValueOf(st).Elem()
	for i := 0; i < tv.NumField(); i++ {
		tf := tv.Field(i)
		if !tf.CanSet() {
			continue
		}
		switch tf.Kind() {
		case reflect.Int, reflect.Int64:
			tf.SetInt(tf.Int() + sv.Field(i).Int())
		case reflect.Uint64:
			tf.SetUint(tf.Uint() + sv.Field(i).Uint())
		case reflect.Float64:
			tf.SetFloat(tf.Float() + sv.Field(i).Float())
		}
	}
}

// RenderMetrics renders the router's coordination metrics in Prometheus
// text exposition format under the pkgrecr_ prefix — the fleet-layer
// complement to each node's pkgrec_ metrics. serve.NewHandler sees this
// and mounts GET /metrics on the router daemon.
func (r *Router) RenderMetrics() string {
	st := r.RouterStats()
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	down := 0
	for _, n := range st.Nodes {
		if n.Down {
			down++
		}
	}
	fmt.Fprintf(&b, "# HELP pkgrecr_nodes Fleet size.\n# TYPE pkgrecr_nodes gauge\npkgrecr_nodes %d\n", len(st.Nodes))
	fmt.Fprintf(&b, "# HELP pkgrecr_nodes_down Nodes currently past the failure threshold.\n# TYPE pkgrecr_nodes_down gauge\npkgrecr_nodes_down %d\n", down)
	b.WriteString("# HELP pkgrecr_node_up Per-node health (1 = up).\n# TYPE pkgrecr_node_up gauge\n")
	for _, n := range st.Nodes {
		up := 1
		if n.Down {
			up = 0
		}
		fmt.Fprintf(&b, "pkgrecr_node_up{node=%q} %d\n", n.Name, up)
	}
	b.WriteString("# HELP pkgrecr_node_failures_total Per-node failed calls.\n# TYPE pkgrecr_node_failures_total counter\n")
	for _, n := range st.Nodes {
		fmt.Fprintf(&b, "pkgrecr_node_failures_total{node=%q} %d\n", n.Name, n.Failures)
	}
	counter("pkgrecr_fanout_solves_total", "Sharded solves answered by merging shard partials.", st.FanoutSolves)
	counter("pkgrecr_merged_partials_total", "Shard partials merged at the router.", st.MergedPartials)
	counter("pkgrecr_version_retries_total", "Shard fan-outs retried because partials straddled a collection mutation.", st.VersionRetries)
	counter("pkgrecr_failovers_total", "Requests moved past a failing node to a replica.", st.Failovers)
	counter("pkgrecr_replica_syncs_total", "Replica catch-ups completed over the WAL stream.", st.ReplicaSyncs)
	counter("pkgrecr_replica_records_total", "WAL records applied to replicas.", st.ReplicaRecords)
	counter("pkgrecr_replica_snapshots_total", "Full snapshot transfers to replicas.", st.ReplicaSnapshots)
	counter("pkgrecr_replica_fingerprint_mismatches_total", "Replica divergences detected by the content fingerprint check (each triggers a snapshot rebuild).", st.ReplicaFingerprintMismatches)
	if len(st.Cursors) > 0 {
		b.WriteString("# HELP pkgrecr_replica_seq Last source WAL sequence applied per replica cursor.\n# TYPE pkgrecr_replica_seq gauge\n")
		for _, c := range st.Cursors {
			fmt.Fprintf(&b, "pkgrecr_replica_seq{node=%q,collection=%q,source=%q} %d\n", c.Node, c.Collection, c.Source, c.Seq)
		}
		b.WriteString("# HELP pkgrecr_replica_last_lag WAL records the last catch-up transferred per replica cursor (how far behind it had fallen).\n# TYPE pkgrecr_replica_last_lag gauge\n")
		for _, c := range st.Cursors {
			fmt.Fprintf(&b, "pkgrecr_replica_last_lag{node=%q,collection=%q,source=%q} %d\n", c.Node, c.Collection, c.Source, c.LastLag)
		}
	}
	return b.String()
}

// sortCollections orders a collection listing by name.
func sortCollections(infos []serve.CollectionInfo) {
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
}
