package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/relation"
	"repro/internal/serve"
)

// fleet is an in-process multi-node cluster: real serve.Servers with
// durability on, behind real HTTP listeners, fronted by a Router that
// talks to them through serve.Client — the full wire path pkgrecr
// routes in production, in one test process. Each node sits behind a
// gate so tests can kill and revive it without tearing down the HTTP
// stack.
type fleet struct {
	router  *Router
	servers []*serve.Server
	gates   []*gate
	names   []string
}

func newFleet(t *testing.T, n, replicas int, shards map[string]int) *fleet {
	t.Helper()
	f := &fleet{}
	var nodes []Node
	for i := 0; i < n; i++ {
		srv := serve.NewServer(serve.Options{})
		if err := srv.OpenWAL(serve.WALConfig{Dir: t.TempDir()}); err != nil {
			t.Fatalf("node %d WAL: %v", i, err)
		}
		ts := httptest.NewServer(serve.NewHandler(srv.Service()))
		t.Cleanup(func() { ts.Close(); _ = srv.Close() })
		name := string(rune('a' + i))
		g := &gate{inner: serve.NewClient(ts.URL)}
		f.servers = append(f.servers, srv)
		f.gates = append(f.gates, g)
		f.names = append(f.names, name)
		nodes = append(nodes, Node{Name: name, Svc: g})
	}
	router, err := New(Options{Nodes: nodes, Replicas: replicas, ShardSolves: shards})
	if err != nil {
		t.Fatal(err)
	}
	f.router = router
	return f
}

// gateIndex maps a placement node back to its fleet slot.
func (f *fleet) gateIndex(t *testing.T, n *node) int {
	t.Helper()
	for i, name := range f.names {
		if name == n.name {
			return i
		}
	}
	t.Fatalf("unknown node %q", n.name)
	return -1
}

// gate wraps a node's service with a kill switch: while down, every
// call fails with an UnavailableError — the same retryable taxonomy
// code a dead TCP endpoint classifies as — so the router exercises its
// real failover and health paths.
type gate struct {
	inner serve.Service
	down  atomic.Bool
}

var errKilled = errors.New("node killed by test")

func (g *gate) err() error { return &serve.UnavailableError{Err: errKilled} }

func (g *gate) Solve(ctx context.Context, req serve.Request) (*serve.Response, error) {
	if g.down.Load() {
		return nil, g.err()
	}
	return g.inner.Solve(ctx, req)
}

func (g *gate) SolveBatch(ctx context.Context, breq serve.BatchRequest) (*serve.BatchResponse, error) {
	if g.down.Load() {
		return nil, g.err()
	}
	return g.inner.SolveBatch(ctx, breq)
}

func (g *gate) PutCollection(ctx context.Context, name string, db *relation.Database) (serve.CollectionInfo, error) {
	if g.down.Load() {
		return serve.CollectionInfo{}, g.err()
	}
	return g.inner.PutCollection(ctx, name, db)
}

func (g *gate) ApplyDelta(ctx context.Context, name string, delta relation.Delta) (serve.DeltaInfo, error) {
	if g.down.Load() {
		return serve.DeltaInfo{}, g.err()
	}
	return g.inner.ApplyDelta(ctx, name, delta)
}

func (g *gate) GetCollection(ctx context.Context, name string) (serve.CollectionInfo, error) {
	if g.down.Load() {
		return serve.CollectionInfo{}, g.err()
	}
	return g.inner.GetCollection(ctx, name)
}

func (g *gate) RemoveCollection(ctx context.Context, name string) error {
	if g.down.Load() {
		return g.err()
	}
	return g.inner.RemoveCollection(ctx, name)
}

func (g *gate) Collections(ctx context.Context) ([]serve.CollectionInfo, error) {
	if g.down.Load() {
		return nil, g.err()
	}
	return g.inner.Collections(ctx)
}

func (g *gate) Stats(ctx context.Context) (*serve.Stats, error) {
	if g.down.Load() {
		return nil, g.err()
	}
	return g.inner.Stats(ctx)
}

func (g *gate) FlushCache(ctx context.Context) error {
	if g.down.Load() {
		return g.err()
	}
	return g.inner.FlushCache(ctx)
}

func (g *gate) Health(ctx context.Context) error {
	if g.down.Load() {
		return g.err()
	}
	return g.inner.Health(ctx)
}

func (g *gate) WALStream(ctx context.Context, name string, since uint64) (*serve.WALStream, error) {
	if g.down.Load() {
		return nil, g.err()
	}
	return g.inner.(serve.WALStreamer).WALStream(ctx, name, since)
}

// itemRequest lifts a sampled workload item to a solve request.
func itemRequest(coll string, w experiments.WorkloadItem) serve.Request {
	return serve.Request{
		Collection: coll, Op: w.Op, Spec: w.Spec, Backend: w.Backend,
		Selection: w.Selection, Relax: w.Relax, MaxSuggestions: w.MaxSuggestions,
	}
}

// checkIdentical asserts the router and the reference single-node
// service answer every item byte-identically (the Result JSON — the
// full operation answer including package tuples, ratings and bounds).
func checkIdentical(t *testing.T, router, ref serve.Service, coll string, items []experiments.WorkloadItem) {
	t.Helper()
	ctx := context.Background()
	for i, w := range items {
		req := itemRequest(coll, w)
		got, err := router.Solve(ctx, req)
		if err != nil {
			t.Fatalf("item %d (%s): router: %v", i, w.Op, err)
		}
		want, err := ref.Solve(ctx, req)
		if err != nil {
			t.Fatalf("item %d (%s): reference: %v", i, w.Op, err)
		}
		gj, err := json.Marshal(got.Result)
		if err != nil {
			t.Fatal(err)
		}
		wj, err := json.Marshal(want.Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(gj) != string(wj) {
			t.Fatalf("item %d (%s): fleet answer diverged from single node\nfleet:  %s\nsingle: %s",
				i, w.Op, gj, wj)
		}
	}
}

// checkConverged asserts every node holds the collection at the
// reference fingerprint.
func checkConverged(t *testing.T, f *fleet, ref *serve.Server, coll string) {
	t.Helper()
	want, ok := ref.Collection(coll)
	if !ok {
		t.Fatalf("reference lost collection %q", coll)
	}
	for i, srv := range f.servers {
		info, ok := srv.Collection(coll)
		if !ok {
			t.Fatalf("node %s has no collection %q", f.names[i], coll)
		}
		if info.Fingerprint != want.Fingerprint {
			t.Fatalf("node %s fingerprint %s != reference %s", f.names[i], info.Fingerprint, want.Fingerprint)
		}
	}
}

// TestFleetBitIdentityUnderChurn pins the tentpole property: a 3-node
// fleet with full replication and 3-way shard fan-out answers every
// workload op — the paper's six, plus the ranked relaxplan — exactly
// as one daemon does, byte for byte, across a sequence of collection
// deltas to the relation every query reads.
func TestFleetBitIdentityUnderChurn(t *testing.T) {
	const coll = "fleet"
	f := newFleet(t, 3, 3, map[string]int{coll: 3})
	ref := serve.NewServer(serve.Options{})
	refSvc := ref.Service()
	ctx := context.Background()

	db := experiments.WorkloadDB(40)
	if _, err := f.router.PutCollection(ctx, coll, db); err != nil {
		t.Fatal(err)
	}
	if _, err := refSvc.PutCollection(ctx, coll, db); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	ops := append(append([]string{}, experiments.WorkloadOps...), "relaxplan")
	items, err := experiments.SampleWorkload(rng, 21, db, ops)
	if err != nil {
		t.Fatal(err)
	}

	checkIdentical(t, f.router, refSvc, coll, items)
	for round := 0; round < 3; round++ {
		delta, err := experiments.ChurnDelta("poi", round)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.router.ApplyDelta(ctx, coll, delta); err != nil {
			t.Fatalf("round %d: router delta: %v", round, err)
		}
		if _, err := refSvc.ApplyDelta(ctx, coll, delta); err != nil {
			t.Fatalf("round %d: reference delta: %v", round, err)
		}
		checkConverged(t, f, ref, coll)
		checkIdentical(t, f.router, refSvc, coll, items)
	}

	st := f.router.RouterStats()
	if st.FanoutSolves == 0 {
		t.Fatal("no sharded solves were fanned out")
	}
	if st.MergedPartials < 3*st.FanoutSolves {
		t.Fatalf("merged %d partials across %d fan-outs, want 3 each", st.MergedPartials, st.FanoutSolves)
	}
	if st.ReplicaFingerprintMismatches != 0 {
		t.Fatalf("%d replica fingerprint mismatches", st.ReplicaFingerprintMismatches)
	}
	if st.ReplicaSyncs == 0 {
		t.Fatal("no replica syncs recorded")
	}
}

// TestFleetReplicaKillCatchUp kills one replica, mutates the collection
// past it, revives it, and requires the next write to pull it back in
// sync through the WAL record stream — not a snapshot re-transfer —
// with the content fingerprint check passing.
func TestFleetReplicaKillCatchUp(t *testing.T) {
	const coll = "travel"
	f := newFleet(t, 3, 3, nil)
	ref := serve.NewServer(serve.Options{})
	refSvc := ref.Service()
	ctx := context.Background()

	db := experiments.WorkloadDB(30)
	if _, err := f.router.PutCollection(ctx, coll, db); err != nil {
		t.Fatal(err)
	}
	if _, err := refSvc.PutCollection(ctx, coll, db); err != nil {
		t.Fatal(err)
	}
	apply := func(i int) {
		t.Helper()
		delta, err := experiments.ChurnDelta("poi", i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.router.ApplyDelta(ctx, coll, delta); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		if _, err := refSvc.ApplyDelta(ctx, coll, delta); err != nil {
			t.Fatal(err)
		}
	}
	// Two live deltas first, so the victim has a real WAL cursor to
	// resume from.
	apply(0)
	apply(1)
	checkConverged(t, f, ref, coll)

	owners := f.router.owners(coll)
	victim := f.gateIndex(t, owners[1])
	before := f.router.RouterStats()

	f.gates[victim].down.Store(true)
	for i := 2; i < 5; i++ {
		apply(i)
	}
	mid := f.router.RouterStats()
	if mid.Nodes[victim].Failures == before.Nodes[victim].Failures {
		t.Fatal("dead replica was never marked failed")
	}
	// Reads keep working around the dead replica.
	rng := rand.New(rand.NewSource(3))
	items, err := experiments.SampleWorkload(rng, 4, db, []string{"topk", "count"})
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, f.router, refSvc, coll, items)

	// Revive; the next write must catch the replica up from the WAL
	// stream: records only, no snapshot transfer, fingerprints equal.
	f.gates[victim].down.Store(false)
	apply(5)
	checkConverged(t, f, ref, coll)
	after := f.router.RouterStats()
	if after.ReplicaSnapshots != mid.ReplicaSnapshots {
		t.Fatalf("catch-up fell back to a snapshot transfer (%d -> %d)", mid.ReplicaSnapshots, after.ReplicaSnapshots)
	}
	// The victim missed deltas 2..5: four records over its cursor.
	if got := after.ReplicaRecords - mid.ReplicaRecords; got < 4 {
		t.Fatalf("catch-up applied %d WAL records, want >= 4", got)
	}
	if after.ReplicaFingerprintMismatches != 0 {
		t.Fatalf("%d replica fingerprint mismatches", after.ReplicaFingerprintMismatches)
	}
}

// TestFleetPrimaryFailover kills a collection's home primary and
// requires reads and writes to fail over to the replicas — and the
// primary to be re-synchronized when it comes back.
func TestFleetPrimaryFailover(t *testing.T) {
	const coll = "travel"
	f := newFleet(t, 3, 3, nil)
	ref := serve.NewServer(serve.Options{})
	refSvc := ref.Service()
	ctx := context.Background()

	db := experiments.WorkloadDB(30)
	if _, err := f.router.PutCollection(ctx, coll, db); err != nil {
		t.Fatal(err)
	}
	if _, err := refSvc.PutCollection(ctx, coll, db); err != nil {
		t.Fatal(err)
	}

	owners := f.router.owners(coll)
	primary := f.gateIndex(t, owners[0])
	f.gates[primary].down.Store(true)

	rng := rand.New(rand.NewSource(5))
	items, err := experiments.SampleWorkload(rng, 4, db, []string{"topk", "decide"})
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, f.router, refSvc, coll, items)
	if st := f.router.RouterStats(); st.Failovers == 0 {
		t.Fatal("no failovers recorded with the primary dead")
	}

	// Writes land on the acting primary and replicate to the healthy
	// replica.
	delta, err := experiments.ChurnDelta("poi", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.router.ApplyDelta(ctx, coll, delta); err != nil {
		t.Fatalf("delta with primary dead: %v", err)
	}
	if _, err := refSvc.ApplyDelta(ctx, coll, delta); err != nil {
		t.Fatal(err)
	}

	// Revive the primary; the next write pulls it back in sync.
	f.gates[primary].down.Store(false)
	delta2, err := experiments.ChurnDelta("poi", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.router.ApplyDelta(ctx, coll, delta2); err != nil {
		t.Fatal(err)
	}
	if _, err := refSvc.ApplyDelta(ctx, coll, delta2); err != nil {
		t.Fatal(err)
	}
	checkConverged(t, f, ref, coll)
	if st := f.router.RouterStats(); st.ReplicaFingerprintMismatches != 0 {
		t.Fatalf("%d replica fingerprint mismatches", st.ReplicaFingerprintMismatches)
	}
}

// TestRendezvousStability pins the minimal-disruption property: when a
// node leaves, only the collections it owned move; every other owner
// list is unchanged. Also sanity-checks the spread — every node is
// primary for some collection.
func TestRendezvousStability(t *testing.T) {
	mk := func(names ...string) *Router {
		var nodes []Node
		for _, n := range names {
			nodes = append(nodes, Node{Name: n, Svc: &gate{}})
		}
		r, err := New(Options{Nodes: nodes, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	full := mk("alpha", "beta", "gamma")
	less := mk("alpha", "beta")

	primaries := map[string]int{}
	for i := 0; i < 60; i++ {
		coll := "collection-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		fo := full.owners(coll)
		primaries[fo[0].name]++
		touched := false
		for _, n := range fo {
			if n.name == "gamma" {
				touched = true
			}
		}
		if touched {
			continue
		}
		lo := less.owners(coll)
		for j := range fo {
			if fo[j].name != lo[j].name {
				t.Fatalf("collection %q owners moved without gamma involved: %s -> %s",
					coll, fo[j].name, lo[j].name)
			}
		}
	}
	for _, n := range []string{"alpha", "beta", "gamma"} {
		if primaries[n] == 0 {
			t.Fatalf("node %s is primary for no collection (placement skew): %v", n, primaries)
		}
	}
}

// TestRouterMetrics spot-checks the pkgrecr_ exposition: fleet gauges,
// per-node health series, and the coordination counters.
func TestRouterMetrics(t *testing.T) {
	const coll = "travel"
	f := newFleet(t, 3, 3, map[string]int{coll: 3})
	ctx := context.Background()
	db := experiments.WorkloadDB(20)
	if _, err := f.router.PutCollection(ctx, coll, db); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	items, err := experiments.SampleWorkload(rng, 2, db, []string{"topk"})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range items {
		if _, err := f.router.Solve(ctx, itemRequest(coll, w)); err != nil {
			t.Fatal(err)
		}
	}
	text := f.router.RenderMetrics()
	for _, want := range []string{
		"pkgrecr_nodes 3",
		"pkgrecr_nodes_down 0",
		`pkgrecr_node_up{node="a"} 1`,
		"pkgrecr_fanout_solves_total 2",
		"pkgrecr_merged_partials_total 6",
		"pkgrecr_replica_fingerprint_mismatches_total 0",
		"pkgrecr_replica_seq{",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestRouterAggregateStats checks the fleet Stats aggregation: node
// counters sum, and the hit rate is recomputed over the summed lookups.
func TestRouterAggregateStats(t *testing.T) {
	const coll = "travel"
	f := newFleet(t, 2, 2, nil)
	ctx := context.Background()
	db := experiments.WorkloadDB(20)
	if _, err := f.router.PutCollection(ctx, coll, db); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	items, err := experiments.SampleWorkload(rng, 3, db, []string{"count"})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range items {
		if _, err := f.router.Solve(ctx, itemRequest(coll, w)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := f.router.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 {
		t.Fatal("aggregated stats count no requests")
	}
	// Both nodes hold the replicated collection, and each counts it.
	if st.Collections != 2 {
		t.Fatalf("aggregated Collections = %d, want 2 (one per holding node)", st.Collections)
	}
}

// The rest of the router's Service surface: batch routing, collection
// reads, the union listing, cache flush, removal (with cursor cleanup)
// and health — pinned against a single-node reference where an answer
// exists to compare.
func TestRouterServiceSurface(t *testing.T) {
	ctx := context.Background()
	f := newFleet(t, 3, 2, nil)
	db := experiments.WorkloadDB(30)
	for _, coll := range []string{"one", "two"} {
		if _, err := f.router.PutCollection(ctx, coll, db); err != nil {
			t.Fatal(err)
		}
	}
	ref := serve.NewServer(serve.Options{})
	defer ref.Close()
	ref.SetCollection("one", db)

	// A batch routes whole to one owner and answers like a single node.
	rng := rand.New(rand.NewSource(7))
	items, err := experiments.SampleWorkload(rng, 4, db, experiments.WorkloadOps)
	if err != nil {
		t.Fatal(err)
	}
	breq := serve.BatchRequest{Collection: "one"}
	for _, w := range items {
		breq.Items = append(breq.Items, serve.BatchItem{
			Op: w.Op, Spec: w.Spec, Selection: w.Selection,
			Relax: w.Relax, MaxSuggestions: w.MaxSuggestions,
		})
	}
	got, err := f.router.SolveBatch(ctx, breq)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.SolveBatch(ctx, breq)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(want.Items) {
		t.Fatalf("batch answered %d items, want %d", len(got.Items), len(want.Items))
	}
	for i := range got.Items {
		gj, _ := json.Marshal(got.Items[i].Result)
		wj, _ := json.Marshal(want.Items[i].Result)
		if string(gj) != string(wj) || got.Items[i].Error != want.Items[i].Error {
			t.Fatalf("batch item %d diverges from single node:\nrouter: %s (err %q)\nsingle: %s (err %q)",
				i, gj, got.Items[i].Error, wj, want.Items[i].Error)
		}
	}

	info, err := f.router.GetCollection(ctx, "one")
	if err != nil {
		t.Fatal(err)
	}
	if info.Fingerprint != db.Fingerprint() {
		t.Fatalf("routed GetCollection fingerprint %s, want %s", info.Fingerprint, db.Fingerprint())
	}
	if _, err := f.router.GetCollection(ctx, "absent"); serve.ErrorCode(err) != serve.CodeNotFound {
		t.Fatalf("absent collection: got %v", err)
	}

	// Collections is the union over the fleet, one entry per collection.
	infos, err := f.router.Collections(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, in := range infos {
		names = append(names, in.Name)
	}
	if len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Fatalf("union listing = %v, want [one two]", names)
	}

	if err := f.router.FlushCache(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.router.Health(ctx); err != nil {
		t.Fatal(err)
	}

	// Removal drops every owner's copy and the replication cursors.
	if err := f.router.RemoveCollection(ctx, "two"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.router.GetCollection(ctx, "two"); serve.ErrorCode(err) != serve.CodeNotFound {
		t.Fatalf("removed collection still served: %v", err)
	}
	if err := f.router.RemoveCollection(ctx, "two"); serve.ErrorCode(err) != serve.CodeNotFound {
		t.Fatalf("double removal: got %v", err)
	}
	for _, cur := range f.router.RouterStats().Cursors {
		if cur.Collection == "two" {
			t.Fatalf("removal left replication cursor %+v", cur)
		}
	}

	// With every node down the router is honest about it.
	for _, g := range f.gates {
		g.down.Store(true)
	}
	if err := f.router.Health(ctx); serve.ErrorCode(err) != serve.CodeUnavailable {
		t.Fatalf("all-down health: got %v", err)
	}
	if _, err := f.router.Collections(ctx); serve.ErrorCode(err) != serve.CodeUnavailable {
		t.Fatalf("all-down listing: got %v", err)
	}
}
