package cluster

import (
	"context"
	"fmt"

	"repro/internal/serve"
)

// Replication rides the durability layer: a replica catches up by
// pulling the primary's WAL stream (serve.WALStreamer) — the delta-log
// suffix past its cursor when the log still covers it, a full snapshot
// otherwise — and the stream's content fingerprint is checked against
// the replica's resulting state after every sync. The fingerprint is
// the collection-content hash the serve layer already maintains for
// idempotent puts, so replica consistency verification is free: a
// replica that applied the stream and hashes differently has diverged,
// and is rebuilt from a snapshot on the spot.

// snapshotSince is the cursor that forces a snapshot stream: it is past
// any real log position, and the WAL streamer answers a cursor it
// cannot serve records for with the full live state.
const snapshotSince = ^uint64(0)

// cursorKey identifies one replica's position in one source's log.
// The source is part of the key because WAL sequence numbers are
// per-node: after a primary failover the cursor against the new
// source starts unknown and the first sync transfers a snapshot.
func cursorKey(replica, collection, source string) string {
	return replica + "\x00" + collection + "\x00" + source
}

func (r *Router) cursor(key string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastSeq[key]
}

func (r *Router) setCursor(key string, seq, lag uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastSeq[key] = seq
	r.lastLag[key] = lag
}

// dropCursors forgets every cursor of one node's collection (both as
// replica and as source), after the collection is removed.
func (r *Router) dropCursors(nodeName, collection string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for key := range r.lastSeq {
		rep, coll, src, ok := splitCursorKey(key)
		if ok && coll == collection && (rep == nodeName || src == nodeName) {
			delete(r.lastSeq, key)
			delete(r.lastLag, key)
		}
	}
}

func splitCursorKey(key string) (replica, collection, source string, ok bool) {
	first := -1
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			if first < 0 {
				first = i
			} else {
				return key[:first], key[first+1 : i], key[i+1:], true
			}
		}
	}
	return "", "", "", false
}

// syncReplicas brings every non-primary owner up to the primary's
// state. A replica that cannot be synchronized is marked failed and
// skipped — the write has already durably landed on the primary, and
// the replica catches up on the next write (its stale cursor pulls the
// missed suffix) or is rebuilt from a snapshot if the log moved past
// it.
func (r *Router) syncReplicas(ctx context.Context, primary *node, owners []*node, collection string) {
	if primary == nil {
		return
	}
	for _, n := range owners {
		if n == primary {
			continue
		}
		if err := r.syncReplica(ctx, primary, n, collection); err != nil {
			n.markFailed(err)
		} else {
			n.markOK()
		}
	}
}

// syncReplica pulls one replica up to the source's current state and
// fingerprint-checks the result.
func (r *Router) syncReplica(ctx context.Context, src, dst *node, collection string) error {
	streamer, ok := src.svc.(serve.WALStreamer)
	if !ok {
		return fmt.Errorf("cluster: node %q cannot stream collection %q", src.name, collection)
	}
	key := cursorKey(dst.name, collection, src.name)
	since := r.cursor(key)
	if since == 0 {
		// Unknown replica state (first sync against this source):
		// request a snapshot rather than replaying a log from seq 1
		// over whatever the replica already holds.
		since = snapshotSince
	}
	stream, err := streamer.WALStream(ctx, collection, since)
	if err != nil {
		return err
	}
	lag := uint64(len(stream.Records))
	if err := r.applyStream(ctx, dst, collection, stream); err != nil {
		return err
	}
	if err := r.checkReplica(ctx, dst, collection, stream.Fingerprint); err != nil {
		// Divergence: count it, then rebuild the replica from a full
		// snapshot and re-check. Only a clean rebuild clears the sync.
		r.stats.add(&r.stats.replicaFingerprintMismatches, 1)
		stream, err = streamer.WALStream(ctx, collection, snapshotSince)
		if err != nil {
			return err
		}
		if err := r.applyStream(ctx, dst, collection, stream); err != nil {
			return err
		}
		if err := r.checkReplica(ctx, dst, collection, stream.Fingerprint); err != nil {
			return err
		}
	}
	r.setCursor(key, stream.Seq, lag)
	r.stats.add(&r.stats.replicaSyncs, 1)
	return nil
}

// applyStream installs a WAL stream on a replica: the snapshot as a
// full collection put, or the record suffix as ordinary deltas — the
// same mutation path any client write takes, so the replica's own WAL,
// cache repair and metrics all see replication traffic as traffic.
func (r *Router) applyStream(ctx context.Context, dst *node, collection string, stream *serve.WALStream) error {
	if stream.Snapshot != nil {
		if _, err := dst.svc.PutCollection(ctx, collection, stream.Snapshot); err != nil {
			return err
		}
		r.stats.add(&r.stats.replicaSnapshots, 1)
		return nil
	}
	for _, rec := range stream.Records {
		if _, err := dst.svc.ApplyDelta(ctx, collection, rec.Delta); err != nil {
			return err
		}
	}
	r.stats.add(&r.stats.replicaRecords, uint64(len(stream.Records)))
	return nil
}

// checkReplica verifies the replica's collection content hash equals
// the fingerprint the stream promised.
func (r *Router) checkReplica(ctx context.Context, dst *node, collection, fingerprint string) error {
	info, err := dst.svc.GetCollection(ctx, collection)
	if err != nil {
		return err
	}
	if info.Fingerprint != fingerprint {
		return fmt.Errorf("cluster: replica %q fingerprint %s != primary %s for collection %q",
			dst.name, info.Fingerprint, fingerprint, collection)
	}
	return nil
}
