package cluster

import (
	"hash/fnv"
	"sort"
)

// Placement is rendezvous (highest-random-weight) hashing over node
// names: every (node, collection) pair hashes to a weight, and a
// collection's owners are the nodes in descending weight order. The
// properties the router leans on:
//
//   - ownership is a pure function of the member names, so every router
//     instance — and every test — computes the identical owner ranking
//     with no coordination state to persist or replicate;
//   - removing a node only promotes the next-ranked node for the
//     collections it owned; no other collection moves (the minimal-
//     disruption property consistent hashing is used for, without the
//     virtual-node bookkeeping a hash ring needs at this fleet size);
//   - the full ranking is a failover order, not just a primary: the
//     first Replicas nodes are the replica set, and within it the
//     first healthy node is the acting primary.
//
// The weight hash is FNV-1a over "node\x00collection" — stable across
// processes and platforms (unlike Go's map iteration or hash/maphash
// seeds), which is what makes placement reproducible in CI — pushed
// through a finalizing avalanche. The finalizer matters: raw FNV-1a
// gives bytes near the end of the input only a few multiply rounds, so
// two collections differing in a trailing character barely move the
// hash and the node-name prefix would decide every ranking the same
// way (one node would own everything). The splitmix64-style mix
// spreads every input bit across the word, restoring the uniform
// per-(node, collection) weights rendezvous hashing assumes.
func rendezvousWeight(node, collection string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(collection))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ranked returns all nodes in descending rendezvous-weight order for
// collection, ties broken by name so the order is total.
func (r *Router) ranked(collection string) []*node {
	out := make([]*node, len(r.nodes))
	copy(out, r.nodes)
	sort.SliceStable(out, func(i, j int) bool {
		wi := rendezvousWeight(out[i].name, collection)
		wj := rendezvousWeight(out[j].name, collection)
		if wi != wj {
			return wi > wj
		}
		return out[i].name < out[j].name
	})
	return out
}

// owners returns collection's replica set: the top Replicas nodes of
// the rendezvous ranking. owners[0] is the home primary; the rest are
// replicas in failover order.
func (r *Router) owners(collection string) []*node {
	return r.ranked(collection)[:r.replicas]
}

// ordered returns the owner set with healthy nodes first (preserving
// rank order within each class), so callers iterate it as a failover
// sequence: down nodes are still tried, but only after every healthy
// owner — a router with its whole replica set marked down degrades to
// optimistic retries rather than refusing outright.
func ordered(owners []*node) []*node {
	out := make([]*node, 0, len(owners))
	for _, n := range owners {
		if !n.isDown() {
			out = append(out, n)
		}
	}
	for _, n := range owners {
		if n.isDown() {
			out = append(out, n)
		}
	}
	return out
}
