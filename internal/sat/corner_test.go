package sat

import "testing"

// TestSolveCorners drives the DPLL solver through its degenerate branches:
// empty formulas, empty clauses, unit-propagation chains, contradictory
// units and pure literals, each with the model count cross-checked.
func TestSolveCorners(t *testing.T) {
	cases := []struct {
		name   string
		cnf    CNF
		sat    bool
		models int64
	}{
		{"empty formula no vars", CNF{}, true, 1},
		{"empty formula free vars", CNF{NumVars: 3}, true, 8},
		{"empty clause", CNF{NumVars: 2, Clauses: []Clause{{}}}, false, 0},
		{"empty clause among others", CNF{NumVars: 2, Clauses: []Clause{{1, 2}, {}}}, false, 0},
		{"single unit", CNF{NumVars: 1, Clauses: []Clause{{1}}}, true, 1},
		{"contradictory units", CNF{NumVars: 1, Clauses: []Clause{{1}, {-1}}}, false, 0},
		{"unit chain", CNF{NumVars: 4, Clauses: []Clause{{1}, {-1, 2}, {-2, 3}, {-3, 4}}}, true, 1},
		{"unit chain to conflict", CNF{NumVars: 3, Clauses: []Clause{{1}, {-1, 2}, {-2, 3}, {-3, -1}}}, false, 0},
		{"pure positive literal", CNF{NumVars: 2, Clauses: []Clause{{1, 2}, {1, -2}}}, true, 2},
		{"pure negative literal", CNF{NumVars: 2, Clauses: []Clause{{-1, 2}, {-1, -2}}}, true, 2},
		{"tautological clause", CNF{NumVars: 1, Clauses: []Clause{{1, -1}}}, true, 2},
		{"duplicate literals in clause", CNF{NumVars: 2, Clauses: []Clause{{1, 1}, {2, 2, 2}}}, true, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model, ok := Solve(tc.cnf)
			if ok != tc.sat {
				t.Fatalf("Solve sat = %v, want %v", ok, tc.sat)
			}
			if ok && !tc.cnf.Eval(model) {
				t.Fatalf("returned model %v does not satisfy the formula", model)
			}
			if got := Satisfiable(tc.cnf); got != tc.sat {
				t.Fatalf("Satisfiable = %v, want %v", got, tc.sat)
			}
			if got := CountModels(tc.cnf); got != tc.models {
				t.Fatalf("CountModels = %d, want %d", got, tc.models)
			}
			if got := int64(len(EnumerateModels(tc.cnf))); got != tc.models {
				t.Fatalf("EnumerateModels returned %d models, want %d", got, tc.models)
			}
		})
	}
}

// TestCountModelsDegenerate covers the counting recursion's boundary inputs
// beyond plain satisfiability: zero-variable formulas with satisfied or
// empty clauses, and variables mentioned by no clause.
func TestCountModelsDegenerate(t *testing.T) {
	cases := []struct {
		name   string
		cnf    CNF
		models int64
	}{
		{"no vars no clauses", CNF{NumVars: 0}, 1},
		{"no vars empty clause", CNF{NumVars: 0, Clauses: []Clause{{}}}, 0},
		{"one free one constrained", CNF{NumVars: 2, Clauses: []Clause{{1}}}, 2},
		{"all vars free", CNF{NumVars: 10}, 1024},
		{"unsat leaves zero", CNF{NumVars: 5, Clauses: []Clause{{1}, {-1}}}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CountModels(tc.cnf); got != tc.models {
				t.Fatalf("CountModels = %d, want %d", got, tc.models)
			}
		})
	}
}
