package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS serialises the CNF in the standard DIMACS cnf format.
func WriteDIMACS(w io.Writer, c CNF) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", c.NumVars, len(c.Clauses)); err != nil {
		return err
	}
	for _, cl := range c.Clauses {
		for _, lit := range cl {
			if _, err := fmt.Fprintf(bw, "%d ", lit); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseDIMACS reads a CNF in DIMACS format: a "p cnf <vars> <clauses>"
// header, 'c' comment lines, and zero-terminated clauses (which may span
// lines). Literals outside the declared variable range are rejected.
func ParseDIMACS(r io.Reader) (CNF, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var c CNF
	headerSeen := false
	declared := -1
	var cur Clause
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if headerSeen {
				return CNF{}, fmt.Errorf("sat: duplicate DIMACS header")
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return CNF{}, fmt.Errorf("sat: malformed DIMACS header %q", line)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return CNF{}, fmt.Errorf("sat: bad variable count %q", fields[2])
			}
			nc, err := strconv.Atoi(fields[3])
			if err != nil || nc < 0 {
				return CNF{}, fmt.Errorf("sat: bad clause count %q", fields[3])
			}
			c.NumVars = nv
			declared = nc
			headerSeen = true
			continue
		}
		if !headerSeen {
			return CNF{}, fmt.Errorf("sat: clause before DIMACS header: %q", line)
		}
		for _, tok := range strings.Fields(line) {
			lit, err := strconv.Atoi(tok)
			if err != nil {
				return CNF{}, fmt.Errorf("sat: bad literal %q", tok)
			}
			if lit == 0 {
				c.Clauses = append(c.Clauses, cur)
				cur = nil
				continue
			}
			if v := LitVar(lit); v >= c.NumVars {
				return CNF{}, fmt.Errorf("sat: literal %d exceeds declared variable count %d", lit, c.NumVars)
			}
			cur = append(cur, lit)
		}
	}
	if err := sc.Err(); err != nil {
		return CNF{}, err
	}
	if len(cur) > 0 {
		c.Clauses = append(c.Clauses, cur)
	}
	if declared >= 0 && declared != len(c.Clauses) {
		return CNF{}, fmt.Errorf("sat: header declares %d clauses, found %d", declared, len(c.Clauses))
	}
	return c, nil
}
