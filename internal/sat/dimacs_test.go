package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 50; i++ {
		c := Rand3CNF(rng, 3+rng.Intn(8), 1+rng.Intn(12))
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, c); err != nil {
			t.Fatal(err)
		}
		got, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if got.NumVars != c.NumVars || len(got.Clauses) != len(c.Clauses) {
			t.Fatalf("instance %d: shape changed: %v vs %v", i, got, c)
		}
		for ci := range c.Clauses {
			if len(got.Clauses[ci]) != len(c.Clauses[ci]) {
				t.Fatalf("instance %d clause %d changed", i, ci)
			}
			for li := range c.Clauses[ci] {
				if got.Clauses[ci][li] != c.Clauses[ci][li] {
					t.Fatalf("instance %d clause %d literal %d changed", i, ci, li)
				}
			}
		}
	}
}

func TestParseDIMACSFeatures(t *testing.T) {
	src := `c a comment
p cnf 3 2
1 -2 0
c mid-file comment
2
3 0`
	c, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVars != 3 || len(c.Clauses) != 2 {
		t.Fatalf("parsed %v", c)
	}
	if len(c.Clauses[1]) != 2 || c.Clauses[1][0] != 2 || c.Clauses[1][1] != 3 {
		t.Fatalf("multi-line clause parsed wrong: %v", c.Clauses[1])
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	bad := []string{
		"1 2 0",                     // clause before header
		"p cnf x 2\n1 0",            // bad var count
		"p cnf 2 1\np cnf 2 1\n1 0", // duplicate header
		"p dnf 2 1\n1 0",            // wrong format tag
		"p cnf 2 1\n5 0",            // literal out of range
		"p cnf 2 2\n1 0",            // clause count mismatch
		"p cnf 2 1\nfoo 0",          // bad literal token
	}
	for _, src := range bad {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("ParseDIMACS(%q) should fail", src)
		}
	}
}

func TestParseDIMACSTrailingClauseWithoutZero(t *testing.T) {
	c, err := ParseDIMACS(strings.NewReader("p cnf 2 1\n1 -2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Clauses) != 1 || len(c.Clauses[0]) != 2 {
		t.Fatalf("trailing clause parsed wrong: %v", c)
	}
}
