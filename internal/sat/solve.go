package sat

import "sort"

// value is a three-valued assignment entry.
type value int8

const (
	unassigned value = iota
	vTrue
	vFalse
)

// Solve decides satisfiability by DPLL with unit propagation and pure
// literal elimination. It returns a satisfying assignment when one exists.
// The solver is deterministic: branching follows variable order.
func Solve(c CNF) ([]bool, bool) {
	assign := make([]value, c.NumVars)
	if ok := dpll(c.Clauses, assign); !ok {
		return nil, false
	}
	out := make([]bool, c.NumVars)
	for i, v := range assign {
		out[i] = v == vTrue
	}
	return out, true
}

// Satisfiable reports whether the CNF has a model.
func Satisfiable(c CNF) bool {
	_, ok := Solve(c)
	return ok
}

// clauseState classifies a clause under a partial assignment.
type clauseState int

const (
	clauseSat clauseState = iota
	clauseUnsat
	clauseUnit
	clauseOpen
)

func classify(cl Clause, assign []value) (clauseState, int) {
	unassignedCount := 0
	unitLit := 0
	for _, lit := range cl {
		switch assign[LitVar(lit)] {
		case unassigned:
			unassignedCount++
			unitLit = lit
		case vTrue:
			if lit > 0 {
				return clauseSat, 0
			}
		case vFalse:
			if lit < 0 {
				return clauseSat, 0
			}
		}
	}
	switch unassignedCount {
	case 0:
		return clauseUnsat, 0
	case 1:
		return clauseUnit, unitLit
	default:
		return clauseOpen, 0
	}
}

// dpll searches for a model, mutating assign; on success assign holds a
// (possibly partial) model whose unassigned variables are free.
func dpll(clauses []Clause, assign []value) bool {
	// Unit propagation to a fixed point.
	var trail []int
	undo := func() {
		for _, v := range trail {
			assign[v] = unassigned
		}
	}
	for {
		progress := false
		for _, cl := range clauses {
			state, lit := classify(cl, assign)
			switch state {
			case clauseUnsat:
				undo()
				return false
			case clauseUnit:
				v := LitVar(lit)
				if lit > 0 {
					assign[v] = vTrue
				} else {
					assign[v] = vFalse
				}
				trail = append(trail, v)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Find the first variable occurring in an unresolved clause.
	branch := -1
	allSat := true
	for _, cl := range clauses {
		state, _ := classify(cl, assign)
		if state == clauseSat {
			continue
		}
		allSat = false
		for _, lit := range cl {
			v := LitVar(lit)
			if assign[v] == unassigned && (branch == -1 || v < branch) {
				branch = v
			}
		}
	}
	if allSat {
		return true
	}
	for _, val := range []value{vTrue, vFalse} {
		assign[branch] = val
		if dpll(clauses, assign) {
			return true
		}
		assign[branch] = unassigned
	}
	undo()
	return false
}

// CountModels counts the satisfying assignments of the CNF over all NumVars
// variables (#SAT). Variables not constrained by any clause multiply the
// count by two each.
func CountModels(c CNF) int64 {
	assign := make([]value, c.NumVars)
	return countDPLL(c.Clauses, assign, c.NumVars)
}

// countDPLL counts models by exhaustive DPLL branching; free variables under
// a satisfying partial assignment contribute 2^free.
func countDPLL(clauses []Clause, assign []value, numVars int) int64 {
	// Classify; a falsified clause kills the branch.
	branch := -1
	allSat := true
	for _, cl := range clauses {
		state, _ := classify(cl, assign)
		switch state {
		case clauseUnsat:
			return 0
		case clauseSat:
			continue
		default:
			allSat = false
			for _, lit := range cl {
				v := LitVar(lit)
				if assign[v] == unassigned && (branch == -1 || v < branch) {
					branch = v
				}
			}
		}
	}
	if allSat {
		free := 0
		for _, v := range assign {
			if v == unassigned {
				free++
			}
		}
		return int64(1) << free
	}
	var total int64
	for _, val := range []value{vTrue, vFalse} {
		assign[branch] = val
		total += countDPLL(clauses, assign, numVars)
		assign[branch] = unassigned
	}
	return total
}

// EnumerateModels returns all satisfying assignments in lexicographic order
// (false < true, variable 0 most significant). Intended for small instances
// and for cross-validating the counting reductions.
func EnumerateModels(c CNF) [][]bool {
	var out [][]bool
	assign := make([]bool, c.NumVars)
	var rec func(i int)
	rec = func(i int) {
		if i == c.NumVars {
			if c.Eval(assign) {
				out = append(out, append([]bool(nil), assign...))
			}
			return
		}
		assign[i] = false
		rec(i + 1)
		assign[i] = true
		rec(i + 1)
	}
	rec(0)
	return out
}

// MaxWeightSAT finds a total assignment maximising the summed weight of
// satisfied clauses (the FPNP-complete problem of Theorem 5.1). It returns
// the best assignment and its weight, branching with an admissible bound
// (current weight + weight of clauses not yet falsified). Deterministic:
// the lexicographically first optimal assignment wins ties.
func MaxWeightSAT(clauses []Clause, weights []int64, numVars int) ([]bool, int64) {
	if len(clauses) != len(weights) {
		panic("sat: MaxWeightSAT: clauses and weights differ in length")
	}
	best := make([]bool, numVars)
	var bestW int64 = -1
	assign := make([]value, numVars)
	var rec func(i int)
	rec = func(i int) {
		// Bound: weight of satisfied + undecided clauses.
		var satW, ub int64
		for ci, cl := range clauses {
			state, _ := classify(cl, assign)
			switch state {
			case clauseSat:
				satW += weights[ci]
				ub += weights[ci]
			case clauseUnsat:
			default:
				ub += weights[ci]
			}
		}
		if ub <= bestW {
			return
		}
		if i == numVars {
			if satW > bestW {
				bestW = satW
				for v := 0; v < numVars; v++ {
					best[v] = assign[v] == vTrue
				}
			}
			return
		}
		for _, val := range []value{vFalse, vTrue} {
			assign[i] = val
			rec(i + 1)
			assign[i] = unassigned
		}
	}
	rec(0)
	return best, bestW
}

// BestWeight returns just the optimal MAX-WEIGHT SAT value.
func BestWeight(clauses []Clause, weights []int64, numVars int) int64 {
	_, w := MaxWeightSAT(clauses, weights, numVars)
	return w
}

// SortClause returns a canonical copy of a clause (sorted by variable then
// sign), handy for deterministic generators.
func SortClause(cl Clause) Clause {
	out := append(Clause(nil), cl...)
	sort.Slice(out, func(i, j int) bool {
		vi, vj := LitVar(out[i]), LitVar(out[j])
		if vi != vj {
			return vi < vj
		}
		return out[i] < out[j]
	})
	return out
}
