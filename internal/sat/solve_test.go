package sat

import (
	"math/rand"
	"testing"
)

// bruteSat decides satisfiability by truth-table enumeration.
func bruteSat(c CNF) bool {
	assign := make([]bool, c.NumVars)
	for {
		if c.Eval(assign) {
			return true
		}
		if !increment(assign) {
			return false
		}
	}
}

// bruteCount counts models by truth-table enumeration.
func bruteCount(c CNF) int64 {
	var n int64
	assign := make([]bool, c.NumVars)
	for {
		if c.Eval(assign) {
			n++
		}
		if !increment(assign) {
			return n
		}
	}
}

func TestSolveKnownInstances(t *testing.T) {
	cases := []struct {
		name string
		c    CNF
		sat  bool
	}{
		{"empty", CNF{NumVars: 2}, true},
		{"unit", CNF{NumVars: 1, Clauses: []Clause{{1}}}, true},
		{"contradiction", CNF{NumVars: 1, Clauses: []Clause{{1}, {-1}}}, false},
		{"chain", CNF{NumVars: 3, Clauses: []Clause{{1}, {-1, 2}, {-2, 3}}}, true},
		{"pigeonhole-ish", CNF{NumVars: 2, Clauses: []Clause{{1, 2}, {-1, 2}, {1, -2}, {-1, -2}}}, false},
	}
	for _, c := range cases {
		assign, ok := Solve(c.c)
		if ok != c.sat {
			t.Errorf("%s: Solve = %v, want %v", c.name, ok, c.sat)
		}
		if ok && !c.c.Eval(assign) {
			t.Errorf("%s: returned assignment does not satisfy the formula", c.name)
		}
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		c := Rand3CNF(rng, 3+rng.Intn(6), 1+rng.Intn(12))
		if got, want := Satisfiable(c), bruteSat(c); got != want {
			t.Fatalf("instance %d (%v): Solve = %v, brute = %v", i, c, got, want)
		}
	}
}

func TestCountModelsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		c := Rand3CNF(rng, 3+rng.Intn(5), 1+rng.Intn(10))
		if got, want := CountModels(c), bruteCount(c); got != want {
			t.Fatalf("instance %d (%v): CountModels = %d, brute = %d", i, c, got, want)
		}
	}
}

func TestCountModelsFreeVariables(t *testing.T) {
	// x0 alone over 4 variables: 2^3 models.
	c := CNF{NumVars: 4, Clauses: []Clause{{1}}}
	if got := CountModels(c); got != 8 {
		t.Fatalf("CountModels = %d, want 8", got)
	}
}

func TestEnumerateModels(t *testing.T) {
	c := CNF{NumVars: 2, Clauses: []Clause{{1, 2}}}
	models := EnumerateModels(c)
	if int64(len(models)) != CountModels(c) {
		t.Fatalf("enumeration size %d disagrees with count %d", len(models), CountModels(c))
	}
	for _, m := range models {
		if !c.Eval(m) {
			t.Fatalf("enumerated non-model %v", m)
		}
	}
}

func TestMaxWeightSATMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		nv := 3 + rng.Intn(4)
		nc := 1 + rng.Intn(8)
		c := Rand3CNF(rng, nv, nc)
		ws := RandWeights(rng, nc, 20)
		_, got := MaxWeightSAT(c.Clauses, ws, nv)

		// Brute force.
		var want int64 = -1
		assign := make([]bool, nv)
		for {
			var w int64
			for ci, cl := range c.Clauses {
				for _, lit := range cl {
					if LitSatisfied(lit, assign) {
						w += ws[ci]
						break
					}
				}
			}
			if w > want {
				want = w
			}
			if !increment(assign) {
				break
			}
		}
		if got != want {
			t.Fatalf("instance %d: MaxWeightSAT = %d, brute = %d", i, got, want)
		}
	}
}

func TestMaxWeightSATAssignmentAchievesWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := Rand3CNF(rng, 6, 10)
	ws := RandWeights(rng, 10, 50)
	assign, w := MaxWeightSAT(c.Clauses, ws, 6)
	var check int64
	for ci, cl := range c.Clauses {
		for _, lit := range cl {
			if LitSatisfied(lit, assign) {
				check += ws[ci]
				break
			}
		}
	}
	if check != w {
		t.Fatalf("reported weight %d but assignment achieves %d", w, check)
	}
}

func TestRestrict(t *testing.T) {
	// (x0 ∨ x1) ∧ (¬x0 ∨ x2): fixing x0=true gives (x2); x0=false gives (x1).
	c := CNF{NumVars: 3, Clauses: []Clause{{1, 2}, {-1, 3}}}
	rTrue := c.Restrict([]bool{true})
	if len(rTrue.Clauses) != 1 || len(rTrue.Clauses[0]) != 1 || rTrue.Clauses[0][0] != 2 {
		t.Fatalf("Restrict(true) = %v", rTrue)
	}
	rFalse := c.Restrict([]bool{false})
	if len(rFalse.Clauses) != 1 || rFalse.Clauses[0][0] != 1 {
		t.Fatalf("Restrict(false) = %v", rFalse)
	}
}

func TestNegateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := Rand3DNF(rng, 5, 6)
	n := d.Negate()
	assign := make([]bool, 5)
	for {
		if d.Eval(assign) == n.Eval(assign) {
			t.Fatalf("¬ DNF disagrees at %v", assign)
		}
		if !increment(assign) {
			break
		}
	}
}

func TestVarsHelper(t *testing.T) {
	vs := Vars([]Clause{{3, -1}, {2}})
	want := []int{0, 1, 2}
	if len(vs) != 3 {
		t.Fatalf("Vars = %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vs, want)
		}
	}
}
