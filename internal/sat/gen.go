package sat

import "math/rand"

// Rand3CNF generates a random 3CNF with the given numbers of variables and
// clauses. Each clause has three literals over distinct variables. The
// generator is deterministic for a given rng state.
func Rand3CNF(rng *rand.Rand, numVars, numClauses int) CNF {
	c := CNF{NumVars: numVars}
	for i := 0; i < numClauses; i++ {
		c.Clauses = append(c.Clauses, randClause(rng, numVars, 0))
	}
	return c
}

// Rand3DNF generates a random 3DNF.
func Rand3DNF(rng *rand.Rand, numVars, numTerms int) DNF {
	d := DNF{NumVars: numVars}
	for i := 0; i < numTerms; i++ {
		d.Terms = append(d.Terms, randClause(rng, numVars, 0))
	}
	return d
}

// randClause draws three distinct variables from [lo, numVars) and random
// signs.
func randClause(rng *rand.Rand, numVars, lo int) Clause {
	n := numVars - lo
	width := 3
	if n < width {
		width = n
	}
	seen := map[int]struct{}{}
	cl := make(Clause, 0, width)
	for len(cl) < width {
		v := lo + rng.Intn(n)
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		lit := v + 1
		if rng.Intn(2) == 0 {
			lit = -lit
		}
		cl = append(cl, lit)
	}
	return SortClause(cl)
}

// RandEFDNF generates a random ∃X∀Y 3DNF instance with nx X variables and
// ny Y variables.
func RandEFDNF(rng *rand.Rand, nx, ny, numTerms int) EFDNF {
	return EFDNF{NX: nx, NY: ny, Psi: Rand3DNF(rng, nx+ny, numTerms)}
}

// RandPair generates a random SAT-UNSAT pair candidate (either side may or
// may not be satisfiable; the decision is what is under test).
func RandPair(rng *rand.Rand, nv1, nc1, nv2, nc2 int) Pair {
	return Pair{Phi1: Rand3CNF(rng, nv1, nc1), Phi2: Rand3CNF(rng, nv2, nc2)}
}

// RandWeights generates positive clause weights up to maxW.
func RandWeights(rng *rand.Rand, n int, maxW int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = 1 + rng.Int63n(maxW)
	}
	return out
}

// RandQBF generates a random QBF with alternating prefix starting from ∃.
func RandQBF(rng *rand.Rand, numVars, numClauses int) QBF {
	prefix := make([]Quantifier, numVars)
	for i := range prefix {
		if i%2 == 1 {
			prefix[i] = QForall
		}
	}
	return QBF{Prefix: prefix, Matrix: Rand3CNF(rng, numVars, numClauses)}
}
