package sat

import (
	"math/rand"
	"testing"
)

// bruteEFDNF evaluates ∃X∀Y ψ by full enumeration.
func bruteEFDNF(f EFDNF) bool {
	x := make([]bool, f.NX)
	for {
		holds := true
		y := make([]bool, f.NY)
		for {
			if !f.Psi.Eval(append(append([]bool(nil), x...), y...)) {
				holds = false
				break
			}
			if !increment(y) {
				break
			}
		}
		if holds {
			return true
		}
		if !increment(x) {
			return false
		}
	}
}

func TestEFDNFMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 200; i++ {
		f := RandEFDNF(rng, 2+rng.Intn(3), 2+rng.Intn(3), 1+rng.Intn(6))
		if got, want := f.Decide(), bruteEFDNF(f); got != want {
			t.Fatalf("instance %d: Decide = %v, brute = %v (%v)", i, got, want, f.Psi)
		}
	}
}

func TestEFDNFWitnessIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		f := RandEFDNF(rng, 3, 3, 1+rng.Intn(5))
		if x, ok := f.Witness(); ok {
			if !f.ForallY(x) {
				t.Fatalf("instance %d: witness %v does not satisfy ∀Y", i, x)
			}
		}
	}
}

func TestEFDNFLastWitnessIsLexicographicallyLast(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 80; i++ {
		f := RandEFDNF(rng, 3, 2, 1+rng.Intn(5))
		last, ok := f.LastWitness()
		if !ok {
			continue
		}
		if !f.ForallY(last) {
			t.Fatalf("instance %d: last witness invalid", i)
		}
		// No strictly larger witness may exist.
		probe := append([]bool(nil), last...)
		for increment(probe) {
			if f.ForallY(probe) {
				t.Fatalf("instance %d: %v is a witness beyond %v", i, probe, last)
			}
		}
	}
}

func TestFECNFMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 150; i++ {
		nx, ny := 2+rng.Intn(3), 2+rng.Intn(3)
		f := FECNF{NX: nx, NY: ny, Phi: Rand3CNF(rng, nx+ny, 1+rng.Intn(6))}
		// Brute force.
		want := true
		x := make([]bool, nx)
		for {
			found := false
			y := make([]bool, ny)
			for {
				if f.Phi.Eval(append(append([]bool(nil), x...), y...)) {
					found = true
					break
				}
				if !increment(y) {
					break
				}
			}
			if !found {
				want = false
				break
			}
			if !increment(x) {
				break
			}
		}
		if got := f.Decide(); got != want {
			t.Fatalf("instance %d: Decide = %v, brute = %v", i, got, want)
		}
	}
}

func TestPairDecide(t *testing.T) {
	sat := CNF{NumVars: 1, Clauses: []Clause{{1}}}
	unsat := CNF{NumVars: 1, Clauses: []Clause{{1}, {-1}}}
	cases := []struct {
		p    Pair
		want bool
	}{
		{Pair{sat, unsat}, true},
		{Pair{sat, sat}, false},
		{Pair{unsat, unsat}, false},
		{Pair{unsat, sat}, false},
	}
	for i, c := range cases {
		if got := c.p.Decide(); got != c.want {
			t.Errorf("case %d: Decide = %v, want %v", i, got, c.want)
		}
	}
}

func TestQBFMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	brute := func(q QBF) bool {
		assign := make([]bool, q.Matrix.NumVars)
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == len(q.Prefix) {
				return q.Matrix.Eval(assign)
			}
			assign[i] = false
			a := rec(i + 1)
			assign[i] = true
			b := rec(i + 1)
			if q.Prefix[i] == QExists {
				return a || b
			}
			return a && b
		}
		return rec(0)
	}
	for i := 0; i < 150; i++ {
		q := RandQBF(rng, 3+rng.Intn(4), 1+rng.Intn(8))
		if got, want := q.Decide(), brute(q); got != want {
			t.Fatalf("instance %d: Decide = %v, brute = %v", i, got, want)
		}
	}
}

func TestCountSigma1MatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 100; i++ {
		nx, ny := 2+rng.Intn(3), 2+rng.Intn(3)
		phi := Rand3CNF(rng, nx+ny, 1+rng.Intn(6))
		// Brute: count Y assignments with ∃X φ.
		var want int64
		y := make([]bool, ny)
		for {
			found := false
			x := make([]bool, nx)
			for {
				if phi.Eval(append(append([]bool(nil), x...), y...)) {
					found = true
					break
				}
				if !increment(x) {
					break
				}
			}
			if found {
				want++
			}
			if !increment(y) {
				break
			}
		}
		if got := CountSigma1(phi, nx, ny); got != want {
			t.Fatalf("instance %d: CountSigma1 = %d, brute = %d", i, got, want)
		}
	}
}

func TestCountPi1MatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for i := 0; i < 100; i++ {
		nx, ny := 2+rng.Intn(3), 2+rng.Intn(3)
		psi := Rand3DNF(rng, nx+ny, 1+rng.Intn(6))
		var want int64
		y := make([]bool, ny)
		for {
			holds := true
			x := make([]bool, nx)
			for {
				if !psi.Eval(append(append([]bool(nil), x...), y...)) {
					holds = false
					break
				}
				if !increment(x) {
					break
				}
			}
			if holds {
				want++
			}
			if !increment(y) {
				break
			}
		}
		if got := CountPi1(psi, nx, ny); got != want {
			t.Fatalf("instance %d: CountPi1 = %d, brute = %d", i, got, want)
		}
	}
}

func TestIncrementDecrementRoundTrip(t *testing.T) {
	bits := make([]bool, 3)
	seen := 0
	for {
		seen++
		if !increment(bits) {
			break
		}
	}
	if seen != 8 {
		t.Fatalf("increment visited %d states, want 8", seen)
	}
	for i := range bits {
		bits[i] = true
	}
	seen = 0
	for {
		seen++
		if !decrement(bits) {
			break
		}
	}
	if seen != 8 {
		t.Fatalf("decrement visited %d states, want 8", seen)
	}
}
