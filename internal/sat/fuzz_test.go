package sat

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzParseDIMACS pins the DIMACS parser on arbitrary input: it must never
// panic, and any CNF it accepts must survive a WriteDIMACS → ParseDIMACS
// round trip unchanged — the writer emits only canonical text, so the
// second parse is exact.
func FuzzParseDIMACS(f *testing.F) {
	f.Add("")
	f.Add("p cnf 0 0\n")
	f.Add("c comment\np cnf 2 1\n1 -2 0\n")
	f.Add("p cnf 3 2\n1 2 3 0\n-1\n-2 0\n")
	f.Add("p cnf 2 2\n1 0\n-1 0")
	f.Add("p cnf 1 1\n1")     // trailing clause without terminator
	f.Add("p cnf 2 9\n1 0\n") // declared/found mismatch
	f.Add("p cnf 2 1\n5 0\n") // out-of-range literal
	f.Add("p cnf a b\n")      // malformed header
	f.Add("1 0\np cnf 1 1\n") // clause before header
	f.Fuzz(func(t *testing.T, input string) {
		c, err := ParseDIMACS(bytes.NewReader([]byte(input)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, c); err != nil {
			t.Fatalf("WriteDIMACS failed on accepted CNF %v: %v", c, err)
		}
		again, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatalf("re-parse of written CNF failed: %v\ntext:\n%s", err, buf.String())
		}
		if again.NumVars != c.NumVars || len(again.Clauses) != len(c.Clauses) {
			t.Fatalf("round trip changed shape: %v → %v", c, again)
		}
		if len(c.Clauses) > 0 && !reflect.DeepEqual(again.Clauses, c.Clauses) {
			t.Fatalf("round trip changed clauses: %v → %v", c.Clauses, again.Clauses)
		}
	})
}
