// Package sat implements the propositional substrate the paper's hardness
// proofs reduce from: a DPLL SAT solver, model counting (#SAT), MAX-WEIGHT
// SAT, the quantified problems ∃*∀*3DNF / ∀*∃*3CNF / QBF, the counting
// problems #Σ1SAT and #Π1SAT, SAT-UNSAT pairs, the lexicographically-last
// Σ2 witness of the maximum Σp2 problem (Theorem 5.1), and seeded random
// instance generators. internal/reductions cross-validates the
// recommendation engine against the solvers in this package.
//
// Literals use the DIMACS convention: literal v > 0 denotes variable v-1
// (zero-based), v < 0 its negation. Assignments are []bool indexed by
// variable.
package sat

import (
	"fmt"
	"sort"
	"strings"
)

// Clause is a disjunction of DIMACS literals (or a conjunction, when used as
// a DNF term).
type Clause []int

// CNF is a conjunction of clauses over variables 0..NumVars-1.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// DNF is a disjunction of terms (conjunctions) over variables 0..NumVars-1.
type DNF struct {
	NumVars int
	Terms   []Clause
}

// LitVar returns the zero-based variable of a DIMACS literal.
func LitVar(lit int) int {
	if lit < 0 {
		return -lit - 1
	}
	return lit - 1
}

// LitSign reports whether the literal is positive.
func LitSign(lit int) bool { return lit > 0 }

// LitSatisfied reports whether the literal holds under the assignment.
func LitSatisfied(lit int, assign []bool) bool {
	return assign[LitVar(lit)] == LitSign(lit)
}

// Eval reports whether the CNF holds under a total assignment.
func (c CNF) Eval(assign []bool) bool {
	for _, cl := range c.Clauses {
		sat := false
		for _, lit := range cl {
			if LitSatisfied(lit, assign) {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Eval reports whether the DNF holds under a total assignment.
func (d DNF) Eval(assign []bool) bool {
	for _, tm := range d.Terms {
		sat := true
		for _, lit := range tm {
			if !LitSatisfied(lit, assign) {
				sat = false
				break
			}
		}
		if sat {
			return true
		}
	}
	return false
}

// Negate returns the CNF ¬d: each DNF term becomes a clause of negated
// literals.
func (d DNF) Negate() CNF {
	out := CNF{NumVars: d.NumVars}
	for _, tm := range d.Terms {
		cl := make(Clause, len(tm))
		for i, lit := range tm {
			cl[i] = -lit
		}
		out.Clauses = append(out.Clauses, cl)
	}
	return out
}

// Negate returns the DNF ¬c.
func (c CNF) Negate() DNF {
	out := DNF{NumVars: c.NumVars}
	for _, cl := range c.Clauses {
		tm := make(Clause, len(cl))
		for i, lit := range cl {
			tm[i] = -lit
		}
		out.Terms = append(out.Terms, tm)
	}
	return out
}

// Restrict substitutes fixed values for the variables in prefix (variables
// 0..len(prefix)-1) and returns an equivalent CNF over the remaining
// variables, renumbered to start at 0. Satisfied clauses disappear;
// falsified literals are dropped; an empty clause marks unsatisfiability.
func (c CNF) Restrict(prefix []bool) CNF {
	k := len(prefix)
	out := CNF{NumVars: c.NumVars - k}
	for _, cl := range c.Clauses {
		var reduced Clause
		satisfied := false
		for _, lit := range cl {
			v := LitVar(lit)
			if v < k {
				if LitSatisfied(lit, prefix) {
					satisfied = true
					break
				}
				continue // falsified literal
			}
			if lit > 0 {
				reduced = append(reduced, lit-k)
			} else {
				reduced = append(reduced, lit+k)
			}
		}
		if satisfied {
			continue
		}
		out.Clauses = append(out.Clauses, reduced)
	}
	return out
}

// String renders the CNF in a compact mathematical form.
func (c CNF) String() string { return clausesString(c.Clauses, " & ", " | ") }

// String renders the DNF.
func (d DNF) String() string { return clausesString(d.Terms, " | ", " & ") }

func clausesString(cs []Clause, outer, inner string) string {
	parts := make([]string, len(cs))
	for i, cl := range cs {
		lits := make([]string, len(cl))
		for j, lit := range cl {
			if lit < 0 {
				lits[j] = fmt.Sprintf("!x%d", -lit-1)
			} else {
				lits[j] = fmt.Sprintf("x%d", lit-1)
			}
		}
		parts[i] = "(" + strings.Join(lits, inner) + ")"
	}
	return strings.Join(parts, outer)
}

// Compact renumbers variables so only occurring ones remain: the result has
// NumVars equal to the number of distinct variables used. Model counts over
// the compacted formula count assignments of occurring variables only, the
// quantity the parsimonious reductions of Theorem 5.3 preserve.
func (c CNF) Compact() CNF {
	used := Vars(c.Clauses)
	remap := make(map[int]int, len(used))
	for i, v := range used {
		remap[v] = i
	}
	out := CNF{NumVars: len(used)}
	for _, cl := range c.Clauses {
		ncl := make(Clause, len(cl))
		for i, lit := range cl {
			nv := remap[LitVar(lit)]
			if lit > 0 {
				ncl[i] = nv + 1
			} else {
				ncl[i] = -(nv + 1)
			}
		}
		out.Clauses = append(out.Clauses, ncl)
	}
	return out
}

// Vars returns the sorted distinct variables occurring in the clauses.
func Vars(cs []Clause) []int {
	seen := map[int]struct{}{}
	var out []int
	for _, cl := range cs {
		for _, lit := range cl {
			v := LitVar(lit)
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				out = append(out, v)
			}
		}
	}
	sort.Ints(out)
	return out
}
