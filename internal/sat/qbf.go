package sat

// EFDNF is an ∃*∀*3DNF instance ϕ = ∃X ∀Y ψ(X, Y): X is the block of
// variables 0..NX-1, Y the block NX..NX+NY-1, ψ a DNF. Deciding truth is
// Σp2-complete (Stockmeyer); the paper reduces it to the compatibility
// problem (Lemma 4.2), QRPP and ARPP.
type EFDNF struct {
	NX, NY int
	Psi    DNF
}

// Decide reports whether ∃X ∀Y ψ holds.
func (f EFDNF) Decide() bool {
	_, ok := f.Witness()
	return ok
}

// Witness returns an X assignment under which ∀Y ψ holds, searching in
// lexicographic order (all-false first).
func (f EFDNF) Witness() ([]bool, bool) {
	x := make([]bool, f.NX)
	for {
		if f.ForallY(x) {
			return append([]bool(nil), x...), true
		}
		if !increment(x) {
			return nil, false
		}
	}
}

// LastWitness returns the lexicographically last X making ∀Y ψ true, the
// maximum Σp2 problem of Theorem 5.1 (ordering on m-ary binary tuples with
// variable 0 the most significant bit and true > false).
func (f EFDNF) LastWitness() ([]bool, bool) {
	x := make([]bool, f.NX)
	for i := range x {
		x[i] = true
	}
	for {
		if f.ForallY(x) {
			return append([]bool(nil), x...), true
		}
		if !decrement(x) {
			return nil, false
		}
	}
}

// ForallY reports whether ψ(x, Y) holds for every Y assignment: the CNF ¬ψ
// restricted by x must be unsatisfiable.
func (f EFDNF) ForallY(x []bool) bool {
	neg := f.Psi.Negate() // CNF over X ∪ Y
	restricted := neg.Restrict(x)
	return !Satisfiable(restricted)
}

// CountWitnesses counts the X assignments under which ∀Y ψ holds, used by
// counting cross-checks.
func (f EFDNF) CountWitnesses() int64 {
	var n int64
	x := make([]bool, f.NX)
	for {
		if f.ForallY(x) {
			n++
		}
		if !increment(x) {
			return n
		}
	}
}

// FECNF is a ∀*∃*3CNF instance ∀X ∃Y φ(X, Y) (Πp2-complete), the partner of
// EFDNF in the Dp2-complete pair problem of Theorem 5.2.
type FECNF struct {
	NX, NY int
	Phi    CNF
}

// Decide reports whether ∀X ∃Y φ holds.
func (f FECNF) Decide() bool {
	x := make([]bool, f.NX)
	for {
		restricted := f.Phi.Restrict(x)
		if !Satisfiable(restricted) {
			return false
		}
		if !increment(x) {
			return true
		}
	}
}

// Pair is a SAT-UNSAT instance (ϕ1, ϕ2): the DP-complete problem of deciding
// that ϕ1 is satisfiable while ϕ2 is not (Theorem 4.5).
type Pair struct {
	Phi1, Phi2 CNF
}

// Decide reports whether ϕ1 ∈ SAT and ϕ2 ∉ SAT.
func (p Pair) Decide() bool { return Satisfiable(p.Phi1) && !Satisfiable(p.Phi2) }

// Quantifier marks a QBF prefix block.
type Quantifier int

// Prefix quantifiers.
const (
	QExists Quantifier = iota
	QForall
)

// QBF is a fully quantified Boolean formula Q1 x0 Q2 x1 ... Qn x{n-1} φ with
// a CNF matrix (PSPACE-complete). The paper's DATALOGnr/FO bounds reduce
// from Q3SAT, which is the special case of a 3CNF matrix.
type QBF struct {
	Prefix []Quantifier // Prefix[i] quantifies variable i
	Matrix CNF
}

// Decide evaluates the QBF by recursive expansion.
func (q QBF) Decide() bool {
	if len(q.Prefix) != q.Matrix.NumVars {
		panic("sat: QBF prefix length differs from variable count")
	}
	assign := make([]bool, q.Matrix.NumVars)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(q.Prefix) {
			return q.Matrix.Eval(assign)
		}
		assign[i] = false
		first := rec(i + 1)
		if q.Prefix[i] == QExists && first {
			return true
		}
		if q.Prefix[i] == QForall && !first {
			return false
		}
		assign[i] = true
		return rec(i + 1)
	}
	return rec(0)
}

// CountSigma1 counts, for ϕ(X, Y) = ∃X (C1 ∧ ... ∧ Cr) with X the block
// 0..NX-1 and Y the block NX..NX+NY-1, the Y assignments making ϕ true:
// the #Σ1SAT problem (#·NP-complete), reduced to CPP without compatibility
// constraints in Theorem 5.3.
func CountSigma1(phi CNF, nx, ny int) int64 {
	var n int64
	y := make([]bool, ny)
	for {
		// Substitute Y (the suffix block): move Y to the prefix by
		// remapping literals, then restrict.
		remapped := remapSuffixToPrefix(phi, nx, ny)
		if Satisfiable(remapped.Restrict(y)) {
			n++
		}
		if !increment(y) {
			return n
		}
	}
}

// CountPi1 counts, for ϕ(X, Y) = ∀X (C1 ∨ ... ∨ Cr) with terms Ci
// (conjunctions) over X ∪ Y, the Y assignments making ϕ true: the #Π1SAT
// problem (#·coNP-complete), reduced to CPP with compatibility constraints
// in Theorem 5.3.
func CountPi1(psi DNF, nx, ny int) int64 {
	var n int64
	y := make([]bool, ny)
	for {
		neg := psi.Negate() // CNF over X ∪ Y; ∀X ψ ⟺ ¬∃X ¬ψ
		remapped := remapSuffixToPrefix(neg, nx, ny)
		if !Satisfiable(remapped.Restrict(y)) {
			n++
		}
		if !increment(y) {
			return n
		}
	}
}

// remapSuffixToPrefix reorders variables so the Y block (nx..nx+ny-1) comes
// first, enabling Restrict on Y values.
func remapSuffixToPrefix(c CNF, nx, ny int) CNF {
	out := CNF{NumVars: c.NumVars}
	for _, cl := range c.Clauses {
		ncl := make(Clause, len(cl))
		for i, lit := range cl {
			v := LitVar(lit)
			var nv int
			if v >= nx {
				nv = v - nx // Y block moves to the front
			} else {
				nv = v + ny // X block moves after it
			}
			if lit > 0 {
				ncl[i] = nv + 1
			} else {
				ncl[i] = -(nv + 1)
			}
		}
		out.Clauses = append(out.Clauses, ncl)
	}
	return out
}

// increment advances a binary counter (variable 0 most significant, false <
// true); it reports false on wrap-around.
func increment(bits []bool) bool {
	for i := len(bits) - 1; i >= 0; i-- {
		if !bits[i] {
			bits[i] = true
			return true
		}
		bits[i] = false
	}
	return false
}

// decrement steps the counter down; it reports false below all-false.
func decrement(bits []bool) bool {
	for i := len(bits) - 1; i >= 0; i-- {
		if bits[i] {
			bits[i] = false
			return true
		}
		bits[i] = true
	}
	return false
}
