package pbo

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// itemsDB mirrors core's test store: item(id, price, rating).
func itemsDB() *relation.Database {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("item", "id", "price", "rating"),
		relation.Ints(1, 10, 5),
		relation.Ints(2, 20, 8),
		relation.Ints(3, 30, 9),
		relation.Ints(4, 5, 3)))
	return db
}

func basicProblem(budget float64, k int) *core.Problem {
	db := itemsDB()
	return &core.Problem{
		DB:     db,
		Q:      query.Identity("RQ", db.Relation("item")),
		Cost:   core.SumAttr(1).WithMonotone(),
		Val:    core.SumAttr(2),
		Budget: budget,
		K:      k,
	}
}

// checkAgainstCore runs all five ops through both backends and requires
// result identity (decide witnesses: genuineness, as for the parallel
// engine). bound parameterises count/exists.
func checkAgainstCore(t *testing.T, p *core.Problem, bound float64) {
	t.Helper()
	c, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	wantSel, wantOK, err := p.FindTopK()
	if err != nil {
		t.Fatal(err)
	}
	gotSel, gotOK, err := c.FindTopKCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gotOK != wantOK || len(gotSel) != len(wantSel) {
		t.Fatalf("FindTopK: pbo ok=%v |sel|=%d, engine ok=%v |sel|=%d", gotOK, len(gotSel), wantOK, len(wantSel))
	}
	for i := range wantSel {
		if !gotSel[i].Equal(wantSel[i]) {
			t.Fatalf("FindTopK slot %d: pbo %v, engine %v", i, gotSel[i], wantSel[i])
		}
	}

	wantMB, wantMBOK, err := p.MaxBound()
	if err != nil {
		t.Fatal(err)
	}
	gotMB, gotMBOK, err := c.MaxBoundCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gotMBOK != wantMBOK || (wantMBOK && gotMB != wantMB) {
		t.Fatalf("MaxBound: pbo (%g, %v), engine (%g, %v)", gotMB, gotMBOK, wantMB, wantMBOK)
	}

	wantN, err := p.CountValid(bound)
	if err != nil {
		t.Fatal(err)
	}
	gotN, err := c.CountValidCtx(ctx, bound)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != wantN {
		t.Fatalf("CountValid(%g): pbo %d, engine %d", bound, gotN, wantN)
	}

	for _, k := range []int{0, 1, p.K, int(wantN), int(wantN) + 1} {
		wantEx, err := p.ExistsKValid(k, bound)
		if err != nil {
			t.Fatal(err)
		}
		gotEx, err := c.ExistsKValidCtx(ctx, k, bound)
		if err != nil {
			t.Fatal(err)
		}
		if gotEx != wantEx {
			t.Fatalf("ExistsKValid(%d, %g): pbo %v, engine %v", k, bound, gotEx, wantEx)
		}
	}

	// Decide on the engine's own answer (accept), and on perturbations.
	if wantOK {
		ok, witness, err := c.DecideTopKCtx(ctx, wantSel)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || witness != nil {
			t.Fatalf("DecideTopK must accept the engine's top-k; got ok=%v witness=%v", ok, witness)
		}
		checkDecideRejection(t, p, c, wantSel[:max(0, len(wantSel)-1)])
	}
	checkDecideRejection(t, p, c, nil)
}

// checkDecideRejection compares accept/reject and witness genuineness.
func checkDecideRejection(t *testing.T, p *core.Problem, c *Compiled, sel []core.Package) {
	t.Helper()
	wantOK, _, err := p.DecideTopK(sel)
	if err != nil {
		t.Fatal(err)
	}
	gotOK, witness, err := c.DecideTopKCtx(context.Background(), sel)
	if err != nil {
		t.Fatal(err)
	}
	if gotOK != wantOK {
		t.Fatalf("DecideTopK(%v): pbo %v, engine %v", sel, gotOK, wantOK)
	}
	if witness != nil {
		valid, err := p.Valid(*witness)
		if err != nil || !valid {
			t.Fatalf("witness %v not valid (err=%v)", *witness, err)
		}
		minVal := math.Inf(1)
		for _, n := range sel {
			minVal = math.Min(minVal, p.Val.Eval(n))
		}
		if !(p.Val.Eval(*witness) > minVal) {
			t.Fatalf("witness %v does not out-rate the selection minimum %g", *witness, minVal)
		}
	}
}

func TestCompiledMatchesCoreBasic(t *testing.T) {
	for _, budget := range []float64{5, 15, 35, 60, 1000} {
		for k := 0; k <= 4; k++ {
			p := basicProblem(budget, k)
			checkAgainstCore(t, p, 10)
		}
	}
}

func TestCompiledMatchesCoreBounds(t *testing.T) {
	for _, bound := range []float64{math.Inf(-1), 0, 13, 22, math.Inf(1)} {
		p := basicProblem(40, 2)
		checkAgainstCore(t, p, bound)
	}
}

func TestCompiledMaxSize(t *testing.T) {
	for _, ms := range []int{0, 1, 2, 3} {
		p := basicProblem(1000, 2).WithMaxSize(ms)
		checkAgainstCore(t, p, 8)
	}
}

func TestCompiledCompatFn(t *testing.T) {
	p := basicProblem(1000, 2)
	// Items 1 and 2 conflict.
	p.CompatFn = func(pkg core.Package, _ *relation.Database) (bool, error) {
		has := func(id int64) bool {
			for _, tt := range pkg.Tuples() {
				if tt[0].Int64() == id {
					return true
				}
			}
			return false
		}
		return !(has(1) && has(2)), nil
	}
	checkAgainstCore(t, p, 8)
}

func TestCompiledPruneHint(t *testing.T) {
	p := basicProblem(1000, 2)
	// Hereditary hint: no package may contain item 3.
	p.Prune = func(pkg core.Package) bool {
		for _, tt := range pkg.Tuples() {
			if tt[0].Int64() == 3 {
				return true
			}
		}
		return false
	}
	checkAgainstCore(t, p, 8)
}

func TestCompiledNonLinearAggregators(t *testing.T) {
	p := basicProblem(1000, 2)
	p.Val = core.MinAttr(2) // filter-only val: no floor encoding
	checkAgainstCore(t, p, 5)
	p2 := basicProblem(45, 2)
	p2.Cost = core.MaxAttr(1).WithMonotone() // monotone non-linear cost: hook cut
	checkAgainstCore(t, p2, 8)
}

func TestCompiledConstAggregators(t *testing.T) {
	p := basicProblem(1000, 1)
	p.Cost = core.ConstAgg(7)
	p.Val = core.ConstAgg(3)
	checkAgainstCore(t, p, 3)
	p.Budget = 5 // const cost over budget: nothing is valid
	p.InvalidateCache()
	checkAgainstCore(t, p, 3)
}

func TestCompiledEmptyCandidates(t *testing.T) {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("item", "id", "price", "rating")))
	p := &core.Problem{
		DB:     db,
		Q:      query.Identity("RQ", db.Relation("item")),
		Cost:   core.SumAttr(1).WithMonotone(),
		Val:    core.SumAttr(2),
		Budget: 100,
		K:      1,
	}
	checkAgainstCore(t, p, 0)
}

func TestCompiledCounters(t *testing.T) {
	var ctr Counters
	p := basicProblem(40, 2)
	c, err := Compile(p, &ctr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FindTopKCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	solves, decisions, _, _, _, _ := ctr.Snapshot()
	if solves != 1 || decisions == 0 {
		t.Fatalf("counters: solves=%d decisions=%d, want 1 solve and nonzero decisions", solves, decisions)
	}
}

func TestCompiledContextCancel(t *testing.T) {
	p := basicProblem(1000, 2)
	c, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.CountValidCtx(ctx, 0); err == nil {
		t.Fatal("cancelled context should abort the count")
	}
}

func TestLinearizeRejectsFractionalWeights(t *testing.T) {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("item", "id", "price", "rating"),
		relation.Tuple{relation.Int(1), relation.Float(1.5), relation.Int(2)},
		relation.Tuple{relation.Int(2), relation.Float(2.25), relation.Int(3)}))
	p := &core.Problem{
		DB:     db,
		Q:      query.Identity("RQ", db.Relation("item")),
		Cost:   core.SumAttr(1).WithMonotone(),
		Val:    core.SumAttr(2),
		Budget: 2.5,
		K:      1,
	}
	c, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.cost.ok {
		t.Fatal("fractional per-item costs must fall back to filter-only handling")
	}
	// Still correct, just unencoded.
	checkAgainstCore(t, p, 0)
}
