package pbo

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Counters accumulates pbo engine cost accounting across searches. All
// fields are atomics so concurrent solves can share one sink; the serving
// layer reads them lock-free for /v1/stats, mirroring core.EngineCounters.
type Counters struct {
	// Solves counts entry-point solves (one per compiled op or Solve call).
	Solves atomic.Int64
	// Decisions counts search-tree decision nodes (assumptions included) —
	// the pbo analogue of the B&B engine's DFS node count.
	Decisions atomic.Int64
	// Propagations counts literals forced by constraint propagation.
	Propagations atomic.Int64
	// Conflicts counts dead ends: a constraint's slack (or the objective
	// floor's) went negative and the search backtracked.
	Conflicts atomic.Int64
	// SessionResumes counts Session.Probe calls answered from the memo,
	// mirroring core.EngineCounters' session fields.
	SessionResumes atomic.Int64
	// SessionDecisionsSaved sums the recorded decision counts of resumed
	// probes — an estimate of the search work each resume avoided.
	SessionDecisionsSaved atomic.Int64
}

// Snapshot returns a plain-value copy of the counters.
func (c *Counters) Snapshot() (solves, decisions, propagations, conflicts, resumes, saved int64) {
	return c.Solves.Load(), c.Decisions.Load(), c.Propagations.Load(),
		c.Conflicts.Load(), c.SessionResumes.Load(), c.SessionDecisionsSaved.Load()
}

// search is the per-solve mutable state: an assignment stack over an
// immutable Store. One search is single-goroutine; concurrency comes from
// running independent searches over the shared store.
type search struct {
	st     *Store
	assign []int8  // per 1-based var (index 0 unused): +1 true, -1 false, 0 unassigned
	slack  []int64 // per constraint: Σ coefs of non-false terms − degree
	trail  []int   // literals made true, in assignment order
	lims   []int   // trail length at each decision level
	qhead  int     // propagation frontier into trail

	// Objective floor: a single ≥-constraint kept outside the store because
	// its degree is raised mid-search (objective-bound tightening). It is
	// check-only — it cuts branches whose floorSlack goes negative but never
	// forces literals, so raising the degree stays sound at any point.
	hasFloor   bool
	floorCoefs []int64 // per litIndex; 0 = literal absent from the floor
	floorSlack int64
	floorDeg   int64

	decisions    int64
	propagations int64
	conflicts    int64
	steps        int64 // context-poll pacing
}

func newSearch(st *Store) *search {
	s := &search{
		st:     st,
		assign: make([]int8, st.nvars+1),
		slack:  make([]int64, len(st.cons)),
	}
	for i := range st.cons {
		var sum int64
		for _, t := range st.cons[i].Terms {
			sum += t.Coef
		}
		s.slack[i] = sum - st.cons[i].Degree
	}
	return s
}

// fold adds this search's tallies into the store's counter sink, if any.
func (s *search) fold() {
	if c := s.st.Counters; c != nil {
		c.Decisions.Add(s.decisions)
		c.Propagations.Add(s.propagations)
		c.Conflicts.Add(s.conflicts)
	}
}

// installFloor sets the objective floor Σ terms ≥ degree. Must be called on
// a fresh search (empty trail). Terms may carry negative coefficients; they
// are flipped onto the negated literal with the degree shifted, as in
// normalizeGE, but without saturation — the degree moves during the search.
func (s *search) installFloor(terms []Term, degree int64) {
	s.hasFloor = true
	s.floorCoefs = make([]int64, 2*s.st.nvars)
	var sum int64
	for _, t := range terms {
		switch {
		case t.Coef > 0:
			s.floorCoefs[litIndex(t.Lit)] += t.Coef
		case t.Coef < 0:
			s.floorCoefs[litIndex(-t.Lit)] += -t.Coef
			degree -= t.Coef
		}
	}
	for _, c := range s.floorCoefs {
		sum += c
	}
	s.floorDeg = degree
	s.floorSlack = sum - degree
}

// raiseFloorTo tightens the objective floor to at least degree (in the same
// shifted coordinates installFloor left it in; compiled ops only ever go
// through Compiled.raise, which handles the shift). Raising mid-search is
// sound because the floor only ever cuts, never propagates.
func (s *search) raiseFloorTo(degree int64) {
	if !s.hasFloor || degree <= s.floorDeg {
		return
	}
	s.floorSlack -= degree - s.floorDeg
	s.floorDeg = degree
}

// setLit makes lit true: records it on the trail and pays its slack out of
// every constraint containing ¬lit. Returns false if any slack (or the
// floor's) went negative — the caller must still backtrack through the
// trail entry, which setLit always pushes.
func (s *search) setLit(lit int) bool {
	v := lit
	val := int8(1)
	if lit < 0 {
		v = -lit
		val = -1
	}
	s.assign[v] = val
	s.trail = append(s.trail, lit)
	fi := litIndex(-lit)
	ok := true
	for _, o := range s.st.occs[fi] {
		s.slack[o.Con] -= s.st.cons[o.Con].Terms[o.Term].Coef
		if s.slack[o.Con] < 0 {
			ok = false
		}
	}
	if s.hasFloor {
		if c := s.floorCoefs[fi]; c != 0 {
			s.floorSlack -= c
			if s.floorSlack < 0 {
				ok = false
			}
		}
	}
	return ok
}

// propagate drains the trail frontier, forcing every literal whose
// coefficient exceeds its constraint's slack (in a ≥-constraint, a non-false
// literal with Coef > slack must be true). Terms are sorted by descending
// coefficient, so each scan stops at the first coefficient ≤ slack. Returns
// false on conflict.
func (s *search) propagate() bool {
	for s.qhead < len(s.trail) {
		lit := s.trail[s.qhead]
		s.qhead++
		fi := litIndex(-lit)
		for _, o := range s.st.occs[fi] {
			con := &s.st.cons[o.Con]
			sl := s.slack[o.Con]
			if sl < 0 {
				return false
			}
			for _, t := range con.Terms {
				if t.Coef <= sl {
					break
				}
				if s.assign[varOf(t.Lit)] == 0 {
					s.propagations++
					if !s.setLit(t.Lit) {
						return false
					}
				}
			}
		}
		if s.hasFloor && s.floorSlack < 0 {
			return false
		}
	}
	return true
}

// initProp runs the root-level propagation pass: constraints can force
// literals before any decision is made (Coef > initial slack), which the
// trail-driven propagate never revisits. Returns false if the store is
// unsatisfiable at the root.
func (s *search) initProp() bool {
	if s.st.unsat {
		return false
	}
	for ci := range s.st.cons {
		sl := s.slack[ci]
		if sl < 0 {
			return false
		}
		for _, t := range s.st.cons[ci].Terms {
			if t.Coef <= sl {
				break
			}
			if s.assign[varOf(t.Lit)] == 0 {
				s.propagations++
				if !s.setLit(t.Lit) {
					s.conflicts++
					return false
				}
			}
		}
	}
	if s.hasFloor && s.floorSlack < 0 {
		s.conflicts++
		return false
	}
	if !s.propagate() {
		s.conflicts++
		return false
	}
	return true
}

// assume opens a decision level, makes lit true and propagates. On conflict
// it returns false with the level still open — the caller cancels it.
func (s *search) assume(lit int) bool {
	s.lims = append(s.lims, len(s.trail))
	s.decisions++
	if !s.setLit(lit) || !s.propagate() {
		s.conflicts++
		return false
	}
	return true
}

// cancel pops one decision level, refunding slack along the trail suffix.
func (s *search) cancel() {
	mark := s.lims[len(s.lims)-1]
	s.lims = s.lims[:len(s.lims)-1]
	for i := len(s.trail) - 1; i >= mark; i-- {
		lit := s.trail[i]
		fi := litIndex(-lit)
		for _, o := range s.st.occs[fi] {
			s.slack[o.Con] += s.st.cons[o.Con].Terms[o.Term].Coef
		}
		if s.hasFloor {
			s.floorSlack += s.floorCoefs[fi]
		}
		s.assign[varOf(lit)] = 0
	}
	s.trail = s.trail[:mark]
	s.qhead = mark
}

func varOf(lit int) int {
	if lit < 0 {
		return -lit
	}
	return lit
}

// enumerate walks the full search tree depth-first in ascending variable
// order, include-branch first, and calls yield on every total model that
// satisfies all constraints and the current floor. yield returning false
// stops the enumeration; a non-nil error aborts it. The walk is
// deterministic, which the differential harness relies on. hook, when
// non-nil, is consulted after each successful decision and may cut the
// subtree (used by the compiler for prefix-prune and monotone-cost cuts).
func (s *search) enumerate(ctx context.Context, hook func() bool, yield func(assign []int8) (bool, error)) error {
	if ctx != nil {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	if !s.initProp() {
		return nil
	}
	if hook != nil && !hook() {
		return nil
	}
	_, err := s.dfs(ctx, 1, hook, yield)
	return err
}

func (s *search) dfs(ctx context.Context, from int, hook func() bool, yield func(assign []int8) (bool, error)) (bool, error) {
	s.steps++
	if ctx != nil && s.steps&255 == 0 {
		select {
		case <-ctx.Done():
			return false, ctx.Err()
		default:
		}
	}
	v := from
	for v <= s.st.nvars && s.assign[v] != 0 {
		v++
	}
	if v > s.st.nvars {
		// Total model. Constraints hold: every slack is non-negative and no
		// literal is unassigned, so each Σ over true terms meets its degree.
		return yield(s.assign)
	}
	for _, lit := range [2]int{v, -v} {
		ok := s.assume(lit)
		if ok && hook != nil {
			ok = hook()
		}
		if ok {
			cont, err := s.dfs(ctx, v+1, hook, yield)
			if err != nil || !cont {
				s.cancel()
				return false, err
			}
		}
		s.cancel()
	}
	return true, nil
}

// Solve searches for a model of the store's constraints. It returns the
// model as a per-variable truth assignment (index 0 = variable 1) and
// whether one exists. Deterministic: the model returned is the first in the
// enumeration order.
func (st *Store) Solve() ([]bool, bool) {
	return st.SolveAssume(nil)
}

// SolveAssume is Solve under assumptions: each literal in assume is fixed
// before the search starts. Contradictory assumptions yield ok = false.
func (st *Store) SolveAssume(assume []int) ([]bool, bool) {
	model, _, ok := st.solveAssume(assume)
	return model, ok
}

// solveAssume also reports the decisions spent, for the session memo.
func (st *Store) solveAssume(assume []int) ([]bool, int64, bool) {
	if st.Counters != nil {
		st.Counters.Solves.Add(1)
	}
	s := newSearch(st)
	defer s.fold()
	for _, lit := range assume {
		v := varOf(lit)
		if v < 1 || v > st.nvars {
			return nil, s.decisions, false
		}
		want := int8(1)
		if lit < 0 {
			want = -1
		}
		if s.assign[v] == want {
			continue
		}
		if s.assign[v] == -want || !s.setLit(lit) {
			s.conflicts++
			return nil, s.decisions, false
		}
	}
	var model []bool
	err := s.enumerate(nil, nil, func(assign []int8) (bool, error) {
		model = make([]bool, st.nvars)
		for v := 1; v <= st.nvars; v++ {
			model[v-1] = assign[v] > 0
		}
		return false, nil
	})
	_ = err // no ctx, no erroring yields
	return model, s.decisions, model != nil
}

// Session memoises SolveAssume outcomes across a sequence of related probes,
// mirroring core.SolveSession: callers exploring a neighbourhood of
// assumption sets (the relaxation loop's per-suggestion feasibility checks)
// resume already-solved variants instead of re-searching. The memo key is
// the salt plus the canonicalised assumption set, so logically identical
// probes hit regardless of assumption order. A Session is not safe for
// concurrent use; the underlying Store is.
type Session struct {
	st   *Store
	memo map[string]sessionRec
}

type sessionRec struct {
	model     []bool
	ok        bool
	decisions int64
}

// NewSession returns an empty session over st.
func NewSession(st *Store) *Session {
	return &Session{st: st, memo: make(map[string]sessionRec)}
}

// Probe solves the store under the given assumptions, answering from the
// session memo when an identical (salt, assumptions) probe already ran.
// Resumed probes bump SessionResumes / SessionDecisionsSaved on the store's
// counter sink instead of re-searching.
func (s *Session) Probe(assume []int, salt string) ([]bool, bool) {
	key := probeKey(assume, salt)
	if rec, hit := s.memo[key]; hit {
		if c := s.st.Counters; c != nil {
			c.SessionResumes.Add(1)
			c.SessionDecisionsSaved.Add(rec.decisions)
		}
		return rec.model, rec.ok
	}
	model, decisions, ok := s.st.solveAssume(assume)
	s.memo[key] = sessionRec{model: model, ok: ok, decisions: decisions}
	return model, ok
}

func probeKey(assume []int, salt string) string {
	lits := append([]int(nil), assume...)
	sort.Ints(lits)
	var b strings.Builder
	b.WriteString(salt)
	for _, l := range lits {
		b.WriteByte(0x1e)
		b.WriteString(strconv.Itoa(l))
	}
	return b.String()
}
