// Package pbo is a native pseudo-Boolean optimization backend: a DPLL-style
// search over normalized pseudo-Boolean (PB) constraints with counter-based
// ("watched sum") propagation, objective-bound tightening, and incremental
// assumption reuse mirroring core.SolveSession. It is the repo's second
// solver engine: where internal/boolenc compiles package-recommendation
// instances *to* Boolean formulas to exhibit the paper's hardness reductions,
// pbo runs the promotion in the other direction — compiling a prepared
// core.Problem into PB form and solving it natively (PAPERS.md: "Comparison
// of PBO solvers in a dependency solving domain", "Handling software
// upgradeability problems with MILP solvers").
//
// Correctness story: every PB constraint emitted by the compiler is a sound
// relaxation — it never excludes a package the branch-and-bound engine would
// yield — and every enumerated model is round-tripped to a core.Package and
// re-checked against the Problem's exact predicates (prefix pruning, budget,
// compatibility, val floor). The differential suite in internal/experiments
// pins result-identity between pbo, the B&B engine, and brute force on every
// experiment family and a seeded random corpus.
//
// Literal convention follows DIMACS: literal v > 0 denotes variable v
// (1-based), -v its negation — the textual convention internal/sat's DIMACS
// layer reads and writes.
package pbo

import (
	"fmt"
	"sort"

	"repro/internal/sat"
)

// Term is one coefficient–literal product of a pseudo-Boolean constraint.
type Term struct {
	Coef int64
	Lit  int
}

// Constraint is a normalized PB constraint
//
//	Σ_i Coef_i · Lit_i  ≥  Degree
//
// with every coefficient positive, at most one term per variable,
// coefficients saturated at the degree, and terms sorted by descending
// coefficient (the order the propagator scans, so the forced-literal scan
// can stop at the first coefficient ≤ slack).
type Constraint struct {
	Terms  []Term
	Degree int64
}

// conState classifies the outcome of normalization.
type conState int

const (
	conOK      conState = iota // a real constraint
	conTrivial                 // degree ≤ 0 after normalization: always satisfied
	conUnsat                   // Σ coefficients < degree: no assignment satisfies it
)

// normalizeGE rewrites Σ terms ≥ degree into the canonical form described on
// Constraint: duplicate literals of one variable are merged, a net-negative
// coefficient c·x is replaced by (-c)·¬x with the degree shifted by -c, and
// surviving coefficients are saturated at the degree (a coefficient larger
// than the degree behaves identically to one equal to it).
func normalizeGE(terms []Term, degree int64) (Constraint, conState) {
	acc := make(map[int]int64, len(terms)) // 1-based var → net coefficient on the positive literal
	for _, t := range terms {
		if t.Coef == 0 {
			continue
		}
		if t.Lit == 0 {
			panic("pbo: zero literal in constraint")
		}
		v := varOf(t.Lit)
		if t.Lit > 0 {
			acc[v] += t.Coef
		} else {
			// c·¬x = c - c·x
			acc[v] -= t.Coef
			degree -= t.Coef
		}
	}
	out := make([]Term, 0, len(acc))
	for v, a := range acc {
		switch {
		case a > 0:
			out = append(out, Term{Coef: a, Lit: v})
		case a < 0:
			// a·x = a - a·(1-x) = a + (-a)·¬x
			out = append(out, Term{Coef: -a, Lit: -v})
			degree -= a
		}
	}
	if degree <= 0 {
		return Constraint{}, conTrivial
	}
	var sum int64
	for i := range out {
		if out[i].Coef > degree {
			out[i].Coef = degree
		}
		sum += out[i].Coef
	}
	if sum < degree {
		return Constraint{}, conUnsat
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coef != out[j].Coef {
			return out[i].Coef > out[j].Coef
		}
		return litIndex(out[i].Lit) < litIndex(out[j].Lit)
	})
	return Constraint{Terms: out, Degree: degree}, conOK
}

// litIndex maps a non-zero literal to a dense index in [0, 2·nvars):
// 2·(v-1) for the positive literal of variable v, 2·(v-1)+1 for the negative.
func litIndex(lit int) int {
	v := varOf(lit) - 1
	if lit > 0 {
		return 2 * v
	}
	return 2*v + 1
}

// indexLit is the inverse of litIndex.
func indexLit(idx int) int {
	v := idx/2 + 1
	if idx%2 == 0 {
		return v
	}
	return -v
}

// occRef locates one term inside the constraint store: cons[Con].Terms[Term].
type occRef struct {
	Con  int32
	Term int32
}

// Store is an immutable-after-construction set of normalized PB constraints
// over a fixed variable range, with per-literal occurrence lists. A Store
// carries no search state: any number of searches (and any number of
// goroutines) may solve over one Store concurrently, which is how the
// serving layer shares a compiled problem across requests.
type Store struct {
	nvars int
	cons  []Constraint
	occs  [][]occRef // indexed by litIndex; constraints containing that literal
	unsat bool       // some added constraint is unsatisfiable on its own

	// Counters, when non-nil, receives search accounting (decisions,
	// propagations, conflicts, session resumes) from every solve over this
	// store; the fields are atomics, so concurrent searches may share one
	// sink. Mirrors core.Problem.Counters.
	Counters *Counters
}

// NewStore returns an empty store over variables 1..nvars.
func NewStore(nvars int) *Store {
	if nvars < 0 {
		nvars = 0
	}
	return &Store{nvars: nvars, occs: make([][]occRef, 2*nvars)}
}

// NumVars returns the variable range the store was built over.
func (st *Store) NumVars() int { return st.nvars }

// NumConstraints returns the number of (non-trivial) constraints held.
func (st *Store) NumConstraints() int { return len(st.cons) }

// Unsat reports whether some added constraint was unsatisfiable on its own
// (e.g. an empty clause); searches over such a store enumerate nothing.
func (st *Store) Unsat() bool { return st.unsat }

// AddGE adds Σ terms ≥ degree. Terms may repeat variables and carry negative
// coefficients; normalization handles both. Trivially-true constraints are
// dropped; trivially-false ones mark the whole store unsatisfiable.
func (st *Store) AddGE(terms []Term, degree int64) {
	for _, t := range terms {
		if t.Lit != 0 {
			if v := varOf(t.Lit); v < 1 || v > st.nvars {
				panic(fmt.Sprintf("pbo: literal %d out of range 1..%d", t.Lit, st.nvars))
			}
		}
	}
	c, state := normalizeGE(terms, degree)
	switch state {
	case conTrivial:
		return
	case conUnsat:
		st.unsat = true
		return
	}
	idx := int32(len(st.cons))
	st.cons = append(st.cons, c)
	for ti, t := range c.Terms {
		li := litIndex(t.Lit)
		st.occs[li] = append(st.occs[li], occRef{Con: idx, Term: int32(ti)})
	}
}

// AddLE adds Σ terms ≤ degree by negating both sides into ≥ form.
func (st *Store) AddLE(terms []Term, degree int64) {
	neg := make([]Term, len(terms))
	for i, t := range terms {
		neg[i] = Term{Coef: -t.Coef, Lit: t.Lit}
	}
	st.AddGE(neg, -degree)
}

// AddClause adds the disjunction of lits as the cardinality constraint
// Σ lits ≥ 1. An empty clause marks the store unsatisfiable, matching CNF
// semantics.
func (st *Store) AddClause(lits ...int) {
	terms := make([]Term, len(lits))
	for i, l := range lits {
		terms[i] = Term{Coef: 1, Lit: l}
	}
	st.AddGE(terms, 1)
}

// FromCNF builds a store holding cnf's clauses as cardinality-1 constraints,
// the degenerate PB case. It is the bridge the fuzz harness uses to check
// the PB search against sat.Solve on arbitrary CNF inputs.
func FromCNF(cnf sat.CNF) *Store {
	st := NewStore(cnf.NumVars)
	for _, cl := range cnf.Clauses {
		st.AddClause(cl...)
	}
	return st
}
