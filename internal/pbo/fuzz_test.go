package pbo

import (
	"testing"

	"repro/internal/sat"
)

// decodeCNF maps arbitrary fuzz bytes onto a small CNF: the first byte picks
// the variable count (1..6), each following byte contributes one literal
// (low bits: variable, bit 3: sign, bit 4: clause terminator). Sizes are
// capped so the cross-check below stays brute-forceable.
func decodeCNF(data []byte) sat.CNF {
	if len(data) == 0 {
		return sat.CNF{}
	}
	nv := int(data[0])%6 + 1
	cnf := sat.CNF{NumVars: nv}
	var cl sat.Clause
	for _, b := range data[1:] {
		if len(cnf.Clauses) >= 16 {
			break
		}
		v := int(b&0x07)%nv + 1
		if b&0x08 != 0 {
			v = -v
		}
		cl = append(cl, v)
		if b&0x10 != 0 || len(cl) >= 4 {
			cnf.Clauses = append(cnf.Clauses, cl)
			cl = nil
		}
	}
	if len(cl) > 0 {
		cnf.Clauses = append(cnf.Clauses, cl)
	}
	return cnf
}

// FuzzPBOAgreesWithSolve pins the PB search against the DPLL solver on
// arbitrary small CNFs: satisfiability must agree, any model returned must
// actually satisfy the formula, and full model enumeration must agree with
// sat.CountModels.
func FuzzPBOAgreesWithSolve(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x02, 0x11, 0x19})                   // (x1) ∧ (¬x1): unsat units
	f.Add([]byte{0x04, 0x01, 0x12, 0x0a, 0x13})       // two small clauses
	f.Add([]byte{0x05, 0x01, 0x02, 0x03, 0x04, 0x15}) // one wide clause
	f.Add([]byte{0x03, 0x10, 0x18, 0x11, 0x19})       // unit conflict chain
	f.Fuzz(func(t *testing.T, data []byte) {
		cnf := decodeCNF(data)
		st := FromCNF(cnf)
		model, ok := st.Solve()
		_, wantOK := sat.Solve(cnf)
		if ok != wantOK {
			t.Fatalf("pbo sat=%v, sat.Solve=%v on %v", ok, wantOK, cnf)
		}
		if ok && !cnf.Eval(model) {
			t.Fatalf("pbo model %v does not satisfy %v", model, cnf)
		}
		s := newSearch(st)
		var got int64
		if err := s.enumerate(nil, nil, func([]int8) (bool, error) {
			got++
			return true, nil
		}); err != nil {
			t.Fatal(err)
		}
		if want := sat.CountModels(cnf); got != want {
			t.Fatalf("pbo models=%d, sat.CountModels=%d on %v", got, want, cnf)
		}
	})
}
