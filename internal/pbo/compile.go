package pbo

import (
	"context"
	"math"

	"repro/internal/core"
	"repro/internal/relation"
)

// degClamp bounds encoded degrees so slack arithmetic cannot overflow int64:
// coefficients are capped well below it, so sums and shifted degrees stay
// within ±2^62.
const degClamp = int64(1) << 60

// maxCoef is the largest per-item weight the linearizer accepts; larger
// magnitudes fall back to filter-only handling rather than risk overflow.
const maxCoef = int64(1) << 40

// linForm is a linear view of an aggregator over the candidate list:
// val(N) ≈ base + Σ_{t_i ∈ N} w_i, exact up to slop. slop is the soundness
// margin: encoded thresholds are relaxed by it, so float rounding in the
// aggregator can never make the PB constraints exclude a package the exact
// predicates accept — the exact predicates run again on every model.
type linForm struct {
	ok   bool
	w    []int64
	base float64
	slop float64
}

// linearize probes an aggregator for a linear form. Stock linear
// aggregators are recognised by name: count/countOrInf (unit weights —
// countOrInf's +∞-on-empty never fires because the compiler always asserts
// non-emptiness), sum/negsum/weighted (per-item weights probed on singleton
// packages, accepted only when near-integer and small enough for exact
// int64 arithmetic), and const (weights zero). Everything else — min, max,
// avg, singleton ratings, custom Func aggregators — is handled filter-only.
func linearize(a core.Aggregator, cands []relation.Tuple) linForm {
	n := len(cands)
	switch a.Name() {
	case "count", "countOrInf":
		w := make([]int64, n)
		for i := range w {
			w[i] = 1
		}
		return linForm{ok: true, w: w}
	case "const":
		return linForm{ok: true, w: make([]int64, n), base: a.Eval(core.NewPackage())}
	case "sum", "negsum", "weighted":
		w := make([]int64, n)
		var sumAbs float64
		for i, t := range cands {
			v := a.Eval(core.NewPackage(t))
			r := math.Round(v)
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v-r) > 1e-9*(1+math.Abs(v)) {
				return linForm{}
			}
			if math.Abs(r) > float64(maxCoef) {
				return linForm{}
			}
			w[i] = int64(r)
			sumAbs += math.Abs(r)
		}
		// Absorbs both the per-weight rounding above and the float
		// re-association of Eval over whole packages.
		return linForm{ok: true, w: w, slop: 1e-6 + 1e-9*sumAbs}
	}
	return linForm{}
}

// terms renders the weights as PB terms over the candidate variables
// (variable i+1 ⇔ candidate i), dropping zero coefficients.
func (f linForm) terms() []Term {
	ts := make([]Term, 0, len(f.w))
	for i, w := range f.w {
		if w != 0 {
			ts = append(ts, Term{Coef: w, Lit: i + 1})
		}
	}
	return ts
}

// Compiled is a core.Problem lowered to PB form: one Boolean variable per
// candidate tuple (numbered in the problem's canonical candidate order, so
// package keys and tie-breaking agree with the B&B engine), hard constraints
// for the always-sound structure (non-emptiness, the package size bound, and
// the cost budget when the cost aggregator is linear), and linear forms for
// the dynamic val floor. Constraints are sound relaxations — they never
// exclude a package the engine would yield — and every enumerated model is
// round-tripped to a core.Package and re-checked against the problem's exact
// predicates (canonical-prefix pruning, budget, compatibility), so the op
// results are identical to the engine's by construction. A Compiled is
// immutable and safe for concurrent ops once Compile returns.
type Compiled struct {
	prob          *core.Problem
	cands         []relation.Tuple
	ms            int
	st            *Store
	cost          linForm
	val           linForm
	budgetEncoded bool
}

// Compile prepares p (forcing its memoised candidate and bound state) and
// lowers it to PB form. ctr, when non-nil, receives the accounting of every
// op run over the result.
func Compile(p *core.Problem, ctr *Counters) (*Compiled, error) {
	if err := p.Prepare(); err != nil {
		return nil, err
	}
	cands, err := p.CandidateList()
	if err != nil {
		return nil, err
	}
	n := len(cands)
	ms := p.MaxPkgSize
	if ms <= 0 {
		ms = n
	}
	st := NewStore(n)
	st.Counters = ctr
	// Packages are non-empty; with no candidates this is the empty clause,
	// matching the engine's walk over zero roots.
	lits := make([]int, n)
	for i := range lits {
		lits[i] = i + 1
	}
	st.AddClause(lits...)
	if ms < n {
		// |N| ≤ ms  ⇔  Σ ¬x_i ≥ n − ms. Integer-exact: no slop needed.
		neg := make([]Term, n)
		for i := range neg {
			neg[i] = Term{Coef: 1, Lit: -(i + 1)}
		}
		st.AddGE(neg, int64(n-ms))
	}
	c := &Compiled{prob: p, cands: cands, ms: ms, st: st}
	c.cost = linearize(p.Cost, cands)
	if c.cost.ok && !math.IsNaN(p.Budget) && !math.IsInf(p.Budget, 0) {
		rhs := math.Floor(p.Budget - c.cost.base + c.cost.slop)
		if math.Abs(rhs) < float64(degClamp) {
			st.AddLE(c.cost.terms(), int64(rhs))
			c.budgetEncoded = true
		}
	}
	c.val = linearize(p.Val, cands)
	return c, nil
}

// Store exposes the compiled constraint store, so callers can run raw
// satisfiability probes (pbo.Session assumption reuse) over the same
// encoding the ops use.
func (c *Compiled) Store() *Store { return c.st }

// floorDegree maps a float rating bound onto a PB degree for the linear val
// form, relaxed by slop so the floor only ever cuts packages the exact
// predicate would reject too. active is false when the bound cuts nothing
// (−∞, NaN, or a non-linear val).
func (c *Compiled) floorDegree(bound float64) (deg int64, active bool) {
	if !c.val.ok || math.IsNaN(bound) || math.IsInf(bound, -1) {
		return 0, false
	}
	t := math.Ceil(bound - c.val.base - c.val.slop)
	switch {
	case t >= float64(degClamp): // +∞ or absurd: no finite linear val qualifies
		return degClamp, true
	case t <= -float64(degClamp):
		return -degClamp, true
	}
	return int64(t), true
}

// searchWithFloor starts a search whose objective floor is fixed at bound.
func (c *Compiled) searchWithFloor(bound float64) *search {
	s := newSearch(c.st)
	if deg, active := c.floorDegree(bound); active {
		s.installFloor(c.val.terms(), deg)
	}
	return s
}

// searchRaisable starts a search with an initially-inactive floor that
// raise can tighten as better selections are buffered (objective-bound
// tightening, the pbo analogue of the engine's live floor).
func (c *Compiled) searchRaisable() *search {
	s := newSearch(c.st)
	if c.val.ok {
		s.installFloor(c.val.terms(), -degClamp)
	}
	return s
}

// raise tightens s's floor to the degree encoding bound.
func (c *Compiled) raise(s *search, bound float64) {
	if deg, active := c.floorDegree(bound); active {
		s.raiseFloorTo(deg)
	}
}

// hookFor builds the subtree-cut hook for a search: canonical-prefix
// pruning and the monotone-cost budget cut, the two engine cuts the PB
// constraints cannot express when the aggregators are not linear. Both cuts
// are filter-consistent — they only remove models admit would reject — so
// they change cost, never results. The hook fires only in "clean" states
// where every true variable precedes every unassigned one; then the true
// set is a canonical prefix of every completion below the node, which is
// exactly when the engine would have applied the same cut.
func (c *Compiled) hookFor(s *search) func() bool {
	needPrune := c.prob.Prune != nil
	needCost := c.prob.Cost.Monotone() && !c.budgetEncoded
	if !needPrune && !needCost {
		return nil
	}
	buf := make([]relation.Tuple, 0, c.ms)
	return func() bool {
		buf = buf[:0]
		firstUnassigned := 0
		for v := 1; v <= c.st.nvars; v++ {
			switch {
			case s.assign[v] == 0:
				if firstUnassigned == 0 {
					firstUnassigned = v
				}
			case s.assign[v] > 0:
				if firstUnassigned != 0 {
					return true // a forced inclusion beyond the frontier: not a clean prefix
				}
				buf = append(buf, c.cands[v-1])
			}
		}
		if firstUnassigned == 0 || len(buf) == 0 {
			return true // total assignment (admit decides) or empty prefix
		}
		pfx := core.NewPackage(buf...)
		if needPrune && c.prob.Prune(pfx) {
			return false
		}
		if needCost && c.prob.Cost.Eval(pfx) > c.prob.Budget {
			return false
		}
		return true
	}
}

// admit round-trips a total model to a core.Package and applies the exact
// acceptance predicates the engine applies along its DFS path: no canonical
// prefix is pruned, cost within budget, compatibility holds. It returns the
// package with its exact rating.
func (c *Compiled) admit(assign []int8) (pkg core.Package, val float64, ok bool, err error) {
	ts := make([]relation.Tuple, 0, c.ms)
	for i := range c.cands {
		if assign[i+1] > 0 {
			ts = append(ts, c.cands[i])
		}
	}
	if len(ts) == 0 {
		return core.Package{}, 0, false, nil
	}
	if c.prob.Prune != nil {
		for j := 1; j <= len(ts); j++ {
			if c.prob.Prune(core.NewPackage(ts[:j]...)) {
				return core.Package{}, 0, false, nil
			}
		}
	}
	pkg = core.NewPackage(ts...)
	if c.prob.Cost.Eval(pkg) > c.prob.Budget {
		return core.Package{}, 0, false, nil
	}
	compat, err := c.prob.Compatible(pkg)
	if err != nil || !compat {
		return core.Package{}, 0, false, err
	}
	return pkg, c.prob.Val.Eval(pkg), true, nil
}

// run enumerates the admitted packages of the compiled instance under s,
// calling yield with each package and its exact rating. It mirrors the
// engine's enumerateValidFloor gating: a size bound below one, or an empty
// candidate set, enumerates nothing.
func (c *Compiled) run(ctx context.Context, s *search, yield func(core.Package, float64) (bool, error)) error {
	if ctr := c.st.Counters; ctr != nil {
		ctr.Solves.Add(1)
	}
	defer s.fold()
	if c.ms < 1 || len(c.cands) == 0 {
		return nil
	}
	return s.enumerate(ctx, c.hookFor(s), func(assign []int8) (bool, error) {
		pkg, val, ok, err := c.admit(assign)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		return yield(pkg, val)
	})
}

// scored and topk replicate core's scoredPkg/topkBuf ordering exactly —
// descending rating, ties broken by ascending canonical package key — so the
// pbo backend returns bit-identical selections.
type scored struct {
	pkg core.Package
	val float64
}

func worse(a, b scored) bool {
	if a.val != b.val {
		return a.val < b.val
	}
	return a.pkg.Key() > b.pkg.Key()
}

type topk struct {
	k    int
	best []scored
}

func (b *topk) add(s scored) {
	pos := len(b.best)
	for pos > 0 && worse(b.best[pos-1], s) {
		pos--
	}
	if pos >= b.k {
		return
	}
	b.best = append(b.best, scored{})
	copy(b.best[pos+1:], b.best[pos:])
	b.best[pos] = s
	if len(b.best) > b.k {
		b.best = b.best[:b.k]
	}
}

func (b *topk) floorVal() (float64, bool) {
	if b.k <= 0 || len(b.best) < b.k {
		return 0, false
	}
	return b.best[b.k-1].val, true
}

// findTopKScored is the FRP core over the PB search: every admitted package
// feeds the top-k buffer, and once the buffer fills, the k-th rating raises
// the objective floor — the same branch-and-bound contraction the engine's
// live floor performs.
func (c *Compiled) findTopKScored(ctx context.Context) ([]scored, bool, error) {
	buf := topk{k: c.prob.K}
	s := c.searchRaisable()
	err := c.run(ctx, s, func(pkg core.Package, val float64) (bool, error) {
		buf.add(scored{pkg: pkg, val: val})
		if v, full := buf.floorVal(); full {
			c.raise(s, v)
		}
		return true, nil
	})
	if err != nil {
		return nil, false, err
	}
	if len(buf.best) < c.prob.K {
		return nil, false, nil
	}
	return buf.best, true, nil
}

// FindTopKCtx solves FRP on the compiled instance: a top-k package
// selection in descending rating order (ties by canonical key), identical
// to core.Problem.FindTopK. ok is false when fewer than k distinct valid
// packages exist.
func (c *Compiled) FindTopKCtx(ctx context.Context) ([]core.Package, bool, error) {
	best, ok, err := c.findTopKScored(ctx)
	if err != nil || !ok {
		return nil, ok, err
	}
	sel := make([]core.Package, len(best))
	for i, s := range best {
		sel[i] = s.pkg
	}
	return sel, true, nil
}

// MaxBoundCtx solves MBP: the k-th highest rating among valid packages
// (+∞ when k = 0), identical to core.Problem.MaxBound.
func (c *Compiled) MaxBoundCtx(ctx context.Context) (float64, bool, error) {
	best, ok, err := c.findTopKScored(ctx)
	if err != nil || !ok {
		return 0, false, err
	}
	bound := math.Inf(1)
	for _, s := range best {
		bound = math.Min(bound, s.val)
	}
	return bound, true, nil
}

// CountValidCtx solves CPP: the number of valid packages rated at least
// bound, identical to core.Problem.CountValid. The bound doubles as the
// static objective floor when val is linear.
func (c *Compiled) CountValidCtx(ctx context.Context, bound float64) (int64, error) {
	var n int64
	s := c.searchWithFloor(bound)
	err := c.run(ctx, s, func(_ core.Package, val float64) (bool, error) {
		if val >= bound {
			n++
		}
		return true, nil
	})
	return n, err
}

// ExistsKValidCtx reports whether k pairwise-distinct valid packages rated
// at least bound exist, identical to core.Problem.ExistsKValid.
func (c *Compiled) ExistsKValidCtx(ctx context.Context, k int, bound float64) (bool, error) {
	if k <= 0 {
		return true, nil
	}
	found := 0
	s := c.searchWithFloor(bound)
	err := c.run(ctx, s, func(_ core.Package, val float64) (bool, error) {
		if val >= bound {
			found++
			if found >= k {
				return false, nil
			}
		}
		return true, nil
	})
	return found >= k, err
}

// DecideTopKCtx decides RPP for a claimed selection, identical in
// accept/reject behaviour to core.Problem.DecideTopK. On rejection by
// out-rating, the witness is a genuine counterexample — a valid package
// outside the selection rated strictly above its minimum — but not
// necessarily the same package the serial engine reports, matching the
// contract of the engine's own parallel variant.
func (c *Compiled) DecideTopKCtx(ctx context.Context, sel []core.Package) (bool, *core.Package, error) {
	if len(sel) != c.prob.K {
		return false, nil, nil
	}
	seen := make(map[string]struct{}, len(sel))
	minVal := math.Inf(1)
	for _, n := range sel {
		if _, dup := seen[n.Key()]; dup {
			return false, nil, nil
		}
		seen[n.Key()] = struct{}{}
		valid, err := c.prob.Valid(n)
		if err != nil {
			return false, nil, err
		}
		if !valid {
			return false, nil, nil
		}
		minVal = math.Min(minVal, c.prob.Val.Eval(n))
	}
	var found *core.Package
	s := c.searchWithFloor(minVal)
	err := c.run(ctx, s, func(pkg core.Package, val float64) (bool, error) {
		if _, in := seen[pkg.Key()]; in {
			return true, nil
		}
		if val > minVal {
			p := pkg
			found = &p
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		return false, nil, err
	}
	if found != nil {
		return false, found, nil
	}
	return true, nil, nil
}
