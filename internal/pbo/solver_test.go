package pbo

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// countModels enumerates a store's total models over all variables.
func countModels(t *testing.T, st *Store) int64 {
	t.Helper()
	s := newSearch(st)
	var n int64
	if err := s.enumerate(nil, nil, func([]int8) (bool, error) {
		n++
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNormalizeGE(t *testing.T) {
	cases := []struct {
		name   string
		terms  []Term
		degree int64
		state  conState
		deg    int64
		nterms int
	}{
		{"plain clause", []Term{{1, 1}, {1, 2}}, 1, conOK, 1, 2},
		{"merge duplicates", []Term{{1, 1}, {2, 1}}, 3, conOK, 3, 1},
		{"cancel to trivial", []Term{{1, 1}, {1, -1}}, 1, conTrivial, 0, 0},
		{"negative coef flips", []Term{{-2, 1}, {3, 2}}, 1, conOK, 3, 2},
		{"saturation", []Term{{10, 1}, {1, 2}}, 2, conOK, 2, 2},
		{"trivial", []Term{{1, 1}}, 0, conTrivial, 0, 0},
		{"unsat", []Term{{1, 1}, {1, 2}}, 3, conUnsat, 0, 0},
		{"empty unsat", nil, 1, conUnsat, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, state := normalizeGE(tc.terms, tc.degree)
			if state != tc.state {
				t.Fatalf("state = %v, want %v", state, tc.state)
			}
			if state != conOK {
				return
			}
			if c.Degree != tc.deg || len(c.Terms) != tc.nterms {
				t.Fatalf("got %+v, want degree %d with %d terms", c, tc.deg, tc.nterms)
			}
			for i := 1; i < len(c.Terms); i++ {
				if c.Terms[i-1].Coef < c.Terms[i].Coef {
					t.Fatal("terms not sorted by descending coefficient")
				}
			}
			for _, tm := range c.Terms {
				if tm.Coef <= 0 || tm.Coef > c.Degree {
					t.Fatalf("coefficient %d outside (0, degree]", tm.Coef)
				}
			}
		})
	}
}

func TestCardinalityModelCounts(t *testing.T) {
	// Over 4 variables: Σx ≥ 2 has C(4,2)+C(4,3)+C(4,4) = 11 models,
	// Σx ≤ 2 has 1+4+6 = 11, and both together have 6.
	atLeast := NewStore(4)
	atLeast.AddGE([]Term{{1, 1}, {1, 2}, {1, 3}, {1, 4}}, 2)
	if n := countModels(t, atLeast); n != 11 {
		t.Fatalf("Σx ≥ 2 models = %d, want 11", n)
	}
	atMost := NewStore(4)
	atMost.AddLE([]Term{{1, 1}, {1, 2}, {1, 3}, {1, 4}}, 2)
	if n := countModels(t, atMost); n != 11 {
		t.Fatalf("Σx ≤ 2 models = %d, want 11", n)
	}
	exactly := NewStore(4)
	exactly.AddGE([]Term{{1, 1}, {1, 2}, {1, 3}, {1, 4}}, 2)
	exactly.AddLE([]Term{{1, 1}, {1, 2}, {1, 3}, {1, 4}}, 2)
	if n := countModels(t, exactly); n != 6 {
		t.Fatalf("Σx = 2 models = %d, want 6", n)
	}
}

func TestWeightedConstraint(t *testing.T) {
	// 3a + 2b + c ≥ 4: models are exactly those with a ∧ (b ∨ c) or b ∧ c...
	// enumerate by hand: a=1: need 2b+c ≥ 1 → (b,c) ≠ (0,0) → 3; a=0: 2b+c ≥ 4
	// is impossible (max 3) → 0. Total 3.
	st := NewStore(3)
	st.AddGE([]Term{{3, 1}, {2, 2}, {1, 3}}, 4)
	if n := countModels(t, st); n != 3 {
		t.Fatalf("models = %d, want 3", n)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	st := NewStore(2)
	st.AddClause()
	if !st.Unsat() {
		t.Fatal("empty clause should mark the store unsatisfiable")
	}
	if _, ok := st.Solve(); ok {
		t.Fatal("unsat store should have no model")
	}
	if n := countModels(t, st); n != 0 {
		t.Fatal("unsat store should enumerate nothing")
	}
}

func TestFromCNFMatchesSatOnFixed(t *testing.T) {
	cases := []sat.CNF{
		{NumVars: 0, Clauses: nil},                     // empty formula: trivially sat
		{NumVars: 2, Clauses: []sat.Clause{{1}, {-1}}}, // contradictory units
		{NumVars: 3, Clauses: []sat.Clause{{1, 2}, {-1, 3}, {-2, -3}}},
		{NumVars: 4, Clauses: []sat.Clause{{1}, {-1, 2}, {-2, 3}, {-3, 4}}}, // unit chain
	}
	for i, cnf := range cases {
		st := FromCNF(cnf)
		model, ok := st.Solve()
		_, wantOK := sat.Solve(cnf)
		if ok != wantOK {
			t.Fatalf("case %d: pbo sat = %v, sat.Solve = %v", i, ok, wantOK)
		}
		if ok && !cnf.Eval(model) {
			t.Fatalf("case %d: pbo model does not satisfy the CNF", i)
		}
	}
}

func TestFromCNFModelCountsMatchSat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		cnf := sat.Rand3CNF(rng, 1+rng.Intn(7), rng.Intn(12))
		st := FromCNF(cnf)
		got := countModels(t, st)
		want := sat.CountModels(cnf)
		if got != want {
			t.Fatalf("cnf %d (%v): pbo models = %d, sat.CountModels = %d", i, cnf, got, want)
		}
	}
}

func TestSolveAssume(t *testing.T) {
	st := NewStore(3)
	st.AddClause(1, 2)
	model, ok := st.SolveAssume([]int{-1})
	if !ok || model[1] != true {
		t.Fatalf("assuming ¬x1 should force x2: model=%v ok=%v", model, ok)
	}
	if _, ok := st.SolveAssume([]int{1, -1}); ok {
		t.Fatal("contradictory assumptions should be unsat")
	}
	if _, ok := st.SolveAssume([]int{9}); ok {
		t.Fatal("out-of-range assumption should be unsat")
	}
	if _, ok := st.SolveAssume([]int{1, 1}); !ok {
		t.Fatal("repeated assumption should be harmless")
	}
}

func TestObjectiveFloor(t *testing.T) {
	// Maximize 3a + 2b + c by enumeration with a rising floor: after seeing
	// the all-true model (value 6), raising the floor to 6 must cut every
	// other branch.
	st := NewStore(3)
	terms := []Term{{3, 1}, {2, 2}, {1, 3}}
	s := newSearch(st)
	s.installFloor(terms, -degClamp)
	var seen int
	var best int64
	err := s.enumerate(nil, nil, func(assign []int8) (bool, error) {
		seen++
		var v int64
		for _, tm := range terms {
			if assign[tm.Lit] > 0 {
				v += tm.Coef
			}
		}
		if v > best {
			best = v
			s.raiseFloorTo(v)
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if best != 6 {
		t.Fatalf("best = %d, want 6", best)
	}
	if seen >= 8 {
		t.Fatalf("floor raised to the optimum should cut branches; saw all %d models", seen)
	}
}

func TestFloorWithNegativeCoefficients(t *testing.T) {
	// Floor on -a - b ≥ -1 ⇔ at most one of a, b: 3 of 4 models qualify.
	st := NewStore(2)
	s := newSearch(st)
	s.installFloor([]Term{{-1, 1}, {-1, 2}}, -1)
	var n int
	if err := s.enumerate(nil, nil, func([]int8) (bool, error) {
		n++
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("models under floor = %d, want 3", n)
	}
}

func TestCountersAccumulate(t *testing.T) {
	var ctr Counters
	st := FromCNF(sat.CNF{NumVars: 3, Clauses: []sat.Clause{{1, 2}, {-1, 3}, {-2, -3}}})
	st.Counters = &ctr
	if _, ok := st.Solve(); !ok {
		t.Fatal("expected sat")
	}
	solves, decisions, _, _, _, _ := ctr.Snapshot()
	if solves != 1 {
		t.Fatalf("solves = %d, want 1", solves)
	}
	if decisions == 0 {
		t.Fatal("expected at least one decision")
	}
}

func TestSessionResumes(t *testing.T) {
	var ctr Counters
	st := FromCNF(sat.CNF{NumVars: 4, Clauses: []sat.Clause{{1, 2}, {3, 4}, {-1, -3}}})
	st.Counters = &ctr
	sess := NewSession(st)
	m1, ok1 := sess.Probe([]int{1}, "s")
	if !ok1 {
		t.Fatal("probe should be sat")
	}
	// Same probe: must resume, not re-solve.
	m2, ok2 := sess.Probe([]int{1}, "s")
	if !ok2 || !boolsEqual(m1, m2) {
		t.Fatal("resumed probe should return the memoised outcome")
	}
	if got := ctr.SessionResumes.Load(); got != 1 {
		t.Fatalf("resumes = %d, want 1", got)
	}
	if ctr.SessionDecisionsSaved.Load() == 0 {
		t.Fatal("resume should record saved decisions")
	}
	// A different salt is a different probe.
	if _, ok := sess.Probe([]int{1}, "other"); !ok {
		t.Fatal("salted probe should be sat")
	}
	if got := ctr.SessionResumes.Load(); got != 1 {
		t.Fatalf("salted probe must not resume; resumes = %d", got)
	}
	// Unsatisfiable probes memoise too.
	if _, ok := sess.Probe([]int{1, 3}, "s"); ok {
		t.Fatal("1 ∧ 3 violates the conflict clause")
	}
	if _, ok := sess.Probe([]int{3, 1}, "s"); ok {
		t.Fatal("assumption order must not matter")
	}
	if got := ctr.SessionResumes.Load(); got != 2 {
		t.Fatalf("resumes = %d, want 2", got)
	}
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLitIndexRoundTrip(t *testing.T) {
	for _, lit := range []int{1, -1, 2, -2, 17, -17} {
		if got := indexLit(litIndex(lit)); got != lit {
			t.Fatalf("indexLit(litIndex(%d)) = %d", lit, got)
		}
	}
}
