// Package gen produces deterministic synthetic workloads for the three
// application domains the paper motivates package recommendation with:
// travel planning (flights and points of interest, Example 1.1), course
// packages with prerequisites ([27, 28]), and team formation ([23]). The
// paper's referenced systems use proprietary data; these seeded generators
// exercise the same schemas and constraint shapes deterministically (see
// the Design notes in ARCHITECTURE.md).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// Cities used by the travel generator; edi/nyc/ewr anchor the Example 1.1
// and Example 7.1 scenarios.
var Cities = []string{"edi", "nyc", "ewr", "lhr", "cdg", "ams", "bos", "sfo", "gla", "dub"}

// POITypes used by the travel generator.
var POITypes = []string{"museum", "theater", "park", "gallery", "landmark"}

// Travel generates a travel database:
//
//	flight(fno, from, to, date, price, duration)
//	poi(name, city, type, ticket, time)
//
// with nFlights flights among Cities and nPOI points of interest. A direct
// edi → nyc flight is deliberately excluded so the Example 7.1 relaxation
// scenario holds, while edi → ewr flights always exist.
func Travel(seed int64, nFlights, nPOI int) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()

	flights := relation.NewRelation(relation.NewSchema("flight",
		"fno", "from", "to", "date", "price", "duration"))
	// Guaranteed anchors for the examples: edi → ewr and gla → nyc.
	anchors := [][2]string{{"edi", "ewr"}, {"gla", "nyc"}}
	for i := 0; i < nFlights; i++ {
		var from, to string
		if i < len(anchors) {
			from, to = anchors[i][0], anchors[i][1]
		} else {
			from = Cities[rng.Intn(len(Cities))]
			to = Cities[rng.Intn(len(Cities))]
			for to == from || (from == "edi" && to == "nyc") {
				to = Cities[rng.Intn(len(Cities))]
			}
		}
		tuple := relation.NewTuple(
			relation.Int(int64(100+i)),
			relation.Str(from),
			relation.Str(to),
			relation.Int(int64(1+rng.Intn(28))),
			relation.Int(int64(60+rng.Intn(900))),
			relation.Int(int64(60+rng.Intn(600))))
		if err := flights.Insert(tuple); err != nil {
			panic(err)
		}
	}
	db.Add(flights)

	pois := relation.NewRelation(relation.NewSchema("poi",
		"name", "city", "type", "ticket", "time"))
	for i := 0; i < nPOI; i++ {
		city := Cities[rng.Intn(len(Cities))]
		if i < 4 {
			city = "nyc" // the examples visit nyc
		}
		tuple := relation.NewTuple(
			relation.Str(fmt.Sprintf("poi%03d", i)),
			relation.Str(city),
			relation.Str(POITypes[rng.Intn(len(POITypes))]),
			relation.Int(int64(rng.Intn(60))),
			relation.Int(int64(30+rng.Intn(240))))
		if err := pois.Insert(tuple); err != nil {
			panic(err)
		}
	}
	db.Add(pois)
	return db
}

// Courses generates a course catalogue with an acyclic prerequisite graph:
//
//	course(cid, credits, rating)
//	prereq(cid, requires)
//
// Course i may require only lower-numbered courses, so the graph is a DAG.
func Courses(seed int64, nCourses, maxPrereqs int) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()

	courses := relation.NewRelation(relation.NewSchema("course", "cid", "credits", "rating"))
	for i := 0; i < nCourses; i++ {
		if err := courses.Insert(relation.NewTuple(
			relation.Int(int64(i+1)),
			relation.Int(int64(1+rng.Intn(4))),
			relation.Int(int64(1+rng.Intn(10))))); err != nil {
			panic(err)
		}
	}
	db.Add(courses)

	prereqs := relation.NewRelation(relation.NewSchema("prereq", "cid", "requires"))
	for i := 2; i <= nCourses; i++ {
		n := rng.Intn(maxPrereqs + 1)
		for j := 0; j < n; j++ {
			req := 1 + rng.Intn(i-1)
			if err := prereqs.Insert(relation.Ints(int64(i), int64(req))); err != nil {
				panic(err)
			}
		}
	}
	db.Add(prereqs)
	return db
}

// Skills used by the team generator.
var Skills = []string{"db", "ml", "systems", "theory", "frontend", "security"}

// Team generates an expert pool with pairwise conflicts:
//
//	expert(eid, skill, cost, rating)
//	conflict(a, b)
//
// Conflicts are symmetric and irreflexive; conflictRate in [0, 1] controls
// their density.
func Team(seed int64, nExperts int, conflictRate float64) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()

	experts := relation.NewRelation(relation.NewSchema("expert", "eid", "skill", "cost", "rating"))
	for i := 0; i < nExperts; i++ {
		if err := experts.Insert(relation.NewTuple(
			relation.Int(int64(i+1)),
			relation.Str(Skills[i%len(Skills)]),
			relation.Int(int64(10+rng.Intn(90))),
			relation.Int(int64(1+rng.Intn(10))))); err != nil {
			panic(err)
		}
	}
	db.Add(experts)

	conflicts := relation.NewRelation(relation.NewSchema("conflict", "a", "b"))
	for i := 1; i <= nExperts; i++ {
		for j := i + 1; j <= nExperts; j++ {
			if rng.Float64() < conflictRate {
				if err := conflicts.Insert(relation.Ints(int64(i), int64(j))); err != nil {
					panic(err)
				}
				if err := conflicts.Insert(relation.Ints(int64(j), int64(i))); err != nil {
					panic(err)
				}
			}
		}
	}
	db.Add(conflicts)
	return db
}

// CityDistances returns the distance table used by the travel relaxation
// examples (Example 7.1): nyc is 12 miles from ewr and 10 from jfk.
func CityDistances() map[[2]string]float64 {
	return map[[2]string]float64{
		{"nyc", "ewr"}: 12,
		{"nyc", "jfk"}: 10,
		{"edi", "gla"}: 42,
		{"lhr", "cdg"}: 214,
	}
}
