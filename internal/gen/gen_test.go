package gen

import (
	"testing"

	"repro/internal/relation"
)

func TestTravelDeterministic(t *testing.T) {
	a := Travel(7, 20, 15)
	b := Travel(7, 20, 15)
	for _, name := range a.Names() {
		if !a.Relation(name).Equal(b.Relation(name)) {
			t.Fatalf("relation %s differs across identical seeds", name)
		}
	}
	c := Travel(8, 20, 15)
	same := true
	for _, name := range a.Names() {
		if !a.Relation(name).Equal(c.Relation(name)) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical databases")
	}
}

func TestTravelInvariants(t *testing.T) {
	db := Travel(1, 30, 20)
	flights := db.Relation("flight")
	if flights.Len() == 0 || db.Relation("poi").Len() == 0 {
		t.Fatal("empty workload")
	}
	ediEwr := false
	for _, f := range flights.Tuples() {
		from, to := f[1].Text(), f[2].Text()
		if from == "edi" && to == "nyc" {
			t.Fatal("generator must not create a direct edi → nyc flight (Example 7.1)")
		}
		if from == to {
			t.Fatal("self-loop flight generated")
		}
		if from == "edi" && to == "ewr" {
			ediEwr = true
		}
		if f[4].Int64() <= 0 || f[5].Int64() <= 0 {
			t.Fatal("non-positive price or duration")
		}
	}
	if !ediEwr {
		t.Fatal("anchor flight edi → ewr missing")
	}
	nyc := 0
	for _, p := range db.Relation("poi").Tuples() {
		if p[1].Text() == "nyc" {
			nyc++
		}
	}
	if nyc < 4 {
		t.Fatalf("expected at least 4 nyc POIs, got %d", nyc)
	}
}

func TestCoursesPrereqDAG(t *testing.T) {
	db := Courses(3, 12, 3)
	if db.Relation("course").Len() != 12 {
		t.Fatalf("courses = %d", db.Relation("course").Len())
	}
	for _, p := range db.Relation("prereq").Tuples() {
		if p[1].Int64() >= p[0].Int64() {
			t.Fatalf("prerequisite edge %v not descending: cycle possible", p)
		}
	}
}

func TestTeamConflictsSymmetric(t *testing.T) {
	db := Team(5, 10, 0.3)
	conf := db.Relation("conflict")
	for _, c := range conf.Tuples() {
		if c[0].Equal(c[1]) {
			t.Fatalf("reflexive conflict %v", c)
		}
		if !conf.Contains(relation.NewTuple(c[1], c[0])) {
			t.Fatalf("conflict %v missing its symmetric pair", c)
		}
	}
	if db.Relation("expert").Len() != 10 {
		t.Fatal("wrong expert count")
	}
}

func TestTeamConflictRateZero(t *testing.T) {
	db := Team(5, 8, 0)
	if db.Relation("conflict").Len() != 0 {
		t.Fatal("zero conflict rate should yield no conflicts")
	}
}

func TestCityDistancesAnchors(t *testing.T) {
	d := CityDistances()
	if d[[2]string{"nyc", "ewr"}] != 12 {
		t.Fatal("nyc-ewr distance must stay 12 (Example 7.1 depends on it)")
	}
}
