package reductions

import (
	"math/rand"
	"testing"

	"repro/internal/adjust"
	"repro/internal/core"
	"repro/internal/relax"
	"repro/internal/sat"
)

// The cross-validation tests run every reduction against the direct solvers
// of internal/sat on streams of seeded random instances: the executable
// analogue of the paper's correctness proofs. Instances are kept small —
// the engines are deliberately exponential.

func TestLemma42CompatibilityFromEFDNF(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 25; i++ {
		f := sat.RandEFDNF(rng, 2+rng.Intn(2), 2+rng.Intn(2), 1+rng.Intn(4))
		ci := CompatFromEFDNF(f)
		got, err := ci.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if want := f.Decide(); got != want {
			t.Fatalf("instance %d (%v): compatibility = %v, ∃∀DNF = %v", i, f.Psi, got, want)
		}
	}
}

func TestTheorem41RPPFromEFDNF(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 20; i++ {
		f := sat.RandEFDNF(rng, 2, 2, 1+rng.Intn(4))
		prob, sel := RPPFromEFDNF(f)
		got, _, err := prob.DecideTopK(sel)
		if err != nil {
			t.Fatal(err)
		}
		// {∅} is top-1 iff ϕ is FALSE (reduction from the complement).
		if want := !f.Decide(); got != want {
			t.Fatalf("instance %d: RPP = %v, ¬ϕ = %v", i, got, want)
		}
	}
}

func TestLemma44CompatibilityFrom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 30; i++ {
		c := sat.Rand3CNF(rng, 3+rng.Intn(3), 1+rng.Intn(4))
		ci := CompatFrom3SAT(c)
		got, err := ci.Decide()
		if err != nil {
			t.Fatal(err)
		}
		if want := sat.Satisfiable(c); got != want {
			t.Fatalf("instance %d (%v): compatibility = %v, SAT = %v", i, c, got, want)
		}
	}
}

func TestTheorem43RPPFrom3SATDataComplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 20; i++ {
		c := sat.Rand3CNF(rng, 3+rng.Intn(3), 1+rng.Intn(4))
		prob, sel := RPPFrom3SAT(c)
		got, _, err := prob.DecideTopK(sel)
		if err != nil {
			t.Fatal(err)
		}
		if want := !sat.Satisfiable(c); got != want {
			t.Fatalf("instance %d: RPP = %v, ¬SAT = %v", i, got, want)
		}
	}
}

func TestTheorem45RPPFromSATUNSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for i := 0; i < 20; i++ {
		p := sat.RandPair(rng, 3, 2+rng.Intn(4), 3, 2+rng.Intn(4))
		prob, sel := RPPFromSATUNSAT(p)
		got, _, err := prob.DecideTopK(sel)
		if err != nil {
			t.Fatal(err)
		}
		if want := p.Decide(); got != want {
			t.Fatalf("instance %d: RPP = %v, SAT-UNSAT = %v", i, got, want)
		}
	}
}

func TestTheorem51FRPFromMaxWeightSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 25; i++ {
		nc := 1 + rng.Intn(4)
		c := sat.Rand3CNF(rng, 3+rng.Intn(3), nc)
		ws := sat.RandWeights(rng, nc, 10)
		prob := FRPFromMaxWeightSAT(c, ws)
		sel, ok, err := prob.FindTopK()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("instance %d: FRP found nothing (some clause is always satisfiable)", i)
		}
		got := prob.Val.Eval(sel[0])
		if want := float64(sat.BestWeight(c.Clauses, ws, c.NumVars)); got != want {
			t.Fatalf("instance %d: FRP optimum = %g, MAX-WEIGHT SAT = %g", i, got, want)
		}
	}
}

func TestTheorem51OracleAlgorithmAgrees(t *testing.T) {
	// The binary-search + oracle algorithm from the Theorem 5.1 upper-bound
	// proof must find the same optimum as exhaustive search.
	rng := rand.New(rand.NewSource(510))
	for i := 0; i < 8; i++ {
		nc := 1 + rng.Intn(3)
		c := sat.Rand3CNF(rng, 3, nc)
		ws := sat.RandWeights(rng, nc, 10)
		prob := FRPFromMaxWeightSAT(c, ws)
		want, wantOK, err := prob.FindTopK()
		if err != nil {
			t.Fatal(err)
		}
		var hi int64
		for _, w := range ws {
			hi += w
		}
		got, ok, err := prob.FindTopKViaOracle(0, hi)
		if err != nil {
			t.Fatal(err)
		}
		if ok != wantOK {
			t.Fatalf("instance %d: oracle ok=%v exhaustive ok=%v", i, ok, wantOK)
		}
		if ok && prob.Val.Eval(got[0]) != prob.Val.Eval(want[0]) {
			t.Fatalf("instance %d: oracle val %g, exhaustive val %g",
				i, prob.Val.Eval(got[0]), prob.Val.Eval(want[0]))
		}
	}
}

func TestTheorem52MBPFromSATUNSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for i := 0; i < 15; i++ {
		p := sat.RandPair(rng, 3, 1+rng.Intn(2), 3, 1+rng.Intn(2))
		prob, b := MBPFromSATUNSAT(p)
		got, err := prob.IsMaxBound(b)
		if err != nil {
			t.Fatal(err)
		}
		if want := p.Decide(); got != want {
			t.Fatalf("instance %d: MBP = %v, SAT-UNSAT = %v (ϕ1 %v, ϕ2 %v)",
				i, got, want, p.Phi1, p.Phi2)
		}
	}
}

func TestTheorem53CPPFrom3SATParsimonious(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 25; i++ {
		c := sat.Rand3CNF(rng, 3+rng.Intn(3), 1+rng.Intn(4))
		prob, b := CPPFrom3SAT(c)
		got, err := prob.CountValid(b)
		if err != nil {
			t.Fatal(err)
		}
		// Valid packages biject with satisfying assignments of the
		// occurring variables.
		if want := sat.CountModels(c.Compact()); got != want {
			t.Fatalf("instance %d (%v): CPP = %d, #SAT = %d", i, c, got, want)
		}
	}
}

func TestTheorem53CPPFromSigma1(t *testing.T) {
	rng := rand.New(rand.NewSource(531))
	for i := 0; i < 15; i++ {
		nx, ny := 2, 2+rng.Intn(2)
		phi := sat.Rand3CNF(rng, nx+ny, 1+rng.Intn(4))
		prob, b := CPPFromSigma1(phi, nx, ny)
		got, err := prob.CountValid(b)
		if err != nil {
			t.Fatal(err)
		}
		if want := sat.CountSigma1(phi, nx, ny); got != want {
			t.Fatalf("instance %d: CPP = %d, #Σ1SAT = %d", i, got, want)
		}
	}
}

func TestTheorem53CPPFromPi1(t *testing.T) {
	rng := rand.New(rand.NewSource(532))
	for i := 0; i < 15; i++ {
		nx, ny := 2, 2+rng.Intn(2)
		psi := sat.Rand3DNF(rng, nx+ny, 1+rng.Intn(4))
		prob, b := CPPFromPi1(psi, nx, ny)
		got, err := prob.CountValid(b)
		if err != nil {
			t.Fatal(err)
		}
		if want := sat.CountPi1(psi, nx, ny); got != want {
			t.Fatalf("instance %d: CPP = %d, #Π1SAT = %d", i, got, want)
		}
	}
}

func TestTheorem64ItemFRPFromMaxWeightSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for i := 0; i < 20; i++ {
		nc := 1 + rng.Intn(4)
		c := sat.Rand3CNF(rng, 3+rng.Intn(2), nc)
		ws := sat.RandWeights(rng, nc, 10)
		db, q, util := ItemFRPFromMaxWeightSAT(c, ws)
		items, ok, err := core.TopKItems(db, q, util, 1)
		if err != nil || !ok {
			t.Fatalf("instance %d: TopKItems ok=%v err=%v", i, ok, err)
		}
		if got, want := util(items[0]), float64(sat.BestWeight(c.Clauses, ws, c.NumVars)); got != want {
			t.Fatalf("instance %d: item FRP = %g, MAX-WEIGHT SAT = %g", i, got, want)
		}
	}
}

func TestTheorem64ItemMBPFromSATUNSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(641))
	for i := 0; i < 20; i++ {
		p := sat.RandPair(rng, 3, 2+rng.Intn(3), 3, 2+rng.Intn(3))
		db, q, util, b := ItemMBPFromSATUNSAT(p)
		prob := core.ItemProblem(db, q, util, 1)
		got, err := prob.IsMaxBound(b)
		if err != nil {
			t.Fatal(err)
		}
		if want := p.Decide(); got != want {
			t.Fatalf("instance %d: item MBP = %v, SAT-UNSAT = %v", i, got, want)
		}
	}
}

func TestTheorem72QRPPFrom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for i := 0; i < 15; i++ {
		c := sat.Rand3CNF(rng, 3+rng.Intn(2), 1+rng.Intn(3))
		inst, err := QRPPFrom3SAT(c)
		if err != nil {
			t.Fatal(err)
		}
		rel, got, err := relax.Decide(inst)
		if err != nil {
			t.Fatal(err)
		}
		if want := sat.Satisfiable(c); got != want {
			t.Fatalf("instance %d (%v): QRPP = %v, SAT = %v", i, c, got, want)
		}
		if got && rel.Gap != 1 {
			t.Fatalf("instance %d: witness gap = %g, want 1 (flip V = 0 to V ≤ 1 flip)", i, rel.Gap)
		}
	}
}

func TestTheorem72QRPPOriginalQueryEmpty(t *testing.T) {
	c := sat.Rand3CNF(rand.New(rand.NewSource(720)), 3, 2)
	inst, err := QRPPFrom3SAT(c)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := inst.Problem.Q.Eval(inst.Problem.DB)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 0 {
		t.Fatalf("the unrelaxed query must be empty, got %d rows", ans.Len())
	}
}

func TestTheorem81ARPPFromEFDNF(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for i := 0; i < 10; i++ {
		f := sat.RandEFDNF(rng, 2, 2, 1+rng.Intn(3))
		inst := ARPPFromEFDNF(f)
		delta, got, err := adjust.Decide(inst)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.Decide(); got != want {
			t.Fatalf("instance %d (%v): ARPP = %v, ∃∀DNF = %v", i, f.Psi, got, want)
		}
		if got {
			// The minimum adjustment inserts both Boolean values.
			if delta.Size() != 2 {
				t.Fatalf("instance %d: |Δ| = %d, want 2 (%v)", i, delta.Size(), delta)
			}
			for _, e := range delta.Edits {
				if !e.Insert {
					t.Fatalf("instance %d: unexpected deletion in %v", i, delta)
				}
			}
		}
	}
}

func TestCorollary82ItemARPPFrom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for i := 0; i < 8; i++ {
		// Compact so every variable occurs in ϕ — the reduction's
		// precondition (see the ItemARPPFrom3SAT comment).
		c := sat.Rand3CNF(rng, 3, 1+rng.Intn(2)).Compact()
		inst, _ := ItemARPPFrom3SAT(c)
		_, got, err := adjust.Decide(inst)
		if err != nil {
			t.Fatal(err)
		}
		if want := sat.Satisfiable(c); got != want {
			t.Fatalf("instance %d (%v): item ARPP = %v, SAT = %v", i, c, got, want)
		}
	}
}

func TestClauseRowsShape(t *testing.T) {
	rows := clauseRows(1, sat.Clause{1, -2, 3}, xName)
	if len(rows) != 7 {
		t.Fatalf("a 3-literal clause has 7 satisfying rows, got %d", len(rows))
	}
	for _, r := range rows {
		if len(r) != 7 {
			t.Fatalf("row arity = %d, want 7", len(r))
		}
		if r[0].Int64() != 1 {
			t.Fatalf("cid = %v, want 1", r[0])
		}
	}
}

func TestConsistencyCostCases(t *testing.T) {
	cost := consistencyCost()
	rows := clauseRows(1, sat.Clause{1, 2, 3}, xName)
	rows2 := clauseRows(2, sat.Clause{-1, 2, 4}, xName)
	// Single row: consistent.
	if cost.Eval(core.NewPackage(rows[0])) != 1 {
		t.Fatal("single row should be consistent")
	}
	// Two rows, same cid: cost 2.
	if cost.Eval(core.NewPackage(rows[0], rows[1])) != 2 {
		t.Fatal("duplicate cid should cost 2")
	}
	// Rows from different clauses agreeing on shared variables: find a
	// consistent pair by brute force and a conflicting one too.
	foundConsistent, foundConflict := false, false
	for _, a := range rows {
		for _, b := range rows2 {
			v := cost.Eval(core.NewPackage(a, b))
			if v == 1 {
				foundConsistent = true
			}
			if v == 2 {
				foundConflict = true
			}
		}
	}
	if !foundConsistent || !foundConflict {
		t.Fatalf("expected both consistent and conflicting pairs (consistent=%v conflict=%v)",
			foundConsistent, foundConflict)
	}
}
