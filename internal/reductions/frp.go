package reductions

import (
	"repro/internal/boolenc"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sat"
)

// FRPFromMaxWeightSAT is the Theorem 5.1 data-complexity reduction from
// MAX-WEIGHT SAT to the function problem FRP with a fixed identity query:
// the clause relation of Lemma 4.4 with the consistency cost, and
// val(N) = Σ weights of the cids of N's rows. The top-1 package encodes a
// (partial) truth assignment maximising the total weight of satisfied
// clauses, so val(top-1) equals the MAX-WEIGHT SAT optimum.
func FRPFromMaxWeightSAT(c sat.CNF, weights []int64) *core.Problem {
	db := clauseDB("RC", c, xName)
	ws := append([]int64(nil), weights...)
	val := core.Func("weightVal", func(p core.Package) float64 {
		var s float64
		for _, t := range p.Tuples() {
			s += float64(ws[t[0].Int64()-1])
		}
		return s
	})
	return &core.Problem{
		DB:     db,
		Q:      query.Identity("RQ", db.Relation("RC")),
		Cost:   consistencyCost(),
		Val:    val,
		Budget: 1,
		K:      1,
		Prune:  consistencyPrune(),
	}
}

// weightUtility rates an assignment item (attribute i holds the value of
// variable xi) by the summed weight of the clauses it satisfies.
func weightUtility(clauses []sat.Clause, ws []int64) core.Utility {
	return func(tup relation.Tuple) float64 {
		assign := make([]bool, len(tup))
		for i, v := range tup {
			assign[i] = v.Int64() == 1
		}
		var s float64
		for ci, cl := range clauses {
			for _, lit := range cl {
				if sat.LitSatisfied(lit, assign) {
					s += float64(ws[ci])
					break
				}
			}
		}
		return s
	}
}

// ItemFRPFromMaxWeightSAT is the Theorem 6.4 reduction from MAX-WEIGHT SAT
// to item FRP for CQ: Q = R01^m generates all truth assignments as items,
// and an item's utility is the summed weight of the clauses its assignment
// satisfies. The top-1 item achieves the MAX-WEIGHT SAT optimum.
func ItemFRPFromMaxWeightSAT(c sat.CNF, weights []int64) (*relation.Database, query.Query, core.Utility) {
	db := boolenc.NewDB()
	xs := boolenc.VarNames("x", c.NumVars)
	q := query.NewCQ("RQ", varTerms(xs), boolenc.AssignmentAtoms(xs)...)
	return db, q, weightUtility(append([]sat.Clause(nil), c.Clauses...), append([]int64(nil), weights...))
}

// ItemMBPFromSATUNSAT is the Theorem 6.4 reduction from SAT-UNSAT to item
// MBP for CQ: Q = R01^(m+n) generates assignments of X ∪ Y, and the utility
// is 2 when the Y part satisfies ϕ2, otherwise 1 when the X part satisfies
// ϕ1, otherwise 0. B = 1 is the maximum bound iff ϕ1 is satisfiable and ϕ2
// is not. (The paper's case split rates "any other tuple" 2, under which
// the stated equivalence cannot hold; this ordering repairs it — see the
// Design notes in ARCHITECTURE.md.)
func ItemMBPFromSATUNSAT(p sat.Pair) (*relation.Database, query.Query, core.Utility, float64) {
	db := boolenc.NewDB()
	m, n := p.Phi1.NumVars, p.Phi2.NumVars
	vars := append(boolenc.VarNames("x", m), boolenc.VarNames("y", n)...)
	q := query.NewCQ("RQ", varTerms(vars), boolenc.AssignmentAtoms(vars)...)
	phi1, phi2 := p.Phi1, p.Phi2
	util := core.Utility(func(tup relation.Tuple) float64 {
		ax := make([]bool, m)
		for i := 0; i < m; i++ {
			ax[i] = tup[i].Int64() == 1
		}
		ay := make([]bool, n)
		for i := 0; i < n; i++ {
			ay[i] = tup[m+i].Int64() == 1
		}
		switch {
		case phi2.Eval(ay):
			return 2
		case phi1.Eval(ax):
			return 1
		default:
			return 0
		}
	})
	return db, q, util, 1
}
