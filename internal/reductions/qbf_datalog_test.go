package reductions

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// bruteQBFWitnesses counts free-variable assignments (the first nf
// variables) under which the quantified suffix holds.
func bruteQBFWitnesses(matrix sat.CNF, prefix []sat.Quantifier, nf int) int64 {
	var count int64
	free := make([]bool, nf)
	for {
		restricted := matrix.Restrict(free)
		sub := sat.QBF{Prefix: prefix, Matrix: restricted}
		if sub.Decide() {
			count++
		}
		if !incrementBools(free) {
			return count
		}
	}
}

func incrementBools(bits []bool) bool {
	for i := len(bits) - 1; i >= 0; i-- {
		if !bits[i] {
			bits[i] = true
			return true
		}
		bits[i] = false
	}
	return false
}

func TestTheorem53CPPFromQBF(t *testing.T) {
	rng := rand.New(rand.NewSource(530))
	for i := 0; i < 15; i++ {
		nf := 1 + rng.Intn(2)
		nq := 2 + rng.Intn(2)
		matrix := sat.Rand3CNF(rng, nf+nq, 1+rng.Intn(4))
		prefix := make([]sat.Quantifier, nq)
		for j := range prefix {
			if rng.Intn(2) == 0 {
				prefix[j] = sat.QForall
			} else {
				prefix[j] = sat.QExists
			}
		}
		prob, b, err := CPPFromQBF(matrix, prefix, nf)
		if err != nil {
			t.Fatal(err)
		}
		if prob.Q.Language().String() != "DATALOGnr" {
			t.Fatalf("instance %d: program classifies as %v", i, prob.Q.Language())
		}
		got, err := prob.CountValid(b)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteQBFWitnesses(matrix, prefix, nf); got != want {
			t.Fatalf("instance %d: CPP = %d, #QBF witnesses = %d\nmatrix: %v prefix: %v",
				i, got, want, matrix, prefix)
		}
	}
}

func TestTheorem41RPPFromQ3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(410))
	sawTrue, sawFalse := false, false
	for i := 0; i < 15; i++ {
		q := sat.RandQBF(rng, 3+rng.Intn(2), 1+rng.Intn(5))
		prob, sel, err := RPPFromQ3SAT(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := prob.DecideTopK(sel)
		if err != nil {
			t.Fatal(err)
		}
		want := q.Decide()
		if got != want {
			t.Fatalf("instance %d: RPP = %v, QBF = %v (%v)", i, got, want, q.Matrix)
		}
		if want {
			sawTrue = true
		} else {
			sawFalse = true
		}
	}
	if !sawTrue || !sawFalse {
		t.Fatalf("instance stream degenerate: true=%v false=%v", sawTrue, sawFalse)
	}
}

func TestQBFDatalogQueryValidation(t *testing.T) {
	matrix := sat.CNF{NumVars: 2, Clauses: []sat.Clause{{1, 2}}}
	if _, err := QBFDatalogQuery(matrix, []sat.Quantifier{sat.QExists}, 0); err == nil {
		t.Fatal("prefix/variable count mismatch should error")
	}
}
