package reductions

import (
	"math/rand"
	"testing"

	"repro/internal/boolenc"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/relax"
	"repro/internal/sat"
)

func TestTheorem72CombinedQRPPFromEFDNF(t *testing.T) {
	rng := rand.New(rand.NewSource(721))
	for i := 0; i < 15; i++ {
		f := sat.RandEFDNF(rng, 2, 2, 1+rng.Intn(3))
		inst, err := QRPPFromEFDNF(f)
		if err != nil {
			t.Fatal(err)
		}
		rel, got, err := relax.Decide(inst)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.Decide(); got != want {
			t.Fatalf("instance %d (%v): QRPP = %v, ∃∀DNF = %v", i, f.Psi, got, want)
		}
		if got && rel.Gap != 1 {
			t.Fatalf("instance %d: witness gap = %g, want 1", i, rel.Gap)
		}
	}
}

func TestTheorem72CombinedOriginalInfeasible(t *testing.T) {
	f := sat.RandEFDNF(rand.New(rand.NewSource(7210)), 2, 2, 2)
	inst, err := QRPPFromEFDNF(f)
	if err != nil {
		t.Fatal(err)
	}
	// With gap budget 0 the original query admits no rated package, true
	// or false alike.
	inst.GapBudget = 0
	_, ok, err := relax.Decide(inst)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("the unrelaxed instance must be infeasible (all flags are 0)")
	}
}

func TestMembershipInstanceDatalog(t *testing.T) {
	// Transitive closure on a path: (1, n) is in TC, (n, 1) is not.
	const n = 5
	db := relation.NewDatabase()
	edges := relation.NewRelation(relation.NewSchema("E", "s", "d"))
	for i := 1; i < n; i++ {
		if err := edges.Insert(relation.Ints(int64(i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	db.Add(edges)
	tc := query.NewDatalog("TC",
		query.NewRule(query.Rel("TC", query.V("x"), query.V("y")), query.Rel("E", query.V("x"), query.V("y"))),
		query.NewRule(query.Rel("TC", query.V("x"), query.V("z")),
			query.Rel("E", query.V("x"), query.V("y")), query.Rel("TC", query.V("y"), query.V("z"))))

	prob, sel := MembershipInstance(tc, db, relation.Ints(1, n))
	ok, _, err := prob.DecideTopK(sel)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("(1, n) ∈ TC should make {t} a top-1 selection")
	}
	prob2, sel2 := MembershipInstance(tc, db, relation.Ints(n, 1))
	ok, _, err = prob2.DecideTopK(sel2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("(n, 1) ∉ TC should reject the selection")
	}
}

func TestMembershipInstanceFO(t *testing.T) {
	db := boolenc.NewDB()
	// Q(x) := R01(x) & !(x = 0): membership of (1) holds, (0) does not.
	q := query.NewFO("RQ", []query.Term{query.V("x")},
		query.And(query.Atomf(query.Rel(boolenc.R01Name, query.V("x"))),
			query.Not(query.Atomf(query.Eq(query.V("x"), query.CI(0))))))
	prob, sel := MembershipInstance(q, db, relation.Ints(1))
	ok, _, err := prob.DecideTopK(sel)
	if err != nil || !ok {
		t.Fatalf("(1) should be a member: %v %v", ok, err)
	}
	prob2, sel2 := MembershipInstance(q, db, relation.Ints(0))
	ok, _, err = prob2.DecideTopK(sel2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("(0) is not a member")
	}
}
