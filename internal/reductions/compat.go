package reductions

import (
	"repro/internal/boolenc"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/sat"
)

// CompatInstance is an instance of the compatibility problem (Lemma 4.2):
// given Q, D, Qc, cost(), val(), C and a constant B, does a non-empty
// N ⊆ Q(D) exist with cost(N) ≤ C, val(N) > B and Qc(N, D) = ∅?
type CompatInstance struct {
	Problem *core.Problem
	B       float64
}

// Decide answers the compatibility problem by bounded exhaustive search.
func (ci CompatInstance) Decide() (bool, error) {
	found := false
	err := ci.Problem.EnumerateValid(func(p core.Package) (bool, error) {
		if ci.Problem.Val.Eval(p) > ci.B {
			found = true
			return false, nil
		}
		return true, nil
	})
	return found, err
}

// CompatFromEFDNF is the Lemma 4.2 reduction: given ϕ = ∃X ∀Y ψ(X, Y) with
// ψ in 3DNF, it builds (Q, D, Qc, cost, val, C, B) over the Figure 4.1
// gadget relations such that ϕ is true iff the compatibility problem
// answers yes.
//
//   - Q(x⃗) = R01(x0) ∧ ... ∧ R01(x_{m-1}) generates all X assignments;
//   - Qc = ∃x⃗ ∃y⃗ (RQ(x⃗) ∧ QY(y⃗) ∧ Qψ(x⃗, y⃗, b) ∧ b = 0) flags a package
//     (an X assignment) for which some Y assignment falsifies ψ;
//   - cost(N) = |N| (∞ on ∅), C = 1, val ≡ 1, B = 0.
func CompatFromEFDNF(f sat.EFDNF) CompatInstance {
	db := boolenc.NewDB()
	xs := boolenc.VarNames("x", f.NX)
	ys := boolenc.VarNames("y", f.NY)

	q := query.NewCQ("RQ", varTerms(xs), boolenc.AssignmentAtoms(xs)...)

	// Qc: match the package tuple, generate Y, compute ψ, demand ψ = 0.
	comp := &boolenc.Compiler{}
	psi := boolenc.DNFFormula(lits(f.Psi.Terms), blockName(f.NX))
	out := comp.Compile(psi)
	comp.AssertEq(out, false)
	body := []query.Atom{query.Rel("RQ", varTerms(xs)...)}
	body = append(body, boolenc.AssignmentAtoms(ys)...)
	body = append(body, comp.Atoms()...)
	qc := query.NewCQ("Qc", nil, body...)

	prob := &core.Problem{
		DB:     db,
		Q:      q,
		Qc:     qc,
		Cost:   core.CountOrInf(),
		Val:    core.ConstAgg(1),
		Budget: 1,
		K:      1,
	}
	return CompatInstance{Problem: prob, B: 0}
}

// RPPFromEFDNF is the Theorem 4.1 reduction from the complement of the
// compatibility problem to RPP: the candidate selection N = {∅} ("no
// recommendation", rated val′(∅) = B) is a top-1 package selection iff no
// non-empty valid package rates above B, i.e. iff ϕ is false. Following the
// repair recorded in ARCHITECTURE.md's Design notes, cost′(∅) = 0 so the
// placeholder is itself admissible.
func RPPFromEFDNF(f sat.EFDNF) (*core.Problem, []core.Package) {
	ci := CompatFromEFDNF(f)
	prob := *ci.Problem
	b := ci.B
	prob.Cost = core.Func("costOrEmpty", func(p core.Package) float64 {
		if p.IsEmpty() {
			return 0
		}
		return float64(p.Len())
	}).WithMonotone()
	inner := ci.Problem.Val
	prob.Val = core.Func("valOrB", func(p core.Package) float64 {
		if p.IsEmpty() {
			return b
		}
		return inner.Eval(p)
	})
	return &prob, []core.Package{core.NewPackage()}
}

// CompatFrom3SAT is the Lemma 4.4 reduction (the data-complexity analysis
// of Theorem 4.3): Q is the fixed identity query over the clause relation
// RC, Qc is absent, val(N) = |N| with B = r − 1, and cost(N) ∈ {1, 2}
// checks cid-uniqueness and assignment consistency with C = 1. The formula
// is satisfiable iff a valid package of r consistent rows exists.
func CompatFrom3SAT(c sat.CNF) CompatInstance {
	db := clauseDB("RC", c, xName)
	prob := &core.Problem{
		DB:     db,
		Q:      query.Identity("RQ", db.Relation("RC")),
		Cost:   consistencyCost(),
		Val:    core.Count(),
		Budget: 1,
		K:      1,
		Prune:  consistencyPrune(),
	}
	return CompatInstance{Problem: prob, B: float64(len(c.Clauses) - 1)}
}

// RPPFrom3SAT lifts CompatFrom3SAT to an RPP instance exactly as
// RPPFromEFDNF does: the empty placeholder selection is top-1 iff ϕ is
// unsatisfiable. Q stays fixed, so this witnesses coNP-hardness of RPP's
// data complexity.
func RPPFrom3SAT(c sat.CNF) (*core.Problem, []core.Package) {
	ci := CompatFrom3SAT(c)
	prob := *ci.Problem
	b := ci.B
	inner := prob.Cost
	prob.Cost = core.Func("costOrEmpty", func(p core.Package) float64 {
		if p.IsEmpty() {
			return 0
		}
		return inner.Eval(p)
	})
	innerVal := prob.Val
	prob.Val = core.Func("valOrB", func(p core.Package) float64 {
		if p.IsEmpty() {
			return b
		}
		return innerVal.Eval(p)
	})
	return &prob, []core.Package{core.NewPackage()}
}

// varTerms converts variable names to head/argument terms.
func varTerms(vars []string) []query.Term {
	out := make([]query.Term, len(vars))
	for i, v := range vars {
		out[i] = query.V(v)
	}
	return out
}
