package reductions

import (
	"repro/internal/boolenc"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/sat"
)

// MBPFromEFDNFPair is the Theorem 5.2 combined-complexity reduction from
// the Dp2-complete pair problem ∃*∀*3DNF–∀*∃*3CNF to MBP(CQ): given two
// ∃X∀Y 3DNF sentences ϕ1 and ϕ2, it builds (Q, D, Qc, cost, val, C, B, k)
// over the Figure 4.1 gadgets plus the inspection relation Ic such that
// B = 1 is the maximum bound iff ϕ1 is true and ϕ2 is false.
//
// Construction (Section 5.1):
//
//   - Q(x⃗1, b1, x⃗2, b2) generates X1/X2 assignments together with the truth
//     values ψ1 and ψ2 take under existentially chosen Y1/Y2 assignments,
//     so Q(D) realises every achievable (µX1, b1, µX2, b2) combination;
//   - Qc matches the package tuple, recomputes c1 = ψ1(x⃗1, y⃗1') for a fresh
//     universal Y1 probe, checks some Y2 probe reproduces b2, checks some
//     other Y2 probe falsifies ψ2 (the query Q'ψ2 with c2 = 0), and finally
//     demands Ic(c1, b2, c) with c = 1 — by Ic's truth table the package
//     survives (Qc empty) only when no probe yields c1 = 0 with b2 = 0
//     (i.e. ∀Y1 ψ1 for b2 = 0 tuples) and no Y2 probe falsifies ψ2 (for
//     b2 = 1 tuples);
//   - val rates singletons by their (b1, b2): (1,0) → 1, (1,1) → 2, else 0;
//     cost = |N| with cost(∅) = ∞ and C = 1; B = 1, k = 1.
//
// A val-1 valid package then exists iff ϕ1 is true (with ψ2 falsifiable,
// which ¬ϕ2 guarantees), and a val-2 valid package exists iff ϕ2 is true,
// so the maximum bound is exactly 1 iff ϕ1 ∧ ¬ϕ2.
func MBPFromEFDNFPair(f1, f2 sat.EFDNF) (*core.Problem, float64) {
	db := boolenc.NewDB()
	db.Add(boolenc.Ic())

	x1 := boolenc.VarNames("u", f1.NX)
	y1 := boolenc.VarNames("v", f1.NY)
	x2 := boolenc.VarNames("s", f2.NX)
	y2 := boolenc.VarNames("t", f2.NY)

	name1 := func(v int) string {
		if v < f1.NX {
			return x1[v]
		}
		return y1[v-f1.NX]
	}
	name2 := func(v int) string {
		if v < f2.NX {
			return x2[v]
		}
		return y2[v-f2.NX]
	}

	// Q: achievable (µX1, b1, µX2, b2) combinations.
	compQ1 := &boolenc.Compiler{Prefix: "_q1v"}
	b1 := compQ1.Compile(boolenc.DNFFormula(lits(f1.Psi.Terms), name1))
	compQ2 := &boolenc.Compiler{Prefix: "_q2v"}
	b2 := compQ2.Compile(boolenc.DNFFormula(lits(f2.Psi.Terms), name2))
	var qBody []query.Atom
	qBody = append(qBody, boolenc.AssignmentAtoms(x1)...)
	qBody = append(qBody, boolenc.AssignmentAtoms(y1)...)
	qBody = append(qBody, compQ1.Atoms()...)
	qBody = append(qBody, boolenc.AssignmentAtoms(x2)...)
	qBody = append(qBody, boolenc.AssignmentAtoms(y2)...)
	qBody = append(qBody, compQ2.Atoms()...)
	head := append(varTerms(x1), query.V(b1))
	head = append(head, varTerms(x2)...)
	head = append(head, query.V(b2))
	q := query.NewCQ("RQ", head, qBody...)

	// Qc: probe variables are fresh so they quantify independently of the
	// package tuple's columns.
	y1p := boolenc.VarNames("vp", f1.NY)
	y2p := boolenc.VarNames("tp", f2.NY)
	y2pp := boolenc.VarNames("tq", f2.NY)
	probe1 := func(v int) string {
		if v < f1.NX {
			return x1[v]
		}
		return y1p[v-f1.NX]
	}
	probe2 := func(v int) string {
		if v < f2.NX {
			return x2[v]
		}
		return y2p[v-f2.NX]
	}
	probe2b := func(v int) string {
		if v < f2.NX {
			return x2[v]
		}
		return y2pp[v-f2.NX]
	}
	compC1 := &boolenc.Compiler{Prefix: "_c1v"}
	c1 := compC1.Compile(boolenc.DNFFormula(lits(f1.Psi.Terms), probe1))
	compC2 := &boolenc.Compiler{Prefix: "_c2v"}
	same := compC2.Compile(boolenc.DNFFormula(lits(f2.Psi.Terms), probe2))
	compC3 := &boolenc.Compiler{Prefix: "_c3v"}
	c2 := compC3.Compile(boolenc.DNFFormula(lits(f2.Psi.Terms), probe2b))

	var qcBody []query.Atom
	qcBody = append(qcBody, query.Rel("RQ", head...))
	qcBody = append(qcBody, boolenc.AssignmentAtoms(y1p)...)
	qcBody = append(qcBody, compC1.Atoms()...)
	qcBody = append(qcBody, boolenc.AssignmentAtoms(y2p)...)
	qcBody = append(qcBody, compC2.Atoms()...)
	qcBody = append(qcBody, query.Eq(query.V(same), query.V(b2)))
	qcBody = append(qcBody, boolenc.AssignmentAtoms(y2pp)...)
	qcBody = append(qcBody, compC3.Atoms()...)
	qcBody = append(qcBody, query.Eq(query.V(c2), query.CI(0)))
	qcBody = append(qcBody, query.Rel(boolenc.RcName, query.V(c1), query.V(b2), query.V("_cfin")))
	qcBody = append(qcBody, query.Eq(query.V("_cfin"), query.CI(1)))
	qc := query.NewCQ("Qc", nil, qcBody...)

	b1Idx := f1.NX
	b2Idx := f1.NX + 1 + f2.NX
	val := core.Func("pairLevelVal", func(pkg core.Package) float64 {
		if pkg.Len() != 1 {
			return 0
		}
		t := pkg.Tuples()[0]
		switch {
		case t[b1Idx].Int64() == 1 && t[b2Idx].Int64() == 0:
			return 1
		case t[b1Idx].Int64() == 1 && t[b2Idx].Int64() == 1:
			return 2
		default:
			return 0
		}
	})
	prob := &core.Problem{
		DB:     db,
		Q:      q,
		Qc:     qc,
		Cost:   core.CountOrInf(),
		Val:    val,
		Budget: 1,
		K:      1,
	}
	return prob, 1
}
