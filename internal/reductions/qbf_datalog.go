package reductions

import (
	"fmt"

	"repro/internal/boolenc"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sat"
)

// QBFDatalogQuery compiles a quantified Boolean formula into a
// non-recursive datalog program by quantifier elimination, the engine of
// the paper's DATALOGnr lower bounds (Theorem 4.1's reduction from Q3SAT
// and Theorem 5.3's #QBF → CPP):
//
//   - the base predicate P_n(v0..v_{n-1}) holds the satisfying assignments
//     of the matrix, computed with the Figure 4.1 gadget chain;
//   - each quantifier peels one variable: a universal level derives
//     P_{i-1}(v⃗) from P_i(v⃗, 0) ∧ P_i(v⃗, 1), an existential level from
//     either one;
//   - the output predicate P_{nf} keeps the first nf variables free, so its
//     answer is exactly the set of free-variable assignments under which
//     the quantified suffix is true.
//
// With nf = 0 the program is Boolean and decides the closed QBF; its
// dependency graph is acyclic, so the program classifies as DATALOGnr.
func QBFDatalogQuery(matrix sat.CNF, prefix []sat.Quantifier, nf int) (*query.Datalog, error) {
	n := matrix.NumVars
	if nf+len(prefix) != n {
		return nil, fmt.Errorf("reductions: %d free + %d quantified variables but the matrix has %d",
			nf, len(prefix), n)
	}
	vars := boolenc.VarNames("v", n)
	pred := func(i int) string { return fmt.Sprintf("P%d", i) }

	// Base rule: P_n(v⃗) holds the matrix's satisfying assignments.
	comp := &boolenc.Compiler{}
	out := comp.Compile(boolenc.CNFFormula(lits(matrix.Clauses), func(v int) string { return vars[v] }))
	comp.AssertEq(out, true)
	base := append([]query.Atom{}, boolenc.AssignmentAtoms(vars)...)
	base = append(base, comp.Atoms()...)
	rules := []query.Rule{query.NewRule(query.Rel(pred(n), varTerms(vars)...), base...)}

	// Quantifier elimination, innermost variable first.
	for i := n; i > nf; i-- {
		head := query.Rel(pred(i-1), varTerms(vars[:i-1])...)
		withVal := func(b int64) *query.RelAtom {
			args := append(varTerms(vars[:i-1]), query.CI(b))
			return query.Rel(pred(i), args...)
		}
		if prefix[i-1-nf] == sat.QForall {
			rules = append(rules, query.NewRule(head, withVal(0), withVal(1)))
		} else {
			rules = append(rules, query.NewRule(head, withVal(0)))
			rules = append(rules, query.NewRule(
				query.Rel(pred(i-1), varTerms(vars[:i-1])...), withVal(1)))
		}
	}
	prog := query.NewDatalog(pred(nf), rules...)
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if prog.IsRecursive() {
		return nil, fmt.Errorf("reductions: quantifier elimination produced a recursive program")
	}
	return prog, nil
}

// CPPFromQBF is the Theorem 5.3 reduction from #QBF to CPP(DATALOGnr): the
// valid packages are the singletons over the program's answer, so
// CountValid(B) equals the number of free-variable assignments making the
// quantified suffix true.
func CPPFromQBF(matrix sat.CNF, prefix []sat.Quantifier, nf int) (*core.Problem, float64, error) {
	prog, err := QBFDatalogQuery(matrix, prefix, nf)
	if err != nil {
		return nil, 0, err
	}
	prob := &core.Problem{
		DB:     boolenc.NewDB(),
		Q:      prog,
		Cost:   core.CountOrInf(),
		Val:    core.ConstAgg(1),
		Budget: 1,
		K:      1,
	}
	return prob, 1, nil
}

// RPPFromQ3SAT is Theorem 4.1's DATALOGnr lower-bound reduction: the closed
// QBF (all variables quantified) compiles to a Boolean program, and the
// selection {()} is a top-1 package selection iff the QBF is true.
func RPPFromQ3SAT(q sat.QBF) (*core.Problem, []core.Package, error) {
	prog, err := QBFDatalogQuery(q.Matrix, q.Prefix, 0)
	if err != nil {
		return nil, nil, err
	}
	prob, sel := MembershipInstance(prog, boolenc.NewDB(), relation.Tuple{})
	return prob, sel, nil
}
