package reductions

import (
	"repro/internal/boolenc"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/relax"
	"repro/internal/sat"
)

// QRPPFromEFDNF is the Theorem 7.2 combined-complexity reduction from
// ∃*∀*3DNF to QRPP(CQ) with compatibility constraints (Σp2-hardness):
//
//   - Q(x⃗, c) = R01(x0) ∧ ... ∧ R01(x_{m-1}) ∧ R01(c) ∧ c = 0 generates
//     X assignments flagged c = 0; the set E = {0} marks the flag constant
//     as the only relaxable parameter;
//   - Qc is the Lemma 4.2 constraint over the answer schema: it rejects a
//     package whose X assignment admits a Y assignment falsifying ψ;
//   - val rates a package 1 only if its flag is c = 1, so the original
//     query (c = 0 rows only) never reaches the bound B = 1; relaxing
//     c = 0 to dist(c, 0) ≤ 1 under the Boolean-flip metric (gap budget
//     g = 1) admits c = 1 rows, and a valid package then exists iff
//     ϕ = ∃X ∀Y ψ is true.
func QRPPFromEFDNF(f sat.EFDNF) (relax.Instance, error) {
	db := boolenc.NewDB()
	xs := boolenc.VarNames("x", f.NX)
	ys := boolenc.VarNames("y", f.NY)

	body := append([]query.Atom{}, boolenc.AssignmentAtoms(xs)...)
	body = append(body,
		query.Rel(boolenc.R01Name, query.V("c")),
		query.Eq(query.V("c"), query.CI(0)))
	head := append(varTerms(xs), query.V("c"))
	q := query.NewCQ("RQ", head, body...)

	comp := &boolenc.Compiler{}
	out := comp.Compile(boolenc.DNFFormula(lits(f.Psi.Terms), blockName(f.NX)))
	comp.AssertEq(out, false)
	qcBody := []query.Atom{query.Rel("RQ", head...)}
	qcBody = append(qcBody, boolenc.AssignmentAtoms(ys)...)
	qcBody = append(qcBody, comp.Atoms()...)
	qc := query.NewCQ("Qc", nil, qcBody...)

	cIdx := f.NX
	val := core.Func("flagVal", func(p core.Package) float64 {
		if p.Len() != 1 {
			return 0
		}
		if p.Tuples()[0][cIdx].Int64() == 1 {
			return 1
		}
		return 0
	})
	prob := &core.Problem{
		DB:     db,
		Q:      q,
		Qc:     qc,
		Cost:   core.CountOrInf(),
		Val:    val,
		Budget: 1,
		K:      1,
	}

	pts, err := relax.Points(q)
	if err != nil {
		return relax.Instance{}, err
	}
	var chosen []relax.Point
	for _, p := range pts {
		if p.Kind == relax.ConstInEquality && p.Const.Equal(relation.Int(0)) {
			chosen = append(chosen, p.WithMetric(relax.BoolFlip()))
		}
	}
	return relax.Instance{
		Problem:   prob,
		Points:    chosen,
		Bound:     1,
		GapBudget: 1,
	}, nil
}

// MembershipInstance turns a membership-problem instance (Q, D, t) into the
// RPP instance of Theorem 4.1's DATALOGnr/FO/DATALOG lower bounds: with
// cost(N) = |N| (∞ on ∅), C = 1, constant val and k = 1, the selection
// {{t}} is a top-1 package selection iff t ∈ Q(D). The query's language
// carries over, so the same wrapper witnesses PSPACE-hardness (DATALOGnr,
// FO) and EXPTIME-hardness (DATALOG).
func MembershipInstance(q query.Query, db *relation.Database, t relation.Tuple) (*core.Problem, []core.Package) {
	prob := &core.Problem{
		DB:     db,
		Q:      q,
		Cost:   core.CountOrInf(),
		Val:    core.ConstAgg(1),
		Budget: 1,
		K:      1,
	}
	return prob, []core.Package{core.NewPackage(t)}
}
