package reductions

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// TestTheorem52CombinedMBPFromEFDNFPair cross-validates the Dp2 combined-
// complexity construction: B = 1 is the maximum bound iff ϕ1 = ∃X∀Y ψ1 is
// true and ϕ2 = ∃X∀Y ψ2 is false.
func TestTheorem52CombinedMBPFromEFDNFPair(t *testing.T) {
	rng := rand.New(rand.NewSource(520))
	for i := 0; i < 12; i++ {
		f1 := sat.RandEFDNF(rng, 2, 2, 1+rng.Intn(3))
		f2 := sat.RandEFDNF(rng, 2, 2, 1+rng.Intn(3))
		prob, b := MBPFromEFDNFPair(f1, f2)
		got, err := prob.IsMaxBound(b)
		if err != nil {
			t.Fatal(err)
		}
		want := f1.Decide() && !f2.Decide()
		if got != want {
			t.Fatalf("instance %d: MBP = %v, ϕ1∧¬ϕ2 = %v (ϕ1=%v %v, ϕ2=%v %v)",
				i, got, want, f1.Psi, f1.Decide(), f2.Psi, f2.Decide())
		}
	}
}

// TestTheorem52CombinedMBPCornerCases pins the four truth combinations with
// hand-built sentences: ψ = x0 (∀Y-true once x0 = 1, so ϕ true) and
// ψ = x0 ∧ y0 (no X choice works for all Y, so ϕ false).
func TestTheorem52CombinedMBPCornerCases(t *testing.T) {
	tautTrue := sat.EFDNF{NX: 1, NY: 1, Psi: sat.DNF{NumVars: 2, Terms: []sat.Clause{{1}}}}
	if !tautTrue.Decide() {
		t.Fatal("fixture: ∃x∀y (x) should be true")
	}
	depFalse := sat.EFDNF{NX: 1, NY: 1, Psi: sat.DNF{NumVars: 2, Terms: []sat.Clause{{1, 2}}}}
	if depFalse.Decide() {
		t.Fatal("fixture: ∃x∀y (x ∧ y) should be false")
	}
	cases := []struct {
		f1, f2 sat.EFDNF
		want   bool
	}{
		{tautTrue, depFalse, true},
		{tautTrue, tautTrue, false},
		{depFalse, depFalse, false},
		{depFalse, tautTrue, false},
	}
	for i, c := range cases {
		prob, b := MBPFromEFDNFPair(c.f1, c.f2)
		got, err := prob.IsMaxBound(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("case %d: MBP = %v, want %v", i, got, c.want)
		}
	}
}
