package reductions

import (
	"repro/internal/adjust"
	"repro/internal/boolenc"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/relax"
	"repro/internal/sat"
)

// QRPPFrom3SAT is the Theorem 7.2 data-complexity reduction from 3SAT to
// QRPP with a fixed SP query and absent Qc. The clause relation carries an
// extra flag column V = 1 on every row; the query selects rows with V = 0
// and is therefore empty. Relaxing the equality constant 0 by one step of
// the Boolean-flip metric admits all rows, and a valid package (consistent,
// one row per clause, covering every clause, cost 1 ≤ C) exists iff ϕ is
// satisfiable. val(N) = |N| with B = 1, k = 1 and gap budget g = 1.
func QRPPFrom3SAT(c sat.CNF) (relax.Instance, error) {
	schema := relation.NewSchema("RC", "cid", "L1", "V1", "L2", "V2", "L3", "V3", "V")
	rel := relation.NewRelation(schema)
	mustCover := make([]int64, len(c.Clauses))
	for i, cl := range c.Clauses {
		mustCover[i] = int64(i + 1)
		for _, row := range clauseRows(i+1, cl, xName) {
			row = append(row, relation.Int(1))
			if err := rel.Insert(row); err != nil {
				return relax.Instance{}, err
			}
		}
	}
	db := relation.NewDatabase().Add(rel)

	// Q selects rows with V = 0 — empty on D as built.
	head := make([]query.Term, schema.Arity())
	vars := make([]query.Term, schema.Arity())
	for i := range vars {
		vars[i] = query.V(schema.Attrs[i])
		head[i] = vars[i]
	}
	q := query.NewCQ("RQ", head,
		query.Rel("RC", vars...),
		query.Eq(query.V("V"), query.CI(0)))

	prob := &core.Problem{
		DB:     db,
		Q:      q,
		Cost:   coverageCost(mustCover),
		Val:    core.Count(),
		Budget: 1,
		K:      1,
		Prune:  consistencyPrune(),
	}
	pts, err := relax.Points(q)
	if err != nil {
		return relax.Instance{}, err
	}
	var chosen []relax.Point
	for _, p := range pts {
		if p.Kind == relax.ConstInEquality && p.Const.Equal(relation.Int(0)) {
			chosen = append(chosen, p.WithMetric(relax.BoolFlip()))
		}
	}
	return relax.Instance{
		Problem:   prob,
		Points:    chosen,
		Bound:     1,
		GapBudget: 1,
	}, nil
}

// ARPPFromEFDNF is the Theorem 8.1 reduction from ∃*∀*3DNF to ARPP
// (Σp2-hardness, combined complexity): D holds the I∨, I∧, I¬ gadgets and
// an empty Boolean-domain relation R01; D′ holds the two Boolean values.
// Q requires both 1 ∈ R01 and 0 ∈ R01 before generating X assignments, so
// packages exist only after the adjustment inserts both values (k′ = 2);
// the compatibility constraint is that of Lemma 4.2, so an adjustment
// works iff ϕ = ∃X ∀Y ψ is true.
func ARPPFromEFDNF(f sat.EFDNF) adjust.Instance {
	db := relation.NewDatabase()
	db.Add(relation.NewRelation(relation.NewSchema(boolenc.R01Name, "X"))) // empty I01
	db.Add(boolenc.IOr())
	db.Add(boolenc.IAnd())
	db.Add(boolenc.INot())
	extra := relation.NewDatabase().Add(boolenc.I01())

	xs := boolenc.VarNames("x", f.NX)
	ys := boolenc.VarNames("y", f.NY)
	body := []query.Atom{
		query.Rel(boolenc.R01Name, query.V("z1")), query.Eq(query.V("z1"), query.CI(1)),
		query.Rel(boolenc.R01Name, query.V("z0")), query.Eq(query.V("z0"), query.CI(0)),
	}
	body = append(body, boolenc.AssignmentAtoms(xs)...)
	q := query.NewCQ("RQ", varTerms(xs), body...)

	comp := &boolenc.Compiler{}
	out := comp.Compile(boolenc.DNFFormula(lits(f.Psi.Terms), blockName(f.NX)))
	comp.AssertEq(out, false)
	qcBody := []query.Atom{query.Rel("RQ", varTerms(xs)...)}
	qcBody = append(qcBody, boolenc.AssignmentAtoms(ys)...)
	qcBody = append(qcBody, comp.Atoms()...)
	qc := query.NewCQ("Qc", nil, qcBody...)

	prob := &core.Problem{
		DB:     db,
		Q:      q,
		Qc:     qc,
		Cost:   core.CountOrInf(),
		Val:    core.ConstAgg(1),
		Budget: 1,
		K:      1,
	}
	return adjust.Instance{
		Problem: prob,
		Extra:   extra,
		Bound:   1,
		KPrime:  2,
	}
}

// ItemARPPFrom3SAT is the Theorem 8.1 data-complexity reduction from 3SAT
// to ARPP over item selections (which Corollary 8.2 reuses verbatim): the
// assignment relation RX starts empty and D′ offers both truth values for
// each variable; with k′ = n the adjustment can insert at most one complete
// assignment, and k = n·r items rated ≥ B = 1 exist iff that assignment
// satisfies every clause. Items are tuples (j, c, x, v, x′, v′); the
// utility penalises unsatisfied clauses (c = 0) and inconsistent or
// mismatched assignment pairs.
func ItemARPPFrom3SAT(c sat.CNF) (adjust.Instance, core.Utility) {
	n := c.NumVars
	r := len(c.Clauses)

	db := relation.NewDatabase()
	db.Add(relation.NewRelation(relation.NewSchema("RX", "X", "V"))) // IX = ∅
	psi := relation.NewRelation(relation.NewSchema("Rpsi", "idC", "Px", "X", "Vx", "W"))
	for j, cl := range c.Clauses {
		for pos, lit := range cl {
			v := sat.LitVar(lit)
			for _, val := range []int64{0, 1} {
				w := int64(0)
				if (val == 1) == sat.LitSign(lit) {
					w = 1
				}
				if err := psi.Insert(relation.NewTuple(
					relation.Int(int64(j+1)), relation.Int(int64(pos+1)),
					relation.Str(xName(v)), relation.Int(val), relation.Int(w))); err != nil {
					panic(err)
				}
			}
		}
	}
	db.Add(psi)
	db.Add(boolenc.IOr())

	extra := relation.NewDatabase()
	rx := relation.NewRelation(relation.NewSchema("RX", "X", "V"))
	for i := 0; i < n; i++ {
		for _, val := range []int64{0, 1} {
			if err := rx.Insert(relation.NewTuple(relation.Str(xName(i)), relation.Int(val))); err != nil {
				panic(err)
			}
		}
	}
	extra.Add(rx)

	v := query.V
	q := query.NewCQ("RQ",
		[]query.Term{v("j"), v("c"), v("x"), v("v"), v("xp"), v("vp")},
		query.Rel("RX", v("x1"), v("v1")),
		query.Rel("Rpsi", v("j"), query.CI(1), v("x1"), v("v1"), v("w1")),
		query.Rel("RX", v("x2"), v("v2")),
		query.Rel("Rpsi", v("j"), query.CI(2), v("x2"), v("v2"), v("w2")),
		query.Rel("RX", v("x3"), v("v3")),
		query.Rel("Rpsi", v("j"), query.CI(3), v("x3"), v("v3"), v("w3")),
		query.Rel(boolenc.ROrName, v("c1"), v("w1"), v("w2")),
		query.Rel(boolenc.ROrName, v("c"), v("c1"), v("w3")),
		query.Rel("RX", v("x"), v("v")),
		query.Rel("RX", v("xp"), v("vp")))

	util := core.Utility(func(t relation.Tuple) float64 {
		cVal := t[1].Int64()
		x, vv := t[2], t[3]
		xp, vp := t[4], t[5]
		if cVal == 0 || !x.Equal(xp) || !vv.Equal(vp) {
			return -1
		}
		return 1
	})
	inst := adjust.Instance{
		Problem: core.ItemProblem(db, q, util, n*r),
		Extra:   extra,
		Bound:   1,
		KPrime:  n,
	}
	return inst, util
}
