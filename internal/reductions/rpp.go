package reductions

import (
	"repro/internal/boolenc"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sat"
)

// RPPFromSATUNSAT is the Theorem 4.5 reduction from SAT-UNSAT to RPP in the
// absence of compatibility constraints (DP-hardness): over the Figure 4.1
// gadgets,
//
//	Q(b, b′) = ∃x⃗ ∃y⃗ (QX(x⃗) ∧ Qϕ1(x⃗, b) ∧ QY(y⃗) ∧ Qϕ2(y⃗, b′))
//
// computes the pairs of truth values achievable by (ϕ1, ϕ2); singleton
// packages are rated val{(1,0)} = 2, val{(1,1)} = val{(0,1)} = 3,
// val{(0,0)} = 1, and the candidate selection N = {{(1, 0)}} is a top-1
// package selection iff ϕ1 is satisfiable and ϕ2 is not.
func RPPFromSATUNSAT(p sat.Pair) (*core.Problem, []core.Package) {
	db := boolenc.NewDB()
	xs := boolenc.VarNames("x", p.Phi1.NumVars)
	ys := boolenc.VarNames("y", p.Phi2.NumVars)

	comp := &boolenc.Compiler{}
	b1 := comp.Compile(boolenc.CNFFormula(lits(p.Phi1.Clauses), xName))
	comp2 := &boolenc.Compiler{Prefix: "_c"}
	b2 := comp2.Compile(boolenc.CNFFormula(lits(p.Phi2.Clauses), yName))

	var body []query.Atom
	body = append(body, boolenc.AssignmentAtoms(xs)...)
	body = append(body, comp.Atoms()...)
	body = append(body, boolenc.AssignmentAtoms(ys)...)
	body = append(body, comp2.Atoms()...)
	q := query.NewCQ("RQ", []query.Term{query.V(b1), query.V(b2)}, body...)

	val := core.Func("pairVal", func(pkg core.Package) float64 {
		if pkg.Len() != 1 {
			return 0
		}
		t := pkg.Tuples()[0]
		switch [2]int64{t[0].Int64(), t[1].Int64()} {
		case [2]int64{1, 0}:
			return 2
		case [2]int64{1, 1}, [2]int64{0, 1}:
			return 3
		default:
			return 1
		}
	})
	prob := &core.Problem{
		DB:     db,
		Q:      q,
		Cost:   core.CountOrInf(),
		Val:    val,
		Budget: 1,
		K:      1,
	}
	sel := []core.Package{core.NewPackage(relation.Ints(1, 0))}
	return prob, sel
}

// MBPFromSATUNSAT is the Theorem 5.2 data-complexity reduction from
// SAT-UNSAT to MBP with a fixed identity query: the clause relation holds
// ϕ1's clauses (cids 1..r, variables x·) and ϕ2's clauses (cids r+1..r+s,
// variables y·); cost 1 demands a consistent selection covering all of ϕ1
// and, if any ϕ2 row is present, all of ϕ2; val(N) is 1 for X-only
// packages, 2 when X and Y rows mix, 0 otherwise. B = 1 is the maximum
// bound iff ϕ1 is satisfiable and ϕ2 is not.
func MBPFromSATUNSAT(p sat.Pair) (*core.Problem, float64) {
	r := len(p.Phi1.Clauses)
	s := len(p.Phi2.Clauses)
	rel := relation.NewRelation(clauseRelationSchema("RC"))
	for i, cl := range p.Phi1.Clauses {
		for _, row := range clauseRows(i+1, cl, xName) {
			if err := rel.Insert(row); err != nil {
				panic(err)
			}
		}
	}
	for i, cl := range p.Phi2.Clauses {
		for _, row := range clauseRows(r+i+1, cl, yName) {
			if err := rel.Insert(row); err != nil {
				panic(err)
			}
		}
	}
	db := relation.NewDatabase().Add(rel)

	phi1Cids := make([]int64, r)
	for i := range phi1Cids {
		phi1Cids[i] = int64(i + 1)
	}
	phi2Cids := make([]int64, s)
	for i := range phi2Cids {
		phi2Cids[i] = int64(r + i + 1)
	}
	base := consistencyCost()
	cost := core.Func("satunsatCost", func(pkg core.Package) float64 {
		if base.Eval(pkg) != 1 {
			return 2
		}
		have := map[int64]struct{}{}
		anyPhi2 := false
		for _, t := range pkg.Tuples() {
			cid := t[0].Int64()
			have[cid] = struct{}{}
			if cid > int64(r) {
				anyPhi2 = true
			}
		}
		for _, cid := range phi1Cids {
			if _, ok := have[cid]; !ok {
				return 2
			}
		}
		if anyPhi2 {
			for _, cid := range phi2Cids {
				if _, ok := have[cid]; !ok {
					return 2
				}
			}
		}
		return 1
	})
	val := core.Func("blockVal", func(pkg core.Package) float64 {
		hasX, hasY := false, false
		for _, t := range pkg.Tuples() {
			for i := 1; i+1 < len(t); i += 2 {
				if len(t[i].Text()) > 0 {
					switch t[i].Text()[0] {
					case 'x':
						hasX = true
					case 'y':
						hasY = true
					}
				}
			}
		}
		switch {
		case hasX && hasY:
			return 2
		case hasX:
			return 1
		default:
			return 0
		}
	})
	prob := &core.Problem{
		DB:     db,
		Q:      query.Identity("RQ", rel),
		Cost:   cost,
		Val:    val,
		Budget: 1,
		K:      1,
		Prune:  consistencyPrune(),
	}
	return prob, 1
}
