package reductions

import (
	"repro/internal/boolenc"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/sat"
)

// CPPFrom3SAT is the Theorem 5.3 data-complexity reduction: a parsimonious
// reduction from #SAT to CPP with a fixed identity query and absent Qc.
// Valid packages rated at least B = r are exactly the consistent full
// clause covers, in bijection with the satisfying assignments of ϕ over its
// occurring variables. CountValid(B) therefore equals #SAT(ϕ) counted over
// occurring variables.
func CPPFrom3SAT(c sat.CNF) (*core.Problem, float64) {
	ci := CompatFrom3SAT(c)
	return ci.Problem, float64(len(c.Clauses))
}

// CPPFromSigma1 is the Theorem 5.3 reduction from #Σ1SAT to CPP in the
// absence of compatibility constraints (#·NP-hardness): over the Figure 4.1
// gadgets,
//
//	Q(y⃗) = ∃x⃗ (R01(y⃗) ∧ R01(x⃗) ∧ Qϕ(x⃗, y⃗, b) ∧ b = 1)
//
// returns the Y assignments for which some X assignment satisfies the CNF
// ϕ; with cost = |N| (∞ on ∅), C = 1 and constant val = B, the valid
// packages are exactly the singletons over Q(D), so CountValid(B) equals
// #Σ1SAT.
func CPPFromSigma1(phi sat.CNF, nx, ny int) (*core.Problem, float64) {
	db := boolenc.NewDB()
	xs := boolenc.VarNames("x", nx)
	ys := boolenc.VarNames("y", ny)
	comp := &boolenc.Compiler{}
	out := comp.Compile(boolenc.CNFFormula(lits(phi.Clauses), blockName(nx)))
	comp.AssertEq(out, true)
	var body []query.Atom
	body = append(body, boolenc.AssignmentAtoms(ys)...)
	body = append(body, boolenc.AssignmentAtoms(xs)...)
	body = append(body, comp.Atoms()...)
	q := query.NewCQ("RQ", varTerms(ys), body...)
	prob := &core.Problem{
		DB:     db,
		Q:      q,
		Cost:   core.CountOrInf(),
		Val:    core.ConstAgg(1),
		Budget: 1,
		K:      1,
	}
	return prob, 1
}

// CPPFromPi1 is the Theorem 5.3 reduction from #Π1SAT to CPP with
// compatibility constraints (#·coNP-hardness): Q(y⃗) = R01(y⃗) generates all
// Y assignments, and
//
//	Qc(y⃗) = RQ(y⃗) ∧ ∃x⃗ (R01(x⃗) ∧ Q¬C1(x⃗, y⃗) ∧ ... ∧ Q¬Cr(x⃗, y⃗))
//
// flags a Y assignment for which some X assignment falsifies every term of
// the 3DNF ψ, i.e. falsifies ϕ(X, Y) = ∀X (C1 ∨ ... ∨ Cr). Valid packages
// are the singletons surviving Qc, so CountValid(B) equals #Π1SAT.
func CPPFromPi1(psi sat.DNF, nx, ny int) (*core.Problem, float64) {
	db := boolenc.NewDB()
	xs := boolenc.VarNames("x", nx)
	ys := boolenc.VarNames("y", ny)
	q := query.NewCQ("RQ", varTerms(ys), boolenc.AssignmentAtoms(ys)...)

	// ¬ψ = ∧i ¬Ci, where each ¬Ci is the disjunction of the negated
	// literals of the term Ci.
	negPsi := boolenc.CNFFormula(lits(psi.Negate().Clauses), blockName(nx))
	comp := &boolenc.Compiler{}
	out := comp.Compile(negPsi)
	comp.AssertEq(out, true)
	var body []query.Atom
	body = append(body, query.Rel("RQ", varTerms(ys)...))
	body = append(body, boolenc.AssignmentAtoms(xs)...)
	body = append(body, comp.Atoms()...)
	qc := query.NewCQ("Qc", nil, body...)

	prob := &core.Problem{
		DB:     db,
		Q:      q,
		Qc:     qc,
		Cost:   core.CountOrInf(),
		Val:    core.ConstAgg(1),
		Budget: 1,
		K:      1,
	}
	return prob, 1
}
