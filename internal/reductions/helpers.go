// Package reductions implements, executably, the hardness reductions from
// the paper's proofs, each named for the theorem or lemma it comes from:
//
//   - Lemma 4.2: ∃*∀*3DNF → the compatibility problem (CQ, with Qc);
//   - Theorem 4.1: the compatibility problem → RPP (with Qc);
//   - Lemma 4.4 / Theorem 4.3: 3SAT → the compatibility problem with a
//     fixed identity query (data complexity);
//   - Theorem 4.5: SAT-UNSAT → RPP without compatibility constraints;
//   - Theorem 5.1: MAX-WEIGHT SAT → FRP (data complexity, fixed query);
//   - Theorem 5.2: SAT-UNSAT → MBP (data complexity);
//   - Theorem 5.3: #SAT → CPP (data), #Σ1SAT → CPP without Qc, and
//     #Π1SAT → CPP with Qc (combined);
//   - Theorem 6.4: MAX-WEIGHT SAT → item FRP and SAT-UNSAT → item MBP;
//   - Theorem 7.2: 3SAT → QRPP (data complexity);
//   - Theorem 8.1: ∃*∀*3DNF → ARPP (combined) and 3SAT → item ARPP (data).
//
// The integration tests cross-validate every construction against the
// direct solvers of internal/sat on streams of random instances, which is
// the executable analogue of the paper's correctness arguments. Two
// documented repairs to the paper's text are applied (see the Design notes
// in ARCHITECTURE.md): the
// RPP "no recommendation" placeholder gets cost(∅) = 0 so it can be a legal
// selection member, and the item-MBP utility of Theorem 6.4 is ordered so
// that a satisfiable ϕ2 forces rating 2 (the text's case split leaves the
// intended equivalence unprovable as written).
package reductions

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sat"
)

// lits converts solver clauses to the literal lists the gadget compiler
// accepts.
func lits(cs []sat.Clause) [][]int {
	out := make([][]int, len(cs))
	for i, cl := range cs {
		out[i] = []int(cl)
	}
	return out
}

// xName and yName are the standard variable names used by the gadget
// encodings: the X block then the Y block.
func xName(i int) string { return fmt.Sprintf("x%d", i) }
func yName(i int) string { return fmt.Sprintf("y%d", i) }

// blockName names variable v of a formula over X ∪ Y with nx X variables.
func blockName(nx int) func(v int) string {
	return func(v int) string {
		if v < nx {
			return xName(v)
		}
		return yName(v - nx)
	}
}

// clauseRelationSchema is the schema RC(cid, L1, V1, L2, V2, L3, V3) of
// Lemma 4.4: one row per clause per satisfying assignment of its three
// variables.
func clauseRelationSchema(name string) *relation.Schema {
	return relation.NewSchema(name, "cid", "L1", "V1", "L2", "V2", "L3", "V3")
}

// clauseRows encodes a clause (1-based cid) as the rows of RC: for each of
// the assignments of its variables that satisfy the clause (7 of 8 for a
// 3-literal clause over distinct variables), a tuple
// (cid, var1, v1, var2, v2, var3, v3) with variables named by name.
func clauseRows(cid int, cl sat.Clause, name func(v int) string) []relation.Tuple {
	vars := make([]int, len(cl))
	for i, lit := range cl {
		vars[i] = sat.LitVar(lit)
	}
	var rows []relation.Tuple
	for bits := 0; bits < 1<<len(cl); bits++ {
		satisfied := false
		for i, lit := range cl {
			v := bits&(1<<i) != 0
			if v == sat.LitSign(lit) {
				satisfied = true
				break
			}
		}
		if !satisfied {
			continue
		}
		row := relation.Tuple{relation.Int(int64(cid))}
		for i := range cl {
			b := int64(0)
			if bits&(1<<i) != 0 {
				b = 1
			}
			row = append(row, relation.Str(name(vars[i])), relation.Int(b))
		}
		// Pad clauses narrower than three literals by repeating the last
		// variable (generators emit width-3 clauses; this keeps the schema
		// total for degenerate inputs).
		for len(row) < 7 {
			row = append(row, row[len(row)-2], row[len(row)-1])
		}
		rows = append(rows, row)
	}
	return rows
}

// clauseDB builds the Lemma 4.4 database for a CNF: relation RC holding the
// rows of every clause.
func clauseDB(relName string, c sat.CNF, name func(v int) string) *relation.Database {
	r := relation.NewRelation(clauseRelationSchema(relName))
	for i, cl := range c.Clauses {
		for _, row := range clauseRows(i+1, cl, name) {
			if err := r.Insert(row); err != nil {
				panic(err) // construction bug, not input error
			}
		}
	}
	return relation.NewDatabase().Add(r)
}

// consistencyCost is the Lemma 4.4 / Theorem 5.1 cost function: cost(N) = 1
// when no two tuples of N share a cid and no variable appears with two
// different values, else cost(N) = 2. Tuples follow the RC schema.
func consistencyCost() core.Aggregator {
	return core.Func("consistency", func(p core.Package) float64 {
		cids := map[int64]struct{}{}
		assign := map[string]int64{}
		for _, t := range p.Tuples() {
			cid := t[0].Int64()
			if _, dup := cids[cid]; dup {
				return 2
			}
			cids[cid] = struct{}{}
			for i := 1; i+1 < len(t); i += 2 {
				v := t[i].Text()
				val := t[i+1].Int64()
				if prev, ok := assign[v]; ok && prev != val {
					return 2
				}
				assign[v] = val
			}
		}
		return 1
	})
}

// consistencyPrune is the hereditary-infeasibility hint matching
// consistencyCost: once a package repeats a cid or assigns a variable two
// values, every superset does too, so the whole branch is invalid under
// C = 1.
func consistencyPrune() func(core.Package) bool {
	cost := consistencyCost()
	return func(p core.Package) bool { return cost.Eval(p) != 1 }
}

// coverageCost extends consistencyCost with the Theorem 5.2 / 7.2
// requirements: cost 1 only if additionally N contains a tuple for every
// cid in mustCover (exactly one each, by the consistency part), else 2.
func coverageCost(mustCover []int64) core.Aggregator {
	base := consistencyCost()
	return core.Func("coverage", func(p core.Package) float64 {
		if base.Eval(p) != 1 {
			return 2
		}
		have := map[int64]struct{}{}
		for _, t := range p.Tuples() {
			have[t[0].Int64()] = struct{}{}
		}
		for _, cid := range mustCover {
			if _, ok := have[cid]; !ok {
				return 2
			}
		}
		return 1
	})
}
