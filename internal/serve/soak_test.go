package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
)

// Admission soak: one tenant floods the pool far past capacity while a
// second tenant keeps its modest request rate. The fairness contract —
// per-tenant queue budgets plus least-debt scheduling — is that the
// victim's p99 latency stays within 2× of its unloaded baseline, the
// victim is never shed, and the flood is (shedding active).

func p99(durs []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(0.99 * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func TestSoakFairVictimP99UnderFlood(t *testing.T) {
	const (
		victim      = "frontend"  // the tenant whose latency must hold
		flood       = "reporting" // the tenant that overloads the pool
		victimSolve = 40 * time.Millisecond
		floodSolve  = 10 * time.Millisecond
		victimReqs  = 24
	)
	s := NewServer(Options{MaxConcurrent: 2, MaxQueue: 4})
	s.SetCollection(victim, gen.Travel(7, 12, 10))
	s.SetCollection(flood, gen.Travel(9, 12, 10))
	// Deterministic solve durations: the flood's solves are cheaper than
	// the victim's, so the head-of-line wait a victim request can absorb
	// (one flood solve, no preemption) stays within its own 2× budget.
	s.solveHook = func(v validated) {
		if v.req.Collection == flood {
			time.Sleep(floodSolve)
		} else {
			time.Sleep(victimSolve)
		}
	}
	soakReq := func(coll string, i int) Request {
		ps := travelSpec(2)
		ps.Bound = -50 - float64(i%97) // distinct keys: no coalescing
		return Request{Collection: coll, Op: OpCount, Spec: ps, NoCache: true}
	}
	victimRun := func() []time.Duration {
		durs := make([]time.Duration, 0, victimReqs)
		for i := 0; i < victimReqs; i++ {
			start := time.Now()
			if _, err := s.Solve(context.Background(), soakReq(victim, i)); err != nil {
				t.Errorf("victim request %d: %v", i, err)
				continue
			}
			durs = append(durs, time.Since(start))
		}
		return durs
	}

	base := victimRun()
	baseP99 := p99(base)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := s.Solve(context.Background(), soakReq(flood, w*1000+i))
				var ov *OverloadError
				if errors.As(err, &ov) {
					time.Sleep(2 * time.Millisecond)
				} else if err != nil {
					t.Errorf("flood solve: %v", err)
					return
				}
			}
		}(w)
	}
	// Let the flood saturate the pool before measuring.
	for s.admit.queueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	flooded := victimRun()
	close(stop)
	wg.Wait()
	floodP99 := p99(flooded)

	st := s.Stats()
	if st.Shed == 0 {
		t.Fatal("flood never shed; the soak did not overload the pool")
	}
	if len(flooded) != victimReqs {
		t.Fatalf("victim completed %d/%d requests under flood (fairness must shed the flood, not the victim)",
			len(flooded), victimReqs)
	}
	limit := 2 * baseP99
	if floor := 2 * (victimSolve + floodSolve); limit < floor {
		// Baselines below a few solve durations are scheduler noise; the
		// floor keeps the bound meaningful instead of flaky.
		limit = floor
	}
	t.Logf("victim p99: baseline %v, under flood %v (limit %v); %d sheds, %d queued grants",
		baseP99, floodP99, limit, st.Shed, st.AdmitQueued)
	if floodP99 > limit {
		t.Fatalf("victim p99 %v exceeds %v (2x baseline %v) under flood", floodP99, limit, baseP99)
	}
}

// The observability exemption, end to end over the wire: with every pool
// slot held and the admission queue full, /v1/stats and /metrics answer
// immediately and a further solve sheds as a 429 whose Retry-After the
// client parses.
func TestStatsAndMetricsServeDuringOverload(t *testing.T) {
	s := travelServer(t, Options{MaxConcurrent: 1, MaxQueue: 2}, 20, 16)
	block := make(chan struct{})
	s.solveHook = func(validated) { <-block }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	released := false
	release := func() {
		if !released {
			released = true
			close(block)
		}
	}
	defer release()
	client := NewClient(ts.URL)
	ctx := context.Background()

	req := func(i int) Request {
		ps := travelSpec(2)
		ps.Bound = -50 - float64(i)
		return Request{Collection: "travel", Op: OpCount, Spec: ps, NoCache: true}
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ { // 1 running + 2 queued = saturation
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := client.Solve(ctx, req(i)); err != nil {
				t.Errorf("held solve %d: %v", i, err)
			}
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.admit.queueDepth() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("pool never saturated")
		}
		time.Sleep(time.Millisecond)
	}

	// The pool is wedged; the instruments must not be.
	probe := &http.Client{Timeout: 2 * time.Second}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatalf("/v1/stats during overload: %v", err)
	}
	if st.QueueDepth != 2 || st.InFlight == 0 {
		t.Fatalf("stats during overload: queueDepth=%d inFlight=%d", st.QueueDepth, st.InFlight)
	}
	resp, err := probe.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("/metrics during overload: %v", err)
	}
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	text := string(body[:n])
	if !strings.Contains(text, "pkgrec_queue_depth 2") {
		t.Fatalf("/metrics does not report the saturated queue:\n%s", text)
	}

	// One more solve: shed on the wire as 429 + Retry-After, parsed back
	// by the client.
	_, err = client.Solve(ctx, req(9))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || !apiErr.Overloaded() {
		t.Fatalf("saturated solve over the wire: got %v, want 429 APIError", err)
	}
	if apiErr.RetryAfter < time.Second {
		t.Fatalf("client-parsed Retry-After %v below the 1s floor", apiErr.RetryAfter)
	}
	if !strings.Contains(s.renderMetrics(), "pkgrec_shed_total 1") {
		t.Fatal("shed not visible in /metrics")
	}
	release()
	wg.Wait()
}
