package serve

import (
	"context"
	"errors"
	"net/http"
	"time"
)

// The wire-stable error taxonomy. Every error a Service implementation
// returns maps to exactly one code; the HTTP layer serializes the code
// (and the retryable bit and any Retry-After) alongside the legacy
// "error" message, and the Client rebuilds a typed error from it — so a
// coordinator hop loses nothing: the router sees the same code the
// origin daemon classified, re-emits the same status and Retry-After,
// and errors.As/errors.Is work identically one hop or two away from the
// solve. Codes are part of the wire contract (docs/serving.md) and must
// never be renamed.
const (
	CodeBadRequest  = "bad_request" // client fault: malformed spec, unknown op (400)
	CodeNotFound    = "not_found"   // missing collection or route (404)
	CodeOverloaded  = "overloaded"  // shed by admission control; retry after Retry-After (429)
	CodeUnavailable = "unavailable" // durability or dependency unavailable (503)
	CodeTimeout     = "timeout"     // solve deadline exceeded (504)
	CodeCanceled    = "canceled"    // caller went away (499)
	CodeTooLarge    = "too_large"   // request body over the size bound (413)
	CodeInternal    = "internal"    // unclassified server fault (500)
)

// ErrorCode classifies any error from a Service call into the taxonomy.
// A *Client error (APIError) keeps the code the origin server assigned;
// local typed errors classify by type, mirroring writeError's historical
// status mapping exactly.
func ErrorCode(err error) string {
	var apiErr *APIError
	var reqErr *RequestError
	var nfErr *NotFoundError
	var ovErr *OverloadError
	var unErr *UnavailableError
	var tooBig *http.MaxBytesError
	switch {
	case err == nil:
		return ""
	case errors.As(err, &apiErr):
		return apiErr.code()
	case errors.As(err, &tooBig):
		return CodeTooLarge
	case errors.As(err, &reqErr):
		return CodeBadRequest
	case errors.As(err, &nfErr):
		return CodeNotFound
	case errors.As(err, &ovErr):
		return CodeOverloaded
	case errors.As(err, &unErr):
		return CodeUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return CodeTimeout
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	}
	return CodeInternal
}

// Retryable reports whether an error with the given code could succeed
// on retry — on the same node later (overloaded, unavailable) or on
// another replica right now (internal: the fault may be node-local).
// Client faults, timeouts (the deadline travels with the request — a
// replica would time out too), and cancellations are not retryable.
func Retryable(code string) bool {
	switch code {
	case CodeOverloaded, CodeUnavailable, CodeInternal:
		return true
	}
	return false
}

// RetryableError reports whether err itself is worth retrying or
// failing over; see Retryable.
func RetryableError(err error) bool { return Retryable(ErrorCode(err)) }

// statusForCode maps a taxonomy code to its HTTP status.
func statusForCode(code string) int {
	switch code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeTimeout:
		return http.StatusGatewayTimeout
	case CodeCanceled:
		return 499 // client closed request (de-facto convention)
	case CodeTooLarge:
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusInternalServerError
}

// codeForStatus recovers a taxonomy code from a bare HTTP status — the
// fallback when a reply carries no "code" field (an old server, a proxy
// in the path).
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	case http.StatusGatewayTimeout:
		return CodeTimeout
	case 499:
		return CodeCanceled
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	}
	return CodeInternal
}

// errorBody is the JSON error shape every status ≥ 400 carries: the
// legacy "error" message plus the taxonomy fields clients and
// coordinators route on.
type errorBody struct {
	Error        string `json:"error"`
	Code         string `json:"code,omitempty"`
	Retryable    bool   `json:"retryable,omitempty"`
	RetryAfterMS int64  `json:"retryAfterMs,omitempty"`
}

// retryAfterOf extracts the Retry-After an error carries (sheds do).
func retryAfterOf(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	var ovErr *OverloadError
	if errors.As(err, &ovErr) {
		return ovErr.RetryAfter
	}
	return 0
}
