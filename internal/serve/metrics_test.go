package serve

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// /metrics format validation: the exposition is hand-rolled (no client
// library), so its invariants are pinned here the way promtool would —
// every family announced with # HELP and # TYPE before its samples,
// histogram buckets cumulative with le="+Inf" equal to _count, and the
// hardening counters present with the values /v1/stats agrees on.

// metricsFixture drives enough traffic through a WAL-enabled server that
// every counter class is nonzero: solves (miss then hit), a delta, a shed.
func metricsFixture(t *testing.T) *Server {
	t.Helper()
	s := travelServer(t, Options{MaxConcurrent: 1, MaxQueue: 1}, 20, 16)
	t.Cleanup(func() { s.Close() })
	if err := s.OpenWAL(WALConfig{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	ps := travelSpec(2)
	ps.Bound = -100
	req := Request{Collection: "travel", Op: OpCount, Spec: ps}
	mustSolve(t, s, req)
	mustSolve(t, s, req) // cache hit
	if _, err := s.MutateCollection("travel", pkgDelta(0)); err != nil {
		t.Fatal(err)
	}
	// Wedge the pool and overflow the queue for one shed. Closing block
	// turns the hook into a no-op, so the held solves drain.
	block := make(chan struct{})
	s.solveHook = func(validated) { <-block }
	hold := func(i int) Request {
		p := travelSpec(2)
		p.Bound = -200 - float64(i)
		return Request{Collection: "travel", Op: OpCount, Spec: p, NoCache: true}
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // 1 running + 1 queued = saturation
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Solve(context.Background(), hold(i)); err != nil {
				t.Errorf("held solve %d: %v", i, err)
			}
		}(i)
	}
	for s.admit.queueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Solve(context.Background(), hold(2)); err == nil {
		t.Error("expected a shed")
	}
	close(block)
	wg.Wait()
	return s
}

type metricSample struct {
	name   string // family name, labels stripped
	labels string
	value  float64
}

// parseMetrics splits the exposition into HELP/TYPE declarations and
// samples, failing on any line that fits no shape.
func parseMetrics(t *testing.T, text string) (help, typ map[string]string, samples []metricSample) {
	t.Helper()
	help, typ = map[string]string{}, map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(rest) != 2 || rest[1] == "" {
				t.Fatalf("malformed HELP line: %q", line)
			}
			help[rest[0]] = rest[1]
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(rest) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch rest[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			typ[rest[0]] = rest[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unrecognized comment line: %q", line)
		default:
			name, rest, ok := strings.Cut(line, " ")
			labels := ""
			if open := strings.Index(name, "{"); open >= 0 {
				if !strings.HasSuffix(name, "}") {
					t.Fatalf("malformed labels in %q", line)
				}
				labels = name[open+1 : len(name)-1]
				name = name[:open]
			}
			if !ok || name == "" {
				t.Fatalf("malformed sample line: %q", line)
			}
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			samples = append(samples, metricSample{name: name, labels: labels, value: v})
		}
	}
	return help, typ, samples
}

// family maps a sample name to the family its TYPE declares: histogram
// samples drop the _bucket/_sum/_count suffix.
func family(typ map[string]string, name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && typ[base] == "histogram" {
			return base
		}
	}
	return name
}

func TestMetricsExpositionWellFormed(t *testing.T) {
	s := metricsFixture(t)
	text := s.renderMetrics()
	help, typ, samples := parseMetrics(t, text)

	for name := range typ {
		if help[name] == "" {
			t.Errorf("family %s has TYPE but no HELP", name)
		}
		if !strings.HasPrefix(name, "pkgrec_") {
			t.Errorf("family %s lacks the pkgrec_ prefix", name)
		}
	}
	seen := map[string]bool{}
	for _, smp := range samples {
		fam := family(typ, smp.name)
		if typ[fam] == "" {
			t.Errorf("sample %s has no TYPE declaration", smp.name)
		}
		seen[fam] = true
		if smp.value < 0 || math.IsNaN(smp.value) {
			t.Errorf("sample %s carries %v", smp.name, smp.value)
		}
	}
	for name := range typ {
		if !seen[name] {
			t.Errorf("family %s declared but has no samples", name)
		}
	}

	// The hardening counters the operations guide alerts on must exist
	// and agree with /v1/stats.
	st := s.Stats()
	want := map[string]float64{
		"pkgrec_requests_total":    float64(st.Requests),
		"pkgrec_cache_hits_total":  float64(st.CacheHits),
		"pkgrec_shed_total":        float64(st.Shed),
		"pkgrec_deltas_total":      float64(st.Deltas),
		"pkgrec_wal_appends_total": float64(st.WALAppends),
		"pkgrec_wal_syncs_total":   float64(st.WALSyncs),
		"pkgrec_wal_errors_total":  float64(st.WALErrors),
		"pkgrec_queue_depth":       0,
		"pkgrec_wal_collections":   1,
	}
	got := map[string]float64{}
	for _, smp := range samples {
		if smp.labels == "" {
			got[smp.name] = smp.value
		}
	}
	for name, v := range want {
		gv, ok := got[name]
		if !ok {
			t.Errorf("series %s missing", name)
		} else if gv != v {
			t.Errorf("%s = %v, want %v (stats agreement)", name, gv, v)
		}
	}
	if st.Shed == 0 || st.WALAppends == 0 {
		t.Fatalf("fixture did not exercise the hardening counters: %+v", st)
	}
	var ops []string
	for _, smp := range samples {
		if smp.name == "pkgrec_op_requests_total" {
			ops = append(ops, smp.labels)
		}
	}
	sort.Strings(ops)
	if len(ops) == 0 || !strings.Contains(strings.Join(ops, ","), `op="count"`) {
		t.Errorf("per-op breakdown missing: %v", ops)
	}
}

func TestMetricsHistogramInvariants(t *testing.T) {
	s := metricsFixture(t)
	_, typ, samples := parseMetrics(t, s.renderMetrics())

	for fam, kind := range typ {
		if kind != "histogram" {
			continue
		}
		var bounds []float64
		var cumulative []float64
		var infCount, count float64
		haveSum, haveCount, haveInf := false, false, false
		for _, smp := range samples {
			switch smp.name {
			case fam + "_bucket":
				le := ""
				for _, kv := range strings.Split(smp.labels, ",") {
					if v, ok := strings.CutPrefix(kv, `le="`); ok {
						le = strings.TrimSuffix(v, `"`)
					}
				}
				if le == "+Inf" {
					haveInf, infCount = true, smp.value
					continue
				}
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s: unparseable le %q", fam, le)
				}
				bounds = append(bounds, b)
				cumulative = append(cumulative, smp.value)
			case fam + "_sum":
				haveSum = true
			case fam + "_count":
				haveCount, count = true, smp.value
			}
		}
		if !haveSum || !haveCount || !haveInf {
			t.Fatalf("%s: incomplete histogram (sum=%v count=%v inf=%v)", fam, haveSum, haveCount, haveInf)
		}
		if !sort.Float64sAreSorted(bounds) {
			t.Errorf("%s: bucket bounds not ascending: %v", fam, bounds)
		}
		if !sort.Float64sAreSorted(cumulative) {
			t.Errorf("%s: bucket counts not cumulative: %v", fam, cumulative)
		}
		if infCount != count {
			t.Errorf("%s: le=\"+Inf\" bucket %v != _count %v", fam, infCount, count)
		}
		if len(cumulative) > 0 && cumulative[len(cumulative)-1] > infCount {
			t.Errorf("%s: finite bucket exceeds +Inf: %v > %v", fam, cumulative[len(cumulative)-1], infCount)
		}
	}

	// The fixture ran real solves, so the latency histogram is populated.
	for _, smp := range samples {
		if smp.name == "pkgrec_solve_duration_seconds_count" && smp.value == 0 {
			t.Error("solve latency histogram empty after solves")
		}
	}
}

func TestMetricsEndpointContentType(t *testing.T) {
	s := travelServer(t, Options{}, 20, 16)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type %q", ct)
	}
}
