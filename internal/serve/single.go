package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces identical in-flight solves: the first request for a
// key becomes the leader and runs fn; requests arriving for the same key
// while it runs wait for the leader's result instead of re-solving. The
// leader runs under its own request's context — a follower whose context
// ends first abandons the wait (the leader keeps going for the others), and
// a follower with a longer deadline than the leader inherits the leader's
// outcome, including a deadline error; this is the standard singleflight
// trade-off and is documented in docs/serving.md.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  *Result
	err  error
}

// do runs fn once per key among concurrent callers. shared reports whether
// this caller joined an existing flight.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Result, error)) (res *Result, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// Cleanup is deferred so a panicking fn (recovered upstream by
	// net/http) cannot leave the flight entry behind — that would wedge
	// every later request for this key on a done channel that never
	// closes.
	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.res, c.err = fn()
	return c.res, false, c.err
}
