package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// The admission controller's scheduling decisions are deterministic given
// a queue state, so they are pinned by direct unit tests: waiter ordering
// within a tenant, tenant selection by debt, the express lane, both shed
// conditions, and the Retry-After arithmetic the 429s carry.

func wtr(seq uint64, pred time.Duration, cheap bool) *waiter {
	return &waiter{seq: seq, pred: pred, cheap: cheap, ready: make(chan struct{})}
}

func TestPickWaiterOrdering(t *testing.T) {
	cases := []struct {
		name string
		q    []*waiter
		want int
	}{
		{"cheap beats expensive", []*waiter{
			wtr(0, 50*time.Millisecond, false),
			wtr(1, 80*time.Millisecond, true),
		}, 1},
		{"cheap beats cheaper non-cheap", []*waiter{
			wtr(0, time.Millisecond, false),
			wtr(1, 2*time.Millisecond, true),
		}, 1},
		{"lower predicted cost wins within a class", []*waiter{
			wtr(0, 30*time.Millisecond, false),
			wtr(1, 10*time.Millisecond, false),
			wtr(2, 20*time.Millisecond, false),
		}, 1},
		{"arrival order breaks prediction ties", []*waiter{
			wtr(5, 10*time.Millisecond, false),
			wtr(3, 10*time.Millisecond, false),
			wtr(4, 10*time.Millisecond, false),
		}, 1},
		{"cheap class sorts by cost then arrival too", []*waiter{
			wtr(0, time.Millisecond, true),
			wtr(1, time.Millisecond, true),
			wtr(2, 500*time.Microsecond, true),
		}, 2},
	}
	for _, tc := range cases {
		if got := pickWaiter(tc.q); got != tc.want {
			t.Errorf("%s: pickWaiter = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestPickTenantLeastDebtWithNameTieBreak(t *testing.T) {
	a := newAdmitter(1, 16, 0)
	a.tenants["zeta"] = &tenantQ{name: "zeta", debt: 5, q: []*waiter{wtr(0, time.Millisecond, false)}}
	a.tenants["alpha"] = &tenantQ{name: "alpha", debt: 10, q: []*waiter{wtr(1, time.Millisecond, false)}}
	if got := a.pickTenantLocked(); got.name != "zeta" {
		t.Fatalf("least-debt tenant: got %q, want zeta", got.name)
	}
	a.tenants["alpha"].debt = 5
	if got := a.pickTenantLocked(); got.name != "alpha" {
		t.Fatalf("debt tie: got %q, want alpha (name order)", got.name)
	}
	// Tenants with empty queues are skipped, not picked.
	a.tenants["aaaa"] = &tenantQ{name: "aaaa", debt: 0}
	if got := a.pickTenantLocked(); got.name != "alpha" {
		t.Fatalf("empty-queue tenant picked: got %q", got.name)
	}
}

// A tenant joining mid-overload starts at the minimum live debt: next in
// line, but unable to convert an empty history into a monopoly.
func TestNewTenantStartsAtMinimumDebt(t *testing.T) {
	a := newAdmitter(1, 16, 0)
	if got := a.minDebtLocked(); got != 0 {
		t.Fatalf("min debt with no tenants = %v, want 0", got)
	}
	a.tenants["a"] = &tenantQ{name: "a", debt: 7}
	a.tenants["b"] = &tenantQ{name: "b", debt: 3}
	if got := a.minDebtLocked(); got != 3 {
		t.Fatalf("min debt = %v, want 3", got)
	}
}

func TestRetryAfterMath(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want time.Duration
	}{
		{0, time.Second},                           // floor: at least 1s
		{time.Millisecond, time.Second},            // sub-second rounds up to the floor
		{time.Second, time.Second},                 // exact second stays
		{1001 * time.Millisecond, 2 * time.Second}, // ceil, not round
		{2500 * time.Millisecond, 3 * time.Second},
		{10 * time.Second, 10 * time.Second},
	}
	for _, tc := range cases {
		if got := retryAfter(tc.wait); got != tc.want {
			t.Errorf("retryAfter(%v) = %v, want %v", tc.wait, got, tc.want)
		}
	}
}

func TestPredictedWaitDrainsAcrossSlots(t *testing.T) {
	a := newAdmitter(4, 16, 0)
	a.runningCost = 200 * time.Millisecond
	a.queuedCost = 600 * time.Millisecond
	if got := a.predictedWaitLocked(); got != 200*time.Millisecond {
		t.Fatalf("predicted wait = %v, want 200ms ((200+600)/4)", got)
	}
}

// The express lane: a free slot admits immediately when nobody queues, and
// cheap requests may take a free slot past a non-empty queue.
func TestExpressLaneAndCheapBypass(t *testing.T) {
	ctx := context.Background()
	a := newAdmitter(2, 16, 0)
	if err := a.acquire(ctx, "t", 5*time.Millisecond, false, 0); err != nil {
		t.Fatalf("express acquire: %v", err)
	}

	// Fill the second slot, then park a waiter so the queue is non-empty.
	if err := a.acquire(ctx, "t", 5*time.Millisecond, false, 0); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	waited := make(chan error, 1)
	go func() { waited <- a.acquire(ctx, "t", 5*time.Millisecond, false, 0) }()
	for a.queueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Release one slot: it must go to the queued waiter, not sit free.
	a.release(5 * time.Millisecond)
	if err := <-waited; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}

	// Park another expensive waiter; a cheap request must still ride the
	// express lane the moment a slot frees, ahead of it… but only via
	// dispatch fairness: with no free slot it queues like everyone else.
	go func() { waited <- a.acquire(ctx, "t", 5*time.Millisecond, false, 0) }()
	for a.queueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	a.release(5 * time.Millisecond) // grant the parked waiter
	if err := <-waited; err != nil {
		t.Fatalf("second queued acquire: %v", err)
	}
	a.release(5 * time.Millisecond) // one slot free again, one running

	done := make(chan error, 1)
	go func() { done <- a.acquire(ctx, "t2", time.Millisecond, true, 0) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cheap express acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cheap request did not take the free slot")
	}

	express, queued, sheds := a.counters()
	if express != 3 || queued != 2 || sheds != 0 {
		t.Fatalf("counters express=%d queued=%d sheds=%d, want 3/2/0", express, queued, sheds)
	}
}

func TestMaxQueueSheds(t *testing.T) {
	ctx := context.Background()
	a := newAdmitter(1, 1, 0)
	if err := a.acquire(ctx, "t", 10*time.Millisecond, false, 0); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	queuedErr := make(chan error, 1)
	go func() { queuedErr <- a.acquire(ctx, "t", 10*time.Millisecond, false, 0) }()
	for a.queueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Queue is full: the next arrival — cheap or not — sheds.
	err := a.acquire(ctx, "t", 10*time.Millisecond, false, 0)
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("full queue: got %v, want OverloadError", err)
	}
	if ov.RetryAfter < time.Second {
		t.Fatalf("Retry-After %v below the 1s floor", ov.RetryAfter)
	}
	if err := a.acquire(ctx, "t", time.Microsecond, true, 0); !errors.As(err, &ov) {
		t.Fatalf("cheap past a full queue: got %v, want OverloadError (hard bound exempts nobody)", err)
	}

	a.release(10 * time.Millisecond)
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued waiter after release: %v", err)
	}
	if _, _, sheds := a.counters(); sheds != 2 {
		t.Fatalf("sheds = %d, want 2", sheds)
	}
}

func TestShedThresholdSparesCheap(t *testing.T) {
	ctx := context.Background()
	a := newAdmitter(1, 100, 50*time.Millisecond)
	if err := a.acquire(ctx, "t", 200*time.Millisecond, false, 0); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Predicted wait is 200ms > 50ms threshold: expensive arrivals shed…
	var ov *OverloadError
	if err := a.acquire(ctx, "t", 10*time.Millisecond, false, 0); !errors.As(err, &ov) {
		t.Fatalf("beyond threshold: got %v, want OverloadError", err)
	}
	// …but a cheap arrival queues instead of shedding.
	cheapErr := make(chan error, 1)
	go func() { cheapErr <- a.acquire(ctx, "t", time.Millisecond, true, 0) }()
	for a.queueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	a.release(200 * time.Millisecond)
	if err := <-cheapErr; err != nil {
		t.Fatalf("cheap acquire under threshold pressure: %v", err)
	}
}

// A canceled context abandons the wait and leaves no queue residue; a
// cancellation racing its own grant returns the slot.
func TestAcquireCancellation(t *testing.T) {
	a := newAdmitter(1, 16, 0)
	if err := a.acquire(context.Background(), "t", time.Millisecond, false, 0); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.acquire(ctx, "t", time.Millisecond, false, 0) }()
	for a.queueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire: %v", err)
	}
	if d := a.queueDepth(); d != 0 {
		t.Fatalf("canceled waiter left queue depth %d", d)
	}
	if ts := a.tenantsSnapshot(); len(ts) != 0 {
		t.Fatalf("canceled waiter left tenants %v", ts)
	}
	a.release(time.Millisecond)
}

// Under a multi-tenant backlog, grants interleave by debt: a flooding
// tenant cannot take consecutive slots while another tenant waits.
func TestDispatchInterleavesTenants(t *testing.T) {
	ctx := context.Background()
	a := newAdmitter(1, 100, 0)
	if err := a.acquire(ctx, "seed", 10*time.Millisecond, false, 0); err != nil {
		t.Fatalf("seed acquire: %v", err)
	}

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	enqueue := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := a.acquire(ctx, tenant, 10*time.Millisecond, false, 0); err != nil {
					t.Errorf("%s acquire: %v", tenant, err)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				a.release(10 * time.Millisecond)
			}()
		}
	}
	enqueue("flood", 6)
	for a.queueDepth() < 6 {
		time.Sleep(time.Millisecond)
	}
	enqueue("victim", 2)
	for a.queueDepth() < 8 {
		time.Sleep(time.Millisecond)
	}

	a.release(10 * time.Millisecond) // start draining
	wg.Wait()

	// The victim's two requests must both complete within the first four
	// grants: debts alternate, so flood can never run twice while victim
	// still waits.
	victims := 0
	for i, tenant := range order {
		if tenant == "victim" {
			victims++
			if i >= 4 {
				t.Fatalf("victim grant delayed to position %d in %v", i, order)
			}
		}
	}
	if victims != 2 {
		t.Fatalf("victim grants = %d in %v, want 2", victims, order)
	}
}
