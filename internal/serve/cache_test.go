package serve

import (
	"fmt"
	"reflect"
	"testing"
)

// rebuildIndex recomputes the reverse index the slow way — from the cache
// contents — for comparison against the incrementally maintained one.
func rebuildIndex(c *lruCache) (byRel map[string]map[string]map[string]struct{}, byAll map[string]map[string]struct{}) {
	byRel = make(map[string]map[string]map[string]struct{})
	byAll = make(map[string]map[string]struct{})
	for _, slot := range c.entries() {
		e := slot.val
		if e.depsAll {
			if byAll[e.coll] == nil {
				byAll[e.coll] = make(map[string]struct{})
			}
			byAll[e.coll][slot.key] = struct{}{}
			continue
		}
		if byRel[e.coll] == nil {
			byRel[e.coll] = make(map[string]map[string]struct{})
		}
		for _, d := range e.deps {
			if byRel[e.coll][d] == nil {
				byRel[e.coll][d] = make(map[string]struct{})
			}
			byRel[e.coll][d][slot.key] = struct{}{}
		}
	}
	return byRel, byAll
}

func checkIndex(t *testing.T, c *lruCache, when string) {
	t.Helper()
	wantRel, wantAll := rebuildIndex(c)
	c.mu.Lock()
	gotRel, gotAll := c.byRel, c.byAll
	defer c.mu.Unlock()
	if !reflect.DeepEqual(gotRel, wantRel) {
		t.Fatalf("%s: byRel index drifted:\n got %v\nwant %v", when, gotRel, wantRel)
	}
	if !reflect.DeepEqual(gotAll, wantAll) {
		t.Fatalf("%s: byAll index drifted:\n got %v\nwant %v", when, gotAll, wantAll)
	}
}

// The reverse index must track the cache contents exactly through every
// mutation path: insert, in-place update, LRU eviction, targeted purge,
// repair rename, whole-collection purge and flush.
func TestCacheReverseIndexConsistency(t *testing.T) {
	c := newLRU(4)
	entry := func(coll string, depsAll bool, deps ...string) *lruEntry {
		return &lruEntry{coll: coll, deps: deps, depsAll: depsAll, res: &Result{Op: OpCount}}
	}
	c.put("k1", entry("a", false, "poi"))
	c.put("k2", entry("a", false, "poi", "flight"))
	c.put("k3", entry("a", true))
	c.put("k4", entry("b", false, "hotel"))
	checkIndex(t, c, "after inserts")

	// Dependent lookup via the index: poi touches k1, k2 and the depsAll
	// entry k3; hotel in collection a touches only k3.
	deps := c.dependents("a", map[string]struct{}{"poi": {}})
	if len(deps) != 3 {
		t.Fatalf("dependents(a, poi) = %v, want k1 k2 k3", deps)
	}
	if deps := c.dependents("a", map[string]struct{}{"hotel": {}}); len(deps) != 1 {
		t.Fatalf("dependents(a, hotel) = %v, want k3 only (depsAll)", deps)
	}

	// In-place update may change the dependency set; the index must follow.
	c.put("k1", entry("a", false, "museum"))
	checkIndex(t, c, "after dep-changing update")
	if deps := c.dependents("a", map[string]struct{}{"museum": {}}); len(deps) != 2 {
		t.Fatalf("dependents(a, museum) = %v, want k1 k3", deps)
	}

	// Capacity is 4: a fifth entry evicts the coldest, and the evicted
	// entry's keys must leave the index.
	c.put("k5", entry("b", false, "hotel", "flight"))
	if c.len() != 4 {
		t.Fatalf("cache len %d, want 4 after eviction", c.len())
	}
	checkIndex(t, c, "after eviction")

	// A repair rename moves a key without touching the dependency set.
	if !c.rename("k5", "k5'", func(e *lruEntry) *lruEntry { return e }) {
		t.Fatal("rename of a live key failed")
	}
	checkIndex(t, c, "after rename")
	if _, ok := c.peek("k5"); ok {
		t.Fatal("renamed key still resolves under the old name")
	}
	if _, ok := c.peek("k5'"); !ok {
		t.Fatal("renamed key not reachable under the new name")
	}

	// Renaming onto an occupied key displaces the occupant.
	c.put("k6", entry("b", false, "train"))
	if !c.rename("k5'", "k6", func(e *lruEntry) *lruEntry { return e }) {
		t.Fatal("displacing rename failed")
	}
	checkIndex(t, c, "after displacing rename")
	if c.rename("gone", "anywhere", func(e *lruEntry) *lruEntry { return e }) {
		t.Fatal("rename of an absent key claimed success")
	}

	// Targeted purges and removals.
	c.purgeDeps("a", map[string]struct{}{"museum": {}})
	checkIndex(t, c, "after purgeDeps")
	if deps := c.dependents("a", map[string]struct{}{"museum": {}}); len(deps) != 0 {
		t.Fatalf("purged keys still indexed: %v", deps)
	}
	c.remove("k6")
	checkIndex(t, c, "after remove")
	c.purge("b")
	checkIndex(t, c, "after purge")

	// Refill and flush: the index must end empty alongside the cache.
	for i := 0; i < 6; i++ {
		c.put(fmt.Sprintf("r%d", i), entry("a", i%3 == 0, "poi"))
	}
	checkIndex(t, c, "after refill")
	c.flush()
	checkIndex(t, c, "after flush")
	if len(c.byRel) != 0 || len(c.byAll) != 0 {
		t.Fatalf("flush left index residue: byRel=%v byAll=%v", c.byRel, c.byAll)
	}
}
