// Package serve is the serving layer: a long-lived, concurrent
// recommendation service that owns a set of named item collections and
// answers the paper's six problems (RPP, FRP, MBP, CPP, QRPP, ARPP) over
// them, designed for streams of related queries rather than one-shot
// library calls. QRPP is served in two forms: op "relax" (the minimal
// relaxation) and op "relaxplan" (the ranked minimal-relaxation
// suggestions, each with a witness package).
//
// Five mechanisms make repeated traffic cheap:
//
//   - a bounded-size LRU result cache keyed by a canonical fingerprint of
//     (collection name, content fingerprint of the relations the request
//     reads, canonical problem spec, operation parameters) — see cacheKey —
//     so a repeated solve is a map lookup. Because the key is
//     content-addressed at relation granularity, a delta to one relation
//     (MutateCollection) leaves every entry over unaffected relations
//     valid and reachable; only dependent entries are purged;
//   - request coalescing: identical solves that are in flight at the same
//     time share one engine run (a small singleflight group keyed like the
//     cache), so a thundering herd of equal requests costs one solve;
//   - a bounded worker pool: at most MaxConcurrent solves run at once, each
//     on the internal/core root-splitting parallel engine with a
//     per-request context deadline; excess requests queue on the pool;
//   - batched evaluation: SolveBatch (HTTP: POST /v1/batch) answers N
//     requests against one collection snapshot, deduplicating identical
//     sub-requests through the cache keys and isolating per-item failures
//     under a whole-batch deadline — the per-request setup overhead is paid
//     once per batch, not once per query;
//   - a per-collection prepared-problem cache: sub-solves and requests with
//     equal canonical specs share one built-and-prepared core.Problem
//     (candidates evaluated and bound tables warmed once), and a delta
//     carries every prepared problem over unaffected relations into the
//     next collection version, so warm-path solves after a small mutation
//     skip the rebuild entirely.
//
// Collections are copy-on-write snapshots (relation.Database.Clone shares
// tuple storage): readers keep solving against the version they resolved
// while a writer installs the next one, and the SnapshotsLive stat counts
// versions still pinned.
//
// Results are identical to direct library calls: every operation dispatches
// to the same solvers the public pkgrec API wraps, with the engine's
// serial/parallel equivalence guarantees. The HTTP front end (Handler,
// cmd/pkgrecd) and client live in http.go and client.go; docs/serving.md
// documents the wire protocol.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adjust"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/pbo"
	"repro/internal/relation"
	"repro/internal/relax"
	"repro/internal/spec"
)

// Options configures a Server. The zero value means: 1024 cache entries,
// 256 prepared problems per collection, GOMAXPROCS concurrent solves, 1
// engine worker per solve (so concurrent requests, not intra-solve
// parallelism, saturate the cores — a loaded server's sweet spot; raise
// EngineWorkers for low-traffic/large-solve deployments), no default
// deadline, 1024-sample latency window.
type Options struct {
	// CacheSize is the maximum number of cached results; ≤ 0 means 1024.
	CacheSize int
	// ProblemCacheSize bounds the prepared problems (warmed candidate
	// lists and bound tables) kept per collection version; ≤ 0 means 256.
	ProblemCacheSize int
	// MaxConcurrent bounds the number of solves running at once; ≤ 0 means
	// GOMAXPROCS. Excess solves queue (respecting their context).
	MaxConcurrent int
	// EngineWorkers is the per-solve worker count handed to the parallel
	// engine when a request does not set its own; ≤ 0 means 1.
	EngineWorkers int
	// DefaultTimeout applies to requests that carry no timeout; 0 means
	// no deadline.
	DefaultTimeout time.Duration
	// LatencyWindow is the number of recent solve latencies kept for the
	// percentile stats; ≤ 0 means 1024.
	LatencyWindow int
	// MaxQueue bounds each collection's admission queue — the
	// per-collection fairness budget: a collection with MaxQueue solves
	// already waiting sheds its next one with 429 + Retry-After, without
	// touching other collections' traffic; ≤ 0 means 16 × MaxConcurrent.
	MaxQueue int
	// ShedThreshold sheds non-cheap solves whose predicted wait for a
	// pool slot (queue drain at predicted cost) exceeds it; 0 disables
	// predicted-wait shedding (the MaxQueue bound still applies).
	ShedThreshold time.Duration
	// CheapThreshold classifies a solve as cheap — eligible for the
	// express admission lane and exempt from predicted-wait shedding —
	// when its predicted cost is at or below it; ≤ 0 means 2ms.
	CheapThreshold time.Duration
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 1024
	}
	if o.ProblemCacheSize <= 0 {
		o.ProblemCacheSize = 256
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if o.EngineWorkers <= 0 {
		o.EngineWorkers = 1
	}
	if o.LatencyWindow <= 0 {
		o.LatencyWindow = 1024
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 16 * o.MaxConcurrent
	}
	if o.CheapThreshold <= 0 {
		o.CheapThreshold = 2 * time.Millisecond
	}
	return o
}

// collection is an immutable snapshot of one named item collection. Solves
// pin the snapshot, not the server lock, so a swap or delta never blocks or
// races in-flight requests — they finish against the version they started
// with. refs counts the registry's reference plus one per pinned solve;
// when it drops to zero the version is gone and the SnapshotsLive gauge
// falls.
type collection struct {
	name        string
	version     uint64
	fingerprint string
	db          *relation.Database
	probs       *problemCache
	refs        atomic.Int64
}

// relevant returns the content fingerprint of the part of this snapshot a
// request with the given dependency set reads: the whole-database
// fingerprint when the set is not exhaustive, the subset fingerprint of the
// named relations otherwise.
func (c *collection) relevant(deps []string, depsAll bool) string {
	if depsAll {
		return c.fingerprint
	}
	return c.db.FingerprintOf(deps...)
}

// CollectionInfo describes a collection to clients.
type CollectionInfo struct {
	Name        string `json:"name"`
	Version     uint64 `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Relations   int    `json:"relations"`
	Tuples      int    `json:"tuples"`
}

func (c *collection) info() CollectionInfo {
	return CollectionInfo{
		Name:        c.name,
		Version:     c.version,
		Fingerprint: c.fingerprint,
		Relations:   len(c.db.Names()),
		Tuples:      c.db.Size(),
	}
}

// Server is the recommendation service. Create one with NewServer; all
// methods are safe for concurrent use.
type Server struct {
	opts   Options
	admit  *admitter
	cost   *costModel
	cache  *lruCache
	flight flightGroup
	stats  statsRec
	eng    core.EngineCounters
	pbo    pbo.Counters

	// writeMu serializes collection writers (SetCollection,
	// MutateCollection, RemoveCollection) so delta application and
	// fingerprinting run outside mu — readers are only blocked for the
	// pointer install.
	writeMu sync.Mutex
	mu      sync.RWMutex
	colls   map[string]*collection

	// walMu guards the durability registry (see durable.go); nil walCfg
	// means durability is off.
	walMu  sync.Mutex
	walCfg *WALConfig
	wals   map[string]*collWAL

	// solveHook, when set (tests only), runs inside every solve while it
	// holds its pool slot — the knob the admission soak uses to give
	// solves a deterministic, per-collection duration.
	solveHook func(v validated)
}

// NewServer builds a Server; see Options for the zero-value defaults.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:  opts,
		admit: newAdmitter(opts.MaxConcurrent, opts.MaxQueue, opts.ShedThreshold),
		cost:  newCostModel(),
		cache: newLRU(opts.CacheSize),
		colls: make(map[string]*collection),
		wals:  make(map[string]*collWAL),
	}
	s.stats.init(opts.LatencyWindow)
	return s
}

// newCollection wires a fresh snapshot with the registry's reference.
func (s *Server) newCollection(name string, version uint64, fp string, db *relation.Database) *collection {
	c := &collection{name: name, version: version, fingerprint: fp, db: db,
		probs: newProblemCache(s.opts.ProblemCacheSize)}
	c.refs.Store(1)
	s.stats.snapshots(1)
	return c
}

// pin takes a reference on a snapshot resolved under mu.
func (c *collection) pin() { c.refs.Add(1) }

// unpin drops a reference; the last one retires the snapshot.
func (s *Server) unpin(c *collection) {
	if c != nil && c.refs.Add(-1) == 0 {
		s.stats.snapshots(-1)
	}
}

// SetCollection registers db under name. Replacing a collection with
// different contents bumps its version and purges its cached results;
// reloading content-identical data (same Fingerprint) is idempotent — the
// version and the cache entries survive, so routine reloads keep a warm
// cache. The server stores a private copy-on-write clone, so the caller may
// keep mutating its copy. For incremental changes prefer MutateCollection,
// which keeps unaffected cache entries and prepared problems warm.
func (s *Server) SetCollection(name string, db *relation.Database) CollectionInfo {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	clone := db.Clone()
	fp := clone.Fingerprint()
	s.mu.Lock()
	old := s.colls[name]
	if old != nil && old.fingerprint == fp {
		s.mu.Unlock()
		return old.info()
	}
	version := uint64(1)
	if old != nil {
		version = old.version + 1
	}
	c := s.newCollection(name, version, fp, clone)
	s.colls[name] = c
	s.mu.Unlock()
	s.unpin(old)
	s.cache.purge(name)
	// Persist the full load as a snapshot (superseding any logged
	// deltas). SetCollection predates durability and has no error
	// return, so a persistence failure degrades — the collection serves
	// from memory and the WALErrors counter fires — instead of failing
	// the load; MutateCollection, which can refuse, enforces the strict
	// contract.
	if cw, err := s.walFor(name); err != nil {
		s.stats.walError()
	} else if cw != nil {
		if err := s.persistSnapshot(cw, fp, clone); err != nil {
			s.stats.walError()
		}
	}
	return c.info()
}

// MutateCollection applies an incremental delta to a collection: the new
// version shares every unmutated relation with the old one (copy-on-write),
// its fingerprint is combined from incrementally maintained per-relation
// hashes rather than rehashed, cached results whose relations were not
// touched stay valid (their content-addressed keys do not move), and
// prepared problems over unaffected relations carry over warm. In-flight
// solves keep their pinned snapshot. A delta that changes nothing is
// idempotent: same version, nothing purged.
func (s *Server) MutateCollection(name string, delta relation.Delta) (DeltaInfo, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.RLock()
	old := s.colls[name]
	s.mu.RUnlock()
	if old == nil {
		return DeltaInfo{}, &NotFoundError{What: "collection", Name: name}
	}
	// Writers are serialized by writeMu, so old cannot be replaced from
	// under us; apply the delta outside mu so readers keep resolving.
	res, err := old.db.ApplyDelta(delta)
	if err != nil {
		return DeltaInfo{}, &RequestError{Err: err}
	}
	info := DeltaInfo{Mutated: res.Mutated, Upserted: res.Upserted, Deleted: res.Deleted}
	if len(res.Mutated) == 0 {
		info.CollectionInfo = old.info()
		return info, nil
	}
	// Durability before visibility: the delta is appended and fsynced
	// before the new version installs, so an acknowledged mutation
	// survives a crash. A WAL failure rejects the delta outright
	// (503 on the wire) — acknowledging it un-logged would be a silent
	// lie about durability.
	cw, werr := s.walFor(name)
	if werr == nil && cw != nil {
		werr = s.walAppend(cw, old, delta)
	}
	if werr != nil {
		s.stats.walError()
		return DeltaInfo{}, &UnavailableError{Err: fmt.Errorf("delta not durable: %w", werr)}
	}
	c := s.newCollection(name, old.version+1, res.DB.Fingerprint(), res.DB)
	mutated := make(map[string]struct{}, len(res.Mutated))
	for _, n := range res.Mutated {
		mutated[n] = struct{}{}
	}
	c.probs.carryOver(old.probs, mutated, res.DB)
	// Advance the affected warm problems before install (so the first
	// reader of the new version finds them prepared), classify and repair
	// the dependent cache entries after (so a put racing the install is
	// caught — exactly the window the old purge covered).
	plans := s.planRepairs(c, res, mutated, old.probs.entries())
	s.mu.Lock()
	s.colls[name] = c
	s.mu.Unlock()
	s.unpin(old)
	s.repairCache(c, mutated, plans)
	s.stats.delta(res.Upserted + res.Deleted)
	if cw != nil {
		s.maybeCompact(cw, c)
	}
	info.CollectionInfo = c.info()
	return info, nil
}

// RemoveCollection drops a collection and purges its cached results; it
// reports whether the collection existed.
func (s *Server) RemoveCollection(name string) bool {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	old := s.colls[name]
	delete(s.colls, name)
	s.mu.Unlock()
	s.unpin(old)
	s.cache.purge(name)
	s.removeWAL(name)
	return old != nil
}

// Collections lists the registered collections sorted by name.
func (s *Server) Collections() []CollectionInfo {
	s.mu.RLock()
	infos := make([]CollectionInfo, 0, len(s.colls))
	for _, c := range s.colls {
		infos = append(infos, c.info())
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Collection returns the named collection's description.
func (s *Server) Collection(name string) (CollectionInfo, bool) {
	s.mu.RLock()
	c, ok := s.colls[name]
	s.mu.RUnlock()
	if !ok {
		return CollectionInfo{}, false
	}
	return c.info(), true
}

// FlushCache drops every cached result.
func (s *Server) FlushCache() { s.cache.flush() }

// putIfCurrent stores a solve result only while it is valid for the
// currently registered collection: the snapshot it was computed on is
// still installed, the installed version's relevant-relation fingerprint
// matches the one the key was built over (the solve straddled a delta that
// did not touch its relations), or — the repair pipeline's put-side twin —
// the installed version's warm problem proves the spec's candidate set is
// unchanged, in which case the result is resealed under the current
// fingerprint instead of dropped (see resealKey). The check and the put
// share the server lock with the writers' install step, so a stale key can
// never be left squatting an LRU slot: either this put sees the old
// snapshot gone and its fingerprint moved (and reseals or skips), or the
// writer's repair pass runs after the put and classifies the entry.
func (s *Server) putIfCurrent(c *collection, v validated, res *Result) {
	warmed, ok := s.tryPut(c, v, res)
	if ok || warmed == nil {
		return
	}
	// The spec was not warm on the installed version, so the reseal could
	// not be judged. Prepare it there — work the next miss for this spec
	// would pay anyway, now shared through the problem cache — and retry
	// the put once with the warm problem in hand.
	if _, err := s.sharedProblem(warmed, v).get(); err != nil {
		return
	}
	s.tryPut(c, v, res)
}

// tryPut is one putIfCurrent attempt under the server lock. When the put
// is neither stored nor provably dead — the installed version moved but
// has no warm problem for the spec to judge a reseal by — it returns that
// version (non-nil) with ok=false so the caller can warm it and retry.
func (s *Server) tryPut(c *collection, v validated, res *Result) (warm *collection, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cur := s.colls[c.name]
	if cur == nil {
		return nil, false
	}
	key := v.key
	candFP := ""
	if res.repair != nil {
		candFP = res.repair.candFP
	}
	if cur != c {
		curFP := cur.relevant(v.deps, v.keyAll)
		if curFP != v.relFP {
			ok, fp := s.resealKey(cur, v, res)
			if !ok {
				if fp == resealNotWarm && res.repair != nil && !v.keyAll {
					return cur, false
				}
				return nil, false
			}
			key = sealCacheKey(c.name, curFP, v.keyRest)
			candFP = fp
		}
	}
	var ri *repairInfo
	if res.repair != nil && !v.keyAll {
		m := *res.repair
		m.candFP = candFP
		ri = &repairInfo{canon: v.canon, repairMeta: m}
	}
	s.cache.put(key, &lruEntry{
		coll:    c.name,
		deps:    v.deps,
		depsAll: v.keyAll,
		keyRest: v.keyRest,
		repair:  ri,
		res:     res,
	})
	return nil, true
}

// resealNotWarm flags (in the fingerprint slot) that resealKey could not
// decide because the spec has no warm problem on the current version.
const resealNotWarm = "\x00not-warm"

// resealKey decides whether a result whose relations mutated while it was
// being computed is still exactly the answer the current version would
// give: the current warm problem for the same canonical spec must carry a
// candidate set fingerprint equal to the one the result was computed over
// (every score is a function of the candidate tuple itself, so an equal
// set means an equal answer), and nothing outside the candidate set may
// influence the result (no compatibility query or custom predicates). On
// success it returns the current candidate fingerprint for the entry's
// repair metadata; on failure the fingerprint slot is resealNotWarm when
// warming the spec could still rescue the put.
func (s *Server) resealKey(cur *collection, v validated, res *Result) (bool, string) {
	if v.keyAll || res.repair == nil {
		return false, ""
	}
	sp, ok := cur.probs.peek(v.canon)
	if !ok || !sp.ready() {
		return false, resealNotWarm
	}
	prob := sp.prob
	if prob.Qc != nil || prob.CompatFn != nil || prob.Prune != nil {
		return false, ""
	}
	fp, err := prob.CandidatesFingerprint()
	if err != nil || fp != res.repair.candFP {
		return false, ""
	}
	return true, fp
}

// snapshot resolves and pins the collection a request targets; the caller
// must unpin it when the request completes.
func (s *Server) snapshot(name string) (*collection, error) {
	s.mu.RLock()
	c, ok := s.colls[name]
	if ok {
		c.pin()
	}
	s.mu.RUnlock()
	if !ok {
		return nil, &NotFoundError{What: "collection", Name: name}
	}
	return c, nil
}

// validated is a request that passed the shared admission pipeline: op
// normalized and tallied, RPP selection decoded, spec canonicalized with
// its relation dependencies, and the result-cache key built over the
// content the request reads. Solve and SolveBatch both admit requests
// through validateRequest, so the two paths cannot drift.
//
// Two dependency scopes coexist: deps/depsAll describe what the *problem*
// (candidates, bound tables) reads — the carry-over test for prepared
// problems — while keyAll widens the *result's* identity to the whole
// database when the answer can depend on more than those relations. For
// most operations the scopes agree. The relax ops discretize their gap
// levels over the columns the selected relaxation points touch
// (relax.CandidateLevels), which the query's own relations cover, so they
// are keyed precisely too — except when a point falls back to the whole
// active domain (a formula position under active-domain semantics, a
// derived-predicate column), where keyAll widens the key so a delta
// anywhere invalidates the entry, exactly as correctness requires.
type validated struct {
	req     Request
	sel     []core.Package // RPP candidate selection, decoded once
	canon   string         // canonical problem spec (problem-sharing key)
	deps    []string       // extensional relations the spec reads
	depsAll bool           // the spec may read the whole database (FO)
	keyAll  bool           // the result depends on the whole database
	relFP   string         // content fingerprint the result is keyed on
	keyRest string         // request half of the key (op, backend, params)
	key     string         // result-cache key
}

// validateRequest runs the admission pipeline for one request against a
// resolved collection snapshot. Errors are client faults (RequestError).
func (s *Server) validateRequest(coll *collection, req Request) (validated, error) {
	op, err := normalizeOp(req.Op)
	if err != nil {
		return validated{}, err
	}
	req.Op = op
	backend, err := normalizeBackend(req.Backend, op)
	if err != nil {
		return validated{}, err
	}
	req.Backend = backend
	prio, err := normalizePriority(req.Priority)
	if err != nil {
		return validated{}, err
	}
	req.Priority = prio
	if err := validateShard(req); err != nil {
		return validated{}, err
	}
	s.stats.op(op)
	var sel []core.Package
	if op == OpDecide {
		if sel, err = decodeSelection(req.Selection); err != nil {
			return validated{}, &RequestError{Err: err}
		}
	}
	canon, deps, exhaustive, err := req.Spec.CanonicalAndDeps()
	if err != nil {
		return validated{}, &RequestError{Err: err}
	}
	v := validated{req: req, sel: sel, canon: canon, deps: deps, depsAll: !exhaustive}
	v.keyAll = v.depsAll
	if (op == OpRelax || op == OpRelaxPlan) && !v.depsAll {
		precise, err := relaxDepsPrecise(coll.db, req, v.deps)
		if err != nil {
			return validated{}, err
		}
		if !precise {
			v.keyAll = true
		}
	}
	v.relFP = coll.relevant(v.deps, v.keyAll)
	v.keyRest = requestKeyRest(req, sel, canon)
	v.key = sealCacheKey(coll.name, v.relFP, v.keyRest)
	return v, nil
}

// validateShard checks the shard fields' applicability: a well-formed
// ShardSpec, on a shardable operation (the four whole-space package
// walks — decide/relax/relaxplan/adjust are search loops whose partials
// do not merge associatively), on the branch-and-bound backend (the
// shard is a set of engine subtree roots; the PB compilation has no
// such decomposition), with a finite FloorHint only where a pruning
// floor exists (topk/maxbound).
func validateShard(req Request) error {
	if req.Shard == nil {
		if req.FloorHint != nil {
			return &RequestError{Err: fmt.Errorf("floorHint requires a shard")}
		}
		return nil
	}
	if err := req.Shard.Validate(); err != nil {
		return &RequestError{Err: err}
	}
	switch req.Op {
	case OpTopK, OpMaxBound, OpCount, OpExists:
	default:
		return &RequestError{Err: fmt.Errorf("op %q cannot be sharded", req.Op)}
	}
	if req.Backend != BackendBB {
		return &RequestError{Err: fmt.Errorf("backend %q cannot be sharded", req.Backend)}
	}
	if req.FloorHint != nil {
		if req.Op != OpTopK && req.Op != OpMaxBound {
			return &RequestError{Err: fmt.Errorf("floorHint applies to ops %q and %q only", OpTopK, OpMaxBound)}
		}
		if math.IsNaN(*req.FloorHint) || math.IsInf(*req.FloorHint, 0) {
			return &RequestError{Err: fmt.Errorf("floorHint must be finite")}
		}
	}
	return nil
}

// relaxDepsPrecise reports whether every relaxation point a relax request
// selects resolves its gap levels from columns of the spec's own relations
// (relax.LevelDeps), so the request can be content-addressed on deps alone.
// A point that falls back to the whole active domain — or reads a relation
// outside the dependency set, which current discovery never produces but is
// checked defensively — forces whole-database keying. Out-of-range point
// indices are reported precise here; Build rejects them at solve time with
// a proper client error.
func relaxDepsPrecise(db *relation.Database, req Request, deps []string) (bool, error) {
	if req.Relax == nil {
		return true, nil
	}
	q, err := parser.Parse(req.Spec.Query)
	if err != nil {
		return false, &RequestError{Err: err}
	}
	points, err := relax.Points(q)
	if err != nil {
		return false, &RequestError{Err: err}
	}
	depSet := make(map[string]struct{}, len(deps))
	for _, d := range deps {
		depSet[d] = struct{}{}
	}
	for _, ps := range req.Relax.Points {
		if ps.Index < 0 || ps.Index >= len(points) {
			continue
		}
		rels, precise := relax.LevelDeps(db, points[ps.Index])
		if !precise {
			return false, nil
		}
		for _, r := range rels {
			if _, ok := depSet[r]; !ok {
				return false, nil
			}
		}
	}
	return true, nil
}

// Solve answers one request: cache lookup, then a coalesced, pool-bounded
// engine run with the request's deadline. The result is exactly what the
// corresponding library call returns (see runSolve); Cached and ElapsedMS
// describe how this particular call was served.
func (s *Server) Solve(ctx context.Context, req Request) (*Response, error) {
	start := time.Now()
	s.stats.startRequest()
	defer s.stats.endRequest()

	coll, err := s.snapshot(req.Collection)
	if err != nil {
		s.stats.addError()
		return nil, err
	}
	defer s.unpin(coll)
	v, err := s.validateRequest(coll, req)
	if err != nil {
		s.stats.addError()
		return nil, err
	}
	req, key := v.req, v.key

	if !req.NoCache {
		if res, ok := s.cacheLookup(coll, v); ok {
			s.stats.lookup(true)
			s.stats.observe(time.Since(start))
			return s.respond(res, coll, true, start), nil
		}
		// Only consulted lookups count toward the hit rate; NoCache
		// traffic opted out and must not skew it.
		s.stats.lookup(false)
	}

	fkey := flightKey(key, req.NoCache)
	// The deadline starts here — before coalescing and pool admission — so
	// time spent waiting on another request's flight or on a saturated
	// pool counts against it: short-deadline requests shed load instead of
	// piling up behind long solves.
	solveCtx, cancel := s.withDeadline(ctx, req)
	defer cancel()
	res, shared, err := s.flight.do(solveCtx, fkey, func() (*Result, error) {
		release, err := s.admitSolve(solveCtx, coll.name, v)
		if err != nil {
			return nil, err
		}
		defer release()
		r, err := s.runSolve(solveCtx, coll, v)
		if err == nil && !req.NoCache {
			s.putIfCurrent(coll, v, r)
		}
		return r, err
	})
	if shared {
		s.stats.addCoalesced()
	}
	// Errored solves are observed too: deadline hits are exactly the slow
	// tail the latency percentiles exist to expose.
	s.stats.observe(time.Since(start))
	if err != nil {
		s.countFailure(err)
		return nil, err
	}
	return s.respond(res, coll, false, start), nil
}

// countFailure tallies a failed solve. Sheds (OverloadError) are
// deliberate load management, counted by the admitter into the Shed
// stat, not into Errors — an operator alerting on error rate must not
// page on the server doing exactly what it was configured to do.
func (s *Server) countFailure(err error) {
	var ov *OverloadError
	if errors.As(err, &ov) {
		return
	}
	s.stats.addError()
}

// cacheLookup consults the result cache for a validated request. On a miss
// it gives the lookup one second chance under the currently installed
// version's fingerprint: the request may have validated against a snapshot
// a delta superseded in the meantime, while the repair pipeline moved the
// wanted entry to its resealed key. Serving that entry is sound — it is
// the current version's exact answer, and a request racing a delta may be
// answered on either side of it.
func (s *Server) cacheLookup(coll *collection, v validated) (*Result, bool) {
	if res, ok := s.cache.get(v.key); ok {
		return res, true
	}
	s.mu.RLock()
	cur := s.colls[coll.name]
	s.mu.RUnlock()
	if cur == nil || cur == coll {
		return nil, false
	}
	key := sealCacheKey(coll.name, cur.relevant(v.deps, v.keyAll), v.keyRest)
	if key == v.key {
		return nil, false
	}
	return s.cache.get(key)
}

func (s *Server) respond(res *Result, coll *collection, cached bool, start time.Time) *Response {
	return &Response{
		Result:      *res,
		Collection:  coll.name,
		Version:     coll.version,
		Fingerprint: coll.fingerprint,
		Cached:      cached,
		ElapsedMS:   float64(time.Since(start)) / float64(time.Millisecond),
	}
}

// flightKey derives the coalescing (and batch-dedup) key from a cache
// key: NoCache requests fly under a separate key, because a caching
// request must never end up behind a leader whose result will not be
// stored (its waiters would lose the entry they asked for), and — in a
// batch — a NoCache item must never be answered through a cached twin.
// Every site that groups identical requests must use this one helper.
func flightKey(key string, noCache bool) string {
	if noCache {
		return key + "!nocache"
	}
	return key
}

// admitSolve takes a slot on the bounded solve pool through the
// cost-aware admission controller: the request is priced by the cost
// model, classified cheap or expensive against CheapThreshold, and
// queued under its collection's fairness budget (see admitter). The
// returned release function must be called when the solve finishes. A
// shed returns *OverloadError; a context cancellation returns ctx.Err().
func (s *Server) admitSolve(ctx context.Context, tenant string, v validated) (func(), error) {
	pred := s.cost.predict(costFamily(v))
	cheap := pred <= s.opts.CheapThreshold
	if err := s.admit.acquire(ctx, tenant, pred, cheap, priorityClass(v.req.Priority)); err != nil {
		return nil, err
	}
	return func() { s.admit.release(pred) }, nil
}

// withDeadline applies the request's (or the server's default) timeout.
func (s *Server) withDeadline(ctx context.Context, req Request) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// workers resolves the engine worker count for a request.
func (s *Server) workers(req Request) int {
	if req.Workers > 0 {
		return req.Workers
	}
	return s.opts.EngineWorkers
}

// buildProblem constructs (and instruments) the Problem a request's spec
// describes over a collection snapshot.
func (s *Server) buildProblem(coll *collection, ps spec.ProblemSpec) (*core.Problem, error) {
	prob, err := ps.Build(coll.db)
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	prob.Counters = &s.eng
	// Read provenance feeds the delta repair pipeline: with the table in
	// hand a mutation can advance the prepared problem and repair cached
	// results instead of discarding both. Prepare pays one lineage record
	// per candidate for it; untraceable (FO) specs ignore the flag.
	prob.TrackProvenance = true
	return prob, nil
}

// sharedProblem resolves the prepared problem a validated request solves
// on: the collection's cache keyed by canonical spec, so equal specs —
// within a batch, across batches, across single solves, and across deltas
// that left their relations untouched — share one warmed Problem.
func (s *Server) sharedProblem(coll *collection, v validated) *preparedProblem {
	ps := v.req.Spec
	return coll.probs.getOrCreate(v.canon, func() *preparedProblem {
		return &preparedProblem{
			deps:    v.deps,
			depsAll: v.depsAll,
			build:   func() (*core.Problem, error) { return s.buildProblem(coll, ps) },
		}
	})
}

// runSolve executes the request on its backend: the collection's shared
// prepared Problem for the spec, then the operation dispatch — to the
// engine, or through the problem's shared PB compilation for backend "pbo".
func (s *Server) runSolve(ctx context.Context, coll *collection, v validated) (*Result, error) {
	return s.runSolveOn(ctx, s.sharedProblem(coll, v), v)
}

// runSolveOn is the instrumented solve shared by the single and batch
// paths: it resolves the prepared problem, runs the operation, and
// trains the cost model with the observed wall time and — for the
// branch-and-bound backend — the solve's own engine node count, read
// from a private counter set (core.Problem.WithCounters) and flushed
// into the shared totals afterwards. The predicted-vs-actual ratio
// lands in the calibration histogram the /metrics endpoint exports.
func (s *Server) runSolveOn(ctx context.Context, sp *preparedProblem, v validated) (*Result, error) {
	prob, err := sp.get()
	if err != nil {
		return nil, err
	}
	family := costFamily(v)
	pred := s.cost.predict(family)
	if s.solveHook != nil {
		s.solveHook(v)
	}
	start := time.Now()
	var res *Result
	var nodes float64
	if v.req.Backend == BackendPBO {
		comp, cerr := sp.getPBO(&s.pbo)
		if cerr != nil {
			return nil, cerr
		}
		res, err = s.solvePBOOp(ctx, comp, prob, v.req, v.sel)
	} else {
		var priv core.EngineCounters
		res, err = s.solveOp(ctx, prob.WithCounters(&priv), v.req, v.sel)
		nodes = float64(priv.Nodes.Load())
		priv.AddTo(&s.eng)
	}
	// Errored solves train the model too: a deadline hit cost at least
	// its wall time, and pricing the family low because its solves keep
	// timing out would invert the admission order.
	actual := time.Since(start)
	s.cost.observe(family, actual, nodes)
	s.stats.observeSolve(actual, pred)
	return res, err
}

// solveOp executes the request's operation on a prebuilt problem. Every arm
// calls exactly the solver the public pkgrec API wraps, so daemon answers
// and library answers cannot drift apart; the engine's serial/parallel
// equivalence guarantees make the worker count invisible in results (only
// the choice of RPP witness can vary, and any returned witness is genuine).
// The problem is shared (read-only, after Prepare) across solves.
func (s *Server) solveOp(ctx context.Context, prob *core.Problem, req Request, sel []core.Package) (*Result, error) {
	if req.Shard != nil {
		return s.solveShardOp(ctx, prob, req)
	}
	workers := s.workers(req)
	res := &Result{Op: req.Op}
	var metaSel []core.Package // the selection repair metadata describes
	switch req.Op {
	case OpTopK:
		sel, ok, err := prob.FindTopKParallelCtx(ctx, workers)
		if err != nil {
			return nil, err
		}
		res.OK = ok
		for _, n := range sel {
			res.Packages = append(res.Packages, packageResult(prob, n))
		}
		metaSel = sel
	case OpDecide:
		ok, wit, err := prob.DecideTopKParallelCtx(ctx, sel, workers)
		if err != nil {
			return nil, err
		}
		res.OK = ok
		if wit != nil {
			w := packageResult(prob, *wit)
			res.Witness = &w
		}
		metaSel = sel
	case OpMaxBound:
		b, ok, err := prob.MaxBoundParallelCtx(ctx, workers)
		if err != nil {
			return nil, err
		}
		res.OK = ok
		if ok {
			res.Bound = &b
		}
	case OpCount:
		n, err := prob.CountValidParallelCtx(ctx, req.Spec.Bound, workers)
		if err != nil {
			return nil, err
		}
		res.OK = true
		res.Count = &n
	case OpExists:
		ok, err := prob.ExistsKValidParallelCtx(ctx, prob.K, req.Spec.Bound, workers)
		if err != nil {
			return nil, err
		}
		res.OK = ok
	case OpRelax:
		if req.Relax == nil {
			return nil, &RequestError{Err: fmt.Errorf("op %q needs a relax spec", req.Op)}
		}
		inst, err := req.Relax.Build(prob)
		if err != nil {
			return nil, &RequestError{Err: err}
		}
		rel, ok, err := relax.DecideCtx(ctx, inst, workers)
		if err != nil {
			return nil, err
		}
		res.OK = ok
		if ok {
			res.Gap = &rel.Gap
			res.RelaxedQuery = rel.Query.String()
		}
	case OpRelaxPlan:
		if req.Relax == nil {
			return nil, &RequestError{Err: fmt.Errorf("op %q needs a relax spec", req.Op)}
		}
		inst, err := req.Relax.Build(prob)
		if err != nil {
			return nil, &RequestError{Err: err}
		}
		sugs, err := relax.SuggestCtx(ctx, inst, maxSuggestions(req), workers)
		if err != nil {
			return nil, err
		}
		res.OK = len(sugs) > 0
		for _, sg := range sugs {
			sr := SuggestionResult{Gap: sg.Gap, RelaxedQuery: sg.Relaxation.Query.String()}
			for _, c := range sg.Relaxation.Choices {
				if c.D == 0 {
					continue
				}
				sr.Choices = append(sr.Choices, fmt.Sprintf("%s d=%s", c.Point.String(), spec.CanonFloat(c.D)))
			}
			if sg.Witness != nil {
				w := packageResult(prob, *sg.Witness)
				sr.Witness = &w
			}
			res.Suggestions = append(res.Suggestions, sr)
		}
		if res.OK {
			res.Gap = &res.Suggestions[0].Gap
			res.RelaxedQuery = res.Suggestions[0].RelaxedQuery
		}
	case OpAdjust:
		if req.Adjust == nil {
			return nil, &RequestError{Err: fmt.Errorf("op %q needs an adjust spec", req.Op)}
		}
		inst := req.Adjust.Build(prob, req.Extra)
		delta, ok, err := adjust.DecideCtx(ctx, inst, workers)
		if err != nil {
			return nil, err
		}
		res.OK = ok
		if ok {
			size := delta.Size()
			res.DeltaSize = &size
			for _, e := range delta.Edits {
				res.Delta = append(res.Delta, e.String())
			}
		}
	default:
		return nil, &RequestError{Err: fmt.Errorf("unknown op %q", req.Op)}
	}
	res.repair = buildRepairMeta(prob, req, metaSel, res)
	return res, nil
}

// solveShardOp executes a sharded operation (validateShard admitted it):
// the engine walks only the candidate subtrees the request's shard owns
// and the Result comes back Partial, carrying the shard's contribution
// in the shapes MergeShardResults consumes. Partials skip repair
// metadata — the repair proofs are whole-space arguments, so a delta to
// a dependency simply purges them — but they do cache and coalesce like
// any other result, keyed by their shard spec.
func (s *Server) solveShardOp(ctx context.Context, prob *core.Problem, req Request) (*Result, error) {
	workers := s.workers(req)
	shard := *req.Shard
	res := &Result{Op: req.Op, Partial: true}
	switch req.Op {
	case OpTopK, OpMaxBound:
		hint := math.Inf(-1)
		if req.FloorHint != nil {
			hint = *req.FloorHint
		}
		part, err := prob.FindTopKShardCtx(ctx, shard, hint, workers)
		if err != nil {
			return nil, err
		}
		res.OK = true
		for _, sp := range part.Scored {
			res.Packages = append(res.Packages, packageResult(prob, sp.Pkg))
		}
		// JSON cannot carry ±Inf; an absent floor means "no pruning floor
		// was established", which only ever happens when the shard never
		// filled a k-buffer.
		if f := part.Floor; !math.IsInf(f, 0) && !math.IsNaN(f) {
			res.ShardFloor = &f
		}
	case OpCount:
		n, err := prob.CountValidShardCtx(ctx, req.Spec.Bound, shard, workers)
		if err != nil {
			return nil, err
		}
		res.OK = true
		res.Count = &n
	case OpExists:
		n, err := prob.ExistsCountShardCtx(ctx, prob.K, req.Spec.Bound, shard, workers)
		if err != nil {
			return nil, err
		}
		res.OK = true
		res.Count = &n
	default:
		return nil, &RequestError{Err: fmt.Errorf("op %q cannot be sharded", req.Op)}
	}
	return res, nil
}

// solvePBOOp executes a package-problem operation on the spec's shared PB
// compilation. The result shapes are exactly solveOp's — the backends are
// result-identical by construction (the PB constraints are a sound
// relaxation and every model re-passes the exact filters; see internal/pbo)
// — so a "pbo" answer differs from a "bb" answer at most in the op "decide"
// witness, which is genuine under either backend. normalizeBackend already
// rejected the ops the backend does not serve.
func (s *Server) solvePBOOp(ctx context.Context, comp *pbo.Compiled, prob *core.Problem, req Request, sel []core.Package) (*Result, error) {
	res := &Result{Op: req.Op}
	var metaSel []core.Package // the selection repair metadata describes
	switch req.Op {
	case OpTopK:
		sel, ok, err := comp.FindTopKCtx(ctx)
		if err != nil {
			return nil, err
		}
		res.OK = ok
		for _, n := range sel {
			res.Packages = append(res.Packages, packageResult(prob, n))
		}
		metaSel = sel
	case OpDecide:
		ok, wit, err := comp.DecideTopKCtx(ctx, sel)
		if err != nil {
			return nil, err
		}
		res.OK = ok
		if wit != nil {
			w := packageResult(prob, *wit)
			res.Witness = &w
		}
		metaSel = sel
	case OpMaxBound:
		b, ok, err := comp.MaxBoundCtx(ctx)
		if err != nil {
			return nil, err
		}
		res.OK = ok
		if ok {
			res.Bound = &b
		}
	case OpCount:
		n, err := comp.CountValidCtx(ctx, req.Spec.Bound)
		if err != nil {
			return nil, err
		}
		res.OK = true
		res.Count = &n
	case OpExists:
		ok, err := comp.ExistsKValidCtx(ctx, prob.K, req.Spec.Bound)
		if err != nil {
			return nil, err
		}
		res.OK = ok
	default:
		return nil, &RequestError{Err: fmt.Errorf("backend %q does not support op %q", req.Backend, req.Op)}
	}
	res.repair = buildRepairMeta(prob, req, metaSel, res)
	return res, nil
}

// defaultMaxSuggestions caps op "relaxplan" output when the request does
// not choose its own limit.
const defaultMaxSuggestions = 5

// maxSuggestions normalizes the relaxplan suggestion cap; the normalized
// value is what the cache key carries, so "unset" and an explicit 5 share
// an entry.
func maxSuggestions(req Request) int {
	if req.MaxSuggestions > 0 {
		return req.MaxSuggestions
	}
	return defaultMaxSuggestions
}

func packageResult(p *core.Problem, n core.Package) PackageResult {
	tuples := make([][]any, n.Len())
	for i, t := range n.Tuples() {
		row := make([]any, len(t))
		for j, v := range t {
			row[j] = relation.ValueToJSON(v)
		}
		tuples[i] = row
	}
	return PackageResult{Tuples: tuples, Val: p.Val.Eval(n), Cost: p.Cost.Eval(n)}
}

// decodeSelection converts the wire form of an RPP candidate selection
// (packages as lists of tuples of JSON scalars) into packages.
func decodeSelection(sel [][][]any) ([]core.Package, error) {
	pkgs := make([]core.Package, len(sel))
	for i, rows := range sel {
		tuples := make([]relation.Tuple, len(rows))
		for j, row := range rows {
			t := make(relation.Tuple, len(row))
			for k, x := range row {
				v, err := relation.ValueFromJSON(x)
				if err != nil {
					return nil, fmt.Errorf("selection package %d tuple %d: %w", i, j, err)
				}
				t[k] = v
			}
			tuples[j] = t
		}
		pkgs[i] = core.NewPackage(tuples...)
	}
	return pkgs, nil
}

// cacheKey builds the canonical fingerprint a request's result is cached
// under: the collection name, the content fingerprint of the relations the
// request reads (relFP — the whole-database fingerprint for FO specs), the
// canonical problem spec (canon, the caller's spec canonicalization) plus
// the operation and its parameters. The collection version is deliberately
// absent: identity is content-addressed, so a delta that does not touch a
// request's relations leaves its key — and its cached entry — valid.
// Everything execution-related (workers, timeout, NoCache) is excluded
// too — it cannot change the answer. Queries are canonicalized by parse +
// re-render (internal/parser.Canonicalize via spec.Canonical), so
// formatting-different but equal requests share an entry.
func (s *Server) cacheKey(coll *collection, req Request, sel []core.Package, canon, relFP string) string {
	return sealCacheKey(coll.name, relFP, requestKeyRest(req, sel, canon))
}

// requestKeyRest renders the request half of the cache key — operation,
// backend, canonical spec and op parameters — without the collection name
// or content fingerprint. Cache entries keep it (lruEntry.keyRest) so the
// delta repair pipeline can reseal a surviving entry under the post-delta
// fingerprint without the original request in hand.
func requestKeyRest(req Request, sel []core.Package, canon string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s", req.Op, req.Backend, canon)
	switch req.Op {
	case OpDecide:
		keys := make([]string, len(sel))
		for i, p := range sel {
			keys[i] = p.Key()
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "|sel=%s", strings.Join(keys, "&"))
	case OpRelax:
		if req.Relax != nil {
			fmt.Fprintf(&b, "|%s", req.Relax.Canonical())
		}
	case OpRelaxPlan:
		if req.Relax != nil {
			fmt.Fprintf(&b, "|%s", req.Relax.Canonical())
		}
		fmt.Fprintf(&b, "|max=%d", maxSuggestions(req))
	case OpAdjust:
		if req.Adjust != nil {
			fmt.Fprintf(&b, "|%s", req.Adjust.Canonical())
		}
		if req.Extra != nil {
			fmt.Fprintf(&b, "|extra=%s", req.Extra.Fingerprint())
		}
	}
	// A shard partial answers a different (sub-)question than the whole
	// solve, and a floor hint changes which packages the partial reports,
	// so both are part of the result's identity.
	if req.Shard != nil {
		fmt.Fprintf(&b, "|shard=%d/%d", req.Shard.Index, req.Shard.Count)
		if req.FloorHint != nil {
			fmt.Fprintf(&b, "|floor=%s", spec.CanonFloat(*req.FloorHint))
		}
	}
	return b.String()
}

// sealCacheKey combines the collection name, the content fingerprint of
// the relations the request reads, and the request half of the key into
// the stored cache key.
func sealCacheKey(collName, relFP, keyRest string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s:%s|%s", spec.CanonString(collName), relFP, keyRest)))
	return hex.EncodeToString(sum[:])
}

// Stats returns a consistent snapshot of the service counters: everything
// statsRec guards is captured under one lock (see Stats), with the
// collection count, cache size and lock-free engine counters read around
// it.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	colls := len(s.colls)
	s.mu.RUnlock()
	st := s.stats.snapshot()
	st.Collections = colls
	st.CacheEntries = s.cache.len()
	st.EngineNodes = s.eng.Nodes.Load()
	st.EnginePackages = s.eng.Yielded.Load()
	st.EnginePruned = s.eng.Pruned.Load()
	st.EngineBoundEvals = s.eng.BoundEvals.Load()
	st.EnginePrepares = s.eng.Prepares.Load()
	st.EngineSessionResumes = s.eng.SessionResumes.Load()
	st.EngineSessionNodesSaved = s.eng.SessionNodesSaved.Load()
	st.PBOSolves, _, st.PBOPropagations, st.PBOConflicts, _, _ = s.pbo.Snapshot()
	st.AdmitExpress, st.AdmitQueued, st.Shed = s.admit.counters()
	st.QueueDepth = s.admit.queueDepth()
	st.CostFamilies = s.cost.families()
	st.WALCollections, st.WALBytes, st.WALSyncs = s.walTotals()
	return st
}
