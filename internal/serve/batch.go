package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/relation"
	"repro/internal/spec"
)

// BatchRequest is N solve requests against one collection, answered as a
// unit: the collection is snapshotted once, identical sub-requests are
// deduplicated through the same canonical fingerprints the result cache
// keys on, sub-requests with equal problem specs share one prepared
// Problem (candidates evaluated and bound tables built once), and the
// sub-solves are scheduled on the bounded pool under a single whole-batch
// deadline. Items fail independently: one malformed spec or one timed-out
// solve never fails the batch.
type BatchRequest struct {
	Collection string      `json:"collection"`
	Items      []BatchItem `json:"items"`
	// TimeoutMS is the whole-batch deadline (> 0 overrides the server's
	// default timeout). Every sub-solve, including its wait for a pool
	// slot, counts against it.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
	// NoCache makes every item bypass the result cache (deduplication
	// still applies, among the batch's NoCache items).
	NoCache bool `json:"noCache,omitempty"`
	// Priority is the admission class every item inherits unless it sets
	// its own; see Request.Priority.
	Priority string `json:"priority,omitempty"`
}

// BatchItem is one sub-request of a batch: a Request without the
// collection (the batch names it once) and without a timeout (the batch
// carries one whole-batch deadline).
type BatchItem struct {
	Op   string           `json:"op"`
	Spec spec.ProblemSpec `json:"spec"`
	// Backend selects the solver for this item, as in Request.Backend.
	Backend   string          `json:"backend,omitempty"`
	Selection [][][]any       `json:"selection,omitempty"`
	Relax     *spec.RelaxSpec `json:"relax,omitempty"`
	// MaxSuggestions caps op "relaxplan" output, as in Request.
	MaxSuggestions int                `json:"maxSuggestions,omitempty"`
	Adjust         *spec.AdjustSpec   `json:"adjust,omitempty"`
	Extra          *relation.Database `json:"extra,omitempty"`
	Workers        int                `json:"workers,omitempty"`
	NoCache        bool               `json:"noCache,omitempty"`
	// Priority is the item's admission class; empty inherits the batch's.
	Priority string `json:"priority,omitempty"`
}

// Request lifts the item to the single-solve Request form — the form the
// cache-key and solver machinery operate on, and the request a client
// would send to /v1/solve to ask the same question outside a batch.
func (it BatchItem) Request(collection string) Request {
	return Request{
		Collection:     collection,
		Op:             it.Op,
		Spec:           it.Spec,
		Backend:        it.Backend,
		Selection:      it.Selection,
		Relax:          it.Relax,
		MaxSuggestions: it.MaxSuggestions,
		Adjust:         it.Adjust,
		Extra:          it.Extra,
		Workers:        it.Workers,
		NoCache:        it.NoCache,
		Priority:       it.Priority,
	}
}

// ItemResponse is one item's outcome. Exactly one of Result and Error is
// set; Cached and Deduped say how the item was served. A deduplicated item
// inherits the leading duplicate's successful result (cached or solved);
// a duplicate of a failed lead reports the inherited error instead, with
// Deduped unset.
type ItemResponse struct {
	Result    *Result `json:"result,omitempty"`
	Error     string  `json:"error,omitempty"`
	Cached    bool    `json:"cached,omitempty"`
	Deduped   bool    `json:"deduped,omitempty"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// BatchResponse summarises a batch: per-item outcomes in request order
// plus how much work the batch actually performed.
type BatchResponse struct {
	Collection string         `json:"collection"`
	Version    uint64         `json:"version"`
	Items      []ItemResponse `json:"items"`
	// Solves counts the items answered by an engine run — their own, or
	// an identical outside in-flight solve they joined (the latter also
	// surfaces in the Coalesced stat); CacheHits and Deduped count the
	// items served without one (from the result cache, or from an
	// identical item in the same batch). Errors counts failed items.
	Solves    int     `json:"solves"`
	CacheHits int     `json:"cacheHits"`
	Deduped   int     `json:"deduped"`
	Errors    int     `json:"errors"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// batchItem is the resolved execution state of one batch item. shared is
// the collection's prepared problem for the item's spec (see
// preparedProblem): batch items share it with each other, with single
// solves, and across deltas that leave their relations untouched.
type batchItem struct {
	v      validated
	shared *preparedProblem
	lead   int  // index of the first identical item; == own index for leads
	shed   bool // the lead was shed by admission (OverloadError)
}

// SolveBatch answers a batch of solve requests over one collection
// snapshot. Items are validated and fingerprinted up front; identical
// items (equal canonical cache keys) collapse onto one underlying solve;
// items whose problem specs agree share one prepared Problem; distinct
// items run concurrently, each taking a slot on the bounded solve pool,
// all under one whole-batch deadline. Item failures are isolated — the
// batch-level error is non-nil only when the collection is unknown or the
// context is already dead at entry.
func (s *Server) SolveBatch(ctx context.Context, breq BatchRequest) (*BatchResponse, error) {
	start := time.Now()
	s.stats.startBatch()
	if err := ctx.Err(); err != nil {
		s.stats.addError()
		return nil, err
	}
	coll, err := s.snapshot(breq.Collection)
	if err != nil {
		s.stats.addError()
		return nil, err
	}
	defer s.unpin(coll)
	resp := &BatchResponse{
		Collection: coll.name,
		Version:    coll.version,
		Items:      make([]ItemResponse, len(breq.Items)),
	}
	if len(breq.Items) == 0 {
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
		return resp, nil
	}
	s.stats.addBatchItems(len(breq.Items))

	// Phase 1 (serial, cheap): admit each item through the shared
	// validation pipeline and wire up sharing — duplicates point at their
	// lead item, distinct items with equal specs share the collection's
	// prepared Problem. Deduplication keys carry the NoCache bit exactly
	// like flight keys do: a NoCache item must never be answered through
	// a cached twin, and a caching item must never collapse onto a lead
	// whose result is not stored.
	items := make([]*batchItem, len(breq.Items))
	leads := map[string]int{} // dedup key -> lead item index
	fail := func(i int, err error) {
		resp.Items[i] = ItemResponse{Error: err.Error()}
		s.stats.addError()
	}
	for i, bit := range breq.Items {
		req := bit.Request(breq.Collection)
		req.NoCache = req.NoCache || breq.NoCache
		if req.Priority == "" {
			req.Priority = breq.Priority
		}
		v, err := s.validateRequest(coll, req)
		if err != nil {
			fail(i, err)
			continue
		}
		it := &batchItem{v: v, lead: i}
		dedupKey := flightKey(v.key, v.req.NoCache)
		if lead, ok := leads[dedupKey]; ok {
			it.lead = lead
		} else {
			leads[dedupKey] = i
			it.shared = s.sharedProblem(coll, v)
		}
		items[i] = it
	}

	// Phase 2: run the lead items concurrently on the bounded pool under
	// the whole-batch deadline.
	bctx, cancel := s.withDeadline(ctx, Request{TimeoutMS: breq.TimeoutMS})
	defer cancel()
	var wg sync.WaitGroup
	for i, it := range items {
		if it == nil || it.lead != i {
			continue
		}
		wg.Add(1)
		go func(i int, it *batchItem) {
			defer wg.Done()
			itemStart := time.Now()
			s.stats.itemStart()
			defer s.stats.itemEnd()
			res, cached, err := s.solveBatchItem(bctx, coll, it)
			s.stats.observe(time.Since(itemStart))
			ir := ItemResponse{
				Cached:    cached,
				ElapsedMS: float64(time.Since(itemStart)) / float64(time.Millisecond),
			}
			if err != nil {
				var ov *OverloadError
				it.shed = errors.As(err, &ov)
				s.countFailure(err)
				ir.Error = err.Error()
			} else {
				ir.Result = res
			}
			resp.Items[i] = ir
		}(i, it)
	}
	wg.Wait()

	// Phase 3: fan lead outcomes out to their duplicates. Results are
	// immutable and shared by pointer, exactly as cache hits are. Only a
	// successful share counts as deduplication (here and in the stats); a
	// duplicate of a failed lead reports the inherited error and counts
	// as an error, so batch-response tallies and /v1/stats agree.
	for i, it := range items {
		if it == nil || it.lead == i {
			continue
		}
		lead := resp.Items[it.lead]
		if lead.Error != "" {
			resp.Items[i] = ItemResponse{Error: lead.Error}
			// A duplicate of a shed lead inherits the shed, not an
			// error — exactly as coalesced followers of a shed single
			// solve do.
			if !items[it.lead].shed {
				s.stats.addError()
			}
			continue
		}
		resp.Items[i] = ItemResponse{
			Result:  lead.Result,
			Cached:  lead.Cached,
			Deduped: true,
		}
		s.stats.addDeduped()
	}
	for _, ir := range resp.Items {
		switch {
		case ir.Error != "":
			resp.Errors++
		case ir.Deduped:
			resp.Deduped++
		case ir.Cached:
			resp.CacheHits++
		default:
			resp.Solves++
		}
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, nil
}

// solveBatchItem serves one lead item: result-cache lookup, then a
// coalesced, pool-bounded run of the shared prepared problem. The flight
// key is the same one single solves use, so a batch item also coalesces
// with identical /v1/solve traffic in flight at the same time.
func (s *Server) solveBatchItem(ctx context.Context, coll *collection, it *batchItem) (*Result, bool, error) {
	v := it.v
	if !v.req.NoCache {
		if res, ok := s.cacheLookup(coll, v); ok {
			s.stats.lookup(true)
			return res, true, nil
		}
		s.stats.lookup(false)
	}
	res, shared, err := s.flight.do(ctx, flightKey(v.key, v.req.NoCache), func() (*Result, error) {
		release, err := s.admitSolve(ctx, coll.name, v)
		if err != nil {
			return nil, err
		}
		defer release()
		r, err := s.runSolveOn(ctx, it.shared, v)
		if err == nil && !v.req.NoCache {
			s.putIfCurrent(coll, v, r)
		}
		return r, err
	})
	if shared {
		s.stats.addCoalesced()
	}
	return res, false, err
}
