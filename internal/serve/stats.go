package serve

import (
	"sort"
	"sync"
	"time"
)

// Stats is a snapshot of the service counters, served at GET /v1/stats.
// Every field except the Engine* group is captured atomically under one
// lock, so the numbers of one snapshot are mutually consistent — a scrape
// can never observe, say, more consulted cache lookups than admitted
// requests because the counters were read at different instants. The
// Engine* counters are written lock-free by running engine workers and are
// only individually consistent.
type Stats struct {
	Collections  int     `json:"collections"`
	CacheEntries int     `json:"cacheEntries"`
	Requests     uint64  `json:"requests"`
	CacheHits    uint64  `json:"cacheHits"`
	CacheMisses  uint64  `json:"cacheMisses"`
	Coalesced    uint64  `json:"coalesced"`
	Errors       uint64  `json:"errors"`
	InFlight     int64   `json:"inFlight"`
	HitRate      float64 `json:"hitRate"`
	// Batches / BatchItems / BatchDeduped describe the batch pipeline:
	// SolveBatch calls, sub-requests across them, and sub-requests
	// answered by an identical item of the same batch instead of their
	// own solve (successful shares only — a duplicate of a failed item
	// counts into Errors). Requests counts single solves only; batch
	// items surface here and in the shared hit/miss/coalesced/latency
	// counters.
	Batches      uint64 `json:"batches"`
	BatchItems   uint64 `json:"batchItems"`
	BatchDeduped uint64 `json:"batchDeduped"`
	// Deltas / DeltaItems / SnapshotsLive describe live collection
	// mutation: delta installs that actually changed content, tuples
	// upserted+deleted across them, and how many collection snapshots are
	// currently reachable — the registered versions plus superseded ones
	// still pinned by in-flight solves. A SnapshotsLive persistently above
	// Collections means long solves are straddling mutations.
	Deltas        uint64 `json:"deltas"`
	DeltaItems    uint64 `json:"deltaItems"`
	SnapshotsLive int64  `json:"snapshotsLive"`
	// RepairRekeyed / RepairPatched / RepairResolved break down what deltas
	// did to the cache entries depending on a mutated relation: kept
	// verbatim under a new content key (the spec's candidates were
	// untouched), kept because every candidate change was provably outside
	// the entry's result (see internal/serve/repair.go), or purged. The
	// repaired fraction (rekeyed+patched over all three) is the direct
	// measure of how much churn the repair pipeline absorbs.
	RepairRekeyed  uint64 `json:"repairRekeyed"`
	RepairPatched  uint64 `json:"repairPatched"`
	RepairResolved uint64 `json:"repairResolved"`
	// EngineNodes / EnginePackages / EnginePruned / EngineBoundEvals are
	// the engine's cost accounting (core.EngineCounters): DFS nodes
	// visited, valid packages yielded, subtrees cut by the branch-and-bound
	// layer, and bound evaluations across all solves since start. A high
	// EnginePruned relative to EngineNodes means the bound layer is doing
	// the serving fleet's work for it. EnginePrepares counts candidate
	// evaluations (problem warm-ups): after a delta it should grow only
	// for specs whose relations mutated, the observable face of the
	// prepared-problem carry-over.
	EngineNodes      int64 `json:"engineNodes"`
	EnginePackages   int64 `json:"enginePackages"`
	EnginePruned     int64 `json:"enginePruned"`
	EngineBoundEvals int64 `json:"engineBoundEvals"`
	EnginePrepares   int64 `json:"enginePrepares"`
	// EngineSessionResumes / EngineSessionNodesSaved are the relaxation
	// session-reuse accounting: lattice probes answered from a
	// core.SolveSession memo instead of a fresh engine walk, and the DFS
	// nodes those walks would have visited. They grow with relax/relaxplan
	// traffic whose gap levels collapse to repeated candidate lists.
	EngineSessionResumes    int64 `json:"engineSessionResumes"`
	EngineSessionNodesSaved int64 `json:"engineSessionNodesSaved"`
	// PBOSolves / PBOConflicts / PBOPropagations are the pseudo-Boolean
	// backend's accounting (pbo.Counters) across all backend-"pbo" solves
	// since start: entry-point solves, search dead ends, and literals forced
	// by constraint propagation. All three stay zero until a request selects
	// the backend. Like the Engine* group they are written lock-free and
	// only individually consistent.
	PBOSolves       int64 `json:"pboSolves"`
	PBOConflicts    int64 `json:"pboConflicts"`
	PBOPropagations int64 `json:"pboPropagations"`
	// AdmitExpress / AdmitQueued / Shed / QueueDepth describe the
	// cost-aware admission controller (see admit.go): solves granted a
	// slot without waiting, solves granted after the fairness queue,
	// solves rejected with 429 + Retry-After, and the queue's current
	// depth. Sheds are load management, not faults — they are deliberately
	// excluded from Errors. CostFamilies is the number of
	// (op, backend, spec) families the cost model currently tracks.
	AdmitExpress uint64 `json:"admitExpress"`
	AdmitQueued  uint64 `json:"admitQueued"`
	Shed         uint64 `json:"shed"`
	QueueDepth   int    `json:"queueDepth"`
	CostFamilies int    `json:"costFamilies"`
	// The WAL* group describes collection durability (see durable.go):
	// collections with a live log, records appended and fsync rounds run
	// since start, live log bytes across collections, compactions
	// (snapshot + log reset), records replayed during recovery, and
	// durability faults (failed appends, snapshot write failures) — the
	// alert-worthy counter of the group.
	WALCollections int               `json:"walCollections"`
	WALAppends     uint64            `json:"walAppends"`
	WALSyncs       uint64            `json:"walSyncs"`
	WALBytes       int64             `json:"walBytes"`
	WALCompactions uint64            `json:"walCompactions"`
	WALReplayed    uint64            `json:"walReplayed"`
	WALErrors      uint64            `json:"walErrors"`
	Latency        LatencySummary    `json:"latencyMs"`
	PerOp          map[string]uint64 `json:"perOp,omitempty"`
}

// LatencySummary reports percentiles (in milliseconds) over the most recent
// LatencyWindow requests — cache hits included (so a warming cache visibly
// drags p50 down) and errored solves too (so deadline hits surface in the
// tail instead of vanishing from it).
type LatencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// statsRec is the live side of Stats. All counters sit behind one mutex:
// updates are a few nanoseconds each and the solve path already took this
// lock for the per-op tally and the latency ring, while the payoff is that
// snapshot() returns one consistent cut of every counter (the /v1/stats
// tearing fix). Methods must stay tiny and never call out while holding mu.
type statsRec struct {
	mu           sync.Mutex
	requests     uint64
	hits         uint64
	misses       uint64
	coalesced    uint64
	errors       uint64
	inFlight     int64
	batches      uint64
	batchItems   uint64
	batchDeduped uint64
	deltas       uint64
	deltaItems   uint64
	snapsLive    int64
	rekeyed      uint64
	patched      uint64
	resolved     uint64

	walAppends     uint64
	walCompactions uint64
	walReplayed    uint64
	walErrors      uint64

	perOp map[string]uint64
	ring  []float64 // latency samples in ms
	next  int
	full  bool

	// Prometheus histograms (metrics.go renders them): solve wall time
	// in seconds, and the cost model's calibration — actual over
	// predicted solve cost, 1.0 meaning a perfect prediction.
	solveHist histogram
	ratioHist histogram
}

// init sizes the latency ring; called once by NewServer before any use.
func (s *statsRec) init(window int) {
	s.perOp = make(map[string]uint64)
	s.ring = make([]float64, window)
	s.solveHist.init(solveLatencyBuckets)
	s.ratioHist.init(costRatioBuckets)
}

// startRequest admits one single-solve request: counted before validation,
// so solve errors never outnumber Requests.
func (s *statsRec) startRequest() {
	s.mu.Lock()
	s.requests++
	s.inFlight++
	s.mu.Unlock()
}

// startBatch admits one batch call; items are tallied separately once the
// batch shape is known.
func (s *statsRec) startBatch() {
	s.mu.Lock()
	s.batches++
	s.mu.Unlock()
}

func (s *statsRec) addBatchItems(n int) {
	s.mu.Lock()
	s.batchItems += uint64(n)
	s.mu.Unlock()
}

func (s *statsRec) endRequest() {
	s.mu.Lock()
	s.inFlight--
	s.mu.Unlock()
}

func (s *statsRec) itemStart() {
	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()
}

func (s *statsRec) itemEnd() {
	s.mu.Lock()
	s.inFlight--
	s.mu.Unlock()
}

// lookup tallies a consulted cache lookup. NoCache traffic never calls it:
// it opted out and must not skew the hit rate.
func (s *statsRec) lookup(hit bool) {
	s.mu.Lock()
	if hit {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
}

func (s *statsRec) addCoalesced() {
	s.mu.Lock()
	s.coalesced++
	s.mu.Unlock()
}

func (s *statsRec) addError() {
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
}

func (s *statsRec) addDeduped() {
	s.mu.Lock()
	s.batchDeduped++
	s.mu.Unlock()
}

// delta records one content-changing delta install and its tuple count.
func (s *statsRec) delta(items int) {
	s.mu.Lock()
	s.deltas++
	s.deltaItems += uint64(items)
	s.mu.Unlock()
}

// observeSolve records one engine/backend run (not cache hits): its wall
// time into the solve-latency histogram and its actual-over-predicted
// cost ratio into the calibration histogram.
func (s *statsRec) observeSolve(actual, pred time.Duration) {
	s.mu.Lock()
	s.solveHist.observe(actual.Seconds())
	if pred > 0 && actual > 0 {
		s.ratioHist.observe(float64(actual) / float64(pred))
	}
	s.mu.Unlock()
}

// histograms returns consistent copies of the histograms for rendering.
func (s *statsRec) histograms() (solve, ratio histogram) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solveHist.clone(), s.ratioHist.clone()
}

// walAppend / walCompaction / walReplay / walError tally durability
// events (see durable.go).
func (s *statsRec) walAppend() {
	s.mu.Lock()
	s.walAppends++
	s.mu.Unlock()
}

func (s *statsRec) walCompaction() {
	s.mu.Lock()
	s.walCompactions++
	s.mu.Unlock()
}

func (s *statsRec) walReplay(n int) {
	s.mu.Lock()
	s.walReplayed += uint64(n)
	s.mu.Unlock()
}

func (s *statsRec) walError() {
	s.mu.Lock()
	s.walErrors++
	s.mu.Unlock()
}

// repairs records one delta's cache-repair outcome tallies.
func (s *statsRec) repairs(rekeyed, patched, resolved uint64) {
	s.mu.Lock()
	s.rekeyed += rekeyed
	s.patched += patched
	s.resolved += resolved
	s.mu.Unlock()
}

// snapshots moves the live-snapshot gauge: +1 when a collection version is
// installed, -1 when the last reference (registry or in-flight solve) to a
// version drops.
func (s *statsRec) snapshots(d int64) {
	s.mu.Lock()
	s.snapsLive += d
	s.mu.Unlock()
}

// op tallies a validated operation into the per-op breakdown (the raw
// request total is counted separately, before validation).
func (s *statsRec) op(op string) {
	s.mu.Lock()
	s.perOp[op]++
	s.mu.Unlock()
}

func (s *statsRec) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.mu.Lock()
	s.ring[s.next] = ms
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// snapshot captures every counter under one lock acquisition, so the
// returned Stats is a single consistent point in the counter history.
func (s *statsRec) snapshot() Stats {
	s.mu.Lock()
	st := Stats{
		Requests:    s.requests,
		CacheHits:   s.hits,
		CacheMisses: s.misses,
		Coalesced:   s.coalesced,
		Errors:      s.errors,
		InFlight:    s.inFlight,

		Batches:      s.batches,
		BatchItems:   s.batchItems,
		BatchDeduped: s.batchDeduped,

		Deltas:        s.deltas,
		DeltaItems:    s.deltaItems,
		SnapshotsLive: s.snapsLive,

		RepairRekeyed:  s.rekeyed,
		RepairPatched:  s.patched,
		RepairResolved: s.resolved,

		WALAppends:     s.walAppends,
		WALCompactions: s.walCompactions,
		WALReplayed:    s.walReplayed,
		WALErrors:      s.walErrors,
	}
	st.PerOp = make(map[string]uint64, len(s.perOp))
	for k, v := range s.perOp {
		st.PerOp[k] = v
	}
	n := s.next
	if s.full {
		n = len(s.ring)
	}
	samples := append([]float64(nil), s.ring[:n]...)
	s.mu.Unlock()

	if looked := st.CacheHits + st.CacheMisses; looked > 0 {
		st.HitRate = float64(st.CacheHits) / float64(looked)
	}
	if len(samples) > 0 {
		sort.Float64s(samples)
		st.Latency = LatencySummary{
			Count: len(samples),
			P50:   percentile(samples, 0.50),
			P90:   percentile(samples, 0.90),
			P99:   percentile(samples, 0.99),
			Max:   samples[len(samples)-1],
		}
	}
	return st
}

// percentile reads the nearest-rank percentile from sorted samples.
func percentile(sorted []float64, p float64) float64 {
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
