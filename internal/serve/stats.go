package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stats is a snapshot of the service counters, served at GET /v1/stats.
type Stats struct {
	Collections  int     `json:"collections"`
	CacheEntries int     `json:"cacheEntries"`
	Requests     uint64  `json:"requests"`
	CacheHits    uint64  `json:"cacheHits"`
	CacheMisses  uint64  `json:"cacheMisses"`
	Coalesced    uint64  `json:"coalesced"`
	Errors       uint64  `json:"errors"`
	InFlight     int64   `json:"inFlight"`
	HitRate      float64 `json:"hitRate"`
	// Batches / BatchItems / BatchDeduped describe the batch pipeline:
	// SolveBatch calls, sub-requests across them, and sub-requests
	// answered by an identical item of the same batch instead of their
	// own solve (successful shares only — a duplicate of a failed item
	// counts into Errors). Requests counts single solves only; batch
	// items surface here and in the shared hit/miss/coalesced/latency
	// counters.
	Batches      uint64 `json:"batches"`
	BatchItems   uint64 `json:"batchItems"`
	BatchDeduped uint64 `json:"batchDeduped"`
	// EngineNodes / EnginePackages / EnginePruned / EngineBoundEvals are
	// the engine's cost accounting (core.EngineCounters): DFS nodes
	// visited, valid packages yielded, subtrees cut by the branch-and-bound
	// layer, and bound evaluations across all solves since start. A high
	// EnginePruned relative to EngineNodes means the bound layer is doing
	// the serving fleet's work for it.
	EngineNodes      int64             `json:"engineNodes"`
	EnginePackages   int64             `json:"enginePackages"`
	EnginePruned     int64             `json:"enginePruned"`
	EngineBoundEvals int64             `json:"engineBoundEvals"`
	Latency          LatencySummary    `json:"latencyMs"`
	PerOp            map[string]uint64 `json:"perOp,omitempty"`
}

// LatencySummary reports percentiles (in milliseconds) over the most recent
// LatencyWindow requests — cache hits included (so a warming cache visibly
// drags p50 down) and errored solves too (so deadline hits surface in the
// tail instead of vanishing from it).
type LatencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// statsRec is the live, concurrently updated side of Stats: lock-free
// counters plus a mutex-guarded latency ring.
type statsRec struct {
	requests     atomic.Uint64
	hits         atomic.Uint64
	misses       atomic.Uint64
	coalesced    atomic.Uint64
	errors       atomic.Uint64
	inFlight     atomic.Int64
	batches      atomic.Uint64
	batchItems   atomic.Uint64
	batchDeduped atomic.Uint64

	mu    sync.Mutex
	perOp map[string]uint64
	ring  []float64 // latency samples in ms
	next  int
	full  bool
}

// init sizes the latency ring; called once by NewServer before any use.
func (s *statsRec) init(window int) {
	s.perOp = make(map[string]uint64)
	s.ring = make([]float64, window)
}

// op tallies a validated operation into the per-op breakdown (the raw
// request total is counted separately, before validation).
func (s *statsRec) op(op string) {
	s.mu.Lock()
	s.perOp[op]++
	s.mu.Unlock()
}

func (s *statsRec) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.mu.Lock()
	s.ring[s.next] = ms
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

func (s *statsRec) snapshot() Stats {
	st := Stats{
		Requests:    s.requests.Load(),
		CacheHits:   s.hits.Load(),
		CacheMisses: s.misses.Load(),
		Coalesced:   s.coalesced.Load(),
		Errors:      s.errors.Load(),
		InFlight:    s.inFlight.Load(),

		Batches:      s.batches.Load(),
		BatchItems:   s.batchItems.Load(),
		BatchDeduped: s.batchDeduped.Load(),
	}
	if looked := st.CacheHits + st.CacheMisses; looked > 0 {
		st.HitRate = float64(st.CacheHits) / float64(looked)
	}
	s.mu.Lock()
	st.PerOp = make(map[string]uint64, len(s.perOp))
	for k, v := range s.perOp {
		st.PerOp[k] = v
	}
	n := s.next
	if s.full {
		n = len(s.ring)
	}
	samples := append([]float64(nil), s.ring[:n]...)
	s.mu.Unlock()

	if len(samples) > 0 {
		sort.Float64s(samples)
		st.Latency = LatencySummary{
			Count: len(samples),
			P50:   percentile(samples, 0.50),
			P90:   percentile(samples, 0.90),
			P99:   percentile(samples, 0.99),
			Max:   samples[len(samples)-1],
		}
	}
	return st
}

// percentile reads the nearest-rank percentile from sorted samples.
func percentile(sorted []float64, p float64) float64 {
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
