package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/spec"
)

func countItem(k int, bound float64) BatchItem {
	ps := travelSpec(k)
	ps.Bound = bound
	return BatchItem{Op: OpCount, Spec: ps}
}

func mustBatch(t *testing.T, s *Server, breq BatchRequest) *BatchResponse {
	t.Helper()
	resp, err := s.SolveBatch(context.Background(), breq)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	return resp
}

// An empty batch over a known collection is a valid no-op; an unknown
// collection is the one batch-level failure.
func TestBatchEmptyAndUnknownCollection(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	resp := mustBatch(t, s, BatchRequest{Collection: "travel"})
	if len(resp.Items) != 0 || resp.Solves != 0 || resp.Errors != 0 {
		t.Fatalf("empty batch: %+v", resp)
	}
	if resp.Collection != "travel" || resp.Version != 1 {
		t.Fatalf("empty batch lost the collection identity: %+v", resp)
	}
	_, err := s.SolveBatch(context.Background(), BatchRequest{Collection: "nope",
		Items: []BatchItem{countItem(3, -100)}})
	var nf *NotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("unknown collection: got %v, want NotFoundError", err)
	}
}

// One malformed item must not fail the batch: its slot carries the error,
// every other item solves normally.
func TestBatchItemErrorIsolation(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	bad := countItem(3, -100)
	bad.Spec.Query = "this is not a query"
	resp := mustBatch(t, s, BatchRequest{Collection: "travel", Items: []BatchItem{
		{Op: "frobnicate", Spec: travelSpec(1)},
		bad,
		countItem(3, -100),
	}})
	if resp.Items[0].Error == "" || !strings.Contains(resp.Items[0].Error, "unknown op") {
		t.Fatalf("bad op item: %+v", resp.Items[0])
	}
	if resp.Items[1].Error == "" || resp.Items[1].Result != nil {
		t.Fatalf("bad query item: %+v", resp.Items[1])
	}
	if resp.Items[2].Error != "" || resp.Items[2].Result == nil || resp.Items[2].Result.Count == nil {
		t.Fatalf("good item did not survive its bad neighbours: %+v", resp.Items[2])
	}
	if resp.Errors != 2 || resp.Solves != 1 {
		t.Fatalf("batch tally: %+v", resp)
	}
}

// N identical sub-requests must collapse onto exactly one engine run. The
// engine-node accounting is deterministic, so a batch of duplicates and a
// single solve of the same request visit identical node counts.
func TestBatchDuplicatesCoalesceToOneSolve(t *testing.T) {
	const n = 6
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = countItem(3, -100)
	}

	s := travelServer(t, Options{}, 30, 24)
	resp := mustBatch(t, s, BatchRequest{Collection: "travel", Items: items})
	if resp.Solves != 1 || resp.Deduped != n-1 || resp.Errors != 0 {
		t.Fatalf("duplicate batch tally: %+v", resp)
	}
	for i, ir := range resp.Items {
		if ir.Result == nil || *ir.Result.Count != *resp.Items[0].Result.Count {
			t.Fatalf("item %d diverged: %+v", i, ir)
		}
		if (i > 0) != ir.Deduped {
			t.Fatalf("item %d deduped flag: %+v", i, ir)
		}
	}
	st := s.Stats()
	if st.Batches != 1 || st.BatchItems != n || st.BatchDeduped != n-1 {
		t.Fatalf("batch stats: %+v", st)
	}
	if st.CacheMisses != 1 || st.CacheHits != 0 {
		t.Fatalf("only the lead item may consult the cache: %+v", st)
	}

	// The engine did exactly a single solve's work.
	single := travelServer(t, Options{}, 30, 24)
	mustSolve(t, single, Request{Collection: "travel", Op: OpCount, Spec: items[0].Spec})
	if got, want := st.EngineNodes, single.Stats().EngineNodes; got != want {
		t.Fatalf("batch of %d duplicates visited %d engine nodes, single solve visits %d", n, got, want)
	}

	// A repeat of the same batch is pure cache: the lead hits, the rest
	// dedup, no new solve.
	resp2 := mustBatch(t, s, BatchRequest{Collection: "travel", Items: items})
	if resp2.Solves != 0 || resp2.CacheHits != 1 || resp2.Deduped != n-1 {
		t.Fatalf("repeat batch tally: %+v", resp2)
	}
	if got := s.Stats().EngineNodes; got != st.EngineNodes {
		t.Fatalf("repeat batch re-ran the engine: %d -> %d nodes", st.EngineNodes, got)
	}
}

// The whole-batch deadline expires mid-flight: the astronomically large
// item times out, the cheap one still answers — error isolation holds for
// runtime failures, not just validation.
func TestBatchDeadlineMidFlight(t *testing.T) {
	s := travelServer(t, Options{MaxConcurrent: 4}, 120, 60)
	huge := travelSpec(3)
	huge.MaxPkgSize = 6
	huge.Bound = -100
	resp := mustBatch(t, s, BatchRequest{
		Collection: "travel",
		TimeoutMS:  150,
		Items: []BatchItem{
			countItem(3, -100),
			{Op: OpCount, Spec: huge},
		},
	})
	if resp.Items[0].Error != "" || resp.Items[0].Result == nil {
		t.Fatalf("cheap item did not survive the deadline: %+v", resp.Items[0])
	}
	if !strings.Contains(resp.Items[1].Error, context.DeadlineExceeded.Error()) {
		t.Fatalf("huge item: got %q, want a deadline error", resp.Items[1].Error)
	}
	if resp.Errors != 1 || resp.Solves != 1 {
		t.Fatalf("deadline batch tally: %+v", resp)
	}
}

// Items with equal problem specs but different operations share one
// prepared Problem; the answers must match the library exactly (the spec
// is built once, candidates evaluated once, bound tables shared).
func TestBatchSharedProblemAcrossOps(t *testing.T) {
	db := gen.Travel(7, 30, 24)
	s := NewServer(Options{})
	s.SetCollection("travel", db)
	ps := travelSpec(2)
	ps.Bound = -100
	resp := mustBatch(t, s, BatchRequest{Collection: "travel", Items: []BatchItem{
		{Op: OpTopK, Spec: ps},
		{Op: OpCount, Spec: ps},
		{Op: OpMaxBound, Spec: ps},
		{Op: OpExists, Spec: ps},
	}})
	if resp.Errors != 0 || resp.Solves != 4 {
		t.Fatalf("mixed-op batch tally: %+v", resp)
	}

	prob, err := ps.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok, err := prob.FindTopK()
	if err != nil || !ok {
		t.Fatalf("library FindTopK: ok=%v err=%v", ok, err)
	}
	if got := resp.Items[0].Result.Packages; len(got) != len(sel) {
		t.Fatalf("topk: %d packages, library found %d", len(got), len(sel))
	}
	cnt, err := prob.CountValid(ps.Bound)
	if err != nil {
		t.Fatal(err)
	}
	if got := *resp.Items[1].Result.Count; got != cnt {
		t.Fatalf("count: %d, library counts %d", got, cnt)
	}
	b, ok, err := prob.MaxBound()
	if err != nil || !ok {
		t.Fatalf("library MaxBound: ok=%v err=%v", ok, err)
	}
	if got := *resp.Items[2].Result.Bound; got != b {
		t.Fatalf("maxbound: %g, library says %g", got, b)
	}
	if !resp.Items[3].Result.OK {
		t.Fatal("exists: daemon says no, library counted valid packages")
	}
}

// One /v1/batch call must answer exactly like N sequential /v1/solve
// calls, over HTTP, item by item — batching is an execution strategy, not
// a semantics change.
func TestHTTPBatchEquivalentToSequentialSolves(t *testing.T) {
	db := gen.Travel(7, 40, 30)
	newTS := func() (*Server, *Client, func()) {
		s := NewServer(Options{})
		s.SetCollection("travel", db)
		ts := httptest.NewServer(s.Handler())
		return s, NewClient(ts.URL), ts.Close
	}

	items := []BatchItem{
		{Op: OpTopK, Spec: travelSpec(2)},
		{Op: OpTopK, Spec: travelSpec(3)},
		countItem(3, -50),
		countItem(3, -100),
		countItem(3, -100), // duplicate: deduped in the batch, cached in the sequence
		{Op: OpMaxBound, Spec: travelSpec(2)},
	}

	_, seqClient, closeSeq := newTS()
	defer closeSeq()
	want := make([]string, len(items))
	for i, it := range items {
		resp, err := seqClient.Solve(context.Background(), it.Request("travel"))
		if err != nil {
			t.Fatalf("sequential solve %d: %v", i, err)
		}
		want[i] = mustJSON(t, resp.Result)
	}

	_, batchClient, closeBatch := newTS()
	defer closeBatch()
	bresp, err := batchClient.SolveBatch(context.Background(),
		BatchRequest{Collection: "travel", Items: items})
	if err != nil {
		t.Fatalf("SolveBatch over HTTP: %v", err)
	}
	if len(bresp.Items) != len(items) {
		t.Fatalf("batch returned %d items, want %d", len(bresp.Items), len(items))
	}
	for i, ir := range bresp.Items {
		if ir.Error != "" {
			t.Fatalf("batch item %d failed: %s", i, ir.Error)
		}
		if got := mustJSON(t, *ir.Result); got != want[i] {
			t.Errorf("item %d diverges from sequential solve:\n got %s\nwant %s", i, got, want[i])
		}
	}
	if bresp.Deduped != 1 {
		t.Fatalf("duplicate item not deduplicated: %+v", bresp)
	}
}

// A spec whose query parses but cannot be evaluated (unknown relation)
// fails at Prepare inside the pool; the failure stays item-local, and a
// duplicate of the failed item inherits the error without counting as a
// successful dedup — the batch tallies and /v1/stats must agree.
func TestBatchPrepareErrorIsolated(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	ghost := spec.ProblemSpec{
		Query: "RQ(x) :- ghost(x).",
		Cost:  spec.AggSpec{Kind: "count"},
		Val:   spec.AggSpec{Kind: "count"},
		K:     1, Budget: 1,
	}
	resp := mustBatch(t, s, BatchRequest{Collection: "travel", Items: []BatchItem{
		{Op: OpCount, Spec: ghost},
		countItem(3, -100),
		{Op: OpCount, Spec: ghost}, // duplicate of the failing lead
	}})
	if resp.Items[0].Error == "" {
		t.Fatalf("unknown-relation item succeeded: %+v", resp.Items[0])
	}
	if resp.Items[1].Error != "" || resp.Items[1].Result == nil {
		t.Fatalf("good item failed: %+v", resp.Items[1])
	}
	if resp.Items[2].Error != resp.Items[0].Error || resp.Items[2].Deduped {
		t.Fatalf("duplicate of failed lead: %+v", resp.Items[2])
	}
	if resp.Errors != 2 || resp.Deduped != 0 {
		t.Fatalf("failed-dedup tally: %+v", resp)
	}
	if st := s.Stats(); st.BatchDeduped != 0 || st.Errors != 2 {
		t.Fatalf("failed-dedup stats: %+v", st)
	}
}

// A NoCache item never deduplicates onto a cache-eligible twin (it would
// be served a cached result it asked to bypass), and a caching item never
// collapses onto a NoCache lead (whose result is not stored).
func TestBatchNoCacheItemsDedupSeparately(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	item := countItem(3, -100)
	// Prime the cache with the item.
	mustSolve(t, s, item.Request("travel"))

	noCache := item
	noCache.NoCache = true
	resp := mustBatch(t, s, BatchRequest{Collection: "travel", Items: []BatchItem{
		item, noCache, noCache,
	}})
	if !resp.Items[0].Cached {
		t.Fatalf("cache-eligible item missed the primed cache: %+v", resp.Items[0])
	}
	if resp.Items[1].Cached || resp.Items[1].Deduped || resp.Items[1].Result == nil {
		t.Fatalf("noCache item was served through the cache: %+v", resp.Items[1])
	}
	if !resp.Items[2].Deduped {
		t.Fatalf("noCache twins must still dedup among themselves: %+v", resp.Items[2])
	}
	if resp.CacheHits != 1 || resp.Solves != 1 || resp.Deduped != 1 {
		t.Fatalf("noCache batch tally: %+v", resp)
	}
}
