package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/spec"
)

// travelSpec is the Example 1.1 travel problem in wire form: packages of
// (flight, POI) items out of Edinburgh, cost = total visiting time within
// an 8-hour budget, rated by negated total ticket price.
func travelSpec(k int) spec.ProblemSpec {
	return spec.ProblemSpec{
		Query: `RQ(f, price, name, type, ticket, time) :-
			flight(f, "edi", city, d, price, dur),
			poi(name, city, type, ticket, time).`,
		Cost:       spec.AggSpec{Kind: "sum", Attr: 5, Monotone: true},
		Val:        spec.AggSpec{Kind: "negsum", Attr: 4},
		Budget:     480,
		K:          k,
		MaxPkgSize: 2,
	}
}

func travelServer(t testing.TB, opts Options, nFlights, nPOI int) *Server {
	t.Helper()
	s := NewServer(opts)
	s.SetCollection("travel", gen.Travel(7, nFlights, nPOI))
	return s
}

func mustSolve(t *testing.T, s *Server, req Request) *Response {
	t.Helper()
	resp, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("Solve(%s): %v", req.Op, err)
	}
	return resp
}

func TestCacheShortCircuitsRepeatSolves(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	ps := travelSpec(3)
	ps.Bound = -100
	req := Request{Collection: "travel", Op: OpCount, Spec: ps}

	first := mustSolve(t, s, req)
	if first.Cached {
		t.Fatal("first solve reported cached")
	}
	second := mustSolve(t, s, req)
	if !second.Cached {
		t.Fatal("repeat solve was not served from cache")
	}
	if *first.Count != *second.Count {
		t.Fatalf("cached count %d != solved count %d", *second.Count, *first.Count)
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats: hits=%d misses=%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate %g, want 0.5", st.HitRate)
	}
	if st.EngineNodes == 0 {
		t.Fatal("engine cost accounting not surfaced in stats")
	}
	if st.Latency.Count != 2 || st.Latency.P99 < st.Latency.P50 {
		t.Fatalf("latency summary not populated: %+v", st.Latency)
	}
}

// Formatting-different but equal requests must share one cache entry: the
// key is built from the canonical (parse + re-render) query form.
func TestCacheKeyIsCanonical(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	ps := travelSpec(3)
	ps.Bound = -100
	mustSolve(t, s, Request{Collection: "travel", Op: OpCount, Spec: ps})

	reformatted := ps
	reformatted.Query = `RQ(f, price, name, type, ticket, time)
		:- flight(f, "edi",
		          city, d, price, dur),
		   poi(name, city, type, ticket, time).`
	resp := mustSolve(t, s, Request{Collection: "travel", Op: OpCount, Spec: reformatted})
	if !resp.Cached {
		t.Fatal("reformatted query missed the cache; canonicalization broken")
	}
}

func TestSwapInvalidatesCache(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	ps := travelSpec(3)
	ps.Bound = -100
	req := Request{Collection: "travel", Op: OpCount, Spec: ps}

	first := mustSolve(t, s, req)
	if first.Version != 1 {
		t.Fatalf("fresh collection version %d, want 1", first.Version)
	}
	info := s.SetCollection("travel", gen.Travel(11, 40, 24))
	if info.Version != 2 {
		t.Fatalf("swapped collection version %d, want 2", info.Version)
	}
	resp := mustSolve(t, s, req)
	if resp.Cached {
		t.Fatal("solve after swap served a stale cached result")
	}
	if resp.Version != 2 {
		t.Fatalf("solve after swap ran against version %d", resp.Version)
	}
	if s.cache.len() != 1 {
		t.Fatalf("old-version entries not purged: %d cached", s.cache.len())
	}
}

func TestLRUEviction(t *testing.T) {
	s := travelServer(t, Options{CacheSize: 2}, 30, 24)
	ps := travelSpec(3)
	bounds := []float64{-50, -100, -150}
	for _, b := range bounds {
		p := ps
		p.Bound = b
		mustSolve(t, s, Request{Collection: "travel", Op: OpCount, Spec: p})
	}
	// The first bound is the LRU victim; the later two are still cached.
	p := ps
	p.Bound = bounds[0]
	if resp := mustSolve(t, s, Request{Collection: "travel", Op: OpCount, Spec: p}); resp.Cached {
		t.Fatal("oldest entry survived a full cache")
	}
	p.Bound = bounds[2]
	if resp := mustSolve(t, s, Request{Collection: "travel", Op: OpCount, Spec: p}); !resp.Cached {
		t.Fatal("recent entry was evicted")
	}
}

func TestNoCacheBypasses(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	ps := travelSpec(3)
	ps.Bound = -100
	req := Request{Collection: "travel", Op: OpCount, Spec: ps, NoCache: true}
	mustSolve(t, s, req)
	if resp := mustSolve(t, s, req); resp.Cached {
		t.Fatal("NoCache request served from cache")
	}
	if s.cache.len() != 0 {
		t.Fatalf("NoCache stored %d entries", s.cache.len())
	}
}

func TestUnknownCollectionAndOp(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	_, err := s.Solve(context.Background(), Request{Collection: "nope", Op: OpCount, Spec: travelSpec(1)})
	var nf *NotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("unknown collection: got %v, want NotFoundError", err)
	}
	_, err = s.Solve(context.Background(), Request{Collection: "travel", Op: "solveharder", Spec: travelSpec(1)})
	var re *RequestError
	if !errors.As(err, &re) {
		t.Fatalf("unknown op: got %v, want RequestError", err)
	}
	_, err = s.Solve(context.Background(), Request{Collection: "travel", Op: OpCount,
		Spec: spec.ProblemSpec{Query: "this is not a query"}})
	if !errors.As(err, &re) {
		t.Fatalf("bad query: got %v, want RequestError", err)
	}
}

func TestSolveDeadline(t *testing.T) {
	// A large instance with no effective size bound: the enumeration is
	// astronomically larger than 1ms of work, so the deadline must fire.
	s := travelServer(t, Options{}, 120, 60)
	ps := travelSpec(3)
	ps.MaxPkgSize = 6
	ps.Bound = -100
	_, err := s.Solve(context.Background(),
		Request{Collection: "travel", Op: OpCount, Spec: ps, TimeoutMS: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// flightGroup must run one fn per key among concurrent callers and hand the
// followers the leader's result.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	leaderIn := make(chan struct{})
	unblock := make(chan struct{})
	var calls int
	want := &Result{Op: OpCount, OK: true}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, shared, err := g.do(context.Background(), "k", func() (*Result, error) {
			calls++
			close(leaderIn)
			<-unblock
			return want, nil
		})
		if err != nil || shared || res != want {
			t.Errorf("leader: res=%v shared=%v err=%v", res, shared, err)
		}
	}()
	<-leaderIn // the leader is inside fn; followers must now coalesce

	const followers = 4
	results := make(chan bool, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, shared, err := g.do(context.Background(), "k", func() (*Result, error) {
				t.Error("follower ran fn")
				return nil, nil
			})
			results <- shared && err == nil && res == want
		}()
	}
	// Followers with an expired context abandon the wait instead of hanging.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, shared, err := g.do(ctx, "k", nil); !shared || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled follower: shared=%v err=%v", shared, err)
	}

	time.Sleep(10 * time.Millisecond) // let followers reach the wait
	close(unblock)
	wg.Wait()
	for i := 0; i < followers; i++ {
		if !<-results {
			t.Fatal("a follower did not receive the leader's result")
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

// A panicking solve must not leak its flight entry — later identical
// requests would block forever on a done channel that never closes.
func TestFlightGroupSurvivesPanic(t *testing.T) {
	var g flightGroup
	func() {
		defer func() { recover() }() // net/http recovers handler panics
		g.do(context.Background(), "k", func() (*Result, error) { panic("solver bug") })
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, shared, err := g.do(context.Background(), "k", func() (*Result, error) {
			return &Result{OK: true}, nil
		})
		if err != nil || shared || !res.OK {
			t.Errorf("post-panic do: res=%v shared=%v err=%v", res, shared, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("request after a panicked flight hung")
	}
}

// Coalesced solves surface in the stats; exercised end-to-end with real
// concurrent identical requests (NoCache so the cache cannot satisfy them
// first — coalescing is the only sharing path).
func TestSolveCoalescingEndToEnd(t *testing.T) {
	s := travelServer(t, Options{MaxConcurrent: 4}, 60, 40)
	ps := travelSpec(3)
	ps.MaxPkgSize = 3
	ps.Bound = -100
	req := Request{Collection: "travel", Op: OpCount, Spec: ps, NoCache: true}

	const n = 8
	var wg sync.WaitGroup
	counts := make([]int64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Solve(context.Background(), req)
			if err != nil {
				t.Errorf("concurrent solve: %v", err)
				return
			}
			counts[i] = *resp.Count
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if counts[i] != counts[0] {
			t.Fatalf("concurrent identical solves disagree: %v", counts)
		}
	}
	// Coalescing is timing-dependent (late arrivals may start a fresh
	// flight), so only sanity-check the tally stays within the fired
	// requests.
	if st := s.Stats(); st.Coalesced > n-1 {
		t.Fatalf("coalesced count %d exceeds request count", st.Coalesced)
	}
}
