package serve

import (
	"context"
	"testing"

	"repro/internal/gen"
)

// BenchmarkServeCachedVsCold measures what the serving layer buys on
// repeat traffic: Cold forces a full engine run per request (NoCache), Warm
// serves the same request from the LRU after one priming solve. The travel
// instance matches the EngineFRPTravel benchmark family (BENCHMARKS.md), so
// the Cold row is comparable to the raw engine numbers.
func BenchmarkServeCachedVsCold(b *testing.B) {
	s := NewServer(Options{})
	s.SetCollection("travel", gen.Travel(7, 320, 24))
	ps := travelSpec(3)
	req := Request{Collection: "travel", Op: OpTopK, Spec: ps}
	ctx := context.Background()

	b.Run("Cold", func(b *testing.B) {
		cold := req
		cold.NoCache = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(ctx, cold); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Warm", func(b *testing.B) {
		if _, err := s.Solve(ctx, req); err != nil { // prime
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := s.Solve(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Cached {
				b.Fatal("warm solve missed the cache")
			}
		}
	})
}
