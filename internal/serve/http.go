package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/relation"
)

// Handler returns the daemon's JSON-over-HTTP front end: NewHandler over
// the server's own Service. See NewHandler for the routes.
func (s *Server) Handler() http.Handler {
	return NewHandler(s.Service())
}

// NewHandler builds the JSON-over-HTTP front end documented in
// docs/serving.md for any Service — the in-process daemon and the
// cluster router serve byte-identical wire formats because they serve
// through this one function:
//
//	POST   /v1/solve              solve a problem (body: Request)
//	POST   /v1/batch              solve a batch over one collection (body: BatchRequest)
//	GET    /v1/stats              service counters (Stats)
//	GET    /metrics               Prometheus text format (services implementing MetricsRenderer)
//	GET    /v1/collections        list collections
//	GET    /v1/collections/{name} one collection's description
//	PUT    /v1/collections/{name} load or swap a collection (body: database JSON)
//	POST   /v1/collections/{name}/delta  apply an incremental mutation (body: relation.Delta)
//	GET    /v1/collections/{name}/wal    replication stream (services implementing WALStreamer)
//	DELETE /v1/collections/{name} drop a collection
//	DELETE /v1/cache              flush the result cache
//	GET    /healthz               liveness probe
//
// Errors are JSON objects {"error", "code", "retryable", "retryAfterMs"}
// carrying the wire taxonomy (see errors.go): status 400 bad_request,
// 404 not_found, 413 too_large, 429 overloaded (with a Retry-After
// header in whole seconds), 503 unavailable, 504 timeout, 499 canceled,
// 500 internal. The legacy "error" message field is always present.
func NewHandler(svc Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, &RequestError{Err: err})
			return
		}
		resp, err := svc.Solve(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	// Batch item failures are part of a 200 response (each item carries
	// its own result or error); only a malformed body or an unknown
	// collection fails the batch as a whole.
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var breq BatchRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&breq); err != nil {
			writeError(w, &RequestError{Err: err})
			return
		}
		resp, err := svc.SolveBatch(r.Context(), breq)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	// Observability routes answer from counters, never the solve pool, so
	// they stay responsive during overload — the regression tests pin
	// exactly that.
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st, err := svc.Stats(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	if mr, ok := svc.(MetricsRenderer); ok {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(mr.RenderMetrics()))
		})
	}
	mux.HandleFunc("GET /v1/collections", func(w http.ResponseWriter, r *http.Request) {
		infos, err := svc.Collections(r.Context())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, infos)
	})
	mux.HandleFunc("GET /v1/collections/{name}", func(w http.ResponseWriter, r *http.Request) {
		info, err := svc.GetCollection(r.Context(), r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("PUT /v1/collections/{name}", func(w http.ResponseWriter, r *http.Request) {
		db := relation.NewDatabase()
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(db); err != nil {
			writeError(w, &RequestError{Err: err})
			return
		}
		info, err := svc.PutCollection(r.Context(), r.PathValue("name"), db)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	// Deltas mutate a live collection in place: readers keep solving
	// against their pinned snapshot while the new version installs, and
	// cached results over unaffected relations stay warm.
	mux.HandleFunc("POST /v1/collections/{name}/delta", func(w http.ResponseWriter, r *http.Request) {
		var delta relation.Delta
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&delta); err != nil {
			writeError(w, &RequestError{Err: err})
			return
		}
		info, err := svc.ApplyDelta(r.Context(), r.PathValue("name"), delta)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	if ws, ok := svc.(WALStreamer); ok {
		mux.HandleFunc("GET /v1/collections/{name}/wal", func(w http.ResponseWriter, r *http.Request) {
			var since uint64
			if q := r.URL.Query().Get("since"); q != "" {
				v, err := strconv.ParseUint(q, 10, 64)
				if err != nil {
					writeError(w, &RequestError{Err: err})
					return
				}
				since = v
			}
			stream, err := ws.WALStream(r.Context(), r.PathValue("name"), since)
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, stream)
		})
	}
	mux.HandleFunc("DELETE /v1/collections/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if err := svc.RemoveCollection(r.Context(), name); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"removed": name})
	})
	mux.HandleFunc("DELETE /v1/cache", func(w http.ResponseWriter, r *http.Request) {
		if err := svc.FlushCache(r.Context()); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "flushed"})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if err := svc.Health(r.Context()); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// Unmatched routes get the documented JSON error shape instead of
	// net/http's plain-text default. (Method mismatches on matched routes
	// still return ServeMux's standard plain-text 405.)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &NotFoundError{What: "route", Name: r.URL.Path})
	})
	return mux
}

// maxBodyBytes bounds request bodies (solve requests and collection
// uploads): one oversized body must not be able to exhaust the daemon's
// memory. Oversized requests get a 413.
const maxBodyBytes = 64 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError serializes an error in the wire taxonomy: status and code
// from ErrorCode's classification, the retryable bit, and — for sheds —
// both the Retry-After header (whole seconds, the HTTP convention) and
// retryAfterMs in the body (full precision). An *APIError passes
// through with the code and Retry-After the origin server assigned, so
// a coordinator re-emitting a node's error loses nothing.
func writeError(w http.ResponseWriter, err error) {
	code := ErrorCode(err)
	body := errorBody{Error: err.Error(), Code: code, Retryable: Retryable(code)}
	if ra := retryAfterOf(err); ra > 0 {
		body.RetryAfterMS = int64(ra / time.Millisecond)
		secs := int64(ra / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, statusForCode(code), body)
}
