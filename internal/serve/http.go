package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/relation"
)

// Handler returns the JSON-over-HTTP front end documented in
// docs/serving.md:
//
//	POST   /v1/solve              solve a problem (body: Request)
//	POST   /v1/batch              solve a batch over one collection (body: BatchRequest)
//	GET    /v1/stats              service counters (Stats)
//	GET    /metrics               the same counters in Prometheus text format
//	GET    /v1/collections        list collections
//	GET    /v1/collections/{name} one collection's description
//	PUT    /v1/collections/{name} load or swap a collection (body: database JSON)
//	POST   /v1/collections/{name}/delta  apply an incremental mutation (body: relation.Delta)
//	DELETE /v1/collections/{name} drop a collection
//	DELETE /v1/cache              flush the result cache
//	GET    /healthz               liveness probe
//
// Errors are JSON objects {"error": "..."} with status 400 (malformed
// request), 404 (unknown collection or route), 429 (shed by admission
// control, with a Retry-After header in whole seconds), 503 (durability
// unavailable — e.g. a delta whose WAL append failed), 504 (solve
// deadline exceeded) or 500 (internal failure).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	// Observability routes answer from counters, never the solve pool, so
	// they stay responsive during overload — the regression tests pin
	// exactly that.
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/collections", s.handleListCollections)
	mux.HandleFunc("GET /v1/collections/{name}", s.handleGetCollection)
	mux.HandleFunc("PUT /v1/collections/{name}", s.handlePutCollection)
	mux.HandleFunc("POST /v1/collections/{name}/delta", s.handleDeltaCollection)
	mux.HandleFunc("DELETE /v1/collections/{name}", s.handleDeleteCollection)
	mux.HandleFunc("DELETE /v1/cache", s.handleFlushCache)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// Unmatched routes get the documented JSON error shape instead of
	// net/http's plain-text default. (Method mismatches on matched routes
	// still return ServeMux's standard plain-text 405.)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &NotFoundError{What: "route", Name: r.URL.Path})
	})
	return mux
}

// maxBodyBytes bounds request bodies (solve requests and collection
// uploads): one oversized body must not be able to exhaust the daemon's
// memory. Oversized requests get a 413.
const maxBodyBytes = 64 << 20

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, &RequestError{Err: err})
		return
	}
	resp, err := s.Solve(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch serves POST /v1/batch. Item failures are part of a 200
// response (each item carries its own result or error); only a malformed
// body or an unknown collection fails the batch as a whole.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var breq BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		writeError(w, &RequestError{Err: err})
		return
	}
	resp, err := s.SolveBatch(r.Context(), breq)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleListCollections(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Collections())
}

func (s *Server) handleGetCollection(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, ok := s.Collection(name)
	if !ok {
		writeError(w, &NotFoundError{What: "collection", Name: name})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handlePutCollection(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	db := relation.NewDatabase()
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(db); err != nil {
		writeError(w, &RequestError{Err: err})
		return
	}
	writeJSON(w, http.StatusOK, s.SetCollection(name, db))
}

// handleDeltaCollection serves POST /v1/collections/{name}/delta: an
// incremental mutation of a live collection. Readers keep solving against
// their pinned snapshot while the new version installs; cached results and
// prepared problems over unaffected relations stay warm.
func (s *Server) handleDeltaCollection(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var delta relation.Delta
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&delta); err != nil {
		writeError(w, &RequestError{Err: err})
		return
	}
	info, err := s.MutateCollection(name, delta)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteCollection(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.RemoveCollection(name) {
		writeError(w, &NotFoundError{What: "collection", Name: name})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}

func (s *Server) handleFlushCache(w http.ResponseWriter, r *http.Request) {
	s.FlushCache()
	writeJSON(w, http.StatusOK, map[string]string{"status": "flushed"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var reqErr *RequestError
	var nfErr *NotFoundError
	var ovErr *OverloadError
	var unErr *UnavailableError
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		status = http.StatusRequestEntityTooLarge
	case errors.As(err, &reqErr):
		status = http.StatusBadRequest
	case errors.As(err, &nfErr):
		status = http.StatusNotFound
	case errors.As(err, &ovErr):
		// Shed by admission control; Retry-After is derived from the
		// predicted queue drain (whole seconds, at least 1).
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.FormatInt(int64(ovErr.RetryAfter/time.Second), 10))
	case errors.As(err, &unErr):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; 499 is the de-facto convention.
		status = 499
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
