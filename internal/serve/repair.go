package serve

import (
	"math"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

// Delta-driven result repair. A collection delta used to purge every cache
// entry whose relations mutated; most of those results were still exactly
// right — hot-relation churn rarely touches what a given query reads. With
// read provenance on the prepared problems (core.Provenance) a mutation
// can instead classify each dependent entry into one of three tiers:
//
//   - rekey: the spec's candidate set is unchanged by the delta. Every
//     score is a function of the candidate tuple itself, so the result is
//     bit-identical over the new snapshot — rewrite the entry's
//     content-addressed key to the new fingerprint and keep it.
//   - patch: candidates changed, but every added/removed candidate is
//     provably irrelevant to this particular result (outside the entry's
//     recorded search floor under the problem's admissible per-candidate
//     bounds, and not a member of the returned packages). Keep the result,
//     rewrite the key.
//   - resolve: anything else — purge, exactly as before.
//
// Soundness leans on admissible bounds only (core.CandidateValUpper /
// CandidateCostLower); whenever metadata is missing, a bound is
// unavailable, the spec reads mutated relations through Qc, or the
// provenance cannot advance, classification falls through to resolve.

// repairMeta is the solve-time half of the classification evidence,
// captured by solveOp/solvePBOOp for the five package operations and
// carried (unexported) on the wire Result to putIfCurrent.
type repairMeta struct {
	// ok mirrors Result.OK (whether the operation succeeded / held).
	ok bool
	// floor is the op's val threshold: the minimum selection val for
	// topk/decide, the request bound for count/exists, the achieved bound
	// for maxbound; -Inf when the op reported no selection.
	floor float64
	// members holds the tuple keys appearing in the returned/checked
	// packages (topk and decide only): a removed candidate that is a
	// member invalidates the result outright.
	members map[string]struct{}
	// candFP fingerprints the candidate set the result was computed over,
	// guarding classification against entries from older snapshots.
	candFP string
}

// repairInfo is repairMeta bound to the entry's canonical spec, the link
// from a cache entry to the prepared problem that can judge it.
type repairInfo struct {
	canon string
	repairMeta
}

// buildRepairMeta captures the repair metadata for one solved result; nil
// for operations the repair pipeline does not patch (relax/relaxplan/
// adjust answer over the mutated content itself and always resolve).
func buildRepairMeta(prob *core.Problem, req Request, sel []core.Package, res *Result) *repairMeta {
	switch req.Op {
	case OpTopK, OpDecide, OpMaxBound, OpCount, OpExists:
	default:
		return nil
	}
	fp, err := prob.CandidatesFingerprint()
	if err != nil {
		return nil
	}
	m := &repairMeta{ok: res.OK, floor: math.Inf(-1), candFP: fp}
	switch req.Op {
	case OpCount, OpExists:
		m.floor = req.Spec.Bound
	case OpMaxBound:
		if res.OK && res.Bound != nil {
			m.floor = *res.Bound
		}
	case OpTopK, OpDecide:
		if res.OK && len(sel) > 0 {
			m.members = make(map[string]struct{})
			minVal := math.Inf(1)
			for _, p := range sel {
				minVal = math.Min(minVal, prob.Val.Eval(p))
				for _, t := range p.Tuples() {
					m.members[t.Key()] = struct{}{}
				}
			}
			m.floor = minVal
		}
	}
	return m
}

// specRepair is one warm spec's delta outcome, shared by every cache entry
// of that spec.
type specRepair struct {
	// unchanged: the candidate set survived the delta intact (rekey tier).
	unchanged bool
	// resolve: entries of this spec cannot be repaired at all (compat
	// constraints over mutated content, no provenance, advance failure).
	resolve bool
	// oldProb judges removed candidates (their bounds live in the
	// pre-delta problem), advProb judges added ones.
	oldProb, advProb *core.Problem
	added, removed   []relation.Tuple
	// oldCandFP / advCandFP fingerprint the pre/post-delta candidate sets.
	oldCandFP, advCandFP string
}

// planRepairs advances every ready prepared problem whose dependency set
// intersects the mutated relations: the advanced problem is installed warm
// into the new collection (the carry-over's counterpart for *affected*
// specs — no re-prepare), and the candidate diff is kept as the spec's
// classification plan. Runs before the new version is installed, so no
// reader can observe c.probs while it is being seeded.
func (s *Server) planRepairs(c *collection, res relation.DeltaResult, mutated map[string]struct{}, oldProbs []lruSlot[*preparedProblem]) map[string]*specRepair {
	plans := make(map[string]*specRepair)
	for _, slot := range oldProbs {
		sp := slot.val
		if !sp.ready() || sp.depsAll {
			continue
		}
		affected := false
		for _, dep := range sp.deps {
			if _, ok := mutated[dep]; ok {
				affected = true
				break
			}
		}
		if !affected {
			continue // carried over verbatim by carryOver
		}
		plan := classifySpec(sp.prob, res, mutated)
		plans[slot.key] = plan
		if plan.advProb != nil {
			adv := advancedPrepared(plan.advProb, sp.deps, sp.depsAll)
			c.probs.getOrCreate(slot.key, func() *preparedProblem { return adv })
		}
	}
	return plans
}

// classifySpec advances one prepared problem across the delta and decides
// how far its entries can be repaired. Even when entries must resolve
// (e.g. the compatibility query reads a mutated relation), the advanced
// problem is still sound — candidates come from Q alone and Qc evaluates
// at solve time over the new database — so the spec stays warm regardless.
func classifySpec(prob *core.Problem, res relation.DeltaResult, mutated map[string]struct{}) *specRepair {
	plan := &specRepair{resolve: true}
	prov, err := prob.Provenance()
	if err != nil || prov == nil {
		return plan
	}
	adv, diff, err := prob.Advance(res.DB, res.Touched)
	if err != nil {
		return plan
	}
	plan.oldProb, plan.advProb = prob, adv
	if plan.oldCandFP, err = prob.CandidatesFingerprint(); err != nil {
		return plan
	}
	if plan.advCandFP, err = adv.CandidatesFingerprint(); err != nil {
		return plan
	}
	// Custom compatibility/pruning predicates may read anything; a Qc
	// touching a mutated relation (other than the package placeholder) sees
	// different content. Either way the stored results cannot be vouched
	// for — but the advanced problem above stays installed.
	if prob.CompatFn != nil || prob.Prune != nil {
		return plan
	}
	if prob.Qc != nil {
		rels, exhaustive := query.Relations(prob.Qc)
		if !exhaustive {
			return plan
		}
		for _, r := range rels {
			if r == prob.Q.OutName() {
				continue
			}
			if _, ok := mutated[r]; ok {
				return plan
			}
		}
	}
	plan.resolve = false
	plan.unchanged = diff.Unchanged
	plan.added, plan.removed = diff.Added, diff.Removed
	return plan
}

// repairCache classifies every cache entry depending on a mutated relation
// and repairs or purges it. Runs after the new collection version is
// installed so entries put by solves that straddled the delta — keyed on
// the old fingerprint, admitted because putIfCurrent still saw the old
// version — are caught here, exactly like the old purge.
func (s *Server) repairCache(c *collection, mutated map[string]struct{}, plans map[string]*specRepair) {
	var rekeyed, patched, resolved uint64
	for _, key := range s.cache.dependents(c.name, mutated) {
		e, ok := s.cache.peek(key)
		if !ok {
			continue
		}
		tier, newKey := classifyEntry(e, c, plans)
		switch tier {
		case tierSkip:
			// Already keyed on the current fingerprint (a post-install put).
		case tierResolve:
			if s.cache.remove(key) {
				resolved++
			}
		default:
			advFP := plans[e.repair.canon].advCandFP
			if s.cache.rename(key, newKey, func(old *lruEntry) *lruEntry {
				ne := *old
				ri := *old.repair
				ri.candFP = advFP
				ne.repair = &ri
				return &ne
			}) {
				if tier == tierPatch {
					patched++
				} else {
					rekeyed++
				}
			}
		}
	}
	s.stats.repairs(rekeyed, patched, resolved)
}

type repairTier int

const (
	tierResolve repairTier = iota
	tierRekey
	tierPatch
	tierSkip
)

// classifyEntry decides one entry's tier and, for the repair tiers, the
// key it moves to.
func classifyEntry(e *lruEntry, c *collection, plans map[string]*specRepair) (repairTier, string) {
	if e.depsAll || e.repair == nil {
		return tierResolve, ""
	}
	plan := plans[e.repair.canon]
	if plan == nil || plan.resolve {
		return tierResolve, ""
	}
	// An entry computed over a different candidate snapshot than the plan's
	// pre-delta problem cannot be judged by its diff.
	if e.repair.candFP != plan.oldCandFP {
		if e.repair.candFP == plan.advCandFP {
			return tierSkip, "" // already current: put after the install
		}
		return tierResolve, ""
	}
	newKey := sealCacheKey(c.name, c.relevant(e.deps, false), e.keyRest)
	if plan.unchanged {
		return tierRekey, newKey
	}
	for _, t := range plan.added {
		if !tupleIrrelevant(plan.advProb, &e.repair.repairMeta, e.res.Op, t, true) {
			return tierResolve, ""
		}
	}
	for _, t := range plan.removed {
		if !tupleIrrelevant(plan.oldProb, &e.repair.repairMeta, e.res.Op, t, false) {
			return tierResolve, ""
		}
	}
	return tierPatch, newKey
}

// tupleIrrelevant reports whether one added/removed candidate provably
// cannot change this entry's result. Added candidates are judged by the
// advanced problem's bounds, removed ones by the pre-delta problem's (the
// snapshot they lived in). Every comparison is arranged so that an
// unavailable or NaN bound answers false — resolve is always sound.
func tupleIrrelevant(prob *core.Problem, m *repairMeta, op string, t relation.Tuple, added bool) bool {
	// A candidate no valid package can afford is invisible to every op.
	if lb, ok, err := prob.CandidateCostLower(t); err == nil && ok && lb > prob.Budget {
		return true
	}
	mv, haveVal, err := prob.CandidateValUpper(t)
	haveVal = haveVal && err == nil && !math.IsNaN(mv)
	switch op {
	case OpTopK:
		if !m.ok {
			// No k-selection existed; removals only shrink the package
			// space, additions could create one.
			return !added
		}
		if added {
			// Strictly below the selection floor it cannot displace a
			// selected package (ties lose to the incumbent's order).
			return haveVal && mv < m.floor
		}
		_, member := m.members[t.Key()]
		return !member
	case OpCount:
		// Every package through t scores ≤ mv; below the counting bound
		// none of them is counted, in either direction.
		return haveVal && mv < m.floor
	case OpExists:
		if m.ok && added {
			return true // additions cannot destroy an existing witness set
		}
		if !m.ok && !added {
			return true // removals cannot create one
		}
		return haveVal && mv < m.floor
	case OpMaxBound:
		if !m.ok {
			return !added // no valid package existed; removals keep it so
		}
		if added {
			return haveVal && mv <= m.floor // cannot beat the achieved max
		}
		return haveVal && mv < m.floor // below the max it did not carry it
	case OpDecide:
		if !m.ok {
			// The checked selection failed; without knowing why, only
			// cost-invisible candidates are safely ignored (handled above).
			return false
		}
		if added {
			// DecideTopK rejects only on a strictly better package.
			return haveVal && mv <= m.floor
		}
		_, member := m.members[t.Key()]
		return !member
	}
	return false
}
