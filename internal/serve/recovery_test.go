package serve

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/relation"
)

// Crash-recovery suite: kill a WAL-enabled server at randomized points of
// a delta churn — including a torn final log frame cut at every byte
// offset — restart over the same directory, and require the recovered
// collection to be byte-for-byte the pre-crash one (content fingerprint
// identity) with solve answers to match. Together the two tests exercise
// well over 100 distinct kill points per run.

// churnDelta mutates the poi relation the travel queries read: two new
// tuples out of every three, then a delete of the previous one — so the
// collection fingerprint moves on every step and a lost record is always
// visible.
func churnDelta(i int) relation.Delta {
	name := func(j int) string { return fmt.Sprintf("crash-poi-%03d", j) }
	if i%3 == 2 {
		return relation.Delta{Deletes: []relation.RelationDelta{{
			Name:   "poi",
			Tuples: [][]any{{name(i - 1), "nyc", "museum", (i - 1) % 40, 45}},
		}}}
	}
	return relation.Delta{Upserts: []relation.RelationDelta{{
		Name:   "poi",
		Tuples: [][]any{{name(i), "nyc", "museum", i % 40, 45}},
	}}}
}

func crashCountReq() Request {
	ps := travelSpec(3)
	ps.Bound = -100
	return Request{Collection: "travel", Op: OpCount, Spec: ps, NoCache: true}
}

// lastFrameStart walks the WAL's length-prefixed frames and returns the
// byte offset where the final complete frame starts, plus the file size.
func lastFrameStart(t *testing.T, path string) (last, size int64) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off, lastOff := 0, -1
	for off+8 <= len(raw) {
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		next := off + 8 + n
		if next > len(raw) {
			break
		}
		lastOff = off
		off = next
	}
	if lastOff < 0 {
		t.Fatalf("%s holds no complete frame", path)
	}
	return int64(lastOff), int64(len(raw))
}

// copyWALDir clones one collection's durability directory for a trial.
func copyWALDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"snapshot.json", "deltas.wal"} {
		raw, err := os.ReadFile(filepath.Join(src, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// recoverAt truncates the trial's log to cut bytes, recovers a fresh
// server over it, and returns the recovered fingerprint and solve count.
func recoverAt(t *testing.T, dir string, cut int64, solve bool) (string, int64) {
	t.Helper()
	if cut >= 0 {
		if err := os.Truncate(filepath.Join(dir, "travel", "deltas.wal"), cut); err != nil {
			t.Fatal(err)
		}
	}
	s := NewServer(Options{})
	defer s.Close()
	if err := s.OpenWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatalf("recovery OpenWAL: %v", err)
	}
	info, ok := s.Collection("travel")
	if !ok {
		t.Fatal("collection did not recover")
	}
	var count int64
	if solve {
		count = *mustSolve(t, s, crashCountReq()).Count
	}
	return info.Fingerprint, count
}

// A crash mid-append tears the final frame. Whatever byte the tear lands
// on — cut at every offset of the last frame — recovery must come back as
// exactly the pre-append state, and an untorn log as the full state.
func TestCrashRecoveryTornFinalFrameEveryOffset(t *testing.T) {
	root := t.TempDir()
	liveDir := filepath.Join(root, "live")
	s := NewServer(Options{})
	if err := s.OpenWAL(WALConfig{Dir: liveDir}); err != nil {
		t.Fatal(err)
	}
	s.SetCollection("travel", gen.Travel(7, 16, 12))
	const settled = 4
	for i := 0; i < settled; i++ {
		if _, err := s.MutateCollection("travel", churnDelta(i)); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
	}
	keepInfo, _ := s.Collection("travel")
	keepCount := *mustSolve(t, s, crashCountReq()).Count

	// The record the crash will tear: acknowledged here, but every torn
	// trial below simulates the crash landing inside its write.
	if _, err := s.MutateCollection("travel", churnDelta(settled)); err != nil {
		t.Fatal(err)
	}
	fullInfo, _ := s.Collection("travel")
	if fullInfo.Fingerprint == keepInfo.Fingerprint {
		t.Fatal("final delta did not change the fingerprint; the tear would be invisible")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(liveDir, "travel", "deltas.wal")
	last, size := lastFrameStart(t, walPath)
	if size-last < 9 {
		t.Fatalf("suspicious final frame: %d bytes", size-last)
	}
	t.Logf("tearing the %d-byte final frame at each of its offsets", size-last)
	for cut := last; cut < size; cut++ {
		trial := filepath.Join(root, fmt.Sprintf("cut%04d", cut))
		copyWALDir(t, filepath.Join(liveDir, "travel"), filepath.Join(trial, "travel"))
		solve := (cut-last)%16 == 0
		fp, count := recoverAt(t, trial, cut, solve)
		if fp != keepInfo.Fingerprint {
			t.Fatalf("cut at %d (frame byte %d): recovered fingerprint %s, want %s",
				cut, cut-last, fp, keepInfo.Fingerprint)
		}
		if solve && count != keepCount {
			t.Fatalf("cut at %d: recovered count %d, want %d", cut, count, keepCount)
		}
	}

	// No tear: the full log replays to the full state.
	trial := filepath.Join(root, "intact")
	copyWALDir(t, filepath.Join(liveDir, "travel"), filepath.Join(trial, "travel"))
	if fp, _ := recoverAt(t, trial, -1, false); fp != fullInfo.Fingerprint {
		t.Fatalf("intact recovery fingerprint %s, want %s", fp, fullInfo.Fingerprint)
	}
}

// Randomized churn/kill trials: a server churns deltas (sometimes through
// tiny compaction thresholds, so kills land after snapshot+reset cycles
// too), dies — cleanly killed or mid-append — and must recover to the
// exact acknowledged state, then keep accepting deltas.
func TestCrashRecoveryRandomizedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	db := gen.Travel(7, 16, 12)
	const trials = 48
	for trial := 0; trial < trials; trial++ {
		dir := filepath.Join(t.TempDir(), "wal")
		torn := rng.Intn(2) == 0
		cfg := WALConfig{Dir: dir}
		if !torn && rng.Intn(3) == 0 {
			// Tiny threshold: nearly every append compacts, so recovery
			// runs from a fresh snapshot plus a short suffix. (Torn trials
			// keep the default: compaction folds the final record into the
			// snapshot, where a log tear could no longer lose it.)
			cfg.CompactBytes = 64
		}
		s := NewServer(Options{})
		if err := s.OpenWAL(cfg); err != nil {
			t.Fatal(err)
		}
		s.SetCollection("travel", db)
		churn := 1 + rng.Intn(7)
		for i := 0; i < churn; i++ {
			if _, err := s.MutateCollection("travel", churnDelta(i)); err != nil {
				t.Fatalf("trial %d delta %d: %v", trial, i, err)
			}
		}
		wantInfo, _ := s.Collection("travel")
		solve := trial%4 == 0
		var wantCount int64
		if solve {
			wantCount = *mustSolve(t, s, crashCountReq()).Count
		}
		cut := int64(-1)
		if torn {
			// The kill lands inside the next append: the record past
			// wantInfo is torn at a random byte and must be lost whole.
			if _, err := s.MutateCollection("travel", churnDelta(churn)); err != nil {
				t.Fatal(err)
			}
			last, size := lastFrameStart(t, filepath.Join(dir, "travel", "deltas.wal"))
			cut = last + rng.Int63n(size-last)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		fp, count := recoverAt(t, dir, cut, solve)
		if fp != wantInfo.Fingerprint {
			t.Fatalf("trial %d (churn=%d torn=%v cut=%d): fingerprint %s, want %s",
				trial, churn, torn, cut, fp, wantInfo.Fingerprint)
		}
		if solve && count != wantCount {
			t.Fatalf("trial %d: count %d, want %d", trial, count, wantCount)
		}

		// Recovered state is live state: the next delta must append and
		// install as if the crash never happened.
		s2 := NewServer(Options{})
		if err := s2.OpenWAL(WALConfig{Dir: dir}); err != nil {
			t.Fatal(err)
		}
		if _, err := s2.MutateCollection("travel", churnDelta(churn+1)); err != nil {
			t.Fatalf("trial %d post-recovery delta: %v", trial, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
