package serve

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file renders the service counters in the Prometheus text
// exposition format (version 0.0.4) at GET /metrics — hand-rolled, no
// client library, because the repo's no-new-dependencies rule applies
// and the format is three line shapes: # HELP, # TYPE, and samples.
// Every series carries the pkgrec_ prefix. The endpoint reads the same
// consistent Stats snapshot /v1/stats serves, plus the two live
// histograms, and — like /v1/stats — bypasses solve admission entirely:
// a saturated pool must never starve the instruments that explain it.

// histogram is a fixed-bucket Prometheus histogram: counts[i] tallies
// observations ≤ buckets[i], counts[len(buckets)] is the +Inf bucket.
// Rendering emits cumulative bucket counts, as the format requires.
// Not internally locked — statsRec guards its histograms with its own
// mutex.
type histogram struct {
	buckets []float64 // upper bounds, ascending
	counts  []uint64  // len(buckets)+1, last is +Inf
	sum     float64
	count   uint64
}

func (h *histogram) init(buckets []float64) {
	h.buckets = buckets
	h.counts = make([]uint64, len(buckets)+1)
}

func (h *histogram) observe(x float64) {
	i := sort.SearchFloat64s(h.buckets, x) // first bucket with bound >= x
	h.counts[i]++
	h.sum += x
	h.count++
}

func (h *histogram) clone() histogram {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return c
}

// solveLatencyBuckets cover engine runs from sub-millisecond cache-warm
// specs to deadline-bounded multi-second walks.
var solveLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// costRatioBuckets cover the actual/predicted calibration ratio; mass
// around 1.0 means the cost model prices solves accurately.
var costRatioBuckets = []float64{0.1, 0.25, 0.5, 0.75, 1, 1.5, 2, 4, 8, 16}

// renderMetrics builds the full exposition text; NewHandler serves it
// at GET /metrics through the MetricsRenderer extension.
func (s *Server) renderMetrics() string {
	st := s.Stats()
	solve, ratio := s.stats.histograms()
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP pkgrec_%s %s\n# TYPE pkgrec_%s counter\npkgrec_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP pkgrec_%s %s\n# TYPE pkgrec_%s gauge\npkgrec_%s %s\n", name, help, name, name, formatFloat(v))
	}

	counter("requests_total", "Single solve requests received.", st.Requests)
	counter("cache_hits_total", "Consulted result-cache lookups that hit.", st.CacheHits)
	counter("cache_misses_total", "Consulted result-cache lookups that missed.", st.CacheMisses)
	counter("coalesced_total", "Solves answered by joining an identical in-flight solve.", st.Coalesced)
	counter("errors_total", "Failed requests (sheds excluded).", st.Errors)
	counter("batches_total", "Batch calls received.", st.Batches)
	counter("batch_items_total", "Sub-requests across all batches.", st.BatchItems)
	counter("batch_deduped_total", "Batch items answered by an identical item of the same batch.", st.BatchDeduped)
	counter("deltas_total", "Content-changing collection deltas installed.", st.Deltas)
	counter("delta_items_total", "Tuples upserted plus deleted across installed deltas.", st.DeltaItems)
	counter("repair_rekeyed_total", "Cache entries carried across a delta under a new content key.", st.RepairRekeyed)
	counter("repair_patched_total", "Cache entries proven unaffected by a delta and kept.", st.RepairPatched)
	counter("repair_resolved_total", "Cache entries a delta invalidated and purged.", st.RepairResolved)

	counter("admit_express_total", "Solves admitted without queueing (free slot or cheap class).", st.AdmitExpress)
	counter("admit_queued_total", "Solves admitted after waiting in the fairness queue.", st.AdmitQueued)
	counter("shed_total", "Solves shed with 429 and a Retry-After.", st.Shed)

	counter("wal_appends_total", "Delta records appended to collection WALs.", st.WALAppends)
	counter("wal_syncs_total", "WAL fsync rounds (group commit: one round covers many appends).", st.WALSyncs)
	counter("wal_compactions_total", "WAL compactions (snapshot written, log reset).", st.WALCompactions)
	counter("wal_replayed_total", "WAL records replayed during recovery.", st.WALReplayed)
	counter("wal_errors_total", "Durability faults: failed appends or snapshot writes.", st.WALErrors)

	gauge("collections", "Registered collections.", float64(st.Collections))
	gauge("cache_entries", "Result-cache entries.", float64(st.CacheEntries))
	gauge("in_flight", "Requests currently being served.", float64(st.InFlight))
	gauge("snapshots_live", "Collection snapshots reachable (registered plus pinned by in-flight solves).", float64(st.SnapshotsLive))
	gauge("queue_depth", "Solves waiting in the admission queue.", float64(st.QueueDepth))
	gauge("cost_families", "Spec families tracked by the cost model.", float64(st.CostFamilies))
	gauge("wal_collections", "Collections with a live WAL.", float64(st.WALCollections))
	gauge("wal_bytes", "Live WAL bytes across collections.", float64(st.WALBytes))

	fmt.Fprintf(&b, "# HELP pkgrec_engine_nodes_total Engine DFS nodes visited.\n# TYPE pkgrec_engine_nodes_total counter\npkgrec_engine_nodes_total %d\n", st.EngineNodes)
	fmt.Fprintf(&b, "# HELP pkgrec_engine_pruned_total Subtrees cut by the bound layer.\n# TYPE pkgrec_engine_pruned_total counter\npkgrec_engine_pruned_total %d\n", st.EnginePruned)
	fmt.Fprintf(&b, "# HELP pkgrec_engine_prepares_total Candidate evaluations (problem warm-ups).\n# TYPE pkgrec_engine_prepares_total counter\npkgrec_engine_prepares_total %d\n", st.EnginePrepares)
	fmt.Fprintf(&b, "# HELP pkgrec_pbo_solves_total Pseudo-Boolean backend solves.\n# TYPE pkgrec_pbo_solves_total counter\npkgrec_pbo_solves_total %d\n", st.PBOSolves)

	// Per-op request breakdown as one labeled counter family. Declared
	// only once it has samples: a family with HELP/TYPE and no series is
	// legal but reads as an exposition bug to linters.
	if len(st.PerOp) > 0 {
		fmt.Fprintf(&b, "# HELP pkgrec_op_requests_total Validated requests by operation.\n# TYPE pkgrec_op_requests_total counter\n")
		ops := make([]string, 0, len(st.PerOp))
		for op := range st.PerOp {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for _, op := range ops {
			fmt.Fprintf(&b, "pkgrec_op_requests_total{op=%q} %d\n", op, st.PerOp[op])
		}
	}

	renderHistogram(&b, "solve_duration_seconds", "Engine/backend solve wall time (cache hits excluded).", solve)
	renderHistogram(&b, "cost_ratio", "Actual over predicted solve cost (1 = perfectly calibrated).", ratio)
	return b.String()
}

// renderHistogram emits one histogram family with cumulative buckets.
func renderHistogram(b *strings.Builder, name, help string, h histogram) {
	fmt.Fprintf(b, "# HELP pkgrec_%s %s\n# TYPE pkgrec_%s histogram\n", name, help, name)
	cum := uint64(0)
	for i, ub := range h.buckets {
		cum += h.counts[i]
		fmt.Fprintf(b, "pkgrec_%s_bucket{le=%q} %d\n", name, formatFloat(ub), cum)
	}
	cum += h.counts[len(h.buckets)]
	fmt.Fprintf(b, "pkgrec_%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "pkgrec_%s_sum %s\n", name, formatFloat(h.sum))
	fmt.Fprintf(b, "pkgrec_%s_count %d\n", name, h.count)
}

// formatFloat renders a float the Prometheus way: shortest decimal, no
// exponent for the magnitudes these series take.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
