package serve

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/spec"
)

// Operations. Each maps to one of the paper's six problems; OpExists
// additionally exposes the ∃k-valid feasibility core shared by QRPP and
// ARPP.
const (
	OpTopK     = "topk"     // FRP: compute a top-k package selection
	OpDecide   = "decide"   // RPP: is Selection a top-k package selection?
	OpMaxBound = "maxbound" // MBP: the maximum rating bound
	OpCount    = "count"    // CPP: count valid packages rated ≥ Spec.Bound
	OpExists   = "exists"   // do k valid packages rated ≥ Spec.Bound exist?
	OpRelax    = "relax"    // QRPP: minimal query relaxation
	// OpRelaxPlan is QRPP's ranked form: the minimal feasible relaxations
	// within the gap budget as ordered suggestions (gap, relaxed query,
	// witness package), up to Request.MaxSuggestions of them. The first
	// suggestion is exactly the op "relax" answer.
	OpRelaxPlan = "relaxplan"
	OpAdjust    = "adjust" // ARPP: minimal bounded item adjustment
)

// normalizeOp validates an operation name.
func normalizeOp(op string) (string, error) {
	switch op {
	case OpTopK, OpDecide, OpMaxBound, OpCount, OpExists, OpRelax, OpRelaxPlan, OpAdjust:
		return op, nil
	}
	return "", &RequestError{Err: fmt.Errorf("unknown op %q", op)}
}

// Solver backends. The default branch-and-bound engine answers every
// operation; the pseudo-Boolean backend (internal/pbo) answers the five
// core package problems and is result-identical to the engine on them —
// only the choice of RPP witness may differ, and any witness is genuine.
const (
	BackendBB  = "bb"  // the internal/core branch-and-bound engine (default)
	BackendPBO = "pbo" // the internal/pbo pseudo-Boolean optimization backend
)

// errUnsupportedBackend marks a backend name the server does not know; the
// HTTP layer maps the wrapping RequestError to 400.
var errUnsupportedBackend = fmt.Errorf("unsupported backend")

// normalizeBackend validates a request's backend choice against its
// (already normalized) operation. An empty backend means the default
// engine; the pbo backend serves the package problems but not the
// relaxation/adjustment ops, which are search loops around the engine
// rather than single solves.
func normalizeBackend(backend, op string) (string, error) {
	switch backend {
	case "", BackendBB:
		return BackendBB, nil
	case BackendPBO:
		switch op {
		case OpTopK, OpDecide, OpMaxBound, OpCount, OpExists:
			return BackendPBO, nil
		}
		return "", &RequestError{Err: fmt.Errorf("backend %q does not support op %q", backend, op)}
	}
	return "", &RequestError{Err: fmt.Errorf("%w %q", errUnsupportedBackend, backend)}
}

// Request is one solve request. Collection names a registered collection;
// Spec describes the problem over it (queries in the textual syntax, see
// docs/serving.md); the remaining fields parameterise individual
// operations. Workers, TimeoutMS and NoCache steer execution only and never
// affect the answer (they are excluded from the cache key).
type Request struct {
	Collection string           `json:"collection"`
	Op         string           `json:"op"`
	Spec       spec.ProblemSpec `json:"spec"`
	// Backend selects the solver: "bb" (or empty, the default) for the
	// branch-and-bound engine, "pbo" for the pseudo-Boolean backend on ops
	// topk/decide/maxbound/count/exists. Backends are result-identical, but
	// the op "decide" witness may legitimately differ, so the backend
	// participates in the cache key.
	Backend string `json:"backend,omitempty"`
	// Selection is the candidate top-k selection for op "decide": packages
	// as lists of tuples of JSON scalars.
	Selection [][][]any `json:"selection,omitempty"`
	// Relax is the QRPP instance spec for ops "relax" and "relaxplan".
	Relax *spec.RelaxSpec `json:"relax,omitempty"`
	// MaxSuggestions caps the ranked suggestions op "relaxplan" returns;
	// ≤ 0 means the server default (5). Unlike Workers or TimeoutMS it
	// shapes the answer, so it participates in the cache key.
	MaxSuggestions int `json:"maxSuggestions,omitempty"`
	// Adjust and Extra are the ARPP instance spec and the additional
	// collection D′ for op "adjust".
	Adjust *spec.AdjustSpec   `json:"adjust,omitempty"`
	Extra  *relation.Database `json:"extra,omitempty"`
	// Workers overrides the server's per-solve engine worker count (> 0).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS overrides the server's default solve deadline (> 0).
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
	// NoCache bypasses the result cache (the request still coalesces with
	// identical in-flight solves).
	NoCache bool `json:"noCache,omitempty"`
	// Priority is the admission class: "high" requests are scheduled
	// ahead of their tenant's queue, "low" behind it, "normal" (or empty)
	// in cost order. Like Workers it steers execution only — the answer
	// is identical in every class, so priority is excluded from the cache
	// key.
	Priority string `json:"priority,omitempty"`
	// Shard restricts the solve to one candidate-space shard for ops
	// topk/maxbound/count/exists on the branch-and-bound backend: the
	// engine walks only the subtree roots the shard owns and the Result
	// comes back with Partial set, carrying this shard's contribution for
	// a coordinator to merge (MergeShardResults). Shards partition the
	// package space, so partials from all Count shards merge into exactly
	// the single-node answer. Unlike the execution knobs it changes the
	// (partial) answer and participates in the cache key.
	Shard *core.ShardSpec `json:"shard,omitempty"`
	// FloorHint seeds the shard's pruning floor (ops topk/maxbound with
	// Shard set): the caller asserts k packages rated at least FloorHint
	// exist globally — e.g. another shard's full partial proves it — so
	// this shard may skip everything rated strictly below. Affects which
	// packages the partial reports, so it participates in the cache key.
	FloorHint *float64 `json:"floorHint,omitempty"`
}

// Admission classes for Request.Priority.
const (
	PriorityHigh   = "high"
	PriorityNormal = "normal" // the default; equivalent to ""
	PriorityLow    = "low"
)

// normalizePriority validates an admission class and folds the default
// spelling: "" and "normal" are the same class.
func normalizePriority(p string) (string, error) {
	switch p {
	case "", PriorityNormal:
		return "", nil
	case PriorityHigh, PriorityLow:
		return p, nil
	}
	return "", &RequestError{Err: fmt.Errorf("unknown priority %q", p)}
}

// PackageResult is a package on the wire, with its rating and cost.
type PackageResult struct {
	Tuples [][]any `json:"tuples"`
	Val    float64 `json:"val"`
	Cost   float64 `json:"cost"`
}

// Result is the operation-dependent answer; it is what the cache stores.
// OK's meaning follows the operation: a selection exists (topk, maxbound),
// the candidate selection is a top-k selection (decide), k valid packages
// exist (exists), a relaxation/adjustment within budget exists
// (relax/adjust); count always sets OK.
type Result struct {
	Op string `json:"op"`
	OK bool   `json:"ok"`
	// Packages is the top-k selection (op topk).
	Packages []PackageResult `json:"packages,omitempty"`
	// Witness is a counterexample package out-rating the candidate
	// selection (op decide, when OK is false and a witness exists).
	Witness *PackageResult `json:"witness,omitempty"`
	// Count is the number of valid packages rated ≥ bound (op count).
	Count *int64 `json:"count,omitempty"`
	// Bound is the maximum rating bound (op maxbound).
	Bound *float64 `json:"bound,omitempty"`
	// Gap and RelaxedQuery describe the minimal relaxation (ops relax and
	// relaxplan — for relaxplan they mirror the first suggestion).
	Gap          *float64 `json:"gap,omitempty"`
	RelaxedQuery string   `json:"relaxedQuery,omitempty"`
	// Suggestions are the ranked minimal relaxations (op relaxplan), in
	// ascending (gap, level vector) order.
	Suggestions []SuggestionResult `json:"suggestions,omitempty"`
	// Delta and DeltaSize describe the minimal adjustment (op adjust).
	Delta     []string `json:"delta,omitempty"`
	DeltaSize *int     `json:"deltaSize,omitempty"`
	// Partial marks a shard partial (Request.Shard): the fields above
	// carry one shard's contribution, not the global answer, and OK means
	// only that the shard walk succeeded. MergeShardResults combines the
	// partials of all shards into the single-node Result. For ops topk
	// and maxbound the partial's Packages are the shard's best min(k,
	// population) packages; for count and exists, Count is the shard's
	// (for exists: capped at k) qualifying-package count.
	Partial bool `json:"partial,omitempty"`
	// ShardFloor is the pruning floor a topk/maxbound shard walk finished
	// at (-Inf when the shard never filled a k-buffer): a sound FloorHint
	// for sibling shards still in flight.
	ShardFloor *float64 `json:"shardFloor,omitempty"`

	// repair carries the solve-time classification evidence the delta
	// repair pipeline judges cached copies of this result by (see
	// internal/serve/repair.go). Never serialized.
	repair *repairMeta
}

// SuggestionResult is one ranked relaxation suggestion on the wire. Choices
// render the non-zero relaxation levels in the canonical point order (by
// discovery index, levels in spec.CanonFloat form), so two equivalent
// requests — however they ordered their point specs — receive byte-identical
// suggestion output.
type SuggestionResult struct {
	Gap          float64  `json:"gap"`
	Choices      []string `json:"choices,omitempty"`
	RelaxedQuery string   `json:"relaxedQuery"`
	// Witness is a valid package rated at least the bound under the relaxed
	// query — proof the suggestion is feasible.
	Witness *PackageResult `json:"witness,omitempty"`
}

// Response wraps a Result with how this call was served. Version is the
// answering node's mutation counter for the collection; Fingerprint is
// the collection's content hash, which — unlike the per-node version —
// identifies the content across a replicated fleet (the cluster router
// uses it to detect shard partials that straddled a mutation).
type Response struct {
	Result
	Collection  string  `json:"collection"`
	Version     uint64  `json:"version"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	Cached      bool    `json:"cached"`
	ElapsedMS   float64 `json:"elapsedMs"`
}

// DeltaInfo describes the outcome of a collection delta
// (POST /v1/collections/{name}/delta): the resulting collection state plus
// what the delta changed. An empty Mutated means the delta was a no-op —
// the version did not move and every cached result stayed valid.
type DeltaInfo struct {
	CollectionInfo
	Mutated  []string `json:"mutatedRelations,omitempty"`
	Upserted int      `json:"upserted"`
	Deleted  int      `json:"deleted"`
}

// RequestError marks a client-side fault (malformed spec, unknown op,
// unparsable query); the HTTP layer maps it to 400.
type RequestError struct{ Err error }

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

// NotFoundError marks a missing resource; the HTTP layer maps it to 404.
type NotFoundError struct{ What, Name string }

func (e *NotFoundError) Error() string { return fmt.Sprintf("unknown %s %q", e.What, e.Name) }

// OverloadError marks a solve the admission controller shed: the pool
// and its queue are saturated, and the client should retry after
// RetryAfter — derived from the predicted queue drain, so backing off by
// it lands the retry when a slot is plausibly free. The HTTP layer maps
// it to 429 with a Retry-After header. Sheds are deliberate load
// management, not faults: they count into the Shed stat, not Errors.
type OverloadError struct{ RetryAfter time.Duration }

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server overloaded; retry after %s", e.RetryAfter)
}

// UnavailableError marks a request the server refused because it could
// not honor its durability contract — a delta whose WAL append failed is
// the canonical case: accepting it would acknowledge a mutation a crash
// could silently lose. The HTTP layer maps it to 503.
type UnavailableError struct{ Err error }

func (e *UnavailableError) Error() string { return fmt.Sprintf("service unavailable: %v", e.Err) }
func (e *UnavailableError) Unwrap() error { return e.Err }
