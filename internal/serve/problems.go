package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/pbo"
	"repro/internal/relation"
)

// preparedProblem lazily builds and prepares one problem spec's Problem,
// shared by every solve — single, batch, or across requests — whose spec
// canonicalizes identically over one collection snapshot. Build (spec
// parse, aggregator construction) and Prepare (candidate evaluation, bound
// tables) run exactly once, under the Once, inside the first user's pool
// slot — so a fully cache-served workload never pays them — after which the
// engine reads the problem read-only and concurrent solves are safe. Build
// and prepare failures are memoised too: a deterministic bad spec fails
// once, not per request.
type preparedProblem struct {
	// deps are the extensional relations the spec reads (depsAll when the
	// list is not exhaustive, i.e. the spec depends on the whole
	// database); collection deltas use them to decide which prepared
	// problems survive a mutation.
	deps    []string
	depsAll bool
	build   func() (*core.Problem, error)
	once    sync.Once
	done    atomic.Bool
	prob    *core.Problem
	err     error

	// The spec's pseudo-Boolean compilation, built lazily on first
	// backend-"pbo" use of this prepared problem and shared by every such
	// solve (the compiled store is immutable; searches carry their own
	// state). rebind deliberately does not carry it: the rebound copy
	// recompiles on demand against the new database pointer.
	pboOnce sync.Once
	pboC    *pbo.Compiled
	pboErr  error
}

func (sp *preparedProblem) get() (*core.Problem, error) {
	sp.once.Do(func() {
		sp.prob, sp.err = sp.build()
		if sp.err == nil {
			sp.err = sp.prob.Prepare()
		}
		sp.build = nil // release the closure (it captures a collection snapshot)
		sp.done.Store(true)
	})
	return sp.prob, sp.err
}

// getPBO returns the spec's shared PB compilation, building the underlying
// problem first if needed. Compile failures are memoised like build
// failures: a spec the backend cannot compile fails once, not per request.
func (sp *preparedProblem) getPBO(ctr *pbo.Counters) (*pbo.Compiled, error) {
	prob, err := sp.get()
	if err != nil {
		return nil, err
	}
	sp.pboOnce.Do(func() {
		sp.pboC, sp.pboErr = pbo.Compile(prob, ctr)
	})
	return sp.pboC, sp.pboErr
}

// ready reports a successfully built-and-prepared problem — the only state
// worth carrying across a collection delta.
func (sp *preparedProblem) ready() bool { return sp.done.Load() && sp.err == nil }

// rebind returns a carried copy of a ready prepared problem whose Problem
// points at db instead of the snapshot it was built on. The memoised state
// (candidates, bound tables) stays shared and stays valid — rebinding is
// only ever done when every relation the spec reads is pointer-identical
// between the two versions — while the old version's Database (and with it
// the superseded copies of mutated relations) becomes collectable instead
// of being pinned for as long as the spec stays warm.
func (sp *preparedProblem) rebind(db *relation.Database) *preparedProblem {
	prob := *sp.prob
	prob.DB = db
	out := &preparedProblem{deps: sp.deps, depsAll: sp.depsAll, prob: &prob}
	out.once.Do(func() {})
	out.done.Store(true)
	return out
}

// advancedPrepared wraps an already-prepared problem — produced by
// core.Problem.Advance across a collection delta — as a ready
// preparedProblem, so the delta repair pipeline can seed the new version's
// cache with warm state for the specs the delta *did* touch. Like rebind,
// the PB compilation is not carried: the candidate set may have changed,
// so backend-"pbo" use recompiles on demand.
func advancedPrepared(prob *core.Problem, deps []string, depsAll bool) *preparedProblem {
	out := &preparedProblem{deps: deps, depsAll: depsAll, prob: prob}
	out.once.Do(func() {})
	out.done.Store(true)
	return out
}

// problemCache is the per-collection-snapshot LRU of prepared problems,
// keyed by canonical spec text. It bounds the warmed state a collection
// holds (candidate lists and bound tables are O(|Q(D)|) each); eviction is
// safe at any time because in-flight solves hold the *preparedProblem
// pointer, not the cache slot. getOrCreate's mk runs under the cache lock
// and must not block — it only wires the lazy build closure; the expensive
// work happens in preparedProblem.get.
type problemCache struct {
	*lruMap[*preparedProblem]
}

func newProblemCache(capacity int) *problemCache {
	return &problemCache{lruMap: newLRUMap[*preparedProblem](capacity)}
}

// carryOver seeds the cache with from's entries that survive a delta
// mutating the named relations: entries that finished building, succeeded,
// and whose dependency set is exhaustive and disjoint from the mutation.
// Carried problems are rebound to db, the new version's database — sound
// because every relation they read is pointer-shared, unmutated, between
// the versions (see relation.Database.ApplyDelta) — so the superseded
// snapshot is not pinned by warm specs.
func (pc *problemCache) carryOver(from *problemCache, mutated map[string]struct{}, db *relation.Database) {
	// entries returns oldest-first, so re-inserting preserves recency.
	for _, e := range from.entries() {
		if !e.val.ready() || e.val.depsAll {
			continue
		}
		affected := false
		for _, dep := range e.val.deps {
			if _, ok := mutated[dep]; ok {
				affected = true
				break
			}
		}
		if affected {
			continue
		}
		carried := e.val.rebind(db)
		pc.getOrCreate(e.key, func() *preparedProblem { return carried })
	}
}
