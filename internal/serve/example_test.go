package serve_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/spec"
)

// ExampleClient_applyDelta mutates a live collection incrementally: one
// upsert-and-delete delta instead of a full reload. The version bumps, the
// fingerprint moves, and a repeated delta is idempotent — nothing mutated,
// same version, warm caches untouched.
func ExampleClient_applyDelta() {
	items := relation.FromTuples(relation.NewSchema("item", "name", "price", "rating"),
		relation.NewTuple(relation.Str("brie"), relation.Int(4), relation.Int(3)),
		relation.NewTuple(relation.Str("fig"), relation.Int(2), relation.Int(3)))
	db := relation.NewDatabase().Add(items)

	srv := serve.NewServer(serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	client := serve.NewClient(ts.URL)
	if _, err := client.PutCollection(ctx, "shop", db); err != nil {
		log.Fatal(err)
	}

	delta := relation.Delta{
		Upserts: []relation.RelationDelta{{Name: "item", Tuples: [][]any{{"olive", 1, 1}}}},
		Deletes: []relation.RelationDelta{{Name: "item", Tuples: [][]any{{"brie", 4, 3}}}},
	}
	info, err := client.ApplyDelta(ctx, "shop", delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("version=%d tuples=%d mutated=%v upserted=%d deleted=%d\n",
		info.Version, info.Tuples, info.Mutated, info.Upserted, info.Deleted)

	again, err := client.ApplyDelta(ctx, "shop", delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: version=%d mutated=%v\n", again.Version, again.Mutated)
	// Output:
	// version=2 tuples=2 mutated=[item] upserted=1 deleted=1
	// replay: version=2 mutated=[]
}

// ExampleClient_relaxPlan asks op "relaxplan" for the ranked minimal
// relaxations of an infeasible query: the nyc-museum filter admits only an
// over-budget museum, so the daemon walks the gap lattice once (one
// incremental solve-session) and returns every incomparable minimal
// relaxation within the gap budget, each with a witness package — the
// cheapest relaxation first, mirrored into the top-level gap/relaxedQuery
// fields so the answer subsumes op "relax".
func ExampleClient_relaxPlan() {
	pois := relation.FromTuples(relation.NewSchema("poi", "name", "city", "type", "ticket", "time"),
		relation.NewTuple(relation.Str("m1"), relation.Str("nyc"), relation.Str("museum"), relation.Int(50), relation.Int(30)),
		relation.NewTuple(relation.Str("m2"), relation.Str("bos"), relation.Str("museum"), relation.Int(1), relation.Int(30)),
		relation.NewTuple(relation.Str("m3"), relation.Str("nyc"), relation.Str("park"), relation.Int(2), relation.Int(30)))
	db := relation.NewDatabase().Add(pois)

	srv := serve.NewServer(serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	client := serve.NewClient(ts.URL)
	if _, err := client.PutCollection(ctx, "pois", db); err != nil {
		log.Fatal(err)
	}

	resp, err := client.Solve(ctx, serve.Request{
		Collection: "pois",
		Op:         serve.OpRelaxPlan,
		Spec: spec.ProblemSpec{
			Query: `RQ(name, type, ticket, time) :-
				poi(name, city, type, ticket, time), city = "nyc", type = "museum".`,
			Cost:       spec.AggSpec{Kind: "count", Monotone: true},
			Val:        spec.AggSpec{Kind: "negsum", Attr: 2},
			Budget:     2,
			K:          1,
			MaxPkgSize: 1,
		},
		Relax: &spec.RelaxSpec{
			Points: []spec.RelaxPointSpec{
				{Index: 0, Metric: spec.MetricSpec{Kind: "table", Entries: map[string]float64{"nyc|bos": 2}}},
				{Index: 1, Metric: spec.MetricSpec{Kind: "table", Entries: map[string]float64{"museum|park": 3}}},
			},
			Bound:     -5,
			GapBudget: 5,
		},
		MaxSuggestions: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ok=%v suggestions=%d firstGap=%g\n", resp.OK, len(resp.Suggestions), *resp.Gap)
	for _, sg := range resp.Suggestions {
		fmt.Printf("gap=%g choices=%v witness=%v\n", sg.Gap, sg.Choices, sg.Witness.Tuples[0][0])
	}
	// Output:
	// ok=true suggestions=2 firstGap=2
	// gap=2 choices=[p0[const-in-equality: "nyc"] d=2] witness=m2
	// gap=3 choices=[p1[const-in-equality: "museum"] d=3] witness=m3
}

// ExampleClient_batch sends one /v1/batch request carrying four
// sub-requests — two of them identical — against a single collection. The
// daemon snapshots the collection once, answers the duplicate from its
// twin without a second solve, and isolates the malformed item's error
// from the rest of the batch.
func ExampleClient_batch() {
	items := relation.NewRelation(relation.NewSchema("item", "name", "price", "rating"))
	for _, row := range [][]any{
		{"brie", int64(4), int64(3)}, {"cheddar", int64(3), int64(2)},
		{"fig", int64(2), int64(3)}, {"olive", int64(1), int64(1)},
	} {
		t := relation.NewTuple(relation.Str(row[0].(string)),
			relation.Int(row[1].(int64)), relation.Int(row[2].(int64)))
		if err := items.Insert(t); err != nil {
			log.Fatal(err)
		}
	}
	db := relation.NewDatabase().Add(items)

	srv := serve.NewServer(serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	client := serve.NewClient(ts.URL)
	if _, err := client.PutCollection(ctx, "shop", db); err != nil {
		log.Fatal(err)
	}

	boards := spec.ProblemSpec{
		Query:      `RQ(n, p, r) :- item(n, p, r).`,
		Cost:       spec.AggSpec{Kind: "sum", Attr: 1, Monotone: true},
		Val:        spec.AggSpec{Kind: "sum", Attr: 2},
		Budget:     6,
		K:          2,
		MaxPkgSize: 2,
		Bound:      5,
	}
	resp, err := client.SolveBatch(ctx, serve.BatchRequest{
		Collection: "shop",
		Items: []serve.BatchItem{
			{Op: "count", Spec: boards},
			{Op: "count", Spec: boards}, // identical: deduplicated
			{Op: "maxbound", Spec: boards},
			{Op: "count"}, // malformed: empty spec, isolated error
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solves=%d deduped=%d errors=%d\n", resp.Solves, resp.Deduped, resp.Errors)
	fmt.Printf("count=%d (deduped twin=%d) maxbound=%g\n",
		*resp.Items[0].Result.Count, *resp.Items[1].Result.Count, *resp.Items[2].Result.Bound)
	fmt.Printf("bad item failed alone: %v\n", resp.Items[3].Error != "")
	// Output:
	// solves=2 deduped=1 errors=1
	// count=2 (deduped twin=2) maxbound=5
	// bad item failed alone: true
}
