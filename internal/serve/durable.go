package serve

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"

	"repro/internal/relation"
)

// WALConfig enables collection durability: every accepted delta is
// appended to a per-collection write-ahead log (relation.WAL) and
// fsynced before the new version installs, full loads write a snapshot,
// and OpenWAL replays snapshot + log suffix on startup — so collections
// mutated live survive a restart or crash with nothing lost past the
// last acknowledged request. The log doubles as a replication stream:
// its records are self-describing, idempotent deltas in seq order.
type WALConfig struct {
	// Dir is the root directory; each collection gets a subdirectory
	// (URL-path-escaped name) holding deltas.wal and snapshot.json.
	Dir string
	// CompactBytes triggers compaction: when a collection's log exceeds
	// it after an append, the current version is snapshotted and the log
	// reset. ≤ 0 means 4 MiB.
	CompactBytes int64
	// Hooks are fault-injection points threaded to every collection's
	// WAL (tests only; nil in production).
	Hooks *relation.WALHooks
}

func (c WALConfig) withDefaults() WALConfig {
	if c.CompactBytes <= 0 {
		c.CompactBytes = 4 << 20
	}
	return c
}

// collWAL is one collection's durability state. Fields are written only
// under the server's writeMu (the writer serialization lock); the WAL
// itself is internally synchronized.
type collWAL struct {
	dir string
	w   *relation.WAL
	seq uint64 // last seq applied to the live collection
	// needSeed marks a log opened for a collection whose snapshot has
	// never been written (the collection was registered before OpenWAL,
	// or the snapshot write failed): the first delta must snapshot the
	// pre-delta state first, or the log would replay onto nothing.
	needSeed bool
}

// walSnapshot is the snapshot.json schema: the full database at Seq,
// integrity-checked by its content fingerprint.
type walSnapshot struct {
	Seq         uint64             `json:"seq"`
	Fingerprint string             `json:"fingerprint"`
	DB          *relation.Database `json:"db"`
}

// OpenWAL enables durability under cfg.Dir and recovers every collection
// persisted there: snapshot load (fingerprint-verified), then replay of
// the log records past the snapshot's seq. Call it once, before serving
// traffic and before loading collections; collections registered earlier
// are seeded into the log on their first delta. Recovered collections
// appear exactly as if freshly loaded: version 1, warm caches empty.
func (s *Server) OpenWAL(cfg WALConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return fmt.Errorf("serve: WALConfig.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.walMu.Lock()
	s.walCfg = &cfg
	s.walMu.Unlock()
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, err := url.PathUnescape(e.Name())
		if err != nil {
			return fmt.Errorf("serve: undecodable collection directory %q: %w", e.Name(), err)
		}
		if err := s.recoverCollection(name, filepath.Join(cfg.Dir, e.Name())); err != nil {
			return fmt.Errorf("serve: recovering collection %q: %w", name, err)
		}
	}
	return nil
}

// recoverCollection rebuilds one collection from its directory. Caller
// holds writeMu.
func (s *Server) recoverCollection(name, dir string) error {
	var snap walSnapshot
	haveSnap := false
	raw, err := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &snap); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		if snap.DB == nil {
			return fmt.Errorf("snapshot: missing database")
		}
		if fp := snap.DB.Fingerprint(); fp != snap.Fingerprint {
			return fmt.Errorf("snapshot integrity: fingerprint %s, recorded %s", fp, snap.Fingerprint)
		}
		haveSnap = true
	case os.IsNotExist(err):
		// A crash between directory creation and the first snapshot
		// write: recover from the log alone (deltas carry schemas for
		// relations they create).
	default:
		return err
	}
	w, recs, err := relation.OpenWAL(filepath.Join(dir, "deltas.wal"), s.walHooks())
	if err != nil {
		return err
	}
	db := snap.DB
	if db == nil {
		db = relation.NewDatabase()
	}
	seq := snap.Seq
	replayed := 0
	for _, rec := range recs {
		if rec.Seq <= snap.Seq {
			// The record predates the snapshot — the crash hit the
			// window between snapshot rename and log reset. Skip it; the
			// snapshot already contains its effect.
			continue
		}
		res, err := db.ApplyDelta(rec.Delta)
		if err != nil {
			w.Close()
			return fmt.Errorf("replaying record %d: %w", rec.Seq, err)
		}
		db = res.DB
		seq = rec.Seq
		replayed++
	}
	w.Advance(seq)
	if haveSnap || replayed > 0 {
		s.mu.Lock()
		old := s.colls[name]
		c := s.newCollection(name, 1, db.Fingerprint(), db)
		s.colls[name] = c
		s.mu.Unlock()
		s.unpin(old)
	}
	s.walMu.Lock()
	s.wals[name] = &collWAL{dir: dir, w: w, seq: seq, needSeed: !haveSnap && replayed == 0}
	s.walMu.Unlock()
	s.stats.walReplay(replayed)
	return nil
}

// walHooks returns the configured fault-injection hooks (nil when
// durability is off or no hooks were set).
func (s *Server) walHooks() *relation.WALHooks {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.walCfg == nil {
		return nil
	}
	return s.walCfg.Hooks
}

// walFor returns the collection's durability state, creating the
// directory and log on first use. Returns (nil, nil) when durability is
// disabled. Caller holds writeMu.
func (s *Server) walFor(name string) (*collWAL, error) {
	s.walMu.Lock()
	cfg := s.walCfg
	cw := s.wals[name]
	s.walMu.Unlock()
	if cfg == nil {
		return nil, nil
	}
	if cw != nil {
		return cw, nil
	}
	dir := filepath.Join(cfg.Dir, url.PathEscape(name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w, _, err := relation.OpenWAL(filepath.Join(dir, "deltas.wal"), cfg.Hooks)
	if err != nil {
		return nil, err
	}
	cw = &collWAL{dir: dir, w: w, seq: w.NextSeq() - 1, needSeed: true}
	s.walMu.Lock()
	s.wals[name] = cw
	s.walMu.Unlock()
	return cw, nil
}

// persistSnapshot writes the collection's full state atomically
// (tmp + fsync + rename + directory fsync) and resets the log — both
// full-load persistence (SetCollection) and size-triggered compaction.
// The log is reset only after the snapshot is durably in place, so a
// crash between the two replays the (idempotent) records onto the
// snapshot harmlessly.
func (s *Server) persistSnapshot(cw *collWAL, fp string, db *relation.Database) error {
	seq := cw.w.NextSeq() - 1
	if cw.seq > seq {
		seq = cw.seq
	}
	if err := writeSnapshotFile(cw.dir, walSnapshot{Seq: seq, Fingerprint: fp, DB: db}); err != nil {
		return err
	}
	if err := cw.w.Reset(); err != nil {
		return err
	}
	cw.seq = seq
	cw.needSeed = false
	s.stats.walCompaction()
	return nil
}

// writeSnapshotFile writes snapshot.json atomically into dir.
func writeSnapshotFile(dir string, snap walSnapshot) error {
	raw, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "snapshot.json.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "snapshot.json")); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// walAppend makes one delta durable before its install: seeds the
// collection's snapshot if this log has never had one, then appends and
// fsyncs the record. An error means the delta MUST be rejected — the
// durability contract says an acknowledged delta survives a crash.
// Caller holds writeMu.
func (s *Server) walAppend(cw *collWAL, preDelta *collection, delta relation.Delta) error {
	if cw.needSeed {
		if err := writeSnapshotFile(cw.dir, walSnapshot{
			Seq:         cw.w.NextSeq() - 1,
			Fingerprint: preDelta.fingerprint,
			DB:          preDelta.db,
		}); err != nil {
			return err
		}
		cw.seq = cw.w.NextSeq() - 1
		cw.needSeed = false
	}
	seq, err := cw.w.Append(delta)
	if err != nil {
		return err
	}
	cw.seq = seq
	s.stats.walAppend()
	return nil
}

// maybeCompact snapshots and resets a log that outgrew CompactBytes.
// Failures degrade: the log keeps growing and the counter fires; the
// next append retries. Caller holds writeMu.
func (s *Server) maybeCompact(cw *collWAL, c *collection) {
	s.walMu.Lock()
	cfg := s.walCfg
	s.walMu.Unlock()
	if cfg == nil || cw.w.Size() <= cfg.CompactBytes {
		return
	}
	if err := s.persistSnapshot(cw, c.fingerprint, c.db); err != nil {
		s.stats.walError()
	}
}

// removeWAL drops a removed collection's durability state and files.
func (s *Server) removeWAL(name string) {
	s.walMu.Lock()
	cw := s.wals[name]
	delete(s.wals, name)
	s.walMu.Unlock()
	if cw == nil {
		return
	}
	if err := cw.w.Close(); err != nil {
		s.stats.walError()
	}
	if err := os.RemoveAll(cw.dir); err != nil {
		s.stats.walError()
	}
}

// Close releases the server's durable state: every collection log is
// flushed and closed. The server must not accept mutations afterwards;
// a fresh NewServer + OpenWAL over the same directory resumes exactly
// where this one stopped.
func (s *Server) Close() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.walMu.Lock()
	wals := s.wals
	s.wals = make(map[string]*collWAL)
	s.walMu.Unlock()
	var first error
	for _, cw := range wals {
		if err := cw.w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// walTotals sums live log sizes and fsync rounds for Stats.
func (s *Server) walTotals() (colls int, bytes int64, syncs uint64) {
	s.walMu.Lock()
	wals := make([]*collWAL, 0, len(s.wals))
	for _, cw := range s.wals {
		wals = append(wals, cw)
	}
	s.walMu.Unlock()
	for _, cw := range wals {
		bytes += cw.w.Size()
		syncs += cw.w.Syncs()
	}
	return len(wals), bytes, syncs
}
