package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/url"
	"os"
	"path/filepath"

	"repro/internal/relation"
)

// WALConfig enables collection durability: every accepted delta is
// appended to a per-collection write-ahead log (relation.WAL) and
// fsynced before the new version installs, full loads write a snapshot,
// and OpenWAL replays snapshot + log suffix on startup — so collections
// mutated live survive a restart or crash with nothing lost past the
// last acknowledged request. The log doubles as a replication stream:
// its records are self-describing, idempotent deltas in seq order.
type WALConfig struct {
	// Dir is the root directory; each collection gets a subdirectory
	// (URL-path-escaped name) holding deltas.wal and snapshot.json.
	Dir string
	// CompactBytes triggers compaction: when a collection's log exceeds
	// it after an append, the current version is snapshotted and the log
	// reset. ≤ 0 means 4 MiB.
	CompactBytes int64
	// Hooks are fault-injection points threaded to every collection's
	// WAL (tests only; nil in production).
	Hooks *relation.WALHooks
}

func (c WALConfig) withDefaults() WALConfig {
	if c.CompactBytes <= 0 {
		c.CompactBytes = 4 << 20
	}
	return c
}

// collWAL is one collection's durability state. Fields are written only
// under the server's writeMu (the writer serialization lock); the WAL
// itself is internally synchronized.
type collWAL struct {
	dir string
	w   *relation.WAL
	seq uint64 // last seq applied to the live collection
	// needSeed marks a log opened for a collection whose snapshot has
	// never been written (the collection was registered before OpenWAL,
	// or the snapshot write failed): the first delta must snapshot the
	// pre-delta state first, or the log would replay onto nothing.
	needSeed bool
}

// walSnapshot is the snapshot body: the full database at Seq,
// integrity-checked by its content fingerprint.
type walSnapshot struct {
	Seq         uint64             `json:"seq"`
	Fingerprint string             `json:"fingerprint"`
	DB          *relation.Database `json:"db"`
}

// walSnapshotFile is the snapshot.json schema: the marshaled walSnapshot
// body guarded by a CRC-32 (IEEE, the same polynomial the WAL frames
// use) over its exact bytes. The WAL was CRC-framed from the start; the
// snapshot used to be trusted as written, leaving recovery's biggest
// input unguarded against torn writes and bit rot — now both halves of
// the durable state are checksummed, and a snapshot that fails its CRC
// (or its body's content fingerprint) degrades to full-log replay
// instead of poisoning recovery.
type walSnapshotFile struct {
	CRC      uint32          `json:"crc"`
	Snapshot json.RawMessage `json:"snapshot"`
}

// OpenWAL enables durability under cfg.Dir and recovers every collection
// persisted there: snapshot load (fingerprint-verified), then replay of
// the log records past the snapshot's seq. Call it once, before serving
// traffic and before loading collections; collections registered earlier
// are seeded into the log on their first delta. Recovered collections
// appear exactly as if freshly loaded: version 1, warm caches empty.
func (s *Server) OpenWAL(cfg WALConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return fmt.Errorf("serve: WALConfig.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.walMu.Lock()
	s.walCfg = &cfg
	s.walMu.Unlock()
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, err := url.PathUnescape(e.Name())
		if err != nil {
			return fmt.Errorf("serve: undecodable collection directory %q: %w", e.Name(), err)
		}
		if err := s.recoverCollection(name, filepath.Join(cfg.Dir, e.Name())); err != nil {
			return fmt.Errorf("serve: recovering collection %q: %w", name, err)
		}
	}
	// The learned cost model persists beside the collection logs: load
	// whatever the previous process saved on Close, so admission prices
	// solves from history instead of re-learning every family from the
	// high unknown prior. The model is a performance hint, never a
	// correctness input — a missing or corrupt file just means cold
	// predictions (plus a WALErrors tick for the corrupt case).
	if err := s.cost.loadFrom(filepath.Join(cfg.Dir, costModelFile)); err != nil {
		s.stats.walError()
	}
	return nil
}

// recoverCollection rebuilds one collection from its directory. Caller
// holds writeMu. A snapshot that fails integrity checking — wrapper or
// body JSON, CRC, content fingerprint — is treated as absent: recovery
// degrades to replaying the full log from an empty database, the
// WALErrors counter fires, and anything the log no longer covers
// (records compacted into the bad snapshot) is lost rather than
// silently wrong. When a log record cannot apply without the lost
// snapshot state (a delta into a relation only the snapshot defined),
// the collection is abandoned — left unregistered with its log position
// preserved, so the daemon starts, reports the damage through
// WALErrors, and a fresh upload reseeds durability — instead of the
// whole daemon failing to boot over one bad file.
func (s *Server) recoverCollection(name, dir string) error {
	var snap walSnapshot
	haveSnap, snapCorrupt := false, false
	raw, err := os.ReadFile(filepath.Join(dir, "snapshot.json"))
	switch {
	case err == nil:
		parsed, perr := parseSnapshotFile(raw)
		if perr != nil {
			s.stats.walError()
			snapCorrupt = true
		} else {
			snap = parsed
			haveSnap = true
		}
	case os.IsNotExist(err):
		// A crash between directory creation and the first snapshot
		// write: recover from the log alone.
	default:
		return err
	}
	w, recs, err := relation.OpenWAL(filepath.Join(dir, "deltas.wal"), s.walHooks())
	if err != nil {
		return err
	}
	db := snap.DB
	if db == nil {
		db = relation.NewDatabase()
	}
	seq := snap.Seq
	replayed := 0
	abandoned := false
	for _, rec := range recs {
		if rec.Seq <= snap.Seq {
			// The record predates the snapshot — the crash hit the
			// window between snapshot rename and log reset. Skip it; the
			// snapshot already contains its effect.
			continue
		}
		if !abandoned {
			res, err := db.ApplyDelta(rec.Delta)
			if err != nil {
				if !snapCorrupt {
					w.Close()
					return fmt.Errorf("replaying record %d: %w", rec.Seq, err)
				}
				// The record needs state the corrupt snapshot held; the
				// content is unrecoverable from this directory.
				s.stats.walError()
				abandoned = true
			} else {
				db = res.DB
				replayed++
			}
		}
		// Track the log position even past an abandonment, so the next
		// seeding appends after the old records instead of colliding
		// with them.
		seq = rec.Seq
	}
	w.Advance(seq)
	if !abandoned && (haveSnap || replayed > 0) {
		s.mu.Lock()
		old := s.colls[name]
		c := s.newCollection(name, 1, db.Fingerprint(), db)
		s.colls[name] = c
		s.mu.Unlock()
		s.unpin(old)
	}
	s.walMu.Lock()
	s.wals[name] = &collWAL{dir: dir, w: w, seq: seq,
		needSeed: abandoned || (!haveSnap && replayed == 0)}
	s.walMu.Unlock()
	if abandoned {
		s.stats.walReplay(0)
	} else {
		s.stats.walReplay(replayed)
	}
	return nil
}

// parseSnapshotFile validates and decodes one snapshot.json: CRC over
// the exact body bytes, then the body's own fingerprint check.
func parseSnapshotFile(raw []byte) (walSnapshot, error) {
	var file walSnapshotFile
	if err := json.Unmarshal(raw, &file); err != nil {
		return walSnapshot{}, fmt.Errorf("snapshot: %w", err)
	}
	if len(file.Snapshot) == 0 {
		return walSnapshot{}, fmt.Errorf("snapshot: missing body")
	}
	if sum := crc32.ChecksumIEEE(file.Snapshot); sum != file.CRC {
		return walSnapshot{}, fmt.Errorf("snapshot integrity: CRC %08x, recorded %08x", sum, file.CRC)
	}
	var snap walSnapshot
	if err := json.Unmarshal(file.Snapshot, &snap); err != nil {
		return walSnapshot{}, fmt.Errorf("snapshot body: %w", err)
	}
	if snap.DB == nil {
		return walSnapshot{}, fmt.Errorf("snapshot: missing database")
	}
	if fp := snap.DB.Fingerprint(); fp != snap.Fingerprint {
		return walSnapshot{}, fmt.Errorf("snapshot integrity: fingerprint %s, recorded %s", fp, snap.Fingerprint)
	}
	return snap, nil
}

// walHooks returns the configured fault-injection hooks (nil when
// durability is off or no hooks were set).
func (s *Server) walHooks() *relation.WALHooks {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.walCfg == nil {
		return nil
	}
	return s.walCfg.Hooks
}

// walFor returns the collection's durability state, creating the
// directory and log on first use. Returns (nil, nil) when durability is
// disabled. Caller holds writeMu.
func (s *Server) walFor(name string) (*collWAL, error) {
	s.walMu.Lock()
	cfg := s.walCfg
	cw := s.wals[name]
	s.walMu.Unlock()
	if cfg == nil {
		return nil, nil
	}
	if cw != nil {
		return cw, nil
	}
	dir := filepath.Join(cfg.Dir, url.PathEscape(name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w, _, err := relation.OpenWAL(filepath.Join(dir, "deltas.wal"), cfg.Hooks)
	if err != nil {
		return nil, err
	}
	cw = &collWAL{dir: dir, w: w, seq: w.NextSeq() - 1, needSeed: true}
	s.walMu.Lock()
	s.wals[name] = cw
	s.walMu.Unlock()
	return cw, nil
}

// persistSnapshot writes the collection's full state atomically
// (tmp + fsync + rename + directory fsync) and resets the log — both
// full-load persistence (SetCollection) and size-triggered compaction.
// The log is reset only after the snapshot is durably in place, so a
// crash between the two replays the (idempotent) records onto the
// snapshot harmlessly.
func (s *Server) persistSnapshot(cw *collWAL, fp string, db *relation.Database) error {
	seq := cw.w.NextSeq() - 1
	if cw.seq > seq {
		seq = cw.seq
	}
	if err := writeSnapshotFile(cw.dir, walSnapshot{Seq: seq, Fingerprint: fp, DB: db}); err != nil {
		return err
	}
	if err := cw.w.Reset(); err != nil {
		return err
	}
	cw.seq = seq
	cw.needSeed = false
	s.stats.walCompaction()
	return nil
}

// writeSnapshotFile writes snapshot.json atomically into dir, wrapping
// the body with its CRC (see walSnapshotFile).
func writeSnapshotFile(dir string, snap walSnapshot) error {
	body, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	raw, err := json.Marshal(walSnapshotFile{CRC: crc32.ChecksumIEEE(body), Snapshot: body})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "snapshot.json.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "snapshot.json")); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// walAppend makes one delta durable before its install: seeds the
// collection's snapshot if this log has never had one, then appends and
// fsyncs the record. An error means the delta MUST be rejected — the
// durability contract says an acknowledged delta survives a crash.
// Caller holds writeMu.
func (s *Server) walAppend(cw *collWAL, preDelta *collection, delta relation.Delta) error {
	if cw.needSeed {
		if err := writeSnapshotFile(cw.dir, walSnapshot{
			Seq:         cw.w.NextSeq() - 1,
			Fingerprint: preDelta.fingerprint,
			DB:          preDelta.db,
		}); err != nil {
			return err
		}
		cw.seq = cw.w.NextSeq() - 1
		cw.needSeed = false
	}
	seq, err := cw.w.Append(delta)
	if err != nil {
		return err
	}
	cw.seq = seq
	s.stats.walAppend()
	return nil
}

// maybeCompact snapshots and resets a log that outgrew CompactBytes.
// Failures degrade: the log keeps growing and the counter fires; the
// next append retries. Caller holds writeMu.
func (s *Server) maybeCompact(cw *collWAL, c *collection) {
	s.walMu.Lock()
	cfg := s.walCfg
	s.walMu.Unlock()
	if cfg == nil || cw.w.Size() <= cfg.CompactBytes {
		return
	}
	if err := s.persistSnapshot(cw, c.fingerprint, c.db); err != nil {
		s.stats.walError()
	}
}

// removeWAL drops a removed collection's durability state and files.
func (s *Server) removeWAL(name string) {
	s.walMu.Lock()
	cw := s.wals[name]
	delete(s.wals, name)
	s.walMu.Unlock()
	if cw == nil {
		return
	}
	if err := cw.w.Close(); err != nil {
		s.stats.walError()
	}
	if err := os.RemoveAll(cw.dir); err != nil {
		s.stats.walError()
	}
}

// Close releases the server's durable state: every collection log is
// flushed and closed. The server must not accept mutations afterwards;
// a fresh NewServer + OpenWAL over the same directory resumes exactly
// where this one stopped.
func (s *Server) Close() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.walMu.Lock()
	cfg := s.walCfg
	wals := s.wals
	s.wals = make(map[string]*collWAL)
	s.walMu.Unlock()
	var first error
	if cfg != nil {
		if err := s.cost.saveTo(filepath.Join(cfg.Dir, costModelFile)); err != nil {
			s.stats.walError()
			first = err
		}
	}
	for _, cw := range wals {
		if err := cw.w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WALStream is one replication catch-up reply (the WALStreamer
// extension, GET /v1/collections/{name}/wal?since=N). To apply it, a
// follower installs Snapshot when present (a full state transfer),
// then applies Records in order; it is then at Seq, and its content
// fingerprint must equal Fingerprint — the consistency check the
// cluster router enforces on every sync. A reply with neither snapshot
// nor records means the follower was already current.
type WALStream struct {
	Collection  string               `json:"collection"`
	Version     uint64               `json:"version"`
	Fingerprint string               `json:"fingerprint"`
	Seq         uint64               `json:"seq"`
	Snapshot    *relation.Database   `json:"snapshot,omitempty"`
	Records     []relation.WALRecord `json:"records,omitempty"`
}

// costModelFile is the cost model's persistence file, beside the
// per-collection WAL directories.
const costModelFile = "cost.json"

// WALStream hands out one collection's replication stream: the delta
// log records past since when the log still covers them, or a full
// snapshot of the live database when they are gone (compacted away,
// follower ahead of the primary after a reset, durability off). The
// reply describes the exact state applying it reaches — Version and the
// content Fingerprint of the live collection, and the Seq a follower
// should resume from — so the PR 5 fingerprint doubles as a free
// replica-consistency check: a follower that applies the stream and
// computes a different fingerprint has diverged, full stop.
//
// The read runs under writeMu, the same lock every append and
// compaction holds, so the log suffix and the live state are one
// consistent cut; the stream is a bounded read (the compaction
// threshold caps log size), not a tail — followers poll.
func (s *Server) WALStream(_ context.Context, name string, since uint64) (*WALStream, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.RLock()
	c := s.colls[name]
	s.mu.RUnlock()
	if c == nil {
		return nil, &NotFoundError{What: "collection", Name: name}
	}
	out := &WALStream{Collection: name, Version: c.version, Fingerprint: c.fingerprint}
	s.walMu.Lock()
	cw := s.wals[name]
	s.walMu.Unlock()
	if cw == nil {
		// Durability off: snapshot-only stream at seq 0. Followers
		// re-transfer full state whenever fingerprints diverge.
		out.Snapshot = c.db
		return out, nil
	}
	out.Seq = cw.seq
	if since == cw.seq {
		return out, nil // up to date: header only
	}
	if since < cw.seq {
		recs, err := relation.ReadWALSince(filepath.Join(cw.dir, "deltas.wal"), since)
		if err == nil && streamCovers(recs, since, cw.seq) {
			out.Records = recs
			return out, nil
		}
	}
	out.Snapshot = c.db
	return out, nil
}

// streamCovers reports whether recs is the gapless suffix (since, upto]:
// seqs are dense within one log generation, so coverage is exactly
// "starts right after since, ends at upto".
func streamCovers(recs []relation.WALRecord, since, upto uint64) bool {
	return len(recs) > 0 && recs[0].Seq == since+1 && recs[len(recs)-1].Seq == upto
}

// walTotals sums live log sizes and fsync rounds for Stats.
func (s *Server) walTotals() (colls int, bytes int64, syncs uint64) {
	s.walMu.Lock()
	wals := make([]*collWAL, 0, len(s.wals))
	for _, cw := range s.wals {
		wals = append(wals, cw)
	}
	s.walMu.Unlock()
	for _, cw := range wals {
		bytes += cw.w.Size()
		syncs += cw.w.Syncs()
	}
	return len(wals), bytes, syncs
}
