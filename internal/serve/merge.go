package serve

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// MergeShardResults merges the per-shard partial Results of one logical
// request — exactly one partial from each shard of a full partition,
// any order — into the Result a single whole-space solve of the same
// request returns. The merge is wire-level: packages arrive as JSON
// tuples, and core.NewPackage rebuilds their canonical keys from those
// tuples alone, so the coordinator reproduces the engine's deterministic
// top-k order (descending rating, ties by ascending key —
// core.WorseScoredKeyed) without any collection data. Ratings survive
// the hop bitwise: the engine's incremental scores are bitwise-equal to
// Val.Eval by the stepper contract, and Go's JSON round-trips float64
// exactly — which is what makes the merged Result byte-identical to the
// single-node answer, the property the fleet tests pin.
//
// k is the request's Spec.K. Shapes per op (mirroring solveOp):
// topk returns the merged top-k selection (OK false, no packages, when
// fewer than k exist globally); maxbound returns the minimum rating of
// that selection; count sums the shard counts; exists compares the
// summed capped counts against k. The returned Result is a fresh value
// with Partial unset.
func MergeShardResults(op string, k int, parts []*Result) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("serve: no shard partials to merge")
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("serve: shard partial %d is nil", i)
		}
		if !p.Partial {
			return nil, fmt.Errorf("serve: shard result %d is not a partial", i)
		}
		if p.Op != op {
			return nil, fmt.Errorf("serve: shard partial %d is op %q, want %q", i, p.Op, op)
		}
	}
	res := &Result{Op: op}
	switch op {
	case OpTopK, OpMaxBound:
		merged, ok, err := mergeScored(k, parts)
		if err != nil {
			return nil, err
		}
		res.OK = ok
		if !ok {
			return res, nil
		}
		if op == OpTopK {
			res.Packages = merged
			return res, nil
		}
		bound := math.Inf(1)
		for _, pr := range merged {
			bound = math.Min(bound, pr.Val)
		}
		res.Bound = &bound
	case OpCount:
		var total int64
		for i, p := range parts {
			if p.Count == nil {
				return nil, fmt.Errorf("serve: count partial %d carries no count", i)
			}
			total += *p.Count
		}
		res.OK = true
		res.Count = &total
	case OpExists:
		capped := make([]int64, len(parts))
		for i, p := range parts {
			if p.Count == nil {
				return nil, fmt.Errorf("serve: exists partial %d carries no capped count", i)
			}
			capped[i] = *p.Count
		}
		res.OK = core.MergeExistsPartials(k, capped)
	default:
		return nil, fmt.Errorf("serve: op %q cannot be merged from shards", op)
	}
	return res, nil
}

// mergeScored concatenates the shard partials' scored packages, orders
// them under the engine's total order, and takes the top k. The wire
// PackageResult values are kept verbatim — Val/Cost already bitwise
// match the single-node serialization — and the canonical keys needed
// for tie-breaking are rebuilt from the tuples.
func mergeScored(k int, parts []*Result) ([]PackageResult, bool, error) {
	type keyed struct {
		pr  PackageResult
		key string
	}
	var all []keyed
	for i, p := range parts {
		for j, pr := range p.Packages {
			pkgs, err := decodeSelection([][][]any{pr.Tuples})
			if err != nil {
				return nil, false, fmt.Errorf("serve: shard partial %d package %d: %w", i, j, err)
			}
			all = append(all, keyed{pr: pr, key: pkgs[0].Key()})
		}
	}
	if len(all) < k {
		return nil, false, nil
	}
	// Best-first under the engine's strict total order: the merged
	// prefix is unique however the partials arrived.
	sort.Slice(all, func(i, j int) bool {
		return core.WorseScoredKeyed(all[j].pr.Val, all[j].key, all[i].pr.Val, all[i].key)
	})
	out := make([]PackageResult, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].pr
	}
	return out, true, nil
}
