package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/relation"
	"repro/internal/relax"
	"repro/internal/spec"
)

// poiSpec reads only the poi relation; flightSpec reads only flight. The
// two give every test a mutated group and an untouched group.
func poiSpec(budget float64) spec.ProblemSpec {
	return spec.ProblemSpec{
		Query: `RQ(name, type, ticket, time) :-
			poi(name, city, type, ticket, time), city = "nyc".`,
		Cost:       spec.AggSpec{Kind: "sum", Attr: 3, Monotone: true},
		Val:        spec.AggSpec{Kind: "negsum", Attr: 2},
		Budget:     budget,
		K:          2,
		MaxPkgSize: 2,
		Bound:      -100,
	}
}

func flightSpec(budget float64) spec.ProblemSpec {
	return spec.ProblemSpec{
		Query:      `RQ(f, price, dur) :- flight(f, "edi", city, d, price, dur).`,
		Cost:       spec.AggSpec{Kind: "sum", Attr: 2, Monotone: true},
		Val:        spec.AggSpec{Kind: "negsum", Attr: 1},
		Budget:     budget,
		K:          1,
		MaxPkgSize: 2,
		Bound:      -1000,
	}
}

// flightDelta upserts one synthetic flight tuple (i keeps them distinct).
func flightDelta(i int) relation.Delta {
	return relation.Delta{Upserts: []relation.RelationDelta{{
		Name:   "flight",
		Tuples: [][]any{{90000 + i, "edi", "nyc", 1, 500, 500}},
	}}}
}

func poiDelta(i int) relation.Delta {
	return relation.Delta{Upserts: []relation.RelationDelta{{
		Name:   "poi",
		Tuples: [][]any{{fmt.Sprintf("churn%03d", i), "nyc", "museum", 7, 45}},
	}}}
}

// The acceptance-criteria core: after a 1-item delta to a warm collection,
// an unaffected cached request is still a cache hit (its content-addressed
// key did not move), while requests over the mutated relation re-solve.
func TestDeltaKeepsUnaffectedCacheEntries(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	poiReq := Request{Collection: "travel", Op: OpCount, Spec: poiSpec(240)}
	flightReq := Request{Collection: "travel", Op: OpCount, Spec: flightSpec(2000)}
	poiCold := mustSolve(t, s, poiReq)
	flightCold := mustSolve(t, s, flightReq)
	if s.cache.len() != 2 {
		t.Fatalf("cache entries %d, want 2", s.cache.len())
	}

	info, err := s.MutateCollection("travel", flightDelta(0))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.Upserted != 1 || len(info.Mutated) != 1 || info.Mutated[0] != "flight" {
		t.Fatalf("delta info: %+v", info)
	}
	if s.cache.len() != 1 {
		t.Fatalf("after delta: cache entries %d, want 1 (flight entry purged, poi entry kept)", s.cache.len())
	}

	poiWarm := mustSolve(t, s, poiReq)
	if !poiWarm.Cached {
		t.Fatal("unaffected request missed the cache after an unrelated delta")
	}
	if poiWarm.Version != 2 {
		t.Fatalf("cached response reports version %d, want 2", poiWarm.Version)
	}
	if *poiWarm.Count != *poiCold.Count {
		t.Fatalf("cached count changed: %d != %d", *poiWarm.Count, *poiCold.Count)
	}
	flightWarm := mustSolve(t, s, flightReq)
	if flightWarm.Cached {
		t.Fatal("request over the mutated relation served a stale cached result")
	}
	if *flightWarm.Count == *flightCold.Count {
		t.Fatal("flight count unchanged by an upserted in-budget flight; delta not visible")
	}
}

// The other acceptance half: prepared problems (warmed candidates + bound
// tables) survive deltas to unrelated relations — EnginePrepares grows only
// for the mutated group. NoCache requests force engine runs so the shared
// problem, not the result cache, is what's exercised.
func TestDeltaCarriesPreparedProblemsOver(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	poiReq := Request{Collection: "travel", Op: OpCount, Spec: poiSpec(240), NoCache: true}
	flightReq := Request{Collection: "travel", Op: OpCount, Spec: flightSpec(2000), NoCache: true}
	mustSolve(t, s, poiReq)
	mustSolve(t, s, flightReq)
	if got := s.Stats().EnginePrepares; got != 2 {
		t.Fatalf("cold prepares = %d, want 2", got)
	}
	// Re-solving warm must not prepare again: the problem is shared across
	// requests, not just within a batch.
	mustSolve(t, s, poiReq)
	if got := s.Stats().EnginePrepares; got != 2 {
		t.Fatalf("warm re-solve re-prepared: prepares = %d, want 2", got)
	}

	flightBefore := mustSolve(t, s, flightReq)
	if _, err := s.MutateCollection("travel", flightDelta(0)); err != nil {
		t.Fatal(err)
	}
	s.mu.RLock()
	carried := s.colls["travel"].probs.len()
	s.mu.RUnlock()
	if carried != 2 {
		t.Fatalf("new version carried %d prepared problems, want 2 (poi carried, flight advanced)", carried)
	}
	// Unmutated group: carried over, no rebuild.
	mustSolve(t, s, poiReq)
	if got := s.Stats().EnginePrepares; got != 2 {
		t.Fatalf("delta to flight re-prepared the poi problem: prepares = %d, want 2", got)
	}
	// Mutated group: advanced incrementally, not re-prepared — and the
	// advanced problem must see the delta (a stale candidate set would keep
	// the count unchanged; the upserted flight is in budget and adds one).
	flightAfter := mustSolve(t, s, flightReq)
	if got := s.Stats().EnginePrepares; got != 2 {
		t.Fatalf("flight problem re-prepared instead of advanced: prepares = %d, want 2", got)
	}
	if *flightAfter.Count == *flightBefore.Count {
		t.Fatal("advanced flight problem served stale candidates: count unchanged")
	}
}

// A content no-op delta is fully idempotent: same version, nothing purged,
// no delta counted.
func TestDeltaNoopIsIdempotent(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	if _, err := s.MutateCollection("travel", flightDelta(0)); err != nil {
		t.Fatal(err)
	}
	mustSolve(t, s, Request{Collection: "travel", Op: OpCount, Spec: flightSpec(2000)})
	cached := s.cache.len()
	info, err := s.MutateCollection("travel", flightDelta(0)) // same tuple again
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || len(info.Mutated) != 0 || info.Upserted != 0 {
		t.Fatalf("no-op delta not idempotent: %+v", info)
	}
	if s.cache.len() != cached {
		t.Fatal("no-op delta purged cache entries")
	}
	st := s.Stats()
	if st.Deltas != 1 || st.DeltaItems != 1 {
		t.Fatalf("deltas=%d deltaItems=%d, want 1/1 (no-op not counted)", st.Deltas, st.DeltaItems)
	}
	if _, err := s.MutateCollection("nope", flightDelta(0)); !errors.As(err, new(*NotFoundError)) {
		t.Fatalf("unknown collection: got %v, want NotFoundError", err)
	}
	if _, err := s.MutateCollection("travel", relation.Delta{
		Deletes: []relation.RelationDelta{{Name: "ghost", Tuples: [][]any{{1}}}},
	}); !errors.As(err, new(*RequestError)) {
		t.Fatalf("bad delta: got %v, want RequestError", err)
	}
}

// FO specs depend on the whole database (active-domain semantics), so any
// delta must invalidate their entries — even over relations the formula
// never mentions.
func TestDeltaInvalidatesFOEntries(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	fo := spec.ProblemSpec{
		Query:      `RQ(name) := exists pt, pk, pm (poi(name, "nyc", pt, pk, pm)).`,
		Cost:       spec.AggSpec{Kind: "count", Monotone: true},
		Val:        spec.AggSpec{Kind: "count"},
		Budget:     2,
		K:          1,
		MaxPkgSize: 1,
	}
	req := Request{Collection: "travel", Op: OpCount, Spec: fo}
	mustSolve(t, s, req)
	if !mustSolve(t, s, req).Cached {
		t.Fatal("FO request did not cache at all")
	}
	// The delta touches flight; the FO query mentions only poi — but its
	// active domain includes flight values, so the entry must die.
	if _, err := s.MutateCollection("travel", flightDelta(0)); err != nil {
		t.Fatal(err)
	}
	if mustSolve(t, s, req).Cached {
		t.Fatal("whole-database-dependent entry survived a delta")
	}
}

// Relax answers over a CQ discretize their gap levels from the columns the
// selected points touch (relax.LevelDeps) — here a poi column — so a delta
// to flight, which no relax point reads, must leave the entry valid, while
// a delta to poi must still kill it.
func TestDeltaKeepsPreciseRelaxEntries(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	ps := poiSpec(240)
	ps.Query = `RQ(name, type, ticket, time) :-
		poi(name, city, type, ticket, time), city = "nyc", type = "museum".`
	for i, op := range []string{OpRelax, OpRelaxPlan} {
		req := Request{Collection: "travel", Op: op, Spec: ps,
			Relax: &spec.RelaxSpec{
				Points:    []spec.RelaxPointSpec{{Index: 1, Metric: spec.MetricSpec{Kind: "discrete"}}},
				Bound:     -40,
				GapBudget: 1,
			}}
		mustSolve(t, s, req)
		if !mustSolve(t, s, req).Cached {
			t.Fatalf("%s request did not cache at all", op)
		}
		if _, err := s.MutateCollection("travel", flightDelta(i)); err != nil {
			t.Fatal(err)
		}
		if !mustSolve(t, s, req).Cached {
			t.Fatalf("%s entry died on a flight delta; its points read only poi columns", op)
		}
		if _, err := s.MutateCollection("travel", poiDelta(900+i)); err != nil {
			t.Fatal(err)
		}
		if mustSolve(t, s, req).Cached {
			t.Fatalf("%s entry survived a poi delta; its gap levels read poi columns", op)
		}
	}
}

// SnapshotsLive tracks superseded versions pinned by in-flight solves.
func TestSnapshotsLiveGauge(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	if got := s.Stats().SnapshotsLive; got != 1 {
		t.Fatalf("snapshotsLive = %d, want 1", got)
	}
	// Hold a pin the way Solve does while a delta lands.
	coll, err := s.snapshot("travel")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MutateCollection("travel", flightDelta(0)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().SnapshotsLive; got != 2 {
		t.Fatalf("snapshotsLive = %d, want 2 (old version still pinned)", got)
	}
	s.unpin(coll)
	if got := s.Stats().SnapshotsLive; got != 1 {
		t.Fatalf("snapshotsLive = %d, want 1 after release", got)
	}
	if !s.RemoveCollection("travel") {
		t.Fatal("remove failed")
	}
	if got := s.Stats().SnapshotsLive; got != 0 {
		t.Fatalf("snapshotsLive = %d, want 0 after removal", got)
	}
}

// The mutate-while-solving satellite: writers stream deltas while readers
// run topk/count/relax, and every response must match a library solve
// against the database state of the snapshot version it reports. Run with
// -race (CI does).
func TestConcurrentMutateWhileSolving(t *testing.T) {
	base := experiments.WorkloadDB(24)
	s := NewServer(Options{MaxConcurrent: 8})
	info := s.SetCollection("live", base)

	// versions mirrors the server's database content per version. The
	// writer stores the mirror before installing the version, so readers
	// can never observe a version without its mirror.
	var versions sync.Map
	versions.Store(info.Version, base)

	relaxPS := poiSpec(240)
	relaxPS.Query = `RQ(name, type, ticket, time) :-
		poi(name, city, type, ticket, time), city = "nyc", type = "museum".`
	relaxReq := Request{Collection: "live", Op: OpRelax, Spec: relaxPS,
		Relax: &spec.RelaxSpec{
			Points:    []spec.RelaxPointSpec{{Index: 1, Metric: spec.MetricSpec{Kind: "discrete"}}},
			Bound:     -40,
			GapBudget: 1,
		}}
	requests := []Request{
		{Collection: "live", Op: OpTopK, Spec: poiSpec(240)},
		{Collection: "live", Op: OpCount, Spec: poiSpec(300)},
		{Collection: "live", Op: OpTopK, Spec: flightSpec(2000)},
		relaxReq,
	}

	const deltas = 10
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the writer
		defer wg.Done()
		cur := base
		version := info.Version
		for i := 0; i < deltas; i++ {
			d := flightDelta(i)
			if i%2 == 1 {
				d = poiDelta(i)
			}
			res, err := cur.ApplyDelta(d)
			if err != nil {
				t.Errorf("mirror delta: %v", err)
				return
			}
			cur, version = res.DB, version+1
			versions.Store(version, cur)
			dinfo, err := s.MutateCollection("live", d)
			if err != nil {
				t.Errorf("MutateCollection: %v", err)
				return
			}
			if dinfo.Version != version {
				t.Errorf("installed version %d, want %d", dinfo.Version, version)
				return
			}
		}
	}()

	verify := func(req Request, resp *Response) error {
		dbAny, ok := versions.Load(resp.Version)
		if !ok {
			return fmt.Errorf("response reports unknown version %d", resp.Version)
		}
		prob, err := req.Spec.Build(dbAny.(*relation.Database))
		if err != nil {
			return err
		}
		switch req.Op {
		case OpCount:
			want, err := prob.CountValid(req.Spec.Bound)
			if err != nil {
				return err
			}
			if *resp.Count != want {
				return fmt.Errorf("count %d, library says %d at version %d", *resp.Count, want, resp.Version)
			}
		case OpTopK:
			sel, ok, err := prob.FindTopK()
			if err != nil {
				return err
			}
			if ok != resp.OK {
				return fmt.Errorf("topk ok=%v, library says %v at version %d", resp.OK, ok, resp.Version)
			}
			if !ok {
				return nil
			}
			if len(sel) != len(resp.Packages) {
				return fmt.Errorf("topk size %d, library says %d", len(resp.Packages), len(sel))
			}
			// Selections may differ in ties; ratings may not.
			got := make([]float64, len(resp.Packages))
			want := make([]float64, len(sel))
			for i := range sel {
				got[i] = resp.Packages[i].Val
				want[i] = prob.Val.Eval(sel[i])
			}
			sort.Float64s(got)
			sort.Float64s(want)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					return fmt.Errorf("topk ratings %v, library says %v at version %d", got, want, resp.Version)
				}
			}
		case OpRelax:
			inst, err := req.Relax.Build(prob)
			if err != nil {
				return err
			}
			rel, ok, err := relax.Decide(inst)
			if err != nil {
				return err
			}
			if ok != resp.OK {
				return fmt.Errorf("relax ok=%v, library says %v at version %d", resp.OK, ok, resp.Version)
			}
			if ok && math.Abs(*resp.Gap-rel.Gap) > 1e-9 {
				return fmt.Errorf("relax gap %g, library says %g at version %d", *resp.Gap, rel.Gap, resp.Version)
			}
		}
		return nil
	}

	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req := requests[(r+i)%len(requests)]
				req.NoCache = i%3 == 0 // mix cached and engine-run paths
				resp, err := s.Solve(context.Background(), req)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if err := verify(req, resp); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

// The /v1/stats tearing fix: a scrape taken mid-traffic is one consistent
// cut — consulted lookups can never outnumber admitted work, and the
// reported hit rate must be exactly the ratio of the captured counters.
func TestStatsSnapshotConsistencyUnderLoad(t *testing.T) {
	s := travelServer(t, Options{MaxConcurrent: 4}, 30, 24)
	reqs := []Request{
		{Collection: "travel", Op: OpCount, Spec: poiSpec(240)},
		{Collection: "travel", Op: OpCount, Spec: poiSpec(300)},
		{Collection: "travel", Op: OpCount, Spec: flightSpec(2000)},
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = s.Solve(context.Background(), reqs[(w+i)%len(reqs)])
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		st := s.Stats()
		looked := st.CacheHits + st.CacheMisses
		if looked > st.Requests+st.BatchItems {
			t.Fatalf("torn snapshot: %d consulted lookups > %d admitted requests", looked, st.Requests+st.BatchItems)
		}
		if looked > 0 && st.HitRate != float64(st.CacheHits)/float64(looked) {
			t.Fatalf("hit rate %g inconsistent with captured hits=%d misses=%d", st.HitRate, st.CacheHits, st.CacheMisses)
		}
		if st.InFlight < 0 {
			t.Fatalf("negative inFlight %d", st.InFlight)
		}
	}
	close(stop)
	wg.Wait()
}
