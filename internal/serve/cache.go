package serve

import (
	"container/list"
	"sync"
)

// lruMap is the bounded map + intrusive-list LRU core under one mutex,
// shared by the result cache and the per-collection prepared-problem
// cache: get refreshes recency, inserts evict from the cold end past
// capacity, removeIf supports targeted purges. The optional
// onInsert/onRemove hooks observe every entry entering or leaving the map
// — including evictions and flushes — and run under the lock, so a
// derived index maintained by them can never drift from the map contents.
type lruMap[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	onInsert func(key string, v V)
	onRemove func(key string, v V)
}

type lruSlot[V any] struct {
	key string
	val V
}

func newLRUMap[V any](capacity int) *lruMap[V] {
	return &lruMap[V]{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the value for key, refreshing its recency.
func (c *lruMap[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruSlot[V]).val, true
}

// peek returns the value for key without touching its recency.
func (c *lruMap[V]) peek(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	return el.Value.(*lruSlot[V]).val, true
}

// set stores v under key (updating in place if present), evicting from the
// cold end past capacity.
func (c *lruMap[V]) set(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		s := el.Value.(*lruSlot[V])
		if c.onRemove != nil {
			c.onRemove(key, s.val)
		}
		s.val = v
		if c.onInsert != nil {
			c.onInsert(key, v)
		}
		c.ll.MoveToFront(el)
		return
	}
	c.insert(key, v)
}

// getOrCreate returns the value for key, creating it with mk on a miss. mk
// runs under the lock and must not block.
func (c *lruMap[V]) getOrCreate(key string, mk func() V) V {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruSlot[V]).val
	}
	v := mk()
	c.insert(key, v)
	return v
}

// insert adds a fresh entry; the caller holds the lock.
func (c *lruMap[V]) insert(key string, v V) {
	c.items[key] = c.ll.PushFront(&lruSlot[V]{key: key, val: v})
	if c.onInsert != nil {
		c.onInsert(key, v)
	}
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		s := oldest.Value.(*lruSlot[V])
		delete(c.items, s.key)
		if c.onRemove != nil {
			c.onRemove(s.key, s.val)
		}
	}
}

// remove drops the entry for key, reporting whether it existed.
func (c *lruMap[V]) remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, key)
	if c.onRemove != nil {
		s := el.Value.(*lruSlot[V])
		c.onRemove(s.key, s.val)
	}
	return true
}

// rename moves the entry at oldKey to newKey, preserving its recency, with
// upd mapping the stored value to the one stored under the new key. An
// entry already sitting at newKey is displaced. Reports false (and changes
// nothing) when oldKey is absent.
func (c *lruMap[V]) rename(oldKey, newKey string, upd func(V) V) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[oldKey]
	if !ok {
		return false
	}
	if oldKey == newKey {
		s := el.Value.(*lruSlot[V])
		if c.onRemove != nil {
			c.onRemove(oldKey, s.val)
		}
		s.val = upd(s.val)
		if c.onInsert != nil {
			c.onInsert(newKey, s.val)
		}
		return true
	}
	if other, ok := c.items[newKey]; ok {
		c.ll.Remove(other)
		delete(c.items, newKey)
		if c.onRemove != nil {
			s := other.Value.(*lruSlot[V])
			c.onRemove(s.key, s.val)
		}
	}
	s := el.Value.(*lruSlot[V])
	if c.onRemove != nil {
		c.onRemove(oldKey, s.val)
	}
	s.key = newKey
	s.val = upd(s.val)
	delete(c.items, oldKey)
	c.items[newKey] = el
	if c.onInsert != nil {
		c.onInsert(newKey, s.val)
	}
	return true
}

// removeIf drops every entry the predicate matches.
func (c *lruMap[V]) removeIf(pred func(V) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if s := el.Value.(*lruSlot[V]); pred(s.val) {
			c.ll.Remove(el)
			delete(c.items, s.key)
			if c.onRemove != nil {
				c.onRemove(s.key, s.val)
			}
		}
		el = next
	}
}

// entries snapshots the contents oldest-first (so re-inserting in order
// preserves recency).
func (c *lruMap[V]) entries() []lruSlot[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]lruSlot[V], 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, *el.Value.(*lruSlot[V]))
	}
	return out
}

// flush drops everything.
func (c *lruMap[V]) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.onRemove != nil {
		for el := c.ll.Front(); el != nil; el = el.Next() {
			s := el.Value.(*lruSlot[V])
			c.onRemove(s.key, s.val)
		}
	}
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

func (c *lruMap[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// lruCache is the bounded result cache. Entries remember their collection
// and relation dependencies, mirrored into a collection→relation→keys
// reverse index maintained by the lruMap hooks, so a delta can find its
// dependent entries in O(dependents) instead of scanning the whole cache
// (content-addressed keys alone would only let stale entries age out,
// holding cache slots hostage in the meantime). Stored Results are shared
// across readers and must be treated as immutable.
type lruCache struct {
	*lruMap[*lruEntry]

	// byRel[coll][rel] holds the keys of coll's entries whose dependency
	// list names rel; byAll[coll] holds the keys of its depsAll entries.
	// Guarded by the embedded lruMap's mutex (the hooks run under it).
	byRel map[string]map[string]map[string]struct{}
	byAll map[string]map[string]struct{}
}

type lruEntry struct {
	coll string
	// deps / depsAll mirror the request's relation dependencies, so a
	// collection delta can repair or purge exactly the entries it
	// invalidated; unaffected entries keep their content-addressed keys
	// and stay reachable.
	deps    []string
	depsAll bool
	// keyRest is the request half of the cache key — everything except the
	// collection name and relation fingerprint — kept so a repair can
	// reseal the entry under the post-delta fingerprint without the
	// original request in hand.
	keyRest string
	// repair, when present, carries the solve-time metadata the delta
	// repair pipeline classifies against; nil means the entry can only be
	// resolved (purged) when its relations mutate.
	repair *repairInfo
	res    *Result
}

func newLRU(capacity int) *lruCache {
	c := &lruCache{
		lruMap: newLRUMap[*lruEntry](capacity),
		byRel:  make(map[string]map[string]map[string]struct{}),
		byAll:  make(map[string]map[string]struct{}),
	}
	c.lruMap.onInsert = c.indexAdd
	c.lruMap.onRemove = c.indexDel
	return c
}

func (c *lruCache) indexAdd(key string, e *lruEntry) {
	if e.depsAll {
		set := c.byAll[e.coll]
		if set == nil {
			set = make(map[string]struct{})
			c.byAll[e.coll] = set
		}
		set[key] = struct{}{}
		return
	}
	rels := c.byRel[e.coll]
	if rels == nil {
		rels = make(map[string]map[string]struct{})
		c.byRel[e.coll] = rels
	}
	for _, d := range e.deps {
		set := rels[d]
		if set == nil {
			set = make(map[string]struct{})
			rels[d] = set
		}
		set[key] = struct{}{}
	}
}

func (c *lruCache) indexDel(key string, e *lruEntry) {
	if e.depsAll {
		if set := c.byAll[e.coll]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(c.byAll, e.coll)
			}
		}
		return
	}
	rels := c.byRel[e.coll]
	if rels == nil {
		return
	}
	for _, d := range e.deps {
		if set := rels[d]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(rels, d)
			}
		}
	}
	if len(rels) == 0 {
		delete(c.byRel, e.coll)
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *lruCache) get(key string) (*Result, bool) {
	e, ok := c.lruMap.get(key)
	if !ok {
		return nil, false
	}
	return e.res, true
}

// put stores the entry under key.
func (c *lruCache) put(key string, e *lruEntry) {
	c.set(key, e)
}

// purge drops every entry belonging to the named collection.
func (c *lruCache) purge(coll string) {
	c.removeIf(func(e *lruEntry) bool { return e.coll == coll })
}

// dependents returns, via the reverse index, the keys of the named
// collection's entries whose dependency set intersects the mutated
// relations (including whole-database entries) — O(dependent entries),
// not O(cache).
func (c *lruCache) dependents(coll string, mutated map[string]struct{}) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[string]struct{})
	for key := range c.byAll[coll] {
		seen[key] = struct{}{}
	}
	if rels := c.byRel[coll]; rels != nil {
		for rel := range mutated {
			for key := range rels[rel] {
				seen[key] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for key := range seen {
		out = append(out, key)
	}
	return out
}

// purgeDeps drops the named collection's entries whose dependency set
// intersects the mutated relations (or that depend on the whole database).
// Entries over untouched relations survive — the point of delta-aware
// caching.
func (c *lruCache) purgeDeps(coll string, mutated map[string]struct{}) {
	for _, key := range c.dependents(coll, mutated) {
		c.remove(key)
	}
}
