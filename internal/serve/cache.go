package serve

import (
	"container/list"
	"sync"
)

// lruMap is the bounded map + intrusive-list LRU core under one mutex,
// shared by the result cache and the per-collection prepared-problem
// cache: get refreshes recency, inserts evict from the cold end past
// capacity, removeIf supports targeted purges.
type lruMap[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruSlot[V any] struct {
	key string
	val V
}

func newLRUMap[V any](capacity int) *lruMap[V] {
	return &lruMap[V]{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the value for key, refreshing its recency.
func (c *lruMap[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruSlot[V]).val, true
}

// set stores v under key (updating in place if present), evicting from the
// cold end past capacity.
func (c *lruMap[V]) set(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruSlot[V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.insert(key, v)
}

// getOrCreate returns the value for key, creating it with mk on a miss. mk
// runs under the lock and must not block.
func (c *lruMap[V]) getOrCreate(key string, mk func() V) V {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruSlot[V]).val
	}
	v := mk()
	c.insert(key, v)
	return v
}

// insert adds a fresh entry; the caller holds the lock.
func (c *lruMap[V]) insert(key string, v V) {
	c.items[key] = c.ll.PushFront(&lruSlot[V]{key: key, val: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruSlot[V]).key)
	}
}

// removeIf drops every entry the predicate matches.
func (c *lruMap[V]) removeIf(pred func(V) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if s := el.Value.(*lruSlot[V]); pred(s.val) {
			c.ll.Remove(el)
			delete(c.items, s.key)
		}
		el = next
	}
}

// entries snapshots the contents oldest-first (so re-inserting in order
// preserves recency).
func (c *lruMap[V]) entries() []lruSlot[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]lruSlot[V], 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, *el.Value.(*lruSlot[V]))
	}
	return out
}

// flush drops everything.
func (c *lruMap[V]) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

func (c *lruMap[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// lruCache is the bounded result cache. Entries remember their collection
// and relation dependencies so a swap or delta can purge exactly the
// results it invalidated (content-addressed keys alone would only let
// stale entries age out, holding cache slots hostage in the meantime).
// Stored Results are shared across readers and must be treated as
// immutable.
type lruCache struct {
	*lruMap[*lruEntry]
}

type lruEntry struct {
	coll string
	// deps / depsAll mirror the request's relation dependencies, so a
	// collection delta can purge exactly the entries it invalidated
	// (purgeDeps); unaffected entries keep their content-addressed keys
	// and stay reachable.
	deps    []string
	depsAll bool
	res     *Result
}

func newLRU(capacity int) *lruCache {
	return &lruCache{lruMap: newLRUMap[*lruEntry](capacity)}
}

// get returns the cached result for key, refreshing its recency.
func (c *lruCache) get(key string) (*Result, bool) {
	e, ok := c.lruMap.get(key)
	if !ok {
		return nil, false
	}
	return e.res, true
}

// put stores res under key.
func (c *lruCache) put(key, coll string, deps []string, depsAll bool, res *Result) {
	c.set(key, &lruEntry{coll: coll, deps: deps, depsAll: depsAll, res: res})
}

// purge drops every entry belonging to the named collection.
func (c *lruCache) purge(coll string) {
	c.removeIf(func(e *lruEntry) bool { return e.coll == coll })
}

// purgeDeps drops the named collection's entries whose dependency set
// intersects the mutated relations (or that depend on the whole database).
// Entries over untouched relations survive — the point of delta-aware
// caching.
func (c *lruCache) purgeDeps(coll string, mutated map[string]struct{}) {
	c.removeIf(func(e *lruEntry) bool { return e.coll == coll && dependsOn(e, mutated) })
}

func dependsOn(e *lruEntry, mutated map[string]struct{}) bool {
	if e.depsAll {
		return true
	}
	for _, d := range e.deps {
		if _, ok := mutated[d]; ok {
			return true
		}
	}
	return false
}
