package serve

import (
	"container/list"
	"sync"
)

// lruCache is the bounded result cache: a classic map + intrusive-list LRU
// under one mutex. Entries remember their collection so a swap can purge
// exactly the results it invalidated (version-tagged keys alone would only
// let stale entries age out, holding cache slots hostage in the meantime).
// Stored Results are shared across readers and must be treated as
// immutable.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	coll string
	res  *Result
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached result for key, refreshing its recency.
func (c *lruCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// put stores res under key, evicting from the cold end past capacity.
func (c *lruCache) put(key, coll string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, coll: coll, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// purge drops every entry belonging to the named collection.
func (c *lruCache) purge(coll string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*lruEntry); e.coll == coll {
			c.ll.Remove(el)
			delete(c.items, e.key)
		}
		el = next
	}
}

// flush drops everything.
func (c *lruCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
