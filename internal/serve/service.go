package serve

import (
	"context"

	"repro/internal/relation"
)

// Service is the transport-agnostic face of a package-recommendation
// service: everything docs/serving.md documents over HTTP, as one Go
// interface. Three implementations exist and are deliberately
// interchangeable — the in-process daemon ((*Server).Service()), the
// HTTP client (*Client), and the cluster router (internal/cluster.
// *Router) — so a caller, a test, or the router's own fan-out path can
// swap a local server for a remote fleet without changing a line.
// NewHandler turns any Service back into the HTTP front end, which is
// how both pkgrecd and pkgrecr serve: the daemon wraps its local
// service, the router wraps its fan-out one, and the wire format is
// identical by construction.
//
// Error contract: implementations return the typed errors of the wire
// taxonomy (errors.go) — *RequestError, *NotFoundError, *OverloadError,
// *UnavailableError, context errors — or an *APIError carrying the same
// code over a transport hop. ErrorCode/RetryableError classify either
// form, so callers never care how many hops an error crossed.
type Service interface {
	// Solve answers one request (POST /v1/solve).
	Solve(ctx context.Context, req Request) (*Response, error)
	// SolveBatch answers a batch over one collection (POST /v1/batch).
	SolveBatch(ctx context.Context, breq BatchRequest) (*BatchResponse, error)
	// PutCollection loads or swaps a collection (PUT /v1/collections/{name}).
	PutCollection(ctx context.Context, name string, db *relation.Database) (CollectionInfo, error)
	// ApplyDelta mutates a collection in place (POST /v1/collections/{name}/delta).
	ApplyDelta(ctx context.Context, name string, delta relation.Delta) (DeltaInfo, error)
	// GetCollection describes one collection (GET /v1/collections/{name}).
	GetCollection(ctx context.Context, name string) (CollectionInfo, error)
	// RemoveCollection drops a collection (DELETE /v1/collections/{name}).
	RemoveCollection(ctx context.Context, name string) error
	// Collections lists the registered collections (GET /v1/collections).
	Collections(ctx context.Context) ([]CollectionInfo, error)
	// Stats snapshots the service counters (GET /v1/stats).
	Stats(ctx context.Context) (*Stats, error)
	// FlushCache drops the result cache (DELETE /v1/cache).
	FlushCache(ctx context.Context) error
	// Health is the liveness probe (GET /healthz).
	Health(ctx context.Context) error
}

// MetricsRenderer is the optional Service extension for Prometheus
// exposition: NewHandler registers GET /metrics when the service
// implements it.
type MetricsRenderer interface {
	RenderMetrics() string
}

// WALStreamer is the optional Service extension for WAL-stream
// replication (GET /v1/collections/{name}/wal?since=N): a durability
// owner hands out its delta log suffix — or a full snapshot when the
// suffix is gone — so a replica can catch up; see (*Server).WALStream.
// The cluster router consumes it and does not re-export it.
type WALStreamer interface {
	WALStream(ctx context.Context, name string, since uint64) (*WALStream, error)
}

// The HTTP client is a Service: calling through it is calling the
// remote daemon.
var _ Service = (*Client)(nil)

// localService adapts *Server to Service: the server's own methods are
// synchronous and (mostly) infallible, so the adapter supplies the
// ctx-first, error-returning shape the interface standardizes on.
type localService struct{ s *Server }

// Service returns the server as a transport-agnostic Service — the
// in-process twin of the HTTP Client against this server's Handler.
func (s *Server) Service() Service { return localService{s} }

func (l localService) Solve(ctx context.Context, req Request) (*Response, error) {
	return l.s.Solve(ctx, req)
}

func (l localService) SolveBatch(ctx context.Context, breq BatchRequest) (*BatchResponse, error) {
	return l.s.SolveBatch(ctx, breq)
}

func (l localService) PutCollection(_ context.Context, name string, db *relation.Database) (CollectionInfo, error) {
	return l.s.SetCollection(name, db), nil
}

func (l localService) ApplyDelta(_ context.Context, name string, delta relation.Delta) (DeltaInfo, error) {
	return l.s.MutateCollection(name, delta)
}

func (l localService) GetCollection(_ context.Context, name string) (CollectionInfo, error) {
	info, ok := l.s.Collection(name)
	if !ok {
		return CollectionInfo{}, &NotFoundError{What: "collection", Name: name}
	}
	return info, nil
}

func (l localService) RemoveCollection(_ context.Context, name string) error {
	if !l.s.RemoveCollection(name) {
		return &NotFoundError{What: "collection", Name: name}
	}
	return nil
}

func (l localService) Collections(context.Context) ([]CollectionInfo, error) {
	return l.s.Collections(), nil
}

func (l localService) Stats(context.Context) (*Stats, error) {
	st := l.s.Stats()
	return &st, nil
}

func (l localService) FlushCache(context.Context) error {
	l.s.FlushCache()
	return nil
}

func (l localService) Health(context.Context) error { return nil }

func (l localService) RenderMetrics() string { return l.s.renderMetrics() }

func (l localService) WALStream(ctx context.Context, name string, since uint64) (*WALStream, error) {
	return l.s.WALStream(ctx, name, since)
}
