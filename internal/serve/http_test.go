package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/relation"
)

// TestHTTPEquivalenceConcurrent is the serving-layer contract: concurrent
// FRP and CPP requests through the daemon's HTTP front end return results
// identical to direct library calls, cached or not.
func TestHTTPEquivalenceConcurrent(t *testing.T) {
	db := gen.Travel(7, 40, 30)
	s := NewServer(Options{})
	s.SetCollection("travel", db)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	// Direct library answers, computed once per variant.
	type variant struct {
		op    string
		k     int
		bound float64
	}
	variants := []variant{
		{OpTopK, 2, 0}, {OpTopK, 3, 0}, {OpTopK, 5, 0},
		{OpCount, 3, -50}, {OpCount, 3, -100}, {OpCount, 3, -150},
	}
	wantJSON := make(map[variant]string)
	for _, v := range variants {
		ps := travelSpec(v.k)
		ps.Bound = v.bound
		prob, err := ps.Build(db)
		if err != nil {
			t.Fatal(err)
		}
		switch v.op {
		case OpTopK:
			sel, ok, err := prob.FindTopK()
			if err != nil {
				t.Fatal(err)
			}
			var res Result
			res.OK = ok
			for _, n := range sel {
				res.Packages = append(res.Packages, packageResult(prob, n))
			}
			wantJSON[v] = mustJSON(t, res.Packages)
		case OpCount:
			n, err := prob.CountValid(v.bound)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON[v] = mustJSON(t, n)
		}
	}

	// Hammer the daemon concurrently: every variant several times, so the
	// runs mix cold solves, coalesced flights and cache hits.
	const rounds = 4
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for _, v := range variants {
			wg.Add(1)
			go func(v variant) {
				defer wg.Done()
				ps := travelSpec(v.k)
				ps.Bound = v.bound
				resp, err := client.Solve(context.Background(),
					Request{Collection: "travel", Op: v.op, Spec: ps})
				if err != nil {
					t.Errorf("%v: %v", v, err)
					return
				}
				var got string
				switch v.op {
				case OpTopK:
					if !resp.OK {
						t.Errorf("%v: daemon found no selection", v)
						return
					}
					got = mustJSON(t, resp.Packages)
				case OpCount:
					got = mustJSON(t, *resp.Count)
				}
				if got != wantJSON[v] {
					t.Errorf("%v: daemon answer diverges from library:\n got %s\nwant %s", v, got, wantJSON[v])
				}
			}(v)
		}
	}
	wg.Wait()

	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != rounds*uint64(len(variants)) {
		t.Fatalf("stats counted %d requests, want %d", st.Requests, rounds*len(variants))
	}
	// With 4 rounds of 6 distinct problems, at most 6 cold solves are
	// needed; everything else must have been served by the cache or a
	// shared flight.
	if st.CacheHits+st.Coalesced < uint64((rounds-1)*len(variants)) {
		t.Fatalf("cache did not short-circuit repeats: %+v", st)
	}
	// The hits/coalesced split is timing-dependent (on a busy one-core run
	// every repeat can join a flight before any result lands in the
	// cache), so only assert the rate is consistent with the hits.
	if (st.CacheHits > 0) != (st.HitRate > 0) {
		t.Fatalf("hit rate inconsistent with cache hits: %+v", st)
	}
}

func TestHTTPCollectionLifecycle(t *testing.T) {
	s := NewServer(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	db := gen.Travel(7, 20, 16)
	info, err := client.PutCollection(ctx, "travel", db)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Tuples != db.Size() || info.Fingerprint != db.Fingerprint() {
		t.Fatalf("put returned %+v", info)
	}

	infos, err := client.Collections(ctx)
	if err != nil || len(infos) != 1 || infos[0].Name != "travel" {
		t.Fatalf("list: %v %v", infos, err)
	}

	ps := travelSpec(2)
	resp, err := client.Solve(ctx, Request{Collection: "travel", Op: OpTopK, Spec: ps})
	if err != nil || !resp.OK {
		t.Fatalf("solve over uploaded collection: resp=%+v err=%v", resp, err)
	}

	// Re-PUTting content-identical data is idempotent: version and cache
	// survive. Swapping different contents bumps the version.
	info2, err := client.PutCollection(ctx, "travel", db)
	if err != nil || info2.Version != 1 || info2.Fingerprint != info.Fingerprint {
		t.Fatalf("idempotent reload: %+v err=%v", info2, err)
	}
	if resp, err := client.Solve(ctx, Request{Collection: "travel", Op: OpTopK, Spec: ps}); err != nil || !resp.Cached {
		t.Fatalf("identical reload dropped the cache: %+v err=%v", resp, err)
	}
	info3, err := client.PutCollection(ctx, "travel", gen.Travel(11, 24, 16))
	if err != nil || info3.Version != 2 || info3.Fingerprint == info.Fingerprint {
		t.Fatalf("content swap: %+v err=%v", info3, err)
	}

	if err := client.FlushCache(ctx); err != nil {
		t.Fatal(err)
	}
	if err := client.Health(ctx); err != nil {
		t.Fatal(err)
	}

	if err := client.RemoveCollection(ctx, "travel"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	_, err = client.Solve(ctx, Request{Collection: "travel", Op: OpTopK, Spec: ps})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("solve after delete: %v, want 404 APIError", err)
	}
	if err := client.RemoveCollection(ctx, "travel"); err == nil {
		t.Fatal("double delete succeeded")
	}
}

// TestHTTPDeltaEndpoint drives POST /v1/collections/{name}/delta over the
// wire: a delta mutates the collection in place, a stale cached answer
// over the mutated relation is not served, the delta counters surface in
// /v1/stats, and errors map to the documented status codes.
func TestHTTPDeltaEndpoint(t *testing.T) {
	s := NewServer(Options{})
	s.SetCollection("travel", gen.Travel(7, 20, 16))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	ps := travelSpec(2)
	ps.Bound = -100
	before, err := client.Solve(ctx, Request{Collection: "travel", Op: OpCount, Spec: ps})
	if err != nil {
		t.Fatal(err)
	}
	delta := relation.Delta{Upserts: []relation.RelationDelta{{
		Name:   "poi",
		Tuples: [][]any{{"delta-poi", "ewr", "museum", 5, 30}},
	}}}
	info, err := client.ApplyDelta(ctx, "travel", delta)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.Upserted != 1 || len(info.Mutated) != 1 || info.Mutated[0] != "poi" {
		t.Fatalf("delta info over the wire: %+v", info)
	}
	after, err := client.Solve(ctx, Request{Collection: "travel", Op: OpCount, Spec: ps})
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("stale cached result served after a delta to a read relation")
	}
	if *after.Count <= *before.Count {
		t.Fatalf("count %d after upsert, want > %d", *after.Count, *before.Count)
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deltas != 1 || st.DeltaItems != 1 || st.SnapshotsLive != 1 {
		t.Fatalf("delta counters: deltas=%d deltaItems=%d snapshotsLive=%d", st.Deltas, st.DeltaItems, st.SnapshotsLive)
	}

	var apiErr *APIError
	if _, err := client.ApplyDelta(ctx, "ghost", delta); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("delta to unknown collection: %v, want 404", err)
	}
	bad := relation.Delta{Deletes: []relation.RelationDelta{{Name: "ghost", Tuples: [][]any{{1}}}}}
	if _, err := client.ApplyDelta(ctx, "travel", bad); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("malformed delta: %v, want 400", err)
	}
	resp, err := http.Post(ts.URL+"/v1/collections/travel/delta", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-JSON delta body: %d, want 400", resp.StatusCode)
	}
}

func TestHTTPErrorCodes(t *testing.T) {
	s := NewServer(Options{})
	s.SetCollection("travel", gen.Travel(7, 20, 16))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e struct {
			Error string `json:"error"`
		}
		if resp.StatusCode/100 != 2 {
			if json.NewDecoder(resp.Body).Decode(&e) != nil || e.Error == "" {
				t.Errorf("error reply for %q carried no JSON error message", body)
			}
		}
		return resp.StatusCode
	}

	if got := post(`{"collection":"travel","op":"frobnicate"}`); got != http.StatusBadRequest {
		t.Errorf("unknown op: %d, want 400", got)
	}
	if got := post(`not json`); got != http.StatusBadRequest {
		t.Errorf("bad JSON: %d, want 400", got)
	}
	if got := post(`{"collection":"nope","op":"count","spec":{"query":"Q(x) :- r(x).","cost":{"kind":"count"},"val":{"kind":"count"}}}`); got != http.StatusNotFound {
		t.Errorf("unknown collection: %d, want 404", got)
	}
	if got := post(`{"collection":"travel","op":"count","mystery":1}`); got != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", got)
	}
	resp, err := http.Get(ts.URL + "/v1/collections/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("get unknown collection: %d, want 404", resp.StatusCode)
	}
}

// The wire selection decodes through relation.ValueFromJSON; a decide
// round-trip over HTTP must agree with the library's DecideTopK.
func TestHTTPDecideRoundTrip(t *testing.T) {
	db := gen.Travel(7, 30, 24)
	s := NewServer(Options{})
	s.SetCollection("travel", db)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	ps := travelSpec(2)
	prob, err := ps.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok, err := prob.FindTopK()
	if err != nil || !ok {
		t.Fatalf("fixture FindTopK: ok=%v err=%v", ok, err)
	}
	wire := make([][][]any, len(sel))
	for i, p := range sel {
		for _, tup := range p.Tuples() {
			row := make([]any, len(tup))
			for j, v := range tup {
				row[j] = relation.ValueToJSON(v)
			}
			wire[i] = append(wire[i], row)
		}
	}
	resp, err := client.Solve(context.Background(),
		Request{Collection: "travel", Op: OpDecide, Spec: ps, Selection: wire})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("daemon rejected the library's own top-k selection (witness %+v)", resp.Witness)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
