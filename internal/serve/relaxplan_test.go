package serve

import (
	"encoding/json"
	"testing"

	"repro/internal/relation"
	"repro/internal/spec"
)

// suggestDB is a three-POI collection engineered so the relaxation lattice
// has two incomparable minimal suggestions: the base nyc-museum query only
// admits an over-budget ticket, relaxing the city (gap 2) reaches a cheap
// bos museum, and relaxing the type (gap 3) reaches a cheap nyc park.
func suggestDB() *relation.Database {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("poi", "name", "city", "type", "ticket", "time"),
		relation.NewTuple(relation.Str("m1"), relation.Str("nyc"), relation.Str("museum"), relation.Int(50), relation.Int(30)),
		relation.NewTuple(relation.Str("m2"), relation.Str("bos"), relation.Str("museum"), relation.Int(1), relation.Int(30)),
		relation.NewTuple(relation.Str("m3"), relation.Str("nyc"), relation.Str("park"), relation.Int(2), relation.Int(30)),
		// A cdg park: puts "cdg" in the city column (so city metrics can
		// price it as a gap level) while the museum conjunct rejects it —
		// relaxing the city out to cdg repeats the candidate list.
		relation.NewTuple(relation.Str("x1"), relation.Str("cdg"), relation.Str("park"), relation.Int(1), relation.Int(30))))
	return db
}

func suggestSpec() spec.ProblemSpec {
	return spec.ProblemSpec{
		Query: `RQ(name, type, ticket, time) :-
			poi(name, city, type, ticket, time), city = "nyc", type = "museum".`,
		Cost:       spec.AggSpec{Kind: "count", Monotone: true},
		Val:        spec.AggSpec{Kind: "negsum", Attr: 2},
		Budget:     2,
		K:          1,
		MaxPkgSize: 1,
	}
}

// suggestRelax relaxes the city constant (point 0) and the type constant
// (point 1); order is the caller's choice — canonicalization erases it.
func suggestRelax(order ...int) *spec.RelaxSpec {
	pts := map[int]spec.RelaxPointSpec{
		0: {Index: 0, Metric: spec.MetricSpec{Kind: "table", Entries: map[string]float64{"nyc|bos": 2}}},
		1: {Index: 1, Metric: spec.MetricSpec{Kind: "table", Entries: map[string]float64{"museum|park": 3}}},
	}
	r := &spec.RelaxSpec{Bound: -5, GapBudget: 5}
	for _, i := range order {
		r.Points = append(r.Points, pts[i])
	}
	return r
}

func TestRelaxPlanRanksSuggestions(t *testing.T) {
	s := NewServer(Options{})
	s.SetCollection("pois", suggestDB())
	req := Request{Collection: "pois", Op: OpRelaxPlan, Spec: suggestSpec(), Relax: suggestRelax(0, 1)}
	resp := mustSolve(t, s, req)
	if !resp.OK {
		t.Fatal("relaxplan found no suggestions")
	}
	if len(resp.Suggestions) != 2 {
		t.Fatalf("%d suggestions, want 2 (city gap 2, type gap 3)", len(resp.Suggestions))
	}
	if resp.Suggestions[0].Gap != 2 || resp.Suggestions[1].Gap != 3 {
		t.Fatalf("suggestion gaps = %g, %g; want 2, 3", resp.Suggestions[0].Gap, resp.Suggestions[1].Gap)
	}
	if resp.Gap == nil || *resp.Gap != 2 || resp.RelaxedQuery != resp.Suggestions[0].RelaxedQuery {
		t.Fatalf("Gap/RelaxedQuery do not mirror the first suggestion: %+v", resp.Result)
	}
	for i, sg := range resp.Suggestions {
		if sg.Witness == nil || len(sg.Witness.Tuples) == 0 {
			t.Fatalf("suggestion %d lacks a witness package", i)
		}
		if len(sg.Choices) != 1 {
			t.Fatalf("suggestion %d choices = %v, want exactly the one relaxed point", i, sg.Choices)
		}
	}

	// The first suggestion is exactly the op "relax" answer.
	relaxResp := mustSolve(t, s, Request{Collection: "pois", Op: OpRelax, Spec: suggestSpec(), Relax: suggestRelax(0, 1)})
	if !relaxResp.OK || *relaxResp.Gap != 2 || relaxResp.RelaxedQuery != resp.RelaxedQuery {
		t.Fatalf("op relax disagrees with relaxplan's first suggestion: %+v", relaxResp.Result)
	}

	// MaxSuggestions caps the ranking; an explicit cap equal to the default
	// shares the cache entry of the uncapped request.
	capped := req
	capped.MaxSuggestions = 1
	cresp := mustSolve(t, s, capped)
	if len(cresp.Suggestions) != 1 || cresp.Cached {
		t.Fatalf("maxSuggestions=1: %d suggestions, cached=%v", len(cresp.Suggestions), cresp.Cached)
	}
	asDefault := req
	asDefault.MaxSuggestions = defaultMaxSuggestions
	if !mustSolve(t, s, asDefault).Cached {
		t.Fatal("explicit default cap did not share the unset-cap cache entry")
	}
}

// Two relax requests naming the same points in different spec order must
// share one cache entry and return byte-identical results (the spec
// canonicalizer sorts point specs; suggestion choices render in canonical
// point order).
func TestRelaxPointOrderSharesCacheEntry(t *testing.T) {
	s := NewServer(Options{})
	s.SetCollection("pois", suggestDB())
	for _, op := range []string{OpRelax, OpRelaxPlan} {
		a := Request{Collection: "pois", Op: op, Spec: suggestSpec(), Relax: suggestRelax(1, 0)}
		b := Request{Collection: "pois", Op: op, Spec: suggestSpec(), Relax: suggestRelax(0, 1)}
		ra := mustSolve(t, s, a)
		rb := mustSolve(t, s, b)
		if !rb.Cached {
			t.Fatalf("%s: reordered point specs missed the cache", op)
		}
		ja, err := json.Marshal(ra.Result)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := json.Marshal(rb.Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(ja) != string(jb) {
			t.Fatalf("%s: equivalent requests returned different results:\n%s\n%s", op, ja, jb)
		}
	}
}

// An infeasible lattice whose outer levels admit no new tuples probes the
// same candidate list repeatedly; the solve session must resume from its
// memo instead of re-walking, and the stats must surface it.
func TestRelaxPlanSessionResumes(t *testing.T) {
	s := NewServer(Options{})
	s.SetCollection("pois", suggestDB())
	req := Request{Collection: "pois", Op: OpRelaxPlan, Spec: suggestSpec(),
		Relax: &spec.RelaxSpec{
			Points: []spec.RelaxPointSpec{
				// Level 4 (cdg) admits no tuple beyond level 2 (bos): the
				// candidate list repeats and the probe must resume.
				{Index: 0, Metric: spec.MetricSpec{Kind: "table", Entries: map[string]float64{"nyc|bos": 2, "nyc|cdg": 4}}},
			},
			Bound:     -0.5, // unreachable: every ticket costs at least 1
			GapBudget: 4,
		}}
	resp := mustSolve(t, s, req)
	if resp.OK || len(resp.Suggestions) != 0 {
		t.Fatalf("infeasible relaxplan reported suggestions: %+v", resp.Result)
	}
	st := s.Stats()
	if st.EngineSessionResumes < 1 {
		t.Fatalf("engineSessionResumes = %d, want ≥ 1 (repeated candidate list)", st.EngineSessionResumes)
	}
	if st.PerOp[OpRelaxPlan] == 0 {
		t.Fatal("relaxplan missing from per-op stats")
	}
}

// relaxplan flows through the batch pipeline: items carry MaxSuggestions,
// and identical items deduplicate through the same canonical keys.
func TestRelaxPlanInBatch(t *testing.T) {
	s := NewServer(Options{})
	s.SetCollection("pois", suggestDB())
	item := BatchItem{Op: OpRelaxPlan, Spec: suggestSpec(), Relax: suggestRelax(0, 1), MaxSuggestions: 1}
	resp, err := s.SolveBatch(t.Context(), BatchRequest{
		Collection: "pois",
		Items:      []BatchItem{item, item},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Solves != 1 || resp.Deduped != 1 {
		t.Fatalf("solves=%d deduped=%d, want 1/1", resp.Solves, resp.Deduped)
	}
	for i, ir := range resp.Items {
		if ir.Error != "" {
			t.Fatalf("item %d failed: %s", i, ir.Error)
		}
		if len(ir.Result.Suggestions) != 1 {
			t.Fatalf("item %d: %d suggestions, want 1", i, len(ir.Result.Suggestions))
		}
	}
}
