package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/relation"
)

// Fault-injection suite: the production-hardening contract is that the
// daemon degrades — sheds with Retry-After, rejects non-durable deltas
// with 503, fires the wal_errors counter — and never hangs or corrupts
// state, whatever the disk or the load does. Faults are injected through
// relation.WALHooks failpoints and through pool starvation.

func pkgDelta(i int) relation.Delta {
	return relation.Delta{Upserts: []relation.RelationDelta{{
		Name:   "poi",
		Tuples: [][]any{{fmt.Sprintf("fault-poi-%d", i), "edi", "museum", i, 30}},
	}}}
}

// A failing WAL append must reject the delta with UnavailableError (503
// on the wire), leave the collection at its pre-delta version, and count
// a durability fault — the acknowledged-means-durable contract.
func TestWALWriteFaultRejectsDelta(t *testing.T) {
	var failing atomic.Bool
	hooks := &relation.WALHooks{BeforeWrite: func(*relation.WALRecord) error {
		if failing.Load() {
			return errors.New("injected write fault")
		}
		return nil
	}}
	s := travelServer(t, Options{}, 20, 16)
	defer s.Close()
	if err := s.OpenWAL(WALConfig{Dir: t.TempDir(), Hooks: hooks}); err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}

	if _, err := s.MutateCollection("travel", pkgDelta(0)); err != nil {
		t.Fatalf("healthy delta: %v", err)
	}
	before, _ := s.Collection("travel")

	failing.Store(true)
	_, err := s.MutateCollection("travel", pkgDelta(1))
	var un *UnavailableError
	if !errors.As(err, &un) {
		t.Fatalf("delta under write fault: got %v, want UnavailableError", err)
	}
	after, _ := s.Collection("travel")
	if after.Version != before.Version || after.Fingerprint != before.Fingerprint {
		t.Fatalf("rejected delta still installed: %+v -> %+v", before, after)
	}
	if st := s.Stats(); st.WALErrors == 0 {
		t.Fatalf("wal error counter did not fire: %+v", st)
	}

	// The fault clears; the same delta now lands, and the log replays it.
	failing.Store(false)
	if _, err := s.MutateCollection("travel", pkgDelta(1)); err != nil {
		t.Fatalf("delta after fault cleared: %v", err)
	}
}

// A stalled fsync slows acknowledgements but never hangs them: every
// delta completes, group commit batches the stalled rounds, and solves
// keep flowing around the mutation path the whole time.
func TestFsyncStallDegradesGracefully(t *testing.T) {
	var stallCount atomic.Int64
	hooks := &relation.WALHooks{BeforeSync: func() error {
		stallCount.Add(1)
		time.Sleep(20 * time.Millisecond)
		return nil
	}}
	s := travelServer(t, Options{MaxConcurrent: 4}, 20, 16)
	defer s.Close()
	if err := s.OpenWAL(WALConfig{Dir: t.TempDir(), Hooks: hooks}); err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}

	ps := travelSpec(2)
	ps.Bound = -100
	done := make(chan struct{})
	var solveErrs atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := s.Solve(context.Background(),
					Request{Collection: "travel", Op: OpCount, Spec: ps}); err != nil {
					solveErrs.Add(1)
				}
			}
		}()
	}

	start := time.Now()
	const deltas = 8
	errc := make(chan error, deltas)
	for i := 0; i < deltas; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.MutateCollection("travel", pkgDelta(i))
			errc <- err
		}(i)
	}
	waitDone := make(chan struct{})
	go func() {
		for i := 0; i < deltas; i++ {
			if err := <-errc; err != nil {
				t.Errorf("delta under fsync stall: %v", err)
			}
		}
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("deltas hung under fsync stall")
	}
	close(done)
	wg.Wait()

	if solveErrs.Load() > 0 {
		t.Fatalf("%d solves failed while fsync stalled", solveErrs.Load())
	}
	if stallCount.Load() == 0 {
		t.Fatal("fsync failpoint never fired")
	}
	st := s.Stats()
	if st.WALAppends != deltas {
		t.Fatalf("wal appends = %d, want %d", st.WALAppends, deltas)
	}
	t.Logf("%d deltas in %v across %d stalled sync rounds (group commit)",
		deltas, time.Since(start), stallCount.Load())
}

// Pool exhaustion: with every slot held and the queue full, new solves
// shed with OverloadError + Retry-After instead of hanging, the shed
// counter fires, and sheds never count as errors.
func TestPoolExhaustionSheds(t *testing.T) {
	s := travelServer(t, Options{MaxConcurrent: 1, MaxQueue: 1}, 20, 16)
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.solveHook = func(validated) {
		started <- struct{}{}
		<-release
	}
	defer close(release)

	hold := func(i int) Request {
		p := travelSpec(2)
		p.Bound = -100 - float64(i) // distinct keys: no coalescing
		return Request{Collection: "travel", Op: OpCount, Spec: p, NoCache: true}
	}

	// Occupy the slot, then the one queue seat.
	errs := make(chan error, 2)
	go func() { _, err := s.Solve(context.Background(), hold(0)); errs <- err }()
	<-started // slot holder is inside the solve
	go func() { _, err := s.Solve(context.Background(), hold(1)); errs <- err }()
	for s.admit.queueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Saturated: the next solve sheds, immediately, with a Retry-After.
	shedStart := time.Now()
	_, err := s.Solve(context.Background(), hold(2))
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("saturated solve: got %v, want OverloadError", err)
	}
	if ov.RetryAfter < time.Second {
		t.Fatalf("Retry-After %v below the 1s floor", ov.RetryAfter)
	}
	if waited := time.Since(shedStart); waited > 5*time.Second {
		t.Fatalf("shed took %v; shedding must not wait for a slot", waited)
	}

	st := s.Stats()
	if st.Shed == 0 {
		t.Fatalf("shed counter did not fire: %+v", st)
	}
	if st.Errors != 0 {
		t.Fatalf("sheds counted as errors: %d", st.Errors)
	}
	release <- struct{}{}
	release <- struct{}{}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("held solve: %v", err)
		}
	}
}

// A snapshot-write fault during SetCollection degrades (serve from
// memory, count the fault) instead of failing the load; MutateCollection
// stays strict.
func TestSnapshotFaultDegradesSetCollection(t *testing.T) {
	s := NewServer(Options{})
	defer s.Close()
	dir := t.TempDir()
	if err := s.OpenWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	// Pre-create the collection's path as a plain file: the subdirectory
	// cannot be created, so every persistence attempt for it errors.
	sentinel := filepath.Join(dir, "travel")
	if err := os.WriteFile(sentinel, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	info := s.SetCollection("travel", gen.Travel(7, 20, 16))
	if info.Version != 1 {
		t.Fatalf("degraded SetCollection version = %d, want 1", info.Version)
	}
	if _, ok := s.Collection("travel"); !ok {
		t.Fatal("collection not served after degraded persistence")
	}
	if st := s.Stats(); st.WALErrors == 0 {
		t.Fatalf("snapshot fault not counted: %+v", st)
	}

	// The strict path: a delta that cannot become durable is rejected.
	_, err := s.MutateCollection("travel", pkgDelta(0))
	var un *UnavailableError
	if !errors.As(err, &un) {
		t.Fatalf("non-durable delta: got %v, want UnavailableError", err)
	}
}
