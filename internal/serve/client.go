package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/relation"
)

// Transport executes one JSON round trip of the pkgrecd wire protocol:
// marshal, POST/GET/PUT/DELETE, and on a non-2xx reply decode the wire
// error taxonomy into an *APIError. It is the single HTTP codepath
// every caller shares — the user-facing Client wraps it, and the
// cluster router's fan-out clients are the same struct — so error
// parsing, Retry-After handling, and the taxonomy reconstruction can
// never drift between a user talking to one daemon and a coordinator
// talking to its fleet. The zero HTTPClient means http.DefaultClient.
type Transport struct {
	BaseURL    string
	HTTPClient *http.Client
}

// NewTransport builds a transport for the daemon at baseURL.
func NewTransport(baseURL string) *Transport {
	return &Transport{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Do executes one round trip. A nil body sends no payload; a nil out
// discards the reply body. Non-2xx replies return *APIError.
func (t *Transport) Do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := t.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeAPIError rebuilds the typed error a non-2xx reply carries: the
// taxonomy code and retryable bit from the body when the server sent
// them (every current daemon does), the status-derived code otherwise,
// and the Retry-After from the millisecond body field with the
// whole-second header as fallback.
func decodeAPIError(resp *http.Response) *APIError {
	var body errorBody
	msg := resp.Status
	if json.NewDecoder(resp.Body).Decode(&body) == nil && body.Error != "" {
		msg = body.Error
	}
	out := &APIError{
		Status:    resp.StatusCode,
		Message:   msg,
		Code:      body.Code,
		Retryable: body.Retryable,
	}
	if body.Code == "" {
		out.Code = codeForStatus(resp.StatusCode)
		out.Retryable = Retryable(out.Code)
	}
	switch {
	case body.RetryAfterMS > 0:
		out.RetryAfter = time.Duration(body.RetryAfterMS) * time.Millisecond
	default:
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.ParseInt(ra, 10, 64); err == nil {
				out.RetryAfter = time.Duration(secs) * time.Second
			}
		}
	}
	return out
}

// APIError is a non-2xx daemon reply, carrying the wire error taxonomy
// across the transport hop: the origin's code, its retryable bit, and —
// for sheds — the Retry-After estimate of when a slot will be free.
// Unwrap rebuilds the origin's typed error, so errors.As/errors.Is work
// identically whether the error crossed zero hops (a local Service),
// one (a client), or two (a client behind the cluster router):
// errors.As(err, **OverloadError) matches a remote shed, and
// errors.Is(err, context.DeadlineExceeded) matches a remote timeout.
type APIError struct {
	Status     int
	Message    string
	Code       string // taxonomy code (errors.go); never empty
	Retryable  bool   // whether a retry or failover could succeed
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: server returned %d: %s", e.Status, e.Message)
}

// code returns the taxonomy code, deriving it from the status for
// hand-constructed values that left Code empty.
func (e *APIError) code() string {
	if e.Code != "" {
		return e.Code
	}
	return codeForStatus(e.Status)
}

// Unwrap projects the wire error back onto the origin server's typed
// error, keyed by taxonomy code.
func (e *APIError) Unwrap() error {
	switch e.code() {
	case CodeOverloaded:
		return &OverloadError{RetryAfter: e.RetryAfter}
	case CodeUnavailable:
		return &UnavailableError{Err: fmt.Errorf("%s", e.Message)}
	case CodeBadRequest:
		return &RequestError{Err: fmt.Errorf("%s", e.Message)}
	case CodeTimeout:
		return context.DeadlineExceeded
	case CodeCanceled:
		return context.Canceled
	}
	return nil
}

// Overloaded reports whether the error is a shed (HTTP 429); callers
// should back off by RetryAfter and retry.
func (e *APIError) Overloaded() bool { return e.Status == http.StatusTooManyRequests }

// Client speaks the pkgrecd JSON-over-HTTP protocol; it implements
// Service, so callers can hold a remote daemon and an in-process one
// behind the same interface. The zero HTTPClient means
// http.DefaultClient; BaseURL is the daemon root, e.g.
// "http://localhost:8080".
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
}

// NewClient builds a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Transport returns the client's wire codepath — the same Transport the
// cluster router fans out through.
func (c *Client) Transport() *Transport {
	return &Transport{BaseURL: c.BaseURL, HTTPClient: c.HTTPClient}
}

// Solve posts one solve request.
func (c *Client) Solve(ctx context.Context, req Request) (*Response, error) {
	var resp Response
	if err := c.do(ctx, http.MethodPost, "/v1/solve", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SolveBatch posts a batch of solve requests against one collection; see
// BatchRequest for the batching semantics. The returned error covers the
// batch as a whole (transport failure, unknown collection, malformed
// body); per-item failures come back inside the response items.
func (c *Client) SolveBatch(ctx context.Context, breq BatchRequest) (*BatchResponse, error) {
	var resp BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", breq, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PutCollection loads or swaps a collection on the daemon.
func (c *Client) PutCollection(ctx context.Context, name string, db *relation.Database) (CollectionInfo, error) {
	var info CollectionInfo
	err := c.do(ctx, http.MethodPut, "/v1/collections/"+url.PathEscape(name), db, &info)
	return info, err
}

// ApplyDelta applies an incremental mutation to a collection on the
// daemon: tuples upserted and deleted in place of a full reload, keeping
// unaffected cached results and prepared problems warm. The returned
// DeltaInfo reports the new collection state and what actually changed.
func (c *Client) ApplyDelta(ctx context.Context, name string, delta relation.Delta) (DeltaInfo, error) {
	var info DeltaInfo
	err := c.do(ctx, http.MethodPost, "/v1/collections/"+url.PathEscape(name)+"/delta", delta, &info)
	return info, err
}

// GetCollection fetches one collection's description.
func (c *Client) GetCollection(ctx context.Context, name string) (CollectionInfo, error) {
	var info CollectionInfo
	err := c.do(ctx, http.MethodGet, "/v1/collections/"+url.PathEscape(name), nil, &info)
	return info, err
}

// RemoveCollection drops a collection on the daemon.
func (c *Client) RemoveCollection(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/collections/"+url.PathEscape(name), nil, nil)
}

// Collections lists the daemon's collections.
func (c *Client) Collections(ctx context.Context) ([]CollectionInfo, error) {
	var infos []CollectionInfo
	err := c.do(ctx, http.MethodGet, "/v1/collections", nil, &infos)
	return infos, err
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// FlushCache drops the daemon's result cache.
func (c *Client) FlushCache(ctx context.Context) error {
	return c.do(ctx, http.MethodDelete, "/v1/cache", nil, nil)
}

// Health checks the liveness probe.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// WALStream fetches a collection's replication stream: the delta log
// records past since, or a full snapshot when the suffix is gone. The
// client side of the WALStreamer extension.
func (c *Client) WALStream(ctx context.Context, name string, since uint64) (*WALStream, error) {
	var stream WALStream
	path := "/v1/collections/" + url.PathEscape(name) + "/wal?since=" + strconv.FormatUint(since, 10)
	if err := c.do(ctx, http.MethodGet, path, nil, &stream); err != nil {
		return nil, err
	}
	return &stream, nil
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	return c.Transport().Do(ctx, method, path, body, out)
}
