package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/relation"
)

// Client speaks the pkgrecd JSON-over-HTTP protocol. The zero HTTPClient
// means http.DefaultClient; BaseURL is the daemon root, e.g.
// "http://localhost:8080".
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
}

// NewClient builds a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// APIError is a non-2xx daemon reply. A 429 (shed by admission control)
// carries RetryAfter, parsed from the Retry-After header — the daemon's
// estimate of when a slot will be free.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: server returned %d: %s", e.Status, e.Message)
}

// Overloaded reports whether the error is a shed (HTTP 429); callers
// should back off by RetryAfter and retry.
func (e *APIError) Overloaded() bool { return e.Status == http.StatusTooManyRequests }

// Solve posts one solve request.
func (c *Client) Solve(ctx context.Context, req Request) (*Response, error) {
	var resp Response
	if err := c.do(ctx, http.MethodPost, "/v1/solve", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SolveBatch posts a batch of solve requests against one collection; see
// BatchRequest for the batching semantics. The returned error covers the
// batch as a whole (transport failure, unknown collection, malformed
// body); per-item failures come back inside the response items.
func (c *Client) SolveBatch(ctx context.Context, breq BatchRequest) (*BatchResponse, error) {
	var resp BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", breq, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PutCollection loads or swaps a collection on the daemon.
func (c *Client) PutCollection(ctx context.Context, name string, db *relation.Database) (CollectionInfo, error) {
	var info CollectionInfo
	err := c.do(ctx, http.MethodPut, "/v1/collections/"+url.PathEscape(name), db, &info)
	return info, err
}

// ApplyDelta applies an incremental mutation to a collection on the
// daemon: tuples upserted and deleted in place of a full reload, keeping
// unaffected cached results and prepared problems warm. The returned
// DeltaInfo reports the new collection state and what actually changed.
func (c *Client) ApplyDelta(ctx context.Context, name string, delta relation.Delta) (DeltaInfo, error) {
	var info DeltaInfo
	err := c.do(ctx, http.MethodPost, "/v1/collections/"+url.PathEscape(name)+"/delta", delta, &info)
	return info, err
}

// GetCollection fetches one collection's description.
func (c *Client) GetCollection(ctx context.Context, name string) (CollectionInfo, error) {
	var info CollectionInfo
	err := c.do(ctx, http.MethodGet, "/v1/collections/"+url.PathEscape(name), nil, &info)
	return info, err
}

// RemoveCollection drops a collection on the daemon.
func (c *Client) RemoveCollection(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/collections/"+url.PathEscape(name), nil, nil)
}

// Collections lists the daemon's collections.
func (c *Client) Collections(ctx context.Context) ([]CollectionInfo, error) {
	var infos []CollectionInfo
	err := c.do(ctx, http.MethodGet, "/v1/collections", nil, &infos)
	return infos, err
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// FlushCache drops the daemon's result cache.
func (c *Client) FlushCache(ctx context.Context) error {
	return c.do(ctx, http.MethodDelete, "/v1/cache", nil, nil)
}

// Health checks the liveness probe.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		out := &APIError{Status: resp.StatusCode, Message: msg}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.ParseInt(ra, 10, 64); err == nil {
				out.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return out
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
