package serve

import (
	"context"
	"sort"
	"sync"
	"time"
)

// admitter is the cost-aware admission controller that replaced the
// plain counting semaphore on the solve pool. Every solve still occupies
// one of MaxConcurrent slots, but who gets the next free slot — and who
// is told to come back later — is a scheduling decision priced in
// predicted solve cost (cost.go):
//
//   - express lane: when a slot is free and either nobody is queued or
//     the request is cheap (predicted under Options.CheapThreshold), it
//     starts immediately. Cached results never even reach the admitter,
//     so the cheap lane is for the cheap-but-uncached tail;
//   - fairness queue: otherwise the request waits in its tenant's (its
//     collection's) queue. Slots are granted to the tenant with the
//     least accumulated debt — the sum of predicted cost it has been
//     granted — so one tenant flooding expensive solves cannot starve
//     the others: its debt races ahead and every other tenant's
//     occasional request is scheduled first. Within a tenant, cheap
//     requests go before expensive ones, then lower predicted cost,
//     then arrival order;
//   - shedding: a full tenant queue (Options.MaxQueue waiters for one
//     collection — the per-collection fairness budget, so one tenant's
//     backlog sheds its own traffic, never another tenant's), or — when
//     Options.ShedThreshold is set — a predicted queue drain beyond the
//     threshold, rejects the request with an OverloadError carrying a
//     Retry-After derived from that predicted drain. Cheap requests are
//     exempt from the predicted-drain shed (they are the traffic an
//     operator least wants bounced) but not from the per-tenant bound.
//
// Observability endpoints (/v1/stats, /metrics) bypass the admitter
// entirely — they never solve — so a saturated pool cannot starve the
// instruments that explain the saturation.
type admitter struct {
	slots         int
	maxQueue      int
	shedThreshold time.Duration

	mu          sync.Mutex
	running     int
	runningCost time.Duration // predicted cost of running solves
	queuedCost  time.Duration // predicted cost of queued solves
	waiting     int
	seq         uint64
	tenants     map[string]*tenantQ

	// Counters, surfaced through Stats/metrics.
	express uint64 // admitted without queueing
	queued  uint64 // admitted after waiting in the queue
	sheds   uint64 // rejected with OverloadError
}

// tenantQ is one tenant's (collection's) wait queue plus its scheduling
// debt. Entries exist only while a tenant has waiters; a new entry
// starts at the minimum live debt, so a quiet tenant joining mid-overload
// is next in line without being able to monopolize the pool.
type tenantQ struct {
	name string
	debt float64 // granted predicted cost, ns
	q    []*waiter
}

type waiter struct {
	seq     uint64
	pred    time.Duration
	cheap   bool
	class   int // admission class: -1 high, 0 normal, 1 low
	granted bool
	ready   chan struct{}
}

// priorityClass maps a normalized Request.Priority onto the admitter's
// ordering key: high < normal < low. The class orders a tenant's queue
// ahead of the cheap/cost/arrival criteria — within one tenant, a
// "high" request always dispatches before its tenant's "normal" ones —
// but deliberately does not cross tenants: the least-debt fairness pick
// stays first, so one tenant marking everything "high" gains nothing
// over its neighbors, only over its own traffic.
func priorityClass(p string) int {
	switch p {
	case PriorityHigh:
		return -1
	case PriorityLow:
		return 1
	}
	return 0
}

func newAdmitter(slots, maxQueue int, shedThreshold time.Duration) *admitter {
	return &admitter{
		slots:         slots,
		maxQueue:      maxQueue,
		shedThreshold: shedThreshold,
		tenants:       make(map[string]*tenantQ),
	}
}

// acquire takes a solve slot for tenant, blocking in the fairness queue
// when the pool is busy. It returns an *OverloadError when the request
// is shed, or ctx.Err() when the context ends first. The caller must
// release(pred) with the same predicted cost when the solve finishes.
func (a *admitter) acquire(ctx context.Context, tenant string, pred time.Duration, cheap bool, class int) error {
	a.mu.Lock()
	if a.running < a.slots && (a.waiting == 0 || cheap) {
		a.running++
		a.runningCost += pred
		a.express++
		a.mu.Unlock()
		return nil
	}
	tq := a.tenants[tenant]
	if (tq != nil && len(tq.q) >= a.maxQueue) ||
		(a.shedThreshold > 0 && !cheap && a.predictedWaitLocked() > a.shedThreshold) {
		a.sheds++
		err := &OverloadError{RetryAfter: retryAfter(a.predictedWaitLocked())}
		a.mu.Unlock()
		return err
	}
	w := &waiter{seq: a.seq, pred: pred, cheap: cheap, class: class, ready: make(chan struct{})}
	a.seq++
	if tq == nil {
		tq = &tenantQ{name: tenant, debt: a.minDebtLocked()}
		a.tenants[tenant] = tq
	}
	tq.q = append(tq.q, w)
	a.waiting++
	a.queuedCost += pred
	a.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the cancellation; the slot is ours, give
			// it back.
			a.releaseLocked(pred)
		} else {
			a.dropWaiterLocked(tenant, w)
		}
		a.mu.Unlock()
		return ctx.Err()
	}
}

// release returns a slot granted with predicted cost pred and hands it
// to the best queued waiter, if any.
func (a *admitter) release(pred time.Duration) {
	a.mu.Lock()
	a.releaseLocked(pred)
	a.mu.Unlock()
}

func (a *admitter) releaseLocked(pred time.Duration) {
	a.running--
	a.runningCost -= pred
	a.dispatchLocked()
}

// dispatchLocked grants free slots to queued waiters: tenant with the
// least debt first (ties by name, for determinism), and within the
// tenant cheap before expensive, then lower predicted cost, then
// arrival order.
func (a *admitter) dispatchLocked() {
	for a.running < a.slots && a.waiting > 0 {
		tq := a.pickTenantLocked()
		wi := pickWaiter(tq.q)
		w := tq.q[wi]
		tq.q = append(tq.q[:wi], tq.q[wi+1:]...)
		a.waiting--
		a.queuedCost -= w.pred
		a.running++
		a.runningCost += w.pred
		a.queued++
		tq.debt += float64(w.pred)
		if len(tq.q) == 0 {
			delete(a.tenants, tq.name)
		}
		w.granted = true
		close(w.ready)
	}
}

// pickTenantLocked returns the waiting tenant with the least debt,
// breaking ties by name.
func (a *admitter) pickTenantLocked() *tenantQ {
	var best *tenantQ
	for _, tq := range a.tenants {
		if len(tq.q) == 0 {
			continue
		}
		if best == nil || tq.debt < best.debt || (tq.debt == best.debt && tq.name < best.name) {
			best = tq
		}
	}
	return best
}

// pickWaiter returns the index of the best waiter in one tenant's queue:
// admission class first (high before normal before low — the
// user-facing priority knob), then cheap before expensive, then
// ascending predicted cost, then arrival order.
func pickWaiter(q []*waiter) int {
	best := 0
	for i := 1; i < len(q); i++ {
		w, b := q[i], q[best]
		switch {
		case w.class != b.class:
			if w.class < b.class {
				best = i
			}
		case w.cheap != b.cheap:
			if w.cheap {
				best = i
			}
		case w.pred != b.pred:
			if w.pred < b.pred {
				best = i
			}
		case w.seq < b.seq:
			best = i
		}
	}
	return best
}

// dropWaiterLocked removes a canceled waiter from its tenant's queue.
func (a *admitter) dropWaiterLocked(tenant string, w *waiter) {
	tq := a.tenants[tenant]
	if tq == nil {
		return
	}
	for i, x := range tq.q {
		if x == w {
			tq.q = append(tq.q[:i], tq.q[i+1:]...)
			a.waiting--
			a.queuedCost -= w.pred
			break
		}
	}
	if len(tq.q) == 0 {
		delete(a.tenants, tq.name)
	}
}

// minDebtLocked is the debt a newly waiting tenant starts at: the
// minimum live debt, so it is next in line but cannot replay an empty
// history into a monopoly.
func (a *admitter) minDebtLocked() float64 {
	first := true
	min := 0.0
	for _, tq := range a.tenants {
		if first || tq.debt < min {
			min = tq.debt
			first = false
		}
	}
	return min
}

// predictedWaitLocked estimates how long a new arrival would wait for a
// slot: everything running plus everything queued, drained across the
// pool's slots.
func (a *admitter) predictedWaitLocked() time.Duration {
	return (a.runningCost + a.queuedCost) / time.Duration(a.slots)
}

// retryAfter converts a predicted queue drain into the Retry-After the
// 429 carries: whole seconds, rounded up, at least 1.
func retryAfter(wait time.Duration) time.Duration {
	secs := int64(wait+time.Second-1) / int64(time.Second)
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs) * time.Second
}

// queueDepth returns the current number of queued solves.
func (a *admitter) queueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}

// counters returns the admission tallies (express grants, queued grants,
// sheds).
func (a *admitter) counters() (express, queued, sheds uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.express, a.queued, a.sheds
}

// tenantsSnapshot lists the waiting tenants and their queue lengths,
// sorted by name — diagnostics for tests and debugging.
func (a *admitter) tenantsSnapshot() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.tenants))
	for name := range a.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
