package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestBackendPBOMatchesBB is the serving-layer face of the backend identity
// guarantee: every package-problem op answered by backend "pbo" must carry
// exactly the payload backend "bb" computes — same packages in the same
// order, same count, same bound, same decisions — and the pbo solve
// counters must move in the stats.
func TestBackendPBOMatchesBB(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	ps := travelSpec(2)
	ps.Bound = -100

	solve := func(backend, op string, sel [][][]any) *Response {
		t.Helper()
		return mustSolve(t, s, Request{
			Collection: "travel", Op: op, Spec: ps, Backend: backend, Selection: sel,
		})
	}

	bbTopK := solve(BackendBB, OpTopK, nil)
	pboTopK := solve(BackendPBO, OpTopK, nil)
	if pboTopK.Cached {
		t.Fatal("pbo topk was served from the bb cache entry")
	}
	if mustJSON(t, pboTopK.Result) != mustJSON(t, bbTopK.Result) {
		t.Fatalf("topk diverges:\n pbo %s\n bb  %s", mustJSON(t, pboTopK.Result), mustJSON(t, bbTopK.Result))
	}
	for _, op := range []string{OpCount, OpMaxBound, OpExists} {
		bb := solve(BackendBB, op, nil)
		pbo := solve(BackendPBO, op, nil)
		if mustJSON(t, pbo.Result) != mustJSON(t, bb.Result) {
			t.Fatalf("%s diverges:\n pbo %s\n bb  %s", op, mustJSON(t, pbo.Result), mustJSON(t, bb.Result))
		}
	}
	// Decide on the engine's own selection: both backends must accept.
	wire := make([][][]any, len(bbTopK.Packages))
	for i, p := range bbTopK.Packages {
		wire[i] = p.Tuples
	}
	bbDec := solve(BackendBB, OpDecide, wire)
	pboDec := solve(BackendPBO, OpDecide, wire)
	if !bbDec.OK || !pboDec.OK {
		t.Fatalf("decide on the top-k selection: bb=%v pbo=%v, want both true", bbDec.OK, pboDec.OK)
	}

	st := s.Stats()
	if st.PBOSolves < 5 {
		t.Fatalf("stats pboSolves = %d after 5 pbo ops", st.PBOSolves)
	}
	if st.PBOPropagations == 0 {
		t.Fatal("pbo propagation accounting not surfaced in stats")
	}
}

// Backend participates in the cache key: a pbo request never reuses a bb
// entry, while repeated pbo requests share one.
func TestBackendCacheKeysSeparate(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	ps := travelSpec(2)
	ps.Bound = -100
	req := Request{Collection: "travel", Op: OpCount, Spec: ps}

	mustSolve(t, s, req)
	req.Backend = BackendPBO
	if resp := mustSolve(t, s, req); resp.Cached {
		t.Fatal("pbo request was served the bb backend's cache entry")
	}
	if resp := mustSolve(t, s, req); !resp.Cached {
		t.Fatal("repeat pbo request missed the cache")
	}
	// The explicit and implicit default backend share one entry.
	req.Backend = BackendBB
	if resp := mustSolve(t, s, req); !resp.Cached {
		t.Fatal(`explicit "bb" did not share the default backend's entry`)
	}
}

// Unknown backends are client faults (400), and the pbo backend rejects the
// ops it does not serve; both on /v1/solve and per-item in /v1/batch.
func TestUnsupportedBackendRejected(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	ps := travelSpec(2)

	var re *RequestError
	_, err := s.Solve(context.Background(),
		Request{Collection: "travel", Op: OpCount, Spec: ps, Backend: "z3"})
	if !errors.As(err, &re) || !errors.Is(err, errUnsupportedBackend) {
		t.Fatalf("unknown backend: got %v, want RequestError wrapping errUnsupportedBackend", err)
	}
	_, err = s.Solve(context.Background(),
		Request{Collection: "travel", Op: OpRelax, Spec: ps, Backend: BackendPBO})
	if !errors.As(err, &re) {
		t.Fatalf("pbo on op relax: got %v, want RequestError", err)
	}

	bresp, err := s.SolveBatch(context.Background(), BatchRequest{
		Collection: "travel",
		Items: []BatchItem{
			{Op: OpCount, Spec: ps, Backend: "z3"},
			{Op: OpCount, Spec: ps, Backend: BackendPBO},
		},
	})
	if err != nil {
		t.Fatalf("batch-level error for an item fault: %v", err)
	}
	if bresp.Errors != 1 || !strings.Contains(bresp.Items[0].Error, "unsupported backend") {
		t.Fatalf("bad-backend item not isolated: %+v", bresp.Items[0])
	}
	if bresp.Items[1].Error != "" || *bresp.Items[1].Result.Count < 0 {
		t.Fatalf("valid pbo item failed: %+v", bresp.Items[1])
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(
		`{"collection":"travel","op":"count","backend":"z3","spec":{"query":"Q(x) :- poi(x, c, t, k, m).","cost":{"kind":"count"},"val":{"kind":"count"}}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP unknown backend: %d, want 400", resp.StatusCode)
	}
}

// A batch mixing backends: equal specs still share one prepared problem,
// identical pbo items dedup onto one solve, and bb/pbo answers agree.
func TestBatchBackendMix(t *testing.T) {
	s := travelServer(t, Options{}, 30, 24)
	ps := travelSpec(2)
	ps.Bound = -100

	bresp, err := s.SolveBatch(context.Background(), BatchRequest{
		Collection: "travel",
		Items: []BatchItem{
			{Op: OpCount, Spec: ps},
			{Op: OpCount, Spec: ps, Backend: BackendPBO},
			{Op: OpCount, Spec: ps, Backend: BackendPBO},
			{Op: OpTopK, Spec: ps, Backend: BackendPBO},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ir := range bresp.Items {
		if ir.Error != "" {
			t.Fatalf("item %d failed: %s", i, ir.Error)
		}
	}
	if *bresp.Items[0].Result.Count != *bresp.Items[1].Result.Count {
		t.Fatalf("bb count %d != pbo count %d",
			*bresp.Items[0].Result.Count, *bresp.Items[1].Result.Count)
	}
	if !bresp.Items[2].Deduped {
		t.Fatal("identical pbo items did not dedup")
	}
	if !bresp.Items[3].Result.OK {
		t.Fatal("pbo topk item found no selection")
	}
	if bresp.Solves != 3 || bresp.Deduped != 1 {
		t.Fatalf("batch tally solves=%d deduped=%d, want 3/1", bresp.Solves, bresp.Deduped)
	}
}
