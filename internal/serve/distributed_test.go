package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/relation"
)

// corruptFile flips one byte in the middle of a file.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// A corrupted snapshot whose log still covers the full history recovers
// by replaying the log from an empty database — content identical to
// the pre-crash state — with the WALErrors counter reporting the
// corruption.
func TestSnapshotCorruptionFallsBackToLogReplay(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(Options{})
	if err := s.OpenWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	// Seed empty, then build all content through logged deltas that
	// carry their schemas — so the log alone reconstructs everything.
	s.SetCollection("built", relation.NewDatabase())
	attrs := []string{"name", "city", "type", "ticket", "time"}
	for i := 0; i < 4; i++ {
		delta := relation.Delta{Upserts: []relation.RelationDelta{{
			Name: "poi", Attrs: attrs,
			Tuples: [][]any{{"p", "nyc", "museum", i, 45}},
		}}}
		if _, err := s.MutateCollection("built", delta); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := s.Collection("built")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	corruptFile(t, filepath.Join(dir, "built", "snapshot.json"))

	s2 := NewServer(Options{})
	defer s2.Close()
	if err := s2.OpenWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatalf("recovery over corrupt snapshot: %v", err)
	}
	if got := s2.Stats().WALErrors; got == 0 {
		t.Fatal("corruption left WALErrors at 0")
	}
	info, ok := s2.Collection("built")
	if !ok {
		t.Fatal("collection did not recover from the log")
	}
	if info.Fingerprint != want.Fingerprint {
		t.Fatalf("log replay recovered fingerprint %s, want %s", info.Fingerprint, want.Fingerprint)
	}
}

// A corrupted snapshot whose log records need the lost state (the usual
// case: the seed snapshot held the collection body) abandons the
// collection instead of failing the daemon's whole recovery: OpenWAL
// succeeds, WALErrors reports the damage, and a fresh upload reseeds
// durability in the same directory.
func TestSnapshotCorruptionAbandonsUnrecoverable(t *testing.T) {
	dir := t.TempDir()
	db := gen.Travel(7, 20, 16)
	s := NewServer(Options{})
	if err := s.OpenWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	s.SetCollection("travel", db)
	// A schemaless delta: replayable only on top of the snapshot.
	delta := relation.Delta{Upserts: []relation.RelationDelta{{
		Name: "poi", Tuples: [][]any{{"corrupt-poi", "nyc", "museum", 3, 45}},
	}}}
	if _, err := s.MutateCollection("travel", delta); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	corruptFile(t, filepath.Join(dir, "travel", "snapshot.json"))

	s2 := NewServer(Options{})
	defer s2.Close()
	if err := s2.OpenWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatalf("recovery must not fail over one corrupt collection: %v", err)
	}
	if got := s2.Stats().WALErrors; got == 0 {
		t.Fatal("corruption left WALErrors at 0")
	}
	if _, ok := s2.Collection("travel"); ok {
		t.Fatal("unrecoverable collection was registered anyway")
	}
	// The directory is still a live durability home: reseed and mutate.
	s2.SetCollection("travel", db)
	if _, err := s2.MutateCollection("travel", delta); err != nil {
		t.Fatalf("reseeded collection rejects deltas: %v", err)
	}
	want, _ := s2.Collection("travel")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := NewServer(Options{})
	defer s3.Close()
	if err := s3.OpenWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	info, ok := s3.Collection("travel")
	if !ok || info.Fingerprint != want.Fingerprint {
		t.Fatalf("reseeded collection did not recover (%v, %+v != %+v)", ok, info, want)
	}
}

// The learned cost model survives a restart: families observed before
// Close predict identically after OpenWAL over the same directory.
func TestCostModelPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(Options{})
	if err := s.OpenWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	s.SetCollection("travel", gen.Travel(7, 20, 16))
	req := Request{Collection: "travel", Op: OpTopK, Spec: travelSpec(2)}
	mustSolve(t, s, req)
	v, err := s.validateRequest(mustSnapshot(t, s, "travel"), req)
	if err != nil {
		t.Fatal(err)
	}
	family := costFamily(v)
	wantNS := s.cost.predict(family)
	wantFams := s.cost.families()
	if wantFams == 0 {
		t.Fatal("solve trained no cost family")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, costModelFile)); err != nil {
		t.Fatalf("Close left no cost model file: %v", err)
	}

	s2 := NewServer(Options{})
	defer s2.Close()
	if err := s2.OpenWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if got := s2.cost.families(); got != wantFams {
		t.Fatalf("restored %d cost families, want %d", got, wantFams)
	}
	if got := s2.cost.predict(family); got != wantNS {
		t.Fatalf("restored prediction %v, want %v", got, wantNS)
	}
}

func mustSnapshot(t *testing.T, s *Server, name string) *collection {
	t.Helper()
	coll, err := s.snapshot(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.unpin(coll) })
	return coll
}

// WALStream semantics: header-only when current, the exact record
// suffix when the log covers the cursor, a snapshot when it cannot.
func TestWALStreamSemantics(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s := NewServer(Options{})
	defer s.Close()
	if err := s.OpenWAL(WALConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	s.SetCollection("travel", gen.Travel(7, 20, 16))
	for i := 0; i < 3; i++ {
		delta := relation.Delta{Upserts: []relation.RelationDelta{{
			Name: "poi", Tuples: [][]any{{"stream-poi", "nyc", "museum", i, 45}},
		}}}
		if _, err := s.MutateCollection("travel", delta); err != nil {
			t.Fatal(err)
		}
	}
	info, _ := s.Collection("travel")

	head, err := s.WALStream(ctx, "travel", 0)
	if err != nil {
		t.Fatal(err)
	}
	if head.Fingerprint != info.Fingerprint {
		t.Fatalf("stream fingerprint %s != collection %s", head.Fingerprint, info.Fingerprint)
	}
	if head.Seq == 0 {
		t.Fatal("no log position after three deltas")
	}

	// Current follower: header only.
	cur, err := s.WALStream(ctx, "travel", head.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Snapshot != nil || len(cur.Records) != 0 {
		t.Fatalf("up-to-date stream carried payload: snap=%v records=%d", cur.Snapshot != nil, len(cur.Records))
	}

	// One behind: exactly the missing record.
	one, err := s.WALStream(ctx, "travel", head.Seq-1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Snapshot != nil || len(one.Records) != 1 || one.Records[0].Seq != head.Seq {
		t.Fatalf("suffix stream wrong: snap=%v records=%+v", one.Snapshot != nil, one.Records)
	}

	// Unserveable cursor (follower from another life): full snapshot.
	reset, err := s.WALStream(ctx, "travel", ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if reset.Snapshot == nil || len(reset.Records) != 0 {
		t.Fatal("unserveable cursor did not fall back to a snapshot")
	}
	if got := reset.Snapshot.Fingerprint(); got != info.Fingerprint {
		t.Fatalf("snapshot fingerprint %s != collection %s", got, info.Fingerprint)
	}

	if _, err := s.WALStream(ctx, "nope", 0); ErrorCode(err) != CodeNotFound {
		t.Fatalf("unknown collection: got %v", err)
	}
}

// Priority is admission-only: it reorders a tenant's queue and never
// touches the answer or the cache identity.
func TestPriorityReordersWithinTenant(t *testing.T) {
	a := newAdmitter(1, 16, 0)
	ctx := context.Background()
	if err := a.acquire(ctx, "t", time.Millisecond, false, 0); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	depth := 0
	enqueue := func(label string, class int) {
		go func() {
			if err := a.acquire(ctx, "t", time.Millisecond, false, class); err != nil {
				t.Error(err)
				return
			}
			order <- label
			a.release(time.Millisecond)
		}()
		depth++
		for a.queueDepth() < depth {
			time.Sleep(100 * time.Microsecond)
		}
	}
	enqueue("normal", priorityClass(""))
	enqueue("high", priorityClass(PriorityHigh))
	a.release(time.Millisecond)
	if first := <-order; first != "high" {
		t.Fatalf("dispatched %q first, want the high-class waiter", first)
	}
	<-order
}

func TestPriorityWireValidationAndCacheIdentity(t *testing.T) {
	s := travelServer(t, Options{}, 20, 16)
	req := Request{Collection: "travel", Op: OpTopK, Spec: travelSpec(2)}
	first := mustSolve(t, s, req)
	if first.Cached {
		t.Fatal("first solve cached")
	}
	req.Priority = PriorityHigh
	second := mustSolve(t, s, req)
	if !second.Cached {
		t.Fatal("priority participated in the cache key: identical high-priority request missed")
	}
	req.Priority = "urgent"
	if _, err := s.Solve(context.Background(), req); ErrorCode(err) != CodeBadRequest {
		t.Fatalf("unknown priority: got %v", err)
	}
}

// Shard partials merged at the serve layer equal the whole-space solve,
// including through the pilot-floor hint path the cluster router uses.
func TestShardedSolveMergesToWholeAnswer(t *testing.T) {
	s := travelServer(t, Options{}, 24, 20)
	const w = 3
	base := travelSpec(3)
	boundSpec := base
	boundSpec.Bound = -120

	for _, tc := range []struct {
		op  string
		req Request
	}{
		{OpTopK, Request{Collection: "travel", Op: OpTopK, Spec: base}},
		{OpMaxBound, Request{Collection: "travel", Op: OpMaxBound, Spec: base}},
		{OpCount, Request{Collection: "travel", Op: OpCount, Spec: boundSpec}},
		{OpExists, Request{Collection: "travel", Op: OpExists, Spec: boundSpec}},
	} {
		whole := mustSolve(t, s, tc.req)
		var hint *float64
		parts := make([]*Result, w)
		for i := 0; i < w; i++ {
			sub := tc.req
			sub.Shard = &core.ShardSpec{Index: i, Count: w}
			if i > 0 {
				sub.FloorHint = hint
			}
			resp := mustSolve(t, s, sub)
			if !resp.Partial {
				t.Fatalf("%s shard %d: result not marked partial", tc.op, i)
			}
			if i == 0 && (tc.op == OpTopK || tc.op == OpMaxBound) &&
				resp.OK && len(resp.Packages) == tc.req.Spec.K && resp.ShardFloor != nil {
				hint = resp.ShardFloor
			}
			pr := resp.Result
			parts[i] = &pr
		}
		merged, err := MergeShardResults(tc.op, tc.req.Spec.K, parts)
		if err != nil {
			t.Fatalf("%s: merge: %v", tc.op, err)
		}
		mj, _ := json.Marshal(merged)
		wj, _ := json.Marshal(whole.Result)
		if string(mj) != string(wj) {
			t.Fatalf("%s: merged shards diverge from whole solve\nmerged: %s\nwhole:  %s", tc.op, mj, wj)
		}
	}
}

// Shard requests are validated at the wire edge.
func TestShardRequestValidation(t *testing.T) {
	s := travelServer(t, Options{}, 10, 8)
	ctx := context.Background()
	base := Request{Collection: "travel", Op: OpTopK, Spec: travelSpec(2)}

	bad := base
	bad.Shard = &core.ShardSpec{Index: 3, Count: 3}
	if _, err := s.Solve(ctx, bad); ErrorCode(err) != CodeBadRequest {
		t.Fatalf("out-of-range shard: got %v", err)
	}
	bad = base
	bad.Op = OpRelax
	bad.Relax = nil
	bad.Shard = &core.ShardSpec{Index: 0, Count: 2}
	if _, err := s.Solve(ctx, bad); ErrorCode(err) != CodeBadRequest {
		t.Fatalf("sharded relax: got %v", err)
	}
	bad = base
	f := 1.5
	bad.FloorHint = &f
	if _, err := s.Solve(ctx, bad); ErrorCode(err) != CodeBadRequest {
		t.Fatalf("floor hint without shard: got %v", err)
	}
	bad = base
	bad.Backend = BackendPBO
	bad.Shard = &core.ShardSpec{Index: 0, Count: 2}
	if _, err := s.Solve(ctx, bad); ErrorCode(err) != CodeBadRequest {
		t.Fatalf("sharded pbo backend: got %v", err)
	}
}

// The wire error taxonomy survives transport hops: codes, retryability
// and Retry-After cross one HTTP hop — and a second, as when a cluster
// router relays a node's error — reconstructible with errors.As.
func TestErrorTaxonomyAcrossHops(t *testing.T) {
	ctx := context.Background()
	s := travelServer(t, Options{}, 10, 8)
	hop1 := httptest.NewServer(NewHandler(s.Service()))
	defer hop1.Close()
	c1 := NewClient(hop1.URL)
	// Second hop: a handler over the first hop's client — the router
	// daemon's exact topology.
	hop2 := httptest.NewServer(NewHandler(c1))
	defer hop2.Close()
	c2 := NewClient(hop2.URL)

	_, err := c2.GetCollection(ctx, "nope")
	if ErrorCode(err) != CodeNotFound {
		t.Fatalf("two-hop not-found classified %q (%v)", ErrorCode(err), err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("two-hop error is not a 404 APIError: %v", err)
	}
	if RetryableError(err) {
		t.Fatal("not-found classified retryable")
	}

	_, err = c2.Solve(ctx, Request{Collection: "travel", Op: "bogus"})
	if ErrorCode(err) != CodeBadRequest {
		t.Fatalf("two-hop bad request classified %q (%v)", ErrorCode(err), err)
	}
	var reqErr *RequestError
	if !errors.As(err, &reqErr) {
		t.Fatalf("two-hop bad request does not unwrap to RequestError: %v", err)
	}

	// An overload carries its Retry-After through both hops.
	overloaded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &OverloadError{RetryAfter: 7 * time.Second})
	}))
	defer overloaded.Close()
	relay := httptest.NewServer(NewHandler(NewClient(overloaded.URL)))
	defer relay.Close()
	_, err = NewClient(relay.URL).Stats(ctx)
	if ErrorCode(err) != CodeOverloaded || !RetryableError(err) {
		t.Fatalf("two-hop overload classified %q (%v)", ErrorCode(err), err)
	}
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("two-hop overload does not unwrap to OverloadError: %v", err)
	}
	if ov.RetryAfter != 7*time.Second {
		t.Fatalf("Retry-After degraded across hops: %v", ov.RetryAfter)
	}
}

// The replication stream over the real wire: Client.WALStream and the
// in-process Service passthrough answer identically, and the shared
// Transport speaks raw paths.
func TestWALStreamOverWire(t *testing.T) {
	ctx := context.Background()
	s := NewServer(Options{})
	defer s.Close()
	if err := s.OpenWAL(WALConfig{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	s.SetCollection("travel", gen.Travel(7, 20, 16))
	delta := relation.Delta{Upserts: []relation.RelationDelta{{
		Name: "poi", Tuples: [][]any{{"wire-poi", "nyc", "museum", 9, 45}},
	}}}
	if _, err := s.MutateCollection("travel", delta); err != nil {
		t.Fatal(err)
	}

	local, err := s.Service().(WALStreamer).WALStream(ctx, "travel", 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s.Service()))
	defer ts.Close()
	c := NewClient(ts.URL)
	remote, err := c.WALStream(ctx, "travel", 0)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Seq != local.Seq || remote.Fingerprint != local.Fingerprint {
		t.Fatalf("wire stream header (%d, %s) != local (%d, %s)",
			remote.Seq, remote.Fingerprint, local.Seq, local.Fingerprint)
	}
	// A follower with no state at all asks with an unserveable cursor
	// (the router's convention) and gets a snapshot.
	cold, err := c.WALStream(ctx, "travel", ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Snapshot == nil {
		t.Fatal("cold follower got no snapshot over the wire")
	}
	if got := cold.Snapshot.Fingerprint(); got != local.Fingerprint {
		t.Fatalf("wire snapshot fingerprint %s, want %s", got, local.Fingerprint)
	}
	suffix, err := c.WALStream(ctx, "travel", remote.Seq-1)
	if err != nil {
		t.Fatal(err)
	}
	if suffix.Snapshot != nil || len(suffix.Records) != 1 {
		t.Fatalf("wire suffix stream wrong: snap=%v records=%d", suffix.Snapshot != nil, len(suffix.Records))
	}
	if _, err := c.WALStream(ctx, "nope", 0); ErrorCode(err) != CodeNotFound {
		t.Fatalf("unknown collection over the wire: got %v", err)
	}

	// The bare Transport is the same codepath the Client wraps.
	tr := NewTransport(ts.URL + "/")
	var infos []CollectionInfo
	if err := tr.Do(ctx, http.MethodGet, "/v1/collections", nil, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "travel" {
		t.Fatalf("transport listing = %+v", infos)
	}
	err = tr.Do(ctx, http.MethodGet, "/v1/collections/nope", nil, nil)
	if ErrorCode(err) != CodeNotFound {
		t.Fatalf("transport error taxonomy: got %v", err)
	}
}
