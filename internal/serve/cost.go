package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// costModel learns per-spec-shape solve cost from observed solves. The
// unit of learning is a *family*: one (op, backend, canonical spec)
// triple — exactly the identity the prepared-problem cache and the result
// cache already canonicalize on, so formatting-different but equal
// requests train one estimator. Each family keeps an exponentially
// weighted moving average of solve wall time and of engine DFS nodes
// (the paper's instances span trivial to NP-hard, and the engine's node
// counter is the direct observable of where an instance sits); a global
// EWMA serves as the prior for families never seen. Families are bounded
// by an LRU so adversarial spec churn cannot grow the model without
// bound.
//
// Predictions feed the admission controller (admit.go): the predicted
// duration is the queue currency — per-tenant debts, predicted queue
// drain, and the 429 Retry-After all derive from it — and the
// cheap-request classification (predicted below Options.CheapThreshold)
// is what lets interactive traffic bypass a queue full of expensive
// solves.
type costModel struct {
	mu     sync.Mutex
	fams   *lruMap[*famCost]
	global ewma // prior across all solves
}

// famCost is one family's running estimate.
type famCost struct {
	ns    ewma // solve wall time, nanoseconds
	nodes ewma // engine DFS nodes per solve (0 for the pbo backend)
}

// ewma is a fixed-smoothing exponentially weighted moving average.
type ewma struct {
	val float64
	n   uint64
}

// ewmaAlpha weights new observations: high enough to track a phase
// change in a family's cost within a few solves, low enough that one
// outlier (a cold cache, a GC pause) does not whipsaw admission.
const ewmaAlpha = 0.3

func (e *ewma) observe(x float64) {
	if e.n == 0 {
		e.val = x
	} else {
		e.val += ewmaAlpha * (x - e.val)
	}
	e.n++
}

// defaultPredictNS is the prediction before any solve has ever been
// observed: deliberately above every sane CheapThreshold, so unknown
// work queues like expensive work until the model has evidence.
const defaultPredictNS = 10e6 // 10ms

// costFamilies bounds the number of families tracked.
const costFamilies = 4096

func newCostModel() *costModel {
	return &costModel{fams: newLRUMap[*famCost](costFamilies)}
}

// costFamily renders a validated request's family key.
func costFamily(v validated) string {
	return fmt.Sprintf("%s|%s|%s", v.req.Op, v.req.Backend, v.canon)
}

// predict returns the expected solve duration for a family: the family's
// EWMA when it has history, the global prior otherwise, and a fixed
// default before any history exists at all.
func (m *costModel) predict(family string) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.fams.get(family); ok && f.ns.n > 0 {
		return time.Duration(f.ns.val)
	}
	if m.global.n > 0 {
		return time.Duration(m.global.val)
	}
	return time.Duration(defaultPredictNS)
}

// observe trains the model with one completed solve: the family's wall
// time and engine node count, plus the global prior.
func (m *costModel) observe(family string, d time.Duration, nodes float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.fams.peek(family)
	if !ok {
		f = &famCost{}
		m.fams.set(family, f)
	}
	f.ns.observe(float64(d))
	if nodes > 0 {
		f.nodes.observe(nodes)
	}
	m.global.observe(float64(d))
}

// families returns the number of families currently tracked.
func (m *costModel) families() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fams.len()
}

// familyNodes returns the family's EWMA of engine nodes per solve (0
// when unseen) — surfaced for diagnostics and tests; admission itself
// prices queues in time, not nodes.
func (m *costModel) familyNodes(family string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.fams.peek(family); ok {
		return f.nodes.val
	}
	return 0
}

// costState is the cost model's persistence schema (cost.json, beside
// the WAL): the global prior plus every family, oldest-first so a
// restore reproduces the LRU recency order.
type costState struct {
	Global   ewmaState  `json:"global"`
	Families []famState `json:"families"`
}

type famState struct {
	Key   string    `json:"key"`
	NS    ewmaState `json:"ns"`
	Nodes ewmaState `json:"nodes"`
}

type ewmaState struct {
	Val float64 `json:"val"`
	N   uint64  `json:"n"`
}

func (e ewma) state() ewmaState { return ewmaState{Val: e.val, N: e.n} }
func (s ewmaState) ewma() ewma  { return ewma{val: s.Val, n: s.N} }

// saveTo writes the model atomically (tmp + rename): families are a
// few thousand small records at most, so the write is one marshal. The
// model re-learns on loss, so no fsync ceremony is needed.
func (m *costModel) saveTo(path string) error {
	m.mu.Lock()
	st := costState{Global: m.global.state()}
	for _, slot := range m.fams.entries() {
		st.Families = append(st.Families, famState{
			Key:   slot.key,
			NS:    slot.val.ns.state(),
			Nodes: slot.val.nodes.state(),
		})
	}
	m.mu.Unlock()
	raw, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// loadFrom restores a saved model. A missing file is a clean cold start
// (nil error); a corrupt one is reported and leaves the model cold —
// predictions are hints, so recovery never fails over this.
func (m *costModel) loadFrom(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var st costState
	if err := json.Unmarshal(raw, &st); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.global = st.Global.ewma()
	for _, f := range st.Families {
		m.fams.set(f.Key, &famCost{ns: f.NS.ewma(), nodes: f.Nodes.ewma()})
	}
	return nil
}
