package serve

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/relation"
)

// verifyAgainstLibrary re-solves req with the library solver over db —
// the exact snapshot the response claims to answer for — and reports any
// disagreement. It is the soundness oracle for the repair pipeline:
// whether the server served the answer fresh, from a rekeyed entry, or
// from a patched one, it must match a from-scratch solve.
func verifyAgainstLibrary(req Request, resp *Response, db *relation.Database) error {
	prob, err := req.Spec.Build(db)
	if err != nil {
		return err
	}
	switch req.Op {
	case OpCount:
		want, err := prob.CountValid(req.Spec.Bound)
		if err != nil {
			return err
		}
		if *resp.Count != want {
			return fmt.Errorf("count %d, library says %d at version %d", *resp.Count, want, resp.Version)
		}
	case OpExists:
		n, err := prob.CountValid(req.Spec.Bound)
		if err != nil {
			return err
		}
		if want := n >= int64(prob.K); resp.OK != want {
			return fmt.Errorf("exists=%v, library says %v at version %d", resp.OK, want, resp.Version)
		}
	case OpMaxBound:
		b, ok, err := prob.MaxBound()
		if err != nil {
			return err
		}
		if ok != resp.OK {
			return fmt.Errorf("maxbound ok=%v, library says %v at version %d", resp.OK, ok, resp.Version)
		}
		if ok && math.Abs(*resp.Bound-b) > 1e-9 {
			return fmt.Errorf("maxbound %g, library says %g at version %d", *resp.Bound, b, resp.Version)
		}
	case OpTopK:
		sel, ok, err := prob.FindTopK()
		if err != nil {
			return err
		}
		if ok != resp.OK {
			return fmt.Errorf("topk ok=%v, library says %v at version %d", resp.OK, ok, resp.Version)
		}
		if !ok {
			return nil
		}
		if len(sel) != len(resp.Packages) {
			return fmt.Errorf("topk size %d, library says %d at version %d", len(resp.Packages), len(sel), resp.Version)
		}
		// Selections may differ in ties; the rating multiset may not.
		got := make([]float64, len(resp.Packages))
		want := make([]float64, len(sel))
		for i := range sel {
			got[i] = resp.Packages[i].Val
			want[i] = prob.Val.Eval(sel[i])
		}
		sort.Float64s(got)
		sort.Float64s(want)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return fmt.Errorf("topk ratings %v, library says %v at version %d", got, want, resp.Version)
			}
		}
	default:
		return fmt.Errorf("no library oracle for op %q", req.Op)
	}
	return nil
}

// The repair-soundness gate: every answer served across the three-tier
// churn stream (experiments.RepairChurnDelta — rekey, patch, re-solve
// mutations in rotation) must equal a fresh library solve over the exact
// database version the response reports. Phase one drives the stream
// deterministically against a warm cache so each repair tier provably
// fires (pinned by the repair counters); phase two streams deltas from a
// writer goroutine against concurrent readers, which under -race also
// proves the repair pipeline's bookkeeping is data-race free.
func TestRepairSoundnessUnderChurn(t *testing.T) {
	base := experiments.WorkloadDB(24)
	s := NewServer(Options{MaxConcurrent: 8})
	info := s.SetCollection("live", base)

	// versions mirrors the server's database content per version. The
	// writer stores the mirror before installing the version, so readers
	// can never observe a version without its mirror.
	var versions sync.Map
	versions.Store(info.Version, base)

	requests := []Request{
		{Collection: "live", Op: OpTopK, Spec: poiSpec(240)},
		{Collection: "live", Op: OpCount, Spec: poiSpec(300)},
		{Collection: "live", Op: OpExists, Spec: poiSpec(260)},
		{Collection: "live", Op: OpMaxBound, Spec: poiSpec(280)},
	}
	solveAll := func(tag string, db *relation.Database) {
		t.Helper()
		for _, req := range requests {
			resp := mustSolve(t, s, req)
			if err := verifyAgainstLibrary(req, resp, db); err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
		}
	}

	// Phase 1: deterministic tier coverage. Warm the cache, then walk one
	// full rotation of the churn stream (rekey, patch, re-solve — each as
	// an upsert and the matching delete), re-solving and verifying after
	// every delta so the cache is warm again before the next one.
	cur := base
	version := info.Version
	solveAll("warmup", cur)
	for i := 0; i < 6; i++ {
		d := experiments.RepairChurnDelta(i)
		res, err := cur.ApplyDelta(d)
		if err != nil {
			t.Fatalf("mirror delta %d: %v", i, err)
		}
		cur, version = res.DB, version+1
		versions.Store(version, cur)
		if _, err := s.MutateCollection("live", d); err != nil {
			t.Fatalf("MutateCollection %d: %v", i, err)
		}
		solveAll(fmt.Sprintf("after delta %d", i), cur)
	}
	st := s.Stats()
	if st.RepairRekeyed == 0 || st.RepairPatched == 0 || st.RepairResolved == 0 {
		t.Fatalf("churn rotation left a repair tier unexercised: rekeyed=%d patched=%d resolved=%d",
			st.RepairRekeyed, st.RepairPatched, st.RepairResolved)
	}

	// Phase 2: the same stream from a writer goroutine against concurrent
	// readers. Readers verify each response against the mirror of the
	// version it reports; -race checks the repair bookkeeping itself.
	const deltas = 24
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mcur, mversion := cur, version
		for i := 6; i < 6+deltas; i++ {
			d := experiments.RepairChurnDelta(i)
			res, err := mcur.ApplyDelta(d)
			if err != nil {
				t.Errorf("mirror delta %d: %v", i, err)
				return
			}
			mcur, mversion = res.DB, mversion+1
			versions.Store(mversion, mcur)
			dinfo, err := s.MutateCollection("live", d)
			if err != nil {
				t.Errorf("MutateCollection %d: %v", i, err)
				return
			}
			if dinfo.Version != mversion {
				t.Errorf("installed version %d, want %d", dinfo.Version, mversion)
				return
			}
		}
	}()
	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				req := requests[(r+i)%len(requests)]
				resp, err := s.Solve(context.Background(), req)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				dbAny, ok := versions.Load(resp.Version)
				if !ok {
					t.Errorf("reader %d: response reports unknown version %d", r, resp.Version)
					return
				}
				if err := verifyAgainstLibrary(req, resp, dbAny.(*relation.Database)); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}
