package spec

import (
	"testing"

	"repro/internal/parser"
)

// FuzzCanonicalSpec pins the spec canonicalization fixpoint: whenever a
// ProblemSpec canonicalizes successfully, re-rendering its queries through
// the parser and canonicalizing again must yield the identical fingerprint,
// dependencies and exhaustiveness — parse ∘ render is a fixpoint, which is
// exactly the property that lets syntactically different requests share one
// cache entry in the serving layer.
func FuzzCanonicalSpec(f *testing.F) {
	f.Add(`Q(x, y) :- R(x, z), S(z, y), x < 5.`, "", 2, 40.0, 2, 10.0)
	f.Add(`RQ(name, type, ticket, time) :- poi(name, city, type, ticket, time), city = "nyc".`, "", 3, 240.0, 1, -40.0)
	f.Add(`Q(x) :- R(x).`, `Bad(x) :- Q(x), Q(y), x != y.`, 0, 1.0, 1, 0.0)
	f.Add(`P(x) :- E(x, y). P(x) :- P(y), E(y, x).`, "", 1, 5.0, 2, 1.0)
	f.Add("", "", 0, 0.0, 0, 0.0)
	f.Add(`Q(x) :-`, "", 0, 0.0, 0, 0.0)
	f.Fuzz(func(t *testing.T, queryText, qcText string, attr int, budget float64, k int, bound float64) {
		if len(queryText)+len(qcText) > 4096 {
			return
		}
		s := ProblemSpec{
			Query:  queryText,
			Qc:     qcText,
			Cost:   AggSpec{Kind: "count"},
			Val:    AggSpec{Kind: "sum", Attr: attr},
			Budget: budget,
			K:      k,
			Bound:  bound,
		}
		canon, deps, exhaustive, err := s.CanonicalAndDeps()
		if err != nil {
			return // malformed input is allowed to fail, never to panic
		}
		s2 := s
		q, err := parser.Parse(s.Query)
		if err != nil {
			t.Fatalf("canonicalized but query does not re-parse: %v", err)
		}
		s2.Query = q.String()
		if s.Qc != "" {
			qc, err := parser.Parse(s.Qc)
			if err != nil {
				t.Fatalf("canonicalized but qc does not re-parse: %v", err)
			}
			s2.Qc = qc.String()
		}
		canon2, deps2, exhaustive2, err := s2.CanonicalAndDeps()
		if err != nil {
			t.Fatalf("re-rendered spec failed to canonicalize: %v", err)
		}
		if canon2 != canon {
			t.Fatalf("canonicalization not idempotent:\n first: %s\nsecond: %s", canon, canon2)
		}
		if exhaustive2 != exhaustive || len(deps2) != len(deps) {
			t.Fatalf("deps/exhaustive drifted: (%v, %v) → (%v, %v)", deps, exhaustive, deps2, exhaustive2)
		}
		for i := range deps {
			if deps[i] != deps2[i] {
				t.Fatalf("deps drifted: %v → %v", deps, deps2)
			}
		}
	})
}
