package spec

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/relation"
)

func baseSpec() ProblemSpec {
	return ProblemSpec{
		Query:  `RQ(x, y) :- r(x, y), x < y.`,
		Qc:     `Qc() :- RQ(x1, y1), RQ(x2, y2), x1 != x2.`,
		Cost:   AggSpec{Kind: "sum", Attr: 1, Monotone: true},
		Val:    AggSpec{Kind: "negsum", Attr: 0},
		Budget: 10, K: 2, MaxPkgSize: 3, Bound: -5,
	}
}

// The canonical form must erase formatting and nothing else: cache keys
// built from it share entries exactly between equal problems.
func TestCanonicalErasesFormattingOnly(t *testing.T) {
	a := baseSpec()
	b := baseSpec()
	b.Query = `RQ(x, y)
		:- r(x,    y),
		   x < y.`
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Fatalf("reformatted query changed the canonical form:\n%s\n%s", ca, cb)
	}

	for name, mutate := range map[string]func(*ProblemSpec){
		"query":    func(s *ProblemSpec) { s.Query = `RQ(x, y) :- r(x, y), x > y.` },
		"qc":       func(s *ProblemSpec) { s.Qc = "" },
		"cost":     func(s *ProblemSpec) { s.Cost.Attr = 0 },
		"val":      func(s *ProblemSpec) { s.Val.Kind = "sum" },
		"monotone": func(s *ProblemSpec) { s.Cost.Monotone = false },
		"budget":   func(s *ProblemSpec) { s.Budget = 11 },
		"k":        func(s *ProblemSpec) { s.K = 3 },
		"maxSize":  func(s *ProblemSpec) { s.MaxPkgSize = 4 },
		"bound":    func(s *ProblemSpec) { s.Bound = -4.5 },
	} {
		m := baseSpec()
		mutate(&m)
		cm, err := m.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cm == ca {
			t.Errorf("changing %s did not change the canonical form", name)
		}
	}
}

func TestCanonicalRejectsBadQueries(t *testing.T) {
	s := baseSpec()
	s.Query = "definitely not a query"
	if _, err := s.Canonical(); err == nil {
		t.Fatal("bad query canonicalized without error")
	}
}

// Canonicalize is idempotent: the canonical form re-parses to itself, so a
// request already in canonical form maps to the same cache key.
func TestParserCanonicalizeIdempotent(t *testing.T) {
	srcs := []string{
		`RQ(x, y) :- r(x, y), x < y.`,
		`Qc() :- RQ(x1, y1), RQ(x2, y2), x1 != x2.`,
		`RQ(x) :- a(x). RQ(x) :- b(x).`,
	}
	for _, src := range srcs {
		once, err := parser.Canonicalize(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		twice, err := parser.Canonicalize(once)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", once, err)
		}
		if once != twice {
			t.Errorf("not idempotent:\n%s\n%s", once, twice)
		}
	}
}

func TestRelaxAndMetricCanonical(t *testing.T) {
	r := RelaxSpec{
		Points: []RelaxPointSpec{
			{Index: 0, Metric: MetricSpec{Kind: "table", Entries: map[string]float64{"b|c": 2, "a|b": 1}}},
		},
		Bound: 1, GapBudget: 3,
	}
	c1 := r.Canonical()
	// Map iteration order must not leak into the canonical form.
	for i := 0; i < 16; i++ {
		if got := r.Canonical(); got != c1 {
			t.Fatalf("canonical form unstable: %s vs %s", got, c1)
		}
	}
	if !strings.Contains(c1, "a|b=1") || strings.Index(c1, "a|b") > strings.Index(c1, "b|c") {
		t.Fatalf("table entries not in sorted order: %s", c1)
	}
	r2 := r
	r2.GapBudget = 4
	if r2.Canonical() == c1 {
		t.Fatal("gap budget not in canonical form")
	}
	if (AdjustSpec{Bound: 1, KPrime: 2}).Canonical() == (AdjustSpec{Bound: 1, KPrime: 3}).Canonical() {
		t.Fatal("kPrime not in adjust canonical form")
	}
}

// Point-spec order is presentation, not meaning: two relax specs naming
// the same (index, metric) set in different orders must canonicalize — and
// build — identically, so syntactically different but equivalent relax
// requests share one cache entry and one instance.
func TestRelaxCanonicalIgnoresPointOrder(t *testing.T) {
	a := RelaxSpec{
		Points: []RelaxPointSpec{
			{Index: 1, Metric: MetricSpec{Kind: "discrete"}},
			{Index: 0, Metric: MetricSpec{Kind: "absdiff"}},
		},
		Bound: 1, GapBudget: 3,
	}
	b := RelaxSpec{
		Points: []RelaxPointSpec{
			{Index: 0, Metric: MetricSpec{Kind: "absdiff"}},
			{Index: 1, Metric: MetricSpec{Kind: "discrete"}},
		},
		Bound: 1, GapBudget: 3,
	}
	if a.Canonical() != b.Canonical() {
		t.Fatalf("point order leaked into canonical form:\n%s\n%s", a.Canonical(), b.Canonical())
	}

	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("r", "x", "y"),
		relation.NewTuple(relation.Int(1), relation.Int(2)),
		relation.NewTuple(relation.Int(3), relation.Int(4))))
	ps := ProblemSpec{
		Query:  `RQ(x, y) :- r(x, y), x = 1, y = 2.`,
		Cost:   AggSpec{Kind: "count", Monotone: true},
		Val:    AggSpec{Kind: "count"},
		Budget: 2, K: 1, MaxPkgSize: 1, Bound: 1,
	}
	prob, err := ps.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	ia, err := a.Build(prob)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := b.Build(prob)
	if err != nil {
		t.Fatal(err)
	}
	if len(ia.Points) != len(ib.Points) {
		t.Fatalf("built point counts differ: %d vs %d", len(ia.Points), len(ib.Points))
	}
	for i := range ia.Points {
		if ia.Points[i].Path != ib.Points[i].Path || ia.Points[i].Metric.Name != ib.Points[i].Metric.Name {
			t.Fatalf("built instances differ at point %d: %v vs %v", i, ia.Points[i], ib.Points[i])
		}
	}
}

// Fields a kind ignores must not split cache entries: count with a stray
// attr builds the same aggregator as plain count, so the fragments match.
func TestAggCanonicalIgnoresUnusedFields(t *testing.T) {
	if (AggSpec{Kind: "count", Attr: 3, Value: 7}).Canonical() != (AggSpec{Kind: "count"}).Canonical() {
		t.Fatal("count canonical depends on unused attr/value")
	}
	if (AggSpec{Kind: "sum", Attr: 1, Value: 7}).Canonical() != (AggSpec{Kind: "sum", Attr: 1}).Canonical() {
		t.Fatal("sum canonical depends on unused value")
	}
	if (AggSpec{Kind: "sum", Attr: 1}).Canonical() == (AggSpec{Kind: "sum", Attr: 2}).Canonical() {
		t.Fatal("sum canonical ignores attr")
	}
	if (AggSpec{Kind: "const", Value: 1}).Canonical() == (AggSpec{Kind: "const", Value: 2}).Canonical() {
		t.Fatal("const canonical ignores value")
	}
}

func TestAggSpecBuildRejectsUnknownKind(t *testing.T) {
	if _, err := (AggSpec{Kind: "median"}).Build(); err == nil {
		t.Fatal("unknown aggregator kind built without error")
	}
}

// Out-of-range attribute indexes must fail at spec build time — untrusted
// wire input would otherwise panic inside the engine's steppers.
func TestProblemSpecRejectsOutOfRangeAttr(t *testing.T) {
	db := relation.NewDatabase().Add(relation.FromTuples(
		relation.NewSchema("r", "a", "b"), relation.NewTuple(relation.Int(1), relation.Int(2))))
	s := baseSpec()
	s.Cost = AggSpec{Kind: "sum", Attr: 99}
	if _, err := s.Build(db); err == nil {
		t.Fatal("out-of-range cost attr built without error")
	}
	s = baseSpec()
	s.Val = AggSpec{Kind: "avg", Attr: -1}
	if _, err := s.Build(db); err == nil {
		t.Fatal("negative val attr built without error")
	}
	if _, err := baseSpec().Build(db); err != nil {
		t.Fatalf("in-range spec rejected: %v", err)
	}
}

// Free-form metric names and table keys must not be able to collide in the
// canonical form (they feed cache keys).
func TestMetricCanonicalResistsInjection(t *testing.T) {
	a := MetricSpec{Kind: "table", Name: "x{a|b=1}", Entries: map[string]float64{"c|d": 2}}
	b := MetricSpec{Kind: "table", Name: "x", Entries: map[string]float64{"a|b=1}{c|d": 2}}
	if _, err := a.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if a.Canonical() == b.Canonical() {
		t.Fatalf("distinct metrics share a canonical form: %s", a.Canonical())
	}
}
