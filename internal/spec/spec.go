// Package spec defines the JSON wire forms of recommendation problems —
// databases travel as the internal/relation codec; queries travel as the
// textual syntax of internal/parser; aggregators, relaxations and
// adjustments as the small structs below — together with their canonical
// serialization, the deterministic fingerprint text the serving layer keys
// its result cache on. The root pkgrec package re-exports these types, and
// cmd/pkgrec, cmd/pkgrecd and internal/serve all speak exactly this format,
// so a problem written once runs identically one-shot or against the daemon.
// docs/serving.md documents the format field by field.
package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/adjust"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/relax"
)

// AggSpec is the JSON wire form of an aggregator.
type AggSpec struct {
	Kind     string  `json:"kind"` // count, countOrInf, sum, negsum, min, max, avg, const
	Attr     int     `json:"attr,omitempty"`
	Value    float64 `json:"value,omitempty"`
	Monotone bool    `json:"monotone,omitempty"`
}

// Build constructs the aggregator an AggSpec describes.
func (s AggSpec) Build() (core.Aggregator, error) {
	var a core.Aggregator
	switch s.Kind {
	case "count":
		a = core.Count()
	case "countOrInf":
		a = core.CountOrInf()
	case "sum":
		a = core.SumAttr(s.Attr)
	case "negsum":
		a = core.NegSumAttr(s.Attr)
	case "min":
		a = core.MinAttr(s.Attr)
	case "max":
		a = core.MaxAttr(s.Attr)
	case "avg":
		a = core.AvgAttr(s.Attr)
	case "const":
		a = core.ConstAgg(s.Value)
	default:
		return core.Aggregator{}, fmt.Errorf("spec: unknown aggregator kind %q", s.Kind)
	}
	if s.Monotone {
		a = a.WithMonotone()
	}
	return a, nil
}

// validate bound-checks the attribute index against the selection query's
// output arity for the attribute-taking kinds. ProblemSpec.Build calls it
// so that an out-of-range attr in untrusted input surfaces as an error
// instead of an index panic inside the engine.
func (s AggSpec) validate(arity int) error {
	switch s.Kind {
	case "sum", "negsum", "min", "max", "avg":
		if s.Attr < 0 || s.Attr >= arity {
			return fmt.Errorf("spec: aggregator %s attr %d out of range for query arity %d",
				s.Kind, s.Attr, arity)
		}
	}
	return nil
}

// Canonical renders the aggregator spec as a deterministic fingerprint
// fragment. Fields the kind ignores are omitted (Attr only matters to the
// attribute kinds, Value only to const), so two specs share the fragment
// iff Build returns behaviourally identical aggregators — the property
// that makes the fragment safe and maximally shareable in cache keys.
func (s AggSpec) Canonical() string {
	switch s.Kind {
	case "sum", "negsum", "min", "max", "avg":
		return fmt.Sprintf("%s(attr=%d,mono=%t)", s.Kind, s.Attr, s.Monotone)
	case "const":
		return fmt.Sprintf("%s(value=%s,mono=%t)", s.Kind, canonFloat(s.Value), s.Monotone)
	default:
		return fmt.Sprintf("%s(mono=%t)", s.Kind, s.Monotone)
	}
}

// ProblemSpec is the JSON wire form of a recommendation problem: queries in
// the textual syntax, aggregators as AggSpecs. Bound carries the rating
// bound B of the operations that take one (CPP, the ∃k-valid feasibility
// core, MBP candidates).
type ProblemSpec struct {
	Query      string  `json:"query"`
	Qc         string  `json:"qc,omitempty"`
	Cost       AggSpec `json:"cost"`
	Val        AggSpec `json:"val"`
	Budget     float64 `json:"budget"`
	K          int     `json:"k"`
	MaxPkgSize int     `json:"maxPkgSize,omitempty"`
	Bound      float64 `json:"bound,omitempty"`
}

// Build constructs the Problem a ProblemSpec describes over db.
func (s ProblemSpec) Build(db *relation.Database) (*core.Problem, error) {
	q, err := parser.Parse(s.Query)
	if err != nil {
		return nil, err
	}
	p := &core.Problem{
		DB: db, Q: q,
		Budget: s.Budget, K: s.K, MaxPkgSize: s.MaxPkgSize,
	}
	if s.Qc != "" {
		p.Qc, err = parser.Parse(s.Qc)
		if err != nil {
			return nil, err
		}
	}
	if err := s.Cost.validate(q.Arity()); err != nil {
		return nil, fmt.Errorf("cost: %w", err)
	}
	if err := s.Val.validate(q.Arity()); err != nil {
		return nil, fmt.Errorf("val: %w", err)
	}
	p.Cost, err = s.Cost.Build()
	if err != nil {
		return nil, err
	}
	p.Val, err = s.Val.Build()
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Canonical returns the deterministic fingerprint text of the problem spec:
// queries are parsed and re-rendered (so formatting differences — spacing,
// newlines, comment placement — vanish), floats are rendered in shortest
// round-trip form, and every field appears in a fixed order. Two specs with
// equal canonical text describe the same problem, which is what lets the
// serving layer share cached results between syntactically different
// requests.
func (s ProblemSpec) Canonical() (string, error) {
	canon, _, _, err := s.CanonicalAndDeps()
	return canon, err
}

// CanonicalAndDeps returns the canonical fingerprint text together with the
// spec's data dependencies: the sorted extensional relation names its
// queries read (see query.Relations). When exhaustive is false the answer
// may depend on relations beyond the listed ones (FO active-domain
// semantics) and dependency-tracking callers must assume the whole
// database. The compatibility query's reference to the selection query's
// output name is excluded — Qc evaluates against the candidate package
// under that name, never against a stored relation. Both queries are
// parsed once, so callers that need the canonical text and the
// dependencies pay one parse.
func (s ProblemSpec) CanonicalAndDeps() (canon string, deps []string, exhaustive bool, err error) {
	q, err := parser.Parse(s.Query)
	if err != nil {
		return "", nil, false, fmt.Errorf("spec: selection query: %w", err)
	}
	qRels, qEx := query.Relations(q)
	qcText := ""
	qcEx := true
	set := make(map[string]struct{}, len(qRels))
	for _, n := range qRels {
		set[n] = struct{}{}
	}
	if s.Qc != "" {
		qc, err := parser.Parse(s.Qc)
		if err != nil {
			return "", nil, false, fmt.Errorf("spec: compatibility query: %w", err)
		}
		qcText = qc.String()
		var qcRels []string
		qcRels, qcEx = query.Relations(qc)
		for _, n := range qcRels {
			if n != q.OutName() {
				set[n] = struct{}{}
			}
		}
	}
	deps = make([]string, 0, len(set))
	for n := range set {
		deps = append(deps, n)
	}
	sort.Strings(deps)
	var b strings.Builder
	fmt.Fprintf(&b, "q=%s|qc=%s|cost=%s|val=%s|budget=%s|k=%d|maxPkgSize=%d|bound=%s",
		q.String(), qcText, s.Cost.Canonical(), s.Val.Canonical(),
		canonFloat(s.Budget), s.K, s.MaxPkgSize, canonFloat(s.Bound))
	return b.String(), deps, qEx && qcEx, nil
}

// MetricSpec is the JSON wire form of a distance function.
type MetricSpec struct {
	Kind    string             `json:"kind"` // absdiff | discrete | boolflip | table
	Name    string             `json:"name,omitempty"`
	Entries map[string]float64 `json:"entries,omitempty"` // "a|b" -> distance
}

// Build constructs the metric a MetricSpec describes.
func (s MetricSpec) Build() (relax.Metric, error) {
	switch s.Kind {
	case "absdiff":
		return relax.AbsDiff(), nil
	case "discrete":
		return relax.Discrete(), nil
	case "boolflip":
		return relax.BoolFlip(), nil
	case "table":
		entries := map[[2]string]float64{}
		for k, d := range s.Entries {
			// Keys are "a|b".
			var a, b string
			for i := 0; i < len(k); i++ {
				if k[i] == '|' {
					a, b = k[:i], k[i+1:]
					break
				}
			}
			if a == "" || b == "" {
				return relax.Metric{}, fmt.Errorf("spec: table key %q is not of the form \"a|b\"", k)
			}
			entries[[2]string{a, b}] = d
		}
		name := s.Name
		if name == "" {
			name = "table"
		}
		return relax.Table(name, entries), nil
	default:
		return relax.Metric{}, fmt.Errorf("spec: unknown metric kind %q", s.Kind)
	}
}

// Canonical renders the metric spec deterministically: table entries in
// sorted key order, with the free-form components (kind, name, entry keys)
// length-prefixed so no choice of names or keys can make two different
// metrics render identically.
func (s MetricSpec) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s{", CanonString(s.Kind), CanonString(s.Name))
	keys := make([]string, 0, len(s.Entries))
	for k := range s.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", CanonString(k), canonFloat(s.Entries[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// CanonString length-prefixes a free-form string for use inside canonical
// fingerprint text, so concatenations cannot collide ("ab"+"c" vs
// "a"+"bc"); the serving layer uses it for collection names too.
func CanonString(s string) string { return fmt.Sprintf("%d:%s", len(s), s) }

// RelaxSpec is the JSON wire form of a QRPP instance: which discovered
// relaxation points to enable (by index into relax.Points' output) and with
// which metric.
type RelaxSpec struct {
	Points    []RelaxPointSpec `json:"points"`
	Bound     float64          `json:"bound"`
	GapBudget float64          `json:"gapBudget"`
}

// RelaxPointSpec selects one relaxation point.
type RelaxPointSpec struct {
	Index  int        `json:"index"`
	Metric MetricSpec `json:"metric"`
}

// sortedPoints returns the point selections in canonical order — by index,
// ties by metric fingerprint. Build and Canonical both work from this
// order, so two specs selecting the same points differently ordered build
// the same instance and render the same fingerprint (and therefore share a
// cache entry in the serving layer).
func (s RelaxSpec) sortedPoints() []RelaxPointSpec {
	ps := append([]RelaxPointSpec(nil), s.Points...)
	sort.SliceStable(ps, func(i, j int) bool {
		if ps[i].Index != ps[j].Index {
			return ps[i].Index < ps[j].Index
		}
		return ps[i].Metric.Canonical() < ps[j].Metric.Canonical()
	})
	return ps
}

// Build resolves the spec against a problem's selection query. Points are
// resolved in canonical order (see sortedPoints), so the instance — and
// with it the relaxation search — is independent of the order the request
// listed them in.
func (s RelaxSpec) Build(prob *core.Problem) (relax.Instance, error) {
	points, err := relax.Points(prob.Q)
	if err != nil {
		return relax.Instance{}, err
	}
	var chosen []relax.Point
	for _, ps := range s.sortedPoints() {
		if ps.Index < 0 || ps.Index >= len(points) {
			return relax.Instance{}, fmt.Errorf("spec: relaxation point index %d out of range (query has %d points)",
				ps.Index, len(points))
		}
		m, err := ps.Metric.Build()
		if err != nil {
			return relax.Instance{}, err
		}
		chosen = append(chosen, points[ps.Index].WithMetric(m))
	}
	return relax.Instance{
		Problem:   prob,
		Points:    chosen,
		Bound:     s.Bound,
		GapBudget: s.GapBudget,
	}, nil
}

// Canonical renders the relaxation spec deterministically, with the point
// selections in canonical order — the same order Build resolves them in.
func (s RelaxSpec) Canonical() string {
	var b strings.Builder
	b.WriteString("relax[")
	for i, p := range s.sortedPoints() {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d:%s", p.Index, p.Metric.Canonical())
	}
	fmt.Fprintf(&b, "]bound=%s,gap=%s", canonFloat(s.Bound), canonFloat(s.GapBudget))
	return b.String()
}

// AdjustSpec is the JSON wire form of an ARPP instance; the extra
// collection D′ is supplied separately (a file for the CLI, an inline
// database for the daemon).
type AdjustSpec struct {
	Bound  float64 `json:"bound"`
	KPrime int     `json:"kPrime"`
}

// Build pairs the spec with a problem and extra collection.
func (s AdjustSpec) Build(prob *core.Problem, extra *relation.Database) adjust.Instance {
	return adjust.Instance{
		Problem: prob,
		Extra:   extra,
		Bound:   s.Bound,
		KPrime:  s.KPrime,
	}
}

// Canonical renders the adjustment spec deterministically.
func (s AdjustSpec) Canonical() string {
	return fmt.Sprintf("adjust[bound=%s,kPrime=%d]", canonFloat(s.Bound), s.KPrime)
}

// canonFloat renders a float in shortest exact round-trip form, so that
// fingerprints are stable across encoders.
func canonFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CanonFloat is the canonical float rendering used throughout fingerprint
// text, exported for layers that emit values which must compare equal to
// canonical fragments (the serving layer's suggestion output uses it).
func CanonFloat(v float64) string { return canonFloat(v) }
