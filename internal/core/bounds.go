package core

import (
	"math"
	"sync/atomic"

	"repro/internal/relation"
)

// This file is the bound layer of the branch-and-bound engine: admissible
// extension bounds for the stock aggregators (Bounder and its suffix-table
// implementations), the live pruning floor shared by all walkers of one
// solve (searchFloor), and the per-solve strategy object that bundles both
// for the serial and parallel engines. The engine stays bitwise-equal to the
// exhaustive enumeration because every cut subtree is *provably* free of
// packages that could change the answer: the cost lower bound exceeding the
// budget means no extension is valid, and the val upper bound falling below
// the floor means no extension can beat the current answer (the k-th best
// rating, an RPP selection's minimum, or a counting/feasibility threshold).

// Bounder yields admissible bounds for the subset-DFS over the canonically
// sorted candidate list. All queries concern the strict extensions of the
// current path P: packages P ∪ E with E a non-empty subset of
// cands[start:] and |E| ≤ rem. cur is the aggregate of P itself (the
// incremental stepper value) and pathLen = |P| ≥ 1.
//
// Upper must over-approximate (≥ the true aggregate of every such
// extension) and Lower must under-approximate; equality is allowed. The
// stock bounders are admissible for floating-point evaluation, not just in
// exact arithmetic: the additive bounders fold their suffix tables in a
// different association than the engine's steppers, so they widen every
// bound by an explicit rounding margin (fpMargin) covering the worst-case
// error of both folds; min/max/count/const bounds involve no rounding at
// all. A NaN anywhere in the suffix poisons the bound into NaN, which
// never prunes (all floor and budget comparisons are written to fail on
// NaN).
//
// A Bounder is built once per solve from the memoised candidate list and is
// read-only afterwards, so one instance is shared by all parallel workers.
type Bounder interface {
	// Upper returns an optimistic upper bound on agg(P ∪ E).
	Upper(cur float64, pathLen, start, rem int) float64
	// Lower returns a pessimistic lower bound on agg(P ∪ E).
	Lower(cur float64, pathLen, start, rem int) float64
}

// ---------------------------------------------------------------------------
// Stock bounder implementations: O(n) suffix tables, O(1) queries.
// ---------------------------------------------------------------------------

// sumBounds serves the per-tuple-additive aggregators (SumAttr, NegSumAttr,
// WeightedSum): agg(P ∪ E) = cur + Σ_{t∈E} w(t). Suffix tables over the
// canonical candidate order give the extremal achievable gain/loss:
//
//	max Σ over non-empty E, |E| ≤ rem  ≤  min(posSum, rem·maxW)  (or maxW
//	when the suffix has no positive weight: the best move is the single
//	largest element), and symmetrically for the minimum.
//
// The engine's steppers fold the same terms left-to-right along the DFS
// path, while these tables fold them right-to-left per suffix — two
// floating-point results that can differ by accumulated rounding even
// though they sum the same multiset. Every query therefore widens its
// bound by fpMargin over the total term magnitude (absSum), making the
// bounds admissible for the value the engine will actually compute, not
// merely for the exact sum.
type sumBounds struct {
	terms  int       // fl additions per tuple (1 for attr sums, |attrs| for WeightedSum)
	posSum []float64 // posSum[i] = Σ max(w_j, 0) for j ≥ i
	negSum []float64 // negSum[i] = Σ min(w_j, 0) for j ≥ i
	absSum []float64 // absSum[i] = Σ |w_j| for j ≥ i (rounding-margin magnitude)
	maxW   []float64 // max single weight in cands[i:]
	minW   []float64 // min single weight in cands[i:]
}

func newSumBounds(cands []relation.Tuple, terms int, w func(relation.Tuple) float64) *sumBounds {
	n := len(cands)
	b := &sumBounds{
		terms:  terms,
		posSum: make([]float64, n+1), negSum: make([]float64, n+1),
		absSum: make([]float64, n+1),
		maxW:   make([]float64, n+1), minW: make([]float64, n+1),
	}
	b.maxW[n], b.minW[n] = math.Inf(-1), math.Inf(1)
	for i := n - 1; i >= 0; i-- {
		wi := w(cands[i])
		b.posSum[i], b.negSum[i] = b.posSum[i+1], b.negSum[i+1]
		switch {
		case wi > 0:
			b.posSum[i] += wi
		case wi < 0:
			b.negSum[i] += wi
		case math.IsNaN(wi): // poison both sums: NaN bounds never prune
			b.posSum[i] += wi
			b.negSum[i] += wi
		}
		b.absSum[i] = b.absSum[i+1] + math.Abs(wi)
		b.maxW[i] = math.Max(b.maxW[i+1], wi)
		b.minW[i] = math.Min(b.minW[i+1], wi)
	}
	return b
}

// ulp is the distance from 1.0 to the next float64 (2^−52), the unit the
// rounding margins are denominated in.
const ulp = 2.220446049250313e-16

// margin over-approximates the worst-case rounding gap between any two
// fold orders of the involved terms: cur plus at most rem tuples'
// contributions from cands[start:]. Standard error analysis bounds each
// fold's deviation from the exact sum by ~m·u·Σ|terms| for m additions;
// 4·(m+2) ulps of the total magnitude generously covers both folds and
// the min(·, rem·maxW) product. A NaN or ±Inf magnitude yields a NaN/∞
// margin, which (by design) disables the prune.
func (b *sumBounds) margin(cur float64, start, rem int) float64 {
	if avail := len(b.posSum) - 1 - start; rem > avail {
		rem = avail
	}
	m := b.terms*rem + 2
	return float64(m) * (4 * ulp) * (math.Abs(cur) + b.absSum[start])
}

func (b *sumBounds) Upper(cur float64, _, start, rem int) float64 {
	gain := b.maxW[start] // best single extension; covers all-negative suffixes
	if ps := b.posSum[start]; ps > 0 {
		gain = ps
		if c := float64(rem) * b.maxW[start]; c < gain {
			gain = c
		}
	} else if math.IsNaN(b.posSum[start]) {
		gain = b.posSum[start]
	}
	return cur + gain + b.margin(cur, start, rem)
}

func (b *sumBounds) Lower(cur float64, _, start, rem int) float64 {
	loss := b.minW[start]
	if ns := b.negSum[start]; ns < 0 {
		loss = ns
		if c := float64(rem) * b.minW[start]; c > loss {
			loss = c
		}
	} else if math.IsNaN(b.negSum[start]) {
		loss = b.negSum[start]
	}
	return cur + loss - b.margin(cur, start, rem)
}

// countBounds serves Count and CountOrInf: every strict extension has
// between pathLen+1 and pathLen+min(rem, |suffix|) tuples. (The empty
// package's ∞ cost is irrelevant here — extensions are never empty.)
type countBounds struct{ n int }

func (b countBounds) Upper(_ float64, pathLen, start, rem int) float64 {
	avail := b.n - start
	if rem < avail {
		avail = rem
	}
	return float64(pathLen + avail)
}

func (b countBounds) Lower(_ float64, pathLen, _, _ int) float64 {
	return float64(pathLen + 1)
}

// minMaxBounds serves MinAttr and MaxAttr via suffix attribute extrema:
// min(P ∪ E) lies in [min(cur, sufMin), min(cur, sufMax)] and
// max(P ∪ E) in [max(cur, sufMin), max(cur, sufMax)].
type minMaxBounds struct {
	isMin  bool
	sufMin []float64 // min attribute value in cands[i:]
	sufMax []float64 // max attribute value in cands[i:]
}

func newMinMaxBounds(cands []relation.Tuple, attr int, isMin bool) *minMaxBounds {
	n := len(cands)
	b := &minMaxBounds{
		isMin:  isMin,
		sufMin: make([]float64, n+1), sufMax: make([]float64, n+1),
	}
	b.sufMin[n], b.sufMax[n] = math.Inf(1), math.Inf(-1)
	for i := n - 1; i >= 0; i-- {
		v := cands[i][attr].Float64()
		b.sufMin[i] = math.Min(b.sufMin[i+1], v)
		b.sufMax[i] = math.Max(b.sufMax[i+1], v)
	}
	return b
}

func (b *minMaxBounds) Upper(cur float64, _, start, _ int) float64 {
	if b.isMin {
		return math.Min(cur, b.sufMax[start])
	}
	return math.Max(cur, b.sufMax[start])
}

func (b *minMaxBounds) Lower(cur float64, _, start, _ int) float64 {
	if b.isMin {
		return math.Min(cur, b.sufMin[start])
	}
	return math.Max(cur, b.sufMin[start])
}

// constBounds serves ConstAgg: every package aggregates to v.
type constBounds struct{ v float64 }

func (b constBounds) Upper(float64, int, int, int) float64 { return b.v }
func (b constBounds) Lower(float64, int, int, int) float64 { return b.v }

// singletonBounds serves SingletonVal: the path already holds at least one
// tuple, so every strict extension is a non-singleton and aggregates to
// exactly −∞. Under any finite floor this cuts the whole forest below depth
// one — the item embedding's search space collapses to the candidate list.
type singletonBounds struct{}

func (singletonBounds) Upper(float64, int, int, int) float64 { return math.Inf(-1) }
func (singletonBounds) Lower(float64, int, int, int) float64 { return math.Inf(-1) }

// ---------------------------------------------------------------------------
// The live pruning floor.
// ---------------------------------------------------------------------------

// searchFloor is the live val floor of one solve: subtrees whose optimistic
// val bound cannot reach it are cut. The floor starts at a solver-chosen
// threshold (−∞ for top-k searches, B for counting/feasibility, the
// selection minimum for RPP) and only ever rises; raise is an atomic
// float64 max, so the parallel workers tighten one shared floor
// cooperatively and every tightening immediately benefits all subtrees
// still being walked.
//
// Soundness of a raise: the caller must guarantee that k packages rated at
// least the new floor already exist (for top-k floors) or that packages
// below it cannot affect the answer (static thresholds). Cutting is strict
// — a subtree survives when its bound ties the floor — except for
// exclusive floors (DecideTopK's "strictly above" witness condition), where
// a tie can be cut too.
type searchFloor struct {
	bits atomic.Uint64 // math.Float64bits of the current floor
	excl bool          // packages must rate strictly above the floor
}

// newFloor builds a floor starting at v; excl marks "strictly above"
// semantics (prune when bound ≤ floor rather than bound < floor).
func newFloor(v float64, excl bool) *searchFloor {
	f := &searchFloor{excl: excl}
	f.bits.Store(math.Float64bits(v))
	return f
}

// value returns the current floor.
func (f *searchFloor) value() float64 {
	return math.Float64frombits(f.bits.Load())
}

// raise lifts the floor to v when v is higher (atomic max; NaN ignored).
func (f *searchFloor) raise(v float64) {
	if math.IsNaN(v) {
		return
	}
	for {
		old := f.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// cuts reports whether an optimistic val bound ub rules out a subtree. NaN
// bounds never cut (both comparisons fail), so unbounded aggregates degrade
// to exhaustive search instead of unsound pruning.
func (f *searchFloor) cuts(ub float64) bool {
	v := f.value()
	if f.excl {
		return ub <= v
	}
	return ub < v
}

// ---------------------------------------------------------------------------
// The per-solve strategy.
// ---------------------------------------------------------------------------

// strategy is the pruning configuration of one solve, threaded through the
// serial walker and every parallel worker alike (the "strategy layer"): the
// cost aggregator's pessimistic bounder gating on the budget, and the val
// aggregator's optimistic bounder gating on the live floor. Either side is
// nil when the aggregator has no bounder (opaque Func aggregators) or the
// solver has no threshold (plain enumeration), in which case that check
// degrades to the seed behaviour — the monotone-cost budget test only.
//
// The upper layers need no code of their own to benefit: relax.Decide(Ctx)
// and adjust.Decide(Ctx) run on ExistsKValid(ParallelCtx) and the serving
// layer on the parallel solvers, so their feasibility searches inherit the
// same cuts.
type strategy struct {
	costLB Bounder
	valUB  Bounder
	floor  *searchFloor
}

// active reports whether any bound check can fire.
func (st *strategy) active() bool {
	return st.costLB != nil || (st.valUB != nil && st.floor != nil)
}

// cutBelow evaluates both bound gates for the subtree of strict extensions
// below the current node — packages drawing at most rem more tuples from
// cands[next:]. cost and val are the current path's aggregates (val is
// only read when a floor is installed, so callers may pass 0 without
// one). The serial walker, the parallel workers and the oracle walk all
// share this one method, tallying into caller-local counters that are
// flushed per walk.
func (st *strategy) cutBelow(cost, val float64, pathLen, next, rem int, budget float64, boundEvals, prunes *int64) bool {
	if st.costLB != nil {
		*boundEvals++
		if st.costLB.Lower(cost, pathLen, next, rem) > budget {
			*prunes++
			return true
		}
	}
	if st.floor != nil {
		*boundEvals++
		if st.floor.cuts(st.valUB.Upper(val, pathLen, next, rem)) {
			*prunes++
			return true
		}
	}
	return false
}

// newStrategy assembles the solve's pruning state; call after
// Candidates(). The per-aggregator bound tables depend only on the
// memoised candidate list, so they are built once per Problem and reused
// across solves (InvalidateCache drops them together with the candidate
// cache — call it after mutating DB, Q, Cost or Val). A nil floor
// disables val pruning; Problem.Exhaustive disables the bound layer
// entirely (the escape hatch the Pruned-vs-Exhaustive benchmarks and
// equivalence tests flip).
func (p *Problem) newStrategy(floor *searchFloor) strategy {
	if p.Exhaustive {
		return strategy{}
	}
	if !p.boundsReady {
		p.costBounds = p.Cost.NewBounder(p.candList)
		p.valBounds = p.Val.NewBounder(p.candList)
		p.boundsReady = true
	}
	st := strategy{costLB: p.costBounds}
	if floor != nil && p.valBounds != nil {
		st.valUB = p.valBounds
		st.floor = floor
	}
	return st
}
