package core

import (
	"fmt"
	"sort"

	"repro/internal/query"
	"repro/internal/relation"
)

// Problem bundles an instance of the package recommendation model:
// (Q, D, Qc, cost(), val(), C, k) in the paper's notation, plus the
// predefined polynomial bound on package sizes.
//
// Compatibility constraints come in two forms, matching Section 2 and
// Corollary 6.3: a query Qc (satisfied by N iff Qc(N, D) = ∅, where Qc sees
// the package as the relation named by Q's output schema), or an arbitrary
// PTIME predicate CompatFn. Both nil means constraints are absent (the
// setting of Theorem 4.5). If both are set they must both hold.
type Problem struct {
	DB *relation.Database
	Q  query.Query
	Qc query.Query
	// CompatFn reports whether the package is compatible; it realises the
	// PTIME compatibility constraints of Corollary 6.3.
	CompatFn func(Package, *relation.Database) (bool, error)
	Cost     Aggregator
	Val      Aggregator
	Budget   float64 // the cost budget C
	K        int
	// MaxPkgSize is the predefined bound on |N|; 0 means the default
	// polynomial bound p(|D|) = |Q(D)| (every package is a subset of the
	// answer, so this is the tightest sound default). Corollary 6.1 sets it
	// to a constant Bp.
	MaxPkgSize int
	// Prune is an optional hereditary-infeasibility hint: Prune(N) = true
	// asserts that N and every superset of N are invalid, letting the
	// enumeration cut the branch. Soundness is the caller's obligation; the
	// reductions use it for assignment-consistency checks, which are
	// hereditary even when their cost functions are not monotone.
	Prune func(Package) bool
	// Counters, when non-nil, receives engine cost accounting (DFS nodes
	// visited, packages yielded, subtrees pruned, bound evaluations) from
	// every walk over this problem; see EngineCounters.
	Counters *EngineCounters
	// Exhaustive disables the branch-and-bound layer: no bounders are
	// consulted and every solver degrades to the plain enumeration with
	// only the monotone-cost budget check. Results are identical either
	// way — the flag exists for the Pruned-vs-Exhaustive benchmarks and
	// the equivalence tests that prove exactly that.
	Exhaustive bool
	// TrackProvenance asks Prepare to build the per-candidate read table
	// (see Provenance) alongside the candidate answer, using the traced
	// evaluator — same join work, plus lineage recording priced per
	// candidate. Only the traceable fragment (CQ/UCQ) supports it; for
	// other languages the flag is ignored and Provenance() returns nil.
	TrackProvenance bool

	candidates *relation.Relation
	candList   []relation.Tuple
	// Memoised bound tables over candList (see newStrategy); rebuilt after
	// InvalidateCache.
	costBounds  Bounder
	valBounds   Bounder
	boundsReady bool
	// prov is the read-provenance table (TrackProvenance); advanced
	// problems inherit a rebuilt table instead of re-tracing.
	prov *Provenance
}

// Validate checks the instance is well-formed.
func (p *Problem) Validate() error {
	if p.DB == nil || p.Q == nil {
		return fmt.Errorf("core: problem needs a database and a selection query")
	}
	if err := p.Q.Validate(); err != nil {
		return err
	}
	if p.Qc != nil {
		if err := p.Qc.Validate(); err != nil {
			return err
		}
	}
	if p.K < 0 || p.MaxPkgSize < 0 {
		return fmt.Errorf("core: k and MaxPkgSize must be non-negative")
	}
	return nil
}

// Candidates returns Q(D), memoised. Its tuples are the items packages are
// built from; the memoised list is kept in canonical tuple order, the
// invariant that lets the enumeration engine materialise packages and fold
// aggregator state without re-sorting.
func (p *Problem) Candidates() (*relation.Relation, error) {
	if p.candidates == nil {
		var r *relation.Relation
		var err error
		var reads map[string][]string
		if p.TrackProvenance && query.Traceable(p.Q) {
			r, reads, err = query.TraceEval(p.Q, p.DB)
		} else {
			r, err = p.Q.Eval(p.DB)
		}
		if err != nil {
			return nil, err
		}
		p.candidates = r
		ts := append([]relation.Tuple(nil), r.Tuples()...)
		sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
		p.candList = ts
		if reads != nil {
			p.prov = newProvenance(p, ts, reads)
		}
		if p.Counters != nil {
			p.Counters.Prepares.Add(1)
		}
	}
	return p.candidates, nil
}

// CandidateList returns the memoised candidate answer Q(D) as a list in
// canonical tuple order — the exact item order the enumeration engine walks
// and the order dfsPath materialises packages in. Alternative backends
// (internal/pbo) number their decision variables from this list, so their
// item numbering, package keys and tie-breaking agree with the engine's
// canonical order. The returned slice is the memoised state itself: callers
// must treat it as read-only.
func (p *Problem) CandidateList() ([]relation.Tuple, error) {
	if _, err := p.Candidates(); err != nil {
		return nil, err
	}
	return p.candList, nil
}

// Prepare forces the lazily memoised per-Problem state — the candidate
// answer Q(D) in canonical order and the aggregator bound tables — to be
// built now. Solvers build this state on first use, but that first use is
// a write: a Problem may be shared by concurrent solves only after Prepare
// (or one completed solve) has run, when the engine touches the problem
// read-only. The serving layer's batch pipeline uses this to evaluate a
// spec's candidates once and share the bounders across every sub-solve of
// the batch.
func (p *Problem) Prepare() error {
	if _, err := p.Candidates(); err != nil {
		return err
	}
	p.newStrategy(nil) // memoises the cost/val bound tables
	return nil
}

// InvalidateCache drops the memoised candidate answer and the bound
// tables built over it, for callers that mutate DB, Q or the aggregators.
func (p *Problem) InvalidateCache() {
	p.candidates = nil
	p.candList = nil
	p.costBounds = nil
	p.valBounds = nil
	p.boundsReady = false
	p.prov = nil
}

// maxSize resolves the package size bound.
func (p *Problem) maxSize() (int, error) {
	if p.MaxPkgSize > 0 {
		return p.MaxPkgSize, nil
	}
	c, err := p.Candidates()
	if err != nil {
		return 0, err
	}
	return c.Len(), nil
}

// WithMaxSize returns a copy of the problem with packages bounded by bp, the
// constant-bound special case of Corollary 6.1 (bp = 1 with absent Qc is the
// item setting of Theorem 6.4).
func (p *Problem) WithMaxSize(bp int) *Problem {
	c := *p
	c.MaxPkgSize = bp
	c.InvalidateCache()
	return &c
}

// WithCounters returns a shallow copy of the problem whose engine
// accounting flows to c instead of p.Counters. The memoised solve state
// (candidate list, bound tables, provenance) is shared with the receiver,
// so on a prepared problem the copy is safe for concurrent read-only
// solves alongside the original. This is the per-solve half of the
// accounting: run one solve on the copy, read c's tallies for that solve
// alone, then flush them into the shared totals with EngineCounters.AddTo.
func (p *Problem) WithCounters(c *EngineCounters) *Problem {
	cp := *p
	cp.Counters = c
	return &cp
}

// Compatible reports whether the package satisfies the compatibility
// constraints: Qc(N, D) = ∅ and/or CompatFn.
func (p *Problem) Compatible(pkg Package) (bool, error) {
	if p.Qc != nil {
		schema := relation.AutoSchema(p.Q.OutName(), p.Q.Arity())
		db := p.DB.WithRelation(pkg.Relation(schema))
		ans, err := p.Qc.Eval(db)
		if err != nil {
			return false, err
		}
		if ans.Len() != 0 {
			return false, nil
		}
	}
	if p.CompatFn != nil {
		ok, err := p.CompatFn(pkg, p.DB)
		if err != nil || !ok {
			return ok, err
		}
	}
	return true, nil
}

// Valid reports whether pkg satisfies conditions (1)–(4) of a top-k package
// selection: pkg ⊆ Q(D), |pkg| within the size bound, Qc(pkg, D) = ∅, and
// cost(pkg) ≤ C.
func (p *Problem) Valid(pkg Package) (bool, error) {
	cands, err := p.Candidates()
	if err != nil {
		return false, err
	}
	ms, err := p.maxSize()
	if err != nil {
		return false, err
	}
	if pkg.Len() > ms {
		return false, nil
	}
	for _, t := range pkg.Tuples() {
		if !cands.Contains(t) {
			return false, nil
		}
	}
	if p.Cost.Eval(pkg) > p.Budget {
		return false, nil
	}
	return p.Compatible(pkg)
}

// ValidAbove reports whether pkg is valid for (Q, D, Qc, cost, val, C, B),
// i.e. valid with val(pkg) ≥ B (Section 5's validity notion).
func (p *Problem) ValidAbove(pkg Package, bound float64) (bool, error) {
	ok, err := p.Valid(pkg)
	if err != nil || !ok {
		return ok, err
	}
	return p.Val.Eval(pkg) >= bound, nil
}

// EnumerateValid enumerates every valid non-empty package in a
// deterministic order, invoking yield for each; yield returning false stops
// the enumeration. The search walks subsets of Q(D) depth-first in
// canonical tuple order, pruning over-budget branches when the cost
// aggregator is monotone or carries a Bounder (all stock constructors do);
// cost is evaluated incrementally along the DFS path when the cost
// aggregator provides a Stepper. No val floor applies here — every valid
// package is enumerated. This is the deterministic simulation of the
// paper's oracle machines; its worst case is exponential in |Q(D)|, as the
// complexity results require.
func (p *Problem) EnumerateValid(yield func(Package) (bool, error)) error {
	return p.enumerateValidPath(func(pkg Package, _ *dfsPath) (bool, error) {
		return yield(pkg)
	})
}

// ExistsKValid reports whether k pairwise-distinct valid packages rated at
// least B exist, the feasibility check shared by the query-relaxation and
// adjustment problems (Sections 7 and 8). B is a static floor for the
// bound layer: subtrees that cannot reach it hold no qualifying package.
func (p *Problem) ExistsKValid(k int, bound float64) (bool, error) {
	if k <= 0 {
		return true, nil
	}
	found := 0
	err := p.enumerateValidFloor(newFloor(bound, false), func(pkg Package, path *dfsPath) (bool, error) {
		if path.val(pkg) >= bound {
			found++
			if found >= k {
				return false, nil
			}
		}
		return true, nil
	})
	return found >= k, err
}
