package core

import (
	"math"
	"sort"

	"repro/internal/relation"
)

// Aggregator is a PTIME-computable function from packages to ℝ, the model's
// cost(), val() and f() functions (Section 2). The paper assumes nothing
// beyond PTIME computability, so the honest realisation is an arbitrary Go
// function; the stock constructors below cover the aggregate shapes the
// paper mentions (count, sum, min, max, avg, weighted combinations).
//
// Monotone marks aggregators that are nondecreasing with respect to package
// inclusion over non-empty packages; the enumeration engine uses it to prune
// supersets once cost exceeds the budget. Marking a non-monotone function as
// monotone yields unsound pruning, so the flag is only set by constructors
// whose monotonicity is structural (Count, CountOrInf) or asserted by the
// caller (WithMonotone).
type Aggregator struct {
	name    string
	fn      func(Package) float64
	mono    bool
	stepper func() Stepper
	bounds  func(cands []relation.Tuple) Bounder
}

// Stepper is the incremental form of an aggregator: it maintains the
// aggregate of a package that grows and shrinks in LIFO order, the exact
// discipline of the subset-DFS enumeration engine. Push adds a tuple to the
// tracked package, Pop removes the most recently pushed tuple, and Value
// returns the aggregate of the current package in O(1).
//
// The enumeration engine pushes candidates in canonical tuple order, so the
// stock steppers accumulate floating-point operations in exactly the order
// Eval does over the materialised package — Value is bitwise-equal to Eval,
// not merely approximately equal. A stepper is owned by a single DFS path
// (one goroutine); the parallel engine creates one per worker.
type Stepper interface {
	Push(t relation.Tuple)
	Pop()
	Value() float64
}

// Func builds an aggregator from an arbitrary function.
func Func(name string, fn func(Package) float64) Aggregator {
	return Aggregator{name: name, fn: fn}
}

// Name returns the aggregator's display name.
func (a Aggregator) Name() string { return a.name }

// Eval applies the aggregator.
func (a Aggregator) Eval(p Package) float64 { return a.fn(p) }

// Monotone reports whether the aggregator is nondecreasing under inclusion
// of non-empty packages.
func (a Aggregator) Monotone() bool { return a.mono }

// WithMonotone returns a copy asserted monotone (caller's responsibility,
// e.g. a sum over an attribute known to be non-negative).
func (a Aggregator) WithMonotone() Aggregator {
	a.mono = true
	return a
}

// NewStepper returns a fresh incremental evaluator, or nil when the
// aggregator has none (arbitrary Func aggregators); callers fall back to
// full recomputation via Eval. All stock constructors provide steppers.
func (a Aggregator) NewStepper() Stepper {
	if a.stepper == nil {
		return nil
	}
	return a.stepper()
}

// WithStepper returns a copy carrying an incremental evaluator factory. The
// stepper must agree with Eval under the LIFO push/pop discipline; soundness
// is the caller's obligation, as with WithMonotone.
func (a Aggregator) WithStepper(newStepper func() Stepper) Aggregator {
	a.stepper = newStepper
	return a
}

// NewBounder builds the aggregator's extension-bound tables over the
// canonically sorted candidate list, or returns nil when the aggregator has
// none (arbitrary Func aggregators); the branch-and-bound engine then skips
// the corresponding prune. All stock constructors except AvgAttr (whose
// mean is neither monotone nor suffix-decomposable) provide bounders.
func (a Aggregator) NewBounder(cands []relation.Tuple) Bounder {
	if a.bounds == nil {
		return nil
	}
	return a.bounds(cands)
}

// WithBounder returns a copy carrying an extension-bound factory. The
// bounder must be admissible with respect to Eval (see Bounder); soundness
// is the caller's obligation, as with WithMonotone and WithStepper.
func (a Aggregator) WithBounder(newBounder func(cands []relation.Tuple) Bounder) Aggregator {
	a.bounds = newBounder
	return a
}

// stackStepper is the shared stepper implementation: vals[i] holds the
// accumulator after the first i+1 pushes, so Pop is an exact state restore
// (no inverse floating-point operation is ever applied). step folds one
// tuple into the accumulator; finish (optional) maps the raw accumulator and
// package size to the aggregate (e.g. the mean's division); empty is the
// aggregate of the empty package and seed the accumulator's identity.
type stackStepper struct {
	seed   float64
	empty  float64
	vals   []float64
	step   func(acc float64, t relation.Tuple) float64
	finish func(acc float64, n int) float64
}

func (s *stackStepper) Push(t relation.Tuple) {
	acc := s.seed
	if len(s.vals) > 0 {
		acc = s.vals[len(s.vals)-1]
	}
	s.vals = append(s.vals, s.step(acc, t))
}

func (s *stackStepper) Pop() { s.vals = s.vals[:len(s.vals)-1] }

func (s *stackStepper) Value() float64 {
	if len(s.vals) == 0 {
		return s.empty
	}
	top := s.vals[len(s.vals)-1]
	if s.finish != nil {
		return s.finish(top, len(s.vals))
	}
	return top
}

// countBounder is the shared bound factory of Count and CountOrInf.
func countBounder(cands []relation.Tuple) Bounder { return countBounds{n: len(cands)} }

// Count returns cost(N) = |N|.
func Count() Aggregator {
	return Aggregator{name: "count", mono: true,
		fn:      func(p Package) float64 { return float64(p.Len()) },
		stepper: countStepper(0), bounds: countBounder}
}

// CountOrInf returns the paper's standard cost function: cost(N) = |N| for
// non-empty N and cost(∅) = ∞, so the empty package is never a valid
// recommendation.
func CountOrInf() Aggregator {
	return Aggregator{name: "countOrInf", mono: true, fn: func(p Package) float64 {
		if p.IsEmpty() {
			return math.Inf(1)
		}
		return float64(p.Len())
	}, stepper: countStepper(math.Inf(1)), bounds: countBounder}
}

func countStepper(empty float64) func() Stepper {
	return func() Stepper {
		return &stackStepper{empty: empty,
			step: func(acc float64, _ relation.Tuple) float64 { return acc + 1 }}
	}
}

// SumAttr returns the sum of attribute i over the package's items. Combine
// with WithMonotone when the attribute is known non-negative.
func SumAttr(i int) Aggregator {
	return Aggregator{name: "sum", fn: func(p Package) float64 {
		var s float64
		for _, t := range p.Tuples() {
			s += t[i].Float64()
		}
		return s
	}, stepper: func() Stepper {
		return &stackStepper{
			step: func(acc float64, t relation.Tuple) float64 { return acc + t[i].Float64() }}
	}, bounds: func(cands []relation.Tuple) Bounder {
		return newSumBounds(cands, 1, func(t relation.Tuple) float64 { return t[i].Float64() })
	}}
}

// NegSumAttr returns the negated sum of attribute i: the paper's "the higher
// the price, the lower the rating" shape from Example 1.1.
func NegSumAttr(i int) Aggregator {
	return Aggregator{name: "negsum", fn: func(p Package) float64 {
		var s float64
		for _, t := range p.Tuples() {
			s -= t[i].Float64()
		}
		return s
	}, stepper: func() Stepper {
		return &stackStepper{
			step: func(acc float64, t relation.Tuple) float64 { return acc - t[i].Float64() }}
	}, bounds: func(cands []relation.Tuple) Bounder {
		return newSumBounds(cands, 1, func(t relation.Tuple) float64 { return -t[i].Float64() })
	}}
}

// MinAttr returns the minimum of attribute i (+∞ on the empty package). Its
// stepper is a stack of prefix minima, so Pop restores the previous minimum
// without rescanning.
func MinAttr(i int) Aggregator {
	return Aggregator{name: "min", fn: func(p Package) float64 {
		m := math.Inf(1)
		for _, t := range p.Tuples() {
			m = math.Min(m, t[i].Float64())
		}
		return m
	}, stepper: func() Stepper {
		return &stackStepper{seed: math.Inf(1), empty: math.Inf(1),
			step: func(acc float64, t relation.Tuple) float64 { return math.Min(acc, t[i].Float64()) }}
	}, bounds: func(cands []relation.Tuple) Bounder {
		return newMinMaxBounds(cands, i, true)
	}}
}

// MaxAttr returns the maximum of attribute i (−∞ on the empty package).
func MaxAttr(i int) Aggregator {
	return Aggregator{name: "max", fn: func(p Package) float64 {
		m := math.Inf(-1)
		for _, t := range p.Tuples() {
			m = math.Max(m, t[i].Float64())
		}
		return m
	}, stepper: func() Stepper {
		return &stackStepper{seed: math.Inf(-1), empty: math.Inf(-1),
			step: func(acc float64, t relation.Tuple) float64 { return math.Max(acc, t[i].Float64()) }}
	}, bounds: func(cands []relation.Tuple) Bounder {
		return newMinMaxBounds(cands, i, false)
	}}
}

// AvgAttr returns the mean of attribute i (0 on the empty package).
func AvgAttr(i int) Aggregator {
	return Aggregator{name: "avg", fn: func(p Package) float64 {
		if p.IsEmpty() {
			return 0
		}
		var s float64
		for _, t := range p.Tuples() {
			s += t[i].Float64()
		}
		return s / float64(p.Len())
	}, stepper: func() Stepper {
		return &stackStepper{
			step:   func(acc float64, t relation.Tuple) float64 { return acc + t[i].Float64() },
			finish: func(acc float64, n int) float64 { return acc / float64(n) }}
	}}
}

// WeightedSum returns Σ_i weights[i] · Σ_items attr_i, a multi-attribute
// utility in the spirit of the airfare/duration weighting of Example 1.1.
// Attributes are folded in ascending index order, so equal packages always
// get bitwise-equal ratings regardless of map iteration order.
func WeightedSum(weights map[int]float64) Aggregator {
	attrs := make([]int, 0, len(weights))
	for i := range weights {
		attrs = append(attrs, i)
	}
	sort.Ints(attrs)
	fold := func(acc float64, t relation.Tuple) float64 {
		for _, i := range attrs {
			acc += weights[i] * t[i].Float64()
		}
		return acc
	}
	return Aggregator{name: "weighted", fn: func(p Package) float64 {
		var s float64
		for _, t := range p.Tuples() {
			s = fold(s, t)
		}
		return s
	}, stepper: func() Stepper {
		return &stackStepper{step: fold}
	}, bounds: func(cands []relation.Tuple) Bounder {
		// The stepper folds |attrs| terms per tuple into the running
		// accumulator; the per-tuple weight here re-associates them, which
		// the bounder's rounding margin (sized by terms) accounts for.
		return newSumBounds(cands, len(attrs), func(t relation.Tuple) float64 { return fold(0, t) })
	}}
}

// ConstAgg returns the constant function v, used pervasively by the
// reductions.
func ConstAgg(v float64) Aggregator {
	return Aggregator{name: "const", mono: true,
		fn: func(Package) float64 { return v },
		stepper: func() Stepper {
			return &stackStepper{seed: v, empty: v,
				step: func(float64, relation.Tuple) float64 { return v }}
		},
		bounds: func([]relation.Tuple) Bounder { return constBounds{v: v} }}
}

// Utility is a per-item rating function f(), the item-recommendation model
// of Section 2.
type Utility func(relation.Tuple) float64

// UtilityAttr rates an item by attribute i.
func UtilityAttr(i int) Utility {
	return func(t relation.Tuple) float64 { return t[i].Float64() }
}

// UtilityNegAttr rates an item by the negated attribute i (lower is better).
func UtilityNegAttr(i int) Utility {
	return func(t relation.Tuple) float64 { return -t[i].Float64() }
}

// SingletonVal lifts an item utility to packages: val({s}) = f(s), matching
// the item/package embedding of Section 2. Its value on non-singletons is
// −∞ so such packages never win under the embedding's C = 1 budget anyway.
func SingletonVal(f Utility) Aggregator {
	return Aggregator{name: "singleton", fn: func(p Package) float64 {
		if p.Len() != 1 {
			return math.Inf(-1)
		}
		return f(p.Tuples()[0])
	}, stepper: func() Stepper {
		return &stackStepper{empty: math.Inf(-1),
			step: func(_ float64, t relation.Tuple) float64 { return f(t) },
			finish: func(acc float64, n int) float64 {
				if n != 1 {
					return math.Inf(-1)
				}
				return acc
			}}
	}, bounds: func([]relation.Tuple) Bounder { return singletonBounds{} }}
}
