package core

import (
	"math"

	"repro/internal/relation"
)

// Aggregator is a PTIME-computable function from packages to ℝ, the model's
// cost(), val() and f() functions (Section 2). The paper assumes nothing
// beyond PTIME computability, so the honest realisation is an arbitrary Go
// function; the stock constructors below cover the aggregate shapes the
// paper mentions (count, sum, min, max, avg, weighted combinations).
//
// Monotone marks aggregators that are nondecreasing with respect to package
// inclusion over non-empty packages; the enumeration engine uses it to prune
// supersets once cost exceeds the budget. Marking a non-monotone function as
// monotone yields unsound pruning, so the flag is only set by constructors
// whose monotonicity is structural (Count, CountOrInf) or asserted by the
// caller (WithMonotone).
type Aggregator struct {
	name string
	fn   func(Package) float64
	mono bool
}

// Func builds an aggregator from an arbitrary function.
func Func(name string, fn func(Package) float64) Aggregator {
	return Aggregator{name: name, fn: fn}
}

// Name returns the aggregator's display name.
func (a Aggregator) Name() string { return a.name }

// Eval applies the aggregator.
func (a Aggregator) Eval(p Package) float64 { return a.fn(p) }

// Monotone reports whether the aggregator is nondecreasing under inclusion
// of non-empty packages.
func (a Aggregator) Monotone() bool { return a.mono }

// WithMonotone returns a copy asserted monotone (caller's responsibility,
// e.g. a sum over an attribute known to be non-negative).
func (a Aggregator) WithMonotone() Aggregator {
	a.mono = true
	return a
}

// Count returns cost(N) = |N|.
func Count() Aggregator {
	return Aggregator{name: "count", mono: true,
		fn: func(p Package) float64 { return float64(p.Len()) }}
}

// CountOrInf returns the paper's standard cost function: cost(N) = |N| for
// non-empty N and cost(∅) = ∞, so the empty package is never a valid
// recommendation.
func CountOrInf() Aggregator {
	return Aggregator{name: "countOrInf", mono: true, fn: func(p Package) float64 {
		if p.IsEmpty() {
			return math.Inf(1)
		}
		return float64(p.Len())
	}}
}

// SumAttr returns the sum of attribute i over the package's items. Combine
// with WithMonotone when the attribute is known non-negative.
func SumAttr(i int) Aggregator {
	return Aggregator{name: "sum", fn: func(p Package) float64 {
		var s float64
		for _, t := range p.Tuples() {
			s += t[i].Float64()
		}
		return s
	}}
}

// NegSumAttr returns the negated sum of attribute i: the paper's "the higher
// the price, the lower the rating" shape from Example 1.1.
func NegSumAttr(i int) Aggregator {
	return Aggregator{name: "negsum", fn: func(p Package) float64 {
		var s float64
		for _, t := range p.Tuples() {
			s -= t[i].Float64()
		}
		return s
	}}
}

// MinAttr returns the minimum of attribute i (+∞ on the empty package).
func MinAttr(i int) Aggregator {
	return Aggregator{name: "min", fn: func(p Package) float64 {
		m := math.Inf(1)
		for _, t := range p.Tuples() {
			m = math.Min(m, t[i].Float64())
		}
		return m
	}}
}

// MaxAttr returns the maximum of attribute i (−∞ on the empty package).
func MaxAttr(i int) Aggregator {
	return Aggregator{name: "max", fn: func(p Package) float64 {
		m := math.Inf(-1)
		for _, t := range p.Tuples() {
			m = math.Max(m, t[i].Float64())
		}
		return m
	}}
}

// AvgAttr returns the mean of attribute i (0 on the empty package).
func AvgAttr(i int) Aggregator {
	return Aggregator{name: "avg", fn: func(p Package) float64 {
		if p.IsEmpty() {
			return 0
		}
		var s float64
		for _, t := range p.Tuples() {
			s += t[i].Float64()
		}
		return s / float64(p.Len())
	}}
}

// WeightedSum returns Σ_i weights[i] · Σ_items attr_i, a multi-attribute
// utility in the spirit of the airfare/duration weighting of Example 1.1.
func WeightedSum(weights map[int]float64) Aggregator {
	return Aggregator{name: "weighted", fn: func(p Package) float64 {
		var s float64
		for _, t := range p.Tuples() {
			for i, w := range weights {
				s += w * t[i].Float64()
			}
		}
		return s
	}}
}

// ConstAgg returns the constant function v, used pervasively by the
// reductions.
func ConstAgg(v float64) Aggregator {
	return Aggregator{name: "const", mono: true, fn: func(Package) float64 { return v }}
}

// Utility is a per-item rating function f(), the item-recommendation model
// of Section 2.
type Utility func(relation.Tuple) float64

// UtilityAttr rates an item by attribute i.
func UtilityAttr(i int) Utility {
	return func(t relation.Tuple) float64 { return t[i].Float64() }
}

// UtilityNegAttr rates an item by the negated attribute i (lower is better).
func UtilityNegAttr(i int) Utility {
	return func(t relation.Tuple) float64 { return -t[i].Float64() }
}

// SingletonVal lifts an item utility to packages: val({s}) = f(s), matching
// the item/package embedding of Section 2. Its value on non-singletons is
// −∞ so such packages never win under the embedding's C = 1 budget anyway.
func SingletonVal(f Utility) Aggregator {
	return Aggregator{name: "singleton", fn: func(p Package) float64 {
		if p.Len() != 1 {
			return math.Inf(-1)
		}
		return f(p.Tuples()[0])
	}}
}
