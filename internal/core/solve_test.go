package core

import (
	"math"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// bruteTopK computes the top-k selection by full subset enumeration,
// independent of EnumerateValid, for cross-checking FindTopK.
func bruteTopK(t *testing.T, p *Problem) ([]Package, bool) {
	t.Helper()
	cands, err := p.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	ts := cands.Tuples()
	var pkgs []Package
	var vals []float64
	for mask := 1; mask < 1<<len(ts); mask++ {
		var sub []relation.Tuple
		for i := range ts {
			if mask&(1<<i) != 0 {
				sub = append(sub, ts[i])
			}
		}
		pkg := NewPackage(sub...)
		ok, err := p.Valid(pkg)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			pkgs = append(pkgs, pkg)
			vals = append(vals, p.Val.Eval(pkg))
		}
	}
	if len(pkgs) < p.K {
		return nil, false
	}
	SortPackages(pkgs, vals)
	return pkgs[:p.K], true
}

func TestFindTopKMatchesBruteForce(t *testing.T) {
	for _, budget := range []float64{5, 15, 35, 60, 1000} {
		for k := 1; k <= 4; k++ {
			p := basicProblem(budget, k)
			got, ok, err := p.FindTopK()
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := bruteTopK(t, p)
			if ok != wantOK {
				t.Fatalf("budget %g k %d: ok = %v, brute = %v", budget, k, ok, wantOK)
			}
			if !ok {
				continue
			}
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("budget %g k %d: slot %d = %v, brute = %v", budget, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFindTopKOrdering(t *testing.T) {
	p := basicProblem(1000, 3)
	sel, ok, err := p.FindTopK()
	if err != nil || !ok {
		t.Fatalf("FindTopK: ok=%v err=%v", ok, err)
	}
	for i := 1; i < len(sel); i++ {
		if p.Val.Eval(sel[i-1]) < p.Val.Eval(sel[i]) {
			t.Fatal("selection not sorted by descending rating")
		}
	}
}

func TestDecideTopKAcceptsFindTopK(t *testing.T) {
	for _, budget := range []float64{15, 35, 1000} {
		for k := 1; k <= 3; k++ {
			p := basicProblem(budget, k)
			sel, ok, err := p.FindTopK()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
			accept, witness, err := p.DecideTopK(sel)
			if err != nil {
				t.Fatal(err)
			}
			if !accept {
				t.Fatalf("budget %g k %d: DecideTopK rejected FindTopK's answer (witness %v)", budget, k, witness)
			}
		}
	}
}

func TestDecideTopKRejectsSuboptimal(t *testing.T) {
	p := basicProblem(1000, 1)
	// The singleton {4} (rating 3) is valid but far from top-1 (the full
	// package rates 25).
	ok, witness, err := p.DecideTopK([]Package{NewPackage(relation.Ints(4, 5, 3))})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("suboptimal selection accepted")
	}
	if witness == nil {
		t.Fatal("expected a higher-rated witness package")
	}
	if p.Val.Eval(*witness) <= 3 {
		t.Fatalf("witness %v does not out-rate the rejected selection", witness)
	}
}

func TestDecideTopKRejectsMalformedSelections(t *testing.T) {
	p := basicProblem(1000, 2)
	a := NewPackage(relation.Ints(1, 10, 5))
	cases := []struct {
		name string
		sel  []Package
	}{
		{"wrong cardinality", []Package{a}},
		{"duplicates", []Package{a, a}},
		{"invalid member", []Package{a, NewPackage(relation.Ints(9, 9, 9))}},
	}
	for _, c := range cases {
		ok, _, err := p.DecideTopK(c.sel)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestMaxBound(t *testing.T) {
	// Budget 15: valid packages {1}(val 5), {4}(3), {1,4}(8).
	p := basicProblem(15, 2)
	b, ok, err := p.MaxBound()
	if err != nil || !ok {
		t.Fatalf("MaxBound: ok=%v err=%v", ok, err)
	}
	// Top-2 ratings are 8 and 5, so the max bound is 5.
	if b != 5 {
		t.Fatalf("MaxBound = %g, want 5", b)
	}
	for _, c := range []struct {
		b    float64
		want bool
	}{{5, true}, {8, false}, {3, false}, {100, false}} {
		got, err := p.IsMaxBound(c.b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("IsMaxBound(%g) = %v, want %v", c.b, got, c.want)
		}
	}
	// k larger than the number of valid packages: no bound exists.
	p4 := basicProblem(15, 4)
	if _, ok, err := p4.MaxBound(); err != nil || ok {
		t.Fatalf("MaxBound with infeasible k: ok=%v err=%v", ok, err)
	}
}

func TestCountValid(t *testing.T) {
	p := basicProblem(15, 1)
	for _, c := range []struct {
		bound float64
		want  int64
	}{{math.Inf(-1), 3}, {0, 3}, {4, 2}, {5, 2}, {6, 1}, {8, 1}, {9, 0}} {
		got, err := p.CountValid(c.bound)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("CountValid(%g) = %d, want %d", c.bound, got, c.want)
		}
	}
}

func TestFindTopKViaOracleAgreesWithFindTopK(t *testing.T) {
	// Integer-valued ratings: SumAttr over integer attributes.
	for _, budget := range []float64{15, 35, 1000} {
		for k := 1; k <= 3; k++ {
			p := basicProblem(budget, k)
			want, wantOK, err := p.FindTopK()
			if err != nil {
				t.Fatal(err)
			}
			got, ok, err := p.FindTopKViaOracle(0, 100)
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK {
				t.Fatalf("budget %g k %d: oracle ok=%v exhaustive ok=%v", budget, k, ok, wantOK)
			}
			if !ok {
				continue
			}
			// Ratings must agree slot by slot (the specific packages may
			// differ under ties; here ratings are unique per package value).
			for i := range want {
				if p.Val.Eval(got[i]) != p.Val.Eval(want[i]) {
					t.Fatalf("budget %g k %d slot %d: oracle val %g, exhaustive val %g",
						budget, k, i, p.Val.Eval(got[i]), p.Val.Eval(want[i]))
				}
				if valid, _ := p.Valid(got[i]); !valid {
					t.Fatalf("oracle returned invalid package %v", got[i])
				}
			}
			// Pairwise distinct.
			seen := map[string]struct{}{}
			for _, n := range got {
				if _, dup := seen[n.Key()]; dup {
					t.Fatal("oracle selection has duplicates")
				}
				seen[n.Key()] = struct{}{}
			}
		}
	}
}

func TestFindTopKViaOracleInfeasible(t *testing.T) {
	p := basicProblem(1, 1) // nothing fits a budget of 1
	_, ok, err := p.FindTopKViaOracle(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("oracle found a selection with an infeasible budget")
	}
}

func TestTopKItemsAndEmbedding(t *testing.T) {
	db := itemsDB()
	q := query.Identity("RQ", db.Relation("item"))
	f := UtilityAttr(2) // rating column
	items, ok, err := TopKItems(db, q, f, 2)
	if err != nil || !ok {
		t.Fatalf("TopKItems: ok=%v err=%v", ok, err)
	}
	if items[0][0].Int64() != 3 || items[1][0].Int64() != 2 {
		t.Fatalf("top-2 items = %v", items)
	}

	// The Section 2 embedding: FindTopK on ItemProblem agrees with TopKItems.
	ip := ItemProblem(db, q, f, 2)
	sel, ok, err := ip.FindTopK()
	if err != nil || !ok {
		t.Fatalf("embedded FindTopK: ok=%v err=%v", ok, err)
	}
	emb := ItemsOf(sel)
	for i := range items {
		if !items[i].Equal(emb[i]) {
			t.Fatalf("embedding mismatch: items %v vs packages %v", items, emb)
		}
	}
}

func TestTopKItemsInsufficient(t *testing.T) {
	db := itemsDB()
	q := query.Identity("RQ", db.Relation("item"))
	_, ok, err := TopKItems(db, q, UtilityAttr(2), 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("only four items exist; top-5 must fail")
	}
}

func TestFixedBoundRestrictsSelections(t *testing.T) {
	// Corollary 6.1 setting: with Bp = 1 only singletons are valid.
	p := basicProblem(1000, 1).WithMaxSize(1)
	sel, ok, err := p.FindTopK()
	if err != nil || !ok {
		t.Fatalf("FindTopK: ok=%v err=%v", ok, err)
	}
	if sel[0].Len() != 1 {
		t.Fatalf("Bp=1 selection has %d items", sel[0].Len())
	}
	// Best singleton by rating is item 3 (rating 9).
	if sel[0].Tuples()[0][0].Int64() != 3 {
		t.Fatalf("top singleton = %v", sel[0])
	}
}

func TestDecideTopKWithQc(t *testing.T) {
	// Qc forbids packages with ≥ 2 items (expressed as a query over RQ):
	// two distinct ids in the package.
	db := itemsDB()
	qc := query.NewCQ("Qc", nil,
		query.Rel("RQ", query.V("i1"), query.V("p1"), query.V("r1")),
		query.Rel("RQ", query.V("i2"), query.V("p2"), query.V("r2")),
		query.Cmp(query.V("i1"), query.OpNe, query.V("i2")))
	p := &Problem{
		DB: db, Q: query.Identity("RQ", db.Relation("item")), Qc: qc,
		Cost: Count(), Val: SumAttr(2), Budget: 100, K: 1,
	}
	sel, ok, err := p.FindTopK()
	if err != nil || !ok {
		t.Fatalf("FindTopK: ok=%v err=%v", ok, err)
	}
	if sel[0].Len() != 1 {
		t.Fatalf("Qc should force singletons, got %v", sel[0])
	}
	accept, _, err := p.DecideTopK(sel)
	if err != nil || !accept {
		t.Fatalf("DecideTopK rejected the Qc-constrained optimum: %v", err)
	}
}
