package core

import (
	"fmt"
	"math"
)

// DecideTopK decides RPP: whether sel is a top-k package selection for the
// problem. When the answer is no, witness explains why — either a member
// fails validity/distinctness (witness nil) or a valid package outside sel
// out-rates some member (witness set to it).
func (p *Problem) DecideTopK(sel []Package) (ok bool, witness *Package, err error) {
	if len(sel) != p.K {
		return false, nil, nil
	}
	seen := make(map[string]struct{}, len(sel))
	minVal := math.Inf(1)
	for _, n := range sel {
		if _, dup := seen[n.Key()]; dup {
			return false, nil, nil // condition (6): pairwise distinct
		}
		seen[n.Key()] = struct{}{}
		valid, err := p.Valid(n)
		if err != nil {
			return false, nil, err
		}
		if !valid {
			return false, nil, nil // conditions (1)–(4)
		}
		minVal = math.Min(minVal, p.Val.Eval(n))
	}
	// Condition (5): no valid package outside sel rates above any member.
	var found *Package
	err = p.EnumerateValid(func(n Package) (bool, error) {
		if _, inSel := seen[n.Key()]; inSel {
			return true, nil
		}
		if p.Val.Eval(n) > minVal {
			cp := n
			found = &cp
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		return false, nil, err
	}
	if found != nil {
		return false, found, nil
	}
	return true, nil, nil
}

// FindTopK solves FRP by exhaustive enumeration: it returns a top-k package
// selection ordered by descending rating (ties broken by canonical package
// key), or ok = false when fewer than k distinct valid packages exist.
func (p *Problem) FindTopK() (sel []Package, ok bool, err error) {
	type scored struct {
		pkg Package
		val float64
	}
	var best []scored
	worse := func(a, b scored) bool { // a strictly worse than b
		if a.val != b.val {
			return a.val < b.val
		}
		return a.pkg.Key() > b.pkg.Key()
	}
	err = p.EnumerateValid(func(n Package) (bool, error) {
		s := scored{pkg: n, val: p.Val.Eval(n)}
		// Insert into the top-k buffer (k is small; linear insertion).
		pos := len(best)
		for pos > 0 && worse(best[pos-1], s) {
			pos--
		}
		if pos >= p.K {
			return true, nil
		}
		best = append(best, scored{})
		copy(best[pos+1:], best[pos:])
		best[pos] = s
		if len(best) > p.K {
			best = best[:p.K]
		}
		return true, nil
	})
	if err != nil {
		return nil, false, err
	}
	if len(best) < p.K {
		return nil, false, nil
	}
	sel = make([]Package, len(best))
	for i, s := range best {
		sel[i] = s.pkg
	}
	return sel, true, nil
}

// MaxBound solves the optimisation core of MBP: the maximum B such that a
// top-k package selection exists with val(Ni) ≥ B for all i — equivalently
// the k-th highest rating among valid packages. ok is false when no top-k
// selection exists.
func (p *Problem) MaxBound() (bound float64, ok bool, err error) {
	sel, ok, err := p.FindTopK()
	if err != nil || !ok {
		return 0, false, err
	}
	bound = math.Inf(1)
	for _, n := range sel {
		bound = math.Min(bound, p.Val.Eval(n))
	}
	return bound, true, nil
}

// IsMaxBound decides MBP: whether B is the maximum bound for
// (Q, D, Qc, cost, val, C, k).
func (p *Problem) IsMaxBound(b float64) (bool, error) {
	mb, ok, err := p.MaxBound()
	if err != nil {
		return false, err
	}
	return ok && mb == b, nil
}

// CountValid solves CPP: the number of valid packages rated at least B.
func (p *Problem) CountValid(bound float64) (int64, error) {
	var n int64
	err := p.EnumerateValid(func(pkg Package) (bool, error) {
		if p.Val.Eval(pkg) >= bound {
			n++
		}
		return true, nil
	})
	return n, err
}

// existsValidAboveExt is the oracle EXISTPACK≥ from the proof of Theorem
// 5.1: does a valid package N exist with val(N) ≥ bound, N ∉ excl, and
// N ⊇ base? The deterministic simulation is a bounded exhaustive search
// over supersets of base.
func (p *Problem) existsValidAboveExt(bound float64, excl map[string]struct{}, base Package) (bool, error) {
	if _, err := p.Candidates(); err != nil {
		return false, err
	}
	ms, err := p.maxSize()
	if err != nil {
		return false, err
	}
	// Check the base itself first.
	if !base.IsEmpty() && base.Len() <= ms {
		if ok, err := p.checkOracleHit(base, bound, excl); err != nil || ok {
			return ok, err
		}
	}
	found := false
	var walk func(start int, cur Package) (bool, error)
	walk = func(start int, cur Package) (bool, error) {
		if cur.Len() >= ms {
			return true, nil
		}
		for i := start; i < len(p.candList); i++ {
			t := p.candList[i]
			if base.Contains(t) {
				continue
			}
			next := cur.WithTuple(t)
			if p.Prune != nil && p.Prune(next) {
				continue
			}
			hit, err := p.checkOracleHit(next, bound, excl)
			if err != nil {
				return false, err
			}
			if hit {
				found = true
				return false, nil
			}
			// Monotone-cost pruning, as in EnumerateValid.
			if p.Cost.Monotone() && p.Cost.Eval(next) > p.Budget {
				continue
			}
			cont, err := walk(i+1, next)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err = walk(0, base)
	return found, err
}

// checkOracleHit tests a concrete package against the oracle's conditions.
// The empty package is never a hit, mirroring EnumerateValid.
func (p *Problem) checkOracleHit(pkg Package, bound float64, excl map[string]struct{}) (bool, error) {
	if pkg.IsEmpty() {
		return false, nil
	}
	if _, skip := excl[pkg.Key()]; skip {
		return false, nil
	}
	return p.ValidAbove(pkg, bound)
}

// FindTopKViaOracle solves FRP with the algorithm from the proof of Theorem
// 5.1: for each of the k slots it binary-searches the maximal integer
// rating B ∈ [lo, hi] for which the oracle EXISTPACK≥ reports a fresh valid
// package, then extracts such a package by self-reduction — repeatedly
// asking the oracle whether the current partial package extends to an
// optimal one. It requires an integer-valued rating function (as the proof
// does, which assumes ratings within [0, 2^p(n)]); the extraction step uses
// direct oracle calls on N ∪ {s} instead of the proof's m×n constant-array
// bookkeeping, which queries the same oracle and extracts the same package.
func (p *Problem) FindTopKViaOracle(lo, hi int64) (sel []Package, ok bool, err error) {
	excl := make(map[string]struct{})
	curHi := hi
	for slot := 0; slot < p.K; slot++ {
		// Binary search the maximal B with a fresh valid package rated ≥ B.
		feasible, err := p.existsValidAboveExt(float64(lo), excl, Package{})
		if err != nil {
			return nil, false, err
		}
		if !feasible {
			return nil, false, nil
		}
		bLo, bHi := lo, curHi // invariant: exists at bLo
		for bLo < bHi {
			mid := bLo + (bHi-bLo+1)/2
			exists, err := p.existsValidAboveExt(float64(mid), excl, Package{})
			if err != nil {
				return nil, false, err
			}
			if exists {
				bLo = mid
			} else {
				bHi = mid - 1
			}
		}
		b := float64(bLo)
		// Self-reducible extraction of a package rated ≥ b.
		pkg, err := p.extractPackage(b, excl)
		if err != nil {
			return nil, false, err
		}
		sel = append(sel, pkg)
		excl[pkg.Key()] = struct{}{}
		curHi = bLo // later packages rate no higher
	}
	return sel, true, nil
}

// extractPackage grows a package tuple by tuple, keeping the invariant that
// some valid fresh package rated ≥ b extends the current partial package.
func (p *Problem) extractPackage(b float64, excl map[string]struct{}) (Package, error) {
	cur := Package{}
	ms, err := p.maxSize()
	if err != nil {
		return Package{}, err
	}
	for steps := 0; steps <= ms; steps++ {
		if hit, err := p.checkOracleHit(cur, b, excl); err != nil {
			return Package{}, err
		} else if hit {
			return cur, nil
		}
		extended := false
		for _, t := range p.candList {
			if cur.Contains(t) {
				continue
			}
			next := cur.WithTuple(t)
			exists, err := p.existsValidAboveExt(b, excl, next)
			if err != nil {
				return Package{}, err
			}
			if exists {
				cur = next
				extended = true
				break
			}
		}
		if !extended {
			return Package{}, fmt.Errorf("core: oracle extraction stalled at %v (bound %g): non-integer ratings?", cur, b)
		}
	}
	return Package{}, fmt.Errorf("core: oracle extraction exceeded the package size bound")
}
