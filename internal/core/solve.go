package core

import (
	"fmt"
	"math"
)

// checkSelection verifies the membership conditions of a top-k package
// selection — k packages (size), pairwise distinct (condition (6)), each
// valid (conditions (1)–(4)) — and returns the member key set plus the
// minimum rating among members. ok is false when any condition fails; both
// RPP deciders share it so the acceptance rules cannot drift apart.
func (p *Problem) checkSelection(sel []Package) (seen map[string]struct{}, minVal float64, ok bool, err error) {
	if len(sel) != p.K {
		return nil, 0, false, nil
	}
	seen = make(map[string]struct{}, len(sel))
	minVal = math.Inf(1)
	for _, n := range sel {
		if _, dup := seen[n.Key()]; dup {
			return nil, 0, false, nil // condition (6): pairwise distinct
		}
		seen[n.Key()] = struct{}{}
		valid, err := p.Valid(n)
		if err != nil {
			return nil, 0, false, err
		}
		if !valid {
			return nil, 0, false, nil // conditions (1)–(4)
		}
		minVal = math.Min(minVal, p.Val.Eval(n))
	}
	return seen, minVal, true, nil
}

// DecideTopK decides RPP: whether sel is a top-k package selection for the
// problem. When the answer is no, witness explains why — either a member
// fails validity/distinctness (witness nil) or a valid package outside sel
// out-rates some member (witness set to it).
func (p *Problem) DecideTopK(sel []Package) (ok bool, witness *Package, err error) {
	seen, minVal, ok, err := p.checkSelection(sel)
	if err != nil || !ok {
		return false, nil, err
	}
	// Condition (5): no valid package outside sel rates above any member.
	// The selection minimum is a static exclusive floor: subtrees whose val
	// upper bound cannot rate strictly above it hold no witness.
	var found *Package
	err = p.enumerateValidFloor(newFloor(minVal, true), func(n Package, path *dfsPath) (bool, error) {
		if _, inSel := seen[n.Key()]; inSel {
			return true, nil
		}
		if path.val(n) > minVal {
			found = &n
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		return false, nil, err
	}
	if found != nil {
		return false, found, nil
	}
	return true, nil, nil
}

// scoredPkg pairs a package with its rating inside the top-k machinery.
type scoredPkg struct {
	pkg Package
	val float64
}

// worseScored reports whether a ranks strictly below b under FindTopK's
// deterministic order: descending rating, ties broken by ascending
// canonical package key. It is a strict total order on distinct packages,
// which is what makes the parallel merge reproduce the serial answer.
func worseScored(a, b scoredPkg) bool {
	if a.val != b.val {
		return a.val < b.val
	}
	return a.pkg.Key() > b.pkg.Key()
}

// topkBuf keeps the k best packages seen so far under worseScored; k is
// small, so linear insertion beats a heap. The serial FindTopK feeds one
// buffer; the parallel variant feeds one per worker and merges.
type topkBuf struct {
	k    int
	best []scoredPkg
}

func (b *topkBuf) add(s scoredPkg) {
	pos := len(b.best)
	for pos > 0 && worseScored(b.best[pos-1], s) {
		pos--
	}
	if pos >= b.k {
		return
	}
	b.best = append(b.best, scoredPkg{})
	copy(b.best[pos+1:], b.best[pos:])
	b.best[pos] = s
	if len(b.best) > b.k {
		b.best = b.best[:b.k]
	}
}

// packages extracts the buffered selection in rank order.
func (b *topkBuf) packages() []Package {
	sel := make([]Package, len(b.best))
	for i, s := range b.best {
		sel[i] = s.pkg
	}
	return sel
}

// floorVal returns the buffer's k-th best rating once the buffer is full —
// a sound raise for the search floor: k packages rated at least it already
// exist, so no package rated strictly below can enter the final selection.
// ok is false while the buffer is not yet full (or k = 0).
func (b *topkBuf) floorVal() (float64, bool) {
	if b.k <= 0 || len(b.best) < b.k {
		return 0, false
	}
	return b.best[b.k-1].val, true
}

// findTopKScored is the shared FRP core: the top-k selection together with
// the ratings the enumeration already computed incrementally, so MaxBound
// needs no re-evaluation. The search runs branch-and-bound: once k packages
// are buffered, the k-th rating becomes the live floor and every subtree
// that cannot beat it is cut — the selection is still exactly the
// exhaustive one, because cut subtrees hold only packages that buf.add
// would have rejected.
func (p *Problem) findTopKScored() (scored []scoredPkg, ok bool, err error) {
	buf := topkBuf{k: p.K}
	floor := newFloor(math.Inf(-1), false)
	err = p.enumerateValidFloor(floor, func(n Package, path *dfsPath) (bool, error) {
		buf.add(scoredPkg{pkg: n, val: path.val(n)})
		if v, full := buf.floorVal(); full {
			floor.raise(v)
		}
		return true, nil
	})
	if err != nil {
		return nil, false, err
	}
	if len(buf.best) < p.K {
		return nil, false, nil
	}
	return buf.best, true, nil
}

// FindTopK solves FRP: it returns a top-k package selection ordered by
// descending rating (ties broken by canonical package key), or ok = false
// when fewer than k distinct valid packages exist.
func (p *Problem) FindTopK() (sel []Package, ok bool, err error) {
	scored, ok, err := p.findTopKScored()
	if err != nil || !ok {
		return nil, ok, err
	}
	buf := topkBuf{k: p.K, best: scored}
	return buf.packages(), true, nil
}

// minScored returns the minimum rating of a scored selection (+∞ when
// empty), reusing the values the enumeration computed.
func minScored(scored []scoredPkg) float64 {
	bound := math.Inf(1)
	for _, s := range scored {
		bound = math.Min(bound, s.val)
	}
	return bound
}

// MaxBound solves the optimisation core of MBP: the maximum B such that a
// top-k package selection exists with val(Ni) ≥ B for all i — equivalently
// the k-th highest rating among valid packages. ok is false when no top-k
// selection exists. The ratings come from the scored selection FindTopK's
// core already computed (bitwise-equal to Val.Eval by the Stepper
// contract), not from a re-evaluation.
func (p *Problem) MaxBound() (bound float64, ok bool, err error) {
	scored, ok, err := p.findTopKScored()
	if err != nil || !ok {
		return 0, false, err
	}
	return minScored(scored), true, nil
}

// IsMaxBound decides MBP: whether B is the maximum bound for
// (Q, D, Qc, cost, val, C, k).
func (p *Problem) IsMaxBound(b float64) (bool, error) {
	mb, ok, err := p.MaxBound()
	if err != nil {
		return false, err
	}
	return ok && mb == b, nil
}

// CountValid solves CPP: the number of valid packages rated at least B.
// B is a static floor: subtrees whose val upper bound stays below it
// contribute zero to the count and are cut.
func (p *Problem) CountValid(bound float64) (int64, error) {
	var n int64
	err := p.enumerateValidFloor(newFloor(bound, false), func(pkg Package, path *dfsPath) (bool, error) {
		if path.val(pkg) >= bound {
			n++
		}
		return true, nil
	})
	return n, err
}

// existsValidAboveExt is the oracle EXISTPACK≥ from the proof of Theorem
// 5.1: does a valid package N exist with val(N) ≥ bound, N ∉ excl, and
// N ⊇ base? The deterministic simulation is a bounded exhaustive search
// over supersets of base.
func (p *Problem) existsValidAboveExt(bound float64, excl map[string]struct{}, base Package) (bool, error) {
	cands, err := p.Candidates()
	if err != nil {
		return false, err
	}
	ms, err := p.maxSize()
	if err != nil {
		return false, err
	}
	// Check the base itself first.
	if !base.IsEmpty() && base.Len() <= ms {
		if ok, err := p.checkOracleHit(base, bound, excl); err != nil || ok {
			return ok, err
		}
	}
	// Every package the walk builds is a strict superset of base, so none
	// can be valid if base already fills the size bound or strays outside
	// the candidate set — Valid would reject them all.
	if base.Len() >= ms {
		return false, nil
	}
	for _, t := range base.Tuples() {
		if !cands.Contains(t) {
			return false, nil
		}
	}
	// Cost and val are maintained incrementally along the walk: the steppers
	// are seeded with base, then pushed/popped in DFS order. The walk never
	// leaves the candidate set or the size bound, so a node is a hit iff it
	// is fresh, within budget, compatible and rated at least bound. (With
	// base non-empty the fold order differs from the canonical one, which is
	// exact for the integer-valued aggregators FindTopKViaOracle requires.)
	//
	// The oracle inherits the bound layer too: the rating bound is a static
	// floor, and the suffix bounders stay admissible even though the walk
	// skips base tuples — bounds over a superset of the actually available
	// suffix can only be looser.
	st := p.newStrategy(newFloor(bound, false))
	var prunes, boundEvals int64
	if p.Counters != nil {
		defer func() {
			p.Counters.Pruned.Add(prunes)
			p.Counters.BoundEvals.Add(boundEvals)
		}()
	}
	steps := newStepPair(p, base)
	hitIncr := func(next Package, cost float64) (bool, error) {
		if _, skip := excl[next.Key()]; skip {
			return false, nil
		}
		if cost > p.Budget {
			return false, nil
		}
		ok, err := p.Compatible(next)
		if err != nil || !ok {
			return ok, err
		}
		return steps.val(next) >= bound, nil
	}
	found := false
	var walk func(start int, cur Package) (bool, error)
	walk = func(start int, cur Package) (bool, error) {
		if cur.Len() >= ms {
			return true, nil
		}
		for i := start; i < len(p.candList); i++ {
			t := p.candList[i]
			if base.Contains(t) {
				continue
			}
			next := cur.WithTuple(t)
			if p.Prune != nil && p.Prune(next) {
				continue
			}
			steps.push(t)
			cost := steps.cost(next)
			hit, err := hitIncr(next, cost)
			if err != nil {
				steps.pop()
				return false, err
			}
			if hit {
				steps.pop()
				found = true
				return false, nil
			}
			// Monotone-cost pruning, as in EnumerateValid.
			if p.Cost.Monotone() && cost > p.Budget {
				steps.pop()
				continue
			}
			// Bound-driven pruning of the subtree below next (strict
			// extensions drawn from p.candList[i+1:], at most rem more
			// tuples), through the same strategy gate as walkSubtree.
			if rem := ms - next.Len(); st.active() && i+1 < len(p.candList) && rem > 0 {
				var val float64
				if st.floor != nil {
					val = steps.val(next)
				}
				if st.cutBelow(cost, val, next.Len(), i+1, rem, p.Budget, &boundEvals, &prunes) {
					steps.pop()
					continue
				}
			}
			cont, err := walk(i+1, next)
			steps.pop()
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	_, err = walk(0, base)
	return found, err
}

// checkOracleHit tests a concrete package against the oracle's conditions.
// The empty package is never a hit, mirroring EnumerateValid.
func (p *Problem) checkOracleHit(pkg Package, bound float64, excl map[string]struct{}) (bool, error) {
	if pkg.IsEmpty() {
		return false, nil
	}
	if _, skip := excl[pkg.Key()]; skip {
		return false, nil
	}
	return p.ValidAbove(pkg, bound)
}

// FindTopKViaOracle solves FRP with the algorithm from the proof of Theorem
// 5.1: for each of the k slots it binary-searches the maximal integer
// rating B ∈ [lo, hi] for which the oracle EXISTPACK≥ reports a fresh valid
// package, then extracts such a package by self-reduction — repeatedly
// asking the oracle whether the current partial package extends to an
// optimal one. It requires an integer-valued rating function (as the proof
// does, which assumes ratings within [0, 2^p(n)]); the extraction step uses
// direct oracle calls on N ∪ {s} instead of the proof's m×n constant-array
// bookkeeping, which queries the same oracle and extracts the same package.
func (p *Problem) FindTopKViaOracle(lo, hi int64) (sel []Package, ok bool, err error) {
	excl := make(map[string]struct{})
	curHi := hi
	for slot := 0; slot < p.K; slot++ {
		// Binary search the maximal B with a fresh valid package rated ≥ B.
		feasible, err := p.existsValidAboveExt(float64(lo), excl, Package{})
		if err != nil {
			return nil, false, err
		}
		if !feasible {
			return nil, false, nil
		}
		bLo, bHi := lo, curHi // invariant: exists at bLo
		for bLo < bHi {
			mid := bLo + (bHi-bLo+1)/2
			exists, err := p.existsValidAboveExt(float64(mid), excl, Package{})
			if err != nil {
				return nil, false, err
			}
			if exists {
				bLo = mid
			} else {
				bHi = mid - 1
			}
		}
		b := float64(bLo)
		// Self-reducible extraction of a package rated ≥ b.
		pkg, err := p.extractPackage(b, excl)
		if err != nil {
			return nil, false, err
		}
		sel = append(sel, pkg)
		excl[pkg.Key()] = struct{}{}
		curHi = bLo // later packages rate no higher
	}
	return sel, true, nil
}

// extractPackage grows a package tuple by tuple, keeping the invariant that
// some valid fresh package rated ≥ b extends the current partial package.
func (p *Problem) extractPackage(b float64, excl map[string]struct{}) (Package, error) {
	cur := Package{}
	ms, err := p.maxSize()
	if err != nil {
		return Package{}, err
	}
	for steps := 0; steps <= ms; steps++ {
		if hit, err := p.checkOracleHit(cur, b, excl); err != nil {
			return Package{}, err
		} else if hit {
			return cur, nil
		}
		extended := false
		for _, t := range p.candList {
			if cur.Contains(t) {
				continue
			}
			next := cur.WithTuple(t)
			exists, err := p.existsValidAboveExt(b, excl, next)
			if err != nil {
				return Package{}, err
			}
			if exists {
				cur = next
				extended = true
				break
			}
		}
		if !extended {
			return Package{}, fmt.Errorf("core: oracle extraction stalled at %v (bound %g): non-integer ratings?", cur, b)
		}
	}
	return Package{}, fmt.Errorf("core: oracle extraction exceeded the package size bound")
}
