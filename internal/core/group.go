package core

import (
	"fmt"
	"math"
)

// Group recommendations are the extension the paper's conclusion (Section
// 9) points to, citing Amer-Yahia et al. [5]: recommend packages to a
// group of users, each with their own rating function, under a group
// consensus semantics. This file realises the two standard semantics of
// [5] — least misery (min over users) and aggregated voting (average) —
// plus a disagreement-penalised variant, by compiling the group rating into
// an ordinary val() aggregator; every POI problem (RPP/FRP/MBP/CPP) then
// applies unchanged, which is exactly why the paper's model absorbs the
// extension.

// GroupSemantics selects how individual ratings combine into a group
// rating.
type GroupSemantics int

// The group consensus functions of Amer-Yahia et al.
const (
	// LeastMisery rates a package by its least-happy user.
	LeastMisery GroupSemantics = iota
	// AverageSatisfaction rates a package by the mean user rating.
	AverageSatisfaction
	// AverageMinusDisagreement penalises the mean by the spread
	// (max − min) between users, weighted by DisagreementWeight.
	AverageMinusDisagreement
)

// String names the semantics.
func (s GroupSemantics) String() string {
	switch s {
	case LeastMisery:
		return "least-misery"
	case AverageSatisfaction:
		return "average"
	case AverageMinusDisagreement:
		return "average-minus-disagreement"
	default:
		return fmt.Sprintf("GroupSemantics(%d)", int(s))
	}
}

// GroupVal compiles per-user rating functions into a single group val()
// aggregator under the chosen semantics. disagreementWeight only matters
// for AverageMinusDisagreement.
func GroupVal(users []Aggregator, sem GroupSemantics, disagreementWeight float64) (Aggregator, error) {
	if len(users) == 0 {
		return Aggregator{}, fmt.Errorf("core: group needs at least one user rating function")
	}
	us := append([]Aggregator(nil), users...)
	name := fmt.Sprintf("group(%s,%d users)", sem, len(us))
	switch sem {
	case LeastMisery:
		return Func(name, func(p Package) float64 {
			m := math.Inf(1)
			for _, u := range us {
				m = math.Min(m, u.Eval(p))
			}
			return m
		}), nil
	case AverageSatisfaction:
		return Func(name, func(p Package) float64 {
			var s float64
			for _, u := range us {
				s += u.Eval(p)
			}
			return s / float64(len(us))
		}), nil
	case AverageMinusDisagreement:
		return Func(name, func(p Package) float64 {
			var s float64
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, u := range us {
				v := u.Eval(p)
				s += v
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			return s/float64(len(us)) - disagreementWeight*(hi-lo)
		}), nil
	default:
		return Aggregator{}, fmt.Errorf("core: unknown group semantics %v", sem)
	}
}

// GroupProblem builds a package recommendation problem for a group: the
// base problem's val() is replaced by the compiled group rating. The base
// problem is not modified.
func GroupProblem(base *Problem, users []Aggregator, sem GroupSemantics, disagreementWeight float64) (*Problem, error) {
	gv, err := GroupVal(users, sem, disagreementWeight)
	if err != nil {
		return nil, err
	}
	p := *base
	p.Val = gv
	p.InvalidateCache()
	return &p, nil
}
