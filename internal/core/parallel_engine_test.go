package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/query"
	"repro/internal/relation"
)

// wideProblem builds a problem with n candidate items, enough to hand every
// worker several subtree roots.
func wideProblem(n int, budget float64, k int) *Problem {
	db := relation.NewDatabase()
	r := relation.NewRelation(relation.NewSchema("item", "id", "price", "rating"))
	rng := rand.New(rand.NewSource(int64(n)))
	for i := 0; i < n; i++ {
		if err := r.Insert(relation.Ints(int64(i), int64(1+rng.Intn(20)), int64(rng.Intn(10)))); err != nil {
			panic(err)
		}
	}
	db.Add(r)
	return &Problem{
		DB: db, Q: query.Identity("RQ", db.Relation("item")),
		Cost: SumAttr(1).WithMonotone(), Val: SumAttr(2),
		Budget: budget, K: k,
	}
}

// TestCountValidParallelErroringCompatFn is the regression test for the
// worker-pool deadlock: with far more subtree roots than workers and a
// compatibility predicate that fails instantly, every worker bails out on
// its first root — the root feed must not block on the dead pool. The old
// unbuffered feed hung here forever.
func TestCountValidParallelErroringCompatFn(t *testing.T) {
	p := wideProblem(60, 50, 1)
	boom := errors.New("compat exploded")
	p.CompatFn = func(Package, *relation.Database) (bool, error) { return false, boom }
	type res struct {
		n   int64
		err error
	}
	done := make(chan res, 1)
	go func() {
		n, err := p.CountValidParallel(0, 2)
		done <- res{n, err}
	}()
	select {
	case r := <-done:
		if !errors.Is(r.err, boom) {
			t.Fatalf("want the CompatFn error, got n=%d err=%v", r.n, r.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("CountValidParallel deadlocked on an erroring CompatFn")
	}
}

// TestParallelContextCancellation: a pre-cancelled context stops the engine
// before (or promptly after) it starts and surfaces ctx.Err().
func TestParallelContextCancellation(t *testing.T) {
	p := wideProblem(40, math.Inf(1), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.CountValidParallelCtx(ctx, 0, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, _, err := p.FindTopKParallelCtx(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("FindTopKParallelCtx: want context.Canceled, got %v", err)
	}
}

func TestFindTopKParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		p := wideProblem(5+rng.Intn(6), float64(10+rng.Intn(50)), 1+rng.Intn(4))
		sel, ok, err := p.FindTopK()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 3, 7} {
			selP, okP, err := p.FindTopKParallel(workers)
			if err != nil {
				t.Fatal(err)
			}
			if okP != ok {
				t.Fatalf("trial %d workers %d: ok %v vs serial %v", trial, workers, okP, ok)
			}
			if len(selP) != len(sel) {
				t.Fatalf("trial %d workers %d: %d packages vs serial %d", trial, workers, len(selP), len(sel))
			}
			for i := range sel {
				if !sel[i].Equal(selP[i]) {
					t.Fatalf("trial %d workers %d: rank %d differs: %v vs %v",
						trial, workers, i, selP[i], sel[i])
				}
			}
		}
	}
}

func TestDecideTopKParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 10; trial++ {
		p := wideProblem(5+rng.Intn(5), float64(10+rng.Intn(40)), 2)
		sel, ok, err := p.FindTopK()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		// The true top-k must be accepted by both engines.
		okS, _, err := p.DecideTopK(sel)
		if err != nil {
			t.Fatal(err)
		}
		okP, witP, err := p.DecideTopKParallel(sel, 3)
		if err != nil {
			t.Fatal(err)
		}
		if okS != okP {
			t.Fatalf("trial %d: parallel decision %v vs serial %v", trial, okP, okS)
		}
		// A deliberately suboptimal selection must be rejected, and any
		// parallel witness must be a genuine counterexample.
		var worst []Package
		minVal := math.Inf(1)
		err = p.enumerateValidPath(func(pkg Package, path *dfsPath) (bool, error) {
			worst = append(worst, pkg)
			minVal = math.Min(minVal, path.val(pkg))
			return len(worst) < p.K, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(worst) < p.K {
			continue
		}
		okS, _, err = p.DecideTopK(worst)
		if err != nil {
			t.Fatal(err)
		}
		okP, witP, err = p.DecideTopKParallel(worst, 3)
		if err != nil {
			t.Fatal(err)
		}
		if okS != okP {
			t.Fatalf("trial %d (suboptimal sel): parallel %v vs serial %v", trial, okP, okS)
		}
		if !okP && witP != nil {
			valid, err := p.Valid(*witP)
			if err != nil {
				t.Fatal(err)
			}
			inSel := false
			for _, s := range worst {
				if s.Equal(*witP) {
					inSel = true
				}
			}
			if !valid || inSel || p.Val.Eval(*witP) <= minValOf(p, worst) {
				t.Fatalf("trial %d: parallel witness %v is not a counterexample", trial, *witP)
			}
		}
	}
}

func minValOf(p *Problem, sel []Package) float64 {
	m := math.Inf(1)
	for _, s := range sel {
		m = math.Min(m, p.Val.Eval(s))
	}
	return m
}

func TestExistsKValidParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 15; trial++ {
		p := wideProblem(4+rng.Intn(6), float64(5+rng.Intn(40)), 1)
		bound := float64(rng.Intn(12))
		for _, k := range []int{0, 1, 3, 1000} {
			seq, err := p.ExistsKValid(k, bound)
			if err != nil {
				t.Fatal(err)
			}
			par, err := p.ExistsKValidParallel(k, bound, 3)
			if err != nil {
				t.Fatal(err)
			}
			if seq != par {
				t.Fatalf("trial %d k=%d bound=%g: parallel %v vs serial %v", trial, k, bound, seq, par)
			}
		}
	}
}

// TestEnumerateValidIncrementalMatchesRecompute pins that the incremental
// path evaluator changes no observable output: the same problem solved with
// stepper-backed aggregators and with opaque Func wrappers (which force full
// recomputation) enumerates identical packages with identical ratings.
func TestEnumerateValidIncrementalMatchesRecompute(t *testing.T) {
	p := wideProblem(9, 35, 2)
	opaque := *p
	opaque.Cost = Func("cost", p.Cost.Eval).WithMonotone()
	opaque.Val = Func("val", p.Val.Eval)

	type seen struct {
		key string
		val float64
	}
	collect := func(pr *Problem) []seen {
		var out []seen
		if err := pr.enumerateValidPath(func(pkg Package, path *dfsPath) (bool, error) {
			out = append(out, seen{pkg.Key(), path.val(pkg)})
			return true, nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	fast, slow := collect(p), collect(&opaque)
	if len(fast) != len(slow) {
		t.Fatalf("incremental enumerated %d packages, recompute %d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("package %d differs: incremental %+v vs recompute %+v", i, fast[i], slow[i])
		}
	}
}
