package core

import (
	"runtime"
	"sync"

	"repro/internal/relation"
)

// CountValidParallel solves CPP with a worker pool: the subset-enumeration
// forest is split at the first level (one tree per smallest candidate
// index) and the trees are counted concurrently. Counting is
// order-independent, so the result is identical to CountValid; workers
// default to GOMAXPROCS. Aggregators, the compatibility query and the
// Prune hint must be safe for concurrent use — all stock constructors are
// (they close over immutable state), and Qc evaluation builds a private
// overlay per call.
func (p *Problem) CountValidParallel(bound float64, workers int) (int64, error) {
	if _, err := p.Candidates(); err != nil {
		return 0, err
	}
	ms, err := p.maxSize()
	if err != nil {
		return 0, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cands := p.candList
	roots := make(chan int)
	var wg sync.WaitGroup
	counts := make([]int64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for root := range roots {
				n, err := p.countSubtree(root, cands, ms, bound)
				if err != nil {
					errs[w] = err
					return
				}
				counts[w] += n
			}
		}(w)
	}
	for i := range cands {
		roots <- i
	}
	close(roots)
	wg.Wait()
	var total int64
	for _, c := range counts {
		total += c
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

// countSubtree counts the valid packages whose smallest candidate index is
// root, mirroring EnumerateValid's pruning (monotone cost, Prune hint).
func (p *Problem) countSubtree(root int, cands []relation.Tuple, maxSize int, bound float64) (int64, error) {
	var total int64
	current := []relation.Tuple{cands[root]}
	var walk func(pkg Package, start int) error
	visit := func(pkg Package) (descend bool, err error) {
		if p.Prune != nil && p.Prune(pkg) {
			return false, nil
		}
		cost := p.Cost.Eval(pkg)
		if cost <= p.Budget {
			ok, err := p.Compatible(pkg)
			if err != nil {
				return false, err
			}
			if ok && p.Val.Eval(pkg) >= bound {
				total++
			}
		} else if p.Cost.Monotone() {
			return false, nil
		}
		return true, nil
	}
	walk = func(pkg Package, start int) error {
		if pkg.Len() >= maxSize {
			return nil
		}
		for i := start; i < len(cands); i++ {
			current = append(current, cands[i])
			next := NewPackage(current...)
			descend, err := visit(next)
			if err != nil {
				current = current[:len(current)-1]
				return err
			}
			if descend {
				if err := walk(next, i+1); err != nil {
					current = current[:len(current)-1]
					return err
				}
			}
			current = current[:len(current)-1]
		}
		return nil
	}
	rootPkg := NewPackage(cands[root])
	descend, err := visit(rootPkg)
	if err != nil {
		return 0, err
	}
	if descend {
		if err := walk(rootPkg, root+1); err != nil {
			return 0, err
		}
	}
	return total, nil
}
