package core

import (
	"context"
	"math"
	"sort"
	"sync/atomic"
)

// This file holds the public parallel solvers, all thin clients of the
// root-splitting scheduler in engine.go (Problem.runParallel). The
// subset-enumeration forest is split at the first level — one subtree per
// smallest candidate index — and the subtrees are walked concurrently, each
// worker carrying its own incremental path state. Aggregators, the
// compatibility query and the Prune hint must be safe for concurrent use —
// all stock constructors are (they close over immutable state), and Qc
// evaluation builds a private overlay per call.
//
// Every solver has a context-taking variant for early cancellation; the
// plain forms use context.Background(). Workers ≤ 0 defaults to GOMAXPROCS.

// paddedCount is a per-worker counter padded to a cache line so hot
// concurrent counting does not false-share.
type paddedCount struct {
	n int64
	_ [56]byte
}

// CountValidParallel solves CPP with the parallel engine. Counting is
// order-independent, so the result is identical to CountValid.
func (p *Problem) CountValidParallel(bound float64, workers int) (int64, error) {
	return p.CountValidParallelCtx(context.Background(), bound, workers)
}

// CountValidParallelCtx is CountValidParallel with cancellation. As in
// CountValid, B is a static pruning floor.
func (p *Problem) CountValidParallelCtx(ctx context.Context, bound float64, workers int) (int64, error) {
	workers = normWorkers(workers)
	counts := make([]paddedCount, workers)
	err := p.runParallel(ctx, workers, newFloor(bound, false), func(w int) pathYield {
		return func(pkg Package, path *dfsPath) (bool, error) {
			if path.val(pkg) >= bound {
				counts[w].n++
			}
			return true, nil
		}
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for i := range counts {
		total += counts[i].n
	}
	return total, nil
}

// FindTopKParallel solves FRP with the parallel engine: each worker keeps a
// private top-k buffer over its subtrees and the buffers are merged under
// FindTopK's deterministic order (descending rating, ties by ascending
// package key) once all workers finish. The order is strict and total on
// distinct packages, so the merged selection is identical to the serial
// FindTopK answer.
func (p *Problem) FindTopKParallel(workers int) (sel []Package, ok bool, err error) {
	return p.FindTopKParallelCtx(context.Background(), workers)
}

// FindTopKParallelCtx is FindTopKParallel with cancellation.
func (p *Problem) FindTopKParallelCtx(ctx context.Context, workers int) (sel []Package, ok bool, err error) {
	scored, ok, err := p.findTopKScoredParallelCtx(ctx, workers)
	if err != nil || !ok {
		return nil, ok, err
	}
	merged := topkBuf{k: p.K, best: scored}
	return merged.packages(), true, nil
}

// findTopKScoredParallelCtx is the parallel FRP core: the top-k selection
// with the ratings the workers computed incrementally. Workers share one
// pruning floor and tighten it cooperatively — whenever a worker's private
// buffer is full, its k-th rating is published as an atomic-max raise: k
// packages rated at least it exist globally, so any subtree whose val upper
// bound falls strictly below holds no member of the global top-k. Each
// buffer therefore still holds its subtrees' entire contribution to the
// global answer, and the deterministic merge reproduces the serial
// selection exactly.
func (p *Problem) findTopKScoredParallelCtx(ctx context.Context, workers int) (scored []scoredPkg, ok bool, err error) {
	workers = normWorkers(workers)
	bufs := make([]topkBuf, workers)
	floor := newFloor(math.Inf(-1), false)
	err = p.runParallel(ctx, workers, floor, func(w int) pathYield {
		bufs[w].k = p.K
		return func(pkg Package, path *dfsPath) (bool, error) {
			bufs[w].add(scoredPkg{pkg: pkg, val: path.val(pkg)})
			if v, full := bufs[w].floorVal(); full {
				floor.raise(v)
			}
			return true, nil
		}
	})
	if err != nil {
		return nil, false, err
	}
	var all []scoredPkg
	for i := range bufs {
		all = append(all, bufs[i].best...)
	}
	sort.Slice(all, func(i, j int) bool { return worseScored(all[j], all[i]) })
	if len(all) < p.K {
		return nil, false, nil
	}
	return all[:p.K], true, nil
}

// MaxBoundParallel solves the optimisation core of MBP on the parallel
// engine: the selection search runs root-split (see FindTopKParallel), then
// the bound is the minimum rating among the k members. The result is
// identical to MaxBound.
func (p *Problem) MaxBoundParallel(workers int) (bound float64, ok bool, err error) {
	return p.MaxBoundParallelCtx(context.Background(), workers)
}

// MaxBoundParallelCtx is MaxBoundParallel with cancellation. Like the
// serial MaxBound it reuses the ratings of the scored selection instead of
// re-evaluating Val over the members.
func (p *Problem) MaxBoundParallelCtx(ctx context.Context, workers int) (bound float64, ok bool, err error) {
	scored, ok, err := p.findTopKScoredParallelCtx(ctx, workers)
	if err != nil || !ok {
		return 0, false, err
	}
	return minScored(scored), true, nil
}

// DecideTopKParallel solves RPP with the parallel engine: the membership
// checks on sel run serially (they are |sel| cheap validations), then the
// condition (5) witness search fans out over the enumeration forest with
// early cancellation — the first worker to find a valid outside package
// rating above the selection's minimum stops all others. The decision is
// identical to DecideTopK's; when the answer is no with a witness, which
// witness is returned depends on worker timing (any of them proves the
// selection suboptimal).
func (p *Problem) DecideTopKParallel(sel []Package, workers int) (ok bool, witness *Package, err error) {
	return p.DecideTopKParallelCtx(context.Background(), sel, workers)
}

// DecideTopKParallelCtx is DecideTopKParallel with cancellation.
func (p *Problem) DecideTopKParallelCtx(ctx context.Context, sel []Package, workers int) (ok bool, witness *Package, err error) {
	seen, minVal, ok, err := p.checkSelection(sel)
	if err != nil || !ok {
		return false, nil, err
	}
	workers = normWorkers(workers)
	found := make([]*Package, workers)
	// As in DecideTopK, the selection minimum is a static exclusive floor.
	err = p.runParallel(ctx, workers, newFloor(minVal, true), func(w int) pathYield {
		return func(pkg Package, path *dfsPath) (bool, error) {
			if _, inSel := seen[pkg.Key()]; inSel {
				return true, nil
			}
			if path.val(pkg) > minVal {
				found[w] = &pkg
				return false, nil
			}
			return true, nil
		}
	})
	if err != nil {
		return false, nil, err
	}
	for _, f := range found {
		if f != nil {
			return false, f, nil
		}
	}
	return true, nil, nil
}

// ExistsKValidParallel is the parallel form of ExistsKValid: workers count
// qualifying packages into a shared tally and the search cancels as soon as
// the k-th one is found anywhere in the forest.
func (p *Problem) ExistsKValidParallel(k int, bound float64, workers int) (bool, error) {
	return p.ExistsKValidParallelCtx(context.Background(), k, bound, workers)
}

// ExistsKValidParallelCtx is ExistsKValidParallel with cancellation.
func (p *Problem) ExistsKValidParallelCtx(ctx context.Context, k int, bound float64, workers int) (bool, error) {
	if k <= 0 {
		return true, nil
	}
	var found atomic.Int64
	err := p.runParallel(ctx, normWorkers(workers), newFloor(bound, false), func(int) pathYield {
		return func(pkg Package, path *dfsPath) (bool, error) {
			if path.val(pkg) >= bound && found.Add(1) >= int64(k) {
				return false, nil // the k-th hit cancels all workers
			}
			return true, nil
		}
	})
	if err != nil {
		return false, err
	}
	return found.Load() >= int64(k), nil
}
