package core

import (
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// groupFixture: three items; two users with opposite tastes over the
// rating attributes.
func groupFixture() (*Problem, []Aggregator) {
	db := relation.NewDatabase()
	// item(id, uA_rating, uB_rating)
	db.Add(relation.FromTuples(relation.NewSchema("item", "id", "ra", "rb"),
		relation.Ints(1, 10, 0),
		relation.Ints(2, 0, 10),
		relation.Ints(3, 6, 6)))
	base := &Problem{
		DB:     db,
		Q:      query.Identity("RQ", db.Relation("item")),
		Cost:   CountOrInf(),
		Val:    ConstAgg(0), // replaced by the group rating
		Budget: 1,           // singleton packages
		K:      1,
	}
	users := []Aggregator{SumAttr(1), SumAttr(2)}
	return base, users
}

func TestGroupLeastMiseryVsAverage(t *testing.T) {
	base, users := groupFixture()

	lm, err := GroupProblem(base, users, LeastMisery, 0)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok, err := lm.FindTopK()
	if err != nil || !ok {
		t.Fatalf("least misery FindTopK: ok=%v err=%v", ok, err)
	}
	// Item 3 (6, 6) maximises the minimum (6 > 0).
	if sel[0].Tuples()[0][0].Int64() != 3 {
		t.Fatalf("least misery picked %v, want item 3", sel[0])
	}

	avg, err := GroupProblem(base, users, AverageSatisfaction, 0)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok, err = avg.FindTopK()
	if err != nil || !ok {
		t.Fatalf("average FindTopK: ok=%v err=%v", ok, err)
	}
	// Item 3 averages 6 > items 1 and 2 (both average 5).
	if sel[0].Tuples()[0][0].Int64() != 3 {
		t.Fatalf("average picked %v, want item 3", sel[0])
	}
	if v := avg.Val.Eval(NewPackage(relation.Ints(1, 10, 0))); v != 5 {
		t.Fatalf("average of (10, 0) = %g, want 5", v)
	}
}

func TestGroupDisagreementPenalty(t *testing.T) {
	base, users := groupFixture()
	g, err := GroupProblem(base, users, AverageMinusDisagreement, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Item 1: avg 5, spread 10 → 0. Item 3: avg 6, spread 0 → 6.
	if v := g.Val.Eval(NewPackage(relation.Ints(1, 10, 0))); v != 0 {
		t.Fatalf("penalised rating of item 1 = %g, want 0", v)
	}
	if v := g.Val.Eval(NewPackage(relation.Ints(3, 6, 6))); v != 6 {
		t.Fatalf("penalised rating of item 3 = %g, want 6", v)
	}
}

func TestGroupSingleUserReducesToBase(t *testing.T) {
	base, users := groupFixture()
	for _, sem := range []GroupSemantics{LeastMisery, AverageSatisfaction, AverageMinusDisagreement} {
		g, err := GroupProblem(base, users[:1], sem, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		solo := *base
		solo.Val = users[0]
		a, okA, err := g.FindTopK()
		if err != nil {
			t.Fatal(err)
		}
		b, okB, err := solo.FindTopK()
		if err != nil {
			t.Fatal(err)
		}
		if okA != okB || !a[0].Equal(b[0]) {
			t.Fatalf("%v: single-user group diverges from the base problem", sem)
		}
	}
}

func TestGroupValErrors(t *testing.T) {
	if _, err := GroupVal(nil, LeastMisery, 0); err == nil {
		t.Fatal("empty user list should error")
	}
	if _, err := GroupVal([]Aggregator{Count()}, GroupSemantics(99), 0); err == nil {
		t.Fatal("unknown semantics should error")
	}
}

func TestGroupDoesNotMutateBase(t *testing.T) {
	base, users := groupFixture()
	origVal := base.Val
	if _, err := GroupProblem(base, users, LeastMisery, 0); err != nil {
		t.Fatal(err)
	}
	if base.Val.Name() != origVal.Name() {
		t.Fatal("GroupProblem mutated the base problem")
	}
}
