package core

import (
	"math"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// provProblem is a filtered selection over item: candidates are the items
// with price < 25, so deltas can land inside or outside the candidate set.
func provProblem() *Problem {
	db := itemsDB()
	q := query.NewCQ("RQ",
		[]query.Term{query.V("id"), query.V("price"), query.V("rating")},
		query.Rel("item", query.V("id"), query.V("price"), query.V("rating")),
		query.Cmp(query.V("price"), query.OpLt, query.CI(25)))
	return &Problem{
		DB:              db,
		Q:               q,
		Cost:            SumAttr(1).WithMonotone(),
		Val:             SumAttr(2),
		Budget:          100,
		K:               1,
		MaxPkgSize:      2,
		TrackProvenance: true,
	}
}

func TestProvenanceBuiltDuringPrepare(t *testing.T) {
	p := provProblem()
	if err := p.Prepare(); err != nil {
		t.Fatal(err)
	}
	prov, err := p.Provenance()
	if err != nil {
		t.Fatal(err)
	}
	if prov == nil {
		t.Fatal("tracked problem has no provenance table")
	}
	// Candidates: items 1, 2, 4 (price < 25); each read exactly its item row.
	if prov.Len() != 3 {
		t.Fatalf("provenance prices %d candidates, want 3", prov.Len())
	}
	ck := relation.Ints(1, 10, 5).Key()
	reads := prov.Reads(ck)
	if len(reads) != 1 || reads[0] != query.SourceRef("item", relation.Ints(1, 10, 5).Key()) {
		t.Fatalf("reads of candidate 1 = %v", reads)
	}
	if got := prov.Readers(reads[0]); len(got) != 1 || got[0] != ck {
		t.Fatalf("readers of item 1 = %v", got)
	}
	s, ok := prov.Score(ck)
	if !ok || s.Cost != 10 || s.Val != 5 {
		t.Fatalf("score of candidate 1 = %+v ok=%v, want cost 10 val 5", s, ok)
	}

	// An untracked problem — or an untraceable query — has no table.
	bare := basicProblem(100, 1)
	if err := bare.Prepare(); err != nil {
		t.Fatal(err)
	}
	if prov, err := bare.Provenance(); err != nil || prov != nil {
		t.Fatalf("untracked problem: prov=%v err=%v, want nil/nil", prov, err)
	}
}

func applyTouched(t *testing.T, db *relation.Database, delta relation.Delta) (*relation.Database, map[string]relation.TouchSet) {
	t.Helper()
	res, err := db.ApplyDelta(delta)
	if err != nil {
		t.Fatal(err)
	}
	return res.DB, res.Touched
}

func TestRescoreReportsAffectedCandidates(t *testing.T) {
	p := provProblem()
	if err := p.Prepare(); err != nil {
		t.Fatal(err)
	}
	// Delete candidate item 1, add a new in-filter item 5 and an
	// out-of-filter item 6.
	newDB, touched := applyTouched(t, p.DB, relation.Delta{
		Upserts: []relation.RelationDelta{{Name: "item", Tuples: [][]any{{5, 15, 7}, {6, 99, 1}}}},
		Deletes: []relation.RelationDelta{{Name: "item", Tuples: [][]any{{1, 10, 5}}}},
	})
	ups, err := p.Rescore(newDB, touched)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2 {
		t.Fatalf("updates = %+v, want removed item 1 + added item 5", ups)
	}
	if !ups[0].Removed || ups[0].Tuple.Compare(relation.Ints(1, 10, 5)) != 0 {
		t.Fatalf("first update = %+v, want removal of item 1", ups[0])
	}
	if !ups[1].Added || ups[1].Tuple.Compare(relation.Ints(5, 15, 7)) != 0 {
		t.Fatalf("second update = %+v, want addition of item 5", ups[1])
	}
	if ups[1].Score.Cost != 15 || ups[1].Score.Val != 7 {
		t.Fatalf("added score = %+v, want cost 15 val 7", ups[1].Score)
	}
}

func TestAdvanceUnchangedSharesState(t *testing.T) {
	p := provProblem()
	if err := p.Prepare(); err != nil {
		t.Fatal(err)
	}
	// Mutating only out-of-filter content leaves the candidates untouched.
	newDB, touched := applyTouched(t, p.DB, relation.Delta{
		Upserts: []relation.RelationDelta{{Name: "item", Tuples: [][]any{{7, 200, 2}}}},
	})
	adv, diff, err := p.Advance(newDB, touched)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Unchanged || len(diff.Added) != 0 || len(diff.Removed) != 0 {
		t.Fatalf("diff = %+v, want unchanged", diff)
	}
	if adv.DB != newDB {
		t.Fatal("advanced problem not rebound to the new database")
	}
	oldC, _ := p.Candidates()
	newC, err := adv.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	if oldC != newC {
		t.Fatal("unchanged advance should share the memoised candidates")
	}
}

func TestAdvanceMatchesFreshPrepare(t *testing.T) {
	p := provProblem()
	if err := p.Prepare(); err != nil {
		t.Fatal(err)
	}
	// A mixed delta: remove candidate 2, add candidate 5, churn non-candidates.
	newDB, touched := applyTouched(t, p.DB, relation.Delta{
		Upserts: []relation.RelationDelta{{Name: "item", Tuples: [][]any{{5, 15, 7}, {8, 500, 1}}}},
		Deletes: []relation.RelationDelta{{Name: "item", Tuples: [][]any{{2, 20, 8}, {3, 30, 9}}}},
	})
	adv, diff, err := p.Advance(newDB, touched)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Unchanged || len(diff.Added) != 1 || len(diff.Removed) != 1 {
		t.Fatalf("diff = %+v, want one add + one remove", diff)
	}

	fresh := provProblem()
	fresh.DB = newDB
	if err := fresh.Prepare(); err != nil {
		t.Fatal(err)
	}
	advC, err := adv.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	freshC, _ := fresh.Candidates()
	if advC.Fingerprint() != freshC.Fingerprint() {
		t.Fatalf("advanced candidates %v differ from fresh prepare %v", advC, freshC)
	}
	advList, _ := adv.CandidateList()
	freshList, _ := fresh.CandidateList()
	for i := range freshList {
		if advList[i].Compare(freshList[i]) != 0 {
			t.Fatalf("candidate order diverged at %d: %v vs %v", i, advList[i], freshList[i])
		}
	}
	// The advanced problem must solve identically to the fresh one.
	gotSel, gotOK, err := adv.FindTopK()
	if err != nil {
		t.Fatal(err)
	}
	wantSel, wantOK, err := fresh.FindTopK()
	if err != nil {
		t.Fatal(err)
	}
	if gotOK != wantOK || len(gotSel) != len(wantSel) {
		t.Fatalf("topk diverged: got ok=%v n=%d want ok=%v n=%d", gotOK, len(gotSel), wantOK, len(wantSel))
	}
	for i := range wantSel {
		if gotSel[i].Key() != wantSel[i].Key() {
			t.Fatalf("topk package %d diverged: %v vs %v", i, gotSel[i], wantSel[i])
		}
	}
	// And its provenance must keep advancing: delete the added candidate.
	db3, touched3 := applyTouched(t, newDB, relation.Delta{
		Deletes: []relation.RelationDelta{{Name: "item", Tuples: [][]any{{5, 15, 7}}}},
	})
	_, diff3, err := adv.Advance(db3, touched3)
	if err != nil {
		t.Fatal(err)
	}
	if diff3.Unchanged || len(diff3.Removed) != 1 || diff3.Removed[0].Compare(relation.Ints(5, 15, 7)) != 0 {
		t.Fatalf("second advance diff = %+v, want removal of item 5", diff3)
	}
}

// A candidate with two derivations must survive the loss of one and die
// with both.
func TestAdvanceMultiDerivation(t *testing.T) {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("a", "x"), relation.Ints(1)))
	db.Add(relation.FromTuples(relation.NewSchema("b", "x"), relation.Ints(1), relation.Ints(2)))
	u := query.NewUCQ("RQ",
		query.NewCQ("RQ", []query.Term{query.V("x")}, query.Rel("a", query.V("x"))),
		query.NewCQ("RQ", []query.Term{query.V("x")}, query.Rel("b", query.V("x"))),
	)
	p := &Problem{
		DB: db, Q: u,
		Cost: Count(), Val: Count(), Budget: 10,
		K: 1, TrackProvenance: true,
	}
	if err := p.Prepare(); err != nil {
		t.Fatal(err)
	}
	// Deleting b(1) leaves (1) derivable through a(1).
	db2, touched := applyTouched(t, db, relation.Delta{
		Deletes: []relation.RelationDelta{{Name: "b", Tuples: [][]any{{1}}}},
	})
	adv, diff, err := p.Advance(db2, touched)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Unchanged {
		t.Fatalf("diff = %+v: candidate (1) should survive via a(1)", diff)
	}
	// Deleting a(1) as well removes it.
	db3, touched3 := applyTouched(t, db2, relation.Delta{
		Deletes: []relation.RelationDelta{{Name: "a", Tuples: [][]any{{1}}}},
	})
	_, diff3, err := adv.Advance(db3, touched3)
	if err != nil {
		t.Fatal(err)
	}
	if diff3.Unchanged || len(diff3.Removed) != 1 || diff3.Removed[0].Compare(relation.Ints(1)) != 0 {
		t.Fatalf("diff after losing both derivations = %+v", diff3)
	}
}

func TestCandidateBoundsAdmissible(t *testing.T) {
	p := provProblem()
	if err := p.Prepare(); err != nil {
		t.Fatal(err)
	}
	// Candidates: (1,10,5), (2,20,8), (4,5,3); MaxPkgSize 2, val = sum rating.
	// Enumerate every valid package containing each candidate and check the
	// bounds bracket the true extrema.
	list, _ := p.CandidateList()
	for _, c := range list {
		ub, ok, err := p.CandidateValUpper(c)
		if err != nil || !ok {
			t.Fatalf("CandidateValUpper: ok=%v err=%v", ok, err)
		}
		lb, ok, err := p.CandidateCostLower(c)
		if err != nil || !ok {
			t.Fatalf("CandidateCostLower: ok=%v err=%v", ok, err)
		}
		bestVal := math.Inf(-1)
		minCost := math.Inf(1)
		err = p.EnumerateValid(func(pkg Package) (bool, error) {
			for _, t := range pkg.Tuples() {
				if t.Compare(c) == 0 {
					bestVal = math.Max(bestVal, p.Val.Eval(pkg))
					minCost = math.Min(minCost, p.Cost.Eval(pkg))
				}
			}
			return true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if bestVal > ub {
			t.Fatalf("candidate %v: true best val %v exceeds upper bound %v", c, bestVal, ub)
		}
		if minCost < lb {
			t.Fatalf("candidate %v: true min cost %v below lower bound %v", c, minCost, lb)
		}
	}
}
