package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// This file is the candidate-space sharding layer: the root-splitting
// engine already decomposes a solve into one independent subtree per
// smallest candidate index, and a ShardSpec assigns each root to exactly
// one of Count disjoint shards. A shard solver walks only its own roots
// and returns a *partial* result — a scored top-k contribution, a count,
// a capped feasibility count — together with the search floor it finished
// at; the exported Merge helpers combine the partials into exactly the
// answer a single whole-space solve produces, bit for bit. That is the
// merge a distributed coordinator needs: fan the shards out to different
// nodes, merge the partials at the router (internal/cluster), and the
// fleet answer is indistinguishable from a single node's.
//
// Bit-identity rests on three invariants the engine already maintains:
// every package is enumerated by exactly one root subtree (so shard
// results never overlap and counts sum exactly); ratings are folded in
// canonical tuple order by the incremental steppers regardless of which
// worker or shard walks the package (so a package's val is the same
// float64 everywhere); and the top-k order (worseScored: descending val,
// ties by ascending canonical package key) is a strict total order on
// distinct packages (so the merged selection is unique).

// ShardSpec names one candidate-space shard: subtree roots r with
// r % Count == Index. Roots are interleaved rather than split into
// contiguous ranges because subtree size falls steeply with the root
// index (root 0 dominates), and interleaving spreads the heavy low
// roots evenly across shards. The zero value (Count 0) — and any Count
// ≤ 1 — means the whole space.
type ShardSpec struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// Validate checks the spec names a well-formed shard.
func (s ShardSpec) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("core: shard count %d < 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("core: shard index %d out of range [0, %d)", s.Index, s.Count)
	}
	return nil
}

// owns reports whether the shard owns subtree root r.
func (s ShardSpec) owns(r int) bool {
	return s.Count <= 1 || r%s.Count == s.Index
}

// ScoredPackage pairs a package with the rating the engine computed for
// it — the exported face of the internal scored buffers, carried inside
// shard partials so merges reuse engine ratings instead of re-evaluating.
type ScoredPackage struct {
	Pkg Package
	Val float64
}

// TopKPartial is one shard's contribution to a top-k search: its best
// min(k, shard population) packages in rank order, scored, plus the
// pruning floor the shard finished at. The floor is the value below which
// this shard provably holds nothing further (its workers cut everything
// strictly below it after buffering k better-rated packages); a
// coordinator can seed another shard's FloorHint with it, and it
// documents how much of the shard the bound layer skipped.
type TopKPartial struct {
	Scored []ScoredPackage
	Floor  float64 // -Inf when the shard never filled a k-buffer
}

// FindTopKShardCtx runs the FRP top-k search over one candidate-space
// shard and returns the shard's partial. floorHint seeds the shared
// pruning floor: the caller asserts that k packages rated at least
// floorHint exist globally (e.g. another shard's full partial proves it),
// so packages rated strictly below cannot enter the merged selection and
// the shard may skip them. Pass math.Inf(-1) for no hint. The partial's
// Scored holds every package of this shard that can appear in the merged
// global top-k, in rank order.
func (p *Problem) FindTopKShardCtx(ctx context.Context, shard ShardSpec, floorHint float64, workers int) (TopKPartial, error) {
	if err := shard.Validate(); err != nil {
		return TopKPartial{}, err
	}
	workers = normWorkers(workers)
	bufs := make([]topkBuf, workers)
	floor := newFloor(floorHint, false)
	err := p.runParallelShard(ctx, workers, floor, shard, func(w int) pathYield {
		bufs[w].k = p.K
		return func(pkg Package, path *dfsPath) (bool, error) {
			bufs[w].add(scoredPkg{pkg: pkg, val: path.val(pkg)})
			if v, full := bufs[w].floorVal(); full {
				floor.raise(v)
			}
			return true, nil
		}
	})
	if err != nil {
		return TopKPartial{}, err
	}
	var all []scoredPkg
	for i := range bufs {
		all = append(all, bufs[i].best...)
	}
	sort.Slice(all, func(i, j int) bool { return worseScored(all[j], all[i]) })
	if len(all) > p.K {
		all = all[:p.K]
	}
	out := TopKPartial{Floor: floor.value(), Scored: make([]ScoredPackage, len(all))}
	for i, s := range all {
		out.Scored[i] = ScoredPackage{Pkg: s.pkg, Val: s.val}
	}
	return out, nil
}

// CountValidShardCtx runs the CPP count over one candidate-space shard:
// the number of the shard's valid packages rated at least bound. Shards
// partition the package space, so the whole-space count is exactly the
// sum of the per-shard counts (MergeCountPartials).
func (p *Problem) CountValidShardCtx(ctx context.Context, bound float64, shard ShardSpec, workers int) (int64, error) {
	if err := shard.Validate(); err != nil {
		return 0, err
	}
	workers = normWorkers(workers)
	counts := make([]paddedCount, workers)
	err := p.runParallelShard(ctx, workers, newFloor(bound, false), shard, func(w int) pathYield {
		return func(pkg Package, path *dfsPath) (bool, error) {
			if path.val(pkg) >= bound {
				counts[w].n++
			}
			return true, nil
		}
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for i := range counts {
		total += counts[i].n
	}
	return total, nil
}

// ExistsCountShardCtx runs the ∃k-valid feasibility check over one
// candidate-space shard, capped: it returns min(k, the shard's number of
// valid packages rated at least bound), cancelling the walk as soon as
// the cap is reached — a shard holding k qualifying packages alone
// already decides the global question. The global answer is
// MergeExistsPartials: the capped counts sum to at least k iff k
// qualifying packages exist in the whole space.
func (p *Problem) ExistsCountShardCtx(ctx context.Context, k int, bound float64, shard ShardSpec, workers int) (int64, error) {
	if err := shard.Validate(); err != nil {
		return 0, err
	}
	if k <= 0 {
		return 0, nil
	}
	var found atomic.Int64
	err := p.runParallelShard(ctx, normWorkers(workers), newFloor(bound, false), shard, func(int) pathYield {
		return func(pkg Package, path *dfsPath) (bool, error) {
			if path.val(pkg) >= bound && found.Add(1) >= int64(k) {
				return false, nil // the cap cancels all workers
			}
			return true, nil
		}
	})
	if err != nil {
		return 0, err
	}
	if n := found.Load(); n < int64(k) {
		return n, nil
	}
	return int64(k), nil
}

// WorseScoredKeyed is the engine's deterministic top-k order on
// (rating, canonical package key) pairs: a ranks strictly below b under
// descending rating with ties broken by ascending key. Exported so
// coordinators merging wire-level partials (which carry vals and can
// rebuild keys via NewPackage, but never touch scored buffers) reproduce
// exactly the order the engine's own merge uses.
func WorseScoredKeyed(aVal float64, aKey string, bVal float64, bKey string) bool {
	return worseScored(scoredPkg{pkg: Package{key: aKey}, val: aVal},
		scoredPkg{pkg: Package{key: bKey}, val: bVal})
}

// MergeTopKPartials merges per-shard top-k partials into the whole-space
// scored selection: concatenate, sort under the deterministic order, take
// k. ok is false when the union holds fewer than k packages — with
// hint-free partials that means fewer than k valid packages exist
// globally, the same condition the single-node search reports. The
// result is bit-identical to the single-node scored top-k when the
// partials cover all Count shards exactly once.
func MergeTopKPartials(k int, parts []TopKPartial) (scored []ScoredPackage, ok bool) {
	var all []ScoredPackage
	for _, p := range parts {
		all = append(all, p.Scored...)
	}
	sort.Slice(all, func(i, j int) bool {
		return WorseScoredKeyed(all[j].Val, all[j].Pkg.Key(), all[i].Val, all[i].Pkg.Key())
	})
	if len(all) < k {
		return nil, false
	}
	return all[:k], true
}

// MergeCountPartials sums per-shard counts — exact, because shards
// partition the package space.
func MergeCountPartials(parts []int64) int64 {
	var total int64
	for _, n := range parts {
		total += n
	}
	return total
}

// MergeExistsPartials decides ∃k-valid from per-shard capped counts
// (ExistsCountShardCtx): the qualifying packages number at least k iff
// the capped counts sum to at least k. k ≤ 0 is vacuously true, matching
// ExistsKValid.
func MergeExistsPartials(k int, parts []int64) bool {
	if k <= 0 {
		return true
	}
	var total int64
	for _, n := range parts {
		total += n
	}
	return total >= int64(k)
}

// MergeMaxBoundPartials computes the MBP maximum bound from per-shard
// top-k partials: the minimum rating of the merged selection, exactly as
// MaxBound reads it off the single-node scored top-k. ok is false when no
// top-k selection exists.
func MergeMaxBoundPartials(k int, parts []TopKPartial) (bound float64, ok bool) {
	merged, ok := MergeTopKPartials(k, parts)
	if !ok {
		return 0, false
	}
	bound = math.Inf(1)
	for _, s := range merged {
		bound = math.Min(bound, s.Val)
	}
	return bound, true
}
