package core

import (
	"sort"

	"repro/internal/query"
	"repro/internal/relation"
)

// TopKItems solves the item recommendation problem: a top-k selection for
// (Q, D, f) — the k distinct tuples of Q(D) with the highest utility, or
// ok = false if |Q(D)| < k. Items are ordered by descending utility with
// ties broken by canonical tuple key, matching FindTopK's determinism. This
// is the PTIME (data complexity) fast path of Theorem 6.4.
func TopKItems(db *relation.Database, q query.Query, f Utility, k int) (items []relation.Tuple, ok bool, err error) {
	ans, err := q.Eval(db)
	if err != nil {
		return nil, false, err
	}
	if ans.Len() < k {
		return nil, false, nil
	}
	tuples := append([]relation.Tuple(nil), ans.Tuples()...)
	sort.Slice(tuples, func(i, j int) bool {
		fi, fj := f(tuples[i]), f(tuples[j])
		if fi != fj {
			return fi > fj
		}
		return tuples[i].Compare(tuples[j]) < 0
	})
	return tuples[:k], true, nil
}

// ItemProblem embeds item recommendation into the package model exactly as
// Section 2 prescribes: Qc is the empty (absent) query, cost(N) = |N| with
// cost(∅) = ∞, C = 1 (so packages are singletons), and val({s}) = f(s).
// FindTopK on the returned problem agrees with TopKItems (tested as the
// Section 2 embedding property).
func ItemProblem(db *relation.Database, q query.Query, f Utility, k int) *Problem {
	return &Problem{
		DB:     db,
		Q:      q,
		Cost:   CountOrInf(),
		Val:    SingletonVal(f),
		Budget: 1,
		K:      k,
	}
}

// ItemsOf flattens a selection of singleton packages back to items, the
// inverse of the Section 2 embedding.
func ItemsOf(sel []Package) []relation.Tuple {
	out := make([]relation.Tuple, 0, len(sel))
	for _, p := range sel {
		out = append(out, p.Tuples()...)
	}
	return out
}
