package core

import (
	"math"
	"testing"

	"repro/internal/relation"
)

// sameFloat is bitwise agreement modulo NaN payloads: both NaN, or ==.
func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestStepperEmptyPackage pins every stock stepper against a full Eval on
// the empty package — before any push and again after a complete
// push…pop unwinding.
func TestStepperEmptyPackage(t *testing.T) {
	ts := []relation.Tuple{
		relation.NewTuple(relation.Int(1), relation.Int(2), relation.Int(3)),
		relation.NewTuple(relation.Int(4), relation.Int(5), relation.Int(6)),
	}
	for name, agg := range stockAggregators() {
		want := agg.Eval(NewPackage())
		st := agg.NewStepper()
		if got := st.Value(); !sameFloat(got, want) {
			t.Errorf("%s: fresh stepper %v, Eval(∅) %v", name, got, want)
		}
		for _, tu := range ts {
			st.Push(tu)
		}
		for range ts {
			st.Pop()
		}
		if got := st.Value(); !sameFloat(got, want) {
			t.Errorf("%s: unwound stepper %v, Eval(∅) %v", name, got, want)
		}
	}
}

// TestStepperSpecialValues drives every stock stepper over tuples holding
// NaN and ±Inf attributes, in canonical order, demanding agreement with the
// full Eval at every prefix and after every pop — the engine must not lose
// bitwise equality when the data turns adversarial.
func TestStepperSpecialValues(t *testing.T) {
	specials := []relation.Tuple{
		relation.NewTuple(relation.Float(math.Inf(-1)), relation.Float(math.NaN()), relation.Float(0)),
		relation.NewTuple(relation.Float(0), relation.Float(math.Inf(1)), relation.Float(math.Inf(-1))),
		relation.NewTuple(relation.Float(1), relation.Float(-2), relation.Float(math.NaN())),
		relation.NewTuple(relation.Float(math.NaN()), relation.Float(3), relation.Float(math.Inf(1))),
	}
	specials = sortCanonical(specials)
	for name, agg := range stockAggregators() {
		st := agg.NewStepper()
		for i, tu := range specials {
			st.Push(tu)
			want := agg.Eval(NewPackage(specials[:i+1]...))
			if got := st.Value(); !sameFloat(got, want) {
				t.Errorf("%s: prefix %d: stepper %v, eval %v", name, i+1, got, want)
			}
		}
		for i := len(specials) - 1; i >= 0; i-- {
			st.Pop()
			want := agg.Eval(NewPackage(specials[:i]...))
			if got := st.Value(); !sameFloat(got, want) {
				t.Errorf("%s: after pop to %d: stepper %v, eval %v", name, i, got, want)
			}
		}
	}
}

// TestTopkBufInsertionOrderIndependent pins the determinism property the
// parallel merge relies on: the selected packages (and their order) do not
// depend on the order equal-valued packages arrive in. Every permutation of
// a pool with heavy rating ties must produce the same buffer.
func TestTopkBufInsertionOrderIndependent(t *testing.T) {
	pool := []scoredPkg{
		{pkg: NewPackage(relation.NewTuple(relation.Int(1))), val: 5},
		{pkg: NewPackage(relation.NewTuple(relation.Int(2))), val: 5},
		{pkg: NewPackage(relation.NewTuple(relation.Int(3))), val: 5},
		{pkg: NewPackage(relation.NewTuple(relation.Int(4))), val: 7},
		{pkg: NewPackage(relation.NewTuple(relation.Int(5))), val: 5},
		{pkg: NewPackage(relation.NewTuple(relation.Int(6))), val: 3},
	}
	for k := 1; k <= len(pool); k++ {
		var want []Package
		perm := make([]int, len(pool))
		for i := range perm {
			perm[i] = i
		}
		var visit func(n int)
		visit = func(n int) {
			if n == 1 {
				buf := topkBuf{k: k}
				for _, i := range perm {
					buf.add(pool[i])
				}
				got := buf.packages()
				if want == nil {
					want = got
					return
				}
				if len(got) != len(want) {
					t.Fatalf("k=%d: selection size %d vs %d for order %v", k, len(got), len(want), perm)
				}
				for i := range want {
					if !got[i].Equal(want[i]) {
						t.Fatalf("k=%d: rank %d differs for order %v: %v vs %v", k, i, perm, got[i], want[i])
					}
				}
				return
			}
			for i := 0; i < n; i++ {
				visit(n - 1)
				if n%2 == 0 {
					perm[i], perm[n-1] = perm[n-1], perm[i]
				} else {
					perm[0], perm[n-1] = perm[n-1], perm[0]
				}
			}
		}
		visit(len(perm))
	}
}
