package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func TestCountValidParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		db := relation.NewDatabase()
		r := relation.NewRelation(relation.NewSchema("item", "id", "price", "rating"))
		items := 4 + rng.Intn(5)
		for i := 0; i < items; i++ {
			if err := r.Insert(relation.Ints(int64(i), int64(rng.Intn(30)), int64(rng.Intn(10)))); err != nil {
				t.Fatal(err)
			}
		}
		db.Add(r)
		p := &Problem{
			DB: db, Q: query.Identity("RQ", r),
			Cost: SumAttr(1).WithMonotone(), Val: SumAttr(2),
			Budget: float64(10 + rng.Intn(60)), K: 1,
		}
		bound := float64(rng.Intn(15))
		seq, err := p.CountValid(bound)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 4} {
			par, err := p.CountValidParallel(bound, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par != seq {
				t.Fatalf("trial %d workers %d: parallel %d vs sequential %d", trial, workers, par, seq)
			}
		}
	}
}

func TestCountValidParallelWithQcAndPrune(t *testing.T) {
	p := basicProblem(35, 1)
	p.Qc = query.NewCQ("Qc", nil,
		query.Rel("RQ", query.V("i1"), query.V("p1"), query.V("r1")),
		query.Rel("RQ", query.V("i2"), query.V("p2"), query.V("r2")),
		query.Cmp(query.V("i1"), query.OpNe, query.V("i2")))
	seq, err := p.CountValid(math.Inf(-1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := p.CountValidParallel(math.Inf(-1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if par != seq {
		t.Fatalf("with Qc: parallel %d vs sequential %d", par, seq)
	}

	p2 := basicProblem(1000, 1)
	p2.Prune = func(pkg Package) bool { return pkg.Contains(relation.Ints(1, 10, 5)) }
	seq, err = p2.CountValid(math.Inf(-1))
	if err != nil {
		t.Fatal(err)
	}
	par, err = p2.CountValidParallel(math.Inf(-1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if par != seq || par != 7 {
		t.Fatalf("with Prune: parallel %d vs sequential %d (want 7)", par, seq)
	}
}

func TestCountValidParallelErrorPropagation(t *testing.T) {
	p := basicProblem(100, 1)
	p.Qc = query.NewCQ("Qc", nil, query.Rel("missing", query.V("x")))
	if _, err := p.CountValidParallel(0, 4); err == nil {
		t.Fatal("expected Qc error from parallel counting")
	}
}
