package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/query"
	"repro/internal/relation"
)

// Read provenance and delta-driven problem repair. A Problem with
// TrackProvenance set builds, alongside its memoised candidate answer, a
// Provenance table: which relation tuples each candidate was derived from
// (its reads), plus the candidate's singleton cost/val scores. Given the
// touched tuple-key set a collection delta reports, the table answers the
// questions result repair needs without re-evaluating Q: which candidates
// are affected (Rescore), and what the candidate set of the post-delta
// problem is (Advance) — computed by a semi-naive delta pass over the new
// database instead of a full prepare.

// Score is a candidate's singleton pricing: the cost and val of the
// one-tuple package {c}.
type Score struct {
	Cost float64
	Val  float64
}

// Provenance is the per-candidate read table of a prepared Problem. It is
// immutable after construction: Advance builds a new table for the
// advanced problem rather than editing in place, so a table may be read
// while its successor is being built.
type Provenance struct {
	// perCand maps a candidate Tuple.Key() to the union of the SourceRefs
	// of all its derivations.
	perCand map[string][]string
	// byRead inverts perCand: SourceRef → candidate keys reading it.
	byRead map[string][]string
	// scores holds each candidate's singleton pricing.
	scores map[string]Score
	// tuples maps candidate keys back to tuples.
	tuples map[string]relation.Tuple
}

// newProvenance indexes a traced evaluation: reads maps candidate keys to
// source refs, cands is the candidate list the table describes.
func newProvenance(p *Problem, cands []relation.Tuple, reads map[string][]string) *Provenance {
	v := &Provenance{
		perCand: reads,
		byRead:  make(map[string][]string),
		scores:  make(map[string]Score, len(cands)),
		tuples:  make(map[string]relation.Tuple, len(cands)),
	}
	for _, t := range cands {
		k := t.Key()
		v.tuples[k] = t
		pkg := NewPackage(t)
		v.scores[k] = Score{Cost: p.Cost.Eval(pkg), Val: p.Val.Eval(pkg)}
		for _, ref := range reads[k] {
			v.byRead[ref] = append(v.byRead[ref], k)
		}
	}
	return v
}

// Reads returns the source refs (query.SourceRef form) of every derivation
// of the candidate with the given Tuple.Key(); nil for unknown candidates.
func (v *Provenance) Reads(candidateKey string) []string { return v.perCand[candidateKey] }

// Readers returns the keys of the candidates with a derivation through the
// given source ref.
func (v *Provenance) Readers(ref string) []string { return v.byRead[ref] }

// Score returns the candidate's singleton pricing.
func (v *Provenance) Score(candidateKey string) (Score, bool) {
	s, ok := v.scores[candidateKey]
	return s, ok
}

// Len is the number of candidates priced by the table.
func (v *Provenance) Len() int { return len(v.tuples) }

// Provenance returns the problem's read-provenance table, nil when the
// problem does not track provenance (TrackProvenance unset, or Q outside
// the traceable fragment). Building the candidates builds the table.
func (p *Problem) Provenance() (*Provenance, error) {
	if _, err := p.Candidates(); err != nil {
		return nil, err
	}
	return p.prov, nil
}

// CandidatesFingerprint is the content fingerprint of the memoised
// candidate answer Q(D) — the candidate-set digest repair classification
// compares across versions.
func (p *Problem) CandidatesFingerprint() (string, error) {
	c, err := p.Candidates()
	if err != nil {
		return "", err
	}
	return c.Fingerprint(), nil
}

// CandidateUpdate is one entry of a Rescore report: a candidate whose
// derivations read a touched tuple, or a candidate newly derivable after
// the delta, with its score on the new database. A surviving candidate's
// score never actually moves — candidates are output tuples and their
// pricing is a function of their own attributes — so a non-Added,
// non-Removed update re-confirms the recorded score.
type CandidateUpdate struct {
	Tuple   relation.Tuple
	Added   bool // newly derivable after the delta
	Removed bool // no longer derivable after the delta
	Score   Score
}

// Rescore reports, given the touched tuple keys a delta produced, the
// affected candidates and their new scores over the post-delta database:
// candidates with a recorded read among the removed tuples (re-checked for
// derivability, and marked Removed when every derivation broke) and
// candidates newly derivable through the added tuples. Candidates outside
// the report are untouched: no derivation of theirs read a touched tuple.
func (p *Problem) Rescore(newDB *relation.Database, touched map[string]relation.TouchSet) ([]CandidateUpdate, error) {
	d, err := p.rescore(newDB, touched)
	if err != nil {
		return nil, err
	}
	var out []CandidateUpdate
	for _, t := range d.removed {
		k := t.Key()
		s := p.prov.scores[k]
		out = append(out, CandidateUpdate{Tuple: t, Removed: true, Score: s})
	}
	for k := range d.retraced {
		t := p.prov.tuples[k]
		pkg := NewPackage(t)
		out = append(out, CandidateUpdate{Tuple: t, Score: Score{Cost: p.Cost.Eval(pkg), Val: p.Val.Eval(pkg)}})
	}
	for _, t := range d.added {
		pkg := NewPackage(t)
		out = append(out, CandidateUpdate{Tuple: t, Added: true, Score: Score{Cost: p.Cost.Eval(pkg), Val: p.Val.Eval(pkg)}})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out, nil
}

// AdvanceDiff reports how Advance changed the candidate set. Unchanged
// means the advanced problem's candidates (and therefore every score and
// bound table) are identical to the receiver's — the delta touched nothing
// any candidate was derived from, or only broke redundant derivations.
type AdvanceDiff struct {
	Unchanged bool
	Added     []relation.Tuple
	Removed   []relation.Tuple
}

// Advance returns a prepared copy of the problem over the post-delta
// database, computed incrementally from the receiver's provenance: instead
// of re-evaluating Q, affected candidates are re-checked for derivability
// and new candidates found by a semi-naive pass restricted to the added
// tuples. The advanced problem tracks provenance again, so a chain of
// deltas advances in O(touched work) per step. The receiver is unchanged
// and remains usable (it describes the old snapshot).
func (p *Problem) Advance(newDB *relation.Database, touched map[string]relation.TouchSet) (*Problem, *AdvanceDiff, error) {
	d, err := p.rescore(newDB, touched)
	if err != nil {
		return nil, nil, err
	}
	adv := *p
	adv.DB = newDB
	diff := &AdvanceDiff{Added: d.added, Removed: d.removed}

	if len(d.added) == 0 && len(d.removed) == 0 {
		diff.Unchanged = true
		// Candidate set, scores, and bound tables all carry over; only the
		// read table may need refreshing (surviving candidates whose
		// derivations were re-traced, or new redundant derivations).
		if len(d.retraced) > 0 || len(d.merged) > 0 {
			adv.prov = p.prov.rebuilt(p, p.candList, d)
		}
		return &adv, diff, nil
	}

	removedKeys := make(map[string]struct{}, len(d.removed))
	for _, t := range d.removed {
		removedKeys[t.Key()] = struct{}{}
	}
	list := make([]relation.Tuple, 0, len(p.candList)+len(d.added))
	for _, t := range p.candList {
		if _, gone := removedKeys[t.Key()]; !gone {
			list = append(list, t)
		}
	}
	list = append(list, d.added...)
	sort.Slice(list, func(i, j int) bool { return list[i].Compare(list[j]) < 0 })

	cands := p.candidates.Clone()
	for _, t := range d.removed {
		cands.Delete(t)
	}
	for _, t := range d.added {
		if err := cands.Insert(t); err != nil {
			return nil, nil, err
		}
	}
	adv.candidates = cands
	adv.candList = list
	adv.costBounds, adv.valBounds, adv.boundsReady = nil, nil, false
	adv.newStrategy(nil) // rebuild the bound tables over the new list
	adv.prov = p.prov.rebuilt(&adv, list, d)
	return &adv, diff, nil
}

// rescoreDiff is the shared internal result of one delta pass.
type rescoreDiff struct {
	removed []relation.Tuple
	added   []relation.Tuple
	// retraced maps surviving affected candidates to their fresh reads on
	// the new database.
	retraced map[string][]string
	// merged maps existing candidates that gained derivations through
	// added tuples to the refs of those derivations.
	merged map[string][]string
	// addedReads maps new candidates to their delta-derivation reads.
	addedReads map[string][]string
}

// rescore runs the delta pass: affected-candidate re-derivation plus the
// semi-naive search for new candidates.
func (p *Problem) rescore(newDB *relation.Database, touched map[string]relation.TouchSet) (*rescoreDiff, error) {
	if newDB == nil {
		return nil, fmt.Errorf("core: rescore needs the post-delta database")
	}
	if _, err := p.Candidates(); err != nil {
		return nil, err
	}
	if p.prov == nil {
		return nil, fmt.Errorf("core: problem does not track provenance (TrackProvenance unset or query untraceable)")
	}
	d := &rescoreDiff{retraced: make(map[string][]string), merged: make(map[string][]string)}

	// Candidates with a recorded read among the removed tuples: re-check
	// derivability with the head bound to the candidate.
	affected := make(map[string]struct{})
	for rel, ts := range touched {
		for _, t := range ts.Removed {
			for _, ck := range p.prov.byRead[query.SourceRef(rel, t.Key())] {
				affected[ck] = struct{}{}
			}
		}
	}
	for ck := range affected {
		t := p.prov.tuples[ck]
		ok, reads, err := query.TraceTuple(p.Q, newDB, t)
		if err != nil {
			return nil, err
		}
		if !ok {
			d.removed = append(d.removed, t)
			continue
		}
		d.retraced[ck] = reads
	}
	sort.Slice(d.removed, func(i, j int) bool { return d.removed[i].Compare(d.removed[j]) < 0 })

	// New candidates: every output with a derivation through an added
	// tuple, found by one semi-naive pass. Outputs already in the old
	// candidate set merely gained a redundant derivation; recording those
	// reads keeps the table closer to complete but is not required for
	// soundness (an unrecorded derivation breaking can only be confused
	// for "unaffected", which is correct while a recorded one holds).
	addedByRel := make(map[string][]relation.Tuple)
	for rel, ts := range touched {
		if len(ts.Added) > 0 {
			addedByRel[rel] = ts.Added
		}
	}
	if len(addedByRel) > 0 {
		tuples, reads, err := query.TraceDelta(p.Q, newDB, addedByRel)
		if err != nil {
			return nil, err
		}
		for _, t := range tuples {
			k := t.Key()
			if _, existing := p.prov.tuples[k]; existing {
				// Already a candidate: it gained a redundant derivation.
				// (It cannot be in removed — a delta derivation on the new
				// database would have satisfied its re-trace.)
				d.merged[k] = reads[k]
				continue
			}
			d.added = append(d.added, t)
			if d.addedReads == nil {
				d.addedReads = make(map[string][]string)
			}
			d.addedReads[k] = reads[k]
		}
		sort.Slice(d.added, func(i, j int) bool { return d.added[i].Compare(d.added[j]) < 0 })
	}
	return d, nil
}

// rebuilt produces the advanced problem's provenance table from the old
// table and a delta pass: removed candidates dropped, re-traced candidates
// refreshed, merged derivations unioned in, added candidates priced.
func (v *Provenance) rebuilt(adv *Problem, cands []relation.Tuple, d *rescoreDiff) *Provenance {
	reads := make(map[string][]string, len(cands))
	for _, t := range cands {
		k := t.Key()
		if fresh, ok := d.retraced[k]; ok {
			reads[k] = fresh
		} else if r, ok := d.addedReads[k]; ok {
			reads[k] = r
		} else {
			reads[k] = v.perCand[k]
		}
		if extra, ok := d.merged[k]; ok {
			reads[k] = unionRefs(reads[k], extra)
		}
	}
	return newProvenance(adv, cands, reads)
}

func unionRefs(a, b []string) []string {
	seen := make(map[string]struct{}, len(a))
	out := append([]string(nil), a...)
	for _, r := range a {
		seen[r] = struct{}{}
	}
	for _, r := range b {
		if _, ok := seen[r]; !ok {
			seen[r] = struct{}{}
			out = append(out, r)
		}
	}
	return out
}

// CandidateValUpper returns an admissible upper bound on val(N) over every
// package N containing c with |N| within the size bound, drawn from the
// problem's candidate list: the suffix bound tables evaluated over the full
// list, so any extension of {c} is covered. ok is false when the val
// aggregator carries no bounder (or the problem is exhaustive) — the caller
// must then treat every candidate as potentially relevant.
func (p *Problem) CandidateValUpper(c relation.Tuple) (float64, bool, error) {
	if err := p.Prepare(); err != nil {
		return 0, false, err
	}
	if p.Exhaustive || p.valBounds == nil {
		return 0, false, nil
	}
	cur := p.Val.Eval(NewPackage(c))
	ms, err := p.maxSize()
	if err != nil {
		return 0, false, err
	}
	if ms-1 <= 0 || len(p.candList) == 0 {
		return cur, true, nil
	}
	return math.Max(cur, p.valBounds.Upper(cur, 1, 0, ms-1)), true, nil
}

// CandidateCostLower is the pessimistic twin: a lower bound on cost(N)
// over every size-valid package N containing c. A bound above the budget
// proves c participates in no valid package.
func (p *Problem) CandidateCostLower(c relation.Tuple) (float64, bool, error) {
	if err := p.Prepare(); err != nil {
		return 0, false, err
	}
	if p.Exhaustive || p.costBounds == nil {
		return 0, false, nil
	}
	cur := p.Cost.Eval(NewPackage(c))
	ms, err := p.maxSize()
	if err != nil {
		return 0, false, err
	}
	if ms-1 <= 0 || len(p.candList) == 0 {
		return cur, true, nil
	}
	return math.Min(cur, p.costBounds.Lower(cur, 1, 0, ms-1)), true, nil
}
