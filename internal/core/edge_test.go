package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func TestErrorPropagationFromBadQc(t *testing.T) {
	p := basicProblem(100, 1)
	// Qc referencing a relation that exists in neither D nor the package
	// overlay: every solver entry point must surface the error.
	p.Qc = query.NewCQ("Qc", nil, query.Rel("NoSuchRel", query.V("x")))
	if _, err := p.Compatible(NewPackage(relation.Ints(1, 10, 5))); err == nil {
		t.Fatal("Compatible should fail on unknown relation in Qc")
	}
	if _, _, err := p.FindTopK(); err == nil {
		t.Fatal("FindTopK should surface the Qc error")
	}
	if _, _, err := p.DecideTopK([]Package{NewPackage(relation.Ints(1, 10, 5))}); err == nil {
		t.Fatal("DecideTopK should surface the Qc error")
	}
	if _, err := p.CountValid(0); err == nil {
		t.Fatal("CountValid should surface the Qc error")
	}
	if _, _, err := p.MaxBound(); err == nil {
		t.Fatal("MaxBound should surface the Qc error")
	}
}

func TestErrorPropagationFromBadQuery(t *testing.T) {
	db := itemsDB()
	p := &Problem{
		DB:   db,
		Q:    query.NewCQ("RQ", []query.Term{query.V("x")}, query.Rel("missing", query.V("x"))),
		Cost: Count(), Val: Count(), Budget: 10, K: 1,
	}
	if _, err := p.Candidates(); err == nil {
		t.Fatal("Candidates should fail on unknown relation in Q")
	}
	if _, _, err := p.FindTopK(); err == nil {
		t.Fatal("FindTopK should surface the Q error")
	}
	if _, _, err := p.FindTopKViaOracle(0, 10); err == nil {
		t.Fatal("FindTopKViaOracle should surface the Q error")
	}
	if _, err := p.ExistsKValid(1, 0); err == nil {
		t.Fatal("ExistsKValid should surface the Q error")
	}
}

func TestCompatFnErrorPropagates(t *testing.T) {
	p := basicProblem(100, 1)
	sentinel := errors.New("compat boom")
	p.CompatFn = func(Package, *relation.Database) (bool, error) { return false, sentinel }
	_, _, err := p.FindTopK()
	if !errors.Is(err, sentinel) {
		t.Fatalf("expected the CompatFn error, got %v", err)
	}
}

func TestZeroK(t *testing.T) {
	p := basicProblem(100, 0)
	sel, ok, err := p.FindTopK()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(sel) != 0 {
		t.Fatalf("top-0 selection should be the empty set: ok=%v sel=%v", ok, sel)
	}
	accept, _, err := p.DecideTopK(nil)
	if err != nil || !accept {
		t.Fatalf("the empty selection is trivially top-0: %v %v", accept, err)
	}
}

func TestInfeasibleBudget(t *testing.T) {
	p := basicProblem(math.Inf(-1), 1)
	_, ok, err := p.FindTopK()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("no package fits a −∞ budget")
	}
	n, err := p.CountValid(math.Inf(-1))
	if err != nil || n != 0 {
		t.Fatalf("CountValid = %d, want 0", n)
	}
	if _, ok, _ := p.MaxBound(); ok {
		t.Fatal("MaxBound should not exist")
	}
	if got, _ := p.IsMaxBound(0); got {
		t.Fatal("no bound is the maximum when nothing is valid")
	}
}

func TestEmptyDatabase(t *testing.T) {
	db := relation.NewDatabase()
	db.Add(relation.NewRelation(relation.NewSchema("item", "id", "price", "rating")))
	p := &Problem{
		DB: db, Q: query.Identity("RQ", db.Relation("item")),
		Cost: Count(), Val: Count(), Budget: 10, K: 1,
	}
	sel, ok, err := p.FindTopK()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("empty Q(D) cannot yield a top-1 selection: %v", sel)
	}
}

func TestEnumerateValidEarlyStop(t *testing.T) {
	p := basicProblem(1000, 1)
	calls := 0
	err := p.EnumerateValid(func(Package) (bool, error) {
		calls++
		return false, nil // stop immediately
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("yield called %d times after requesting stop", calls)
	}
}

func TestEnumerateValidErrorStop(t *testing.T) {
	p := basicProblem(1000, 1)
	sentinel := errors.New("stop with error")
	err := p.EnumerateValid(func(Package) (bool, error) { return false, sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("expected sentinel error, got %v", err)
	}
}

func TestPruneHintCutsEnumeration(t *testing.T) {
	p := basicProblem(1000, 1)
	// Hereditary hint: forbid any package containing item 1 — its branch
	// must never be explored.
	p.Prune = func(pkg Package) bool { return pkg.Contains(relation.Ints(1, 10, 5)) }
	err := p.EnumerateValid(func(pkg Package) (bool, error) {
		if pkg.Contains(relation.Ints(1, 10, 5)) {
			t.Fatalf("pruned package %v enumerated", pkg)
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 remaining items → 7 non-empty subsets.
	n, err := p.CountValid(math.Inf(-1))
	if err != nil || n != 7 {
		t.Fatalf("CountValid with prune = %d, want 7", n)
	}
}

func TestWithMaxSizeZeroMeansDefault(t *testing.T) {
	p := basicProblem(1000, 1)
	ms, err := p.maxSize()
	if err != nil {
		t.Fatal(err)
	}
	if ms != 4 {
		t.Fatalf("default size bound = %d, want |Q(D)| = 4", ms)
	}
}

func TestOracleRespectsExclusions(t *testing.T) {
	p := basicProblem(15, 2)
	sel, ok, err := p.FindTopKViaOracle(0, 20)
	if err != nil || !ok {
		t.Fatalf("oracle: ok=%v err=%v", ok, err)
	}
	if sel[0].Equal(sel[1]) {
		t.Fatal("oracle returned duplicate packages")
	}
	// Ratings are non-increasing across slots.
	if p.Val.Eval(sel[0]) < p.Val.Eval(sel[1]) {
		t.Fatal("oracle slots out of order")
	}
}

func TestValidAboveBoundary(t *testing.T) {
	p := basicProblem(15, 1)
	pkg := NewPackage(relation.Ints(1, 10, 5)) // val 5
	ok, err := p.ValidAbove(pkg, 5)
	if err != nil || !ok {
		t.Fatalf("val = bound should satisfy ValidAbove: %v %v", ok, err)
	}
	ok, err = p.ValidAbove(pkg, 5.0001)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("val below bound should fail ValidAbove")
	}
}
