package core

import (
	"context"
	"strings"
	"sync/atomic"
)

// This file extracts the reusable half of a feasibility solve out of
// Problem. The relaxation and adjustment searches (Sections 7 and 8) both
// probe a long sequence of problem variants — the same (Qc, cost, val, C,
// k, B) frame with the selection query or the database swapped per gap
// assignment or per candidate adjustment — and each probe asks the same
// question: do k distinct valid packages rated at least B exist? A
// SolveSession holds what successive probes can share: the static search
// floor the bound layer prunes against, and a memo of probe outcomes keyed
// by the variant's prepared candidate list, so a variant whose candidates
// an earlier probe already walked resumes from the recorded verdict instead
// of restarting the subset-DFS. Many lattice neighbours really do collide —
// a relaxation level that only admits tuples the query's other conjuncts
// reject leaves Q(D) unchanged — which is where the engine's node counts
// drop (EngineCounters.SessionResumes / SessionNodesSaved account for it).

// SolveSession shares state across a sequence of ∃k-valid feasibility
// probes over variants of one problem frame. The zero value is not usable;
// construct with NewSolveSession. A session is not safe for concurrent use
// (probes inside one search run sequentially); each probe may itself run on
// the parallel engine via ProbeParallel.
type SolveSession struct {
	// K and Bound fix the feasibility question all probes ask: k distinct
	// valid packages rated at least Bound.
	K     int
	Bound float64

	// floor is the shared static pruning floor (val upper bounds below it
	// cut subtrees). It equals Bound for every probe — variants are rated
	// on the same scale — so sharing it is answer-preserving by the same
	// argument as ExistsKValid's per-call floor.
	floor *searchFloor
	memo  map[string]probeRecord
}

// probeRecord is one memoised probe outcome together with the DFS nodes
// its original walk visited (what a resume saves).
type probeRecord struct {
	ok      bool
	witness *Package
	nodes   int64
}

// NewSolveSession builds a session for the feasibility question
// (k, bound): do k distinct valid packages rated at least bound exist?
func NewSolveSession(k int, bound float64) *SolveSession {
	return &SolveSession{
		K:     k,
		Bound: bound,
		floor: newFloor(bound, false),
		memo:  make(map[string]probeRecord),
	}
}

// Probe answers the session's feasibility question for one problem variant
// with the serial engine, in canonical DFS order — the walk is identical to
// Problem.ExistsKValid, so a sequence of Probe calls returns exactly what a
// sequence of fresh ExistsKValid calls would. On success the returned
// witness is the first qualifying package in canonical order.
//
// salt distinguishes variants whose feasibility depends on state beyond the
// candidate list: pass "" when only the selection query varies (the database
// and every other field are shared, so equal candidate lists imply equal
// verdicts), and a variant identity — e.g. the adjustment delta — when the
// database itself differs and a compatibility query or CompatFn could read
// the part that changed.
func (s *SolveSession) Probe(variant *Problem, salt string) (bool, *Package, error) {
	return s.probe(variant, salt, func(v *Problem) (bool, *Package, error) {
		found := 0
		var wit *Package
		err := v.enumerateValidFloor(s.floor, func(pkg Package, path *dfsPath) (bool, error) {
			if path.val(pkg) >= s.Bound {
				if wit == nil {
					p := pkg
					wit = &p
				}
				found++
				if found >= s.K {
					return false, nil
				}
			}
			return true, nil
		})
		if err != nil || found < s.K {
			return false, nil, err
		}
		return true, wit, nil
	})
}

// ProbeParallel is Probe on the root-splitting parallel engine (workers ≤ 0
// means GOMAXPROCS) with cooperative cancellation — the walk and verdict
// mirror Problem.ExistsKValidParallelCtx. The verdict is deterministic;
// which qualifying package is returned as the witness depends on worker
// timing (any of them proves feasibility, the RPP witness precedent), and a
// later resume of the same probe repeats the recorded one.
func (s *SolveSession) ProbeParallel(ctx context.Context, variant *Problem, salt string, workers int) (bool, *Package, error) {
	return s.probe(variant, salt, func(v *Problem) (bool, *Package, error) {
		w := normWorkers(workers)
		var found atomic.Int64
		wits := make([]*Package, w)
		err := v.runParallel(ctx, w, s.floor, func(wi int) pathYield {
			return func(pkg Package, path *dfsPath) (bool, error) {
				if path.val(pkg) >= s.Bound {
					if wits[wi] == nil {
						p := pkg
						wits[wi] = &p
					}
					if found.Add(1) >= int64(s.K) {
						return false, nil // the k-th hit cancels all workers
					}
				}
				return true, nil
			}
		})
		if err != nil || found.Load() < int64(s.K) {
			return false, nil, err
		}
		for _, wit := range wits {
			if wit != nil {
				return true, wit, nil
			}
		}
		return true, nil, nil
	})
}

// probe runs one feasibility probe through the memo. The variant's counters
// are swapped for a private set during the probe so the probe's own node
// count can be recorded (and credited to resumes later); the private
// tallies are folded back into the variant's counters afterwards.
func (s *SolveSession) probe(variant *Problem, salt string, run func(*Problem) (bool, *Package, error)) (bool, *Package, error) {
	if s.K <= 0 {
		return true, nil, nil // vacuously feasible, as in ExistsKValid
	}
	orig := variant.Counters
	priv := &EngineCounters{}
	variant.Counters = priv
	defer func() {
		variant.Counters = orig
		priv.addTo(orig)
	}()
	if _, err := variant.Candidates(); err != nil {
		return false, nil, err
	}
	key := s.memoKey(variant, salt)
	if rec, hit := s.memo[key]; hit {
		priv.SessionResumes.Add(1)
		priv.SessionNodesSaved.Add(rec.nodes)
		return rec.ok, rec.witness, nil
	}
	if len(variant.candList) == 0 {
		// No candidates: with k ≥ 1 the probe is trivially infeasible and
		// both engines would walk zero roots — record the empty walk.
		s.memo[key] = probeRecord{}
		return false, nil, nil
	}
	ok, wit, err := run(variant)
	if err != nil {
		return false, nil, err
	}
	s.memo[key] = probeRecord{ok: ok, witness: wit, nodes: priv.Nodes.Load()}
	return ok, wit, nil
}

// memoKey builds the probe memo key: the caller's salt plus the prepared
// candidate list's content fingerprint (canonical tuple keys in canonical
// order). Equal keys mean the probes enumerate the same forest under the
// same validity rules, so the recorded verdict transfers.
func (s *SolveSession) memoKey(variant *Problem, salt string) string {
	var b strings.Builder
	b.WriteString(salt)
	for _, t := range variant.candList {
		b.WriteByte('\x1e')
		b.WriteString(t.Key())
	}
	return b.String()
}
