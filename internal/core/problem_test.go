package core

import (
	"math"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// itemsDB is a small store of items: item(id, price, rating).
func itemsDB() *relation.Database {
	db := relation.NewDatabase()
	db.Add(relation.FromTuples(relation.NewSchema("item", "id", "price", "rating"),
		relation.Ints(1, 10, 5),
		relation.Ints(2, 20, 8),
		relation.Ints(3, 30, 9),
		relation.Ints(4, 5, 3)))
	return db
}

// basicProblem selects all items, cost = total price with budget, val = total
// rating, no compatibility constraints.
func basicProblem(budget float64, k int) *Problem {
	db := itemsDB()
	return &Problem{
		DB:     db,
		Q:      query.Identity("RQ", db.Relation("item")),
		Cost:   SumAttr(1).WithMonotone(),
		Val:    SumAttr(2),
		Budget: budget,
		K:      k,
	}
}

func TestCandidatesMemoised(t *testing.T) {
	p := basicProblem(100, 1)
	a, err := p.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Candidates should be memoised")
	}
	if a.Len() != 4 {
		t.Fatalf("candidates = %d, want 4", a.Len())
	}
	p.InvalidateCache()
	c, err := p.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("InvalidateCache should drop the memo")
	}
}

func TestValidity(t *testing.T) {
	p := basicProblem(30, 1)
	cases := []struct {
		pkg  Package
		want bool
	}{
		{NewPackage(relation.Ints(1, 10, 5)), true},
		{NewPackage(relation.Ints(1, 10, 5), relation.Ints(2, 20, 8)), true},  // cost 30
		{NewPackage(relation.Ints(2, 20, 8), relation.Ints(3, 30, 9)), false}, // cost 50
		{NewPackage(relation.Ints(9, 9, 9)), false},                           // not ⊆ Q(D)
		{NewPackage(), true}, // empty: cost 0 ≤ 30 under SumAttr
	}
	for i, c := range cases {
		got, err := p.Valid(c.pkg)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("case %d (%v): Valid = %v, want %v", i, c.pkg, got, c.want)
		}
	}
}

func TestValidRespectsSizeBound(t *testing.T) {
	p := basicProblem(1000, 1).WithMaxSize(1)
	ok, err := p.Valid(NewPackage(relation.Ints(1, 10, 5), relation.Ints(2, 20, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("package exceeding MaxPkgSize must be invalid")
	}
}

func TestEnumerateValidMatchesBruteForce(t *testing.T) {
	for _, budget := range []float64{5, 15, 35, 1000} {
		p := basicProblem(budget, 1)
		got := map[string]struct{}{}
		err := p.EnumerateValid(func(pkg Package) (bool, error) {
			if _, dup := got[pkg.Key()]; dup {
				t.Fatalf("duplicate package %v enumerated", pkg)
			}
			got[pkg.Key()] = struct{}{}
			return true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over all 2^4 - 1 non-empty subsets.
		cands, err := p.Candidates()
		if err != nil {
			t.Fatal(err)
		}
		ts := cands.Tuples()
		want := map[string]struct{}{}
		for mask := 1; mask < 1<<len(ts); mask++ {
			var sub []relation.Tuple
			for i := range ts {
				if mask&(1<<i) != 0 {
					sub = append(sub, ts[i])
				}
			}
			pkg := NewPackage(sub...)
			if ok, err := p.Valid(pkg); err != nil {
				t.Fatal(err)
			} else if ok {
				want[pkg.Key()] = struct{}{}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("budget %g: enumerated %d packages, brute force %d", budget, len(got), len(want))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("budget %g: brute-force package missing from enumeration", budget)
			}
		}
	}
}

func TestEnumerateValidPruningSoundWithNonMonotoneCost(t *testing.T) {
	// cost = |price sum - 25|: non-monotone; a superset of an over-budget
	// package can be within budget. The enumerator must not prune.
	db := itemsDB()
	p := &Problem{
		DB: db,
		Q:  query.Identity("RQ", db.Relation("item")),
		Cost: Func("dist25", func(pkg Package) float64 {
			var s float64
			for _, t := range pkg.Tuples() {
				s += t[1].Float64()
			}
			return math.Abs(s - 25)
		}),
		Val:    Count(),
		Budget: 5,
		K:      1,
	}
	// Valid packages have price sum in [20, 30]: {2}(20), {3}(30),
	// {1,2}(30), {1,4,2}? 10+5+20=35 no; {1,4}+... let's count via brute
	// force instead of hand-listing.
	var got int
	if err := p.EnumerateValid(func(Package) (bool, error) { got++; return true, nil }); err != nil {
		t.Fatal(err)
	}
	cands, _ := p.Candidates()
	ts := cands.Tuples()
	want := 0
	for mask := 1; mask < 1<<len(ts); mask++ {
		var sub []relation.Tuple
		for i := range ts {
			if mask&(1<<i) != 0 {
				sub = append(sub, ts[i])
			}
		}
		if ok, _ := p.Valid(NewPackage(sub...)); ok {
			want++
		}
	}
	if got != want {
		t.Fatalf("non-monotone enumeration found %d, brute force %d", got, want)
	}
	if want == 0 {
		t.Fatal("test fixture degenerate: no valid packages")
	}
}

func TestCompatibleWithQcQuery(t *testing.T) {
	// Qc: package contains two distinct items with the same rating — here,
	// forbid two items whose prices differ by exactly 10.
	db := itemsDB()
	qc := query.NewCQ("Qc", nil,
		query.Rel("RQ", query.V("i1"), query.V("p1"), query.V("r1")),
		query.Rel("RQ", query.V("i2"), query.V("p2"), query.V("r2")),
		query.Cmp(query.V("i1"), query.OpNe, query.V("i2")),
		query.Eq(query.V("p1"), query.V("p2")))
	p := basicProblem(1000, 1)
	p.Qc = qc
	// No two items share a price, so every package is compatible.
	ok, err := p.Compatible(NewPackage(relation.Ints(1, 10, 5), relation.Ints(2, 20, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("distinct-price package should be compatible")
	}
	// Add a price collision and verify Qc fires.
	db.Relation("item").Insert(relation.Ints(5, 10, 7))
	p.InvalidateCache()
	ok, err = p.Compatible(NewPackage(relation.Ints(1, 10, 5), relation.Ints(5, 10, 7)))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("price-colliding package should be incompatible")
	}
}

func TestCompatibleWithPTIMEFn(t *testing.T) {
	p := basicProblem(1000, 1)
	p.CompatFn = func(pkg Package, _ *relation.Database) (bool, error) {
		return pkg.Len() <= 2, nil
	}
	ok, _ := p.Compatible(NewPackage(relation.Ints(1, 10, 5)))
	if !ok {
		t.Fatal("small package should pass the PTIME constraint")
	}
	big := NewPackage(relation.Ints(1, 10, 5), relation.Ints(2, 20, 8), relation.Ints(3, 30, 9))
	ok, _ = p.Compatible(big)
	if ok {
		t.Fatal("large package should fail the PTIME constraint")
	}
}

func TestExistsKValid(t *testing.T) {
	p := basicProblem(15, 1)
	// Valid packages with budget 15: {1}, {4}, {1,4}. All rated by SumAttr(2).
	ok, err := p.ExistsKValid(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("three valid packages exist")
	}
	ok, err = p.ExistsKValid(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("only three valid packages exist")
	}
	// Rating bound filters: val({4}) = 3, val({1}) = 5, val({1,4}) = 8.
	ok, err = p.ExistsKValid(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("two packages rated ≥ 5 exist")
	}
	ok, err = p.ExistsKValid(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("only two packages rated ≥ 5 exist")
	}
}

func TestProblemValidate(t *testing.T) {
	if err := (&Problem{}).Validate(); err == nil {
		t.Fatal("empty problem should fail validation")
	}
	p := basicProblem(10, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.K = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative k should fail validation")
	}
}
