package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// stockAggregators returns every stepper-carrying constructor over a
// three-attribute tuple shape.
func stockAggregators() map[string]Aggregator {
	return map[string]Aggregator{
		"count":      Count(),
		"countOrInf": CountOrInf(),
		"sum":        SumAttr(1),
		"negsum":     NegSumAttr(1),
		"min":        MinAttr(2),
		"max":        MaxAttr(2),
		"avg":        AvgAttr(1),
		"weighted":   WeightedSum(map[int]float64{0: 0.25, 1: -1.5, 2: 3}),
		"const":      ConstAgg(7),
		"singleton":  SingletonVal(UtilityAttr(2)),
	}
}

// TestStepperMatchesEval drives each stock stepper through random LIFO
// push/pop walks over float-valued tuples in canonical order and demands
// bitwise equality with a full Eval of the materialised package at every
// step — the contract the incremental engine relies on.
func TestStepperMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tuples := make([]relation.Tuple, 12)
	for i := range tuples {
		tuples[i] = relation.NewTuple(
			relation.Float(rng.NormFloat64()*10),
			relation.Float(rng.NormFloat64()*3),
			relation.Float(float64(rng.Intn(100))/7))
	}
	// Canonical order, as Candidates guarantees.
	for i := 0; i < len(tuples); i++ {
		for j := i + 1; j < len(tuples); j++ {
			if tuples[j].Compare(tuples[i]) < 0 {
				tuples[i], tuples[j] = tuples[j], tuples[i]
			}
		}
	}
	for name, agg := range stockAggregators() {
		st := agg.NewStepper()
		if st == nil {
			t.Fatalf("%s: stock aggregator without a stepper", name)
		}
		check := func(path []relation.Tuple) {
			t.Helper()
			got := st.Value()
			want := agg.Eval(NewPackage(path...))
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("%s: path %v: stepper %v, eval %v", name, path, got, want)
			}
		}
		var path []relation.Tuple
		check(path)
		for walk := 0; walk < 200; walk++ {
			if len(path) == 0 || (rng.Intn(2) == 0 && len(path) < len(tuples)) {
				// Push a tuple after the current path tail (canonical order).
				lo := 0
				if len(path) > 0 {
					last := path[len(path)-1]
					for lo < len(tuples) && tuples[lo].Compare(last) <= 0 {
						lo++
					}
				}
				if lo >= len(tuples) {
					continue
				}
				next := tuples[lo+rng.Intn(len(tuples)-lo)]
				path = append(path, next)
				st.Push(next)
			} else {
				path = path[:len(path)-1]
				st.Pop()
			}
			check(path)
		}
	}
}

// TestWeightedSumDeterministic asserts the satellite fix: equal packages get
// bitwise-equal ratings however the weights map iterates.
func TestWeightedSumDeterministic(t *testing.T) {
	weights := map[int]float64{0: 0.1, 1: 0.3, 2: 0.7, 3: -0.2, 4: 1.9, 5: 0.05, 6: -3.3}
	pkg := NewPackage(
		relation.NewTuple(relation.Float(1.1), relation.Float(2.2), relation.Float(3.3),
			relation.Float(4.4), relation.Float(5.5), relation.Float(6.6), relation.Float(7.7)),
		relation.NewTuple(relation.Float(0.12), relation.Float(9.8), relation.Float(7.6),
			relation.Float(5.4), relation.Float(3.2), relation.Float(1.0), relation.Float(0.9)))
	want := WeightedSum(weights).Eval(pkg)
	for trial := 0; trial < 50; trial++ {
		// Rebuild the map so Go's randomised iteration order varies.
		w := make(map[int]float64, len(weights))
		for k, v := range weights {
			w[k] = v
		}
		if got := WeightedSum(w).Eval(pkg); got != want {
			t.Fatalf("trial %d: WeightedSum depends on map order: %v vs %v", trial, got, want)
		}
	}
}

// TestFuncAggregatorHasNoStepper pins the fallback contract: arbitrary
// aggregators report no stepper and the engine recomputes.
func TestFuncAggregatorHasNoStepper(t *testing.T) {
	a := Func("custom", func(p Package) float64 { return float64(p.Len() * 2) })
	if a.NewStepper() != nil {
		t.Fatal("Func aggregator unexpectedly has a stepper")
	}
	withSt := a.WithStepper(func() Stepper {
		return &stackStepper{step: func(acc float64, _ relation.Tuple) float64 { return acc + 2 }}
	})
	st := withSt.NewStepper()
	if st == nil {
		t.Fatal("WithStepper did not attach a stepper")
	}
	st.Push(relation.NewTuple(relation.Int(1)))
	if st.Value() != 2 {
		t.Fatalf("attached stepper value = %v, want 2", st.Value())
	}
}
