package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// boundedAggregators returns every bounder-carrying stock constructor over
// the three-attribute tuple shape the tests share.
func boundedAggregators() map[string]Aggregator {
	m := map[string]Aggregator{}
	for name, agg := range stockAggregators() {
		if name == "avg" { // AvgAttr deliberately has no bounder
			continue
		}
		m[name] = agg
	}
	return m
}

// sortCanonical sorts tuples into the canonical order Candidates guarantees
// and drops duplicates — candidate lists are sets, as Q(D) is a relation.
func sortCanonical(tuples []relation.Tuple) []relation.Tuple {
	for i := 0; i < len(tuples); i++ {
		for j := i + 1; j < len(tuples); j++ {
			if tuples[j].Compare(tuples[i]) < 0 {
				tuples[i], tuples[j] = tuples[j], tuples[i]
			}
		}
	}
	out := tuples[:0]
	for i, t := range tuples {
		if i == 0 || t.Key() != tuples[i-1].Key() {
			out = append(out, t)
		}
	}
	return out
}

// admissibleOn drives one bounder through every (path, extension) pair of a
// candidate list and fails on any bound violation. The assertions are
// written in "never prune wrongly" form — a NaN bound compares false and
// passes, matching the engine's NaN-never-cuts contract.
func admissibleOn(t *testing.T, name string, agg Aggregator, cands []relation.Tuple) {
	t.Helper()
	b := agg.NewBounder(cands)
	if b == nil {
		t.Fatalf("%s: stock aggregator without a bounder", name)
	}
	n := len(cands)
	// Paths and extensions as index bitmasks; n stays small enough for 2^n.
	for pm := 1; pm < 1<<n; pm++ {
		path := subset(cands, pm)
		cur := agg.Eval(NewPackage(path...))
		for start := 0; start < n; start++ {
			for em := 1; em < 1<<n; em++ {
				if em&pm != 0 || em&((1<<start)-1) != 0 {
					continue // extensions are disjoint from the path, drawn from cands[start:]
				}
				ext := subset(cands, em)
				full := agg.Eval(NewPackage(append(append([]relation.Tuple{}, path...), ext...)...))
				for rem := len(ext); rem <= n; rem++ {
					if ub := b.Upper(cur, len(path), start, rem); ub < full {
						t.Fatalf("%s: Upper(%v, %d, %d, %d) = %v < actual %v (path %v ext %v)",
							name, cur, len(path), start, rem, ub, full, path, ext)
					}
					if lb := b.Lower(cur, len(path), start, rem); lb > full {
						t.Fatalf("%s: Lower(%v, %d, %d, %d) = %v > actual %v (path %v ext %v)",
							name, cur, len(path), start, rem, lb, full, path, ext)
					}
				}
			}
		}
	}
}

func subset(cands []relation.Tuple, mask int) []relation.Tuple {
	var out []relation.Tuple
	for i := range cands {
		if mask&(1<<i) != 0 {
			out = append(out, cands[i])
		}
	}
	return out
}

// TestBoundersAdmissible checks every stock bounder against exhaustive
// enumeration of all path/extension pairs over random integer-valued
// candidates (exact float arithmetic, so admissibility must hold exactly).
func TestBoundersAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		tuples := make([]relation.Tuple, 6)
		for i := range tuples {
			tuples[i] = relation.NewTuple(
				relation.Int(int64(rng.Intn(21)-10)),
				relation.Int(int64(rng.Intn(21)-10)),
				relation.Int(int64(rng.Intn(15))))
		}
		tuples = sortCanonical(tuples)
		for name, agg := range boundedAggregators() {
			admissibleOn(t, name, agg, tuples)
		}
	}
}

// TestBoundersAdmissibleSpecials repeats the admissibility check with
// NaN/±Inf attribute values mixed in: bounds must either stay admissible or
// degrade to NaN, never claim a cut that the true value contradicts.
func TestBoundersAdmissibleSpecials(t *testing.T) {
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, 3, -4}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		tuples := make([]relation.Tuple, 5)
		for i := range tuples {
			tuples[i] = relation.NewTuple(
				relation.Float(specials[rng.Intn(len(specials))]),
				relation.Float(specials[rng.Intn(len(specials))]),
				relation.Float(specials[rng.Intn(len(specials))]))
		}
		tuples = sortCanonical(tuples)
		for name, agg := range boundedAggregators() {
			admissibleOn(t, name, agg, tuples)
		}
	}
}

// TestBoundersAdmissibleFloatNoise repeats the admissibility check with
// attribute values spread across sixteen orders of magnitude — the regime
// where floating-point fold order matters. The additive bounders fold
// their suffix tables in a different association than Eval, so without the
// explicit rounding margin an "upper" bound can land ulps below an
// achievable value; this pins the margin keeping every bound admissible.
func TestBoundersAdmissibleFloatNoise(t *testing.T) {
	noise := []float64{1e-16, 2e-16, 3e-16, 1, 1 + 2.220446049250313e-16, -1e-16, -1, 0.1, 1e16, -1e16}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		tuples := make([]relation.Tuple, 6)
		for i := range tuples {
			tuples[i] = relation.NewTuple(
				relation.Float(noise[rng.Intn(len(noise))]),
				relation.Float(noise[rng.Intn(len(noise))]),
				relation.Float(noise[rng.Intn(len(noise))]))
		}
		tuples = sortCanonical(tuples)
		for name, agg := range boundedAggregators() {
			admissibleOn(t, name, agg, tuples)
		}
	}
}

// TestFuncAggregatorHasNoBounder pins the opaque-aggregator contract: no
// bounder by default, attachable via WithBounder.
func TestFuncAggregatorHasNoBounder(t *testing.T) {
	a := Func("custom", func(p Package) float64 { return float64(p.Len()) })
	if a.NewBounder(nil) != nil {
		t.Fatal("Func aggregator unexpectedly has a bounder")
	}
	withB := a.WithBounder(func(cands []relation.Tuple) Bounder {
		return countBounds{n: len(cands)}
	})
	if withB.NewBounder(make([]relation.Tuple, 3)) == nil {
		t.Fatal("WithBounder did not attach a bounder")
	}
}

// TestSearchFloor exercises the atomic floor: raises are monotone maxima,
// NaN raises are ignored, cuts respect the strict/exclusive distinction and
// never fire on NaN bounds.
func TestSearchFloor(t *testing.T) {
	f := newFloor(math.Inf(-1), false)
	if f.cuts(-1e300) {
		t.Fatal("-∞ floor must not cut")
	}
	f.raise(2)
	f.raise(1) // lower raise is a no-op
	if got := f.value(); got != 2 {
		t.Fatalf("floor = %v, want 2", got)
	}
	f.raise(math.NaN())
	if got := f.value(); got != 2 {
		t.Fatalf("NaN raise moved the floor to %v", got)
	}
	if f.cuts(2) {
		t.Fatal("inclusive floor cut a tie")
	}
	if !f.cuts(1.5) {
		t.Fatal("inclusive floor kept a strictly lower bound")
	}
	if f.cuts(math.NaN()) {
		t.Fatal("NaN bound was cut")
	}
	ex := newFloor(2, true)
	if !ex.cuts(2) {
		t.Fatal("exclusive floor kept a tie")
	}
	if ex.cuts(2.5) {
		t.Fatal("exclusive floor cut a beating bound")
	}
}

// TestPrunedMatchesExhaustiveRandom is the core-level equivalence property:
// on random instances, every solver returns bit-identical results with the
// bound layer on (default) and off (Exhaustive), serially and in parallel.
func TestPrunedMatchesExhaustiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	costs := []func() Aggregator{
		func() Aggregator { return SumAttr(1).WithMonotone() },
		func() Aggregator { return SumAttr(1) }, // attr 1 may be negative: non-monotone
		func() Aggregator { return Count() },
		func() Aggregator { return CountOrInf() },
		func() Aggregator { return MaxAttr(2) },
	}
	vals := []func() Aggregator{
		func() Aggregator { return NegSumAttr(1) },
		func() Aggregator { return SumAttr(2) },
		func() Aggregator { return MinAttr(2) },
		func() Aggregator { return WeightedSum(map[int]float64{1: -1, 2: 2}) },
		func() Aggregator { return SingletonVal(UtilityAttr(2)) },
	}
	var counters EngineCounters
	for trial := 0; trial < 60; trial++ {
		nItems := 5 + rng.Intn(4)
		rel := relation.NewRelation(relation.NewSchema("item", "id", "a", "b"))
		for i := 0; i < nItems; i++ {
			if err := rel.Insert(relation.Ints(int64(i), int64(rng.Intn(13)-4), int64(rng.Intn(9)))); err != nil {
				t.Fatal(err)
			}
		}
		v := query.V
		q := query.NewCQ("RQ", []query.Term{v("id"), v("a"), v("b")},
			query.Rel("item", v("id"), v("a"), v("b")))
		prob := &Problem{
			DB:         relation.NewDatabase().Add(rel),
			Q:          q,
			Cost:       costs[trial%len(costs)](),
			Val:        vals[trial%len(vals)](),
			Budget:     float64(rng.Intn(16)),
			K:          1 + rng.Intn(3),
			MaxPkgSize: 1 + rng.Intn(3),
			Counters:   &counters,
		}
		exh := *prob
		exh.Exhaustive = true
		exh.InvalidateCache()
		bound := float64(rng.Intn(11) - 5)

		wantCount, err := exh.CountValid(bound)
		if err != nil {
			t.Fatal(err)
		}
		gotCount, err := prob.CountValid(bound)
		if err != nil {
			t.Fatal(err)
		}
		if gotCount != wantCount {
			t.Fatalf("trial %d: CountValid pruned %d vs exhaustive %d", trial, gotCount, wantCount)
		}
		parCount, err := prob.CountValidParallel(bound, 3)
		if err != nil {
			t.Fatal(err)
		}
		if parCount != wantCount {
			t.Fatalf("trial %d: CountValidParallel pruned %d vs exhaustive %d", trial, parCount, wantCount)
		}

		wantSel, wantOK, err := exh.FindTopK()
		if err != nil {
			t.Fatal(err)
		}
		for variant, find := range map[string]func() ([]Package, bool, error){
			"serial":   prob.FindTopK,
			"parallel": func() ([]Package, bool, error) { return prob.FindTopKParallel(3) },
		} {
			gotSel, gotOK, err := find()
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK || len(gotSel) != len(wantSel) {
				t.Fatalf("trial %d: FindTopK %s ok=%v n=%d vs exhaustive ok=%v n=%d",
					trial, variant, gotOK, len(gotSel), wantOK, len(wantSel))
			}
			for i := range wantSel {
				if !gotSel[i].Equal(wantSel[i]) {
					t.Fatalf("trial %d: FindTopK %s rank %d: %v vs exhaustive %v",
						trial, variant, i, gotSel[i], wantSel[i])
				}
			}
		}

		wantMB, wantMBOK, err := exh.MaxBound()
		if err != nil {
			t.Fatal(err)
		}
		gotMB, gotMBOK, err := prob.MaxBound()
		if err != nil {
			t.Fatal(err)
		}
		if gotMBOK != wantMBOK || (wantMBOK && math.Float64bits(gotMB) != math.Float64bits(wantMB)) {
			t.Fatalf("trial %d: MaxBound pruned (%v,%v) vs exhaustive (%v,%v)",
				trial, gotMB, gotMBOK, wantMB, wantMBOK)
		}

		wantEx, err := exh.ExistsKValid(prob.K, bound)
		if err != nil {
			t.Fatal(err)
		}
		gotEx, err := prob.ExistsKValid(prob.K, bound)
		if err != nil {
			t.Fatal(err)
		}
		if gotEx != wantEx {
			t.Fatalf("trial %d: ExistsKValid pruned %v vs exhaustive %v", trial, gotEx, wantEx)
		}

		if wantOK {
			wantDec, wantWit, err := exh.DecideTopK(wantSel)
			if err != nil {
				t.Fatal(err)
			}
			gotDec, gotWit, err := prob.DecideTopK(wantSel)
			if err != nil {
				t.Fatal(err)
			}
			if gotDec != wantDec {
				t.Fatalf("trial %d: DecideTopK pruned %v vs exhaustive %v", trial, gotDec, wantDec)
			}
			// The serial witness is the first in canonical DFS order on both
			// engines: pruned subtrees hold no witness, so it must coincide.
			if (gotWit == nil) != (wantWit == nil) ||
				(gotWit != nil && !gotWit.Equal(*wantWit)) {
				t.Fatalf("trial %d: DecideTopK witness pruned %v vs exhaustive %v", trial, gotWit, wantWit)
			}
		}
	}
	if counters.Pruned.Load() == 0 {
		t.Fatal("bound layer never pruned across all random trials")
	}
	if counters.BoundEvals.Load() == 0 {
		t.Fatal("bound layer never evaluated a bound")
	}
}

// TestExhaustiveFlagDisablesPruning pins the escape hatch: with
// Problem.Exhaustive set, no bound is evaluated and nothing is pruned.
func TestExhaustiveFlagDisablesPruning(t *testing.T) {
	rel := relation.NewRelation(relation.NewSchema("item", "id", "a", "b"))
	for i := 0; i < 6; i++ {
		if err := rel.Insert(relation.Ints(int64(i), int64(i), int64(6-i))); err != nil {
			t.Fatal(err)
		}
	}
	v := query.V
	var counters EngineCounters
	prob := &Problem{
		DB: relation.NewDatabase().Add(rel),
		Q: query.NewCQ("RQ", []query.Term{v("id"), v("a"), v("b")},
			query.Rel("item", v("id"), v("a"), v("b"))),
		Cost:       SumAttr(1).WithMonotone(),
		Val:        NegSumAttr(1),
		Budget:     8,
		K:          2,
		MaxPkgSize: 3,
		Counters:   &counters,
		Exhaustive: true,
	}
	if _, _, err := prob.FindTopK(); err != nil {
		t.Fatal(err)
	}
	if n := counters.BoundEvals.Load(); n != 0 {
		t.Fatalf("Exhaustive solve evaluated %d bounds", n)
	}
	if n := counters.Pruned.Load(); n != 0 {
		t.Fatalf("Exhaustive solve pruned %d subtrees", n)
	}
}
