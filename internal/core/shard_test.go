package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// randomShardProblem builds a small random instance for the shard
// equivalence trials.
func randomShardProblem(t *testing.T, rng *rand.Rand, k int) *Problem {
	t.Helper()
	db := relation.NewDatabase()
	r := relation.NewRelation(relation.NewSchema("item", "id", "price", "rating"))
	items := 5 + rng.Intn(5)
	for i := 0; i < items; i++ {
		if err := r.Insert(relation.Ints(int64(i), int64(rng.Intn(30)), int64(rng.Intn(10)))); err != nil {
			t.Fatal(err)
		}
	}
	db.Add(r)
	return &Problem{
		DB: db, Q: query.Identity("RQ", r),
		Cost: SumAttr(1).WithMonotone(), Val: SumAttr(2),
		Budget: float64(15 + rng.Intn(50)), K: k,
	}
}

// TestShardedTopKMatchesWhole pins the tentpole decomposition: for every
// shard count, running FindTopKShardCtx per shard and merging the
// partials must reproduce the single-node scored top-k bit for bit —
// same packages, same order, same float64 ratings.
func TestShardedTopKMatchesWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ctx := context.Background()
	for trial := 0; trial < 15; trial++ {
		k := 1 + rng.Intn(3)
		p := randomShardProblem(t, rng, k)
		whole, wholeOK, err := p.FindTopKParallelCtx(ctx, 3)
		if err != nil {
			t.Fatal(err)
		}
		wholeBound, wholeBoundOK, err := p.MaxBoundParallelCtx(ctx, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, count := range []int{1, 2, 3, 5} {
			parts := make([]TopKPartial, count)
			for i := 0; i < count; i++ {
				parts[i], err = p.FindTopKShardCtx(ctx, ShardSpec{Index: i, Count: count}, math.Inf(-1), 2)
				if err != nil {
					t.Fatal(err)
				}
			}
			scored, ok := MergeTopKPartials(k, parts)
			if ok != wholeOK {
				t.Fatalf("trial %d count %d: merged ok %v vs whole %v", trial, count, ok, wholeOK)
			}
			if !ok {
				continue
			}
			if len(scored) != len(whole) {
				t.Fatalf("trial %d count %d: merged %d packages vs whole %d", trial, count, len(scored), len(whole))
			}
			for i := range scored {
				if !scored[i].Pkg.Equal(whole[i]) {
					t.Fatalf("trial %d count %d rank %d: merged %s vs whole %s",
						trial, count, i, scored[i].Pkg.Key(), whole[i].Key())
				}
				if scored[i].Val != p.Val.Eval(whole[i]) {
					t.Fatalf("trial %d count %d rank %d: merged val %v vs eval %v",
						trial, count, i, scored[i].Val, p.Val.Eval(whole[i]))
				}
			}
			mb, mbOK := MergeMaxBoundPartials(k, parts)
			if mbOK != wholeBoundOK || (mbOK && mb != wholeBound) {
				t.Fatalf("trial %d count %d: merged maxbound %v/%v vs whole %v/%v",
					trial, count, mb, mbOK, wholeBound, wholeBoundOK)
			}
		}
	}
}

// TestShardedTopKFloorHint checks that a sound floor hint (the k-th
// rating of another shard's full partial) does not change the merged
// answer — the soundness contract coordinators rely on to prune.
func TestShardedTopKFloorHint(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		k := 1 + rng.Intn(2)
		p := randomShardProblem(t, rng, k)
		whole, wholeOK, err := p.FindTopKParallelCtx(ctx, 2)
		if err != nil {
			t.Fatal(err)
		}
		const count = 2
		first, err := p.FindTopKShardCtx(ctx, ShardSpec{Index: 0, Count: count}, math.Inf(-1), 2)
		if err != nil {
			t.Fatal(err)
		}
		hint := math.Inf(-1)
		if len(first.Scored) == k {
			// k packages rated >= the partial's k-th rating exist: a sound hint.
			hint = first.Scored[k-1].Val
		}
		second, err := p.FindTopKShardCtx(ctx, ShardSpec{Index: 1, Count: count}, hint, 2)
		if err != nil {
			t.Fatal(err)
		}
		scored, ok := MergeTopKPartials(k, []TopKPartial{first, second})
		if ok != wholeOK {
			t.Fatalf("trial %d: hinted merge ok %v vs whole %v", trial, ok, wholeOK)
		}
		for i := range scored {
			if !scored[i].Pkg.Equal(whole[i]) {
				t.Fatalf("trial %d rank %d: hinted merge %s vs whole %s",
					trial, i, scored[i].Pkg.Key(), whole[i].Key())
			}
		}
	}
}

// TestShardedCountAndExistsMatchWhole pins the additive merges: shard
// counts sum to the whole-space count, and capped feasibility counts
// decide ∃k-valid exactly.
func TestShardedCountAndExistsMatchWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	ctx := context.Background()
	for trial := 0; trial < 15; trial++ {
		p := randomShardProblem(t, rng, 1)
		bound := float64(rng.Intn(12))
		whole, err := p.CountValidParallelCtx(ctx, bound, 3)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(5)
		wantExists, err := p.ExistsKValidParallelCtx(ctx, k, bound, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, count := range []int{1, 2, 4} {
			counts := make([]int64, count)
			capped := make([]int64, count)
			for i := 0; i < count; i++ {
				counts[i], err = p.CountValidShardCtx(ctx, bound, ShardSpec{Index: i, Count: count}, 2)
				if err != nil {
					t.Fatal(err)
				}
				capped[i], err = p.ExistsCountShardCtx(ctx, k, bound, ShardSpec{Index: i, Count: count}, 2)
				if err != nil {
					t.Fatal(err)
				}
				if capped[i] > int64(k) {
					t.Fatalf("capped count %d exceeds cap %d", capped[i], k)
				}
			}
			if got := MergeCountPartials(counts); got != whole {
				t.Fatalf("trial %d count %d: merged count %d vs whole %d", trial, count, got, whole)
			}
			if got := MergeExistsPartials(k, capped); got != wantExists {
				t.Fatalf("trial %d count %d: merged exists %v vs whole %v", trial, count, got, wantExists)
			}
		}
	}
}

// TestShardSpecValidate pins the spec's bounds checking.
func TestShardSpecValidate(t *testing.T) {
	for _, tc := range []struct {
		spec ShardSpec
		ok   bool
	}{
		{ShardSpec{Index: 0, Count: 1}, true},
		{ShardSpec{Index: 2, Count: 3}, true},
		{ShardSpec{Index: 0, Count: 0}, false},
		{ShardSpec{Index: -1, Count: 2}, false},
		{ShardSpec{Index: 2, Count: 2}, false},
	} {
		if err := tc.spec.Validate(); (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tc.spec, err, tc.ok)
		}
	}
}
