// Package core implements the package recommendation model of Deng, Fan and
// Geerts (PODS 2012) — the paper's primary contribution — and exact solvers
// for the problems it studies:
//
//   - RPP: deciding whether a set of packages is a top-k package selection
//     (Problem.DecideTopK);
//   - FRP: computing a top-k package selection (Problem.FindTopK, plus
//     Problem.FindTopKViaOracle, the binary-search algorithm from the proof
//     of Theorem 5.1);
//   - MBP: deciding the maximum rating bound (Problem.MaxBound,
//     Problem.IsMaxBound);
//   - CPP: counting valid packages (Problem.CountValid);
//
// together with item recommendations as the degenerate case of Section 2
// (TopKItems, ItemProblem) and the fixed-size special case of Corollary 6.1
// (Problem.WithMaxSize).
//
// A top-k package selection for (Q, D, Qc, cost, val, C) is a set
// {N1, ..., Nk} of pairwise-distinct packages with, for each i:
// Ni ⊆ Q(D); Qc(Ni, D) = ∅; cost(Ni) ≤ C; |Ni| ≤ p(|D|); and
// val(N') ≤ val(Ni) for every other package N' satisfying those conditions.
//
// The solvers are deliberately exponential-time exact searches: they are the
// deterministic simulations of the oracle machines in the paper's upper
// bound proofs, and the benchmarks in the repository root measure exactly
// this scaling.
//
// All of them share one subset-DFS enumeration engine (engine.go) with
// incremental aggregator evaluation, and each has a parallel form on the
// root-splitting scheduler — FindTopKParallel, CountValidParallel,
// DecideTopKParallel, MaxBoundParallel and ExistsKValidParallel, with
// ...Ctx variants for cancellation — whose results are identical to the
// serial ones. EngineCounters exposes the engine's cost accounting to
// callers such as the serving layer.
package core

import (
	"sort"
	"strings"

	"repro/internal/relation"
)

// Package is a set of items (tuples drawn from the query answer Q(D)),
// stored canonically: sorted and deduplicated, with a precomputed identity
// key. The zero value is the empty package.
type Package struct {
	tuples []relation.Tuple
	key    string
}

// NewPackage builds a package from tuples, sorting and deduplicating.
func NewPackage(tuples ...relation.Tuple) Package {
	ts := make([]relation.Tuple, 0, len(tuples))
	seen := make(map[string]struct{}, len(tuples))
	for _, t := range tuples {
		k := t.Key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
	return Package{tuples: ts, key: packageKey(ts)}
}

// PackageFromRelation builds a package holding all tuples of a relation.
func PackageFromRelation(r *relation.Relation) Package {
	return NewPackage(r.Tuples()...)
}

func packageKey(sorted []relation.Tuple) string {
	var b strings.Builder
	for _, t := range sorted {
		b.WriteString(t.Key())
		b.WriteByte(';')
	}
	return b.String()
}

// Len returns |N|, the number of items.
func (p Package) Len() int { return len(p.tuples) }

// IsEmpty reports whether the package has no items.
func (p Package) IsEmpty() bool { return len(p.tuples) == 0 }

// Tuples returns the items in canonical order. Callers must not mutate.
func (p Package) Tuples() []relation.Tuple { return p.tuples }

// Key returns the canonical identity key; packages are equal iff keys are.
func (p Package) Key() string { return p.key }

// Equal reports set equality.
func (p Package) Equal(q Package) bool { return p.key == q.key }

// Contains reports whether the package holds the tuple.
func (p Package) Contains(t relation.Tuple) bool {
	i := sort.Search(len(p.tuples), func(i int) bool { return p.tuples[i].Compare(t) >= 0 })
	return i < len(p.tuples) && p.tuples[i].Equal(t)
}

// WithTuple returns the package extended by t.
func (p Package) WithTuple(t relation.Tuple) Package {
	if p.Contains(t) {
		return p
	}
	return NewPackage(append(append([]relation.Tuple(nil), p.tuples...), t)...)
}

// Relation materialises the package as a relation under the given schema,
// which is how the compatibility constraint Qc sees the package (as the
// relation RQ in Section 2).
func (p Package) Relation(schema *relation.Schema) *relation.Relation {
	r := relation.NewRelation(schema)
	for _, t := range p.tuples {
		if err := r.Insert(t); err != nil {
			// Arity mismatch indicates the package does not come from Q(D);
			// callers validate before materialising.
			panic(err)
		}
	}
	return r
}

// String renders the package.
func (p Package) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range p.tuples {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}

// SortPackages orders packages by descending value under vals (parallel
// slice), breaking ties by ascending key, the deterministic order used by
// FindTopK.
func SortPackages(pkgs []Package, vals []float64) {
	idx := make([]int, len(pkgs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if vals[idx[a]] != vals[idx[b]] {
			return vals[idx[a]] > vals[idx[b]]
		}
		return pkgs[idx[a]].key < pkgs[idx[b]].key
	})
	np := make([]Package, len(pkgs))
	nv := make([]float64, len(vals))
	for i, j := range idx {
		np[i] = pkgs[j]
		nv[i] = vals[j]
	}
	copy(pkgs, np)
	copy(vals, nv)
}
