package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// This file is the shared enumeration engine behind every solver in the
// package: a branch-and-bound subset-DFS over the candidate list Q(D) with
// incremental per-node evaluation (dfsPath), factored so that the serial
// entry point (Problem.enumerateValidPath) and the parallel one
// (Problem.runParallel) walk byte-for-byte the same tree. The parallel
// scheduler splits the DFS forest at the first level — one subtree per
// smallest candidate index — and distributes subtrees over a worker pool,
// with cooperative cancellation so an early answer (a witness, the k-th
// valid package) or a context cancellation stops all workers.
//
// Pruning happens at two independent gates, both driven by the per-solve
// strategy (bounds.go): a subtree is cut when the cost lower bound of every
// extension exceeds the budget (generalising the monotone-cost check to any
// aggregator with a Bounder), or when the val upper bound of every
// extension falls below the live search floor — the k-th best rating so
// far, an RPP selection's minimum, or a counting/feasibility threshold.
// Both cuts are answer-preserving by construction, so the bound-driven
// engine returns results identical to the exhaustive one.

// dfsPath is the mutable state of one depth-first walk: the tuples on the
// current path in canonical order, the incrementally maintained package key,
// and incremental cost/val aggregator state. Candidates are pushed in
// canonical tuple order (Candidates sorts the list), so materialised
// packages need no re-sorting and the steppers fold floating-point
// operations in exactly the order a full Eval would — per-node cost/val drop
// from O(|N|) recomputes to O(1) without changing a single bit of output.
// A dfsPath belongs to one goroutine.
type dfsPath struct {
	tuples  []relation.Tuple
	keyBuf  []byte
	keyLens []int
	costAgg Aggregator
	valAgg  Aggregator
	costSt  Stepper // nil → recompute via costAgg.Eval
	valSt   Stepper // nil → recompute via valAgg.Eval
}

func newDFSPath(p *Problem) *dfsPath {
	return &dfsPath{
		costAgg: p.Cost, valAgg: p.Val,
		costSt: p.Cost.NewStepper(), valSt: p.Val.NewStepper(),
	}
}

// push extends the path by one tuple (which must follow the current tuples
// in canonical order).
func (d *dfsPath) push(t relation.Tuple) {
	d.tuples = append(d.tuples, t)
	d.keyLens = append(d.keyLens, len(d.keyBuf))
	d.keyBuf = append(d.keyBuf, t.Key()...)
	d.keyBuf = append(d.keyBuf, ';')
	if d.costSt != nil {
		d.costSt.Push(t)
	}
	if d.valSt != nil {
		d.valSt.Push(t)
	}
}

// pop removes the most recently pushed tuple.
func (d *dfsPath) pop() {
	n := len(d.tuples) - 1
	d.keyBuf = d.keyBuf[:d.keyLens[n]]
	d.keyLens = d.keyLens[:n]
	d.tuples = d.tuples[:n]
	if d.costSt != nil {
		d.costSt.Pop()
	}
	if d.valSt != nil {
		d.valSt.Pop()
	}
}

func (d *dfsPath) len() int { return len(d.tuples) }

// pkg materialises the current path as a Package. The path is already in
// canonical order with the key precomputed, so this is a plain copy —
// NewPackage's sort and dedup are skipped.
func (d *dfsPath) pkg() Package {
	ts := make([]relation.Tuple, len(d.tuples))
	copy(ts, d.tuples)
	return Package{tuples: ts, key: string(d.keyBuf)}
}

// cost returns cost(pkg) for the package at the current path.
func (d *dfsPath) cost(pkg Package) float64 {
	if d.costSt != nil {
		return d.costSt.Value()
	}
	return d.costAgg.Eval(pkg)
}

// val returns val(pkg) for the package at the current path.
func (d *dfsPath) val(pkg Package) float64 {
	if d.valSt != nil {
		return d.valSt.Value()
	}
	return d.valAgg.Eval(pkg)
}

// curCost returns the cost of the current path for bound queries,
// materialising a package only when the aggregator has no stepper.
func (d *dfsPath) curCost() float64 {
	if d.costSt != nil {
		return d.costSt.Value()
	}
	return d.costAgg.Eval(d.pkg())
}

// curVal is curCost's val counterpart.
func (d *dfsPath) curVal() float64 {
	if d.valSt != nil {
		return d.valSt.Value()
	}
	return d.valAgg.Eval(d.pkg())
}

// stepPair bundles nil-guarded cost/val steppers for walks that cannot use
// a full dfsPath because their push order is not canonical — the oracle
// walk of existsValidAboveExt seeds it with a base package and then pushes
// candidates around it. Unlike dfsPath it materialises no packages; cost
// and val fall back to a full Eval of the supplied package when the
// aggregator has no stepper.
type stepPair struct {
	costAgg Aggregator
	valAgg  Aggregator
	costSt  Stepper
	valSt   Stepper
}

func newStepPair(p *Problem, seed Package) stepPair {
	s := stepPair{
		costAgg: p.Cost, valAgg: p.Val,
		costSt: p.Cost.NewStepper(), valSt: p.Val.NewStepper(),
	}
	for _, t := range seed.Tuples() {
		s.push(t)
	}
	return s
}

func (s stepPair) push(t relation.Tuple) {
	if s.costSt != nil {
		s.costSt.Push(t)
	}
	if s.valSt != nil {
		s.valSt.Push(t)
	}
}

func (s stepPair) pop() {
	if s.costSt != nil {
		s.costSt.Pop()
	}
	if s.valSt != nil {
		s.valSt.Pop()
	}
}

func (s stepPair) cost(pkg Package) float64 {
	if s.costSt != nil {
		return s.costSt.Value()
	}
	return s.costAgg.Eval(pkg)
}

func (s stepPair) val(pkg Package) float64 {
	if s.valSt != nil {
		return s.valSt.Value()
	}
	return s.valAgg.Eval(pkg)
}

// EngineCounters accumulates engine-side cost accounting for a solve: DFS
// nodes visited and valid packages yielded. Attach one to Problem.Counters
// to have every walk — serial or parallel — flush its tallies here; the
// fields are atomics, so one counter set can be shared across workers and
// read concurrently (the serving layer surfaces them in its stats). Workers
// tally locally and flush once per subtree, so the accounting adds no
// per-node synchronisation.
type EngineCounters struct {
	// Nodes is the number of DFS nodes visited (packages considered).
	Nodes atomic.Int64
	// Yielded is the number of valid packages passed to a solver's yield.
	Yielded atomic.Int64
	// Pruned is the number of subtrees cut by the bound layer (cost lower
	// bound over budget, or val upper bound under the search floor). Each
	// cut skips every node below the current one, so a small Pruned count
	// can stand for an arbitrarily large saving in Nodes.
	Pruned atomic.Int64
	// BoundEvals is the number of bound evaluations performed; the pruning
	// overhead is BoundEvals O(1) table lookups per solve.
	BoundEvals atomic.Int64
	// Prepares counts candidate-list evaluations: how many times a Problem
	// actually ran its selection query and rebuilt the memoised state that
	// Prepare warms (bound tables included). The serving layer carries
	// prepared problems across collection deltas, so a warm server's
	// Prepares should grow only for specs whose relations actually mutated.
	Prepares atomic.Int64
	// SessionResumes counts feasibility probes a SolveSession answered from
	// its memo instead of walking the enumeration forest again — the reuse
	// the relaxation and adjustment searches get from probing many problem
	// variants that share a candidate list (see SolveSession).
	SessionResumes atomic.Int64
	// SessionNodesSaved accumulates, per resumed probe, the DFS nodes the
	// probe's original walk visited — the work each resume skipped. Together
	// with Nodes it bounds what the same probe sequence would have cost
	// without the session.
	SessionNodesSaved atomic.Int64
}

// AddTo adds c's tallies into dst (both may be shared; fields are
// atomics). It is the flush half of per-solve accounting: give a solve a
// private counter set (Problem.WithCounters), read its tallies when the
// solve returns, then AddTo the shared totals — the serving layer's cost
// model learns per-spec solve cost exactly this way.
func (c *EngineCounters) AddTo(dst *EngineCounters) { c.addTo(dst) }

// addTo adds c's tallies into dst (both may be shared; fields are atomics).
func (c *EngineCounters) addTo(dst *EngineCounters) {
	if dst == nil {
		return
	}
	dst.Nodes.Add(c.Nodes.Load())
	dst.Yielded.Add(c.Yielded.Load())
	dst.Pruned.Add(c.Pruned.Load())
	dst.BoundEvals.Add(c.BoundEvals.Load())
	dst.Prepares.Add(c.Prepares.Load())
	dst.SessionResumes.Add(c.SessionResumes.Load())
	dst.SessionNodesSaved.Add(c.SessionNodesSaved.Load())
}

// pathYield receives each valid package together with the path state, whose
// val method gives the package's rating in O(1). Returning false stops the
// enumeration (in the parallel engine: all workers).
type pathYield func(pkg Package, path *dfsPath) (bool, error)

// walkSubtree enumerates the valid packages whose smallest candidate index
// is root, in canonical DFS order, mirroring the validity and pruning rules
// of EnumerateValid: the Prune hint cuts hereditarily-invalid branches,
// over-budget packages are skipped (and their supersets too when cost is
// monotone), and compatible within-budget packages are yielded. On top of
// those, the strategy's bound gates cut subtrees that provably hold no
// answer-relevant package (see bounds.go). stop is the engine-wide
// cancellation flag; path must be empty on entry and is empty again on
// return.
func (p *Problem) walkSubtree(path *dfsPath, root, maxSize int, st strategy, yield pathYield, stop *atomic.Bool) (bool, error) {
	cands := p.candList
	var nodes, yields, prunes, boundEvals int64
	if p.Counters != nil {
		defer func() {
			p.Counters.Nodes.Add(nodes)
			p.Counters.Yielded.Add(yields)
			p.Counters.Pruned.Add(prunes)
			p.Counters.BoundEvals.Add(boundEvals)
		}()
	}
	bounded := st.active()
	// cutBelow reports whether the subtree below the current node — every
	// strict extension drawing from cands[next:], at most rem more tuples —
	// can be skipped. Called only when children exist (next < len(cands) and
	// the path is below maxSize), after the node itself has been handled.
	cutBelow := func(next int) bool {
		var cost, val float64
		if st.costLB != nil {
			cost = path.curCost()
		}
		if st.floor != nil {
			val = path.curVal()
		}
		return st.cutBelow(cost, val, path.len(), next, maxSize-path.len(), p.Budget, &boundEvals, &prunes)
	}
	visit := func() (descend, cont bool, err error) {
		nodes++
		pkg := path.pkg()
		if p.Prune != nil && p.Prune(pkg) {
			return false, true, nil
		}
		if path.cost(pkg) <= p.Budget {
			ok, err := p.Compatible(pkg)
			if err != nil {
				return false, false, err
			}
			if ok {
				yields++
				c, err := yield(pkg, path)
				if err != nil || !c {
					return false, c, err
				}
			}
			return true, true, nil
		}
		if p.Cost.Monotone() {
			// Supersets can only cost more: skip the whole branch.
			return false, true, nil
		}
		return true, true, nil
	}
	var walk func(start int) (bool, error)
	walk = func(start int) (bool, error) {
		if path.len() >= maxSize {
			return true, nil
		}
		for i := start; i < len(cands); i++ {
			if stop.Load() {
				return false, nil
			}
			path.push(cands[i])
			descend, cont, err := visit()
			if err == nil && cont && descend &&
				!(bounded && i+1 < len(cands) && path.len() < maxSize && cutBelow(i+1)) {
				cont, err = walk(i + 1)
			}
			path.pop()
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	if stop.Load() {
		return false, nil
	}
	path.push(cands[root])
	defer path.pop()
	descend, cont, err := visit()
	if err != nil || !cont {
		return cont, err
	}
	if descend && !(bounded && root+1 < len(cands) && path.len() < maxSize && cutBelow(root+1)) {
		return walk(root + 1)
	}
	return true, nil
}

// enumerateValidPath is the serial engine entry point without a val floor:
// it enumerates every valid non-empty package in canonical DFS order with
// incremental cost/val evaluation and cost-bound pruning. EnumerateValid is
// built on it; solvers with a rating threshold use enumerateValidFloor.
func (p *Problem) enumerateValidPath(yield pathYield) error {
	return p.enumerateValidFloor(nil, yield)
}

// enumerateValidFloor is enumerateValidPath with a live val floor: subtrees
// whose optimistic val bound cannot reach the floor are cut, which is
// answer-preserving exactly when the caller ignores (or never sees) valid
// packages rated below the floor.
func (p *Problem) enumerateValidFloor(floor *searchFloor, yield pathYield) error {
	if _, err := p.Candidates(); err != nil {
		return err
	}
	ms, err := p.maxSize()
	if err != nil {
		return err
	}
	if ms < 1 {
		return nil
	}
	st := p.newStrategy(floor)
	path := newDFSPath(p)
	var stop atomic.Bool
	for root := range p.candList {
		cont, err := p.walkSubtree(path, root, ms, st, yield, &stop)
		if err != nil || !cont {
			return err
		}
	}
	return nil
}

// normWorkers resolves the worker-count convention shared by all parallel
// solvers: non-positive means GOMAXPROCS.
func normWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// runParallel is the shared root-splitting scheduler. The DFS forest is
// split at the first level and the subtree roots distributed over workers
// through a channel buffered to the full candidate list, so the feed never
// blocks even when every worker bails out early. Each worker walks its
// subtrees with a private dfsPath (steppers are single-goroutine) and its
// own yield from makeYield; a yield returning false, an error, or a context
// cancellation sets the stop flag, which all walks poll per node.
//
// makeYield(w) is called once per worker w ∈ [0, workers); yields on
// distinct workers run concurrently, so they must only touch per-worker or
// synchronised state. The Problem's aggregators, queries and hints must be
// safe for concurrent reads — all stock constructors are. Workers is
// normalised via normWorkers by the public wrappers before the call.
//
// floor, when non-nil, is the shared pruning floor: bounders are read-only
// and the floor is atomic, so one strategy value serves all workers, and a
// raise by any worker (e.g. FindTopKParallel publishing a full local top-k
// buffer's k-th rating) immediately tightens every other worker's cuts.
func (p *Problem) runParallel(ctx context.Context, workers int, floor *searchFloor, makeYield func(w int) pathYield) error {
	return p.runParallelShard(ctx, workers, floor, ShardSpec{}, makeYield)
}

// runParallelShard is runParallel restricted to a candidate-space shard:
// only subtree roots the shard owns are fed to the workers, so the walk
// covers exactly the packages whose smallest candidate index falls in the
// shard. Every package belongs to exactly one root subtree, so disjoint
// shards partition the package space and their per-shard results merge
// without overlap — the decomposition the distributed coordinator fans out
// across nodes. The zero ShardSpec owns every root, reproducing runParallel.
func (p *Problem) runParallelShard(ctx context.Context, workers int, floor *searchFloor, shard ShardSpec, makeYield func(w int) pathYield) error {
	if _, err := p.Candidates(); err != nil {
		return err
	}
	ms, err := p.maxSize()
	if err != nil {
		return err
	}
	if ms < 1 || len(p.candList) == 0 {
		return ctx.Err()
	}
	st := p.newStrategy(floor)
	roots := make(chan int, len(p.candList))
	for i := range p.candList {
		if shard.owns(i) {
			roots <- i
		}
	}
	close(roots)

	var stop atomic.Bool
	finished := make(chan struct{})
	defer close(finished)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				stop.Store(true)
			case <-finished:
			}
		}()
	}

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			yield := makeYield(w)
			path := newDFSPath(p)
			for root := range roots {
				if stop.Load() {
					return
				}
				cont, err := p.walkSubtree(path, root, ms, st, yield, &stop)
				if err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				if !cont {
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return ctx.Err()
}
