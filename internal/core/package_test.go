package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestPackageCanonicalisation(t *testing.T) {
	a := NewPackage(relation.Ints(2, 2), relation.Ints(1, 1), relation.Ints(2, 2))
	b := NewPackage(relation.Ints(1, 1), relation.Ints(2, 2))
	if !a.Equal(b) {
		t.Fatal("packages with same tuple sets must be equal")
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d after dedup, want 2", a.Len())
	}
	if a.Key() != b.Key() {
		t.Fatal("keys differ for equal packages")
	}
}

func TestPackageKeyIsOrderInvariant(t *testing.T) {
	f := func(xs []int64) bool {
		ts := make([]relation.Tuple, len(xs))
		for i, x := range xs {
			ts[i] = relation.Ints(x)
		}
		fwd := NewPackage(ts...)
		rev := make([]relation.Tuple, len(ts))
		for i, tp := range ts {
			rev[len(ts)-1-i] = tp
		}
		bwd := NewPackage(rev...)
		return fwd.Key() == bwd.Key() && fwd.Len() == bwd.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackageContainsAndWithTuple(t *testing.T) {
	p := NewPackage(relation.Ints(1), relation.Ints(3))
	if !p.Contains(relation.Ints(1)) || p.Contains(relation.Ints(2)) {
		t.Fatal("Contains wrong")
	}
	q := p.WithTuple(relation.Ints(2))
	if q.Len() != 3 || !q.Contains(relation.Ints(2)) {
		t.Fatal("WithTuple failed")
	}
	if p.Len() != 2 {
		t.Fatal("WithTuple mutated the receiver")
	}
	if !p.WithTuple(relation.Ints(1)).Equal(p) {
		t.Fatal("WithTuple of existing tuple should be identity")
	}
}

func TestPackageRelationMaterialisation(t *testing.T) {
	p := NewPackage(relation.Ints(1, 2), relation.Ints(3, 4))
	r := p.Relation(relation.AutoSchema("RQ", 2))
	if r.Len() != 2 || !r.Contains(relation.Ints(1, 2)) {
		t.Fatal("materialised relation wrong")
	}
}

func TestAggregators(t *testing.T) {
	p := NewPackage(relation.Ints(1, 10), relation.Ints(2, 20), relation.Ints(3, 30))
	empty := NewPackage()
	cases := []struct {
		name string
		agg  Aggregator
		pkg  Package
		want float64
	}{
		{"count", Count(), p, 3},
		{"count empty", Count(), empty, 0},
		{"countOrInf", CountOrInf(), p, 3},
		{"countOrInf empty", CountOrInf(), empty, math.Inf(1)},
		{"sum attr0", SumAttr(0), p, 6},
		{"sum attr1", SumAttr(1), p, 60},
		{"negsum", NegSumAttr(1), p, -60},
		{"min", MinAttr(1), p, 10},
		{"min empty", MinAttr(1), empty, math.Inf(1)},
		{"max", MaxAttr(1), p, 30},
		{"max empty", MaxAttr(1), empty, math.Inf(-1)},
		{"avg", AvgAttr(0), p, 2},
		{"avg empty", AvgAttr(0), empty, 0},
		{"weighted", WeightedSum(map[int]float64{0: 1, 1: 0.5}), p, 36},
		{"const", ConstAgg(7), p, 7},
	}
	for _, c := range cases {
		if got := c.agg.Eval(c.pkg); got != c.want {
			t.Errorf("%s: Eval = %g, want %g", c.name, got, c.want)
		}
	}
}

func TestMonotonicityFlags(t *testing.T) {
	if !Count().Monotone() || !CountOrInf().Monotone() || !ConstAgg(1).Monotone() {
		t.Fatal("count-style aggregators should be monotone")
	}
	if SumAttr(0).Monotone() {
		t.Fatal("sums are not monotone by default (values may be negative)")
	}
	if !SumAttr(0).WithMonotone().Monotone() {
		t.Fatal("WithMonotone should set the flag")
	}
}

func TestSingletonVal(t *testing.T) {
	f := UtilityAttr(0)
	v := SingletonVal(f)
	if v.Eval(NewPackage(relation.Ints(42))) != 42 {
		t.Fatal("singleton utility wrong")
	}
	if !math.IsInf(v.Eval(NewPackage(relation.Ints(1), relation.Ints(2))), -1) {
		t.Fatal("non-singleton should rate −∞ under the embedding")
	}
	if UtilityNegAttr(0)(relation.Ints(5)) != -5 {
		t.Fatal("UtilityNegAttr wrong")
	}
}

func TestSortPackages(t *testing.T) {
	a := NewPackage(relation.Ints(1))
	b := NewPackage(relation.Ints(2))
	c := NewPackage(relation.Ints(3))
	pkgs := []Package{a, b, c}
	vals := []float64{1, 3, 3}
	SortPackages(pkgs, vals)
	if vals[0] != 3 || vals[1] != 3 || vals[2] != 1 {
		t.Fatalf("vals after sort: %v", vals)
	}
	// Tie between b and c broken by key: b's key sorts before c's.
	if !pkgs[0].Equal(b) || !pkgs[1].Equal(c) || !pkgs[2].Equal(a) {
		t.Fatalf("packages after sort: %v", pkgs)
	}
}
