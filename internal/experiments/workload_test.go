package experiments

import (
	"math/rand"
	"testing"
)

// Every sampled workload item must be servable: the spec builds over the
// workload database, decide items carry a selection the library itself
// computed, and relax items carry a resolvable point spec.
func TestSampleWorkloadItemsAreServable(t *testing.T) {
	db := WorkloadDB(40)
	items, err := SampleWorkload(rand.New(rand.NewSource(1)), 30, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 30 {
		t.Fatalf("sampled %d items, want 30", len(items))
	}
	seenOp := map[string]bool{}
	for i, it := range items {
		seenOp[it.Op] = true
		prob, err := it.Spec.Build(db)
		if err != nil {
			t.Fatalf("item %d (%s): spec does not build: %v", i, it.Op, err)
		}
		switch it.Op {
		case "decide":
			if len(it.Selection) != it.Spec.K {
				t.Fatalf("item %d: decide selection has %d packages, k=%d", i, len(it.Selection), it.Spec.K)
			}
		case "relax":
			if it.Relax == nil {
				t.Fatalf("item %d: relax item without relax spec", i)
			}
			if _, err := it.Relax.Build(prob); err != nil {
				t.Fatalf("item %d: relax spec does not resolve: %v", i, err)
			}
		}
	}
	for _, op := range WorkloadOps {
		if !seenOp[op] {
			t.Fatalf("op %s never sampled: %v", op, seenOp)
		}
	}
}

// Distinct items must canonicalize distinctly — the property recload's
// cache-hit control relies on: repeats, not collisions, drive the daemon's
// hit rate.
func TestSampleWorkloadItemsAreDistinct(t *testing.T) {
	db := WorkloadDB(40)
	items, err := SampleWorkload(rand.New(rand.NewSource(2)), 48, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, it := range items {
		canon, err := it.Spec.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		key := it.Op + "|" + canon
		if it.Relax != nil {
			key += "|" + it.Relax.Canonical()
		}
		if seen[key] {
			t.Fatalf("item %d duplicates an earlier item: %s", i, key)
		}
		seen[key] = true
	}
}

// The relaxation profile (WorkloadRelaxOps) must sample servable relaxplan
// items: a relax spec that resolves plus a suggestion cap, with caps (and
// gap budgets) varying so the pool stays distinct.
func TestSampleWorkloadRelaxProfile(t *testing.T) {
	db := WorkloadDB(40)
	items, err := SampleWorkload(rand.New(rand.NewSource(5)), 12, db, WorkloadRelaxOps)
	if err != nil {
		t.Fatal(err)
	}
	caps := map[int]bool{}
	sawPlan := false
	for i, it := range items {
		if !(it.Op == "relax" || it.Op == "relaxplan") {
			t.Fatalf("relax profile drew op %s", it.Op)
		}
		if it.Relax == nil {
			t.Fatalf("item %d: relaxation item without relax spec", i)
		}
		prob, err := it.Spec.Build(db)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if _, err := it.Relax.Build(prob); err != nil {
			t.Fatalf("item %d: relax spec does not resolve: %v", i, err)
		}
		switch it.Op {
		case "relaxplan":
			sawPlan = true
			if it.MaxSuggestions < 1 {
				t.Fatalf("item %d: relaxplan without a suggestion cap", i)
			}
			caps[it.MaxSuggestions] = true
		case "relax":
			if it.MaxSuggestions != 0 {
				t.Fatalf("item %d: relax item carries a suggestion cap %d", i, it.MaxSuggestions)
			}
		}
	}
	if !sawPlan {
		t.Fatal("relax profile never sampled relaxplan")
	}
	if len(caps) < 2 {
		t.Fatalf("relaxplan caps do not vary: %v", caps)
	}
}

func TestSampleWorkloadOpsFilter(t *testing.T) {
	db := WorkloadDB(20)
	items, err := SampleWorkload(rand.New(rand.NewSource(3)), 10, db, []string{"topk", "count"})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if it.Op != "topk" && it.Op != "count" {
			t.Fatalf("filtered sample drew op %s", it.Op)
		}
	}
	if _, err := SampleWorkload(rand.New(rand.NewSource(4)), 4, db, []string{"solveharder"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// Churn deltas must alternate upsert/delete of one tuple: applying a full
// up/down cycle returns the collection to its base content, and every
// single step changes it.
func TestChurnDeltaCycle(t *testing.T) {
	for _, rel := range ChurnRelations {
		db := WorkloadDB(12)
		base := db.Fingerprint()
		cur := db
		for i := 0; i < 4; i++ {
			d, err := ChurnDelta(rel, i)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cur.ApplyDelta(d)
			if err != nil {
				t.Fatalf("%s churn %d: %v", rel, i, err)
			}
			if len(res.Mutated) != 1 || res.Mutated[0] != rel {
				t.Fatalf("%s churn %d mutated %v", rel, i, res.Mutated)
			}
			cur = res.DB
		}
		if cur.Fingerprint() != base {
			t.Fatalf("%s: two full churn cycles did not return to base content", rel)
		}
	}
	if _, err := ChurnDelta("ghost", 0); err == nil {
		t.Fatal("unknown churn relation accepted")
	}
}
