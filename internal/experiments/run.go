package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"
)

// Sample is one timed solve, together with the engine-counter deltas the
// run produced (zero when the family's problems are not wired to
// BenchCounters).
type Sample struct {
	Param   int
	Seconds float64
	Note    string
	// Engine cost accounting for this sample: DFS nodes visited, valid
	// packages yielded, subtrees cut by the bound layer, bound
	// evaluations, and solve-session probes answered from memo instead of
	// a fresh walk (see core.EngineCounters). For families solved by the
	// pseudo-Boolean backend, Nodes additionally includes PB search
	// decisions (the backend's analogue of DFS nodes, so the bench gate
	// compares the two engines in one column) and Conflicts/Propagations
	// carry its constraint-level accounting (see pbo.Counters).
	Nodes        int64
	Yielded      int64
	Pruned       int64
	BoundEvals   int64
	Resumes      int64
	Conflicts    int64
	Propagations int64
}

// Row is a completed experiment row: the family plus its measurements.
type Row struct {
	Family  Family
	Samples []Sample
	Err     error
}

// Run measures a family: one timed solve per parameter, snapshotting
// BenchCounters around each solve so the sample carries the engine's
// nodes/pruned accounting.
func Run(f Family) Row {
	row := Row{Family: f}
	for _, n := range f.Params {
		before := counterSnapshot()
		start := time.Now()
		note, err := f.Run(n)
		el := time.Since(start).Seconds()
		if err != nil {
			row.Err = fmt.Errorf("param %d: %w", n, err)
			return row
		}
		after := counterSnapshot()
		row.Samples = append(row.Samples, Sample{
			Param: n, Seconds: el, Note: note,
			Nodes:        (after[0] - before[0]) + (after[5] - before[5]),
			Yielded:      after[1] - before[1],
			Pruned:       after[2] - before[2],
			BoundEvals:   after[3] - before[3],
			Resumes:      after[4] - before[4],
			Conflicts:    after[6] - before[6],
			Propagations: after[7] - before[7],
		})
	}
	return row
}

func counterSnapshot() [8]int64 {
	_, pboDec, pboProp, pboConf, _, _ := PBOCounters.Snapshot()
	return [8]int64{
		BenchCounters.Nodes.Load(),
		BenchCounters.Yielded.Load(),
		BenchCounters.Pruned.Load(),
		BenchCounters.BoundEvals.Load(),
		BenchCounters.SessionResumes.Load(),
		pboDec,
		pboConf,
		pboProp,
	}
}

// RunAll measures a list of families.
func RunAll(fams []Family) []Row {
	rows := make([]Row, len(fams))
	for i, f := range fams {
		rows[i] = Run(f)
	}
	return rows
}

// GrowthRatios returns consecutive time ratios t(n_{i+1}) / t(n_i).
func (r Row) GrowthRatios() []float64 {
	var out []float64
	for i := 1; i < len(r.Samples); i++ {
		prev := r.Samples[i-1].Seconds
		if prev <= 0 {
			prev = 1e-9
		}
		out = append(out, r.Samples[i].Seconds/prev)
	}
	return out
}

// LogLogSlope fits time ≈ c · param^slope by least squares on the log-log
// samples — the polynomial-degree estimate used by the constant-bound rows.
func (r Row) LogLogSlope() float64 {
	if len(r.Samples) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(r.Samples))
	for _, s := range r.Samples {
		x := math.Log(float64(s.Param))
		y := math.Log(math.Max(s.Seconds, 1e-9))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// JSONReport is the machine-readable form of one rendered table, the shape
// `recbench -json` emits (and CI archives as a BENCH_*.json artifact).
type JSONReport struct {
	Title string    `json:"title"`
	Rows  []JSONRow `json:"rows"`
}

// JSONRow is one family's results in machine-readable form.
type JSONRow struct {
	ID         string       `json:"id"`
	Problem    string       `json:"problem"`
	Language   string       `json:"language"`
	Setting    string       `json:"setting"`
	PaperClass string       `json:"paperClass"`
	Error      string       `json:"error,omitempty"`
	Samples    []JSONSample `json:"samples,omitempty"`
}

// JSONSample is one timed solve in machine-readable form; NsPerOp is the
// wall time of the single solve in nanoseconds, and the counter fields are
// the engine deltas of Sample (zero when the family is not instrumented).
type JSONSample struct {
	Param        int     `json:"param"`
	NsPerOp      float64 `json:"nsPerOp"`
	Note         string  `json:"note"`
	Nodes        int64   `json:"nodes,omitempty"`
	Yielded      int64   `json:"yielded,omitempty"`
	Pruned       int64   `json:"pruned,omitempty"`
	BoundEvals   int64   `json:"boundEvals,omitempty"`
	Resumes      int64   `json:"resumes,omitempty"`
	Conflicts    int64   `json:"conflicts,omitempty"`
	Propagations int64   `json:"propagations,omitempty"`
}

// ReportJSON converts measured rows into the machine-readable report form.
func ReportJSON(title string, rows []Row) JSONReport {
	rep := JSONReport{Title: title}
	for _, r := range rows {
		jr := JSONRow{
			ID: r.Family.ID, Problem: r.Family.Problem, Language: r.Family.Language,
			Setting: r.Family.Setting, PaperClass: r.Family.PaperClass,
		}
		if r.Err != nil {
			jr.Error = r.Err.Error()
		}
		for _, s := range r.Samples {
			jr.Samples = append(jr.Samples, JSONSample{
				Param: s.Param, NsPerOp: s.Seconds * 1e9, Note: s.Note,
				Nodes: s.Nodes, Yielded: s.Yielded, Pruned: s.Pruned, BoundEvals: s.BoundEvals,
				Resumes: s.Resumes, Conflicts: s.Conflicts, Propagations: s.Propagations,
			})
		}
		rep.Rows = append(rep.Rows, jr)
	}
	return rep
}

// MarshalReports renders a list of reports as indented JSON.
func MarshalReports(reports []JSONReport) ([]byte, error) {
	return json.MarshalIndent(reports, "", "  ")
}

// Render formats rows as an aligned text table, one block per row, in the
// shape of the paper's Tables 8.1/8.2 annotated with measurements.
func Render(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&b, "%-22s %-14s %-18s %-24s %s\n",
		"id", "problem", "language", "setting", "paper class")
	for _, r := range rows {
		f := r.Family
		fmt.Fprintf(&b, "%-22s %-14s %-18s %-24s %s\n",
			f.ID, f.Problem, f.Language, f.Setting, f.PaperClass)
		if r.Err != nil {
			fmt.Fprintf(&b, "    ERROR: %v\n", r.Err)
			continue
		}
		for _, s := range r.Samples {
			fmt.Fprintf(&b, "    n=%-5d %10.4fs   result=%s", s.Param, s.Seconds, s.Note)
			if s.Nodes > 0 || s.Pruned > 0 {
				fmt.Fprintf(&b, "   nodes=%d pruned=%d", s.Nodes, s.Pruned)
			}
			if s.Resumes > 0 {
				fmt.Fprintf(&b, " resumes=%d", s.Resumes)
			}
			if s.Conflicts > 0 || s.Propagations > 0 {
				fmt.Fprintf(&b, " conflicts=%d props=%d", s.Conflicts, s.Propagations)
			}
			b.WriteByte('\n')
		}
		ratios := r.GrowthRatios()
		if len(ratios) > 0 {
			parts := make([]string, len(ratios))
			for i, x := range ratios {
				parts[i] = fmt.Sprintf("%.1fx", x)
			}
			fmt.Fprintf(&b, "    growth ratios: %s", strings.Join(parts, ", "))
			if slope := r.LogLogSlope(); !math.IsNaN(slope) {
				fmt.Fprintf(&b, "   (log-log slope %.2f)", slope)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
