package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Sample is one timed solve.
type Sample struct {
	Param   int
	Seconds float64
	Note    string
}

// Row is a completed experiment row: the family plus its measurements.
type Row struct {
	Family  Family
	Samples []Sample
	Err     error
}

// Run measures a family: one timed solve per parameter.
func Run(f Family) Row {
	row := Row{Family: f}
	for _, n := range f.Params {
		start := time.Now()
		note, err := f.Run(n)
		el := time.Since(start).Seconds()
		if err != nil {
			row.Err = fmt.Errorf("param %d: %w", n, err)
			return row
		}
		row.Samples = append(row.Samples, Sample{Param: n, Seconds: el, Note: note})
	}
	return row
}

// RunAll measures a list of families.
func RunAll(fams []Family) []Row {
	rows := make([]Row, len(fams))
	for i, f := range fams {
		rows[i] = Run(f)
	}
	return rows
}

// GrowthRatios returns consecutive time ratios t(n_{i+1}) / t(n_i).
func (r Row) GrowthRatios() []float64 {
	var out []float64
	for i := 1; i < len(r.Samples); i++ {
		prev := r.Samples[i-1].Seconds
		if prev <= 0 {
			prev = 1e-9
		}
		out = append(out, r.Samples[i].Seconds/prev)
	}
	return out
}

// LogLogSlope fits time ≈ c · param^slope by least squares on the log-log
// samples — the polynomial-degree estimate used by the constant-bound rows.
func (r Row) LogLogSlope() float64 {
	if len(r.Samples) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(r.Samples))
	for _, s := range r.Samples {
		x := math.Log(float64(s.Param))
		y := math.Log(math.Max(s.Seconds, 1e-9))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// Render formats rows as an aligned text table, one block per row, in the
// shape of the paper's Tables 8.1/8.2 annotated with measurements.
func Render(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&b, "%-22s %-14s %-18s %-24s %s\n",
		"id", "problem", "language", "setting", "paper class")
	for _, r := range rows {
		f := r.Family
		fmt.Fprintf(&b, "%-22s %-14s %-18s %-24s %s\n",
			f.ID, f.Problem, f.Language, f.Setting, f.PaperClass)
		if r.Err != nil {
			fmt.Fprintf(&b, "    ERROR: %v\n", r.Err)
			continue
		}
		for _, s := range r.Samples {
			fmt.Fprintf(&b, "    n=%-5d %10.4fs   result=%s\n", s.Param, s.Seconds, s.Note)
		}
		ratios := r.GrowthRatios()
		if len(ratios) > 0 {
			parts := make([]string, len(ratios))
			for i, x := range ratios {
				parts[i] = fmt.Sprintf("%.1fx", x)
			}
			fmt.Fprintf(&b, "    growth ratios: %s", strings.Join(parts, ", "))
			if slope := r.LogLogSlope(); !math.IsNaN(slope) {
				fmt.Fprintf(&b, "   (log-log slope %.2f)", slope)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
