package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/relax"
	"repro/internal/spec"
)

// This file is the serving-workload side of the harness: where the table
// families measure single solves, SampleWorkload draws streams of wire-form
// requests — the mixed topk/count/exists/maxbound/decide/relax traffic a
// production deployment of the Table 8.2 travel family would see — for the
// cmd/recload traffic generator to replay against a live pkgrecd.

// WorkloadOps are the operation kinds SampleWorkload draws from by
// default, each mapping to a serving op (and through it to one of the
// paper's problems).
var WorkloadOps = []string{"topk", "count", "exists", "maxbound", "decide", "relax"}

// WorkloadRelaxOps are the relaxation-only op kinds: the subset a
// relaxation-heavy traffic profile over-weights (cmd/recload's -relax
// flag). "relaxplan" — the ranked-suggestions op — is sampled only through
// this list or an explicit ops filter, never by the default mix, so
// default workload measurements stay comparable across versions.
var WorkloadRelaxOps = []string{"relax", "relaxplan"}

// WorkloadVariants is the number of distinct problem variants per op: the
// period of workloadSpec's parameter cycle. A sample of more than
// WorkloadVariants × len(ops) items necessarily repeats earlier items.
const WorkloadVariants = 96

// WorkloadItem is one sampled request in wire form: the operation, the
// problem spec, and the op-specific parameters (an RPP candidate selection
// for decide, a QRPP relaxation spec for relax). The caller owns wrapping
// it into its transport's request type.
type WorkloadItem struct {
	Op        string
	Spec      spec.ProblemSpec
	Selection [][][]any
	Relax     *spec.RelaxSpec
	// MaxSuggestions caps a relaxplan item's ranking (0 = server default).
	MaxSuggestions int
	// Backend pins the item's solver backend (the wire "backend" field);
	// empty leaves the server default. SampleWorkload never sets it — a
	// traffic profile (cmd/recload's -pbo flag) tags items after sampling,
	// so the same pool can be replayed against either backend.
	Backend string
}

// WorkloadDB builds the collection a sampled workload runs over: the
// Table 8.2 travel database with nPOI points of interest (seeded, so every
// run regenerates the identical collection — what lets recload compute
// decide selections locally that remain valid on the daemon).
func WorkloadDB(nPOI int) *relation.Database {
	return gen.Travel(9, 20, nPOI)
}

// ChurnRelations are the workload relations ChurnDelta can mutate. The
// sampled queries read only poi, so poi churn invalidates the warm state
// they depend on while flight churn leaves it untouched — the two ends of
// the delta-awareness spectrum a churn measurement wants to compare.
var ChurnRelations = []string{"flight", "poi"}

// ChurnDelta returns the i-th churn mutation against a WorkloadDB
// collection: even i upserts a synthetic tuple into rel, odd i deletes the
// tuple upsert i-1 added, so the collection oscillates one tuple around its
// base content and every step changes it (no delta is a no-op). The
// synthetic tuples live outside the generated value ranges and never match
// the sampled queries' filters.
func ChurnDelta(rel string, i int) (relation.Delta, error) {
	var row []any
	switch rel {
	case "flight":
		row = []any{90000 + i/2, "chu", "rnx", 1, 500, 500}
	case "poi":
		row = []any{fmt.Sprintf("churn%06d", i/2), "chu", "pavilion", 7, 45}
	default:
		return relation.Delta{}, fmt.Errorf("experiments: unknown churn relation %q (have %v)", rel, ChurnRelations)
	}
	rd := []relation.RelationDelta{{Name: rel, Tuples: [][]any{row}}}
	if i%2 == 0 {
		return relation.Delta{Upserts: rd}, nil
	}
	return relation.Delta{Deletes: rd}, nil
}

// RepairChurnDelta returns the i-th mutation of the three-tier repair
// churn stream against a WorkloadDB collection's poi relation. Like
// ChurnDelta it alternates upsert (even i) and delete of the tuple the
// previous upsert added (odd i), but the upserted tuple cycles through
// the three classes the serving layer's delta repair distinguishes:
//
//   - i/2 % 3 == 0: a tuple outside every sampled query's filter
//     (city "chu") — candidate sets are unchanged, dependent entries
//     rekey;
//   - i/2 % 3 == 1: a candidate tuple (city "nyc") whose value (−900,
//     under the workload's negated-ticket rating) sits far below every
//     workload bound and result floor — entries keep their results and
//     patch;
//   - i/2 % 3 == 2: a cheap, highly rated candidate tuple that can
//     change answers — dependent entries must re-solve.
func RepairChurnDelta(i int) relation.Delta {
	var row []any
	switch (i / 2) % 3 {
	case 0:
		row = []any{fmt.Sprintf("rekey%06d", i/2), "chu", "pavilion", 7, 45}
	case 1:
		row = []any{fmt.Sprintf("patch%06d", i/2), "nyc", "pavilion", 900, 1}
	default:
		row = []any{fmt.Sprintf("hot%06d", i/2), "nyc", "museum", 1, 1}
	}
	rd := []relation.RelationDelta{{Name: "poi", Tuples: [][]any{row}}}
	if i%2 == 0 {
		return relation.Delta{Upserts: rd}
	}
	return relation.Delta{Deletes: rd}
}

// workloadSpec is variant v of the fixed-query travel problem: packages of
// up to two nyc POIs, cost = total visiting time within a varying budget,
// rated by negated total ticket price, with varying k and rating bound.
// Variants canonicalize distinctly for v in [0, 96) — the budget steps
// alone separate them — so within that period a daemon's realised
// cache-hit rate is governed purely by how often the traffic generator
// repeats a variant.
func workloadSpec(v int) spec.ProblemSpec {
	return spec.ProblemSpec{
		Query: `RQ(name, type, ticket, time) :-
			poi(name, city, type, ticket, time), city = "nyc".`,
		Cost:       spec.AggSpec{Kind: "sum", Attr: 3, Monotone: true},
		Val:        spec.AggSpec{Kind: "negsum", Attr: 2},
		Budget:     float64(240 + 5*(v%WorkloadVariants)),
		K:          1 + v%3,
		MaxPkgSize: 2,
		Bound:      float64(-40 - 5*(v%8)),
	}
}

// SampleWorkload draws n distinct workload items over db (a WorkloadDB
// clone), cycling through the requested ops (a subset of WorkloadOps plus
// WorkloadRelaxOps; nil means the WorkloadOps default) and through problem
// variants, in an order shuffled by rng. Decide selections are computed
// locally with the library solver — the daemon must agree they are top-k
// selections — and relax/relaxplan items ask for the minimal relaxation
// (respectively the ranked minimal relaxations) of a type-filtered query
// under the discrete metric.
func SampleWorkload(rng *rand.Rand, n int, db *relation.Database, ops []string) ([]WorkloadItem, error) {
	if len(ops) == 0 {
		ops = WorkloadOps
	}
	for _, op := range ops {
		found := false
		for _, known := range append(WorkloadOps, WorkloadRelaxOps...) {
			found = found || op == known
		}
		if !found {
			return nil, fmt.Errorf("experiments: unknown workload op %q (have %v + %v)", op, WorkloadOps, WorkloadRelaxOps)
		}
	}
	items := make([]WorkloadItem, 0, n)
	// skipped counts consecutive variant skips: the variant space has
	// period WorkloadVariants per op, so that many skips in a row mean
	// every remaining draw is a deterministic repeat of one that already
	// failed — without the bound, a database admitting no decide
	// selections would loop forever.
	skipped := 0
	for i := 0; len(items) < n; i++ {
		if skipped > WorkloadVariants+len(ops) {
			return nil, fmt.Errorf("experiments: workload stuck after %d items: no variant admits a decide selection over this database", len(items))
		}
		op := ops[i%len(ops)]
		v := i / len(ops)
		it := WorkloadItem{Op: op, Spec: workloadSpec(v)}
		switch op {
		case "decide":
			sel, err := decideSelection(db, it.Spec)
			if err != nil {
				return nil, err
			}
			if sel == nil {
				skipped++
				continue // no top-k selection exists for this variant
			}
			it.Selection = sel
		case "relax", "relaxplan":
			// Relax the POI type filter: the paper's rewrite rule for a
			// constant in an equality, under the discrete metric (any
			// other type at distance 1). Varying gap budgets keep the
			// variants distinct; relaxplan items additionally vary their
			// suggestion cap, exercising the server's cap normalization.
			it.Spec.Query = `RQ(name, type, ticket, time) :-
				poi(name, city, type, ticket, time), city = "nyc", type = "museum".`
			it.Spec.K = 1 + v%2
			idx, err := pointIndex(it.Spec.Query, relation.Str("museum"))
			if err != nil {
				return nil, err
			}
			it.Relax = &spec.RelaxSpec{
				Points:    []spec.RelaxPointSpec{{Index: idx, Metric: spec.MetricSpec{Kind: "discrete"}}},
				Bound:     it.Spec.Bound,
				GapBudget: float64(v % 2),
			}
			if op == "relaxplan" {
				it.MaxSuggestions = 1 + v%3
			}
		}
		items = append(items, it)
		skipped = 0
	}
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	return items, nil
}

// pointIndex finds the discovered relaxation point holding the given
// constant — the index a RelaxSpec selects points by (discovery order, the
// same order pkgrec.RelaxPoints reports).
func pointIndex(q string, c relation.Value) (int, error) {
	parsed, err := parser.Parse(q)
	if err != nil {
		return 0, err
	}
	points, err := relax.Points(parsed)
	if err != nil {
		return 0, err
	}
	for i, p := range points {
		if p.Kind != relax.SplitVariable && p.Const.Equal(c) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("experiments: no relaxation point holds constant %v", c)
}

// decideSelection computes a top-k selection for the variant with the
// library solver and encodes it in wire form; nil means the variant admits
// no selection.
func decideSelection(db *relation.Database, ps spec.ProblemSpec) ([][][]any, error) {
	prob, err := ps.Build(db)
	if err != nil {
		return nil, err
	}
	sel, ok, err := prob.FindTopK()
	if err != nil || !ok {
		return nil, err
	}
	wire := make([][][]any, len(sel))
	for i, p := range sel {
		for _, tup := range p.Tuples() {
			row := make([]any, len(tup))
			for j, v := range tup {
				row[j] = relation.ValueToJSON(v)
			}
			wire[i] = append(wire[i], row)
		}
	}
	return wire, nil
}
