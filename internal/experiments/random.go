package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
	"repro/internal/spec"
)

// RandomEquivInstance is one seeded random cross-backend test instance: a
// small database, a wire-form problem spec over it, and the rating bound
// its count/exists probes use. Instances are sized to stay brute-forceable
// — at most 9 candidates with packages of at most 3 — so the differential
// suite can afford exhaustive cross-checks on thousands of them.
type RandomEquivInstance struct {
	DB    *relation.Database
	Spec  spec.ProblemSpec
	Bound float64
}

// NewRandomEquivInstance draws one instance from rng. The space deliberately
// crosses every compiler path of the pbo backend: linear and non-linear
// cost/val aggregators, monotone and plain costs, constant aggregators,
// tight/loose/degenerate budgets, selective and empty selection queries,
// and an optional compatibility query forbidding same-group pairs.
func NewRandomEquivInstance(rng *rand.Rand) RandomEquivInstance {
	n := 4 + rng.Intn(6) // 4..9 items
	groups := []string{"a", "b"}
	db := relation.NewDatabase()
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{
			relation.Int(int64(i + 1)),
			relation.Str(groups[rng.Intn(len(groups))]),
			relation.Int(int64(rng.Intn(16))),     // price 0..15
			relation.Int(int64(rng.Intn(21) - 8)), // rating -8..12
		}
	}
	db.Add(relation.FromTuples(relation.NewSchema("item", "id", "grp", "price", "rating"), tuples...))

	queries := []string{
		`RQ(id, grp, price, rating) :- item(id, grp, price, rating).`,
		`RQ(id, grp, price, rating) :- item(id, grp, price, rating), grp = "a".`,
		fmt.Sprintf(`RQ(id, grp, price, rating) :- item(id, grp, price, rating), price < %d.`, 3+rng.Intn(14)),
		fmt.Sprintf(`RQ(id, grp, price, rating) :- item(id, grp, price, rating), rating > %d.`, rng.Intn(8)-6),
	}
	costs := []spec.AggSpec{
		{Kind: "sum", Attr: 2, Monotone: true},
		{Kind: "sum", Attr: 2}, // same totals, no monotone cut: the descend-anyway path
		{Kind: "count", Monotone: true},
		{Kind: "max", Attr: 2, Monotone: true}, // monotone but non-linear: hook-cut path
		{Kind: "const", Value: float64(rng.Intn(4))},
	}
	vals := []spec.AggSpec{
		{Kind: "sum", Attr: 3},
		{Kind: "negsum", Attr: 2},
		{Kind: "count"},
		{Kind: "min", Attr: 3}, // non-linear: filter-only floor
		{Kind: "avg", Attr: 3}, // non-linear and fractional
	}
	ps := spec.ProblemSpec{
		Query:      queries[rng.Intn(len(queries))],
		Cost:       costs[rng.Intn(len(costs))],
		Val:        vals[rng.Intn(len(vals))],
		Budget:     float64(rng.Intn(36)), // 0 (nothing fits) .. 35 (loose)
		K:          rng.Intn(4),           // 0..3
		MaxPkgSize: 1 + rng.Intn(3),       // 1..3
	}
	if rng.Intn(4) == 0 {
		// No two distinct selected items may share a group.
		ps.Qc = `Bad(g) :- RQ(i1, g, p1, r1), RQ(i2, g, p2, r2), i1 != i2.`
	}
	bound := float64(rng.Intn(25) - 10)
	if rng.Intn(8) == 0 {
		bound = float64(rng.Intn(200) - 100) // occasionally far outside the value range
	}
	ps.Bound = bound
	return RandomEquivInstance{DB: db, Spec: ps, Bound: bound}
}
