package experiments

import (
	"math"
	"testing"

	"repro/internal/core"
)

// TestParallelEnginesMatchSerial is the cross-family equivalence property:
// on every EquivCases instance, FindTopKParallel, CountValidParallel,
// DecideTopKParallel and ExistsKValidParallel agree with their serial
// counterparts for several worker counts. Run with -race in CI to double as
// a concurrency audit of the shared engine.
func TestParallelEnginesMatchSerial(t *testing.T) {
	for _, c := range EquivCases(testing.Short()) {
		t.Run(c.Name, func(t *testing.T) {
			p := c.Prob()

			seqCount, err := p.CountValid(c.Bound)
			if err != nil {
				t.Fatal(err)
			}
			seqSel, seqOK, err := p.FindTopK()
			if err != nil {
				t.Fatal(err)
			}
			seqExists, err := p.ExistsKValid(p.K, c.Bound)
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{1, 4, 0} {
				parCount, err := p.CountValidParallel(c.Bound, workers)
				if err != nil {
					t.Fatal(err)
				}
				if parCount != seqCount {
					t.Fatalf("workers=%d: CountValidParallel %d vs CountValid %d", workers, parCount, seqCount)
				}

				parSel, parOK, err := p.FindTopKParallel(workers)
				if err != nil {
					t.Fatal(err)
				}
				if parOK != seqOK || len(parSel) != len(seqSel) {
					t.Fatalf("workers=%d: FindTopKParallel ok=%v n=%d vs serial ok=%v n=%d",
						workers, parOK, len(parSel), seqOK, len(seqSel))
				}
				for i := range seqSel {
					if !seqSel[i].Equal(parSel[i]) {
						t.Fatalf("workers=%d: rank %d: %v vs serial %v", workers, i, parSel[i], seqSel[i])
					}
				}

				parExists, err := p.ExistsKValidParallel(p.K, c.Bound, workers)
				if err != nil {
					t.Fatal(err)
				}
				if parExists != seqExists {
					t.Fatalf("workers=%d: ExistsKValidParallel %v vs serial %v", workers, parExists, seqExists)
				}
			}

			if !seqOK {
				return
			}
			// RPP on the computed selection: both engines must accept it, and
			// both must reject it once its best member is dropped for a worse
			// valid package (when one exists).
			decideBoth := func(sel []core.Package) {
				t.Helper()
				okS, _, err := p.DecideTopK(sel)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 4} {
					okP, wit, err := p.DecideTopKParallel(sel, workers)
					if err != nil {
						t.Fatal(err)
					}
					if okP != okS {
						t.Fatalf("workers=%d: DecideTopKParallel %v vs serial %v", workers, okP, okS)
					}
					if wit != nil {
						valid, err := p.Valid(*wit)
						if err != nil {
							t.Fatal(err)
						}
						min := math.Inf(1)
						for _, s := range sel {
							min = math.Min(min, p.Val.Eval(s))
						}
						if !valid || p.Val.Eval(*wit) <= min {
							t.Fatalf("workers=%d: witness %v does not out-rate the selection", workers, *wit)
						}
					}
				}
			}
			decideBoth(seqSel)
			var spare *core.Package
			err = p.EnumerateValid(func(pkg core.Package) (bool, error) {
				for _, s := range seqSel {
					if s.Equal(pkg) {
						return true, nil
					}
				}
				spare = &pkg
				return false, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if spare != nil && len(seqSel) > 0 {
				sub := append([]core.Package{}, seqSel[1:]...)
				sub = append(sub, *spare)
				decideBoth(sub)
			}
		})
	}
}
