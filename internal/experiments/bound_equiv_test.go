package experiments

import (
	"math"
	"testing"

	"repro/internal/core"
)

// TestBoundEngineMatchesExhaustive is the branch-and-bound equivalence
// property across every structurally distinct experiment family: with the
// bound layer on (the default) the solvers must return exactly what the
// exhaustive engine returns — same packages in the same order, same counts,
// same bounds, same decisions — serially and in parallel. Run with -race in
// CI, this doubles as a concurrency audit of the shared pruning floor.
func TestBoundEngineMatchesExhaustive(t *testing.T) {
	for _, c := range EquivCases(testing.Short()) {
		t.Run(c.Name, func(t *testing.T) {
			exh := c.Prob()
			exh.Exhaustive = true
			pruned := c.Prob()
			var counters core.EngineCounters
			pruned.Counters = &counters

			wantCount, err := exh.CountValid(c.Bound)
			if err != nil {
				t.Fatal(err)
			}
			wantSel, wantOK, err := exh.FindTopK()
			if err != nil {
				t.Fatal(err)
			}
			wantMB, wantMBOK, err := exh.MaxBound()
			if err != nil {
				t.Fatal(err)
			}
			wantExists, err := exh.ExistsKValid(exh.K, c.Bound)
			if err != nil {
				t.Fatal(err)
			}

			gotCount, err := pruned.CountValid(c.Bound)
			if err != nil {
				t.Fatal(err)
			}
			if gotCount != wantCount {
				t.Fatalf("CountValid pruned %d vs exhaustive %d", gotCount, wantCount)
			}
			gotSel, gotOK, err := pruned.FindTopK()
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK || len(gotSel) != len(wantSel) {
				t.Fatalf("FindTopK pruned ok=%v n=%d vs exhaustive ok=%v n=%d",
					gotOK, len(gotSel), wantOK, len(wantSel))
			}
			for i := range wantSel {
				if !gotSel[i].Equal(wantSel[i]) {
					t.Fatalf("FindTopK rank %d: pruned %v vs exhaustive %v", i, gotSel[i], wantSel[i])
				}
			}
			gotMB, gotMBOK, err := pruned.MaxBound()
			if err != nil {
				t.Fatal(err)
			}
			if gotMBOK != wantMBOK || (wantMBOK && math.Float64bits(gotMB) != math.Float64bits(wantMB)) {
				t.Fatalf("MaxBound pruned (%v,%v) vs exhaustive (%v,%v)", gotMB, gotMBOK, wantMB, wantMBOK)
			}
			gotExists, err := pruned.ExistsKValid(pruned.K, c.Bound)
			if err != nil {
				t.Fatal(err)
			}
			if gotExists != wantExists {
				t.Fatalf("ExistsKValid pruned %v vs exhaustive %v", gotExists, wantExists)
			}

			for _, workers := range []int{1, 4} {
				parCount, err := pruned.CountValidParallel(c.Bound, workers)
				if err != nil {
					t.Fatal(err)
				}
				if parCount != wantCount {
					t.Fatalf("workers=%d: CountValidParallel pruned %d vs exhaustive %d",
						workers, parCount, wantCount)
				}
				parSel, parOK, err := pruned.FindTopKParallel(workers)
				if err != nil {
					t.Fatal(err)
				}
				if parOK != wantOK || len(parSel) != len(wantSel) {
					t.Fatalf("workers=%d: FindTopKParallel pruned ok=%v n=%d vs exhaustive ok=%v n=%d",
						workers, parOK, len(parSel), wantOK, len(wantSel))
				}
				for i := range wantSel {
					if !parSel[i].Equal(wantSel[i]) {
						t.Fatalf("workers=%d: FindTopKParallel rank %d: %v vs exhaustive %v",
							workers, i, parSel[i], wantSel[i])
					}
				}
				parMB, parMBOK, err := pruned.MaxBoundParallel(workers)
				if err != nil {
					t.Fatal(err)
				}
				if parMBOK != wantMBOK || (wantMBOK && math.Float64bits(parMB) != math.Float64bits(wantMB)) {
					t.Fatalf("workers=%d: MaxBoundParallel pruned (%v,%v) vs exhaustive (%v,%v)",
						workers, parMB, parMBOK, wantMB, wantMBOK)
				}
				parExists, err := pruned.ExistsKValidParallel(pruned.K, c.Bound, workers)
				if err != nil {
					t.Fatal(err)
				}
				if parExists != wantExists {
					t.Fatalf("workers=%d: ExistsKValidParallel pruned %v vs exhaustive %v",
						workers, parExists, wantExists)
				}
			}

			if !wantOK {
				return
			}
			// RPP: decision and (serial) witness agree on the computed
			// selection, and on a deliberately suboptimal one when a spare
			// valid package exists.
			decideBoth := func(sel []core.Package) {
				t.Helper()
				wantDec, wantWit, err := exh.DecideTopK(sel)
				if err != nil {
					t.Fatal(err)
				}
				gotDec, gotWit, err := pruned.DecideTopK(sel)
				if err != nil {
					t.Fatal(err)
				}
				if gotDec != wantDec {
					t.Fatalf("DecideTopK pruned %v vs exhaustive %v", gotDec, wantDec)
				}
				if (gotWit == nil) != (wantWit == nil) ||
					(gotWit != nil && !gotWit.Equal(*wantWit)) {
					t.Fatalf("DecideTopK witness pruned %v vs exhaustive %v", gotWit, wantWit)
				}
				for _, workers := range []int{1, 4} {
					parDec, parWit, err := pruned.DecideTopKParallel(sel, workers)
					if err != nil {
						t.Fatal(err)
					}
					if parDec != wantDec {
						t.Fatalf("workers=%d: DecideTopKParallel pruned %v vs exhaustive %v",
							workers, parDec, wantDec)
					}
					if parWit != nil {
						valid, err := pruned.Valid(*parWit)
						if err != nil {
							t.Fatal(err)
						}
						min := math.Inf(1)
						for _, s := range sel {
							min = math.Min(min, pruned.Val.Eval(s))
						}
						if !valid || pruned.Val.Eval(*parWit) <= min {
							t.Fatalf("workers=%d: witness %v does not out-rate the selection", workers, *parWit)
						}
					}
				}
			}
			decideBoth(wantSel)
			var spare *core.Package
			err = exh.EnumerateValid(func(pkg core.Package) (bool, error) {
				for _, s := range wantSel {
					if s.Equal(pkg) {
						return true, nil
					}
				}
				spare = &pkg
				return false, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if spare != nil && len(wantSel) > 0 {
				sub := append([]core.Package{}, wantSel[1:]...)
				sub = append(sub, *spare)
				decideBoth(sub)
			}
		})
	}
}
