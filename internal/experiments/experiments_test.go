package experiments

import (
	"strings"
	"testing"
)

// TestAllFamiliesRunAtSmallestParam smoke-tests every experiment row at its
// smallest parameter: no family may error, and result notes must be
// non-empty.
func TestAllFamiliesRunAtSmallestParam(t *testing.T) {
	var fams []Family
	fams = append(fams, Table81(true)...)
	fams = append(fams, Table82(true)...)
	fams = append(fams, Ablations(true)...)
	seen := map[string]bool{}
	for _, f := range fams {
		if seen[f.ID] {
			t.Errorf("duplicate family id %q", f.ID)
		}
		seen[f.ID] = true
		if len(f.Params) == 0 {
			t.Errorf("%s: no parameters", f.ID)
			continue
		}
		note, err := f.Run(f.Params[0])
		if err != nil {
			t.Errorf("%s at n=%d: %v", f.ID, f.Params[0], err)
			continue
		}
		if note == "" {
			t.Errorf("%s: empty result note", f.ID)
		}
	}
}

// TestTableCoverage checks that every problem of the paper appears in both
// tables' families — the "every table row has a bench" deliverable.
func TestTableCoverage(t *testing.T) {
	problems := []string{"RPP", "FRP", "MBP", "CPP", "QRPP", "ARPP"}
	for _, tab := range []struct {
		name string
		fams []Family
	}{
		{"Table81", Table81(true)},
		{"Table82", Table82(true)},
	} {
		have := map[string]bool{}
		for _, f := range tab.fams {
			have[f.Problem] = true
		}
		for _, p := range problems {
			if !have[p] {
				t.Errorf("%s: problem %s has no experiment family", tab.name, p)
			}
		}
	}
	// Table 8.1 must cover the language lattice.
	langs := map[string]bool{}
	for _, f := range Table81(true) {
		langs[f.Language] = true
	}
	for _, l := range []string{"CQ/UCQ/∃FO+", "DATALOGnr", "FO", "DATALOG"} {
		if !langs[l] {
			t.Errorf("Table81: language %s has no experiment family", l)
		}
	}
}

// TestQuickParamsAreSubset checks quick mode only shrinks parameters.
func TestQuickParamsAreSubset(t *testing.T) {
	full := Table81(false)
	quick := Table81(true)
	if len(full) != len(quick) {
		t.Fatalf("quick mode changed the number of families: %d vs %d", len(quick), len(full))
	}
	for i := range full {
		if len(quick[i].Params) > len(full[i].Params) {
			t.Errorf("%s: quick has more params than full", full[i].ID)
		}
	}
}

// TestRunAndRender exercises the measurement plumbing on one cheap family.
func TestRunAndRender(t *testing.T) {
	fams := Table82(true)
	var target Family
	for _, f := range fams {
		if f.ID == "T82-RPP-const" {
			target = f
		}
	}
	if target.ID == "" {
		t.Fatal("T82-RPP-const family missing")
	}
	row := Run(target)
	if row.Err != nil {
		t.Fatal(row.Err)
	}
	if len(row.Samples) != len(target.Params) {
		t.Fatalf("samples = %d, want %d", len(row.Samples), len(target.Params))
	}
	if len(row.GrowthRatios()) != len(row.Samples)-1 {
		t.Fatal("growth ratio count wrong")
	}
	out := Render("test table", []Row{row})
	for _, want := range []string{"test table", "T82-RPP-const", "growth ratios", "PTIME"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

// TestLanguageFamiliesAnswerCorrectly pins the family semantics: the
// product program has 2^d answers, the counter reaches 2^d states, the FO
// alternation formula holds on a cycle.
func TestLanguageFamiliesAnswerCorrectly(t *testing.T) {
	for _, d := range []int{3, 5} {
		prob := datalogNRProblem(d)
		cands, err := prob.Candidates()
		if err != nil {
			t.Fatal(err)
		}
		if cands.Len() != 1<<d {
			t.Fatalf("prod(%d) has %d answers, want %d", d, cands.Len(), 1<<d)
		}
		prob = datalogProblem(d)
		cands, err = prob.Candidates()
		if err != nil {
			t.Fatal(err)
		}
		if cands.Len() != 1<<d {
			t.Fatalf("counter(%d) has %d answers, want %d", d, cands.Len(), 1<<d)
		}
		fo := foProblem(d)
		cands, err = fo.Candidates()
		if err != nil {
			t.Fatal(err)
		}
		if cands.Len() != 1 {
			t.Fatalf("alternating FO depth %d should hold on a cycle", d)
		}
	}
}
