package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestAllFamiliesRunAtSmallestParam smoke-tests every experiment row at its
// smallest parameter: no family may error, and result notes must be
// non-empty.
func TestAllFamiliesRunAtSmallestParam(t *testing.T) {
	var fams []Family
	fams = append(fams, Table81(true)...)
	fams = append(fams, Table82(true)...)
	fams = append(fams, Ablations(true)...)
	seen := map[string]bool{}
	for _, f := range fams {
		if seen[f.ID] {
			t.Errorf("duplicate family id %q", f.ID)
		}
		seen[f.ID] = true
		if len(f.Params) == 0 {
			t.Errorf("%s: no parameters", f.ID)
			continue
		}
		note, err := f.Run(f.Params[0])
		if err != nil {
			t.Errorf("%s at n=%d: %v", f.ID, f.Params[0], err)
			continue
		}
		if note == "" {
			t.Errorf("%s: empty result note", f.ID)
		}
	}
}

// TestTableCoverage checks that every problem of the paper appears in both
// tables' families — the "every table row has a bench" deliverable.
func TestTableCoverage(t *testing.T) {
	problems := []string{"RPP", "FRP", "MBP", "CPP", "QRPP", "ARPP"}
	for _, tab := range []struct {
		name string
		fams []Family
	}{
		{"Table81", Table81(true)},
		{"Table82", Table82(true)},
	} {
		have := map[string]bool{}
		for _, f := range tab.fams {
			have[f.Problem] = true
		}
		for _, p := range problems {
			if !have[p] {
				t.Errorf("%s: problem %s has no experiment family", tab.name, p)
			}
		}
	}
	// Table 8.1 must cover the language lattice.
	langs := map[string]bool{}
	for _, f := range Table81(true) {
		langs[f.Language] = true
	}
	for _, l := range []string{"CQ/UCQ/∃FO+", "DATALOGnr", "FO", "DATALOG"} {
		if !langs[l] {
			t.Errorf("Table81: language %s has no experiment family", l)
		}
	}
}

// TestQuickParamsAreSubset checks quick mode only shrinks parameters.
func TestQuickParamsAreSubset(t *testing.T) {
	full := Table81(false)
	quick := Table81(true)
	if len(full) != len(quick) {
		t.Fatalf("quick mode changed the number of families: %d vs %d", len(quick), len(full))
	}
	for i := range full {
		if len(quick[i].Params) > len(full[i].Params) {
			t.Errorf("%s: quick has more params than full", full[i].ID)
		}
	}
}

// TestRunAndRender exercises the measurement plumbing on one cheap family.
func TestRunAndRender(t *testing.T) {
	fams := Table82(true)
	var target Family
	for _, f := range fams {
		if f.ID == "T82-RPP-const" {
			target = f
		}
	}
	if target.ID == "" {
		t.Fatal("T82-RPP-const family missing")
	}
	row := Run(target)
	if row.Err != nil {
		t.Fatal(row.Err)
	}
	if len(row.Samples) != len(target.Params) {
		t.Fatalf("samples = %d, want %d", len(row.Samples), len(target.Params))
	}
	if len(row.GrowthRatios()) != len(row.Samples)-1 {
		t.Fatal("growth ratio count wrong")
	}
	out := Render("test table", []Row{row})
	for _, want := range []string{"test table", "T82-RPP-const", "growth ratios", "PTIME"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

// TestComparisonTablesWellFormed smoke-checks the engine-comparison table
// constructors (the recbench -table par/bb/relax rows) and the exported
// benchmark problem builders: unique IDs, parameters present, problems
// that yield candidates.
func TestComparisonTablesWellFormed(t *testing.T) {
	var fams []Family
	fams = append(fams, EngineRows(true, 2)...)
	fams = append(fams, BoundRows(true)...)
	fams = append(fams, RelaxRows(true)...)
	seen := map[string]bool{}
	for _, f := range fams {
		if f.ID == "" || seen[f.ID] {
			t.Errorf("missing or duplicate family id %q", f.ID)
		}
		seen[f.ID] = true
		if len(f.Params) == 0 {
			t.Errorf("%s: no parameters", f.ID)
		}
	}
	for name, prob := range map[string]*core.Problem{
		"HardCPPProblem": HardCPPProblem(3),
		"TravelProblem":  TravelProblem(24),
	} {
		cands, err := prob.Candidates()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cands.Len() == 0 {
			t.Errorf("%s: no candidates", name)
		}
	}
	if prob, bound := Sigma1CPPProblem(3); prob == nil || bound == 0 {
		t.Error("Sigma1CPPProblem returned an empty instance")
	}
}

// TestRelaxRowsSessionBeatsLoop runs the QRPP engine-comparison table and
// pins its reason to exist: on the travel relax family — whose gap levels
// discretize over the whole ticket column while only nyc tuples can
// qualify, so outer levels repeat candidate lists — the incremental
// solve-session engine must agree with the reference re-solve loop on
// every answer while visiting strictly fewer engine nodes, and its memo
// must actually resume (Resumes > 0). The JSON report plumbing rides
// along: resumes survive the round through ReportJSON/MarshalReports.
func TestRelaxRowsSessionBeatsLoop(t *testing.T) {
	rows := RunAll(RelaxRows(true))
	byID := map[string]Row{}
	for _, r := range rows {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Family.ID, r.Err)
		}
		byID[r.Family.ID] = r
	}
	loop, ok := byID["RELAX-travel-loop"]
	if !ok {
		t.Fatal("RELAX-travel-loop family missing")
	}
	sess, ok := byID["RELAX-travel-session"]
	if !ok {
		t.Fatal("RELAX-travel-session family missing")
	}
	if len(loop.Samples) != len(sess.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(loop.Samples), len(sess.Samples))
	}
	var resumes int64
	for i, ls := range loop.Samples {
		ss := sess.Samples[i]
		if ls.Note != ss.Note {
			t.Fatalf("n=%d: answers differ: loop=%s session=%s", ls.Param, ls.Note, ss.Note)
		}
		if ls.Resumes != 0 {
			t.Errorf("n=%d: reference loop reported %d session resumes", ls.Param, ls.Resumes)
		}
		if ss.Nodes >= ls.Nodes {
			t.Errorf("n=%d: session visited %d nodes, loop %d — no saving", ls.Param, ss.Nodes, ls.Nodes)
		}
		resumes += ss.Resumes
	}
	if resumes == 0 {
		t.Error("session never resumed from its memo")
	}

	rep := ReportJSON("relax", rows)
	out, err := MarshalReports([]JSONReport{rep})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"resumes"`) {
		t.Errorf("JSON report lost the resumes counter:\n%s", out)
	}
}

// TestLanguageFamiliesAnswerCorrectly pins the family semantics: the
// product program has 2^d answers, the counter reaches 2^d states, the FO
// alternation formula holds on a cycle.
func TestLanguageFamiliesAnswerCorrectly(t *testing.T) {
	for _, d := range []int{3, 5} {
		prob := datalogNRProblem(d)
		cands, err := prob.Candidates()
		if err != nil {
			t.Fatal(err)
		}
		if cands.Len() != 1<<d {
			t.Fatalf("prod(%d) has %d answers, want %d", d, cands.Len(), 1<<d)
		}
		prob = datalogProblem(d)
		cands, err = prob.Candidates()
		if err != nil {
			t.Fatal(err)
		}
		if cands.Len() != 1<<d {
			t.Fatalf("counter(%d) has %d answers, want %d", d, cands.Len(), 1<<d)
		}
		fo := foProblem(d)
		cands, err = fo.Candidates()
		if err != nil {
			t.Fatal(err)
		}
		if cands.Len() != 1 {
			t.Fatalf("alternating FO depth %d should hold on a cycle", d)
		}
	}
}
