package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/pbo"
)

// assertPBOEquivalent is the cross-engine identity oracle: it builds four
// independent solvers over the same instance — the exhaustive engine (the
// reference), the serial branch-and-bound engine, the parallel engine with
// four workers, and the pseudo-Boolean backend — and requires result
// identity on every operation. Witnesses from the parallel and PB backends
// are allowed to be different packages than the serial ones, but must be
// genuine: valid and strictly out-rating the rejected selection.
func assertPBOEquivalent(t *testing.T, mk func() *core.Problem, bound float64) {
	t.Helper()
	ctx := context.Background()

	exh := mk()
	exh.Exhaustive = true
	bb := mk()
	comp, err := pbo.Compile(mk(), &PBOCounters)
	if err != nil {
		t.Fatalf("pbo.Compile: %v", err)
	}

	wantCount, err := exh.CountValid(bound)
	if err != nil {
		t.Fatal(err)
	}
	wantSel, wantOK, err := exh.FindTopK()
	if err != nil {
		t.Fatal(err)
	}
	wantMB, wantMBOK, err := exh.MaxBound()
	if err != nil {
		t.Fatal(err)
	}
	wantExists, err := exh.ExistsKValid(exh.K, bound)
	if err != nil {
		t.Fatal(err)
	}

	type backend struct {
		name   string
		count  func() (int64, error)
		topk   func() ([]core.Package, bool, error)
		maxb   func() (float64, bool, error)
		exists func() (bool, error)
		decide func(sel []core.Package) (bool, *core.Package, error)
		// exactWitness: the backend promises the serial engine's witness,
		// not just a genuine one.
		exactWitness bool
	}
	backends := []backend{
		{
			name:         "bb-serial",
			count:        func() (int64, error) { return bb.CountValid(bound) },
			topk:         bb.FindTopK,
			maxb:         bb.MaxBound,
			exists:       func() (bool, error) { return bb.ExistsKValid(bb.K, bound) },
			decide:       bb.DecideTopK,
			exactWitness: true,
		},
		{
			name:   "bb-parallel",
			count:  func() (int64, error) { return bb.CountValidParallel(bound, 4) },
			topk:   func() ([]core.Package, bool, error) { return bb.FindTopKParallel(4) },
			maxb:   func() (float64, bool, error) { return bb.MaxBoundParallel(4) },
			exists: func() (bool, error) { return bb.ExistsKValidParallel(bb.K, bound, 4) },
			decide: func(sel []core.Package) (bool, *core.Package, error) {
				return bb.DecideTopKParallel(sel, 4)
			},
		},
		{
			name:   "pbo",
			count:  func() (int64, error) { return comp.CountValidCtx(ctx, bound) },
			topk:   func() ([]core.Package, bool, error) { return comp.FindTopKCtx(ctx) },
			maxb:   func() (float64, bool, error) { return comp.MaxBoundCtx(ctx) },
			exists: func() (bool, error) { return comp.ExistsKValidCtx(ctx, exh.K, bound) },
			decide: func(sel []core.Package) (bool, *core.Package, error) {
				return comp.DecideTopKCtx(ctx, sel)
			},
		},
	}

	for _, be := range backends {
		gotCount, err := be.count()
		if err != nil {
			t.Fatalf("%s: CountValid: %v", be.name, err)
		}
		if gotCount != wantCount {
			t.Fatalf("%s: CountValid %d, exhaustive %d", be.name, gotCount, wantCount)
		}
		gotSel, gotOK, err := be.topk()
		if err != nil {
			t.Fatalf("%s: FindTopK: %v", be.name, err)
		}
		if gotOK != wantOK || len(gotSel) != len(wantSel) {
			t.Fatalf("%s: FindTopK ok=%v n=%d, exhaustive ok=%v n=%d",
				be.name, gotOK, len(gotSel), wantOK, len(wantSel))
		}
		for i := range wantSel {
			if !gotSel[i].Equal(wantSel[i]) {
				t.Fatalf("%s: FindTopK rank %d: %v, exhaustive %v", be.name, i, gotSel[i], wantSel[i])
			}
		}
		gotMB, gotMBOK, err := be.maxb()
		if err != nil {
			t.Fatalf("%s: MaxBound: %v", be.name, err)
		}
		if gotMBOK != wantMBOK || (wantMBOK && math.Float64bits(gotMB) != math.Float64bits(wantMB)) {
			t.Fatalf("%s: MaxBound (%v,%v), exhaustive (%v,%v)", be.name, gotMB, gotMBOK, wantMB, wantMBOK)
		}
		gotExists, err := be.exists()
		if err != nil {
			t.Fatalf("%s: ExistsKValid: %v", be.name, err)
		}
		if gotExists != wantExists {
			t.Fatalf("%s: ExistsKValid %v, exhaustive %v", be.name, gotExists, wantExists)
		}
	}

	if !wantOK {
		return
	}

	// Decision problem: every backend must agree with the exhaustive engine
	// on accept/reject for the optimal selection, a deliberately suboptimal
	// one (when a spare valid package exists), and a truncated one.
	decideAll := func(sel []core.Package) {
		t.Helper()
		wantDec, wantWit, err := exh.DecideTopK(sel)
		if err != nil {
			t.Fatal(err)
		}
		for _, be := range backends {
			gotDec, gotWit, err := be.decide(sel)
			if err != nil {
				t.Fatalf("%s: DecideTopK: %v", be.name, err)
			}
			if gotDec != wantDec {
				t.Fatalf("%s: DecideTopK %v, exhaustive %v", be.name, gotDec, wantDec)
			}
			if be.exactWitness {
				if (gotWit == nil) != (wantWit == nil) ||
					(gotWit != nil && !gotWit.Equal(*wantWit)) {
					t.Fatalf("%s: DecideTopK witness %v, exhaustive %v", be.name, gotWit, wantWit)
				}
				continue
			}
			if gotDec && gotWit != nil {
				t.Fatalf("%s: DecideTopK accepted but returned witness %v", be.name, *gotWit)
			}
			if gotWit != nil {
				valid, err := bb.Valid(*gotWit)
				if err != nil {
					t.Fatal(err)
				}
				min := math.Inf(1)
				for _, s := range sel {
					min = math.Min(min, bb.Val.Eval(s))
				}
				if !valid || bb.Val.Eval(*gotWit) <= min {
					t.Fatalf("%s: witness %v does not out-rate the selection", be.name, *gotWit)
				}
			}
		}
	}
	decideAll(wantSel)
	if len(wantSel) > 0 {
		decideAll(wantSel[:len(wantSel)-1])
		var spare *core.Package
		err = exh.EnumerateValid(func(pkg core.Package) (bool, error) {
			for _, s := range wantSel {
				if s.Equal(pkg) {
					return true, nil
				}
			}
			spare = &pkg
			return false, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if spare != nil {
			sub := append([]core.Package{}, wantSel[1:]...)
			sub = append(sub, *spare)
			decideAll(sub)
		}
	}
}

// TestPBOMatchesEnginesOnFamilies pins the PB backend against the exhaustive,
// serial branch-and-bound and parallel engines on one instance of every
// structurally distinct experiment family — the same corpus the bound-layer
// equivalence test uses, so a pbo divergence cannot hide behind an engine
// divergence.
func TestPBOMatchesEnginesOnFamilies(t *testing.T) {
	for _, c := range EquivCases(testing.Short()) {
		t.Run(c.Name, func(t *testing.T) {
			assertPBOEquivalent(t, c.Prob, c.Bound)
		})
	}
}

// TestPBODifferentialRandom is the randomized differential harness: seeded
// random instances drawn from NewRandomEquivInstance, each cross-checked by
// assertPBOEquivalent across all four backends. Seeds are fixed, so any
// failure is reproducible from the subtest name alone. The shards run under
// t.Parallel, which together with -race in CI audits the PB store's
// concurrent-compile and the parallel engine's shared pruning state.
func TestPBODifferentialRandom(t *testing.T) {
	shards, perShard := 8, 125
	if testing.Short() {
		perShard = 16
	}
	for s := 0; s < shards; s++ {
		t.Run(fmt.Sprintf("shard%02d", s), func(t *testing.T) {
			t.Parallel()
			for i := 0; i < perShard; i++ {
				seed := int64(s)*1000 + int64(i)
				t.Run(fmt.Sprintf("seed%04d", seed), func(t *testing.T) {
					rng := rand.New(rand.NewSource(0x5eed0000 + seed))
					inst := NewRandomEquivInstance(rng)
					mk := func() *core.Problem {
						p, err := inst.Spec.Build(inst.DB)
						if err != nil {
							t.Fatalf("building %+v: %v", inst.Spec, err)
						}
						return p
					}
					assertPBOEquivalent(t, mk, inst.Bound)
				})
			}
		})
	}
}
